package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"mcfs/internal/baseline"
	"mcfs/internal/core"
	"mcfs/internal/data"
	"mcfs/internal/gen"
	"mcfs/internal/solver"
)

func init() {
	register("Q", runQuality)
}

// runQuality backs the paper's "competitive vis-à-vis the optimal
// solution" claim on instances small enough for the exact solver to
// finish: a batch of seeded clustered instances is solved by every
// algorithm and by exhaustive enumeration, and the mean and maximum
// objective ratio to the optimum is reported per algorithm.
func runQuality(cfg Config, emit func(Row)) error {
	const batch = 8
	type agg struct {
		sum, worst float64
		count      int
	}
	ratios := map[Algo]*agg{}
	algos := []Algo{AlgoWMA, AlgoUF, AlgoHilbert, AlgoNaive, AlgoBRNN}
	for _, a := range algos {
		ratios[a] = &agg{}
	}
	times := map[Algo]*time.Duration{}
	for _, a := range algos {
		var d time.Duration
		times[a] = &d
	}
	var exactTime time.Duration

	for b := 0; b < batch; b++ {
		seed := cfg.Seed + int64(b)*977
		n := 200 + int(100*cfg.Scale)*b/2
		g, err := gen.Synthetic(gen.SyntheticConfig{N: n, Clusters: 8, Alpha: 1.8, Seed: seed})
		if err != nil {
			return err
		}
		pool := gen.LargestComponent(g)
		rng := rand.New(rand.NewSource(seed + 1))
		// Clustered geometry, restricted candidate set, tight-ish
		// occupancy (≈0.8): the regime the paper's evaluation targets,
		// kept small enough for exhaustive enumeration (C(12,5) subsets).
		inst := &data.Instance{
			G:          g,
			Customers:  gen.SampleCustomersFrom(pool, 20, rng),
			Facilities: gen.SampleFacilitiesFrom(pool, 12, rng, gen.UniformCapacity(5)),
			K:          5,
		}
		if ok, _ := inst.Feasible(); !ok {
			inst.K = 6
			if ok, _ := inst.Feasible(); !ok {
				continue
			}
		}
		start := time.Now()
		opt, err := solver.Exhaustive(inst, 0)
		if err != nil {
			if errors.Is(err, data.ErrInfeasible) || errors.Is(err, solver.ErrTooLarge) {
				continue
			}
			return err
		}
		exactTime += time.Since(start)

		run := func(a Algo) (*data.Solution, error) {
			switch a {
			case AlgoWMA:
				return core.Solve(inst, core.Options{})
			case AlgoUF:
				return core.SolveUniformFirst(inst, core.Options{})
			case AlgoHilbert:
				return baseline.Hilbert(inst, core.Options{})
			case AlgoNaive:
				return baseline.Naive(inst, seed, core.Options{})
			default:
				return baseline.BRNN(inst, core.Options{})
			}
		}
		for _, a := range algos {
			start := time.Now()
			sol, err := run(a)
			*times[a] += time.Since(start)
			if err != nil {
				return fmt.Errorf("quality batch %d, %s: %w", b, a, err)
			}
			if _, err := inst.CheckSolution(sol); err != nil {
				return fmt.Errorf("quality batch %d, %s: %w", b, a, err)
			}
			r := 1.0
			if opt.Objective > 0 {
				r = float64(sol.Objective) / float64(opt.Objective)
			} else if sol.Objective > 0 {
				r = 2
			}
			ag := ratios[a]
			ag.sum += r
			ag.count++
			if r > ag.worst {
				ag.worst = r
			}
		}
	}

	for _, a := range algos {
		ag := ratios[a]
		if ag.count == 0 {
			continue
		}
		emit(Row{
			Exp: "Q", X: string(a), Algo: a, Objective: -1, Runtime: *times[a],
			Note: fmt.Sprintf("mean ratio to optimal %.3f, worst %.3f over %d instances (exact total %s)",
				ag.sum/float64(ag.count), ag.worst, ag.count, exactTime.Round(time.Millisecond)),
		})
	}
	return nil
}
