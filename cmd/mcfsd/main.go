// Command mcfsd is the long-lived assignment service: it loads an MCFS
// instance once, performs one warm solve (or restores a snapshot), and
// serves assignment queries and population churn over HTTP/JSON.
//
//	mcfsd -in inst.mcfs -addr 127.0.0.1:8080
//	mcfsd -in inst.mcfs -restore snap.json
//	mcfsd -in inst.mcfs -snapshot-every 30s -snapshot-dir /var/lib/mcfsd
//	mcfsd -in inst.mcfs -restore /var/lib/mcfsd   # newest valid generation
//
// Endpoints:
//
//	GET  /assign?customer=H   resolve a customer handle to its facility
//	POST /arrivals            {"nodes":[...]} admit customers, returns handles
//	POST /departures          {"handles":[...]} remove customers
//	POST /resolve             {"algorithm":"wma"} full re-solve + adopt
//	GET  /snapshot            restartable JSON capture of the dynamic state
//	GET  /stats               objective, drift, per-endpoint latency
//	GET  /metrics             Prometheus text exposition (work counters,
//	                          batch counters, latency histograms)
//	GET  /healthz             liveness probe + build info + uptime
//
// Every request is logged as one structured line (stderr, log/slog)
// tagged with a request id that is echoed back as X-Request-Id; -quiet
// disables the log. -debug-addr opt-in binds a SECOND listener serving
// net/http/pprof and expvar (solver work counters under the
// "mcfs_counters" var) — keep it on a loopback or otherwise trusted
// address, profiling endpoints are not for the public network.
//
// Durability and self-healing (DESIGN.md §12): -snapshot-every with
// -snapshot-dir persists a generation of the dynamic state on every
// interval via atomic temp+rename, keeping the newest -snapshot-keep
// generations; -restore accepts either a snapshot file or a generation
// directory, picking the newest generation that parses and skipping
// corrupt ones. -drift-threshold enables the drift-triggered background
// re-solve: when the published objective exceeds threshold × the drift
// baseline, a full re-solve is scheduled through the batch loop (with
// hysteresis and -heal-interval backoff).
//
// The daemon prints "mcfsd: listening on http://ADDR" once the socket
// is bound (use -addr 127.0.0.1:0 to pick a free port) and drains
// gracefully on SIGINT/SIGTERM: the listener closes first, then the
// writer goroutine finishes its batch and exits.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers profiling handlers on DefaultServeMux (served only on -debug-addr)
	"os"
	"os/signal"
	"syscall"
	"time"

	"mcfs"
	"mcfs/internal/serve"
)

func main() {
	var (
		in        = flag.String("in", "", "instance file (required)")
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address (host:0 picks a free port)")
		algo      = flag.String("algo", "wma", "default algorithm for POST /resolve")
		drift     = flag.Float64("drift", 0, "reallocator drift factor (0 = default 1.5, negative disables)")
		restore   = flag.String("restore", "", "restore dynamic state from a snapshot file or generation directory")
		batch     = flag.Int("batch", 0, "max operations coalesced per repair window (0 = default)")
		opTimeout = flag.Duration("optimeout", 0, "per-operation deadline (0 = default 5s)")
		snapEvery = flag.Duration("snapshot-every", 0, "periodic snapshot interval (0 = disabled; requires -snapshot-dir)")
		snapDir   = flag.String("snapshot-dir", "", "directory for periodic snapshot generations")
		snapKeep  = flag.Int("snapshot-keep", 0, "snapshot generations to retain (0 = default 3)")
		driftThr  = flag.Float64("drift-threshold", 0, "drift ratio that triggers a background re-solve (0 = disabled, must exceed 1)")
		healEvery = flag.Duration("heal-interval", 0, "minimum spacing between drift-triggered re-solves (0 = default 30s)")
		debugAddr = flag.String("debug-addr", "", "optional second listener for net/http/pprof + expvar (trusted networks only)")
		quiet     = flag.Bool("quiet", false, "disable the structured per-request log")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "mcfsd: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	algorithm, err := mcfs.ParseAlgorithm(*algo)
	if err != nil {
		fatal(err)
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	inst, err := mcfs.ReadInstance(f)
	//lint:ignore closecheck read path: the file is only read, and a parse error dominates any close error
	f.Close()
	if err != nil {
		fatal(err)
	}

	var snap *mcfs.ReallocatorSnapshot
	if *restore != "" {
		if fi, err := os.Stat(*restore); err == nil && fi.IsDir() {
			// A generation directory: pick the newest snapshot that
			// parses, skipping corrupt ones (a crash can tear at most the
			// file being written when the discipline is violated by the
			// environment — recovery steps back one interval).
			var path string
			var skipped []string
			snap, path, skipped, err = serve.LoadNewestSnapshot(*restore)
			if err != nil {
				fatal(err)
			}
			for _, p := range skipped {
				fmt.Fprintf(os.Stderr, "mcfsd: skipping corrupt snapshot %s\n", p)
			}
			if snap != nil {
				fmt.Printf("mcfsd: restoring from %s\n", path)
			} else {
				fmt.Printf("mcfsd: no snapshots in %s, starting fresh\n", *restore)
			}
		} else {
			sf, err := os.Open(*restore)
			if err != nil {
				fatal(err)
			}
			snap, err = mcfs.ReadReallocatorSnapshot(sf)
			//lint:ignore closecheck read path: the file is only read, and a parse error dominates any close error
			sf.Close()
			if err != nil {
				fatal(err)
			}
		}
	}

	var logger *slog.Logger
	if !*quiet {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	engine, err := serve.New(serve.Config{
		Instance:        inst,
		Algorithm:       algorithm,
		DriftFactor:     *drift,
		MaxBatch:        *batch,
		DefaultTimeout:  *opTimeout,
		Snapshot:        snap,
		Logger:          logger,
		SnapshotEvery:   *snapEvery,
		SnapshotDir:     *snapDir,
		SnapshotKeep:    *snapKeep,
		DriftThreshold:  *driftThr,
		HealMinInterval: *healEvery,
	})
	if err != nil {
		fatal(err)
	}

	// Optional debug listener: pprof registered itself on
	// http.DefaultServeMux via its import; expvar contributes the
	// standard vars plus the solver work counters.
	debugErr := make(chan error, 1)
	var debugSrv *http.Server
	if *debugAddr != "" {
		expvar.Publish("mcfs_counters", expvar.Func(func() any {
			return engine.Recorder().Snapshot()
		}))
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			engine.Close()
			fatal(err)
		}
		fmt.Printf("mcfsd: debug listener (pprof, expvar) on http://%s\n", dln.Addr())
		debugSrv = &http.Server{Handler: http.DefaultServeMux}
		go func() { debugErr <- debugSrv.Serve(dln) }()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		engine.Close()
		fatal(err)
	}
	fmt.Printf("mcfsd: listening on http://%s (objective %d, %d customers)\n",
		ln.Addr(), engine.Objective(), engine.View().Customers())

	srv := &http.Server{Handler: engine.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		fmt.Printf("mcfsd: %s, shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "mcfsd: shutdown:", err)
		}
		cancel()
		<-errCh // Serve has returned ErrServerClosed
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			shutdownDebug(debugSrv, debugErr)
			engine.Close()
			fatal(err)
		}
	}
	shutdownDebug(debugSrv, debugErr)
	engine.Close()
	fmt.Println("mcfsd: bye")
}

// shutdownDebug closes the debug listener (when one was started) and
// joins its serve goroutine.
func shutdownDebug(srv *http.Server, errCh chan error) {
	if srv == nil {
		return
	}
	_ = srv.Close()
	<-errCh
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcfsd:", err)
	os.Exit(1)
}
