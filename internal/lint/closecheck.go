package lint

import (
	"go/ast"
	"strings"
)

// CloseCheck guards the CLIs' write paths: inside cmd/, a bare or
// deferred `f.Close()` on an *os.File whose error is discarded is a
// violation. For a file being written, a failed Close can be the only
// sign of a short write — the PR-1 audit found "wrote" confirmations
// printing after the data silently failed to reach disk. Read-path
// closes that are deliberately unchecked must say so with
// //lint:ignore closecheck <reason>.
type CloseCheck struct{}

// Name implements Rule.
func (CloseCheck) Name() string { return "closecheck" }

// Doc implements Rule.
func (CloseCheck) Doc() string {
	return "no discarded (*os.File).Close() in cmd/ — check the error or annotate why not"
}

// Check implements Rule.
func (CloseCheck) Check(pkg *Package, report ReportFunc) {
	if pkg.Dir != "cmd" && !strings.HasPrefix(pkg.Dir, "cmd/") {
		return
	}
	for _, f := range pkg.Files {
		if f.Test {
			continue
		}
		for _, decl := range f.AST.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkCloseFunc(f, fd.Type, fd.Body, nil, report)
			}
		}
	}
}

// checkCloseFunc scans one function (and, recursively, its closures —
// which capture the enclosing files) for discarded Close calls on
// identifiers that verifiably hold an *os.File.
func checkCloseFunc(f *File, ft *ast.FuncType, body *ast.BlockStmt, outer map[string]bool, report ReportFunc) {
	files := make(map[string]bool)
	for name := range outer {
		files[name] = true
	}
	for _, field := range ft.Params.List {
		if isOSFilePtr(field.Type) {
			for _, name := range field.Names {
				files[name.Name] = true
			}
		}
	}
	// Two passes so a later alias (w = f) still resolves; the tracking
	// is flow-insensitive on purpose — over-approximating which idents
	// hold files can only surface more discarded closes, never hide one.
	for range [2]struct{}{} {
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				return true
			}
			tracked := false
			switch rhs := as.Rhs[0].(type) {
			case *ast.CallExpr:
				tracked = isOSOpenCall(rhs)
			case *ast.Ident:
				tracked = files[rhs.Name]
			}
			if tracked {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
					files[id.Name] = true
				}
			}
			return true
		})
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkCloseFunc(f, n.Type, n.Body, files, report)
			return false
		case *ast.ExprStmt:
			if name, ok := discardedClose(n.X, files); ok {
				report(f, n.Pos(),
					"error from %s.Close() is discarded; on a write path a failed Close can be the only sign of a short write — check it (or //lint:ignore closecheck <reason> for a read path)", name)
			}
		case *ast.DeferStmt:
			if name, ok := discardedClose(n.Call, files); ok {
				report(f, n.Pos(),
					"deferred %s.Close() discards its error; close write-path files explicitly and check the error (or //lint:ignore closecheck <reason> for a read path)", name)
			}
		}
		return true
	})
}

// discardedClose reports whether e is `name.Close()` on a tracked file.
func discardedClose(e ast.Expr, files map[string]bool) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || !files[id.Name] {
		return "", false
	}
	return id.Name, true
}

// isOSOpenCall recognizes os.Open, os.Create and os.OpenFile.
func isOSOpenCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return isPkgSel(sel, "os", "Open") || isPkgSel(sel, "os", "Create") || isPkgSel(sel, "os", "OpenFile")
}

// isOSFilePtr recognizes the *os.File type expression.
func isOSFilePtr(t ast.Expr) bool {
	star, ok := t.(*ast.StarExpr)
	if !ok {
		return false
	}
	sel, ok := star.X.(*ast.SelectorExpr)
	return ok && isPkgSel(sel, "os", "File")
}
