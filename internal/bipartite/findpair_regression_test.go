package bipartite

import (
	"context"
	"errors"
	"strings"
	"testing"

	"mcfs/internal/data"
	"mcfs/internal/graph"
)

// searcherCheckEvery mirrors graph's unexported checkEvery: the number
// of heap pops between context polls inside a network search. The line
// graphs below exceed it so a cancellation can strike mid-expansion.
const searcherCheckEvery = 4096

// longLineMatcher builds a matcher over a path graph long enough that
// the customer's initial searcher expansion crosses at least one
// context poll before reaching the only candidate at the far end.
func longLineMatcher(t *testing.T) *Matcher {
	t.Helper()
	n := 3 * searcherCheckEvery
	b := graph.NewBuilder(n, false)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1), 1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	facs := []data.Facility{{Node: int32(n - 1), Capacity: 1}}
	return New(g, []int32{0}, facs)
}

// countdownCtx reports nil from Err for a fixed number of calls, then
// context.Canceled — a deterministic stand-in for a context cancelled
// concurrently, mid-search.
type countdownCtx struct {
	context.Context
	remaining int
}

func (c *countdownCtx) Err() error {
	if c.remaining > 0 {
		c.remaining--
		return nil
	}
	return context.Canceled
}

// TestFindPairCtxCancellationIsNotInfeasibility is the regression test
// for the cancellation-masquerade bug: a cancellation that strikes
// during the lazily-created searcher's initial expansion poisons it
// (PeekDist() == Inf), and FindPairCtx used to report (false, nil) —
// "customer unservable" — which AssignToSelection then converts to
// ErrInfeasible. The context error must surface instead.
func TestFindPairCtxCancellationIsNotInfeasibility(t *testing.T) {
	mt := longLineMatcher(t)
	// One Err() call is FindPairCtx's own top-of-loop checkpoint; the
	// next poll happens searcherCheckEvery pops into the searcher's
	// initial advance, well before the far-end candidate is reached.
	ctx := &countdownCtx{Context: context.Background(), remaining: 1}
	matched, err := mt.FindPairCtx(ctx, 0)
	if matched {
		t.Fatal("FindPairCtx reported a match under a mid-search cancellation")
	}
	if err == nil {
		t.Fatal("FindPairCtx returned (false, nil): cancellation reported as infeasibility")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestFindPairCtxUncancelledLineMatches sanity-checks the same instance
// without cancellation: the far-end facility is found.
func TestFindPairCtxUncancelledLineMatches(t *testing.T) {
	mt := longLineMatcher(t)
	matched, err := mt.FindPairCtx(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !matched {
		t.Fatal("FindPairCtx found no match on a connected line")
	}
}

// TestMaterializeFailureInvariant is the regression test for the
// infinite-spin hardening: when materialize fails although the searcher
// recorded no cancellation, the retry loop used to re-run shortestPath
// with unchanged state forever. The failure must classify as an
// explicit invariant error instead.
func TestMaterializeFailureInvariant(t *testing.T) {
	mt := ctxTestMatcher(t)
	// Exhaust customer 0's searcher: the graph has two candidates, so
	// the third materialization fails with no error recorded.
	for mt.materialize(0) {
	}
	if serr := mt.searchers[0].Err(); serr != nil {
		t.Fatalf("exhausted searcher recorded error %v, want nil", serr)
	}
	err := mt.materializeFailure(0)
	if err == nil {
		t.Fatal("materializeFailure returned nil for an exhausted, uncancelled searcher")
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("invariant breach misclassified as a context error: %v", err)
	}
	if !strings.Contains(err.Error(), "invariant") {
		t.Fatalf("err = %v, want an explicit invariant-breach error", err)
	}
}

// TestMaterializeFailurePropagatesSearcherError pins the other branch:
// a searcher poisoned by cancellation propagates the recorded context
// error, not the invariant error.
func TestMaterializeFailurePropagatesSearcherError(t *testing.T) {
	mt := longLineMatcher(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	mt.ctx = ctx
	s := mt.searcher(0) // initial advance crosses a poll and poisons
	if s.Err() == nil {
		t.Fatal("searcher survived a cancelled initial expansion")
	}
	if err := mt.materializeFailure(0); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
