package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"mcfs"
)

// testInstance builds a moderate synthetic instance with enough
// capacity slack that churn stays feasible.
func testInstance(t *testing.T) *mcfs.Instance {
	t.Helper()
	g, err := mcfs.GenerateSynthetic(mcfs.SyntheticConfig{N: 300, Alpha: 2.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	pool := mcfs.LargestComponent(g)
	return &mcfs.Instance{
		G:          g,
		Customers:  mcfs.SampleCustomersFrom(pool, 30, rng),
		Facilities: mcfs.SampleFacilitiesFrom(pool, 60, rng, mcfs.UniformCapacity(10)),
		K:          8,
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Instance == nil {
		cfg.Instance = testInstance(t)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// call performs one JSON request and decodes the response into out
// (skipped when out is nil); it returns the HTTP status.
func call(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var reader io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		reader = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, reader)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: bad response %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode
}

func TestServeLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	// Health and initial reads.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	var asg AssignReply
	if code := call(t, "GET", ts.URL+"/assign?customer=0", nil, &asg); code != 200 {
		t.Fatalf("assign = %d", code)
	}
	if asg.Customer != 0 || asg.FacilityNode < 0 {
		t.Fatalf("assign reply %+v", asg)
	}

	// Arrivals: new handles appear in the published view.
	inst := s.cfg.Instance
	var churn ChurnReply
	if code := call(t, "POST", ts.URL+"/arrivals",
		ArrivalsRequest{Nodes: []int32{inst.Customers[0], inst.Customers[1]}}, &churn); code != 200 {
		t.Fatalf("arrivals = %d", code)
	}
	if len(churn.Handles) != 2 {
		t.Fatalf("arrivals handles %v", churn.Handles)
	}
	for _, h := range churn.Handles {
		if code := call(t, "GET", fmt.Sprintf("%s/assign?customer=%d", ts.URL, h), nil, &asg); code != 200 {
			t.Fatalf("assign new handle %d = %d", h, code)
		}
	}

	// Departures remove them again.
	if code := call(t, "POST", ts.URL+"/departures",
		DeparturesRequest{Handles: churn.Handles}, &churn); code != 200 {
		t.Fatalf("departures = %d", code)
	}
	if code := call(t, "GET", fmt.Sprintf("%s/assign?customer=%d", ts.URL, churn.Handles[0]), nil, nil); code != 404 {
		t.Fatalf("departed handle still assigned: %d", code)
	}

	// Resolve through a registry algorithm.
	var rr ResolveReply
	if code := call(t, "POST", ts.URL+"/resolve", ResolveRequest{Algorithm: "uf"}, &rr); code != 200 {
		t.Fatalf("resolve = %d", code)
	}
	if rr.Algorithm != "uf" || rr.Objective <= 0 {
		t.Fatalf("resolve reply %+v", rr)
	}

	// Stats reflect the traffic.
	var st StatsReply
	if code := call(t, "GET", ts.URL+"/stats", nil, &st); code != 200 {
		t.Fatalf("stats = %d", code)
	}
	if st.Customers != s.View().Customers() || st.Objective != s.Objective() {
		t.Fatalf("stats %+v out of sync with view", st)
	}
	if st.Endpoints["arrivals"].Count == 0 || st.Endpoints["assign"].P99NS < 0 {
		t.Fatalf("endpoint latency missing: %+v", st.Endpoints)
	}
	if st.Batches == 0 || st.BatchedOps < st.Batches {
		t.Fatalf("batch counters %d/%d", st.Batches, st.BatchedOps)
	}
}

func TestServeErrorMapping(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name   string
		method string
		path   string
		body   any
		want   int
		code   string
	}{
		{"unknown handle", "GET", "/assign?customer=99999", nil, 404, "unknown_handle"},
		{"bad handle", "GET", "/assign?customer=x", nil, 400, "bad_request"},
		{"bad node", "POST", "/arrivals", ArrivalsRequest{Nodes: []int32{-4}}, 400, "bad_node"},
		{"empty arrivals", "POST", "/arrivals", ArrivalsRequest{}, 400, "bad_request"},
		{"unknown departure", "POST", "/departures", DeparturesRequest{Handles: []int{99999}}, 404, "unknown_handle"},
		{"unknown algorithm", "POST", "/resolve", ResolveRequest{Algorithm: "gurobi"}, 400, "bad_request"},
		{"oversize exhaustive", "POST", "/resolve", ResolveRequest{Algorithm: "exhaustive"}, 413, "too_large"},
	}
	for _, tc := range cases {
		var body struct {
			Code  string `json:"code"`
			Error string `json:"error"`
		}
		got := call(t, tc.method, ts.URL+tc.path, tc.body, &body)
		if got != tc.want || body.Code != tc.code {
			t.Errorf("%s: status %d code %q, want %d %q (%s)", tc.name, got, body.Code, tc.want, tc.code, body.Error)
		}
		if body.Error == "" {
			t.Errorf("%s: empty error detail", tc.name)
		}
	}
}

func TestServeSnapshotRestart(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	inst := s.cfg.Instance
	var churn ChurnReply
	if code := call(t, "POST", ts.URL+"/arrivals",
		ArrivalsRequest{Nodes: inst.Customers[:3]}, &churn); code != 200 {
		t.Fatalf("arrivals = %d", code)
	}
	if code := call(t, "POST", ts.URL+"/departures",
		DeparturesRequest{Handles: churn.Handles[:1]}, &churn); code != 200 {
		t.Fatalf("departures = %d", code)
	}
	want := s.Objective()

	resp, err := http.Get(ts.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	snap, err := mcfs.ReadReallocatorSnapshot(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	restarted, err := New(Config{Instance: inst, Snapshot: snap})
	if err != nil {
		t.Fatal(err)
	}
	defer restarted.Close()
	if got := restarted.Objective(); got != want {
		t.Fatalf("restarted objective %d, want %d", got, want)
	}
	if restarted.View().Customers() != s.View().Customers() {
		t.Fatalf("restarted customers %d, want %d", restarted.View().Customers(), s.View().Customers())
	}
}

// TestServeConcurrentChurn hammers the server with concurrent readers
// and writers; under -race this exercises the publish/swap read path
// against the batching writer.
func TestServeConcurrentChurn(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	inst := s.cfg.Instance

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	// Writers: each admits customers then removes them again.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				node := inst.Customers[(w*8+i)%len(inst.Customers)]
				var churn ChurnReply
				if code := call(t, "POST", ts.URL+"/arrivals",
					ArrivalsRequest{Nodes: []int32{node}}, &churn); code != 200 {
					errs <- fmt.Errorf("writer %d: arrivals status %d", w, code)
					return
				}
				if code := call(t, "POST", ts.URL+"/departures",
					DeparturesRequest{Handles: churn.Handles}, &churn); code != 200 {
					errs <- fmt.Errorf("writer %d: departures status %d", w, code)
					return
				}
			}
		}(w)
	}
	// Readers: resolve random handles and poll stats; 404 is a valid
	// outcome for a handle that already departed.
	for rdr := 0; rdr < 4; rdr++ {
		wg.Add(1)
		go func(rdr int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				code := call(t, "GET", fmt.Sprintf("%s/assign?customer=%d", ts.URL, i%40), nil, nil)
				if code != 200 && code != 404 {
					errs <- fmt.Errorf("reader %d: assign status %d", rdr, code)
					return
				}
				if i%10 == 0 {
					if code := call(t, "GET", ts.URL+"/stats", nil, nil); code != 200 {
						errs <- fmt.Errorf("reader %d: stats status %d", rdr, code)
						return
					}
				}
			}
		}(rdr)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// All churn is symmetric: the population is back to the baseline.
	if got := s.View().Customers(); got != len(inst.Customers) {
		t.Fatalf("population %d after symmetric churn, want %d", got, len(inst.Customers))
	}
}

func TestServeConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil instance accepted")
	}
	if _, err := New(Config{Instance: testInstance(t), Algorithm: "bogus"}); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("bogus algorithm: %v", err)
	}
}

func TestServeMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Drive some solver work so the counters are nonzero.
	var churn ChurnReply
	inst := testInstance(t)
	if code := call(t, "POST", ts.URL+"/arrivals",
		ArrivalsRequest{Nodes: []int32{inst.Customers[0]}}, &churn); code != 200 {
		t.Fatalf("arrivals = %d", code)
	}
	if code := call(t, "GET", ts.URL+"/stats", nil, nil); code != 200 {
		t.Fatalf("stats = %d", code)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	// The three families the PR promises: solver work counters, batch
	// counters, request latency histograms.
	for _, want := range []string{
		"mcfs_sspa_augmenting_paths_total",
		"mcfs_dijkstra_heap_pops_total",
		"mcfsd_batches_total",
		"mcfsd_batched_ops_total",
		"mcfsd_queue_depth",
		`mcfsd_request_duration_seconds_bucket{endpoint="arrivals",le="+Inf"}`,
		`mcfsd_request_duration_seconds_count{endpoint="arrivals"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Every line must be a comment or "name[{labels}] value" with a
	// numeric value — the same shape the ci.sh awk smoke enforces.
	seen := 0
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		seen++
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		if _, err := strconv.ParseFloat(line[i+1:], 64); err != nil {
			t.Fatalf("non-numeric value in line %q: %v", line, err)
		}
	}
	if seen == 0 {
		t.Fatal("exposition has no samples")
	}

	// The arrivals above ran solver work: at least one augmenting path
	// must have been recorded.
	if !regexpMustFindPositive(t, body, "mcfs_sspa_augmenting_paths_total") {
		t.Errorf("sspa_augmenting_paths_total still zero after arrivals:\n%s", body)
	}
}

// scrapeMetrics fetches /metrics and fails the test on transport or
// status errors.
func scrapeMetrics(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// assertExpositionShape fails on any line that is not a comment or
// "name[{labels}] value" with a numeric value — the same shape the
// ci.sh awk smoke enforces.
func assertExpositionShape(t *testing.T, body string) {
	t.Helper()
	seen := 0
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		seen++
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		if _, err := strconv.ParseFloat(line[i+1:], 64); err != nil {
			t.Fatalf("non-numeric value in line %q: %v", line, err)
		}
	}
	if seen == 0 {
		t.Fatal("exposition has no samples")
	}
}

// metricValue extracts the value of an unlabelled metric from the
// exposition.
func metricValue(t *testing.T, body, metric string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, metric+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, metric+" "), 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("metric %s absent", metric)
	return 0
}

// TestServeMetricsUnderConcurrentLoad hammers the read and write paths
// while scraping /metrics: every scrape must stay parseable, and the
// cumulative counters must be monotone non-decreasing between scrapes
// (a scrape observing a counter going backwards means the exposition
// reads state non-atomically enough to lie). Run under -race this also
// exercises every handler against the scraper.
func TestServeMetricsUnderConcurrentLoad(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	inst := s.cfg.Instance

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	// Churn writers: symmetric arrivals/departures until told to stop.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				node := inst.Customers[(w*7+i)%len(inst.Customers)]
				var churn ChurnReply
				if code := call(t, "POST", ts.URL+"/arrivals",
					ArrivalsRequest{Nodes: []int32{node}}, &churn); code != 200 {
					errs <- fmt.Errorf("writer %d: arrivals status %d", w, code)
					return
				}
				if code := call(t, "POST", ts.URL+"/departures",
					DeparturesRequest{Handles: churn.Handles}, &churn); code != 200 {
					errs <- fmt.Errorf("writer %d: departures status %d", w, code)
					return
				}
			}
		}(w)
	}
	// Assign readers: the satellite's target endpoint; 404 is fine for
	// a handle that already departed.
	for rdr := 0; rdr < 3; rdr++ {
		wg.Add(1)
		go func(rdr int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				code := call(t, "GET", fmt.Sprintf("%s/assign?customer=%d", ts.URL, i%64), nil, nil)
				if code != 200 && code != 404 {
					errs <- fmt.Errorf("reader %d: assign status %d", rdr, code)
					return
				}
			}
		}(rdr)
	}

	monotone := []string{
		"mcfs_sspa_augmenting_paths_total",
		"mcfs_dijkstra_heap_pops_total",
		"mcfsd_batches_total",
		"mcfsd_batched_ops_total",
	}
	prev := make(map[string]float64, len(monotone))
	for i := 0; i < 25; i++ {
		body := scrapeMetrics(t, ts.URL)
		assertExpositionShape(t, body)
		for _, name := range monotone {
			v := metricValue(t, body, name)
			if v < prev[name] {
				t.Errorf("scrape %d: %s went backwards: %v -> %v", i, name, prev[name], v)
			}
			prev[name] = v
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if prev["mcfsd_batches_total"] == 0 {
		t.Error("no batches observed during the load test")
	}
}

// regexpMustFindPositive reports whether the exposition carries a
// strictly positive value for the given metric name.
func regexpMustFindPositive(t *testing.T, body, metric string) bool {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, metric+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, metric+" "), 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		return v > 0
	}
	t.Fatalf("metric %s absent", metric)
	return false
}

func TestServeHealthzBuildInfo(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var hz HealthzReply
	if code := call(t, "GET", ts.URL+"/healthz", nil, &hz); code != 200 {
		t.Fatalf("healthz = %d", code)
	}
	if hz.Status != "ok" {
		t.Fatalf("healthz status %q", hz.Status)
	}
	if !strings.HasPrefix(hz.GoVersion, "go") {
		t.Fatalf("healthz go_version %q", hz.GoVersion)
	}
	if hz.VCSRevision == "" {
		t.Fatal("healthz vcs_revision empty (want a revision or \"unknown\")")
	}
	if hz.UptimeSeconds < 0 {
		t.Fatalf("healthz uptime %f", hz.UptimeSeconds)
	}
}

func TestServeStatsQueueDepth(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var st StatsReply
	if code := call(t, "GET", ts.URL+"/stats", nil, &st); code != 200 {
		t.Fatalf("stats = %d", code)
	}
	// An idle server publishes with an empty queue; the field must be
	// present and sane (the JSON decode above proves presence via the
	// struct round-trip, this pins the value).
	if st.QueueDepth != 0 {
		t.Fatalf("idle queue depth %d", st.QueueDepth)
	}
	if st.BatchedOps < st.Batches {
		t.Fatalf("batched_ops %d < batches %d", st.BatchedOps, st.Batches)
	}
}

func TestServeRequestLogging(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewTextHandler(&lockedWriter{w: &buf, mu: &mu}, nil))
	_, ts := newTestServer(t, Config{Logger: logger})

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id1 := resp.Header.Get("X-Request-Id")
	if id1 == "" {
		t.Fatal("missing X-Request-Id header")
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id2 := resp.Header.Get("X-Request-Id")
	if id1 == id2 {
		t.Fatalf("request ids not unique: %s / %s", id1, id2)
	}

	mu.Lock()
	logs := buf.String()
	mu.Unlock()
	for _, want := range []string{"msg=request", "path=/stats", "path=/healthz", "status=200", "duration="} {
		if !strings.Contains(logs, want) {
			t.Errorf("request log missing %q:\n%s", want, logs)
		}
	}
}

// lockedWriter serializes concurrent log writes in tests.
type lockedWriter struct {
	w  io.Writer
	mu *sync.Mutex
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}
