// Command mcfsperf runs the hot-path perf suite and manages the
// BENCH_*.json trajectory (DESIGN.md §11).
//
// Run mode (default) measures the suite and writes a schema-versioned
// JSON file:
//
//	mcfsperf -out BENCH_$(date -u +%Y%m%dT%H%M%SZ).json
//
// Compare mode diffs two such files and exits 1 when any shared
// benchmark slowed down past the threshold:
//
//	mcfsperf -compare old.json new.json -threshold 1.15
//
// scripts/bench.sh and scripts/benchcmp.sh wrap the two modes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mcfs/internal/bench"
	"mcfs/internal/graph"
)

func main() {
	var (
		out       = flag.String("out", "", "output path (default BENCH_<stamp>.json)")
		quick     = flag.Bool("quick", false, "reduced instances for CI smoke runs (not comparable to full runs)")
		seed      = flag.Int64("seed", 1, "instance-generation seed")
		cities    = flag.String("cities", "", "comma-separated city presets (default aalborg,copenhagen; quick: aalborg)")
		queue     = flag.String("queue", "auto", "frontier queue override: auto, heap, or bucket (recorded as the file's variant)")
		compare   = flag.Bool("compare", false, "compare two BENCH_*.json files given as arguments instead of running")
		threshold = flag.Float64("threshold", 1.15, "compare: ns/op growth ratio beyond which a benchmark counts as regressed")
	)
	flag.Parse()
	if err := run(*out, *quick, *seed, *cities, *queue, *compare, *threshold, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "mcfsperf:", err)
		os.Exit(1)
	}
}

func run(out string, quick bool, seed int64, cities, queue string, compare bool, threshold float64, args []string) error {
	if compare {
		if len(args) != 2 {
			return fmt.Errorf("-compare needs exactly two files, got %d", len(args))
		}
		old, err := bench.ReadPerfFile(args[0])
		if err != nil {
			return err
		}
		cur, err := bench.ReadPerfFile(args[1])
		if err != nil {
			return err
		}
		deltas, err := bench.ComparePerf(old, cur, threshold)
		if err != nil {
			return err
		}
		report, regressions := bench.FormatPerfDeltas(deltas)
		fmt.Print(report)
		if regressions > 0 {
			return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%", regressions, (threshold-1)*100)
		}
		fmt.Printf("ok: %d shared benchmark(s) within the %.0f%% threshold\n", len(deltas), (threshold-1)*100)
		return nil
	}

	variant := ""
	switch queue {
	case "auto", "":
	case "heap":
		graph.SetQueueMode(graph.QueueHeap)
		variant = "heap"
	case "bucket":
		graph.SetQueueMode(graph.QueueBucket)
		variant = "bucket"
	default:
		return fmt.Errorf("unknown -queue %q (want auto, heap, or bucket)", queue)
	}
	cfg := bench.PerfConfig{Quick: quick, Seed: seed, Variant: variant}
	if cities != "" {
		cfg.Cities = strings.Split(cities, ",")
	}
	file, err := bench.RunPerf(cfg, func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	})
	if err != nil {
		return err
	}
	if out == "" {
		out = "BENCH_" + bench.PerfStamp() + ".json"
	}
	if err := bench.WritePerfFile(file, out); err != nil {
		return err
	}
	fmt.Println(out)
	return nil
}
