package pq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestDenseHeapBasic(t *testing.T) {
	h := NewDense(10)
	if h.Len() != 0 {
		t.Fatalf("new heap not empty: %d", h.Len())
	}
	h.Push(3, 30)
	h.Push(1, 10)
	h.Push(7, 20)
	if id, key := h.PeekMin(); id != 1 || key != 10 {
		t.Fatalf("PeekMin = (%d,%d), want (1,10)", id, key)
	}
	if !h.Contains(7) || h.Contains(2) {
		t.Fatal("Contains wrong")
	}
	if h.Key(7) != 20 {
		t.Fatalf("Key(7) = %d, want 20", h.Key(7))
	}
	id, key := h.PopMin()
	if id != 1 || key != 10 {
		t.Fatalf("PopMin = (%d,%d), want (1,10)", id, key)
	}
	if h.Contains(1) {
		t.Fatal("popped item still contained")
	}
	if h.Len() != 2 {
		t.Fatalf("Len = %d, want 2", h.Len())
	}
}

func TestDenseHeapDecreaseKey(t *testing.T) {
	h := NewDense(5)
	h.Push(0, 100)
	h.Push(1, 50)
	h.DecreaseKey(0, 10)
	if id, _ := h.PeekMin(); id != 0 {
		t.Fatalf("after decrease, min = %d, want 0", id)
	}
	h.DecreaseKey(0, 999) // no-op: not lower
	if h.Key(0) != 10 {
		t.Fatalf("DecreaseKey raised key to %d", h.Key(0))
	}
	h.DecreaseKey(4, 5) // insert-if-absent
	if id, key := h.PeekMin(); id != 4 || key != 5 {
		t.Fatalf("min = (%d,%d), want (4,5)", id, key)
	}
}

func TestDenseHeapPushUpdatesKey(t *testing.T) {
	h := NewDense(3)
	h.Push(0, 10)
	h.Push(1, 20)
	h.Push(0, 30) // raise key of existing item
	if id, key := h.PeekMin(); id != 1 || key != 20 {
		t.Fatalf("min = (%d,%d), want (1,20)", id, key)
	}
}

func TestDenseHeapRemove(t *testing.T) {
	h := NewDense(6)
	for i := int32(0); i < 6; i++ {
		h.Push(i, int64(10-i))
	}
	h.Remove(5) // current min
	if id, _ := h.PeekMin(); id != 4 {
		t.Fatalf("after Remove(5), min = %d, want 4", id)
	}
	h.Remove(0) // max
	h.Remove(3)
	h.Remove(3) // double remove is a no-op
	var got []int32
	for h.Len() > 0 {
		id, _ := h.PopMin()
		got = append(got, id)
	}
	want := []int32{4, 2, 1}
	if len(got) != len(want) {
		t.Fatalf("drain = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain = %v, want %v", got, want)
		}
	}
}

func TestDenseHeapReset(t *testing.T) {
	h := NewDense(4)
	h.Push(0, 1)
	h.Push(1, 2)
	h.Reset()
	if h.Len() != 0 || h.Contains(0) || h.Contains(1) {
		t.Fatal("Reset did not clear heap")
	}
	h.Push(1, 7)
	if id, key := h.PeekMin(); id != 1 || key != 7 {
		t.Fatal("heap unusable after Reset")
	}
}

// drainSorted checks that popping yields keys in nondecreasing order and
// returns the popped keys.
func drainDense(h *DenseHeap) []int64 {
	var keys []int64
	for h.Len() > 0 {
		_, k := h.PopMin()
		keys = append(keys, k)
	}
	return keys
}

func TestDenseHeapRandomAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		h := NewDense(n)
		latest := make(map[int32]int64)
		for op := 0; op < 500; op++ {
			id := int32(rng.Intn(n))
			key := int64(rng.Intn(1000))
			h.Push(id, key)
			latest[id] = key
		}
		var want []int64
		for _, k := range latest {
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		got := drainDense(h)
		if len(got) != len(want) {
			t.Fatalf("drained %d items, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: drain[%d] = %d, want %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestSparseHeapMirrorsDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewDense(1000)
	s := NewSparse()
	for op := 0; op < 3000; op++ {
		switch rng.Intn(4) {
		case 0, 1:
			id := int32(rng.Intn(1000))
			key := int64(rng.Intn(5000))
			d.Push(id, key)
			s.Push(id, key)
		case 2:
			id := int32(rng.Intn(1000))
			key := int64(rng.Intn(5000))
			d.DecreaseKey(id, key)
			s.DecreaseKey(id, key)
		case 3:
			if d.Len() > 0 {
				di, dk := d.PopMin()
				si, sk := s.PopMin()
				if dk != sk {
					t.Fatalf("op %d: dense popped key %d, sparse %d", op, dk, sk)
				}
				// Ids may differ on equal keys; containment must agree.
				if d.Contains(di) || s.Contains(si) {
					t.Fatal("popped item still contained")
				}
			}
		}
		if d.Len() != s.Len() {
			t.Fatalf("op %d: len mismatch dense=%d sparse=%d", op, d.Len(), s.Len())
		}
	}
}

func TestSparseHeapLargeIDs(t *testing.T) {
	h := NewSparse()
	h.Push(1<<30, 5)
	h.Push(42, 3)
	if id, _ := h.PopMin(); id != 42 {
		t.Fatalf("min id = %d, want 42", id)
	}
	if id, _ := h.PopMin(); id != 1<<30 {
		t.Fatalf("second id = %d, want %d", id, 1<<30)
	}
}

func TestSparseHeapReset(t *testing.T) {
	h := NewSparse()
	h.Push(9, 1)
	h.Reset()
	if h.Len() != 0 || h.Contains(9) {
		t.Fatal("Reset did not clear")
	}
}

func TestGenericHeapOrdering(t *testing.T) {
	type item struct {
		gain int
		age  int
	}
	// Max-gain first, then lower age (an LRU-style composite key).
	h := NewHeap[item](func(a, b item) bool {
		if a.gain != b.gain {
			return a.gain > b.gain
		}
		return a.age < b.age
	})
	h.Push(item{3, 5})
	h.Push(item{7, 9})
	h.Push(item{7, 2})
	h.Push(item{1, 0})
	want := []item{{7, 2}, {7, 9}, {3, 5}, {1, 0}}
	for i, w := range want {
		got := h.Pop()
		if got != w {
			t.Fatalf("pop %d = %+v, want %+v", i, got, w)
		}
	}
	if h.Len() != 0 {
		t.Fatal("heap not drained")
	}
}

func TestGenericHeapQuickSortsInts(t *testing.T) {
	f := func(xs []int16) bool {
		h := NewHeap[int16](func(a, b int16) bool { return a < b })
		for _, x := range xs {
			h.Push(x)
		}
		sorted := append([]int16(nil), xs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, w := range sorted {
			if got := h.Pop(); got != w {
				return false
			}
		}
		return h.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGenericHeapPeekAndReset(t *testing.T) {
	h := NewHeap[int](func(a, b int) bool { return a < b })
	h.Push(4)
	h.Push(2)
	if h.Peek() != 2 {
		t.Fatalf("Peek = %d, want 2", h.Peek())
	}
	h.Reset()
	if h.Len() != 0 {
		t.Fatal("Reset failed")
	}
}

func BenchmarkDenseHeapPushPop(b *testing.B) {
	const n = 1024
	rng := rand.New(rand.NewSource(3))
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(rng.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := NewDense(n)
		for j := int32(0); j < n; j++ {
			h.Push(j, keys[j])
		}
		for h.Len() > 0 {
			h.PopMin()
		}
	}
}
