// Package hilbert implements the Hilbert space-filling curve used by the
// Hilbert bucketing baseline (paper §VII-A, citing Kamel & Faloutsos'
// Hilbert R-tree). Encode maps a 2-D cell to its curve position; Decode
// inverts it. Both operate on an order-o curve over a 2^o × 2^o grid.
package hilbert

// Encode returns the distance along the order-o Hilbert curve of cell
// (x, y), where 0 <= x, y < 2^o. The classic bit-twiddling formulation
// rotates quadrant frames as it descends.
func Encode(order uint, x, y uint32) uint64 {
	var d uint64
	for s := uint32(1) << (order - 1); s > 0; s >>= 1 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		x, y = rotate(s, x, y, rx, ry)
	}
	return d
}

// Decode returns the cell (x, y) at distance d along the order-o curve.
func Decode(order uint, d uint64) (x, y uint32) {
	t := d
	for s := uint32(1); s < 1<<order; s <<= 1 {
		rx := uint32(1) & uint32(t/2)
		ry := uint32(1) & uint32(t^uint64(rx))
		x, y = rotate(s, x, y, rx, ry)
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y
}

// rotate flips/rotates a quadrant frame.
func rotate(s, x, y, rx, ry uint32) (uint32, uint32) {
	if ry == 0 {
		if rx == 1 {
			x = s - 1 - x
			y = s - 1 - y
		}
		x, y = y, x
	}
	return x, y
}

// EncodeFloat quantizes planar coordinates within [minX,maxX]×[minY,maxY]
// onto an order-o grid and returns the Hilbert position. Degenerate
// extents (max == min) map to cell 0 on that axis.
func EncodeFloat(order uint, x, y, minX, maxX, minY, maxY float64) uint64 {
	side := float64(uint64(1) << order)
	qx := quantize(x, minX, maxX, side)
	qy := quantize(y, minY, maxY, side)
	return Encode(order, qx, qy)
}

func quantize(v, lo, hi, side float64) uint32 {
	if hi <= lo {
		return 0
	}
	f := (v - lo) / (hi - lo) * side
	if f < 0 {
		f = 0
	}
	if f >= side {
		f = side - 1
	}
	return uint32(f)
}
