// Package obs is the zero-dependency observability layer threaded
// through every solver layer and the serving stack (DESIGN.md §13).
//
// The unit of instrumentation is the Recorder: a set of named monotonic
// work counters (heap pops, augmenting paths, branch-and-bound nodes,
// repair passes — the natural work units of the paper's algorithms)
// plus a tree of phase spans (solve → iterate → match → repair) that
// attribute elapsed time and counter deltas to algorithm phases. A
// Recorder travels via context.Context (WithRecorder / From), so no
// solver signature changes: instrumented code asks the context once per
// entry point and accumulates into plain local integers on the hot
// path, flushing with a handful of atomic adds on exit.
//
// Recording is strictly passive — it never feeds back into any solver
// decision, pinned by the traced-vs-untraced byte-identity tests in
// internal/bench. Absent a Recorder every hook is nil-safe and
// amounts to a context lookup per solve-layer call plus local counter
// arithmetic already dominated by the work being counted (verified by
// BenchmarkRecorderOverhead in internal/graph).
//
// Counters are safe for concurrent use (atomic). The span stack is
// guarded by a mutex but assumes phases of one Recorder nest from a
// single goroutine at a time — true for every solver (single-threaded
// per solve) and for mcfsd's single-writer batch loop.
package obs

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Counter identifies one named monotonic work counter. The fixed enum
// (rather than string keys) keeps recording an array-indexed atomic add
// with no map or allocation on any path a solver touches.
type Counter int

// The counter catalogue, one block per layer.
const (
	// Graph search layer (internal/graph).
	DijkstraHeapPops Counter = iota
	DijkstraRelaxations
	DijkstraBucketOverflows
	// Matching engine (internal/bipartite, the SSPA of §IV-D).
	SSPASearches
	SSPANodesScanned
	SSPAEdgesMaterialized
	SSPAAugmentingPaths
	// WMA main loop (internal/core, Algorithm 1).
	WMAIterations
	// Exact solver (internal/solver, branch and bound).
	BnBNodesExpanded
	BnBNodesPruned
	BnBIncumbentUpdates
	// Dynamic layer (internal/dynamic).
	ReallocRepairs
	ReallocReroutedCustomers
	ReallocFullSolves
	// Serving layer durability and self-healing (internal/serve).
	ServeSnapshots
	ServeSnapshotFailures
	ServeHealTriggers
	ServeHeals
	ServeHealFailures

	numCounters // sentinel; keep last
)

// counterNames are the stable exposition names (Prometheus metric
// stems, bench CSV columns, span-delta keys). Never rename an entry —
// downstream trajectories key on them.
var counterNames = [numCounters]string{
	DijkstraHeapPops:         "dijkstra_heap_pops",
	DijkstraRelaxations:      "dijkstra_relaxations",
	DijkstraBucketOverflows:  "dijkstra_bucket_overflows",
	SSPASearches:             "sspa_searches",
	SSPANodesScanned:         "sspa_nodes_scanned",
	SSPAEdgesMaterialized:    "sspa_edges_materialized",
	SSPAAugmentingPaths:      "sspa_augmenting_paths",
	WMAIterations:            "wma_iterations",
	BnBNodesExpanded:         "bnb_nodes_expanded",
	BnBNodesPruned:           "bnb_nodes_pruned",
	BnBIncumbentUpdates:      "bnb_incumbent_updates",
	ReallocRepairs:           "realloc_repairs",
	ReallocReroutedCustomers: "realloc_rerouted_customers",
	ReallocFullSolves:        "realloc_full_solves",
	ServeSnapshots:           "serve_snapshots",
	ServeSnapshotFailures:    "serve_snapshot_failures",
	ServeHealTriggers:        "serve_heal_triggers",
	ServeHeals:               "serve_heals",
	ServeHealFailures:        "serve_heal_failures",
}

// counterHelp is the one-line exposition help text per counter.
var counterHelp = [numCounters]string{
	DijkstraHeapPops:         "frontier pops across all network Dijkstra variants",
	DijkstraRelaxations:      "successful distance improvements across all network Dijkstra variants",
	DijkstraBucketOverflows:  "Dial bucket-queue pushes that landed in the overflow list",
	SSPASearches:             "inner shortest-path searches run by the bipartite matching engine",
	SSPANodesScanned:         "bipartite nodes settled by the matching engine's inner searches",
	SSPAEdgesMaterialized:    "customer-facility edges lazily materialized into the bipartite graph",
	SSPAAugmentingPaths:      "augmenting paths applied by the matching engine",
	WMAIterations:            "WMA main-loop iterations (Algorithm 1)",
	BnBNodesExpanded:         "branch-and-bound nodes evaluated (relaxation solves)",
	BnBNodesPruned:           "branch-and-bound frontier nodes discarded by the incumbent bound",
	BnBIncumbentUpdates:      "branch-and-bound incumbent improvements",
	ReallocRepairs:           "reallocator assignment rebuilds (repair passes)",
	ReallocReroutedCustomers: "customers re-assigned by reallocator repair passes",
	ReallocFullSolves:        "full WMA re-selections run by the reallocator",
	ServeSnapshots:           "periodic snapshots persisted to disk by the serving engine",
	ServeSnapshotFailures:    "periodic snapshot attempts that failed (capture or persist)",
	ServeHealTriggers:        "drift-threshold crossings that scheduled a background re-solve",
	ServeHeals:               "drift-triggered background re-solves completed",
	ServeHealFailures:        "drift-triggered background re-solves that failed",
}

// Name returns the counter's stable exposition name.
func (c Counter) Name() string {
	if c < 0 || c >= numCounters {
		return fmt.Sprintf("counter_%d", int(c))
	}
	return counterNames[c]
}

// Help returns the counter's one-line description.
func (c Counter) Help() string {
	if c < 0 || c >= numCounters {
		return ""
	}
	return counterHelp[c]
}

// Counters returns the full catalogue in fixed (exposition) order.
func Counters() []Counter {
	out := make([]Counter, numCounters)
	for i := range out {
		out[i] = Counter(i)
	}
	return out
}

// maxSpans bounds the span tree. Solvers that open a phase per search
// node (branch and bound on a hard instance) would otherwise grow the
// tree without limit; beyond the cap Phase returns nil and only the
// counters keep accumulating.
const maxSpans = 4096

// Span is one node of the reported phase tree: a named phase, its
// elapsed wall time, the counter deltas observed while it was open
// (children included), and its sub-phases in open order. The tree
// structure and counter values are deterministic for a deterministic
// run; only Elapsed varies.
type Span struct {
	Name     string           `json:"name"`
	Elapsed  time.Duration    `json:"elapsed_ns"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Children []*Span          `json:"-"`
}

// span is the recorder-internal node carrying the open-phase state.
type span struct {
	name     string
	start    time.Time
	at       [numCounters]int64 // counter snapshot when opened
	elapsed  time.Duration      // valid once closed
	closed   bool
	deltas   [numCounters]int64 // valid once closed
	children []*span
}

// Phase is a handle to an open span; close it with End. A nil Phase
// (from a nil Recorder or an overflowing tree) is inert.
type Phase struct {
	r *Recorder
	s *span
}

// Recorder accumulates counters and phase spans for one run (a solve, a
// serving process, a bench cell). The zero value is NOT ready; use New.
// A nil *Recorder is valid everywhere and records nothing.
type Recorder struct {
	counters [numCounters]paddedInt64

	mu    sync.Mutex
	roots []*span
	stack []*span
	spans int
}

// paddedInt64 spaces the counters out to their own cache lines so
// concurrent recorders (the serving path: request goroutines + writer
// loop) do not false-share.
type paddedInt64 struct {
	v int64
	_ [56]byte
}

// New returns an empty Recorder.
func New() *Recorder { return &Recorder{} }

// Add increments counter c by n. Nil-safe, concurrency-safe, and
// monotone by convention (n must be nonnegative).
func (r *Recorder) Add(c Counter, n int64) {
	if r == nil || n == 0 || c < 0 || c >= numCounters {
		return
	}
	atomic.AddInt64(&r.counters[c].v, n)
}

// Counter returns the current value of c (0 on a nil Recorder).
func (r *Recorder) Counter(c Counter) int64 {
	if r == nil || c < 0 || c >= numCounters {
		return 0
	}
	return atomic.LoadInt64(&r.counters[c].v)
}

// Snapshot returns every counter keyed by name, zeros included, in a
// freshly allocated map.
func (r *Recorder) Snapshot() map[string]int64 {
	out := make(map[string]int64, numCounters)
	for c := Counter(0); c < numCounters; c++ {
		var v int64
		if r != nil {
			v = atomic.LoadInt64(&r.counters[c].v)
		}
		out[c.Name()] = v
	}
	return out
}

// snapshotArray copies the counters into a plain array (span deltas).
func (r *Recorder) snapshotArray() (out [numCounters]int64) {
	for c := 0; c < int(numCounters); c++ {
		out[c] = atomic.LoadInt64(&r.counters[c].v)
	}
	return out
}

// Phase opens a span named name nested under the currently open span
// (or as a new root). Returns nil — inert — on a nil Recorder or once
// the tree hits its size cap. Phases must be closed in LIFO order from
// the goroutine that opened them.
func (r *Recorder) Phase(name string) *Phase {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.spans >= maxSpans {
		return nil
	}
	r.spans++
	s := &span{name: name, at: r.snapshotArray()}
	s.start = time.Now()
	if len(r.stack) > 0 {
		top := r.stack[len(r.stack)-1]
		top.children = append(top.children, s)
	} else {
		r.roots = append(r.roots, s)
	}
	r.stack = append(r.stack, s)
	return &Phase{r: r, s: s}
}

// End closes the phase. If inner phases were left open (an error path
// returned early), they are closed with it. Nil-safe; ending a phase
// twice, or one no longer on the stack, is a no-op.
func (p *Phase) End() {
	if p == nil || p.r == nil {
		return
	}
	r := p.r
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := -1
	for i := len(r.stack) - 1; i >= 0; i-- {
		if r.stack[i] == p.s {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	now := r.snapshotArray()
	for i := len(r.stack) - 1; i >= idx; i-- {
		s := r.stack[i]
		s.elapsed = time.Since(s.start)
		for c := range s.deltas {
			s.deltas[c] = now[c] - s.at[c]
		}
		s.closed = true
	}
	r.stack = r.stack[:idx]
}

// Spans returns a deep copy of the recorded phase tree. Open spans
// appear with their elapsed time so far. Counter deltas include the
// contributions of nested phases (the tree aggregates bottom-up by
// construction).
func (r *Recorder) Spans() []*Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.snapshotArray()
	out := make([]*Span, 0, len(r.roots))
	for _, s := range r.roots {
		out = append(out, s.export(now))
	}
	return out
}

// export converts an internal span (and its subtree) to the public
// form, computing live deltas for still-open spans from now.
func (s *span) export(now [numCounters]int64) *Span {
	e := &Span{Name: s.name}
	var deltas [numCounters]int64
	if s.closed {
		e.Elapsed = s.elapsed
		deltas = s.deltas
	} else {
		e.Elapsed = time.Since(s.start)
		for c := range deltas {
			deltas[c] = now[c] - s.at[c]
		}
	}
	for c := Counter(0); c < numCounters; c++ {
		if deltas[c] != 0 {
			if e.Counters == nil {
				e.Counters = make(map[string]int64)
			}
			e.Counters[c.Name()] = deltas[c]
		}
	}
	for _, child := range s.children {
		e.Children = append(e.Children, child.export(now))
	}
	return e
}

// recorderKey carries the Recorder through a context.
type recorderKey struct{}

// WithRecorder returns a context carrying r. Attaching a nil Recorder
// returns ctx unchanged.
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, recorderKey{}, r)
}

// From extracts the Recorder from ctx, or nil when absent (including a
// nil ctx). All Recorder methods accept the nil result.
func From(ctx context.Context) *Recorder {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(recorderKey{}).(*Recorder)
	return r
}

// WritePrometheus renders every counter in Prometheus text exposition
// format (0.0.4) as "<prefix>_<name>_total", zeros included, in fixed
// catalogue order.
func (r *Recorder) WritePrometheus(w io.Writer, prefix string) error {
	for c := Counter(0); c < numCounters; c++ {
		var v int64
		if r != nil {
			v = atomic.LoadInt64(&r.counters[c].v)
		}
		metric := prefix + "_" + c.Name() + "_total"
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			metric, c.Help(), metric, metric, v); err != nil {
			return err
		}
	}
	return nil
}
