package bench

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"time"
)

func sampleRows() []Row {
	return []Row{
		{Exp: "F6a", X: "n", XVal: 1000, Algo: AlgoWMA, Objective: 123, Runtime: time.Millisecond,
			Counters: map[string]int64{"dijkstra_heap_pops": 42, "wma_iterations": 3}},
		{Exp: "F6a", X: "n", XVal: 1000, Algo: AlgoExact, Objective: 120, Runtime: 10 * time.Second, Note: "timeout"},
		{Exp: "F6a", X: "n", XVal: 2000, Algo: AlgoWMA, Objective: 456, Runtime: 2 * time.Millisecond},
		{Exp: "T3", X: "aalborg", XVal: 0, Note: "nodes=100 edges=120"},
	}
}

func TestWriteCSVRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleRows()); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 5 { // header + 4 rows
		t.Fatalf("got %d records", len(records))
	}
	if records[0][0] != "exp" || records[1][0] != "F6a" || records[1][4] != "123" {
		t.Fatalf("unexpected csv contents: %v", records[:2])
	}
	if records[2][6] != "timeout" {
		t.Fatalf("note column lost: %v", records[2])
	}

	// Work-counter columns: one per obs counter after the fixed seven,
	// populated for algorithm rows (zeros included), blank on stat rows.
	col := map[string]int{}
	for i, name := range records[0] {
		col[name] = i
	}
	pops, ok := col["dijkstra_heap_pops"]
	if !ok || pops < 7 {
		t.Fatalf("counter columns missing from header: %v", records[0])
	}
	if records[1][pops] != "42" || records[1][col["wma_iterations"]] != "3" {
		t.Fatalf("counter values lost: %v", records[1])
	}
	if records[2][pops] != "0" {
		t.Fatalf("algo row without counters must report 0, got %q", records[2][pops])
	}
	if records[4][pops] != "" {
		t.Fatalf("stat-only row must leave counter cells empty, got %q", records[4][pops])
	}
}

func TestWriteMarkdownShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMarkdown(&buf, sampleRows()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"## F6a", "## T3",
		"| n |", "wma obj",
		"| 1000 |", "| 2000 |",
		"(120)*",                   // timeout incumbent
		"- **aalborg**: nodes=100", // stat row as bullet
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
	// Missing cells render as dashes (exact absent at n=2000).
	if !strings.Contains(out, "–") {
		t.Fatal("missing-cell dash absent")
	}
}

func TestWriteMarkdownEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMarkdown(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty rows produced output: %q", buf.String())
	}
}
