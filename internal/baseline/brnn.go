package baseline

import (
	"context"

	"mcfs/internal/core"
	"mcfs/internal/data"
	"mcfs/internal/graph"
)

// BRNN implements the paper's Bichromatic-Reverse-Nearest-Neighbor
// baseline (§III-A, §VII-A): facilities are placed one at a time; the
// first minimizes the aggregate network distance to all customers
// (1-median over candidates), and each subsequent one maximizes the
// number of customers it would attract — customers strictly closer to it
// than to their nearest already-selected facility (the network analogue
// of overlapping Nearest Location Regions under the MaxSum objective).
// Ties break toward the lower facility index. A final optimal bipartite
// matching produces the assignment and objective, exactly as the paper's
// implementation runs SIA after the selection.
func BRNN(inst *data.Instance, opt core.Options) (*data.Solution, error) {
	return BRNNCtx(context.Background(), inst, opt)
}

// BRNNCtx is BRNN with cooperative cancellation: every per-customer and
// per-facility Dijkstra polls ctx, so even the expensive 1-median and
// attraction-counting phases return promptly. On cancellation it returns
// nil and ctx.Err(); an uncancelled run is byte-identical to BRNN.
func BRNNCtx(ctx context.Context, inst *data.Instance, opt core.Options) (*data.Solution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if ok, _ := inst.Feasible(); !ok {
		return nil, data.ErrInfeasible
	}
	if inst.M() == 0 {
		return &data.Solution{Selected: []int{}, Assignment: []int{}}, nil
	}
	k := inst.K
	if k > inst.L() {
		k = inst.L()
	}
	_, nodeToFac := inst.CandidateMask()

	// First facility: candidate minimizing Σ dist(s, f) — one Dijkstra
	// per customer, accumulating distances on every candidate node.
	// Unreachable pairs contribute a large-but-finite penalty so that
	// candidates inside customer-rich components win.
	agg := make([]int64, inst.L())
	for _, s := range inst.Customers {
		dist, err := inst.G.DijkstraCtx(ctx, s)
		if err != nil {
			return nil, err
		}
		for j, f := range inst.Facilities {
			d := dist[f.Node]
			if d >= graph.Inf {
				d = graph.Inf / int64(inst.M()+1)
			}
			agg[j] += d
		}
	}
	first := 0
	for j := 1; j < inst.L(); j++ {
		if agg[j] < agg[first] {
			first = j
		}
	}
	selection := []int{first}
	selected := make([]bool, inst.L())
	selected[first] = true

	// nearestSel[i]: distance from customer i to its nearest selected
	// facility, maintained by one Dijkstra from each newly placed one.
	nearestSel := make([]int64, inst.M())
	if err := updateNearest(ctx, inst, inst.Facilities[first].Node, nearestSel, true); err != nil {
		return nil, err
	}

	// One scratch for the whole attraction phase: the bounded searches
	// below run m×(k-1) times and would otherwise allocate a map and
	// frontier queue each (see graph.SearchScratch).
	scratch := inst.G.NewScratch()
	for len(selection) < k {
		attract := make([]int, inst.L())
		for i, s := range inst.Customers {
			radius := nearestSel[i] - 1
			if radius < 0 {
				continue
			}
			if nearestSel[i] >= graph.Inf {
				radius = -1 // unbounded: customer unreached by any selected facility
			}
			if err := inst.G.DijkstraWithinScratchCtx(ctx, s, radius, scratch); err != nil {
				return nil, err
			}
			nearest := nearestSel[i]
			scratch.Each(func(node int32, d int64) bool {
				if j, ok := nodeToFac[node]; ok && !selected[j] && d < nearest {
					attract[j]++
				}
				return true
			})
		}
		best := -1
		for j := range attract {
			if selected[j] {
				continue
			}
			if best == -1 || attract[j] > attract[best] {
				best = j
			}
		}
		if best == -1 {
			break
		}
		selection = append(selection, best)
		selected[best] = true
		if err := updateNearest(ctx, inst, inst.Facilities[best].Node, nearestSel, false); err != nil {
			return nil, err
		}
	}

	selection, err := core.CoverComponentsCtx(ctx, inst, selection)
	if err != nil {
		return nil, err
	}
	if len(selection) < inst.K {
		selection, err = core.SelectGreedyCtx(ctx, inst, selection)
		if err != nil {
			return nil, err
		}
	}
	return core.AssignToSelectionCtx(ctx, inst, selection, opt)
}

// updateNearest lowers each customer's nearest-selected distance given a
// newly opened facility node (one Dijkstra from that node).
func updateNearest(ctx context.Context, inst *data.Instance, facNode int32, nearestSel []int64, first bool) error {
	dist, err := inst.G.DijkstraCtx(ctx, facNode)
	if err != nil {
		return err
	}
	for i, s := range inst.Customers {
		if first || dist[s] < nearestSel[i] {
			nearestSel[i] = dist[s]
		}
	}
	return nil
}
