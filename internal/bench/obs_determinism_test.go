package bench

// These tests pin the observability contract from DESIGN.md §13:
// attaching an obs.Recorder to a solve is strictly passive. The traced
// and untraced runs of every instrumented layer — WMA, the exact
// branch & bound, and the Reallocator — must produce byte-identical
// output on a city preset. Solutions are compared through their JSON
// encodings so any new field joins the comparison automatically.

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"mcfs"
	"mcfs/internal/data"
	"mcfs/internal/obs"
)

// obsTestInstance is the quick aalborg workload the perf suite also
// uses (shrunk m/k so the exact solver finishes in test time).
func obsTestInstance(t *testing.T, m, k, c int) *data.Instance {
	t.Helper()
	inst, err := cityInstance("aalborg", Config{Scale: 0.2, Seed: 1}.normalized(), m, k, c)
	if err != nil {
		t.Fatalf("cityInstance: %v", err)
	}
	if ok, unreachable := inst.Feasible(); !ok {
		t.Fatalf("instance infeasible: %d unreachable customers", len(unreachable))
	}
	return inst
}

func encode(t *testing.T, v any) []byte {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// solveTwice runs algo on inst without and with a recorder and fails
// unless the two solutions serialize to the same bytes. It returns the
// recorder so callers can assert the traced run actually recorded work
// (a vacuously-passing diff would pin nothing).
func solveTwice(t *testing.T, algo mcfs.Algorithm, inst *data.Instance, opts ...mcfs.Option) *obs.Recorder {
	t.Helper()
	plain, _, err := algo.Solve(context.Background(), inst, opts...)
	if err != nil {
		t.Fatalf("%s untraced: %v", algo, err)
	}
	rec := obs.New()
	traced, _, err := algo.Solve(obs.WithRecorder(context.Background(), rec), inst, opts...)
	if err != nil {
		t.Fatalf("%s traced: %v", algo, err)
	}
	if a, b := encode(t, plain), encode(t, traced); !bytes.Equal(a, b) {
		t.Fatalf("%s output changed under tracing:\nuntraced %s\ntraced   %s", algo, a, b)
	}
	return rec
}

func TestObsTracedWMAIdentical(t *testing.T) {
	inst := obsTestInstance(t, 128, 13, 20)
	rec := solveTwice(t, mcfs.AlgorithmWMA, inst, mcfs.WithSeed(1))
	// WMA's shortest-path work flows through the SSPA matching layer
	// (the standalone Dijkstra counters belong to the graph entry
	// points, which this workload does not cross).
	for _, c := range []obs.Counter{obs.SSPASearches, obs.WMAIterations, obs.SSPAAugmentingPaths} {
		if rec.Counter(c) == 0 {
			t.Fatalf("traced WMA recorded no %s — the diff pinned nothing", c.Name())
		}
	}
	if len(rec.Spans()) == 0 {
		t.Fatal("traced WMA produced no phase spans")
	}
}

func TestObsTracedExactIdentical(t *testing.T) {
	// The full city candidate pool is hopeless for branch & bound (that
	// is the paper's point); shrink the pool to a tractable enumeration
	// while keeping the real road network underneath.
	inst := obsTestInstance(t, 24, 4, 8)
	stride := len(inst.Facilities) / 12
	if stride < 1 {
		stride = 1
	}
	var pool []data.Facility
	for i := 0; i < len(inst.Facilities) && len(pool) < 12; i += stride {
		f := inst.Facilities[i]
		f.Capacity = 8
		pool = append(pool, f)
	}
	inst.Facilities = pool
	if ok, unreachable := inst.Feasible(); !ok {
		t.Fatalf("shrunk instance infeasible: %d unreachable customers", len(unreachable))
	}
	rec := solveTwice(t, mcfs.AlgorithmExact, inst, mcfs.WithSeed(1))
	if rec.Counter(obs.BnBNodesExpanded) == 0 {
		t.Fatal("traced exact solve expanded no nodes — the diff pinned nothing")
	}
}

// TestObsTracedReallocatorIdentical replays the same churn script —
// arrivals off the candidate pool, then departures — against a traced
// and an untraced Reallocator and requires identical handles,
// objectives, selections, and final assignments at every step.
func TestObsTracedReallocatorIdentical(t *testing.T) {
	inst := obsTestInstance(t, 64, 9, 20)

	type step struct {
		Handle    int
		Objective int64
		Selected  []int
	}
	replay := func(ctx context.Context) ([]step, []byte) {
		r, err := mcfs.NewReallocatorCtx(ctx, inst, 1.5, mcfs.WithSeed(1))
		if err != nil {
			t.Fatalf("NewReallocator: %v", err)
		}
		var steps []step
		var handles []int
		for i := 0; i < 24; i++ {
			node := inst.Facilities[(i*37)%len(inst.Facilities)].Node
			h, err := r.AddCustomer(node)
			if err != nil {
				t.Fatalf("AddCustomer(%d): %v", node, err)
			}
			handles = append(handles, h)
			obj, err := r.Objective()
			if err != nil {
				t.Fatalf("Objective after arrival %d: %v", i, err)
			}
			steps = append(steps, step{Handle: h, Objective: obj, Selected: r.Selected()})
		}
		for i := 0; i < len(handles); i += 2 {
			if err := r.RemoveCustomer(handles[i]); err != nil {
				t.Fatalf("RemoveCustomer(%d): %v", handles[i], err)
			}
		}
		asg, err := r.Assignment()
		if err != nil {
			t.Fatalf("Assignment: %v", err)
		}
		return steps, encode(t, asg)
	}

	plainSteps, plainAsg := replay(context.Background())
	rec := obs.New()
	tracedSteps, tracedAsg := replay(obs.WithRecorder(context.Background(), rec))

	if a, b := encode(t, plainSteps), encode(t, tracedSteps); !bytes.Equal(a, b) {
		t.Fatalf("Reallocator churn diverged under tracing:\nuntraced %s\ntraced   %s", a, b)
	}
	if !bytes.Equal(plainAsg, tracedAsg) {
		t.Fatalf("final assignment diverged under tracing:\nuntraced %s\ntraced   %s", plainAsg, tracedAsg)
	}
	if rec.Counter(obs.ReallocFullSolves) == 0 {
		t.Fatal("traced Reallocator recorded no full solves — the diff pinned nothing")
	}
}
