package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxCheckpoint enforces the PR-2 cancellation contract: inside the
// solver packages, every while-style loop (`for {` / `for cond {` — the
// loops whose trip count depends on data, not on a bounded index) in a
// function that takes a context.Context must either poll that context
// or delegate to a *Ctx helper that does. Bounded three-clause and
// range loops are exempt: the contract is "no unbounded work between
// checkpoints", not "a poll on every iteration of everything".
//
// With type information the context parameter is recognized by what it
// is, not what it is spelled as: named types and aliases of
// context.Context, and interface parameters that embed it, all count —
// a context smuggled behind `type reqCtx context.Context` can no longer
// hide a poll-free loop. Body references are resolved to the actual
// parameter objects, so an unrelated identifier that happens to share
// the parameter's name no longer passes as a poll. Without type info
// the rule falls back to the syntactic heuristics.
//
// Two refinements keep the rule honest on real solver code without
// suppressions. A local built by a *Ctx-suffixed helper from an
// in-scope context is a *carrier*: draining it polls the context
// through the helper, so loops over it need no extra checkpoint
// (ctxCarriers). And a pure monotone index walk — every body statement
// ++/-- of one variable, condition testing that variable — is bounded
// by construction and exempt (isBoundedScan).
type CtxCheckpoint struct{}

// Name implements Rule.
func (CtxCheckpoint) Name() string { return "ctx-checkpoint" }

// Doc implements Rule.
func (CtxCheckpoint) Doc() string {
	return "while-style loops in context-taking solver functions must poll the context or call a Ctx helper"
}

// ctxCheckpointDirs is the rule's scope: the packages PR 2 threaded
// cancellation through. Pure data/render/bench layers are out of scope.
var ctxCheckpointDirs = map[string]bool{
	"internal/graph":       true,
	"internal/bipartite":   true,
	"internal/core":        true,
	"internal/solver":      true,
	"internal/localsearch": true,
	"internal/baseline":    true,
	"internal/dynamic":     true,
}

// Check implements Rule.
func (CtxCheckpoint) Check(pkg *Package, report ReportFunc) {
	for _, f := range pkg.Files {
		if f.Test {
			continue
		}
		if !ctxCheckpointDirs[pkg.Dir] {
			continue
		}
		for _, decl := range f.AST.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkCtxFunc(pkg, f, fd.Type, fd.Body, ctxScope{}, report)
			}
		}
	}
}

// ctxScope is the set of context parameters visible in a function: the
// resolved objects (typed mode) and the parameter names (fallback, and
// the only evidence when type info is absent).
type ctxScope struct {
	objs  []types.Object
	names []string
}

func (s ctxScope) empty() bool { return len(s.objs) == 0 && len(s.names) == 0 }

// checkCtxFunc walks one function body with the context parameters
// visible in its scope (the enclosing functions' plus its own — a
// closure may checkpoint through a captured context).
func checkCtxFunc(pkg *Package, f *File, ft *ast.FuncType, body *ast.BlockStmt, outer ctxScope, report ReportFunc) {
	scope := ctxScope{
		objs:  append(append([]types.Object(nil), outer.objs...), ctxParamObjs(pkg, ft)...),
		names: append(append([]string(nil), outer.names...), ctxParamNames(pkg, ft)...),
	}
	if !scope.empty() {
		carriers := ctxCarriers(pkg, body, scope)
		scope.objs = append(scope.objs, carriers.objs...)
		scope.names = append(scope.names, carriers.names...)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkCtxFunc(pkg, f, n.Type, n.Body, scope, report)
			return false
		case *ast.ForStmt:
			if !scope.empty() && n.Init == nil && n.Post == nil && !isBoundedScan(n) && !mentionsCtx(pkg, n.Body, scope) {
				report(f, n.Pos(),
					"while-style loop in a context-taking function never polls the context; add a ctx.Err() checkpoint or delegate to a Ctx helper (see DESIGN.md §9)")
			}
		}
		return true
	})
}

// ctxCarriers collects locals bound to the result of a *Ctx-suffixed
// call that receives one of the in-scope contexts. By the module's
// naming convention such a helper threads the context into the value it
// returns — a searcher, an iterator — so draining that value inside a
// loop polls the context through it (graph.NewNNSearcherCtx is the
// canonical case). Collection is flow-insensitive and one level deep: a
// carrier does not beget further carriers.
func ctxCarriers(pkg *Package, body *ast.BlockStmt, scope ctxScope) ctxScope {
	var out ctxScope
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isCtxHelperCall(pkg, call, scope) {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			if obj := pkg.ObjectOf(id); obj != nil {
				out.objs = append(out.objs, obj)
			} else {
				out.names = append(out.names, id.Name)
			}
		}
		return true
	})
	return out
}

// isCtxHelperCall reports whether call invokes a *Ctx-suffixed helper
// with one of the in-scope contexts among its arguments. The argument
// requirement is the precision: a Ctx helper handed context.Background()
// carries no cancellation worth crediting.
func isCtxHelperCall(pkg *Package, call *ast.CallExpr, scope ctxScope) bool {
	var name string
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		name = fn.Name
	case *ast.SelectorExpr:
		name = fn.Sel.Name
	default:
		return false
	}
	if !strings.HasSuffix(name, "Ctx") || name == "Ctx" {
		return false
	}
	for _, arg := range call.Args {
		if refsCtx(pkg, arg, scope) {
			return true
		}
	}
	return false
}

// refsCtx reports whether e references one of the in-scope contexts —
// by object identity in typed mode, by name otherwise.
func refsCtx(pkg *Package, e ast.Expr, scope ctxScope) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pkg.ObjectOf(id); obj != nil {
			for _, want := range scope.objs {
				if obj == want {
					found = true
				}
			}
			return !found
		}
		for _, name := range scope.names {
			if id.Name == name {
				found = true
			}
		}
		return !found
	})
	return found
}

// isBoundedScan reports whether the while-loop is a pure monotone index
// walk: every body statement is ++ or -- of the same variable and the
// call-free condition tests that variable against its bound. Such a
// loop finishes in at most range-of-the-index steps — the lexicographic
// subset-successor scan in internal/solver is the canonical case — and
// needs no checkpoint. The shape is deliberately narrow: a body with
// any statement beyond the single IncDec (or a condition that calls
// out) falls back to the checkpoint requirement.
func isBoundedScan(n *ast.ForStmt) bool {
	if n.Cond == nil || len(n.Body.List) == 0 {
		return false
	}
	var v string
	for _, st := range n.Body.List {
		inc, ok := st.(*ast.IncDecStmt)
		if !ok {
			return false
		}
		id, ok := inc.X.(*ast.Ident)
		if !ok {
			return false
		}
		if v == "" {
			v = id.Name
		} else if id.Name != v {
			return false
		}
	}
	tested, callFree := false, true
	ast.Inspect(n.Cond, func(nn ast.Node) bool {
		switch x := nn.(type) {
		case *ast.CallExpr:
			callFree = false
			return false
		case *ast.Ident:
			if x.Name == v {
				tested = true
			}
		}
		return true
	})
	return tested && callFree
}

// ctxParamObjs resolves ft's context-typed parameters to their objects.
// It requires type information and recognizes context.Context behind
// aliases, named types, and embedding interfaces (isContextType).
func ctxParamObjs(pkg *Package, ft *ast.FuncType) []types.Object {
	if !pkg.Typed() || ft == nil || ft.Params == nil {
		return nil
	}
	var objs []types.Object
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			obj := pkg.ObjectOf(name)
			if obj != nil && name.Name != "_" && isContextType(obj.Type()) {
				objs = append(objs, obj)
			}
		}
	}
	return objs
}

// ctxParamNames returns the names of ft's syntactically evident
// context.Context parameters — the fallback evidence when no type
// information is available.
func ctxParamNames(pkg *Package, ft *ast.FuncType) []string {
	if pkg.Typed() {
		return nil // the resolved objects are strictly better evidence
	}
	if ft == nil || ft.Params == nil {
		return nil
	}
	var names []string
	for _, field := range ft.Params.List {
		sel, ok := field.Type.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Context" {
			continue
		}
		if x, ok := sel.X.(*ast.Ident); !ok || x.Name != "context" {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				names = append(names, name.Name)
			}
		}
	}
	return names
}

// mentionsCtx reports whether body references one of the in-scope
// context parameters or calls a *Ctx-suffixed helper (which by the
// module's naming convention takes and polls a context itself). In
// typed mode a reference must resolve to the actual parameter object.
func mentionsCtx(pkg *Package, body *ast.BlockStmt, scope ctxScope) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if strings.HasSuffix(id.Name, "Ctx") && id.Name != "Ctx" {
			found = true
			return false
		}
		if obj := pkg.ObjectOf(id); obj != nil {
			for _, want := range scope.objs {
				if obj == want {
					found = true
					return false
				}
			}
		}
		for _, name := range scope.names {
			if id.Name == name {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
