// Package bench mimics the harness's worker pool just enough to
// exercise the shared-instance-mutation rule: closures submitted via
// .cell(...) run concurrently, so everything they can reach through a
// captured or builder-returned instance is shared read-only.
package bench

import (
	"fix/data"
	"fix/graph"
)

type pool struct{ work []func() }

func (p *pool) cell(fn func()) { p.work = append(p.work, fn) }

// point mimics the sweep point: inst is the memoized builder whose
// result is handed to every cell of the sweep.
type point struct {
	inst func() *data.Instance
}

func sweep(p *pool, pt point, captured *data.Instance) {
	p.cell(func() {
		inst := pt.inst()
		inst.K = 3 // want "write to field K of a pool-shared instance"
		use(inst)
	})
	p.cell(func() {
		captured.Customers[0] = 7 // want "element write into a pool-shared backing array"
	})
	p.cell(func() {
		inst := pt.inst()
		withK := *inst
		withK.K = 2               // fields of a shallow value copy are owned
		withK.Customers[0] = 9    // want "element write into a pool-shared backing array"
		withK.Facilities[0] = bad // want "element write into a pool-shared backing array"
		use(&withK)
	})
	p.cell(func() {
		own := &data.Instance{K: 1, Customers: make([]int64, 4)}
		own.K = 6            // built inside the cell: owned, no finding
		own.Customers[0] = 1 // owned backing array, no finding
		use(own)
	})
	p.cell(func() {
		inst := pt.inst()
		cl := inst.Clone()
		cl.K = 9 // Clone results are owned, no finding
		use(cl)
		mutate(inst) // the write happens inside mutate and is reported there
	})
	p.cell(func() {
		g := pt.inst().G
		g.Adj[0][0] = 1 // want "element write into a pool-shared backing array"
	})
	p.cell(func() {
		inst := pt.inst()
		copy(inst.Customers, extra) // want "copy() into a pool-shared instance"
	})
}

var bad data.Facility

var extra = []int64{1, 2}

// mutate is reached inter-procedurally with a shared argument.
func mutate(in *data.Instance) {
	in.K = 12 // want "write to field K of a pool-shared instance"
}

// build runs before submission: writes through its parameter are the
// construction phase, not a post-submission mutation, and stay silent.
func build(in *data.Instance, g *graph.Graph) {
	in.G = g
	in.K = 4
	in.Customers = append(in.Customers, 9)
}

func newSweep(p *pool, g *graph.Graph) {
	inst := &data.Instance{}
	build(inst, g)
	pt := point{inst: func() *data.Instance { return inst }}
	other := &data.Instance{}
	sweep(p, pt, other)
}

func use(in *data.Instance) { _ = in.K }
