package render

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"mcfs/internal/data"
	"mcfs/internal/graph"
)

func coordInstance(t *testing.T) (*data.Instance, *data.Solution) {
	t.Helper()
	b := graph.NewBuilder(4, false)
	b.AddEdge(0, 1, 1).AddEdge(1, 2, 1).AddEdge(2, 3, 1)
	b.SetCoords([]float64{0, 10, 20, 30}, []float64{0, 5, 0, 5})
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	inst := &data.Instance{
		G:          g,
		Customers:  []int32{0, 3},
		Facilities: []data.Facility{{Node: 1, Capacity: 1}, {Node: 2, Capacity: 1}},
		K:          2,
	}
	sol := &data.Solution{Selected: []int{0, 1}, Assignment: []int{0, 1}, Objective: 2}
	return inst, sol
}

func TestSVGWellFormed(t *testing.T) {
	inst, sol := coordInstance(t)
	var buf bytes.Buffer
	if err := SVG(&buf, inst, sol, Default()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("output is not a complete SVG document")
	}
	// Two customers (red), one hollow + ... both facilities selected (solid).
	if got := strings.Count(out, `fill="#c8321e"`); got != 2 {
		t.Fatalf("customer circles = %d, want 2", got)
	}
	if got := strings.Count(out, `fill="#1f5fbf"`); got != 2 {
		t.Fatalf("selected facility circles = %d, want 2", got)
	}
	// Assignment links present.
	if !strings.Contains(out, `stroke="#7a5fb5"`) {
		t.Fatal("assignment links missing")
	}
	// Network edges drawn (3 edges).
	if got := strings.Count(out, "<line"); got < 5 {
		t.Fatalf("too few lines: %d", got)
	}
}

func TestSVGWithoutSolution(t *testing.T) {
	inst, _ := coordInstance(t)
	var buf bytes.Buffer
	if err := SVG(&buf, inst, nil, Default()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// No selected facilities: all candidates hollow.
	if strings.Contains(out, `fill="#1f5fbf"`) {
		t.Fatal("solid facility drawn without a solution")
	}
	if !strings.Contains(out, `stroke="#1f5fbf"`) {
		t.Fatal("hollow candidates missing")
	}
}

func TestSVGNoCoords(t *testing.T) {
	b := graph.NewBuilder(2, false)
	b.AddEdge(0, 1, 1)
	g, _ := b.Build()
	inst := &data.Instance{G: g, Customers: []int32{0}, Facilities: []data.Facility{{Node: 1, Capacity: 1}}, K: 1}
	if err := SVG(&bytes.Buffer{}, inst, nil, Default()); err == nil {
		t.Fatal("coordinate-less network accepted")
	}
}

func TestSVGStyleToggles(t *testing.T) {
	inst, sol := coordInstance(t)
	var buf bytes.Buffer
	st := Style{Width: 400} // network and links off
	if err := SVG(&buf, inst, sol, st); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, `stroke="#c8c8c8"`) {
		t.Fatal("network drawn though disabled")
	}
	if strings.Contains(out, `stroke="#7a5fb5"`) {
		t.Fatal("links drawn though disabled")
	}
	if !strings.Contains(out, `width="400"`) {
		t.Fatal("custom width ignored")
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n -= len(p)
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestSVGWriteErrorPropagates(t *testing.T) {
	inst, sol := coordInstance(t)
	if err := SVG(&failWriter{n: 64}, inst, sol, Default()); err == nil {
		t.Fatal("write error swallowed")
	}
}

func noCoordGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(4, false)
	b.AddEdge(0, 1, 1).AddEdge(1, 2, 1).AddEdge(2, 3, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}
