// Benchmarks: one testing.B target per table and figure of the paper's
// evaluation (see DESIGN.md §5 for the experiment index), plus the
// design-choice ablations. Each benchmark executes the corresponding
// experiment sweep at a reduced scale through internal/bench — exactly
// the code path cmd/mcfsbench uses for full runs — and reports the
// summed objective across emitted rows as a stability metric.
//
// Full-size reproductions: `go run ./cmd/mcfsbench -exp all -scale 20`.
package mcfs_test

import (
	"strings"
	"testing"
	"time"

	"mcfs/internal/bench"
)

// runExperiment executes one experiment per benchmark iteration.
func runExperiment(b *testing.B, id string, cfg bench.Config) {
	b.Helper()
	var objSum int64
	var rows int
	for i := 0; i < b.N; i++ {
		objSum, rows = 0, 0
		err := bench.Run(id, cfg, func(r bench.Row) {
			rows++
			if r.Objective > 0 {
				objSum += r.Objective
			}
			if strings.Contains(r.Note, "VERIFICATION FAILED") || strings.HasPrefix(r.Note, "error:") {
				b.Fatalf("bad row: %+v", r)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(objSum), "objective")
	b.ReportMetric(float64(rows), "rows")
}

// benchConfig is the reduced-scale configuration used by all benchmark
// targets; the exact solver gets a tight budget so "fails" (timeouts)
// appear just as Gurobi's do in the paper.
func benchConfig() bench.Config {
	return bench.Config{
		Scale:       0.05,
		ExactBudget: 2 * time.Second,
		Seed:        1,
	}
}

// --- Fig. 5: synthetic point distributions --------------------------------

func BenchmarkFig5_Distributions(b *testing.B) { runExperiment(b, "F5", benchConfig()) }

// --- Fig. 6: uniform synthetic data, variable graph size ------------------

func BenchmarkFig6a_UniformSparse(b *testing.B)         { runExperiment(b, "F6a", benchConfig()) }
func BenchmarkFig6b_UniformDense(b *testing.B)          { runExperiment(b, "F6b", benchConfig()) }
func BenchmarkFig6c_UniformSparseLowAlpha(b *testing.B) { runExperiment(b, "F6c", benchConfig()) }
func BenchmarkFig6d_UniformNonuniformCap(b *testing.B)  { runExperiment(b, "F6d", benchConfig()) }

// --- Fig. 7: clustered synthetic data, variable graph size ----------------

func BenchmarkFig7a_Clustered40(b *testing.B)      { runExperiment(b, "F7a", benchConfig()) }
func BenchmarkFig7b_Clustered40Tight(b *testing.B) { runExperiment(b, "F7b", benchConfig()) }
func BenchmarkFig7c_Clustered20(b *testing.B)      { runExperiment(b, "F7c", benchConfig()) }
func BenchmarkFig7d_Clustered5(b *testing.B)       { runExperiment(b, "F7d", benchConfig()) }

// --- Fig. 8: clustered data, variable ℓ, m, k ------------------------------

func BenchmarkFig8a_VarFacilities(b *testing.B) { runExperiment(b, "F8a", benchConfig()) }
func BenchmarkFig8b_VarCustomers(b *testing.B)  { runExperiment(b, "F8b", benchConfig()) }
func BenchmarkFig8c_ManyCustomers(b *testing.B) { runExperiment(b, "F8c", benchConfig()) }
func BenchmarkFig8d_VarK(b *testing.B)          { runExperiment(b, "F8d", benchConfig()) }

// --- Fig. 9: density and capacity effects ----------------------------------

func BenchmarkFig9a_Density(b *testing.B)  { runExperiment(b, "F9a", benchConfig()) }
func BenchmarkFig9b_Capacity(b *testing.B) { runExperiment(b, "F9b", benchConfig()) }

// --- Table III / Table IV / Fig. 10: city road networks --------------------

func BenchmarkTable3_CityStats(b *testing.B) { runExperiment(b, "T3", benchConfig()) }

func BenchmarkTable4_Cities(b *testing.B) {
	cfg := benchConfig()
	cfg.Scale = 0.02 // four full cities per iteration; keep them small
	cfg.SkipExact = true
	runExperiment(b, "T4", cfg)
}

func BenchmarkFig10_AalborgScale(b *testing.B) {
	cfg := benchConfig()
	cfg.Scale = 0.05
	runExperiment(b, "F10", cfg)
}

// --- Fig. 12 / Fig. 13: coworking and bike-sharing scenarios ---------------

func BenchmarkFig12a_VegasCoworking(b *testing.B) { runExperiment(b, "F12a", benchConfig()) }
func BenchmarkFig12b_IterationStats(b *testing.B) { runExperiment(b, "F12b", benchConfig()) }
func BenchmarkFig13a_CphCoworking(b *testing.B)   { runExperiment(b, "F13a", benchConfig()) }
func BenchmarkFig13b_CphBikes(b *testing.B)       { runExperiment(b, "F13b", benchConfig()) }

// --- Ablations of WMA design choices ---------------------------------------

func BenchmarkAblation_Threshold(b *testing.B)    { runExperiment(b, "AblThreshold", benchConfig()) }
func BenchmarkAblation_DemandPolicy(b *testing.B) { runExperiment(b, "AblDemand", benchConfig()) }
func BenchmarkAblation_TieBreak(b *testing.B)     { runExperiment(b, "AblTieBreak", benchConfig()) }

func BenchmarkAblation_Swap(b *testing.B) { runExperiment(b, "AblSwap", benchConfig()) }

// --- quality vs proven optimum ----------------------------------------------

func BenchmarkQuality_VsOptimal(b *testing.B) { runExperiment(b, "Q", benchConfig()) }
