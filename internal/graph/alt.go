package graph

import (
	"fmt"
	"math/rand"

	"mcfs/internal/pq"
)

// ALT is a point-to-point shortest-path oracle using A* with landmark
// lower bounds (the classic ALT technique): after preprocessing one
// Dijkstra per landmark, queries explore a fraction of what plain
// Dijkstra scans, with exact results. Useful for ad-hoc distance queries
// against solved instances (e.g., auditing individual customer trips).
//
// Landmarks are chosen by farthest-point selection. The oracle supports
// undirected graphs (where d(L,v) bounds both directions); constructing
// one over a directed graph returns an error.
//
// An ALT instance reuses internal scratch space between queries and is
// therefore not safe for concurrent use; Clone one per goroutine. Clones
// share the (immutable) preprocessed landmark tables, so cloning is
// cheap relative to NewALT.
type ALT struct {
	g         *Graph
	landmarks []int32
	dist      [][]int64 // per landmark: distances to every node

	// query scratch, epoch-stamped
	d     []int64
	stamp []int32
	epoch int32
	heap  *pq.DenseHeap

	scanned int // nodes settled by the last query (diagnostics)
}

// NewALT preprocesses an ALT oracle with the given number of landmarks
// (clamped to [1, N]). The seed picks the initial landmark.
func NewALT(g *Graph, numLandmarks int, seed int64) (*ALT, error) {
	if g.Directed() {
		return nil, fmt.Errorf("graph: ALT supports undirected graphs only")
	}
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("graph: ALT needs a nonempty graph")
	}
	if numLandmarks < 1 {
		numLandmarks = 1
	}
	if numLandmarks > n {
		numLandmarks = n
	}
	a := &ALT{
		g:     g,
		d:     make([]int64, n),
		stamp: make([]int32, n),
		heap:  pq.NewDense(n),
	}
	rng := rand.New(rand.NewSource(seed))
	first := int32(rng.Intn(n))
	a.landmarks = append(a.landmarks, first)
	a.dist = append(a.dist, g.Dijkstra(first))
	for len(a.landmarks) < numLandmarks {
		// Farthest point from the current landmark set (finite distances
		// only, so every landmark stays within reach of the first's
		// component; unreachable components fall back to h = 0).
		best, bestD := int32(-1), int64(-1)
		for v := 0; v < n; v++ {
			min := Inf
			for _, dl := range a.dist {
				if dl[v] < min {
					min = dl[v]
				}
			}
			if min < Inf && min > bestD {
				best, bestD = int32(v), min
			}
		}
		if best < 0 || bestD == 0 {
			break // graph exhausted (fewer distinct positions than requested)
		}
		a.landmarks = append(a.landmarks, best)
		a.dist = append(a.dist, g.Dijkstra(best))
	}
	return a, nil
}

// Clone returns an independent oracle for use by another goroutine: the
// preprocessed landmark distance tables are shared read-only (no extra
// Dijkstra runs), only the per-query scratch space is fresh.
func (a *ALT) Clone() *ALT {
	n := a.g.N()
	return &ALT{
		g:         a.g,
		landmarks: a.landmarks,
		dist:      a.dist,
		d:         make([]int64, n),
		stamp:     make([]int32, n),
		heap:      pq.NewDense(n),
	}
}

// Landmarks returns the chosen landmark nodes.
func (a *ALT) Landmarks() []int32 { return append([]int32(nil), a.landmarks...) }

// Scanned reports how many nodes the last Distance call settled.
func (a *ALT) Scanned() int { return a.scanned }

// h returns the admissible landmark lower bound on dist(v, t).
func (a *ALT) h(v, t int32) int64 {
	var best int64
	for _, dl := range a.dist {
		dv, dt := dl[v], dl[t]
		if dv >= Inf || dt >= Inf {
			continue
		}
		diff := dv - dt
		if diff < 0 {
			diff = -diff
		}
		if diff > best {
			best = diff
		}
	}
	return best
}

// Distance returns the exact shortest-path distance from s to t (Inf
// when disconnected), using A* guided by the landmark heuristic.
func (a *ALT) Distance(s, t int32) int64 {
	if s == t {
		a.scanned = 0
		return 0
	}
	a.epoch++
	a.scanned = 0
	h := a.heap
	h.Reset()
	a.d[s] = 0
	a.stamp[s] = a.epoch
	h.Push(s, a.h(s, t))
	for h.Len() > 0 {
		v, _ := h.PopMin()
		if v == t {
			return a.d[v]
		}
		a.scanned++
		dv := a.d[v]
		a.g.Neighbors(v, func(u int32, w int64) bool {
			nd := dv + w
			if a.stamp[u] != a.epoch || nd < a.d[u] {
				a.stamp[u] = a.epoch
				a.d[u] = nd
				h.Push(u, nd+a.h(u, t))
			}
			return true
		})
	}
	return Inf
}
