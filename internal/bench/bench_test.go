package bench

import (
	"strings"
	"testing"
	"time"
)

// tinyConfig keeps experiment smoke tests fast.
func tinyConfig() Config {
	return Config{
		Scale:       0.02,
		ExactBudget: 500 * time.Millisecond,
		Seed:        1,
		SkipBRNN:    false,
	}
}

func TestRegistryComplete(t *testing.T) {
	// Every paper artifact must be registered.
	want := []string{
		"F5", "F6a", "F6b", "F6c", "F6d",
		"F7a", "F7b", "F7c", "F7d",
		"F8a", "F8b", "F8c", "F8d",
		"F9a", "F9b",
		"T3", "T4", "F10",
		"F12a", "F12b", "F13a", "F13b", "Q",
		"AblThreshold", "AblDemand", "AblTieBreak", "AblSwap",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := Run("nope", Config{}, func(Row) {}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestAllExperimentsSmoke runs every registered experiment at miniature
// scale and checks that rows are well-formed and verification never
// fails.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke run of all experiments is not -short")
	}
	cfg := tinyConfig()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			count := 0
			err := Run(id, cfg, func(r Row) {
				count++
				if r.Exp != id {
					t.Errorf("row has exp %q, want %q", r.Exp, id)
				}
				if strings.Contains(r.Note, "VERIFICATION FAILED") {
					t.Errorf("row failed verification: %+v", r)
				}
				if strings.HasPrefix(r.Note, "error:") {
					t.Errorf("row errored: %+v", r)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if count == 0 {
				t.Fatal("experiment emitted no rows")
			}
		})
	}
}

func TestScaleInts(t *testing.T) {
	got := scaleInts([]int{1000, 2000, 4000}, 0.5)
	want := []int{500, 1000, 2000}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scaleInts = %v, want %v", got, want)
		}
	}
	// Tiny scales clamp to the minimum and deduplicate.
	got = scaleInts([]int{1000, 1100}, 0.001)
	if len(got) != 1 || got[0] != 8 {
		t.Fatalf("clamped scaleInts = %v", got)
	}
}

func TestKSweepFeasibleAndMonotone(t *testing.T) {
	ks := kSweep(100, 9, 1000)
	if len(ks) == 0 {
		t.Fatal("empty sweep")
	}
	prev := 0
	for _, k := range ks {
		if k*9 < 100 {
			t.Fatalf("k=%d cannot cover 100 customers at mean capacity 9", k)
		}
		if k <= prev {
			t.Fatalf("sweep not strictly increasing: %v", ks)
		}
		prev = k
	}
}
