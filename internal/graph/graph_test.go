package graph

import (
	"math/rand"
	"sort"
	"testing"
)

// line builds the path graph 0-1-2-...-(n-1) with unit weights.
func line(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder(n, false)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1), 1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// randomGraph builds a random connected-ish undirected graph.
func randomGraph(rng *rand.Rand, n, extraEdges int, maxW int64) *Graph {
	b := NewBuilder(n, false)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		// random spanning tree
		j := rng.Intn(i)
		b.AddEdge(int32(perm[i]), int32(perm[j]), 1+rng.Int63n(maxW))
	}
	for e := 0; e < extraEdges; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		b.AddEdge(int32(u), int32(v), 1+rng.Int63n(maxW))
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// bellmanFord is a reference shortest-path implementation.
func bellmanFord(g *Graph, src int32) []int64 {
	n := g.N()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for v := int32(0); v < int32(n); v++ {
			if dist[v] >= Inf {
				continue
			}
			g.Neighbors(v, func(u int32, w int64) bool {
				if dist[v]+w < dist[u] {
					dist[u] = dist[v] + w
					changed = true
				}
				return true
			})
		}
		if !changed {
			break
		}
	}
	return dist
}

func TestBuilderValidation(t *testing.T) {
	cases := []struct {
		name string
		edit func(b *Builder)
	}{
		{"out of range", func(b *Builder) { b.AddEdge(0, 5, 1) }},
		{"negative node", func(b *Builder) { b.AddEdge(-1, 0, 1) }},
		{"zero weight", func(b *Builder) { b.AddEdge(0, 1, 0) }},
		{"negative weight", func(b *Builder) { b.AddEdge(0, 1, -3) }},
		{"weight at Inf", func(b *Builder) { b.AddEdge(0, 1, Inf) }},
		{"bad coords", func(b *Builder) { b.SetCoords([]float64{1}, []float64{1}) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := NewBuilder(3, false)
			c.edit(b)
			if _, err := b.Build(); err == nil {
				t.Fatal("Build accepted invalid input")
			}
		})
	}
}

func TestBuildEmptyGraph(t *testing.T) {
	g, err := NewBuilder(0, false).Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph has N=%d M=%d", g.N(), g.M())
	}
	if g.AvgDegree() != 0 || g.MaxDegree() != 0 || g.AvgEdgeWeight() != 0 {
		t.Fatal("empty-graph stats nonzero")
	}
}

func TestCSRAdjacency(t *testing.T) {
	b := NewBuilder(4, false)
	b.AddEdge(0, 1, 5).AddEdge(1, 2, 7).AddEdge(0, 3, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 3 {
		t.Fatalf("M = %d, want 3", g.M())
	}
	got := map[int32]int64{}
	g.Neighbors(0, func(u int32, w int64) bool { got[u] = w; return true })
	if len(got) != 2 || got[1] != 5 || got[3] != 2 {
		t.Fatalf("neighbors of 0 = %v", got)
	}
	// Undirected: reverse arcs exist.
	found := false
	g.Neighbors(3, func(u int32, w int64) bool {
		if u == 0 && w == 2 {
			found = true
		}
		return true
	})
	if !found {
		t.Fatal("reverse arc 3->0 missing in undirected graph")
	}
	if g.Degree(0) != 2 || g.Degree(2) != 1 {
		t.Fatalf("degrees: %d %d", g.Degree(0), g.Degree(2))
	}
}

func TestDirectedGraphOneWay(t *testing.T) {
	b := NewBuilder(2, true)
	b.AddEdge(0, 1, 4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !g.Directed() {
		t.Fatal("Directed() = false")
	}
	d := g.Dijkstra(0)
	if d[1] != 4 {
		t.Fatalf("dist 0->1 = %d, want 4", d[1])
	}
	d = g.Dijkstra(1)
	if d[0] != Inf {
		t.Fatalf("dist 1->0 = %d, want Inf", d[0])
	}
}

func TestNeighborsEarlyStop(t *testing.T) {
	b := NewBuilder(3, true)
	b.AddEdge(0, 1, 1).AddEdge(0, 2, 1)
	g, _ := b.Build()
	calls := 0
	g.Neighbors(0, func(int32, int64) bool { calls++; return false })
	if calls != 1 {
		t.Fatalf("early stop ignored, calls = %d", calls)
	}
}

func TestDijkstraLine(t *testing.T) {
	g := line(t, 5)
	d := g.Dijkstra(0)
	for i := 0; i < 5; i++ {
		if d[i] != int64(i) {
			t.Fatalf("d[%d] = %d, want %d", i, d[i], i)
		}
	}
}

func TestDijkstraMatchesBellmanFord(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(60)
		g := randomGraph(rng, n, rng.Intn(3*n), 50)
		src := int32(rng.Intn(n))
		want := bellmanFord(g, src)
		got := g.Dijkstra(src)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("trial %d: dist[%d] = %d, want %d", trial, v, got[v], want[v])
			}
		}
	}
}

func TestDijkstraDisconnected(t *testing.T) {
	b := NewBuilder(4, false)
	b.AddEdge(0, 1, 1).AddEdge(2, 3, 1)
	g, _ := b.Build()
	d := g.Dijkstra(0)
	if d[2] != Inf || d[3] != Inf {
		t.Fatalf("unreachable nodes have dist %d, %d", d[2], d[3])
	}
}

func TestDijkstraWithinRadius(t *testing.T) {
	g := line(t, 10)
	got := g.DijkstraWithin(0, 3)
	if len(got) != 4 {
		t.Fatalf("DijkstraWithin returned %d nodes, want 4: %v", len(got), got)
	}
	for v, d := range got {
		if d != int64(v) {
			t.Fatalf("dist[%d] = %d", v, d)
		}
	}
	// Unbounded matches full Dijkstra.
	all := g.DijkstraWithin(0, -1)
	full := g.Dijkstra(0)
	for v, d := range all {
		if full[v] != d {
			t.Fatalf("unbounded within: dist[%d] = %d, want %d", v, d, full[v])
		}
	}
	if len(all) != 10 {
		t.Fatalf("unbounded within visited %d nodes", len(all))
	}
}

func TestDijkstraToTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomGraph(rng, 50, 80, 20)
	full := g.Dijkstra(3)
	targets := []int32{7, 11, 49, 3}
	got := g.DijkstraToTargets(3, targets)
	for _, tg := range targets {
		if got[tg] != full[tg] {
			t.Fatalf("target %d: got %d, want %d", tg, got[tg], full[tg])
		}
	}
}

func TestDijkstraToTargetsUnreachable(t *testing.T) {
	b := NewBuilder(3, false)
	b.AddEdge(0, 1, 1)
	g, _ := b.Build()
	got := g.DijkstraToTargets(0, []int32{1, 2})
	if got[1] != 1 || got[2] != Inf {
		t.Fatalf("got %v", got)
	}
}

func TestMultiSourceDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 80, 120, 30)
	sources := []int32{5, 40, 77}
	dist, owner := g.MultiSourceDijkstra(sources)
	// Reference: min over per-source Dijkstras.
	per := make([][]int64, len(sources))
	for i, s := range sources {
		per[i] = g.Dijkstra(s)
	}
	for v := 0; v < g.N(); v++ {
		best := Inf
		for i := range sources {
			if per[i][v] < best {
				best = per[i][v]
			}
		}
		if dist[v] != best {
			t.Fatalf("node %d: multi-source dist %d, want %d", v, dist[v], best)
		}
		if best < Inf {
			if owner[v] < 0 || per[owner[v]][v] != best {
				t.Fatalf("node %d: owner %d does not achieve min dist", v, owner[v])
			}
		} else if owner[v] != -1 {
			t.Fatalf("unreachable node %d has owner %d", v, owner[v])
		}
	}
}

func TestMultiSourceDuplicateSources(t *testing.T) {
	g := line(t, 4)
	dist, owner := g.MultiSourceDijkstra([]int32{2, 2})
	if dist[2] != 0 || owner[2] != 0 {
		t.Fatalf("duplicate source: dist=%d owner=%d", dist[2], owner[2])
	}
}

func TestNNSearcherOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(80)
		g := randomGraph(rng, n, 2*n, 25)
		isCand := make([]bool, n)
		var cands []int32
		for v := 0; v < n; v++ {
			if rng.Intn(3) == 0 {
				isCand[v] = true
				cands = append(cands, int32(v))
			}
		}
		src := int32(rng.Intn(n))
		full := g.Dijkstra(src)
		type pair struct {
			node int32
			d    int64
		}
		var want []pair
		for _, c := range cands {
			if full[c] < Inf {
				want = append(want, pair{c, full[c]})
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i].d < want[j].d })

		s := NewNNSearcher(g, src, isCand)
		var got []pair
		for {
			// PeekDist must equal the distance Next is about to return.
			pd := s.PeekDist()
			node, d, ok := s.Next()
			if !ok {
				if pd != Inf {
					t.Fatal("PeekDist finite after exhaustion")
				}
				break
			}
			if pd != d {
				t.Fatalf("PeekDist %d != Next dist %d", pd, d)
			}
			got = append(got, pair{node, d})
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: enumerated %d candidates, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i].d != want[i].d {
				t.Fatalf("trial %d: dist[%d] = %d, want %d", trial, i, got[i].d, want[i].d)
			}
			if full[got[i].node] != got[i].d {
				t.Fatalf("trial %d: returned dist inconsistent with Dijkstra", trial)
			}
		}
		// Each candidate returned exactly once.
		seen := map[int32]bool{}
		for _, p := range got {
			if seen[p.node] {
				t.Fatalf("candidate %d returned twice", p.node)
			}
			seen[p.node] = true
		}
	}
}

func TestNNSearcherNoCandidates(t *testing.T) {
	g := line(t, 5)
	s := NewNNSearcher(g, 0, make([]bool, 5))
	if _, _, ok := s.Next(); ok {
		t.Fatal("Next returned candidate with empty candidate set")
	}
	if s.PeekDist() != Inf {
		t.Fatal("PeekDist != Inf with no candidates")
	}
}

func TestNNSearcherSourceIsCandidate(t *testing.T) {
	g := line(t, 3)
	isCand := []bool{true, false, true}
	s := NewNNSearcher(g, 0, isCand)
	node, d, ok := s.Next()
	if !ok || node != 0 || d != 0 {
		t.Fatalf("first = (%d,%d,%v), want (0,0,true)", node, d, ok)
	}
	node, d, ok = s.Next()
	if !ok || node != 2 || d != 2 {
		t.Fatalf("second = (%d,%d,%v), want (2,2,true)", node, d, ok)
	}
	if s.Source() != 0 {
		t.Fatal("Source() wrong")
	}
	if s.Settled() == 0 {
		t.Fatal("Settled() = 0 after enumeration")
	}
}

func TestComponents(t *testing.T) {
	b := NewBuilder(7, false)
	b.AddEdge(0, 1, 1).AddEdge(1, 2, 1).AddEdge(3, 4, 1)
	// nodes 5, 6 isolated
	g, _ := b.Build()
	comp, count := g.Components()
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatal("nodes 0,1,2 not in one component")
	}
	if comp[3] != comp[4] {
		t.Fatal("nodes 3,4 not in one component")
	}
	if comp[5] == comp[6] || comp[5] == comp[0] || comp[6] == comp[3] {
		t.Fatal("isolated nodes share a component")
	}
	sizes := ComponentSizes(comp, count)
	sort.Ints(sizes)
	want := []int{1, 1, 2, 3}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("sizes = %v, want %v", sizes, want)
		}
	}
}

func TestComponentsDirectedWeak(t *testing.T) {
	b := NewBuilder(3, true)
	b.AddEdge(0, 1, 1).AddEdge(2, 1, 1) // weakly connected via node 1
	g, _ := b.Build()
	comp, count := g.Components()
	if count != 1 {
		t.Fatalf("weak components = %d, want 1; labels %v", count, comp)
	}
}

func TestComponentsConsistentWithDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(50)
		// Build two disjoint random graphs merged into one id space.
		b := NewBuilder(2*n, false)
		for i := 1; i < n; i++ {
			b.AddEdge(int32(rng.Intn(i)), int32(i), 1+rng.Int63n(9))
			b.AddEdge(int32(n+rng.Intn(i)), int32(n+i), 1+rng.Int63n(9))
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		comp, count := g.Components()
		if count != 2 {
			t.Fatalf("count = %d, want 2", count)
		}
		d := g.Dijkstra(0)
		for v := 0; v < 2*n; v++ {
			reachable := d[v] < Inf
			sameComp := comp[v] == comp[0]
			if reachable != sameComp {
				t.Fatalf("node %d: reachable=%v sameComp=%v", v, reachable, sameComp)
			}
		}
	}
}

func TestCoordsAndEuclid(t *testing.T) {
	b := NewBuilder(2, false)
	b.AddEdge(0, 1, 5)
	b.SetCoords([]float64{0, 3}, []float64{0, 4})
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasCoords() {
		t.Fatal("HasCoords false")
	}
	if x, y := g.Coord(1); x != 3 || y != 4 {
		t.Fatalf("Coord(1) = (%v,%v)", x, y)
	}
	if d := g.Euclid(0, 1); d != 5 {
		t.Fatalf("Euclid = %v, want 5", d)
	}
}

func TestGraphStats(t *testing.T) {
	b := NewBuilder(3, false)
	b.AddEdge(0, 1, 10).AddEdge(1, 2, 20)
	g, _ := b.Build()
	if got := g.AvgEdgeWeight(); got != 15 {
		t.Fatalf("AvgEdgeWeight = %v, want 15", got)
	}
	if got := g.AvgDegree(); got != 4.0/3.0 {
		t.Fatalf("AvgDegree = %v", got)
	}
	if got := g.MaxDegree(); got != 2 {
		t.Fatalf("MaxDegree = %v, want 2", got)
	}
}

func BenchmarkDijkstraGrid(b *testing.B) {
	// 100x100 grid graph.
	const side = 100
	bld := NewBuilder(side*side, false)
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			v := int32(r*side + c)
			if c+1 < side {
				bld.AddEdge(v, v+1, 1)
			}
			if r+1 < side {
				bld.AddEdge(v, v+side, 1)
			}
		}
	}
	g, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Dijkstra(0)
	}
}

func TestMultiSourceTwoNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 15; trial++ {
		n := 10 + rng.Intn(60)
		g := randomGraph(rng, n, 2*n, 20)
		ns := 2 + rng.Intn(5)
		perm := rng.Perm(n)
		sources := make([]int32, ns)
		for i := range sources {
			sources[i] = int32(perm[i])
		}
		owner, dist := g.MultiSourceTwoNearest(sources)
		// Reference: full Dijkstra per source.
		per := make([][]int64, ns)
		for i, s := range sources {
			per[i] = g.Dijkstra(s)
		}
		for v := 0; v < n; v++ {
			// Expected two best distinct sources.
			best1, best2 := -1, -1
			for i := range sources {
				if per[i][v] >= Inf {
					continue
				}
				if best1 == -1 || per[i][v] < per[best1][v] {
					best2 = best1
					best1 = i
				} else if best2 == -1 || per[i][v] < per[best2][v] {
					best2 = i
				}
			}
			if best1 == -1 {
				if owner[0][v] != -1 {
					t.Fatalf("node %d unreachable but owner %d", v, owner[0][v])
				}
				continue
			}
			if dist[0][v] != per[best1][v] {
				t.Fatalf("trial %d node %d: first dist %d, want %d", trial, v, dist[0][v], per[best1][v])
			}
			if per[owner[0][v]][v] != per[best1][v] {
				t.Fatalf("trial %d node %d: first owner not optimal", trial, v)
			}
			if best2 == -1 {
				if owner[1][v] != -1 {
					t.Fatalf("node %d has no second source but owner %d", v, owner[1][v])
				}
				continue
			}
			if dist[1][v] != per[best2][v] {
				t.Fatalf("trial %d node %d: second dist %d, want %d", trial, v, dist[1][v], per[best2][v])
			}
			if owner[1][v] == owner[0][v] {
				t.Fatalf("trial %d node %d: duplicate owners", trial, v)
			}
		}
	}
}
