package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Result caching.
//
// Type-checking dominates a typed mcfslint run, and the inputs that can
// change its outcome are few and hashable: the module's Go sources,
// go.mod, the linter binary itself, and the run configuration (mode,
// rule subset, patterns). CacheKey folds all of them into one run-level
// key; CacheGet/CachePut persist the run's findings and type errors
// under that key so an unchanged tree replays in milliseconds instead
// of re-type-checking.
//
// The key deliberately hashes the whole module, not just the files the
// patterns match: typed loading follows in-module imports transitively,
// so a file outside the pattern set can still change the findings
// inside it. Hashing everything over-invalidates (an edit anywhere in
// the module discards a cmd/...-only entry) but can never serve stale
// results — for a cache that guards a linter, sound-and-simple beats
// precise-and-subtle.

// CacheEntry is one persisted run result: everything the command needs
// to reproduce its output without loading or analyzing anything.
type CacheEntry struct {
	// Findings is the run's finding list, in report order. Never nil
	// once stored (an empty run stores an empty slice).
	Findings []Finding `json:"findings"`
	// TypeErrors is the flattened, package-ordered type-error list the
	// command echoes to stderr before the findings.
	TypeErrors []string `json:"type_errors"`
	// Files is the number of files the original run loaded, for the
	// summary line.
	Files int `json:"files"`
}

// CacheDir returns the persistent cache directory
// (os.UserCacheDir()/mcfslint), creating it if needed.
func CacheDir() (string, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("lint: no user cache dir: %w", err)
	}
	dir := filepath.Join(base, "mcfslint")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	return dir, nil
}

// CacheKey hashes everything that can change a run's outcome: the extra
// strings (caller-supplied configuration — binary hash, toolchain
// version, mode, rule names, patterns), go.mod, and the path and
// content of every Go file in the module, walked with the same skip
// rules Load uses (testdata, vendor, dot- and underscore-prefixed
// names). The walk is deterministic, so identical trees produce
// identical keys on any machine with the same configuration.
func CacheKey(root string, extra ...string) (string, error) {
	h := sha256.New()
	for _, s := range extra {
		fmt.Fprintf(h, "extra %d:%s\n", len(s), s)
	}
	if mod, err := os.ReadFile(filepath.Join(root, "go.mod")); err == nil {
		fmt.Fprintf(h, "go.mod %x\n", sha256.Sum256(mod))
	}
	var files []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return fs.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			return nil
		}
		files = append(files, path)
		return nil
	})
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	sort.Strings(files)
	for _, path := range files {
		content, err := os.ReadFile(path)
		if err != nil {
			return "", fmt.Errorf("lint: %w", err)
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return "", fmt.Errorf("lint: %w", err)
		}
		fmt.Fprintf(h, "file %s %x\n", filepath.ToSlash(rel), sha256.Sum256(content))
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// CacheGet loads the entry stored under key in dir. A missing,
// unreadable, or unparsable entry is a plain miss — the caller falls
// back to a real run and overwrites it.
func CacheGet(dir, key string) (*CacheEntry, bool) {
	data, err := os.ReadFile(filepath.Join(dir, key+".json"))
	if err != nil {
		return nil, false
	}
	var e CacheEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false
	}
	if e.Findings == nil {
		e.Findings = []Finding{}
	}
	return &e, true
}

// CachePut stores entry under key in dir, atomically (write to a temp
// file in the same directory, then rename): a concurrent reader sees
// either the old entry or the new one, never a torn write.
func CachePut(dir, key string, entry *CacheEntry) error {
	if entry.Findings == nil {
		entry.Findings = []Finding{}
	}
	data, err := json.Marshal(entry)
	if err != nil {
		return fmt.Errorf("lint: %w", err)
	}
	tmp, err := os.CreateTemp(dir, key+".tmp-*")
	if err != nil {
		return fmt.Errorf("lint: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("lint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("lint: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, key+".json")); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("lint: %w", err)
	}
	return nil
}
