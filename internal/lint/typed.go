package lint

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// This file is the typed layer of the engine: LoadTyped parses the same
// packages as Load and then type-checks them with the stdlib go/types
// checker, so rules can resolve what an expression actually *is*
// (a context.Context behind a named interface, an *os.File behind an
// io.Closer, a map behind a named type from another package) instead of
// pattern-matching its spelling. The module's stdlib-only constraint
// holds: imports are resolved by a module-aware importer that
// type-checks in-module packages from the loaded sources and delegates
// standard-library paths to go/importer's source importer (which reads
// GOROOT/src — no compiled export data, no x/tools).
//
// Test files are excluded from type-checking: rules only report in
// non-test files, external _test packages would need a second checker
// pass, and the fixture corpus stays small. A package whose only files
// are tests (cmd/, with its integration test) simply carries no type
// info; every rule falls back to its syntactic path there.

// LoadTyped is Load followed by a best-effort type-check of every
// loaded package. Type information is attached to the returned packages
// (Package.Types / Package.Info); packages that fail to type-check keep
// partial info and record their errors in Package.TypeErrors rather
// than failing the load — the build gate, not the linter, owns
// rejecting invalid Go. An I/O or parse failure still returns an error,
// exactly as Load does.
func LoadTyped(root string, patterns ...string) ([]*Package, error) {
	fset := token.NewFileSet()
	pkgs, err := load(fset, root, patterns...)
	if err != nil {
		return nil, err
	}
	im := &moduleImporter{
		fset:    fset,
		root:    root,
		module:  modulePath(root),
		byDir:   make(map[string]*Package, len(pkgs)),
		std:     importer.ForCompiler(fset, "source", nil),
		checked: make(map[string]*types.Package),
		pending: make(map[string]bool),
	}
	for _, p := range pkgs {
		im.byDir[p.Dir] = p
	}
	for _, p := range pkgs {
		im.typeCheck(p)
	}
	return pkgs, nil
}

// modulePath extracts the module path from root/go.mod; it returns ""
// when there is no go.mod (fixtures without in-module imports), which
// simply means no import path is treated as in-module.
func modulePath(root string) string {
	f, err := os.Open(filepath.Join(root, "go.mod"))
	if err != nil {
		return ""
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// moduleImporter resolves imports during type-checking: in-module paths
// recursively against the loaded (or on-demand loaded) source packages,
// everything else through the stdlib source importer.
type moduleImporter struct {
	fset    *token.FileSet
	root    string
	module  string
	byDir   map[string]*Package
	std     types.Importer
	checked map[string]*types.Package // by import path
	pending map[string]bool           // import-cycle guard
}

// Import implements types.Importer.
func (im *moduleImporter) Import(path string) (*types.Package, error) {
	if tp, ok := im.checked[path]; ok {
		return tp, nil
	}
	dir, ok := im.moduleDir(path)
	if !ok {
		return im.std.Import(path)
	}
	pkg := im.byDir[dir]
	if pkg == nil {
		// The package is imported but was not matched by the load
		// patterns (e.g. linting cmd/... still needs internal/...).
		// Load it on demand; it is type-checked but not linted.
		byDir := make(map[string]*Package)
		if err := loadDir(im.fset, im.root, filepath.Join(im.root, filepath.FromSlash(dir)), byDir); err != nil {
			return nil, err
		}
		if pkg = byDir[dir]; pkg == nil {
			return nil, fmt.Errorf("lint: import %q matches no Go package under %s", path, dir)
		}
		im.byDir[dir] = pkg
	}
	if im.pending[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	tp := im.typeCheck(pkg)
	if tp == nil {
		return nil, fmt.Errorf("lint: type-checking %q failed: %v", path, pkg.TypeErrors)
	}
	return tp, nil
}

// moduleDir maps an in-module import path to its module-relative
// directory; ok is false for out-of-module (stdlib) paths.
func (im *moduleImporter) moduleDir(path string) (string, bool) {
	if im.module == "" {
		return "", false
	}
	if path == im.module {
		return ".", true
	}
	if rest, ok := strings.CutPrefix(path, im.module+"/"); ok {
		return rest, true
	}
	return "", false
}

// importPath is the inverse of moduleDir.
func (im *moduleImporter) importPath(dir string) string {
	if dir == "." || im.module == "" {
		return im.module
	}
	return im.module + "/" + dir
}

// typeCheck runs the go/types checker over pkg's non-test files,
// memoized by import path. It returns nil when the package has no
// non-test files (test-only directories like cmd/) — the package then
// simply carries no type info. Checker errors are collected on the
// package, and whatever partial info the checker produced is kept:
// a missing type makes a rule fall back to syntax for that expression,
// it does not disable the typed engine.
func (im *moduleImporter) typeCheck(pkg *Package) *types.Package {
	path := im.importPath(pkg.Dir)
	if path == "" {
		path = pkg.Dir // fixture without go.mod: any stable non-empty key
	}
	if tp, ok := im.checked[path]; ok {
		return tp
	}
	var files []*ast.File
	for _, f := range pkg.Files {
		if !f.Test {
			files = append(files, f.AST)
		}
	}
	if len(files) == 0 {
		return nil
	}
	im.pending[path] = true
	defer delete(im.pending, path)

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: im,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err.Error())
		},
	}
	tp, err := conf.Check(path, im.fset, files, info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err.Error())
	}
	pkg.Types = tp
	pkg.Info = info
	im.checked[path] = tp
	return tp
}

// Typed reports whether type information is attached to the package.
func (p *Package) Typed() bool { return p.Info != nil }

// TypeOf resolves the static type of e, or nil without type info.
func (p *Package) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// ObjectOf resolves the object an identifier denotes (use or def), or
// nil without type info.
func (p *Package) ObjectOf(id *ast.Ident) types.Object {
	if p.Info == nil {
		return nil
	}
	return p.Info.ObjectOf(id)
}

// isPkgFunc reports whether the call's callee resolves, by type
// information, to the package-level function pkgPath.name (robust
// against import renaming and shadowed package identifiers).
func (p *Package) isPkgFunc(call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := p.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isContextType reports whether t is context.Context, an alias of it,
// or an interface type that includes the four Context methods (named
// interfaces embedding context.Context type-check to exactly that).
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if n, ok := t.(*types.Named); ok {
		if obj := n.Obj(); obj != nil && obj.Pkg() != nil &&
			obj.Pkg().Path() == "context" && obj.Name() == "Context" {
			return true
		}
	}
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	need := 4
	for i := 0; i < iface.NumMethods(); i++ {
		switch iface.Method(i).Name() {
		case "Deadline", "Done", "Err", "Value":
			need--
		}
	}
	return need == 0
}

// isNamedType reports whether t (after unaliasing and pointer
// stripping when deref is set) is the named type name declared in a
// package whose import path is pkgSuffix or ends in "/"+pkgSuffix.
// Matching by path suffix keeps the check valid both for the real
// module ("mcfs/internal/data") and for fixture modules ("fix/data").
func isNamedType(t types.Type, deref bool, pkgSuffix, name string) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if deref {
		if ptr, ok := t.(*types.Pointer); ok {
			t = types.Unalias(ptr.Elem())
		}
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Name() != name {
		return false
	}
	path := obj.Pkg().Path()
	return path == pkgSuffix || strings.HasSuffix(path, "/"+pkgSuffix)
}

// isOSFileType reports whether t is *os.File.
func isOSFileType(t types.Type) bool {
	if t == nil {
		return false
	}
	ptr, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := types.Unalias(ptr.Elem()).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "File"
}

// firstResultType unwraps t to the type of the first value it yields:
// the sole type, or the first element of a tuple (multi-value call).
func firstResultType(t types.Type) types.Type {
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return nil
		}
		return tup.At(0).Type()
	}
	return t
}
