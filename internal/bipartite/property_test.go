package bipartite

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mcfs/internal/data"
)

// TestCostMonotoneOverAugmentations: every successful FindPair can only
// raise the total matched cost (min-cost flow cost grows with value).
func TestCostMonotoneOverAugmentations(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(6)
		l := 1 + rng.Intn(6)
		n := m + l + 5 + rng.Intn(30)
		g := randomNetwork(rng, n)
		perm := rng.Perm(n)
		custNodes := make([]int32, m)
		for i := range custNodes {
			custNodes[i] = int32(perm[i])
		}
		facs := make([]data.Facility, l)
		for j := range facs {
			facs[j] = data.Facility{Node: int32(perm[m+j]), Capacity: 1 + rng.Intn(3)}
		}
		mt := New(g, custNodes, facs)
		prev := int64(0)
		for step := 0; step < 2*m; step++ {
			c := rng.Intn(m)
			before := mt.TotalMatchedCost()
			if before != prev {
				return false // cost changed outside FindPair
			}
			mt.FindPair(c)
			after := mt.TotalMatchedCost()
			if after < before {
				return false
			}
			prev = after
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestLoadsNeverExceedCapacity under arbitrary FindPair sequences.
func TestLoadsNeverExceedCapacity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(5)
		l := 1 + rng.Intn(5)
		n := m + l + 4 + rng.Intn(20)
		g := randomNetwork(rng, n)
		perm := rng.Perm(n)
		custNodes := make([]int32, m)
		for i := range custNodes {
			custNodes[i] = int32(perm[i])
		}
		facs := make([]data.Facility, l)
		for j := range facs {
			facs[j] = data.Facility{Node: int32(perm[m+j]), Capacity: rng.Intn(3)}
		}
		mt := New(g, custNodes, facs)
		for step := 0; step < 3*m; step++ {
			mt.FindPair(rng.Intn(m))
			for j := 0; j < l; j++ {
				if mt.Load(j) > facs[j].Capacity {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestDeterministicReplay: rebuilding a matcher and replaying the same
// FindPair sequence reproduces costs and stats exactly.
func TestDeterministicReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		m, l := 2+rng.Intn(4), 2+rng.Intn(4)
		n := m + l + 10 + rng.Intn(20)
		g := randomNetwork(rng, n)
		perm := rng.Perm(n)
		custNodes := make([]int32, m)
		for i := range custNodes {
			custNodes[i] = int32(perm[i])
		}
		facs := make([]data.Facility, l)
		for j := range facs {
			facs[j] = data.Facility{Node: int32(perm[m+j]), Capacity: 1 + rng.Intn(2)}
		}
		var seq []int
		for s := 0; s < 2*m; s++ {
			seq = append(seq, rng.Intn(m))
		}
		run := func() (int64, Stats) {
			mt := New(g, custNodes, facs)
			for _, c := range seq {
				mt.FindPair(c)
			}
			return mt.TotalMatchedCost(), mt.Stats()
		}
		c1, s1 := run()
		c2, s2 := run()
		if c1 != c2 || s1 != s2 {
			t.Fatalf("trial %d: replay diverged: %d/%+v vs %d/%+v", trial, c1, s1, c2, s2)
		}
	}
}
