// Command mcfsgen generates MCFS problem instances in the module's text
// format: synthetic uniform/clustered networks, city-like road networks,
// and the coworking/bike-sharing scenarios.
//
// Examples:
//
//	mcfsgen -type uniform -n 10000 -alpha 2 -m 1000 -l 2000 -cap 20 -k 100 -o inst.mcfs
//	mcfsgen -type clustered -clusters 20 -n 10000 -m 500 -facall -cap 10 -k 50 -o inst.mcfs
//	mcfsgen -type city -city aalborg -scale 0.1 -m 512 -facall -cap 20 -k 51 -o aalborg.mcfs
//	mcfsgen -type coworking -city lasvegas -scale 0.05 -venues 400 -m 1000 -k 200 -o cowork.mcfs
//	mcfsgen -type bikes -city copenhagen -scale 0.05 -stations 600 -m 1000 -k 200 -o bikes.mcfs
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"mcfs"
)

func main() {
	var (
		typ      = flag.String("type", "uniform", "instance type: uniform | clustered | city | coworking | bikes | dimacs")
		n        = flag.Int("n", 10000, "synthetic network size (nodes)")
		alpha    = flag.Float64("alpha", 2, "synthetic density parameter")
		clusters = flag.Int("clusters", 20, "cluster count for -type clustered")
		city     = flag.String("city", "aalborg", "city preset: aalborg | riga | copenhagen | lasvegas")
		scale    = flag.Float64("scale", 0.1, "city size scale (1.0 = paper size)")
		m        = flag.Int("m", 100, "number of customers")
		l        = flag.Int("l", 0, "number of candidate facilities (ignored with -facall)")
		facAll   = flag.Bool("facall", false, "every node is a candidate facility (F_p = V)")
		capacity = flag.Int("cap", 10, "uniform facility capacity")
		capLo    = flag.Int("caplo", 0, "nonuniform capacity lower bound (with -caphi)")
		capHi    = flag.Int("caphi", 0, "nonuniform capacity upper bound")
		k        = flag.Int("k", 10, "facility budget")
		venues   = flag.Int("venues", 400, "coworking venue count")
		stations = flag.Int("stations", 600, "bike docking station count")
		gr       = flag.String("gr", "", "DIMACS .gr graph file for -type dimacs")
		co       = flag.String("co", "", "optional DIMACS .co coordinate file")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	inst, err := generate(*typ, genParams{
		n: *n, alpha: *alpha, clusters: *clusters,
		city: *city, scale: *scale,
		m: *m, l: *l, facAll: *facAll,
		capacity: *capacity, capLo: *capLo, capHi: *capHi,
		k: *k, venues: *venues, stations: *stations, seed: *seed,
		gr: *gr, co: *co,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcfsgen:", err)
		os.Exit(1)
	}

	w := os.Stdout
	var outF *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcfsgen:", err)
			os.Exit(1)
		}
		outF = f
		w = f
	}
	if err := mcfs.WriteInstance(w, inst); err != nil {
		fmt.Fprintln(os.Stderr, "mcfsgen:", err)
		os.Exit(1)
	}
	// Close explicitly: a failed Close can be the only sign of a short
	// write, and the success message below must not print in that case.
	if outF != nil {
		if err := outF.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "mcfsgen:", err)
			os.Exit(1)
		}
	}
	if *out != "" {
		st := mcfs.NetworkStats(inst.G)
		feas := "feasible"
		if ok, _ := inst.Feasible(); !ok {
			feas = "INFEASIBLE"
		}
		fmt.Fprintf(os.Stderr, "wrote %s: n=%d edges=%d m=%d l=%d k=%d (%s)\n",
			*out, st.Nodes, st.Edges, inst.M(), inst.L(), inst.K, feas)
	}
}

type genParams struct {
	n                   int
	alpha               float64
	clusters            int
	city                string
	scale               float64
	m, l                int
	facAll              bool
	capacity            int
	capLo, capHi        int
	k, venues, stations int
	seed                int64
	gr, co              string
}

func generate(typ string, p genParams) (*mcfs.Instance, error) {
	rng := rand.New(rand.NewSource(p.seed))
	capFn := mcfs.UniformCapacity(p.capacity)
	if p.capHi > 0 {
		capFn = mcfs.RandomCapacity(p.capLo, p.capHi, rng)
	}
	switch typ {
	case "uniform", "clustered":
		cfg := mcfs.SyntheticConfig{N: p.n, Alpha: p.alpha, Seed: p.seed}
		if typ == "clustered" {
			cfg.Clusters = p.clusters
		}
		g, err := mcfs.GenerateSynthetic(cfg)
		if err != nil {
			return nil, err
		}
		return assemble(g, p, rng, capFn), nil
	case "city":
		g, err := buildCity(p)
		if err != nil {
			return nil, err
		}
		return assemble(g, p, rng, capFn), nil
	case "coworking":
		g, err := buildCity(p)
		if err != nil {
			return nil, err
		}
		sc, err := mcfs.NewCoworkingScenario(g, mcfs.CoworkingConfig{
			Venues: p.venues, Customers: p.m, Seed: p.seed,
		})
		if err != nil {
			return nil, err
		}
		return sc.Instance(g, p.k), nil
	case "bikes":
		g, err := buildCity(p)
		if err != nil {
			return nil, err
		}
		sc, err := mcfs.NewBikesScenario(g, mcfs.BikesConfig{
			Stations: p.stations, Bikes: p.m, Seed: p.seed,
		})
		if err != nil {
			return nil, err
		}
		return sc.Instance(g, p.k), nil
	case "dimacs":
		g, err := loadDIMACS(p)
		if err != nil {
			return nil, err
		}
		return assemble(g, p, rng, capFn), nil
	default:
		return nil, fmt.Errorf("unknown -type %q", typ)
	}
}

// loadDIMACS reads a road network in 9th-DIMACS-challenge format,
// collapsing the symmetric arc pairs of standard distributions.
func loadDIMACS(p genParams) (*mcfs.Graph, error) {
	if p.gr == "" {
		return nil, fmt.Errorf("-type dimacs requires -gr")
	}
	grF, err := os.Open(p.gr)
	if err != nil {
		return nil, err
	}
	//lint:ignore closecheck read path: DIMACS input is only read; parse errors dominate
	defer grF.Close()
	var coR io.Reader
	if p.co != "" {
		coF, err := os.Open(p.co)
		if err != nil {
			return nil, err
		}
		//lint:ignore closecheck read path: DIMACS input is only read; parse errors dominate
		defer coF.Close()
		coR = coF
	}
	return mcfs.ReadDIMACSGraph(grF, coR, true)
}

func buildCity(p genParams) (*mcfs.Graph, error) {
	cp, err := mcfs.CityPreset(p.city, p.scale, p.seed)
	if err != nil {
		return nil, err
	}
	return mcfs.GenerateCity(cp)
}

// assemble samples customers/facilities from the largest component so
// the written instance is feasible by construction.
func assemble(g *mcfs.Graph, p genParams, rng *rand.Rand, capFn func(int) int) *mcfs.Instance {
	pool := mcfs.LargestComponent(g)
	var facs []mcfs.Facility
	if p.facAll {
		facs = mcfs.NodesFacilities(pool, capFn)
	} else {
		facs = mcfs.SampleFacilitiesFrom(pool, p.l, rng, capFn)
	}
	return &mcfs.Instance{
		G:          g,
		Customers:  mcfs.SampleCustomersFrom(pool, p.m, rng),
		Facilities: facs,
		K:          p.k,
	}
}
