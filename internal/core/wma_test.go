package core

import (
	"errors"
	"math/rand"
	"testing"

	"mcfs/internal/data"
	"mcfs/internal/graph"
	"mcfs/internal/testutil"
)

func pathGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n, false)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1), 1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSolveTiny(t *testing.T) {
	g := pathGraph(t, 5)
	inst := &data.Instance{
		G:         g,
		Customers: []int32{0, 4},
		Facilities: []data.Facility{
			{Node: 0, Capacity: 1}, {Node: 2, Capacity: 2}, {Node: 4, Capacity: 1},
		},
		K: 2,
	}
	sol, err := Solve(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.CheckSolution(sol); err != nil {
		t.Fatal(err)
	}
	if sol.Objective != 0 {
		t.Fatalf("objective = %d, want 0 (facilities at both customer nodes)", sol.Objective)
	}
}

func TestSolveCapacityForcesSplit(t *testing.T) {
	g := pathGraph(t, 5)
	inst := &data.Instance{
		G:          g,
		Customers:  []int32{1, 1},
		Facilities: []data.Facility{{Node: 1, Capacity: 1}, {Node: 3, Capacity: 1}, {Node: 0, Capacity: 1}},
		K:          2,
	}
	sol, err := Solve(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.CheckSolution(sol); err != nil {
		t.Fatal(err)
	}
	// Optimal: facilities at 1 and 0 → costs 0 + 1 = 1.
	if sol.Objective != 1 {
		t.Fatalf("objective = %d, want 1", sol.Objective)
	}
}

func TestSolveRewiringBeatsGreedy(t *testing.T) {
	// The paper's §IV-B scenario shape: a greedy assignment would block
	// the optimal; rewiring must recover it. Star around node 2 (facility
	// hub, cap 1): optimal requires spreading.
	b := graph.NewBuilder(6, false)
	b.AddEdge(0, 2, 1).AddEdge(1, 2, 2).AddEdge(1, 3, 3).AddEdge(0, 4, 50).AddEdge(3, 5, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	inst := &data.Instance{
		G:          g,
		Customers:  []int32{0, 1},
		Facilities: []data.Facility{{Node: 2, Capacity: 1}, {Node: 3, Capacity: 1}, {Node: 4, Capacity: 1}},
		K:          2,
	}
	sol, err := Solve(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.CheckSolution(sol); err != nil {
		t.Fatal(err)
	}
	// Optimal: 0→node2 (1), 1→node3 (3): total 4.
	if sol.Objective != 4 {
		t.Fatalf("objective = %d, want 4", sol.Objective)
	}
}

func TestSolveEmptyCustomers(t *testing.T) {
	g := pathGraph(t, 3)
	inst := &data.Instance{G: g, Facilities: []data.Facility{{Node: 0, Capacity: 1}}, K: 1}
	sol, err := Solve(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Assignment) != 0 || sol.Objective != 0 {
		t.Fatalf("unexpected solution for empty customers: %+v", sol)
	}
}

func TestSolveInfeasible(t *testing.T) {
	g := pathGraph(t, 3)
	cases := []*data.Instance{
		{ // not enough capacity
			G: g, Customers: []int32{0, 1, 2},
			Facilities: []data.Facility{{Node: 0, Capacity: 2}}, K: 1,
		},
		{ // k = 0 with customers
			G: g, Customers: []int32{0},
			Facilities: []data.Facility{{Node: 0, Capacity: 2}}, K: 0,
		},
		{ // no facilities at all
			G: g, Customers: []int32{0}, K: 3,
		},
	}
	for i, inst := range cases {
		if _, err := Solve(inst, Options{}); !errors.Is(err, data.ErrInfeasible) {
			t.Fatalf("case %d: err = %v, want ErrInfeasible", i, err)
		}
	}
}

func TestSolveInvalidInstance(t *testing.T) {
	g := pathGraph(t, 3)
	inst := &data.Instance{G: g, Customers: []int32{9}, K: 1}
	if _, err := Solve(inst, Options{}); err == nil {
		t.Fatal("invalid instance accepted")
	}
}

func TestSolveKGreaterThanL(t *testing.T) {
	g := pathGraph(t, 6)
	inst := &data.Instance{
		G:          g,
		Customers:  []int32{0, 5},
		Facilities: []data.Facility{{Node: 1, Capacity: 2}, {Node: 4, Capacity: 2}},
		K:          10,
	}
	sol, err := Solve(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.CheckSolution(sol); err != nil {
		t.Fatal(err)
	}
	if sol.Objective != 2 {
		t.Fatalf("objective = %d, want 2", sol.Objective)
	}
}

func TestSolveDisconnectedComponents(t *testing.T) {
	// Two components; budget forces exactly one facility per component.
	b := graph.NewBuilder(6, false)
	b.AddEdge(0, 1, 1).AddEdge(1, 2, 1)
	b.AddEdge(3, 4, 1).AddEdge(4, 5, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	inst := &data.Instance{
		G:         g,
		Customers: []int32{0, 2, 3, 5},
		Facilities: []data.Facility{
			{Node: 1, Capacity: 2}, {Node: 2, Capacity: 2},
			{Node: 4, Capacity: 2}, {Node: 5, Capacity: 2},
		},
		K: 2,
	}
	sol, err := Solve(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.CheckSolution(sol); err != nil {
		t.Fatal(err)
	}
	// Optimal: node1 (serving 0 and 2: 1+1) and node4 (serving 3 and 5: 1+1) = 4.
	if sol.Objective != 4 {
		t.Fatalf("objective = %d, want 4", sol.Objective)
	}
}

func TestSolveValidOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		inst := testutil.RandomInstance(rng, testutil.Params{
			MinNodes: 8, MaxNodes: 60,
			MaxCustomers: 12, MaxFacilities: 10,
			MaxCapacity: 4, MaxWeight: 25,
		})
		sol, err := Solve(inst, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v (m=%d l=%d k=%d)", trial, err, inst.M(), inst.L(), inst.K)
		}
		if _, err := inst.CheckSolution(sol); err != nil {
			t.Fatalf("trial %d: invalid solution: %v", trial, err)
		}
	}
}

func TestSolveValidOnMultiComponentInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 30; trial++ {
		inst := testutil.RandomInstance(rng, testutil.Params{
			MinNodes: 12, MaxNodes: 60,
			MaxCustomers: 10, MaxFacilities: 8,
			MaxCapacity: 3, MaxWeight: 25,
			Components: 1 + rng.Intn(3),
		})
		sol, err := Solve(inst, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if _, err := inst.CheckSolution(sol); err != nil {
			t.Fatalf("trial %d: invalid solution: %v", trial, err)
		}
	}
}

func TestSolveOptionVariantsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	variants := []Options{
		{Demand: DemandAll},
		{TieBreak: TieArbitrary},
		{Exhaustive: true},
		{Demand: DemandAll, TieBreak: TieArbitrary, Exhaustive: true},
	}
	for trial := 0; trial < 10; trial++ {
		inst := testutil.RandomInstance(rng, testutil.Params{
			MinNodes: 8, MaxNodes: 40,
			MaxCustomers: 8, MaxFacilities: 8,
			MaxCapacity: 3, MaxWeight: 20,
		})
		for vi, opt := range variants {
			sol, err := Solve(inst, opt)
			if err != nil {
				t.Fatalf("trial %d variant %d: %v", trial, vi, err)
			}
			if _, err := inst.CheckSolution(sol); err != nil {
				t.Fatalf("trial %d variant %d: %v", trial, vi, err)
			}
		}
	}
}

func TestSolveDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	inst := testutil.RandomInstance(rng, testutil.Params{
		MinNodes: 20, MaxNodes: 40,
		MaxCustomers: 10, MaxFacilities: 8,
		MaxCapacity: 3, MaxWeight: 20,
	})
	a, err := Solve(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Objective != b.Objective {
		t.Fatalf("nondeterministic objectives: %d vs %d", a.Objective, b.Objective)
	}
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatal("nondeterministic assignment")
		}
	}
}

func TestProgressCallback(t *testing.T) {
	// Long path, customers on even nodes, facilities everywhere, small k:
	// forces the exploration loop (l > k) and several iterations.
	g := pathGraph(t, 30)
	inst := &data.Instance{G: g, K: 3}
	for v := 0; v < 30; v += 2 {
		inst.Customers = append(inst.Customers, int32(v))
	}
	for v := 0; v < 30; v++ {
		inst.Facilities = append(inst.Facilities, data.Facility{Node: int32(v), Capacity: 5})
	}
	var iters []IterationStats
	_, err := Solve(inst, Options{Progress: func(s IterationStats) { iters = append(iters, s) }})
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) == 0 {
		t.Fatal("progress callback never invoked")
	}
	for i, s := range iters {
		if s.Iteration != i+1 {
			t.Fatalf("iteration numbering: got %d at position %d", s.Iteration, i)
		}
		if s.Covered < 0 || s.Covered > inst.M() {
			t.Fatalf("covered out of range: %d", s.Covered)
		}
		if i > 0 && s.Edges < iters[i-1].Edges {
			t.Fatal("cumulative edge count decreased")
		}
	}
	// Final iteration of a feasible run covers everyone (or the loop
	// ended in the provisions path; with connected random instances and
	// ample capacity, coverage is the norm).
	last := iters[len(iters)-1]
	if last.Covered != inst.M() {
		t.Logf("note: final covered = %d of %d (provisions path)", last.Covered, inst.M())
	}
}

func TestAssignToSelectionOptimalVsBruteForce(t *testing.T) {
	// For fixed selections the assignment must be a minimum-cost
	// matching; cross-check against trying all assignment permutations on
	// tiny cases.
	g := pathGraph(t, 7)
	inst := &data.Instance{
		G:          g,
		Customers:  []int32{0, 3, 6},
		Facilities: []data.Facility{{Node: 1, Capacity: 2}, {Node: 5, Capacity: 1}},
		K:          2,
	}
	sol, err := AssignToSelection(inst, []int{0, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Brute force: customer 0: d(0,1)=1 d(0,5)=5; customer 3: d=2 or 2; customer 6: d=5 or 1.
	// Best: 0→f0 (1), 3→f0 (2), 6→f1 (1) = 4.
	if sol.Objective != 4 {
		t.Fatalf("objective = %d, want 4", sol.Objective)
	}
	if _, err := inst.CheckSolution(sol); err != nil {
		t.Fatal(err)
	}
}

func TestAssignToSelectionInfeasibleSubset(t *testing.T) {
	g := pathGraph(t, 4)
	inst := &data.Instance{
		G:          g,
		Customers:  []int32{0, 1},
		Facilities: []data.Facility{{Node: 2, Capacity: 1}, {Node: 3, Capacity: 5}},
		K:          1,
	}
	if _, err := AssignToSelection(inst, []int{0}, Options{}); !errors.Is(err, data.ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestRebuildSelectionDirect(t *testing.T) {
	// Force the rebuild path: deficit component with no unselected
	// facility to swap in is impossible here, so call rebuildSelection
	// directly to cover its logic.
	b := graph.NewBuilder(4, false)
	b.AddEdge(0, 1, 1).AddEdge(2, 3, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	inst := &data.Instance{
		G:         g,
		Customers: []int32{0, 2, 3},
		Facilities: []data.Facility{
			{Node: 1, Capacity: 1}, {Node: 2, Capacity: 1}, {Node: 3, Capacity: 2},
		},
		K: 2,
	}
	comp, count := g.Components()
	custCount := make([]int, count)
	for _, s := range inst.Customers {
		custCount[comp[s]]++
	}
	sel, err := rebuildSelection(inst, comp, count, custCount, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Component of nodes 2,3 has 2 customers: needs the cap-2 facility.
	found := false
	for _, j := range sel {
		if j == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("rebuild did not pick the top-capacity facility: %v", sel)
	}
}
