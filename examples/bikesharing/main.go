// Bikesharing reproduces the paper's §VII-F.2 scenario: a dockless bike
// sharing service periodically gathers dispersed bikes and needs to pick
// k docking stations (with capacities) minimizing the total distance
// from where bikes were left.
//
// The bike distribution follows the paper's pipeline: an hourly bike
// flow field over the street network, its divergence at every node (net
// bikes parked per hour), and the variance of that divergence across the
// day as the docking-demand proxy — here driven by simulated commute
// attractors in a Copenhagen-like network.
package main

import (
	"fmt"
	"log"
	"os"

	"mcfs"
)

func main() {
	prm, err := mcfs.CityPreset("copenhagen", 0.02, 5)
	if err != nil {
		log.Fatal(err)
	}
	g, err := mcfs.GenerateCity(prm)
	if err != nil {
		log.Fatal(err)
	}
	st := mcfs.NetworkStats(g)
	fmt.Printf("copenhagen-like network: %d nodes, %d edges\n", st.Nodes, st.Edges)

	sc, err := mcfs.NewBikesScenario(g, mcfs.BikesConfig{
		Stations: 600, Bikes: 500, MinCap: 3, MaxCap: 12, Attractors: 4, Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario: %d candidate docking stations, %d scattered bikes\n\n", len(sc.Stations), len(sc.Bikes))

	sweep := []int{120, 160, 200, 240}
	if os.Getenv("MCFS_EXAMPLE_QUICK") != "" {
		sweep = sweep[:2]
	}
	fmt.Printf("%6s  %12s  %12s  %12s  %12s\n", "k", "WMA", "WMA UF", "Hilbert", "Naive")
	for _, k := range sweep {
		inst := sc.Instance(g, k)
		if ok, _ := inst.Feasible(); !ok {
			fmt.Printf("%6d  infeasible at this budget\n", k)
			continue
		}
		w := mustSolve(inst, func() (*mcfs.Solution, error) { return mcfs.Solve(inst) })
		uf := mustSolve(inst, func() (*mcfs.Solution, error) { return mcfs.SolveUniformFirst(inst) })
		h := mustSolve(inst, func() (*mcfs.Solution, error) { return mcfs.SolveHilbert(inst) })
		nv := mustSolve(inst, func() (*mcfs.Solution, error) { return mcfs.SolveNaive(inst, mcfs.WithSeed(2)) })
		fmt.Printf("%6d  %12d  %12d  %12d  %12d\n", k, w.Objective, uf.Objective, h.Objective, nv.Objective)
	}

	// Station utilization under the chosen assignment.
	inst := sc.Instance(g, 160)
	sol := mustSolve(inst, func() (*mcfs.Solution, error) { return mcfs.Solve(inst) })
	load := map[int]int{}
	for _, j := range sol.Assignment {
		load[j]++
	}
	full, total := 0, 0
	for _, j := range sol.Selected {
		if load[j] == inst.Facilities[j].Capacity {
			full++
		}
		total += load[j]
	}
	fmt.Printf("\nk=160: %d stations opened, %d at full capacity, %d bikes docked, objective %d m\n",
		len(sol.Selected), full, total, sol.Objective)

	// Export the solved scenario for mapping tools.
	if f, err := os.Create("bikesharing.geojson"); err == nil {
		if err := mcfs.WriteGeoJSON(f, inst, sol); err == nil {
			fmt.Println("wrote bikesharing.geojson")
		}
		f.Close()
	}
}

func mustSolve(inst *mcfs.Instance, fn func() (*mcfs.Solution, error)) *mcfs.Solution {
	sol, err := fn()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := inst.CheckSolution(sol); err != nil {
		log.Fatal(err)
	}
	return sol
}
