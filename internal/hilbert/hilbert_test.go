package hilbert

import (
	"testing"
	"testing/quick"
)

func TestEncodeOrder1(t *testing.T) {
	// Order-1 curve visits (0,0),(0,1),(1,1),(1,0) in that order.
	want := map[[2]uint32]uint64{
		{0, 0}: 0, {0, 1}: 1, {1, 1}: 2, {1, 0}: 3,
	}
	for cell, d := range want {
		if got := Encode(1, cell[0], cell[1]); got != d {
			t.Errorf("Encode(1,%d,%d) = %d, want %d", cell[0], cell[1], got, d)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, order := range []uint{1, 2, 3, 5, 8} {
		side := uint32(1) << order
		step := uint32(1)
		if side > 64 {
			step = side / 64
		}
		for x := uint32(0); x < side; x += step {
			for y := uint32(0); y < side; y += step {
				d := Encode(order, x, y)
				gx, gy := Decode(order, d)
				if gx != x || gy != y {
					t.Fatalf("order %d: Decode(Encode(%d,%d)) = (%d,%d)", order, x, y, gx, gy)
				}
			}
		}
	}
}

func TestEncodeBijectiveOrder4(t *testing.T) {
	const order = 4
	seen := make(map[uint64]bool)
	for x := uint32(0); x < 16; x++ {
		for y := uint32(0); y < 16; y++ {
			d := Encode(order, x, y)
			if d >= 256 {
				t.Fatalf("Encode out of range: %d", d)
			}
			if seen[d] {
				t.Fatalf("duplicate curve position %d", d)
			}
			seen[d] = true
		}
	}
	if len(seen) != 256 {
		t.Fatalf("covered %d positions, want 256", len(seen))
	}
}

func TestCurveContinuity(t *testing.T) {
	// Successive curve positions are adjacent cells (Manhattan distance 1).
	const order = 6
	px, py := Decode(order, 0)
	for d := uint64(1); d < 1<<(2*order); d++ {
		x, y := Decode(order, d)
		dx, dy := int64(x)-int64(px), int64(y)-int64(py)
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		if dx+dy != 1 {
			t.Fatalf("positions %d and %d are not adjacent: (%d,%d)->(%d,%d)", d-1, d, px, py, x, y)
		}
		px, py = x, y
	}
}

func TestRoundTripQuick(t *testing.T) {
	const order = 10
	f := func(xr, yr uint32) bool {
		x, y := xr%(1<<order), yr%(1<<order)
		gx, gy := Decode(order, Encode(order, x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeFloat(t *testing.T) {
	// Corners of the unit square map to distinct positions; clamping works.
	const order = 4
	d00 := EncodeFloat(order, 0, 0, 0, 1, 0, 1)
	d11 := EncodeFloat(order, 1, 1, 0, 1, 0, 1)
	if d00 == d11 {
		t.Fatal("corners collide")
	}
	// Out-of-range values clamp rather than wrap.
	dNeg := EncodeFloat(order, -5, -5, 0, 1, 0, 1)
	if dNeg != d00 {
		t.Fatalf("clamped encode = %d, want %d", dNeg, d00)
	}
	dBig := EncodeFloat(order, 9, 9, 0, 1, 0, 1)
	dMax := EncodeFloat(order, 0.999, 0.999, 0, 1, 0, 1)
	if dBig != dMax {
		t.Fatalf("upper clamp: %d vs %d", dBig, dMax)
	}
}

func TestEncodeFloatDegenerateExtent(t *testing.T) {
	if d := EncodeFloat(4, 3, 7, 5, 5, 0, 10); d != Encode(4, 0, quantize(7, 0, 10, 16)) {
		t.Fatalf("degenerate X extent mishandled: %d", d)
	}
}

func TestLocalityRough(t *testing.T) {
	// Nearby points should mostly have nearby curve positions; check that
	// the average curve gap of adjacent cells is far below the max gap.
	const order = 5
	var sum, count uint64
	for x := uint32(0); x < 31; x++ {
		for y := uint32(0); y < 32; y++ {
			a := Encode(order, x, y)
			b := Encode(order, x+1, y)
			gap := a - b
			if b > a {
				gap = b - a
			}
			sum += gap
			count++
		}
	}
	avg := float64(sum) / float64(count)
	if avg > 64 { // 1024 positions total; locality should keep this small
		t.Fatalf("poor locality: avg adjacent gap %.1f", avg)
	}
}
