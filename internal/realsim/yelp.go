// Package realsim simulates the paper's two real-world data scenarios
// (§VII-F) from seeded synthetic sources, preserving the published
// derivation pipelines while replacing the proprietary raw inputs:
//
//   - Coworking (Yelp-style): venues with occupancies and operational
//     hours; customers distributed by the paper's network-Voronoi
//     triangle formula m_Δ = O_i·(ω·O_j/Σ_j O_j + (1−ω)·area share);
//   - Dockless bike sharing: a per-hour bike-flow field over the street
//     network, nodewise divergence, variance across hours as the docking
//     demand proxy, and a station/capacity generator.
package realsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mcfs/internal/data"
	"mcfs/internal/graph"
)

// Venue is a candidate coworking facility: a node with an occupancy
// (used to derive the customer distribution) and daily operational hours
// (its capacity proxy, as in the paper).
type Venue struct {
	Node      int32
	Occupancy float64
	Hours     int
}

// CoworkingConfig parameterizes the coworking scenario generator.
type CoworkingConfig struct {
	Venues    int     // number of candidate venues (Las Vegas: 4089, Copenhagen: 164)
	Customers int     // coworkers to place (1000 / 200)
	MeanHours int     // mean operational hours (the paper reports 9)
	Omega     float64 // the ω mixing weight; the paper's default is 0.5
	Seed      int64
}

// CoworkingScenario holds the generated instance ingredients; K is left
// to the experiment (the paper sweeps it).
type CoworkingScenario struct {
	Venues    []Venue
	Customers []int32
}

// Coworking generates venues on the network and distributes customers
// with the Voronoi/triangle technique: each node belongs to the Voronoi
// cell of its nearest venue i and to the "triangle" identified by its
// second-nearest venue j; the triangle receives customer mass
// O_i·(ω·O_j/Σ_j O_j + (1−ω)·|triangle|/|cell|), spread uniformly over
// its nodes (node count is the network analogue of triangle area).
func Coworking(g *graph.Graph, cfg CoworkingConfig) (*CoworkingScenario, error) {
	if cfg.Venues < 2 {
		return nil, fmt.Errorf("realsim: need at least 2 venues, got %d", cfg.Venues)
	}
	if cfg.Venues > g.N() {
		return nil, fmt.Errorf("realsim: %d venues exceed %d nodes", cfg.Venues, g.N())
	}
	if cfg.MeanHours <= 0 {
		cfg.MeanHours = 9
	}
	if cfg.Omega < 0 || cfg.Omega > 1 {
		return nil, fmt.Errorf("realsim: omega %v outside [0,1]", cfg.Omega)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Venues at distinct nodes; occupancy is heavy-tailed (lognormal),
	// hours cluster around the mean like café opening times do.
	perm := rng.Perm(g.N())
	venues := make([]Venue, cfg.Venues)
	nodes := make([]int32, cfg.Venues)
	for i := range venues {
		hours := cfg.MeanHours + int(math.Round(rng.NormFloat64()*2))
		if hours < 1 {
			hours = 1
		}
		if hours > 24 {
			hours = 24
		}
		venues[i] = Venue{
			Node:      int32(perm[i]),
			Occupancy: math.Exp(rng.NormFloat64()),
			Hours:     hours,
		}
		nodes[i] = venues[i].Node
	}

	// Network Voronoi cells and triangles.
	owner, _ := g.MultiSourceTwoNearest(nodes)
	type cellKey struct{ i, j int32 }
	triNodes := make(map[cellKey][]int32)
	cellSize := make(map[int32]int)
	neighborOcc := make(map[int32]float64) // Σ_j O_j over triangles of cell i
	seenPair := make(map[cellKey]bool)
	for v := 0; v < g.N(); v++ {
		i, j := owner[0][v], owner[1][v]
		if i < 0 {
			continue // node in a venue-less component
		}
		if j < 0 {
			j = i // degenerate: single venue reachable; one triangle
		}
		k := cellKey{i, j}
		triNodes[k] = append(triNodes[k], int32(v))
		cellSize[i]++
		if !seenPair[k] {
			seenPair[k] = true
			neighborOcc[i] += venues[j].Occupancy
		}
	}

	// Triangle masses per the paper's formula, then node weights. Keys
	// are visited in sorted order: float accumulation order must be
	// deterministic for reproducible sampling.
	keys := make([]cellKey, 0, len(triNodes))
	for k := range triNodes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].i != keys[b].i {
			return keys[a].i < keys[b].i
		}
		return keys[a].j < keys[b].j
	})
	nodeWeight := make([]float64, g.N())
	var totalMass float64
	for _, k := range keys {
		ns := triNodes[k]
		oi := venues[k.i].Occupancy
		oj := venues[k.j].Occupancy
		share := float64(len(ns)) / float64(cellSize[k.i])
		mass := oi * (cfg.Omega*oj/neighborOcc[k.i] + (1-cfg.Omega)*share)
		per := mass / float64(len(ns))
		for _, v := range ns {
			nodeWeight[v] += per
		}
		totalMass += mass
	}
	if totalMass <= 0 {
		return nil, fmt.Errorf("realsim: degenerate customer distribution")
	}

	customers := sampleByWeight(rng, nodeWeight, cfg.Customers)
	return &CoworkingScenario{Venues: venues, Customers: customers}, nil
}

// Instance assembles a data.Instance from the scenario with capacity =
// operational hours (the paper's proxy) and budget k.
func (s *CoworkingScenario) Instance(g *graph.Graph, k int) *data.Instance {
	facs := make([]data.Facility, len(s.Venues))
	for j, v := range s.Venues {
		facs[j] = data.Facility{Node: v.Node, Capacity: v.Hours}
	}
	return &data.Instance{G: g, Customers: s.Customers, Facilities: facs, K: k}
}

// sampleByWeight draws count nodes proportionally to weight (with
// replacement: several customers may share a node, as in the paper's
// scaled experiments).
func sampleByWeight(rng *rand.Rand, weight []float64, count int) []int32 {
	cum := make([]float64, len(weight))
	var total float64
	for i, w := range weight {
		total += w
		cum[i] = total
	}
	out := make([]int32, count)
	for c := 0; c < count; c++ {
		target := rng.Float64() * total
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		out[c] = int32(lo)
	}
	return out
}

// DistrictConfig parameterizes the Copenhagen-style district-population
// customer distribution (§VII-F.1b): the city is cut into a
// Districts×Districts coordinate grid, each district receives a random
// population weight, and customers are placed on random nodes of
// districts drawn proportionally to population.
type DistrictConfig struct {
	Districts int // grid side (e.g., 4 → 16 districts)
	Customers int
	Seed      int64
}

// DistrictCustomers places customers per district populations.
func DistrictCustomers(g *graph.Graph, cfg DistrictConfig) ([]int32, error) {
	if !g.HasCoords() {
		return nil, fmt.Errorf("realsim: district distribution requires coordinates")
	}
	if cfg.Districts < 1 {
		cfg.Districts = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	minX, maxX, minY, maxY := coordExtent(g)
	d := cfg.Districts
	pop := make([]float64, d*d)
	for i := range pop {
		pop[i] = math.Exp(rng.NormFloat64()) // lognormal district populations
	}
	weight := make([]float64, g.N())
	for v := int32(0); v < int32(g.N()); v++ {
		x, y := g.Coord(v)
		cx := gridIndex(x, minX, maxX, d)
		cy := gridIndex(y, minY, maxY, d)
		weight[v] = pop[cy*d+cx]
	}
	return sampleByWeight(rng, weight, cfg.Customers), nil
}

func gridIndex(v, lo, hi float64, d int) int {
	if hi <= lo {
		return 0
	}
	i := int((v - lo) / (hi - lo) * float64(d))
	if i < 0 {
		i = 0
	}
	if i >= d {
		i = d - 1
	}
	return i
}

func coordExtent(g *graph.Graph) (minX, maxX, minY, maxY float64) {
	for v := int32(0); v < int32(g.N()); v++ {
		x, y := g.Coord(v)
		if v == 0 || x < minX {
			minX = x
		}
		if v == 0 || x > maxX {
			maxX = x
		}
		if v == 0 || y < minY {
			minY = y
		}
		if v == 0 || y > maxY {
			maxY = y
		}
	}
	return
}
