// Roadnetwork demonstrates the real-data ingestion path: load a road
// network in the 9th-DIMACS-challenge format (the format of the public
// USA road graphs), place a facility-selection workload on it, solve it,
// audit individual trips with the landmark distance oracle, and export
// the result as GeoJSON.
//
// The demo writes and reads back a small embedded network so it runs
// offline; point -gr/-co at real DIMACS files to use your own data.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	"mcfs"
)

// A tiny embedded "road network": a 6×6 jittered grid in DIMACS format,
// generated once and inlined so the example is self-contained.
func embeddedNetwork() (*mcfs.Graph, error) {
	p, err := mcfs.CityPreset("aalborg", 0.004, 99)
	if err != nil {
		return nil, err
	}
	g, err := mcfs.GenerateCity(p)
	if err != nil {
		return nil, err
	}
	// Round-trip through DIMACS to exercise the reader/writer.
	var gr, co strings.Builder
	if err := mcfs.WriteDIMACSGraph(&gr, &co, g); err != nil {
		return nil, err
	}
	return mcfs.ReadDIMACSGraph(strings.NewReader(gr.String()), strings.NewReader(co.String()), true)
}

func main() {
	grPath := flag.String("gr", "", "DIMACS .gr file (default: embedded demo network)")
	coPath := flag.String("co", "", "DIMACS .co coordinate file")
	flag.Parse()

	var g *mcfs.Graph
	var err error
	if *grPath != "" {
		grF, ferr := os.Open(*grPath)
		if ferr != nil {
			log.Fatal(ferr)
		}
		defer grF.Close()
		var co *os.File
		if *coPath != "" {
			co, ferr = os.Open(*coPath)
			if ferr != nil {
				log.Fatal(ferr)
			}
			defer co.Close()
		}
		if co != nil {
			g, err = mcfs.ReadDIMACSGraph(grF, co, true)
		} else {
			g, err = mcfs.ReadDIMACSGraph(grF, nil, true)
		}
	} else {
		g, err = embeddedNetwork()
	}
	if err != nil {
		log.Fatal(err)
	}
	st := mcfs.NetworkStats(g)
	fmt.Printf("road network: %d nodes, %d edges, avg degree %.2f\n", st.Nodes, st.Edges, st.AvgDegree)

	rng := rand.New(rand.NewSource(17))
	pool := mcfs.LargestComponent(g)
	m := len(pool) / 20
	if m < 4 {
		m = 4
	}
	inst := &mcfs.Instance{
		G:          g,
		Customers:  mcfs.SampleCustomersFrom(pool, m, rng),
		Facilities: mcfs.SampleFacilitiesFrom(pool, len(pool)/5, rng, mcfs.UniformCapacity(6)),
		K:          m/4 + 1,
	}
	sol, err := mcfs.Solve(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solved: m=%d l=%d k=%d objective=%d\n", inst.M(), inst.L(), inst.K, sol.Objective)

	// Audit a few trips with the landmark oracle: each reported distance
	// must equal the assignment's cost component.
	oracle, err := mcfs.NewDistanceOracle(g, 6, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntrip audit (oracle distances):")
	for i := 0; i < 3 && i < inst.M(); i++ {
		from := inst.Customers[i]
		to := inst.Facilities[sol.Assignment[i]].Node
		fmt.Printf("  customer %d: node %d -> facility node %d, distance %d m\n",
			i, from, to, oracle.Distance(from, to))
	}

	if f, err := os.Create("roadnetwork.geojson"); err == nil {
		if err := mcfs.WriteGeoJSON(f, inst, sol); err == nil {
			fmt.Println("\nwrote roadnetwork.geojson")
		}
		f.Close()
	}
}
