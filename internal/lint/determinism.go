package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism enforces the harness's byte-identical-output contract in
// non-test library code (the root package and everything under
// internal/): no time.Now in solver code (wall clock readings leak into
// results; internal/bench is exempt because measured runtime *is* its
// output), no package-global math/rand functions (unseeded, and shared
// mutable state across goroutines — every random choice must flow from
// an explicit seeded *rand.Rand), and no ranging over a map where the
// body appends to a slice or writes output (Go randomizes map iteration
// order, so the result ordering would differ run to run; iterate a
// sorted key slice instead).
//
// With type information the map rule fires on *any* expression whose
// static type is a map — named map types, maps behind struct fields
// from other packages, map-returning methods — where the syntactic
// version could only recognize package-local declarations it had
// indexed. time.Now and the rand functions are resolved through the
// checker, so an import renamed to `clock` no longer hides a call.
// Without type info the rule falls back to the syntactic index.
type Determinism struct{}

// Name implements Rule.
func (Determinism) Name() string { return "determinism" }

// Doc implements Rule.
func (Determinism) Doc() string {
	return "no time.Now / global math/rand / order-sensitive map iteration in non-test library code"
}

// globalRandFuncs are the package-level math/rand functions that draw
// from the shared unseeded source. Constructors (New, NewSource,
// NewZipf) are the sanctioned alternative and stay allowed.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

// timeNowExempt lists the packages allowed to call time.Now: layers
// whose *output* is wall-clock measurement. internal/bench measures
// runtimes; internal/obs records elapsed phase time (observability is
// strictly passive — the traced-vs-untraced byte-identity tests in
// internal/bench pin that the readings never feed back into solver
// output). Solver packages that want timings route them through these
// layers instead of earning an entry here.
var timeNowExempt = map[string]bool{
	"internal/bench": true,
	"internal/obs":   true,
}

// orderSensitiveCalls are callee names that make a map-iteration body
// order-sensitive: growing a slice or emitting output.
var orderSensitiveCalls = map[string]bool{
	"append": true,
	"Write":  true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// Check implements Rule.
func (Determinism) Check(pkg *Package, report ReportFunc) {
	if pkg.Dir != "." && !strings.HasPrefix(pkg.Dir, "internal/") {
		return
	}
	banTimeNow := !timeNowExempt[pkg.Dir]
	idx := indexPackageMaps(pkg)
	for _, f := range pkg.Files {
		if f.Test {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if banTimeNow && isTimeNow(pkg, n) {
					report(f, n.Pos(),
						"time.Now is nondeterministic solver input; route timings through an exempt measurement layer (internal/bench, internal/obs) or annotate the instrumentation")
				}
			case *ast.CallExpr:
				if name, ok := globalRandCall(pkg, n); ok {
					report(f, n.Pos(),
						"global rand.%s draws from the shared unseeded source; use a seeded *rand.Rand", name)
				}
			}
			return true
		})
		for _, decl := range f.AST.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkMapRanges(pkg, f, fd, idx, report)
			}
		}
	}
}

// isTimeNow recognizes the time.Now selector, by resolved object when
// type info is available (robust to import renaming), syntactically
// otherwise.
func isTimeNow(pkg *Package, sel *ast.SelectorExpr) bool {
	if pkg.Typed() {
		obj := pkg.ObjectOf(sel.Sel)
		return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "Now"
	}
	return isPkgSel(sel, "time", "Now")
}

// globalRandCall recognizes calls to the shared-source math/rand
// package functions (never the methods of a seeded *rand.Rand, which
// share the same names — the typed path distinguishes them by the
// resolved object's package scope, the syntactic path by the receiver
// identifier being the package name).
func globalRandCall(pkg *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !globalRandFuncs[sel.Sel.Name] {
		return "", false
	}
	if pkg.Typed() {
		obj := pkg.ObjectOf(sel.Sel)
		if f, ok := obj.(*types.Func); ok && f.Pkg() != nil && f.Pkg().Path() == "math/rand" &&
			f.Type().(*types.Signature).Recv() == nil {
			return f.Name(), true
		}
		return "", false
	}
	if x, ok := sel.X.(*ast.Ident); ok && x.Name == "rand" {
		return sel.Sel.Name, true
	}
	return "", false
}

// pkgMapIndex is the package-local knowledge used to recognize
// map-typed expressions without type information: struct fields, named
// function/method results, and package-level variables of map type.
type pkgMapIndex struct {
	fields map[string]bool // struct field names declared with a map type
	funcs  map[string]bool // funcs/methods whose first result is a map
	vars   map[string]bool // package-level vars of map type
}

// indexPackageMaps scans every file of the package (tests included —
// a helper defined in a test file can flow into scope decisions). The
// index is only consulted when no type information is available.
func indexPackageMaps(pkg *Package) pkgMapIndex {
	idx := pkgMapIndex{
		fields: make(map[string]bool),
		funcs:  make(map[string]bool),
		vars:   make(map[string]bool),
	}
	if pkg.Typed() {
		return idx
	}
	for _, f := range pkg.Files {
		for _, decl := range f.AST.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Type.Results != nil && len(d.Type.Results.List) > 0 {
					if isMapType(d.Type.Results.List[0].Type) {
						idx.funcs[d.Name.Name] = true
					}
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if st, ok := s.Type.(*ast.StructType); ok {
							for _, field := range st.Fields.List {
								if isMapType(field.Type) {
									for _, name := range field.Names {
										idx.fields[name.Name] = true
									}
								}
							}
						}
					case *ast.ValueSpec:
						if isMapType(s.Type) {
							for _, name := range s.Names {
								idx.vars[name.Name] = true
							}
						}
					}
				}
			}
		}
	}
	return idx
}

// checkMapRanges reports order-sensitive map iterations inside fd.
func checkMapRanges(pkg *Package, f *File, fd *ast.FuncDecl, idx pkgMapIndex, report ReportFunc) {
	local := make(map[string]bool)
	if !pkg.Typed() {
		addParams := func(ft *ast.FuncType) {
			for _, field := range ft.Params.List {
				if isMapType(field.Type) {
					for _, name := range field.Names {
						local[name.Name] = true
					}
				}
			}
		}
		addParams(fd.Type)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				addParams(n.Type)
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, rhs := range n.Rhs {
						if id, ok := n.Lhs[i].(*ast.Ident); ok && isMapExprLiteral(rhs) {
							local[id.Name] = true
						}
					}
				}
			case *ast.ValueSpec:
				if isMapType(n.Type) {
					for _, name := range n.Names {
						local[name.Name] = true
					}
				}
			}
			return true
		})
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if isMapExpr(pkg, rng.X, local, idx) && hasOrderSensitiveEffect(rng.Body) && !sortedAfter(fd.Body, rng) {
			report(f, rng.Pos(),
				"iterating a map while appending or writing output is order-nondeterministic; range over a sorted key slice (or sort what you collected before using it)")
		}
		return true
	})
}

// sortedAfter reports whether the function calls into package sort
// after the range loop ends — the collect-then-sort idiom, which is the
// sanctioned way to turn a map into a deterministic sequence and must
// not be flagged.
func sortedAfter(body *ast.BlockStmt, rng *ast.RangeStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if x, ok := sel.X.(*ast.Ident); ok && (x.Name == "sort" || x.Name == "slices") {
				found = true
			}
		}
		return !found
	})
	return found
}

// isMapExprLiteral recognizes the two in-function ways a map value is
// born: make(map[...]...) and a map composite literal.
func isMapExprLiteral(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && len(e.Args) > 0 {
			return isMapType(e.Args[0])
		}
	case *ast.CompositeLit:
		return isMapType(e.Type)
	}
	return false
}

// isMapExpr reports whether e is a map. With type information this is
// exact — any expression whose static type has a map underlying,
// including named map types and cross-package fields. Without it, the
// package-local evidence: a tracked local/param/package var, a field
// declared with map type anywhere in the package, or a call to a
// map-returning package function.
func isMapExpr(pkg *Package, e ast.Expr, local map[string]bool, idx pkgMapIndex) bool {
	if pkg.Typed() {
		t := pkg.TypeOf(e)
		if t == nil {
			return false
		}
		_, ok := types.Unalias(t).Underlying().(*types.Map)
		return ok
	}
	switch e := e.(type) {
	case *ast.Ident:
		return local[e.Name] || idx.vars[e.Name]
	case *ast.SelectorExpr:
		return idx.fields[e.Sel.Name]
	case *ast.CallExpr:
		switch fun := e.Fun.(type) {
		case *ast.Ident:
			return idx.funcs[fun.Name]
		case *ast.SelectorExpr:
			return idx.funcs[fun.Sel.Name]
		}
	}
	return false
}

// hasOrderSensitiveEffect reports whether body appends to a slice or
// writes output.
func hasOrderSensitiveEffect(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if orderSensitiveCalls[fun.Name] {
				found = true
			}
		case *ast.SelectorExpr:
			if orderSensitiveCalls[fun.Sel.Name] {
				found = true
			}
		}
		return !found
	})
	return found
}

// isMapType reports whether the type expression is a map type.
func isMapType(t ast.Expr) bool {
	_, ok := t.(*ast.MapType)
	return ok
}
