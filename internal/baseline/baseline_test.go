package baseline

import (
	"errors"
	"math/rand"
	"testing"

	"mcfs/internal/core"
	"mcfs/internal/data"
	"mcfs/internal/graph"
	"mcfs/internal/solver"
	"mcfs/internal/testutil"
)

func randomParams() testutil.Params {
	return testutil.Params{
		MinNodes: 10, MaxNodes: 60,
		MaxCustomers: 10, MaxFacilities: 8,
		MaxCapacity: 3, MaxWeight: 25,
	}
}

type algo struct {
	name string
	run  func(*data.Instance) (*data.Solution, error)
}

func allAlgos() []algo {
	return []algo{
		{"hilbert", func(in *data.Instance) (*data.Solution, error) { return Hilbert(in, core.Options{}) }},
		{"brnn", func(in *data.Instance) (*data.Solution, error) { return BRNN(in, core.Options{}) }},
		{"naive", func(in *data.Instance) (*data.Solution, error) { return Naive(in, 7, core.Options{}) }},
	}
}

func TestBaselinesValidOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 25; trial++ {
		inst := testutil.RandomInstance(rng, randomParams())
		for _, a := range allAlgos() {
			sol, err := a.run(inst)
			if err != nil {
				t.Fatalf("trial %d %s: %v (m=%d l=%d k=%d)", trial, a.name, err, inst.M(), inst.L(), inst.K)
			}
			if _, err := inst.CheckSolution(sol); err != nil {
				t.Fatalf("trial %d %s: invalid solution: %v", trial, a.name, err)
			}
		}
	}
}

func TestBaselinesMultiComponent(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	p := randomParams()
	p.Components = 2
	p.MinNodes = 16
	for trial := 0; trial < 15; trial++ {
		inst := testutil.RandomInstance(rng, p)
		for _, a := range allAlgos() {
			sol, err := a.run(inst)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, a.name, err)
			}
			if _, err := inst.CheckSolution(sol); err != nil {
				t.Fatalf("trial %d %s: %v", trial, a.name, err)
			}
		}
	}
}

func TestBaselinesNeverBeatOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 15; trial++ {
		inst := testutil.RandomInstance(rng, testutil.Params{
			MinNodes: 10, MaxNodes: 40,
			MaxCustomers: 7, MaxFacilities: 6,
			MaxCapacity: 3, MaxWeight: 20,
		})
		opt, err := solver.Exhaustive(inst, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, a := range allAlgos() {
			sol, err := a.run(inst)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, a.name, err)
			}
			if sol.Objective < opt.Objective {
				t.Fatalf("trial %d: %s objective %d beats optimum %d — checker bug",
					trial, a.name, sol.Objective, opt.Objective)
			}
		}
	}
}

func TestBaselinesInfeasible(t *testing.T) {
	b := graph.NewBuilder(3, false)
	b.AddEdge(0, 1, 1).AddEdge(1, 2, 1)
	b.SetCoords([]float64{0, 1, 2}, []float64{0, 0, 0})
	g, _ := b.Build()
	inst := &data.Instance{
		G:          g,
		Customers:  []int32{0, 1, 2},
		Facilities: []data.Facility{{Node: 0, Capacity: 1}},
		K:          1,
	}
	for _, a := range allAlgos() {
		if _, err := a.run(inst); !errors.Is(err, data.ErrInfeasible) {
			t.Fatalf("%s: err = %v, want ErrInfeasible", a.name, err)
		}
	}
}

func TestBaselinesEmptyCustomers(t *testing.T) {
	b := graph.NewBuilder(2, false)
	b.AddEdge(0, 1, 1)
	b.SetCoords([]float64{0, 1}, []float64{0, 0})
	g, _ := b.Build()
	inst := &data.Instance{G: g, Facilities: []data.Facility{{Node: 0, Capacity: 1}}, K: 1}
	for _, a := range allAlgos() {
		sol, err := a.run(inst)
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		if len(sol.Assignment) != 0 {
			t.Fatalf("%s: nonempty assignment", a.name)
		}
	}
}

func TestHilbertRequiresCoords(t *testing.T) {
	b := graph.NewBuilder(2, false)
	b.AddEdge(0, 1, 1)
	g, _ := b.Build()
	inst := &data.Instance{
		G:          g,
		Customers:  []int32{0},
		Facilities: []data.Facility{{Node: 1, Capacity: 1}},
		K:          1,
	}
	if _, err := Hilbert(inst, core.Options{}); !errors.Is(err, ErrNoCoords) {
		t.Fatalf("err = %v, want ErrNoCoords", err)
	}
}

func TestHilbertBucketsRespectCurveOrder(t *testing.T) {
	// Customers along a line; with k=2 the buckets must split the line in
	// half and the facilities snap near the two half centroids.
	const n = 12
	b := graph.NewBuilder(n, false)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = float64(i) * 10
		ys[i] = 0
		if i > 0 {
			b.AddEdge(int32(i-1), int32(i), 10)
		}
	}
	b.SetCoords(xs, ys)
	g, _ := b.Build()
	inst := &data.Instance{G: g, K: 2}
	for i := 0; i < n; i++ {
		inst.Customers = append(inst.Customers, int32(i))
		inst.Facilities = append(inst.Facilities, data.Facility{Node: int32(i), Capacity: 6})
	}
	sol, err := Hilbert(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.CheckSolution(sol); err != nil {
		t.Fatal(err)
	}
	// Centroids of halves are at x=25 and x=85 → facilities at nodes 2/3
	// and 8/9. Accept exact centroid-snapping within one node.
	for _, j := range sol.Selected {
		x, _ := g.Coord(inst.Facilities[j].Node)
		if !(x >= 10 && x <= 40) && !(x >= 70 && x <= 100) {
			t.Fatalf("facility snapped to x=%v, far from either half centroid", x)
		}
	}
}

func TestBRNNFirstFacilityIsOneMedian(t *testing.T) {
	// Line of 5 nodes with customers at both ends: the 1-median is the
	// middle node.
	b := graph.NewBuilder(5, false)
	for i := 0; i < 4; i++ {
		b.AddEdge(int32(i), int32(i+1), 1)
	}
	b.SetCoords([]float64{0, 1, 2, 3, 4}, make([]float64, 5))
	g, _ := b.Build()
	inst := &data.Instance{
		G:         g,
		Customers: []int32{0, 2, 4},
		Facilities: []data.Facility{
			{Node: 0, Capacity: 3}, {Node: 2, Capacity: 3}, {Node: 4, Capacity: 3},
		},
		K: 1,
	}
	sol, err := BRNN(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Selected) != 1 || inst.Facilities[sol.Selected[0]].Node != 2 {
		t.Fatalf("BRNN first pick = %v, want the 1-median node 2", sol.Selected)
	}
}

func TestBRNNSecondPickAttractsMost(t *testing.T) {
	// After the 1-median at the hub, the second facility must go where it
	// attracts the most customers: the dense cluster, not the single far
	// customer.
	//
	//   hub(0) — 1,2,3 (cluster at distance 10, interconnected)
	//   hub(0) — 4 (far customer at distance 12)
	b := graph.NewBuilder(6, false)
	b.AddEdge(0, 1, 10).AddEdge(0, 2, 10).AddEdge(0, 3, 10)
	b.AddEdge(1, 2, 1).AddEdge(2, 3, 1)
	b.AddEdge(0, 4, 12)
	b.AddEdge(0, 5, 1)
	b.SetCoords(make([]float64, 6), make([]float64, 6))
	g, _ := b.Build()
	inst := &data.Instance{
		G:         g,
		Customers: []int32{1, 2, 3, 4},
		Facilities: []data.Facility{
			{Node: 0, Capacity: 4}, {Node: 2, Capacity: 4}, {Node: 4, Capacity: 4},
		},
		K: 2,
	}
	sol, err := BRNN(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	nodes := map[int32]bool{}
	for _, j := range sol.Selected {
		nodes[inst.Facilities[j].Node] = true
	}
	if !nodes[2] {
		t.Fatalf("BRNN selected %v; the cluster facility (node 2, attracting 3 customers) must be picked", sol.Selected)
	}
}

func TestNaiveDeterministicPerSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	inst := testutil.RandomInstance(rng, randomParams())
	a, err := Naive(inst, 99, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Naive(inst, 99, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Objective != b.Objective {
		t.Fatalf("same seed, different objectives: %d vs %d", a.Objective, b.Objective)
	}
}

func TestNaiveNeverBetterThanWMAOnAverage(t *testing.T) {
	// The paper's headline comparison: exact matching (WMA) beats the
	// greedy naive variant in aggregate.
	rng := rand.New(rand.NewSource(65))
	var wmaSum, naiveSum int64
	for trial := 0; trial < 20; trial++ {
		inst := testutil.RandomInstance(rng, randomParams())
		w, err := core.Solve(inst, core.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		n, err := Naive(inst, int64(trial), core.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		wmaSum += w.Objective
		naiveSum += n.Objective
	}
	if wmaSum > naiveSum {
		t.Fatalf("WMA aggregate %d worse than naive aggregate %d", wmaSum, naiveSum)
	}
}

func TestUniformFirstValid(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for trial := 0; trial < 15; trial++ {
		inst := testutil.RandomInstance(rng, randomParams())
		sol, err := core.SolveUniformFirst(inst, core.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if _, err := inst.CheckSolution(sol); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
