// Package serve is the fixture stand-in for the serving engine: a
// constructor that starts the batch writer goroutine, an op queue, and
// handlers that must use it.
package serve

import "fix/dynamic"

type op struct {
	n     int
	reply chan int
}

type Server struct {
	r   *dynamic.Reallocator
	ops chan op
}

// New runs single-threaded before the writer starts: its mutating
// calls are construction, not concurrency.
func New() *Server {
	s := &Server{r: &dynamic.Reallocator{}, ops: make(chan op, 16)}
	s.r.SetContext(1)
	go s.loop()
	go s.tickerLoop()
	return s
}

// tickerLoop stands in for the durability goroutines (snapshot policy,
// drift healer): launched by the constructor, but it only reads and
// submits through the op queue — accepted, no finding, and it does not
// join the writer set.
func (s *Server) tickerLoop() {
	for i := 0; i < 3; i++ {
		if s.r.Stats() > 0 {
			s.handleAdd(i)
		}
	}
}

// loop is the batch writer goroutine.
func (s *Server) loop() {
	for o := range s.ops {
		s.process(o)
	}
}

// process runs on the writer goroutine (its only caller is loop).
func (s *Server) process(o op) {
	s.r.SetContext(o.n)
	s.reset()
	o.reply <- s.r.AddCustomer(o.n)
}

// handleAdd enqueues and waits: the sanctioned path, no findings.
func (s *Server) handleAdd(n int) int {
	reply := make(chan int, 1)
	s.ops <- op{n: n, reply: reply}
	return <-reply
}

// handleFast skips the queue and mutates from a request goroutine.
func (s *Server) handleFast(n int) int {
	s.reset()
	return s.r.AddCustomer(n) // want "call to mutating Reallocator method AddCustomer outside the batch writer goroutine"
}

// handleStats only reads: no finding.
func (s *Server) handleStats() int { return s.r.Stats() }

// refresh has no callers inside the package (wired up elsewhere), so
// it cannot be writer-confined; Publish mutates via flush.
func (s *Server) refresh() {
	s.r.Publish() // want "call to mutating Reallocator method Publish outside the batch writer goroutine"
}

// reset is called from both the writer (process) and a request
// handler (handleFast): one non-writer caller loses confinement.
func (s *Server) reset() {
	s.r.SetContext(0) // want "call to mutating Reallocator method SetContext outside the batch writer goroutine"
}
