// Package baseline implements the three scalable MCFS baselines of the
// paper's evaluation (§VII-A):
//
//   - Hilbert: bucket customers along a Hilbert space-filling curve into
//     k groups, snap each group's centroid to the nearest candidate
//     facility, then build one optimal assignment;
//   - BRNN: iteratively place facilities at the candidate node attracting
//     the most customers (MaxSum over network nearest-location regions),
//     then build one optimal assignment;
//   - Naive: the WMA loop with the exact bipartite matching replaced by a
//     greedy no-rewiring assignment ("WMA Naïve").
//
// All three return data.ErrInfeasible exactly when WMA does.
package baseline

import (
	"context"
	"errors"
	"sort"

	"mcfs/internal/core"
	"mcfs/internal/data"
	"mcfs/internal/graph"
	"mcfs/internal/hilbert"
	"mcfs/internal/spatial"
)

// ErrNoCoords is returned by Hilbert when the network has no planar
// coordinates (the curve needs them).
var ErrNoCoords = errors.New("baseline: Hilbert requires node coordinates")

// hilbertOrder quantizes coordinates to a 2^16 grid: far below any
// meaningful customer-separation scale.
const hilbertOrder = 16

// Hilbert implements the paper's first baseline (after [17]): split the
// customers into k buckets of ⌈m/k⌉ consecutive points in Hilbert-curve
// order and place a facility at the candidate node nearest each bucket's
// centroid. Components are handled separately, each receiving a facility
// budget proportional to its customer count (§VII-C); the final
// customer→facility assignment is an optimal bipartite matching under
// the true capacities, with a component-capacity repair pass first.
func Hilbert(inst *data.Instance, opt core.Options) (*data.Solution, error) {
	return HilbertCtx(context.Background(), inst, opt)
}

// HilbertCtx is Hilbert with cooperative cancellation, checked once per
// component during bucketing and throughout the repair and final
// matching phases. On cancellation it returns nil and ctx.Err(); an
// uncancelled run is byte-identical to Hilbert.
func HilbertCtx(ctx context.Context, inst *data.Instance, opt core.Options) (*data.Solution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if !inst.G.HasCoords() {
		return nil, ErrNoCoords
	}
	if ok, _ := inst.Feasible(); !ok {
		return nil, data.ErrInfeasible
	}
	if inst.M() == 0 {
		return &data.Solution{Selected: []int{}, Assignment: []int{}}, nil
	}
	k := inst.K
	if k > inst.L() {
		k = inst.L()
	}

	comp, count := inst.G.Components()
	custByComp := make([][]int32, count)
	for _, s := range inst.Customers {
		custByComp[comp[s]] = append(custByComp[comp[s]], s)
	}
	facByComp := make([][]int, count)
	for j, f := range inst.Facilities {
		c := comp[f.Node]
		facByComp[c] = append(facByComp[c], j)
	}
	budget := splitBudget(custByComp, facByComp, k, inst.M())

	minX, maxX, minY, maxY := extent(inst.G)
	var selection []int
	for c := 0; c < count; c++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if budget[c] == 0 || len(custByComp[c]) == 0 {
			continue
		}
		selection = append(selection, bucketAndSnap(inst, custByComp[c], facByComp[c], budget[c], minX, maxX, minY, maxY)...)
	}

	selection, err := core.CoverComponentsCtx(ctx, inst, selection)
	if err != nil {
		return nil, err
	}
	return core.AssignToSelectionCtx(ctx, inst, selection, opt)
}

// splitBudget distributes k facilities over components proportionally to
// customer counts (largest remainder), at least one per customer-bearing
// component, never exceeding a component's candidate supply.
func splitBudget(custByComp [][]int32, facByComp [][]int, k, m int) []int {
	count := len(custByComp)
	budget := make([]int, count)
	type frac struct {
		comp int
		rem  float64
	}
	var fracs []frac
	used := 0
	for c := 0; c < count; c++ {
		if len(custByComp[c]) == 0 || len(facByComp[c]) == 0 {
			continue
		}
		share := float64(k) * float64(len(custByComp[c])) / float64(m)
		budget[c] = int(share)
		if budget[c] < 1 {
			budget[c] = 1
		}
		if budget[c] > len(facByComp[c]) {
			budget[c] = len(facByComp[c])
		}
		used += budget[c]
		fracs = append(fracs, frac{c, share - float64(int(share))})
	}
	sort.Slice(fracs, func(i, j int) bool { return fracs[i].rem > fracs[j].rem })
	for _, f := range fracs {
		if used >= k {
			break
		}
		if budget[f.comp] < len(facByComp[f.comp]) {
			budget[f.comp]++
			used++
		}
	}
	// The forced one-per-component minimum can overshoot k together with
	// the integer shares; trim the largest budgets back (never below 1).
	for used > k {
		big := -1
		for c := range budget {
			if budget[c] > 1 && (big == -1 || budget[c] > budget[big]) {
				big = c
			}
		}
		if big == -1 {
			break // all at the minimum; feasibility pre-check guarantees used <= k here
		}
		budget[big]--
		used--
	}
	return budget
}

// bucketAndSnap orders a component's customers along the Hilbert curve,
// forms kc buckets of ⌈m/kc⌉ consecutive customers, and selects for each
// the unselected candidate facility nearest (Euclidean) to the bucket
// centroid, consuming candidates through a grid spatial index.
func bucketAndSnap(inst *data.Instance, customers []int32, candidates []int, kc int, minX, maxX, minY, maxY float64) []int {
	g := inst.G
	ordered := append([]int32(nil), customers...)
	key := func(s int32) uint64 {
		x, y := g.Coord(s)
		return hilbert.EncodeFloat(hilbertOrder, x, y, minX, maxX, minY, maxY)
	}
	sort.Slice(ordered, func(i, j int) bool {
		ki, kj := key(ordered[i]), key(ordered[j])
		if ki != kj {
			return ki < kj
		}
		return ordered[i] < ordered[j]
	})
	xs := make([]float64, len(candidates))
	ys := make([]float64, len(candidates))
	ids := make([]int32, len(candidates))
	for i, j := range candidates {
		xs[i], ys[i] = g.Coord(inst.Facilities[j].Node)
		ids[i] = int32(j)
	}
	index := spatial.NewGridIndex(xs, ys, ids)

	size := (len(ordered) + kc - 1) / kc
	var selection []int
	for b := 0; b < len(ordered); b += size {
		end := b + size
		if end > len(ordered) {
			end = len(ordered)
		}
		var cx, cy float64
		for _, s := range ordered[b:end] {
			x, y := g.Coord(s)
			cx += x
			cy += y
		}
		cx /= float64(end - b)
		cy /= float64(end - b)
		id, slot, ok := index.Nearest(cx, cy)
		if !ok {
			break // candidate supply exhausted
		}
		index.Remove(slot)
		selection = append(selection, int(id))
	}
	return selection
}

// extent returns the coordinate bounding box of the graph.
func extent(g *graph.Graph) (minX, maxX, minY, maxY float64) {
	for v := int32(0); v < int32(g.N()); v++ {
		x, y := g.Coord(v)
		if v == 0 || x < minX {
			minX = x
		}
		if v == 0 || x > maxX {
			maxX = x
		}
		if v == 0 || y < minY {
			minY = y
		}
		if v == 0 || y > maxY {
			maxY = y
		}
	}
	return minX, maxX, minY, maxY
}
