// Command mcfslint runs the project's static-analysis suite: custom
// rules that machine-check the concurrency, cancellation, and
// determinism invariants the solver stack depends on (see DESIGN.md
// §10 for the rule catalogue and the //lint:ignore suppression syntax).
//
//	mcfslint ./...
//	mcfslint -json ./...          # machine-readable findings
//	mcfslint -rules closecheck ./cmd/...
//	mcfslint -typed=false ./...   # syntactic-only escape hatch
//	mcfslint -list                # print the rule catalogue
//
// By default the tree is type-checked (stdlib go/types; in-module
// imports resolved from source, the standard library from GOROOT/src)
// and rules use resolved objects and static types. -typed=false skips
// type-checking and runs the original syntactic heuristics — faster,
// and the only mode that works on a tree that doesn't type-check.
// Typed-only rules (ctx-propagation, shared-instance-mutation) are
// silent in that mode.
//
// Findings print one per line as "file:line: rule: message" on stdout;
// a summary with the analyzer's own runtime goes to stderr, followed
// by a per-rule timing line with -timing (CI records the summary so a
// slow rule is noticed). Exit status is 1 when there are findings, 2 on
// usage or parse errors, 0 on a clean tree.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mcfs/internal/lint"
)

func main() {
	var (
		jsonOut   = flag.Bool("json", false, "emit findings as a JSON array on stdout")
		rulesFlag = flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
		chdir     = flag.String("C", ".", "module root to resolve package patterns against")
		list      = flag.Bool("list", false, "list the rules and exit")
		typed     = flag.Bool("typed", true, "type-check the tree so rules can use go/types info")
		timing    = flag.Bool("timing", false, "print per-rule wall-clock timings to stderr")
	)
	flag.Parse()

	if *list {
		for _, r := range lint.AllRules() {
			fmt.Printf("%-16s %s\n", r.Name(), r.Doc())
		}
		return
	}

	rules := lint.AllRules()
	if *rulesFlag != "" {
		byName := make(map[string]lint.Rule)
		for _, r := range rules {
			byName[r.Name()] = r
		}
		rules = rules[:0]
		for _, name := range strings.Split(*rulesFlag, ",") {
			r, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "mcfslint: unknown rule %q (try -list)\n", name)
				os.Exit(2)
			}
			rules = append(rules, r)
		}
	}

	start := time.Now()
	load := lint.Load
	if *typed {
		load = lint.LoadTyped
	}
	pkgs, err := load(*chdir, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcfslint:", err)
		os.Exit(2)
	}
	loadElapsed := time.Since(start)
	for _, p := range pkgs {
		for _, msg := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "mcfslint: type error (rules fall back to syntax where affected): %s\n", msg)
		}
	}
	findings, ruleTimes := lint.RunTimed(pkgs, rules)
	elapsed := time.Since(start)

	if *jsonOut {
		if findings == nil {
			findings = []lint.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "mcfslint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}

	files := 0
	for _, p := range pkgs {
		files += len(p.Files)
	}
	mode := "typed"
	if !*typed {
		mode = "syntactic"
	}
	fmt.Fprintf(os.Stderr, "mcfslint: %d finding(s) in %d files, %d rules, %s (%s, load %s)\n",
		len(findings), files, len(rules), elapsed.Round(time.Millisecond), mode, loadElapsed.Round(time.Millisecond))
	if *timing {
		for _, rt := range ruleTimes {
			fmt.Fprintf(os.Stderr, "mcfslint: rule %-26s %s\n", rt.Rule, rt.Elapsed.Round(10*time.Microsecond))
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
