// Package lint is the engine behind mcfslint, the project's static
// analysis suite. It machine-checks the invariants the parallel bench
// harness and the cooperative-cancellation layer rely on — audited
// immutability, context checkpoints in unbounded solver loops,
// byte-identical deterministic output — which are otherwise enforced
// only by convention and code review.
//
// The engine is deliberately stdlib-only (go/parser, go/ast, go/token,
// go/types, go/importer; no x/tools dependency, matching the module's
// stdlib-only rule). LoadTyped attaches full go/types information —
// in-module imports resolved from source, stdlib from GOROOT/src — and
// every rule prefers resolved objects and static types over spelling
// when that info is present; with plain Load each rule falls back to
// its original syntactic heuristics, so the engine still works on
// fixture trees and broken packages. Deliberate exceptions are
// annotated in the tree with
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// placed on the offending line or the line directly above it. The
// reason is mandatory, and a directive that suppresses nothing is
// itself reported (rule "lint-directive") so annotations cannot go
// stale silently.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Finding is one diagnostic, rendered as "path:line: rule: message".
type Finding struct {
	Path    string `json:"path"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Path, f.Line, f.Rule, f.Message)
}

// File is one parsed source file.
type File struct {
	Fset *token.FileSet
	AST  *ast.File
	Path string // module-relative, slash-separated
	Test bool   // *_test.go
}

// Package groups the files of one directory. Dir is the directory's
// module-relative slash path ("." for the module root); rules use it to
// decide whether they apply. Types/Info are populated by LoadTyped
// (nil after a plain Load, or for test-only directories): rules use
// them when present and fall back to their syntactic heuristics when
// not, so the engine degrades instead of failing.
type Package struct {
	Dir   string
	Files []*File

	Types      *types.Package
	Info       *types.Info
	TypeErrors []string // checker diagnostics; partial Info is kept
}

// ReportFunc records a finding at pos in f; the engine fills in the
// rule name and resolves the position.
type ReportFunc func(f *File, pos token.Pos, format string, args ...any)

// Rule is one analysis pass. Check is called once per package and must
// be deterministic: findings are emitted in a sorted order, but rules
// should not depend on iteration order internally either.
type Rule interface {
	Name() string
	Doc() string
	Check(pkg *Package, report ReportFunc)
}

// ModuleRule is a rule that needs the whole run at once — every loaded
// package plus the cross-package summaries — rather than one package
// at a time. Run calls CheckModule exactly once per run (instead of
// Check per package) for rules that implement it; Check remains for
// direct single-package callers.
type ModuleRule interface {
	Rule
	CheckModule(m *Module, report ReportFunc)
}

// AllRules returns the full rule set in stable order.
func AllRules() []Rule {
	return []Rule{
		CtxCheckpoint{},
		APIParity{},
		Determinism{},
		CloseCheck{},
		NakedGoroutine{},
		SharedMutation{},
		CtxPropagation{},
		PublishedImmutability{},
		SingleWriter{},
		SentinelParity{},
	}
}

// directiveRule is the pseudo-rule under which malformed or unused
// //lint:ignore directives are reported. It cannot be suppressed.
const directiveRule = "lint-directive"

// RuleTime is the cumulative wall time one rule spent across every
// package of a run — the per-rule timing mcfslint prints so a slow
// typed pass is noticed in CI output, not discovered by bisection.
type RuleTime struct {
	Rule    string
	Elapsed time.Duration
}

// Run executes the rules over the packages and returns the surviving
// findings sorted by position. Suppression via //lint:ignore is applied
// here; unused-directive hygiene findings are only emitted when the
// full rule set runs (a filtered run cannot tell a stale directive from
// one whose rule simply was not executed).
func Run(pkgs []*Package, rules []Rule) []Finding {
	findings, _ := RunTimed(pkgs, rules)
	return findings
}

// RunTimed is Run with per-rule wall-time accounting: one entry per
// rule in rules order, plus a trailing "(summaries)" entry for the
// cross-package summary computation every module rule shares.
func RunTimed(pkgs []*Package, rules []Rule) ([]Finding, []RuleTime) {
	var raw []Finding
	times := make([]RuleTime, len(rules)+1)
	for i, rule := range rules {
		times[i].Rule = rule.Name()
	}
	times[len(rules)].Rule = "(summaries)"

	//lint:ignore determinism per-rule timing is diagnostic stderr output, never solver input
	start := time.Now()
	mod := newModule(pkgs)
	times[len(rules)].Elapsed = time.Since(start)

	for i, rule := range rules {
		name := rule.Name()
		report := func(f *File, pos token.Pos, format string, args ...any) {
			p := f.Fset.Position(pos)
			raw = append(raw, Finding{
				Path: f.Path, Line: p.Line, Col: p.Column,
				Rule: name, Message: fmt.Sprintf(format, args...),
			})
		}
		//lint:ignore determinism per-rule timing is diagnostic stderr output, never solver input
		start := time.Now()
		if mr, ok := rule.(ModuleRule); ok {
			mr.CheckModule(mod, report)
		} else {
			for _, pkg := range pkgs {
				rule.Check(pkg, report)
			}
		}
		times[i].Elapsed += time.Since(start)
	}

	known := make(map[string]bool)
	for _, r := range AllRules() {
		known[r.Name()] = true
	}
	ran := make(map[string]bool)
	for _, r := range rules {
		ran[r.Name()] = true
	}
	complete := true
	for name := range known {
		if !ran[name] {
			complete = false
		}
	}

	var directives []*ignoreDirective
	var findings []Finding
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ds, bad := collectDirectives(f, known)
			directives = append(directives, ds...)
			findings = append(findings, bad...)
		}
	}

	for _, fd := range raw {
		suppressed := false
		for _, d := range directives {
			if d.path == fd.Path && d.rules[fd.Rule] && (d.line == fd.Line || d.line == fd.Line-1) {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			findings = append(findings, fd)
		}
	}
	if complete {
		for _, d := range directives {
			if !d.used {
				findings = append(findings, Finding{
					Path: d.path, Line: d.line, Col: d.col, Rule: directiveRule,
					Message: "unused //lint:ignore directive (nothing to suppress here; delete it)",
				})
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return findings, times
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	path  string
	line  int
	col   int
	rules map[string]bool
	used  bool
}

// collectDirectives parses every //lint: comment of f. Malformed
// directives (unknown verb, missing rule list or reason, unknown rule
// name) are returned as findings rather than silently ignored: a typo
// in a suppression must not reopen the hole it papers over.
func collectDirectives(f *File, known map[string]bool) ([]*ignoreDirective, []Finding) {
	var ds []*ignoreDirective
	var bad []Finding
	report := func(pos token.Position, msg string) {
		bad = append(bad, Finding{
			Path: f.Path, Line: pos.Line, Col: pos.Column,
			Rule: directiveRule, Message: msg,
		})
	}
	for _, cg := range f.AST.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, "//lint:") {
				continue
			}
			pos := f.Fset.Position(c.Pos())
			rest := strings.TrimPrefix(c.Text, "//lint:")
			verb := rest
			if i := strings.IndexAny(verb, " \t"); i >= 0 {
				verb = verb[:i]
			}
			if verb != "ignore" {
				report(pos, fmt.Sprintf("unknown lint directive %q (only //lint:ignore is supported)", "lint:"+verb))
				continue
			}
			fields := strings.Fields(strings.TrimPrefix(rest, "ignore"))
			if len(fields) < 2 {
				report(pos, "//lint:ignore needs a rule list and a reason: //lint:ignore <rule>[,<rule>] <reason>")
				continue
			}
			rules := make(map[string]bool)
			ok := true
			for _, r := range strings.Split(fields[0], ",") {
				if !known[r] {
					report(pos, fmt.Sprintf("//lint:ignore names unknown rule %q", r))
					ok = false
					break
				}
				rules[r] = true
			}
			if !ok {
				continue
			}
			ds = append(ds, &ignoreDirective{path: f.Path, line: pos.Line, col: pos.Column, rules: rules})
		}
	}
	return ds, bad
}
