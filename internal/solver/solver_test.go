package solver

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"mcfs/internal/data"
	"mcfs/internal/graph"
	"mcfs/internal/testutil"
)

func smallParams() testutil.Params {
	return testutil.Params{
		MinNodes: 6, MaxNodes: 30,
		MaxCustomers: 6, MaxFacilities: 6,
		MaxCapacity: 3, MaxWeight: 20,
	}
}

func TestExhaustiveTinyKnownOptimum(t *testing.T) {
	// Path 0-1-2-3-4, customers at 0 and 4, facilities at 0,2,4 (cap 1),
	// k=2: optimal picks facilities at 0 and 4 with cost 0.
	b := graph.NewBuilder(5, false)
	for i := 0; i < 4; i++ {
		b.AddEdge(int32(i), int32(i+1), 1)
	}
	g, _ := b.Build()
	inst := &data.Instance{
		G:         g,
		Customers: []int32{0, 4},
		Facilities: []data.Facility{
			{Node: 0, Capacity: 1}, {Node: 2, Capacity: 1}, {Node: 4, Capacity: 1},
		},
		K: 2,
	}
	sol, err := Exhaustive(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != 0 {
		t.Fatalf("objective = %d, want 0", sol.Objective)
	}
	if _, err := inst.CheckSolution(sol); err != nil {
		t.Fatal(err)
	}
}

func TestExhaustiveCapacityForcesSplit(t *testing.T) {
	// Both customers nearest to facility 1, but capacity 1 forces one to
	// facility 3.
	b := graph.NewBuilder(5, false)
	for i := 0; i < 4; i++ {
		b.AddEdge(int32(i), int32(i+1), 1)
	}
	g, _ := b.Build()
	inst := &data.Instance{
		G:          g,
		Customers:  []int32{1, 1},
		Facilities: []data.Facility{{Node: 1, Capacity: 1}, {Node: 3, Capacity: 1}},
		K:          2,
	}
	sol, err := Exhaustive(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != 2 {
		t.Fatalf("objective = %d, want 2 (one customer travels to node 3)", sol.Objective)
	}
}

func TestExhaustiveInfeasible(t *testing.T) {
	b := graph.NewBuilder(2, false)
	b.AddEdge(0, 1, 1)
	g, _ := b.Build()
	inst := &data.Instance{
		G:          g,
		Customers:  []int32{0, 1},
		Facilities: []data.Facility{{Node: 0, Capacity: 1}},
		K:          1,
	}
	if _, err := Exhaustive(inst, 0); !errors.Is(err, data.ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestExhaustiveTooLarge(t *testing.T) {
	b := graph.NewBuilder(40, false)
	for i := 0; i < 39; i++ {
		b.AddEdge(int32(i), int32(i+1), 1)
	}
	g, _ := b.Build()
	inst := &data.Instance{G: g, Customers: []int32{0}, K: 20}
	for v := 0; v < 40; v++ {
		inst.Facilities = append(inst.Facilities, data.Facility{Node: int32(v), Capacity: 1})
	}
	if _, err := Exhaustive(inst, 1000); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestExhaustiveEmptyCustomers(t *testing.T) {
	b := graph.NewBuilder(2, false)
	b.AddEdge(0, 1, 1)
	g, _ := b.Build()
	inst := &data.Instance{G: g, Facilities: []data.Facility{{Node: 0, Capacity: 1}}, K: 1}
	sol, err := Exhaustive(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != 0 || len(sol.Assignment) != 0 {
		t.Fatalf("empty instance solution: %+v", sol)
	}
}

func TestBranchAndBoundMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		inst := testutil.RandomInstance(rng, smallParams())
		want, err := Exhaustive(inst, 0)
		if err != nil {
			t.Fatalf("trial %d: exhaustive: %v", trial, err)
		}
		res, err := BranchAndBound(inst, Options{})
		if err != nil {
			t.Fatalf("trial %d: bnb: %v", trial, err)
		}
		if !res.Optimal {
			t.Fatalf("trial %d: bnb not optimal without limits", trial)
		}
		if res.Solution.Objective != want.Objective {
			t.Fatalf("trial %d: bnb objective %d != exhaustive %d (m=%d l=%d k=%d)",
				trial, res.Solution.Objective, want.Objective, inst.M(), inst.L(), inst.K)
		}
		if _, err := inst.CheckSolution(res.Solution); err != nil {
			t.Fatalf("trial %d: bnb solution invalid: %v", trial, err)
		}
	}
}

func TestBranchAndBoundMultiComponent(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	p := smallParams()
	p.Components = 2
	p.MinNodes = 10
	for trial := 0; trial < 20; trial++ {
		inst := testutil.RandomInstance(rng, p)
		want, err := Exhaustive(inst, 0)
		if err != nil {
			t.Fatalf("trial %d: exhaustive: %v", trial, err)
		}
		res, err := BranchAndBound(inst, Options{})
		if err != nil {
			t.Fatalf("trial %d: bnb: %v", trial, err)
		}
		if res.Solution.Objective != want.Objective {
			t.Fatalf("trial %d: bnb %d != exhaustive %d", trial, res.Solution.Objective, want.Objective)
		}
	}
}

func TestBranchAndBoundInfeasible(t *testing.T) {
	b := graph.NewBuilder(2, false)
	b.AddEdge(0, 1, 1)
	g, _ := b.Build()
	inst := &data.Instance{
		G:          g,
		Customers:  []int32{0, 1, 0},
		Facilities: []data.Facility{{Node: 0, Capacity: 1}, {Node: 1, Capacity: 1}},
		K:          2,
	}
	if _, err := BranchAndBound(inst, Options{}); !errors.Is(err, data.ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestBranchAndBoundKCoversAll(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	inst := testutil.RandomInstance(rng, smallParams())
	inst.K = inst.L() // trivial selection path
	res, err := BranchAndBound(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.CheckSolution(res.Solution); err != nil {
		t.Fatal(err)
	}
}

func TestBranchAndBoundTimeout(t *testing.T) {
	// A larger instance with a vanishing time budget must either finish
	// instantly or report ErrTimeout with a best-so-far.
	rng := rand.New(rand.NewSource(24))
	p := testutil.Params{
		MinNodes: 60, MaxNodes: 80,
		MaxCustomers: 20, MaxFacilities: 18,
		MaxCapacity: 3, MaxWeight: 30,
	}
	inst := testutil.RandomInstance(rng, p)
	res, err := BranchAndBound(inst, Options{TimeBudget: 1 * time.Nanosecond})
	if err == nil {
		if !res.Optimal {
			t.Fatal("no error but not optimal")
		}
		return // finished before the first deadline check: acceptable
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestBranchAndBoundNodeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	p := smallParams()
	p.MaxFacilities = 8
	p.MaxCustomers = 8
	var limited bool
	for trial := 0; trial < 10 && !limited; trial++ {
		inst := testutil.RandomInstance(rng, p)
		res, err := BranchAndBound(inst, Options{NodeLimit: 2})
		if err != nil {
			if res == nil {
				continue // no incumbent found before the limit — also fine
			}
			if res.Optimal {
				t.Fatal("limited result claims optimality")
			}
			limited = true
			if res.Solution != nil {
				if _, cerr := inst.CheckSolution(res.Solution); cerr != nil {
					t.Fatalf("best-so-far invalid: %v", cerr)
				}
			}
		}
	}
}

// TestFeasiblePredicateMatchesExhaustive: the Feasible() pre-check must
// agree exactly with whether an optimal solution exists, across random
// instances including deliberately under-provisioned ones.
func TestFeasiblePredicateMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for trial := 0; trial < 40; trial++ {
		inst := testutil.RandomInstance(rng, smallParams())
		// Half the trials get sabotaged budgets or capacities.
		switch trial % 4 {
		case 1:
			inst.K = rng.Intn(inst.K + 1) // possibly too small
		case 2:
			for j := range inst.Facilities {
				inst.Facilities[j].Capacity = rng.Intn(2)
			}
		case 3:
			inst.K = 0
		}
		feasible, _ := inst.Feasible()
		_, err := Exhaustive(inst, 0)
		solvable := err == nil
		if errors.Is(err, ErrTooLarge) {
			continue
		}
		if feasible != solvable {
			t.Fatalf("trial %d: Feasible=%v but exhaustive solvable=%v (err=%v, m=%d l=%d k=%d)",
				trial, feasible, solvable, err, inst.M(), inst.L(), inst.K)
		}
	}
}
