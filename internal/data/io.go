package data

import (
	"bufio"
	"fmt"
	"io"

	"mcfs/internal/graph"
)

// The text instance format, version 1:
//
//	mcfs 1
//	graph <n> <m> <directed:0|1> <coords:0|1>
//	[<x> <y>          × n, if coords]
//	<u> <v> <w>       × m
//	customers <count>
//	<node>            × count
//	facilities <count>
//	<node> <capacity> × count
//	k <k>
//
// Lines starting with '#' are comments and ignored.

// WriteInstance serializes an instance in the text format.
func WriteInstance(w io.Writer, in *Instance) error {
	bw := bufio.NewWriter(w)
	coords := 0
	if in.G.HasCoords() {
		coords = 1
	}
	directed := 0
	if in.G.Directed() {
		directed = 1
	}
	fmt.Fprintln(bw, "mcfs 1")
	fmt.Fprintf(bw, "graph %d %d %d %d\n", in.G.N(), in.G.M(), directed, coords)
	if coords == 1 {
		for v := int32(0); v < int32(in.G.N()); v++ {
			x, y := in.G.Coord(v)
			fmt.Fprintf(bw, "%g %g\n", x, y)
		}
	}
	if err := writeEdges(bw, in.G); err != nil {
		return err
	}
	fmt.Fprintf(bw, "customers %d\n", len(in.Customers))
	for _, s := range in.Customers {
		fmt.Fprintln(bw, s)
	}
	fmt.Fprintf(bw, "facilities %d\n", len(in.Facilities))
	for _, f := range in.Facilities {
		fmt.Fprintf(bw, "%d %d\n", f.Node, f.Capacity)
	}
	fmt.Fprintf(bw, "k %d\n", in.K)
	return bw.Flush()
}

// writeEdges emits each logical edge once. For undirected graphs the CSR
// holds both arcs; emit only u <= v (self-loops are impossible given
// positive weights and builder validation allows them — emit u <= v keeps
// exactly one copy of u != v arcs and the single copy of u == v ones).
func writeEdges(w io.Writer, g *graph.Graph) error {
	if g.Directed() {
		for v := int32(0); v < int32(g.N()); v++ {
			var err error
			g.Neighbors(v, func(u int32, wt int64) bool {
				_, err = fmt.Fprintf(w, "%d %d %d\n", v, u, wt)
				return err == nil
			})
			if err != nil {
				return err
			}
		}
		return nil
	}
	// Undirected: parallel edges between the same pair are preserved by
	// emitting every arc with v < u, plus half of the v == u arcs.
	for v := int32(0); v < int32(g.N()); v++ {
		var err error
		g.Neighbors(v, func(u int32, wt int64) bool {
			if v <= u {
				_, err = fmt.Fprintf(w, "%d %d %d\n", v, u, wt)
			}
			return err == nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// ReadInstance parses the text format.
func ReadInstance(r io.Reader) (*Instance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	next := func() (string, error) {
		for sc.Scan() {
			line := sc.Text()
			if len(line) == 0 || line[0] == '#' {
				continue
			}
			return line, nil
		}
		if err := sc.Err(); err != nil {
			return "", err
		}
		return "", io.ErrUnexpectedEOF
	}

	line, err := next()
	if err != nil {
		return nil, err
	}
	var version int
	if _, err := fmt.Sscanf(line, "mcfs %d", &version); err != nil || version != 1 {
		return nil, fmt.Errorf("data: bad header %q", line)
	}

	line, err = next()
	if err != nil {
		return nil, err
	}
	var n, m, directed, coords int
	if _, err := fmt.Sscanf(line, "graph %d %d %d %d", &n, &m, &directed, &coords); err != nil {
		return nil, fmt.Errorf("data: bad graph line %q", line)
	}
	b := graph.NewBuilder(n, directed == 1)
	if coords == 1 {
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			line, err = next()
			if err != nil {
				return nil, err
			}
			if _, err := fmt.Sscanf(line, "%g %g", &xs[i], &ys[i]); err != nil {
				return nil, fmt.Errorf("data: bad coord line %q", line)
			}
		}
		b.SetCoords(xs, ys)
	}
	for e := 0; e < m; e++ {
		line, err = next()
		if err != nil {
			return nil, err
		}
		var u, v int32
		var w int64
		if _, err := fmt.Sscanf(line, "%d %d %d", &u, &v, &w); err != nil {
			return nil, fmt.Errorf("data: bad edge line %q", line)
		}
		b.AddEdge(u, v, w)
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}

	line, err = next()
	if err != nil {
		return nil, err
	}
	var count int
	if _, err := fmt.Sscanf(line, "customers %d", &count); err != nil {
		return nil, fmt.Errorf("data: bad customers line %q", line)
	}
	customers := make([]int32, count)
	for i := 0; i < count; i++ {
		line, err = next()
		if err != nil {
			return nil, err
		}
		if _, err := fmt.Sscanf(line, "%d", &customers[i]); err != nil {
			return nil, fmt.Errorf("data: bad customer line %q", line)
		}
	}

	line, err = next()
	if err != nil {
		return nil, err
	}
	if _, err := fmt.Sscanf(line, "facilities %d", &count); err != nil {
		return nil, fmt.Errorf("data: bad facilities line %q", line)
	}
	facilities := make([]Facility, count)
	for i := 0; i < count; i++ {
		line, err = next()
		if err != nil {
			return nil, err
		}
		if _, err := fmt.Sscanf(line, "%d %d", &facilities[i].Node, &facilities[i].Capacity); err != nil {
			return nil, fmt.Errorf("data: bad facility line %q", line)
		}
	}

	line, err = next()
	if err != nil {
		return nil, err
	}
	var k int
	if _, err := fmt.Sscanf(line, "k %d", &k); err != nil {
		return nil, fmt.Errorf("data: bad k line %q", line)
	}

	in := &Instance{G: g, Customers: customers, Facilities: facilities, K: k}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}
