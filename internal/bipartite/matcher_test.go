package bipartite

import (
	"math/rand"
	"testing"

	"mcfs/internal/data"
	"mcfs/internal/graph"
)

// --- reference implementation -------------------------------------------
//
// refMinCost computes the minimum-cost flow that matches each customer i
// to exactly demands[i] distinct facilities (edge capacity 1) under the
// facility capacities, over the complete bipartite graph with the given
// dense distance matrix. It uses plain successive-shortest-paths with
// Bellman-Ford on the residual graph (no potentials, no pruning), which
// is slow but obviously correct. Returns (cost, ok).
func refMinCost(dist [][]int64, caps []int, demands []int) (int64, bool) {
	m, l := len(dist), len(caps)
	matched := make([][]bool, m)
	for i := range matched {
		matched[i] = make([]bool, l)
	}
	load := make([]int, l)
	var total int64
	for unit := 0; ; unit++ {
		// Pick any customer still short of its demand.
		src := -1
		for i := 0; i < m; i++ {
			have := 0
			for j := 0; j < l; j++ {
				if matched[i][j] {
					have++
				}
			}
			if have < demands[i] {
				src = i
				break
			}
		}
		if src == -1 {
			return total, true
		}
		// Bellman-Ford over residual: nodes 0..m-1 customers, m..m+l-1 facilities.
		n := m + l
		d := make([]int64, n)
		par := make([]int, n)
		for i := range d {
			d[i] = graph.Inf
			par[i] = -1
		}
		d[src] = 0
		for iter := 0; iter < n; iter++ {
			changed := false
			for i := 0; i < m; i++ {
				if d[i] >= graph.Inf {
					continue
				}
				for j := 0; j < l; j++ {
					if matched[i][j] || dist[i][j] >= graph.Inf {
						continue
					}
					if nd := d[i] + dist[i][j]; nd < d[m+j] {
						d[m+j] = nd
						par[m+j] = i
						changed = true
					}
				}
			}
			for j := 0; j < l; j++ {
				if d[m+j] >= graph.Inf {
					continue
				}
				for i := 0; i < m; i++ {
					if !matched[i][j] {
						continue
					}
					if nd := d[m+j] - dist[i][j]; nd < d[i] {
						d[i] = nd
						par[i] = m + j
						changed = true
					}
				}
			}
			if !changed {
				break
			}
		}
		best, bestJ := graph.Inf, -1
		for j := 0; j < l; j++ {
			if load[j] < caps[j] && d[m+j] < best {
				best, bestJ = d[m+j], j
			}
		}
		if bestJ < 0 {
			return 0, false // demand unsatisfiable
		}
		total += best
		// Trace back and flip.
		node := m + bestJ
		for node != src {
			p := par[node]
			if node >= m { // arrived via forward arc p -> node
				matched[p][node-m] = true
			} else { // arrived via backward arc (p is facility)
				matched[node][p-m] = false
			}
			node = p
		}
		load[bestJ]++
		// Recompute loads from scratch (flips may have shifted interior ones).
		for j := 0; j < l; j++ {
			load[j] = 0
			for i := 0; i < m; i++ {
				if matched[i][j] {
					load[j]++
				}
			}
		}
	}
}

// denseDistances runs one full Dijkstra per customer.
func denseDistances(g *graph.Graph, custNodes []int32, facs []data.Facility) [][]int64 {
	dist := make([][]int64, len(custNodes))
	for i, s := range custNodes {
		full := g.Dijkstra(s)
		row := make([]int64, len(facs))
		for j, f := range facs {
			row[j] = full[f.Node]
		}
		dist[i] = row
	}
	return dist
}

func randomNetwork(rng *rand.Rand, n int) *graph.Graph {
	b := graph.NewBuilder(n, false)
	for i := 1; i < n; i++ {
		b.AddEdge(int32(rng.Intn(i)), int32(i), 1+rng.Int63n(20))
	}
	for e := 0; e < n; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(int32(u), int32(v), 1+rng.Int63n(20))
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// checkInvariants verifies structural invariants of the matcher state.
func checkInvariants(t *testing.T, mt *Matcher) {
	t.Helper()
	for j := 0; j < mt.L(); j++ {
		if mt.Load(j) > mt.facs[j].Capacity {
			t.Fatalf("facility %d over capacity: %d > %d", j, mt.Load(j), mt.facs[j].Capacity)
		}
	}
	for i := 0; i < mt.M(); i++ {
		facs, _ := mt.Matches(i)
		seen := map[int]bool{}
		for _, f := range facs {
			if seen[f] {
				t.Fatalf("customer %d matched twice to facility %d", i, f)
			}
			seen[f] = true
		}
	}
	// facMatch back-references must be consistent.
	for j := 0; j < mt.L(); j++ {
		for _, fe := range mt.facMatch[j] {
			e := mt.edges[fe.cust][fe.idx]
			if !e.matched || int(e.fac) != j {
				t.Fatalf("facMatch[%d] inconsistent back-reference", j)
			}
		}
	}
}

func TestFindPairSimplePath(t *testing.T) {
	// Path 0-1-2-3-4; customers at 0 and 4, facilities at 1 (cap 1) and 3 (cap 1).
	b := graph.NewBuilder(5, false)
	for i := 0; i < 4; i++ {
		b.AddEdge(int32(i), int32(i+1), 1)
	}
	g, _ := b.Build()
	facs := []data.Facility{{Node: 1, Capacity: 1}, {Node: 3, Capacity: 1}}
	mt := New(g, []int32{0, 4}, facs)
	if !mt.FindPair(0) || !mt.FindPair(1) {
		t.Fatal("FindPair failed on feasible instance")
	}
	if mt.TotalMatchedCost() != 2 {
		t.Fatalf("cost = %d, want 2", mt.TotalMatchedCost())
	}
	if mt.MatchCount(0) != 1 || mt.MatchCount(1) != 1 {
		t.Fatal("match counts wrong")
	}
	checkInvariants(t, mt)
}

func TestFindPairRewires(t *testing.T) {
	// Star: customers A(0), B(1); facilities F1(2) cap 1, F2(3) cap 1.
	// A-F1 = 1, A-F2 = 10, B-F1 = 2, B-F2 = 100.
	// Greedy A->F1 then B must rewire: optimal is A->F2? No: costs
	// A->F1 + B->F2 = 101; A->F2 + B->F1 = 12. After A->F1, matching B
	// must rewire A to F2.
	b := graph.NewBuilder(4, false)
	b.AddEdge(0, 2, 1).AddEdge(0, 3, 10).AddEdge(1, 2, 2).AddEdge(1, 3, 100)
	g, _ := b.Build()
	facs := []data.Facility{{Node: 2, Capacity: 1}, {Node: 3, Capacity: 1}}
	mt := New(g, []int32{0, 1}, facs)
	if !mt.FindPair(0) {
		t.Fatal("FindPair(0) failed")
	}
	if mt.TotalMatchedCost() != 1 {
		t.Fatalf("after first match cost = %d, want 1", mt.TotalMatchedCost())
	}
	if !mt.FindPair(1) {
		t.Fatal("FindPair(1) failed")
	}
	if mt.TotalMatchedCost() != 12 {
		t.Fatalf("cost = %d, want 12 (rewired)", mt.TotalMatchedCost())
	}
	facsOf0, _ := mt.Matches(0)
	if len(facsOf0) != 1 || facsOf0[0] != 1 {
		t.Fatalf("customer 0 should have been rewired to facility 1, got %v", facsOf0)
	}
	checkInvariants(t, mt)
}

func TestFindPairInfeasibleLeavesStateUnchanged(t *testing.T) {
	b := graph.NewBuilder(3, false)
	b.AddEdge(0, 1, 1).AddEdge(1, 2, 1)
	g, _ := b.Build()
	facs := []data.Facility{{Node: 2, Capacity: 1}}
	mt := New(g, []int32{0}, facs)
	if !mt.FindPair(0) {
		t.Fatal("first FindPair should succeed")
	}
	cost := mt.TotalMatchedCost()
	// Second unit for same customer: only facility already matched.
	if mt.FindPair(0) {
		t.Fatal("FindPair should fail when all facilities are used by customer")
	}
	if mt.TotalMatchedCost() != cost || mt.MatchCount(0) != 1 {
		t.Fatal("failed FindPair modified state")
	}
	checkInvariants(t, mt)
}

func TestFindPairDisconnected(t *testing.T) {
	b := graph.NewBuilder(4, false)
	b.AddEdge(0, 1, 1).AddEdge(2, 3, 1)
	g, _ := b.Build()
	facs := []data.Facility{{Node: 3, Capacity: 5}}
	mt := New(g, []int32{0}, facs)
	if mt.FindPair(0) {
		t.Fatal("FindPair succeeded across disconnected components")
	}
}

func TestFindPairZeroCapacity(t *testing.T) {
	b := graph.NewBuilder(2, false)
	b.AddEdge(0, 1, 1)
	g, _ := b.Build()
	facs := []data.Facility{{Node: 1, Capacity: 0}}
	mt := New(g, []int32{0}, facs)
	if mt.FindPair(0) {
		t.Fatal("FindPair used a zero-capacity facility")
	}
}

// runScenario drives a matcher through a randomized demand sequence and
// cross-checks the final cost against the reference min-cost flow.
func runScenario(t *testing.T, rng *rand.Rand, exhaustive bool) {
	t.Helper()
	m := 1 + rng.Intn(8)
	l := 1 + rng.Intn(8)
	n := m + l + 5 + rng.Intn(50)
	g := randomNetwork(rng, n)
	perm := rng.Perm(n)
	custNodes := make([]int32, m)
	for i := range custNodes {
		custNodes[i] = int32(perm[i])
	}
	facs := make([]data.Facility, l)
	for j := range facs {
		facs[j] = data.Facility{Node: int32(perm[m+j]), Capacity: 1 + rng.Intn(4)}
	}
	// Random demands, capped so the instance stays feasible w.h.p.
	totalCap := 0
	for _, f := range facs {
		totalCap += f.Capacity
	}
	demands := make([]int, m)
	budget := totalCap
	for i := range demands {
		max := min(l, budget)
		if max == 0 {
			break
		}
		demands[i] = rng.Intn(max + 1)
		budget -= demands[i]
	}

	mt := New(g, custNodes, facs)
	mt.SetExhaustive(exhaustive)
	// Interleave FindPair calls across customers in random order.
	type unit struct{ cust int }
	var units []unit
	for i, d := range demands {
		for u := 0; u < d; u++ {
			units = append(units, unit{i})
		}
	}
	rng.Shuffle(len(units), func(a, b int) { units[a], units[b] = units[b], units[a] })
	achieved := make([]int, m)
	for _, u := range units {
		if mt.FindPair(u.cust) {
			achieved[u.cust]++
		}
		checkInvariants(t, mt)
	}

	dist := denseDistances(g, custNodes, facs)
	want, ok := refMinCost(dist, capsOf(facs), achieved)
	if !ok {
		t.Fatalf("reference says achieved demands infeasible — matcher overachieved")
	}
	if got := mt.TotalMatchedCost(); got != want {
		t.Fatalf("matcher cost %d != reference optimal %d (demands %v, achieved %v, exhaustive=%v)",
			got, want, demands, achieved, exhaustive)
	}
	// Match counts must equal achieved demands.
	for i := range achieved {
		if mt.MatchCount(i) != achieved[i] {
			t.Fatalf("customer %d matched %d times, achieved %d", i, mt.MatchCount(i), achieved[i])
		}
	}
}

func capsOf(facs []data.Facility) []int {
	caps := make([]int, len(facs))
	for j, f := range facs {
		caps[j] = f.Capacity
	}
	return caps
}

func TestMatcherOptimalRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		runScenario(t, rng, false)
	}
}

func TestMatcherOptimalRandomizedExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 30; trial++ {
		runScenario(t, rng, true)
	}
}

func TestExhaustiveAndEarlyStopAgree(t *testing.T) {
	// Same instance, same FindPair sequence: costs must be identical.
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 25; trial++ {
		n := 15 + rng.Intn(40)
		g := randomNetwork(rng, n)
		m, l := 2+rng.Intn(5), 2+rng.Intn(5)
		perm := rng.Perm(n)
		custNodes := make([]int32, m)
		for i := range custNodes {
			custNodes[i] = int32(perm[i])
		}
		facs := make([]data.Facility, l)
		for j := range facs {
			facs[j] = data.Facility{Node: int32(perm[m+j]), Capacity: 1 + rng.Intn(3)}
		}
		a := New(g, custNodes, facs)
		b := New(g, custNodes, facs)
		b.SetExhaustive(true)
		for step := 0; step < m*2; step++ {
			c := rng.Intn(m)
			ra := a.FindPair(c)
			rb := b.FindPair(c)
			if ra != rb {
				t.Fatalf("trial %d: early-stop FindPair=%v, exhaustive=%v", trial, ra, rb)
			}
		}
		if a.TotalMatchedCost() != b.TotalMatchedCost() {
			t.Fatalf("trial %d: costs differ: %d vs %d", trial, a.TotalMatchedCost(), b.TotalMatchedCost())
		}
		// Early stop must scan no more nodes than exhaustive mode.
		if a.Stats().NodesScanned > b.Stats().NodesScanned {
			t.Fatalf("early stop scanned more nodes (%d) than exhaustive (%d)",
				a.Stats().NodesScanned, b.Stats().NodesScanned)
		}
	}
}

func TestLazyMaterializationPrunes(t *testing.T) {
	// On a long path with many facilities, matching one customer to its
	// nearest facility must not materialize edges to all of them.
	const n = 200
	b := graph.NewBuilder(n, false)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1), 1)
	}
	g, _ := b.Build()
	var facs []data.Facility
	for v := 1; v < n; v += 2 {
		facs = append(facs, data.Facility{Node: int32(v), Capacity: 1})
	}
	mt := New(g, []int32{0}, facs)
	if !mt.FindPair(0) {
		t.Fatal("FindPair failed")
	}
	if got := mt.Stats().EdgesMaterialized; got > 3 {
		t.Fatalf("materialized %d edges for a single nearest match, want <= 3", got)
	}
	if mt.TotalMatchedCost() != 1 {
		t.Fatalf("cost = %d, want 1", mt.TotalMatchedCost())
	}
}

func TestAccessors(t *testing.T) {
	b := graph.NewBuilder(3, false)
	b.AddEdge(0, 1, 5).AddEdge(1, 2, 5)
	g, _ := b.Build()
	facs := []data.Facility{{Node: 1, Capacity: 2}}
	mt := New(g, []int32{0, 2}, facs)
	if mt.M() != 2 || mt.L() != 1 {
		t.Fatalf("M=%d L=%d", mt.M(), mt.L())
	}
	mt.FindPair(0)
	mt.FindPair(1)
	if mt.Load(0) != 2 || mt.AssignedCount(0) != 2 {
		t.Fatalf("Load=%d AssignedCount=%d, want 2,2", mt.Load(0), mt.AssignedCount(0))
	}
	var got []int
	mt.Assigned(0, func(c int) { got = append(got, c) })
	if len(got) != 2 {
		t.Fatalf("Assigned visited %v", got)
	}
	facsOf, weights := mt.Matches(0)
	if len(facsOf) != 1 || facsOf[0] != 0 || weights[0] != 5 {
		t.Fatalf("Matches(0) = %v %v", facsOf, weights)
	}
	st := mt.Stats()
	if st.Augmentations != 2 || st.DijkstraRuns == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
