// Package spatial provides a uniform-grid index for planar
// nearest-neighbor queries — the geometric substrate behind the Hilbert
// baseline's centroid→facility snapping and available for ad-hoc
// geometry work. Points can be removed, supporting consume-style
// snapping (each facility claimed once).
package spatial

import "math"

// GridIndex answers nearest-point queries over a fixed point set by
// expanding-ring search on a uniform grid. Build with NewGridIndex.
type GridIndex struct {
	xs, ys  []float64
	ids     []int32
	alive   []bool
	n       int // live points
	minX    float64
	minY    float64
	cell    float64
	side    int
	buckets [][]int // indexes into xs/ys per grid cell
}

// NewGridIndex indexes the given points (parallel slices; ids are
// caller-defined labels returned by queries). The grid resolution aims
// at O(1) points per cell.
func NewGridIndex(xs, ys []float64, ids []int32) *GridIndex {
	n := len(xs)
	g := &GridIndex{
		xs: xs, ys: ys, ids: ids,
		alive: make([]bool, n),
		n:     n,
	}
	for i := range g.alive {
		g.alive[i] = true
	}
	if n == 0 {
		g.cell = 1
		g.side = 1
		g.buckets = make([][]int, 1)
		return g
	}
	minX, maxX := xs[0], xs[0]
	minY, maxY := ys[0], ys[0]
	for i := 1; i < n; i++ {
		minX = math.Min(minX, xs[i])
		maxX = math.Max(maxX, xs[i])
		minY = math.Min(minY, ys[i])
		maxY = math.Max(maxY, ys[i])
	}
	span := math.Max(maxX-minX, maxY-minY)
	if span <= 0 {
		span = 1
	}
	side := int(math.Sqrt(float64(n)))
	if side < 1 {
		side = 1
	}
	g.minX, g.minY = minX, minY
	g.side = side
	g.cell = span / float64(side)
	g.buckets = make([][]int, side*side)
	for i := 0; i < n; i++ {
		c := g.cellOf(xs[i], ys[i])
		g.buckets[c] = append(g.buckets[c], i)
	}
	return g
}

func (g *GridIndex) cellOf(x, y float64) int {
	cx := int((x - g.minX) / g.cell)
	cy := int((y - g.minY) / g.cell)
	cx = clamp(cx, 0, g.side-1)
	cy = clamp(cy, 0, g.side-1)
	return cy*g.side + cx
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Len reports the number of live points.
func (g *GridIndex) Len() int { return g.n }

// Nearest returns the id and internal slot of the live point nearest to
// (x, y); ok is false when the index is empty.
func (g *GridIndex) Nearest(x, y float64) (id int32, slot int, ok bool) {
	if g.n == 0 {
		return 0, 0, false
	}
	cx := clamp(int((x-g.minX)/g.cell), 0, g.side-1)
	cy := clamp(int((y-g.minY)/g.cell), 0, g.side-1)
	bestD := math.Inf(1)
	best := -1
	for ring := 0; ring < 2*g.side; ring++ {
		// Once a candidate is found, one extra ring guarantees
		// correctness (a point in an adjacent ring can be closer than one
		// in the current ring).
		if best >= 0 && float64(ring-1)*g.cell > math.Sqrt(bestD) {
			break
		}
		found := false
		for dy := -ring; dy <= ring; dy++ {
			for dx := -ring; dx <= ring; dx++ {
				if abs(dx) != ring && abs(dy) != ring {
					continue // interior already visited
				}
				nx, ny := cx+dx, cy+dy
				if nx < 0 || ny < 0 || nx >= g.side || ny >= g.side {
					continue
				}
				found = true
				for _, i := range g.buckets[ny*g.side+nx] {
					if !g.alive[i] {
						continue
					}
					ddx, ddy := g.xs[i]-x, g.ys[i]-y
					d := ddx*ddx + ddy*ddy
					if d < bestD {
						bestD = d
						best = i
					}
				}
			}
		}
		if !found && best >= 0 {
			break
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return g.ids[best], best, true
}

// Remove deletes the point at the given slot (as returned by Nearest);
// repeated removals are no-ops.
func (g *GridIndex) Remove(slot int) {
	if slot >= 0 && slot < len(g.alive) && g.alive[slot] {
		g.alive[slot] = false
		g.n--
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
