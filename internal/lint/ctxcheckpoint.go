package lint

import (
	"go/ast"
	"strings"
)

// CtxCheckpoint enforces the PR-2 cancellation contract: inside the
// solver packages, every while-style loop (`for {` / `for cond {` — the
// loops whose trip count depends on data, not on a bounded index) in a
// function that takes a context.Context must either poll that context
// or delegate to a *Ctx helper that does. Bounded three-clause and
// range loops are exempt: the contract is "no unbounded work between
// checkpoints", not "a poll on every iteration of everything".
type CtxCheckpoint struct{}

// Name implements Rule.
func (CtxCheckpoint) Name() string { return "ctx-checkpoint" }

// Doc implements Rule.
func (CtxCheckpoint) Doc() string {
	return "while-style loops in context-taking solver functions must poll the context or call a Ctx helper"
}

// ctxCheckpointDirs is the rule's scope: the packages PR 2 threaded
// cancellation through. Pure data/render/bench layers are out of scope.
var ctxCheckpointDirs = map[string]bool{
	"internal/graph":       true,
	"internal/bipartite":   true,
	"internal/core":        true,
	"internal/solver":      true,
	"internal/localsearch": true,
	"internal/baseline":    true,
	"internal/dynamic":     true,
}

// Check implements Rule.
func (CtxCheckpoint) Check(pkg *Package, report ReportFunc) {
	if !ctxCheckpointDirs[pkg.Dir] {
		return
	}
	for _, f := range pkg.Files {
		if f.Test {
			continue
		}
		for _, decl := range f.AST.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkCtxFunc(f, fd.Type, fd.Body, nil, report)
			}
		}
	}
}

// checkCtxFunc walks one function body with the context parameter names
// visible in its scope (the enclosing functions' plus its own — a
// closure may checkpoint through a captured context).
func checkCtxFunc(f *File, ft *ast.FuncType, body *ast.BlockStmt, outer []string, report ReportFunc) {
	names := append(append([]string(nil), outer...), ctxParamNames(ft)...)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkCtxFunc(f, n.Type, n.Body, names, report)
			return false
		case *ast.ForStmt:
			if len(names) > 0 && n.Init == nil && n.Post == nil && !mentionsCtx(n.Body, names) {
				report(f, n.Pos(),
					"while-style loop in a context-taking function never polls the context; add a ctx.Err() checkpoint or delegate to a Ctx helper (see DESIGN.md §9)")
			}
		}
		return true
	})
}

// ctxParamNames returns the names of ft's context.Context parameters.
func ctxParamNames(ft *ast.FuncType) []string {
	if ft == nil || ft.Params == nil {
		return nil
	}
	var names []string
	for _, field := range ft.Params.List {
		sel, ok := field.Type.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Context" {
			continue
		}
		if x, ok := sel.X.(*ast.Ident); !ok || x.Name != "context" {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				names = append(names, name.Name)
			}
		}
	}
	return names
}

// mentionsCtx reports whether body references one of the in-scope
// context parameters or calls a *Ctx-suffixed helper (which by the
// module's naming convention takes and polls a context itself).
func mentionsCtx(body *ast.BlockStmt, names []string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if strings.HasSuffix(id.Name, "Ctx") && id.Name != "Ctx" {
			found = true
			return false
		}
		for _, name := range names {
			if id.Name == name {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
