package realsim

import (
	"math"
	"testing"

	"mcfs/internal/core"
	"mcfs/internal/gen"
	"mcfs/internal/graph"
)

func cityGraph(t *testing.T) *graph.Graph {
	t.Helper()
	p, err := gen.CityPreset("copenhagen", 0.005, 17)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.City(p)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCoworkingScenario(t *testing.T) {
	g := cityGraph(t)
	sc, err := Coworking(g, CoworkingConfig{Venues: 40, Customers: 120, MeanHours: 9, Omega: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Venues) != 40 || len(sc.Customers) != 120 {
		t.Fatalf("sizes: %d venues %d customers", len(sc.Venues), len(sc.Customers))
	}
	nodes := map[int32]bool{}
	hoursSum := 0
	for _, v := range sc.Venues {
		if nodes[v.Node] {
			t.Fatal("duplicate venue node")
		}
		nodes[v.Node] = true
		if v.Hours < 1 || v.Hours > 24 {
			t.Fatalf("hours %d out of range", v.Hours)
		}
		if v.Occupancy <= 0 {
			t.Fatalf("occupancy %v", v.Occupancy)
		}
		hoursSum += v.Hours
	}
	if avg := float64(hoursSum) / 40; avg < 6 || avg > 12 {
		t.Fatalf("mean hours %.1f far from configured 9", avg)
	}
	for _, c := range sc.Customers {
		if c < 0 || int(c) >= g.N() {
			t.Fatalf("customer node %d out of range", c)
		}
	}
	inst := sc.Instance(g, 20)
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst.L() != 40 || inst.M() != 120 || inst.K != 20 {
		t.Fatal("instance assembly wrong")
	}
}

func TestCoworkingDeterministic(t *testing.T) {
	g := cityGraph(t)
	cfg := CoworkingConfig{Venues: 20, Customers: 50, Seed: 5}
	a, err := Coworking(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Coworking(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Customers {
		if a.Customers[i] != b.Customers[i] {
			t.Fatal("same seed, different customers")
		}
	}
}

func TestCoworkingCustomersFollowOccupancy(t *testing.T) {
	// Customers should concentrate near high-occupancy venues: the mean
	// network distance from a customer to its nearest venue must be far
	// below the graph-wide mean distance to the nearest venue.
	g := cityGraph(t)
	sc, err := Coworking(g, CoworkingConfig{Venues: 15, Customers: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]int32, len(sc.Venues))
	for i, v := range sc.Venues {
		nodes[i] = v.Node
	}
	dist, _ := g.MultiSourceDijkstra(nodes)
	var custSum, allSum float64
	reachable := 0
	for _, c := range sc.Customers {
		custSum += float64(dist[c])
	}
	for v := 0; v < g.N(); v++ {
		if dist[v] < graph.Inf {
			allSum += float64(dist[v])
			reachable++
		}
	}
	custMean := custSum / float64(len(sc.Customers))
	allMean := allSum / float64(reachable)
	if custMean > allMean*1.05 {
		t.Fatalf("customers not concentrated: mean %.0f vs graph mean %.0f", custMean, allMean)
	}
}

func TestCoworkingValidation(t *testing.T) {
	g := cityGraph(t)
	if _, err := Coworking(g, CoworkingConfig{Venues: 1, Customers: 5}); err == nil {
		t.Fatal("single venue accepted")
	}
	if _, err := Coworking(g, CoworkingConfig{Venues: g.N() + 1, Customers: 5}); err == nil {
		t.Fatal("too many venues accepted")
	}
	if _, err := Coworking(g, CoworkingConfig{Venues: 5, Customers: 5, Omega: 1.5}); err == nil {
		t.Fatal("omega > 1 accepted")
	}
}

func TestCoworkingSolvable(t *testing.T) {
	g := cityGraph(t)
	sc, err := Coworking(g, CoworkingConfig{Venues: 30, Customers: 60, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	inst := sc.Instance(g, 15)
	sol, err := core.Solve(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.CheckSolution(sol); err != nil {
		t.Fatal(err)
	}
}

func TestDistrictCustomers(t *testing.T) {
	g := cityGraph(t)
	cust, err := DistrictCustomers(g, DistrictConfig{Districts: 3, Customers: 100, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(cust) != 100 {
		t.Fatalf("placed %d customers", len(cust))
	}
	for _, c := range cust {
		if c < 0 || int(c) >= g.N() {
			t.Fatal("customer out of range")
		}
	}
	// Distribution must be district-skewed: not all districts equally hit.
	counts := map[int]int{}
	minX, maxX, minY, maxY := coordExtent(g)
	for _, c := range cust {
		x, y := g.Coord(c)
		counts[gridIndex(y, minY, maxY, 3)*3+gridIndex(x, minX, maxX, 3)]++
	}
	max, min := 0, len(cust)
	for _, v := range counts {
		if v > max {
			max = v
		}
		if v < min {
			min = v
		}
	}
	if max == min && len(counts) > 1 {
		t.Fatal("district weighting had no effect")
	}
}

func TestBikesScenario(t *testing.T) {
	g := cityGraph(t)
	sc, err := Bikes(g, BikesConfig{Stations: 80, Bikes: 150, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Stations) != 80 || len(sc.Bikes) != 150 {
		t.Fatalf("sizes: %d stations %d bikes", len(sc.Stations), len(sc.Bikes))
	}
	nodes := map[int32]bool{}
	for _, s := range sc.Stations {
		if nodes[s.Node] {
			t.Fatal("duplicate station node")
		}
		nodes[s.Node] = true
		if s.Capacity < 5 || s.Capacity > 25 {
			t.Fatalf("capacity %d outside default range", s.Capacity)
		}
	}
	// Demand variance: nonnegative, not identically distributed.
	var maxV, sum float64
	for _, v := range sc.DemandVariance {
		if v < 0 {
			t.Fatal("negative variance")
		}
		if v > maxV {
			maxV = v
		}
		sum += v
	}
	mean := sum / float64(len(sc.DemandVariance))
	if maxV < 2*mean {
		t.Fatalf("variance field too flat: max %.3g mean %.3g", maxV, mean)
	}
	inst := sc.Instance(g, 40)
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	sol, err := core.Solve(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.CheckSolution(sol); err != nil {
		t.Fatal(err)
	}
}

func TestBikesDeterministic(t *testing.T) {
	g := cityGraph(t)
	cfg := BikesConfig{Stations: 30, Bikes: 40, Seed: 21}
	a, err := Bikes(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bikes(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Bikes {
		if a.Bikes[i] != b.Bikes[i] {
			t.Fatal("same seed, different bikes")
		}
	}
	for i := range a.DemandVariance {
		if math.Abs(a.DemandVariance[i]-b.DemandVariance[i]) > 1e-12 {
			t.Fatal("same seed, different variance field")
		}
	}
}

func TestBikesValidation(t *testing.T) {
	g := cityGraph(t)
	if _, err := Bikes(g, BikesConfig{Stations: 0, Bikes: 5}); err == nil {
		t.Fatal("zero stations accepted")
	}
	if _, err := Bikes(g, BikesConfig{Stations: g.N() + 5, Bikes: 5}); err == nil {
		t.Fatal("too many stations accepted")
	}
}
