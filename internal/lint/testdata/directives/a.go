// Package fixture exercises //lint:ignore directive hygiene: stale,
// malformed, and unknown directives are findings of their own. The
// expectations live in lint_test.go rather than in want comments,
// because the directive itself occupies the line.
package fixture

//lint:ignore determinism stale suppression with nothing beneath it
var a = 1

//lint:ignore nosuchrule some reason
var b = 2

//lint:ignore determinism
var c = 3

//lint:frobnicate whatever
var d = 4
