package render

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestGeoJSONStructure(t *testing.T) {
	inst, sol := coordInstance(t)
	var buf bytes.Buffer
	if err := GeoJSON(&buf, inst, sol); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Type     string `json:"type"`
		Features []struct {
			Type     string `json:"type"`
			Geometry struct {
				Type string `json:"type"`
			} `json:"geometry"`
			Properties map[string]any `json:"properties"`
		} `json:"features"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Type != "FeatureCollection" {
		t.Fatalf("type = %q", doc.Type)
	}
	counts := map[string]int{}
	for _, f := range doc.Features {
		kind, _ := f.Properties["kind"].(string)
		counts[kind]++
		if kind == "assignment" && f.Geometry.Type != "LineString" {
			t.Fatalf("assignment geometry = %q", f.Geometry.Type)
		}
		if kind != "assignment" && f.Geometry.Type != "Point" {
			t.Fatalf("%s geometry = %q", kind, f.Geometry.Type)
		}
	}
	// 2 facilities + 2 customers + 2 assignment lines.
	if counts["facility"] != 2 || counts["customer"] != 2 || counts["assignment"] != 2 {
		t.Fatalf("feature counts = %v", counts)
	}
	// Facility properties carry selection and load.
	for _, f := range doc.Features {
		if f.Properties["kind"] == "facility" {
			if _, ok := f.Properties["selected"]; !ok {
				t.Fatal("facility missing 'selected'")
			}
			if _, ok := f.Properties["load"]; !ok {
				t.Fatal("facility missing 'load'")
			}
		}
	}
}

func TestGeoJSONWithoutSolution(t *testing.T) {
	inst, _ := coordInstance(t)
	var buf bytes.Buffer
	if err := GeoJSON(&buf, inst, nil); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("assignment")) {
		t.Fatal("assignment features emitted without a solution")
	}
}

func TestGeoJSONNoCoords(t *testing.T) {
	inst, _ := coordInstance(t)
	// Rebuild the instance graph without coordinates.
	b := noCoordGraph(t)
	inst.G = b
	if err := GeoJSON(&bytes.Buffer{}, inst, nil); err == nil {
		t.Fatal("coordinate-less network accepted")
	}
}
