package graph

import (
	"context"

	"mcfs/internal/pq"
)

// NNSearcher enumerates candidate nodes in nondecreasing shortest-path
// distance from a fixed source, resuming a persistent Dijkstra instance
// between calls. This is the "one Dijkstra execution per customer,
// yielding distances to candidate facilities in non-decreasing order"
// of the paper (§IV-D); the heap persists across FindPair calls (§VI).
//
// The searcher always pre-fetches one candidate, so Peek returns the
// exact weight of the next candidate bipartite edge — the nnDist of
// Algorithm 2, line 10 — without consuming it.
type NNSearcher struct {
	g      *Graph
	src    int32
	isCand []bool // shared, indexed by node id
	dist   map[int32]int64
	heap   pq.Monotone // incremental frontier (see Graph.newIncrementalQueue)

	peekNode int32
	peekDist int64
	hasPeek  bool

	// ctx, when non-nil, is polled every checkEvery heap pops of the
	// resumed Dijkstra; on cancellation the searcher stops, records
	// ctx.Err() in err, and reports exhaustion. A cancelled searcher is
	// poisoned: the interrupted expansion cannot be resumed correctly.
	ctx  context.Context
	err  error
	pops int

	settledCount int // diagnostic: nodes settled so far
}

// NewNNSearcher returns a searcher from src over candidates marked true
// in isCand. The isCand slice is shared (not copied); it must not change
// while the searcher is in use.
func NewNNSearcher(g *Graph, src int32, isCand []bool) *NNSearcher {
	return NewNNSearcherCtx(nil, g, src, isCand)
}

// NewNNSearcherCtx is NewNNSearcher with a cooperative-cancellation
// context installed before the initial candidate prefetch, so even the
// first expansion is interruptible. A nil ctx disables polling.
func NewNNSearcherCtx(ctx context.Context, g *Graph, src int32, isCand []bool) *NNSearcher {
	s := &NNSearcher{
		g:      g,
		src:    src,
		isCand: isCand,
		ctx:    ctx,
		dist:   map[int32]int64{src: 0},
		heap:   g.newIncrementalQueue(),
	}
	s.heap.Push(src, 0)
	s.advance()
	return s
}

// Source returns the searcher's source node.
func (s *NNSearcher) Source() int32 { return s.src }

// SetContext installs a cooperative-cancellation context on the
// searcher: subsequent advances poll it every checkEvery heap pops. A
// nil ctx disables the polling (the initial state). Once a searcher has
// observed a cancellation it stays exhausted; see Err.
func (s *NNSearcher) SetContext(ctx context.Context) { s.ctx = ctx }

// Err returns the context error that interrupted the searcher, or nil.
// When non-nil, Peek/Next report exhaustion without the search space
// actually being exhausted, and the searcher must not be reused.
func (s *NNSearcher) Err() error { return s.err }

// Peek returns the next candidate node and its distance without
// consuming it; ok is false once the search space is exhausted.
func (s *NNSearcher) Peek() (node int32, dist int64, ok bool) {
	return s.peekNode, s.peekDist, s.hasPeek
}

// PeekDist returns the distance to the next candidate, or Inf when
// exhausted. It is the nnDist term of the Theorem-1 pruning threshold.
func (s *NNSearcher) PeekDist() int64 {
	if !s.hasPeek {
		return Inf
	}
	return s.peekDist
}

// Next consumes and returns the next candidate in nondecreasing distance
// order; ok is false once exhausted.
func (s *NNSearcher) Next() (node int32, dist int64, ok bool) {
	if !s.hasPeek {
		return 0, Inf, false
	}
	node, dist = s.peekNode, s.peekDist
	s.advance()
	return node, dist, true
}

// Settled returns the number of nodes settled by the underlying Dijkstra
// so far (a measure of explored network region).
func (s *NNSearcher) Settled() int { return s.settledCount }

// advance resumes Dijkstra until the next unreturned candidate is
// settled, storing it as the new peek.
func (s *NNSearcher) advance() {
	s.hasPeek = false
	if s.err != nil {
		return
	}
	for s.heap.Len() > 0 {
		if s.pops++; s.pops&(checkEvery-1) == 0 && s.ctx != nil {
			if err := s.ctx.Err(); err != nil {
				s.err = err
				return
			}
		}
		v, d := s.heap.PopMin()
		if d > s.dist[v] {
			continue // stale entry
		}
		s.settledCount++
		s.g.Neighbors(v, func(u int32, w int64) bool {
			nd := d + w
			if old, ok := s.dist[u]; !ok || nd < old {
				s.dist[u] = nd
				s.heap.DecreaseKey(u, nd)
			}
			return true
		})
		if s.isCand[v] {
			s.peekNode, s.peekDist, s.hasPeek = v, d, true
			return
		}
	}
}
