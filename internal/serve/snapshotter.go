// Periodic snapshot-to-disk: the durability half of the self-healing
// serving engine (DESIGN.md §12, "Durability & self-healing").
//
// A background goroutine enqueues an opSnapshot through the single-
// writer batch loop on every tick of Config.SnapshotEvery, so the
// capture is always a settled, coalescing-consistent state — the same
// guarantee GET /snapshot has. The capture is persisted with the
// classic atomic discipline: write to a temp file in the target
// directory, fsync, close, rename over the final generation name. A
// crash at any point leaves either the previous generation or the new
// one, never a torn file under a generation name (temp names do not
// match the generation pattern and are skipped by recovery). The
// retained-generations knob bounds disk use; recovery picks the newest
// generation that parses and skips corrupt ones, so one bad write never
// costs more than one snapshot interval of work.
package serve

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"mcfs"
	"mcfs/internal/obs"
)

// snapPrefix/snapSuffix frame the generation number in a snapshot file
// name: mcfsd-00000042.snap.json.
const (
	snapPrefix = "mcfsd-"
	snapSuffix = ".snap.json"
)

// snapshotName renders the file name for a generation.
func snapshotName(gen int64) string {
	return fmt.Sprintf("%s%08d%s", snapPrefix, gen, snapSuffix)
}

// parseGeneration extracts the generation from a snapshot file name;
// ok is false for anything else (temp files, foreign files).
func parseGeneration(name string) (int64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
	if digits == "" {
		return 0, false
	}
	gen, err := strconv.ParseInt(digits, 10, 64)
	if err != nil || gen < 0 {
		return 0, false
	}
	return gen, true
}

// listGenerations returns the snapshot generations present in dir in
// ascending order. A missing directory is an empty listing, not an
// error (the first snapshot creates it).
func listGenerations(fsys FS, dir string) ([]int64, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, nil
	}
	var gens []int64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if gen, ok := parseGeneration(e.Name()); ok {
			gens = append(gens, gen)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// LoadNewestSnapshot scans dir for snapshot generations, newest first,
// and returns the first one that parses, its path, and the paths of any
// newer generations skipped as corrupt. A directory with no snapshot
// files (or that does not exist) returns all zero values — the caller
// starts fresh. A directory whose every generation is corrupt is an
// error: the operator asked to restore and nothing is restorable.
func LoadNewestSnapshot(dir string) (*mcfs.ReallocatorSnapshot, string, []string, error) {
	return loadNewestSnapshot(osFS{}, dir)
}

func loadNewestSnapshot(fsys FS, dir string) (*mcfs.ReallocatorSnapshot, string, []string, error) {
	gens, err := listGenerations(fsys, dir)
	if err != nil || len(gens) == 0 {
		return nil, "", nil, err
	}
	var skipped []string
	for i := len(gens) - 1; i >= 0; i-- {
		path := filepath.Join(dir, snapshotName(gens[i]))
		raw, err := fsys.ReadFile(path)
		if err != nil {
			skipped = append(skipped, path)
			continue
		}
		snap, err := mcfs.ReadReallocatorSnapshot(bytes.NewReader(raw))
		if err != nil {
			skipped = append(skipped, path)
			continue
		}
		return snap, path, skipped, nil
	}
	return nil, "", skipped, fmt.Errorf("serve: no loadable snapshot in %s (%d corrupt generation(s))", dir, len(skipped))
}

// snapshotLoop is the periodic policy goroutine: one persisted
// generation per tick, stopping with the server. Failures count and
// log, but never stop the loop — the next tick retries, and the newest
// prior generation stays loadable (persistSnapshot never touches it).
func (s *Server) snapshotLoop() {
	defer s.wg.Done()
	tk := s.clock.NewTicker(s.cfg.SnapshotEvery)
	defer tk.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-tk.C():
			if err := s.snapshotOnce(); err != nil {
				s.rec.Add(obs.ServeSnapshotFailures, 1)
				if s.cfg.Logger != nil {
					s.cfg.Logger.Error("snapshot failed", "error", err)
				}
			}
		}
	}
}

// snapshotOnce captures the settled state through the batch loop and
// persists it as the next generation.
func (s *Server) snapshotOnce() error {
	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.DefaultTimeout)
	defer cancel()
	res, err := s.do(ctx, op{kind: opSnapshot})
	if err != nil {
		return fmt.Errorf("capture: %w", err)
	}
	gen := s.snapGen.Add(1)
	if err := s.persistSnapshot(res.snapshot, gen); err != nil {
		return err
	}
	s.rec.Add(obs.ServeSnapshots, 1)
	s.lastSnapshotUnix.Store(s.clock.Now().Unix())
	s.pruneSnapshots(gen)
	return nil
}

// persistSnapshot writes one generation with the atomic temp+rename
// discipline. On any failure the temp file is removed (best effort) and
// no generation name is created or modified — prior generations stay
// exactly as they were.
func (s *Server) persistSnapshot(snap *mcfs.ReallocatorSnapshot, gen int64) error {
	dir := s.cfg.SnapshotDir
	f, err := s.fs.CreateTemp(dir, ".snap-*.tmp")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	err = snap.Write(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = s.fs.Remove(f.Name())
		return fmt.Errorf("persist: %w", err)
	}
	if err := s.fs.Rename(f.Name(), filepath.Join(dir, snapshotName(gen))); err != nil {
		_ = s.fs.Remove(f.Name())
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}

// pruneSnapshots removes generations older than the newest
// SnapshotKeep. Removal failures are ignored: retention is a disk-use
// bound, not a correctness property, and the next prune retries.
func (s *Server) pruneSnapshots(newest int64) {
	gens, err := listGenerations(s.fs, s.cfg.SnapshotDir)
	if err != nil {
		return
	}
	keepFrom := newest - int64(s.cfg.SnapshotKeep) + 1
	for _, gen := range gens {
		if gen < keepFrom {
			_ = s.fs.Remove(filepath.Join(s.cfg.SnapshotDir, snapshotName(gen)))
		}
	}
}
