// Perf suite: the hot-path benchmarks behind scripts/bench.sh and the
// committed BENCH_*.json trajectory (DESIGN.md §11).
//
// Unlike the experiment runners (which reproduce the paper's figures),
// the perf suite exists to make "faster" a checkable claim over time: it
// measures the SSPA inner loop — resumable Dijkstra, the reduced-cost
// FindPair search — plus the end-to-end WMA solve on the city presets,
// and emits a schema-versioned JSON file that ComparePerf can diff
// against any earlier run. The bench package is the one layer allowed to
// read the wall clock (the mcfslint determinism rule), which is why the
// suite lives here and cmd/mcfsperf stays a thin shell.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"mcfs"
	"mcfs/internal/bipartite"
	"mcfs/internal/graph"
	"mcfs/internal/obs"
)

// PerfSchema identifies the BENCH_*.json layout. Bump it only for
// incompatible changes; ComparePerf refuses to diff across schemas.
// Version 2 added the optional per-benchmark work counters; v1 files
// are still readable (the addition is forward-compatible) so the
// committed baseline trajectory stays diffable.
const PerfSchema = "mcfs-bench/2"

// perfSchemaV1 is the pre-counter layout, accepted on read.
const perfSchemaV1 = "mcfs-bench/1"

// PerfConfig tunes a perf-suite run.
type PerfConfig struct {
	// Cities selects the presets to measure; nil means aalborg and
	// copenhagen (quick mode: aalborg only).
	Cities []string
	// Quick shrinks the instances for a CI smoke run. Quick numbers are
	// comparable only to other quick numbers; the file records the mode.
	Quick bool
	// Seed drives instance generation (same default as Config.Seed).
	Seed int64
	// Variant labels the measured configuration (e.g. "heap" when the
	// queue override forces the binary heap); recorded in the file.
	Variant string
}

// PerfBenchmark is one measured benchmark in a BENCH_*.json file.
// Counters (schema v2+) come from a separate single probe run with an
// obs recorder attached — never from the timed iterations, which run
// recorder-free so ns/op keeps measuring the undisturbed hot path.
type PerfBenchmark struct {
	Name        string           `json:"name"`
	Iterations  int              `json:"n"`
	NsPerOp     float64          `json:"ns_per_op"`
	BytesPerOp  int64            `json:"bytes_per_op"`
	AllocsPerOp int64            `json:"allocs_per_op"`
	Counters    map[string]int64 `json:"counters,omitempty"`
}

// PerfFile is the schema-versioned payload of a BENCH_*.json file.
type PerfFile struct {
	Schema     string          `json:"schema"`
	Created    string          `json:"created"` // RFC3339 UTC
	GoVersion  string          `json:"go"`
	GOOS       string          `json:"goos"`
	GOARCH     string          `json:"goarch"`
	NumCPU     int             `json:"num_cpu"`
	Variant    string          `json:"variant,omitempty"`
	Quick      bool            `json:"quick"`
	Seed       int64           `json:"seed"`
	Cities     []string        `json:"cities"`
	Benchmarks []PerfBenchmark `json:"benchmarks"`
}

// PerfStamp returns a UTC timestamp suitable for BENCH_<stamp>.json
// filenames.
func PerfStamp() string { return time.Now().UTC().Format("20060102T150405Z") }

// perfCase is one registered benchmark body. probe, when set, runs the
// operation once against a recorder-carrying context to collect the
// work counters for the row; it is nil for operations with no
// context-taking variant.
type perfCase struct {
	name  string
	fn    func(b *testing.B)
	probe func(ctx context.Context) error
}

// RunPerf executes the suite and returns the populated file. Progress
// lines go through logf (pass nil to silence them).
func RunPerf(cfg PerfConfig, logf func(format string, args ...any)) (*PerfFile, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	cities := cfg.Cities
	if len(cities) == 0 {
		if cfg.Quick {
			cities = []string{"aalborg"}
		} else {
			cities = []string{"aalborg", "copenhagen"}
		}
	}
	out := &PerfFile{
		Schema:    PerfSchema,
		Created:   time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Variant:   cfg.Variant,
		Quick:     cfg.Quick,
		Seed:      cfg.Seed,
		Cities:    cities,
	}
	for _, city := range cities {
		cases, err := cityPerfCases(city, cfg)
		if err != nil {
			return nil, err
		}
		for _, c := range cases {
			logf("bench: %s", c.name)
			r := testing.Benchmark(c.fn)
			pb := PerfBenchmark{
				Name:        c.name,
				Iterations:  r.N,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			}
			if c.probe != nil {
				rec := obs.New()
				if err := c.probe(obs.WithRecorder(context.Background(), rec)); err != nil {
					return nil, fmt.Errorf("bench: counter probe for %s: %w", c.name, err)
				}
				pb.Counters = nonzeroCounters(rec)
			}
			out.Benchmarks = append(out.Benchmarks, pb)
			logf("bench: %s\t%d\t%.0f ns/op\t%d B/op\t%d allocs/op",
				c.name, r.N, out.Benchmarks[len(out.Benchmarks)-1].NsPerOp,
				r.AllocedBytesPerOp(), r.AllocsPerOp())
		}
	}
	return out, nil
}

// cityPerfCases builds the per-city benchmark bodies over one shared
// instance (read-only across cases, like the parallel harness audits).
func cityPerfCases(city string, cfg PerfConfig) ([]perfCase, error) {
	bcfg := Config{Scale: 1, Seed: cfg.Seed}
	m, k, c := 512, 51, 20
	if cfg.Quick {
		bcfg.Scale = 0.2
		m, k = 128, 13
	}
	inst, err := cityInstance(city, bcfg.normalized(), m, k, c)
	if err != nil {
		return nil, fmt.Errorf("bench: perf instance for %s: %w", city, err)
	}
	g := inst.G
	name := func(op string) string { return op + "/" + city }

	// Multi-source set: up to 32 facility nodes spread over the candidate
	// list; NN/Within sources rotate over the customers.
	var sources []int32
	if l := len(inst.Facilities); l > 0 {
		stride := l / 32
		if stride < 1 {
			stride = 1
		}
		for j := 0; j < l && len(sources) < 32; j += stride {
			sources = append(sources, inst.Facilities[j].Node)
		}
	}
	radius := int64(g.AvgEdgeWeight() * 64)
	if radius < 1 {
		radius = 1
	}
	mask, _ := inst.CandidateMask()

	cases := []perfCase{
		{name("Dijkstra"), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g.Dijkstra(inst.Customers[i%len(inst.Customers)])
			}
		}, func(ctx context.Context) error {
			_, err := g.DijkstraCtx(ctx, inst.Customers[0])
			return err
		}},
		{name("MultiSourceDijkstra"), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g.MultiSourceDijkstra(sources)
			}
		}, func(ctx context.Context) error {
			_, _, err := g.MultiSourceDijkstraCtx(ctx, sources)
			return err
		}},
		{name("DijkstraWithin"), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g.DijkstraWithin(inst.Customers[i%len(inst.Customers)], radius)
			}
		}, func(ctx context.Context) error {
			_, err := g.DijkstraWithinCtx(ctx, inst.Customers[0], radius)
			return err
		}},
		// NNSearcher has no context-taking variant: its incremental pulls
		// are driven by the caller, so there is no probe (and no counters).
		{name("NNSearcher"), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := graph.NewNNSearcher(g, inst.Customers[i%len(inst.Customers)], mask)
				for drained := 0; drained < 32; drained++ {
					if _, _, ok := s.Next(); !ok {
						break
					}
				}
			}
		}, nil},
		{name("FindPair"), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mt := bipartite.New(g, inst.Customers, inst.Facilities)
				for cust := range inst.Customers {
					if !mt.FindPair(cust) {
						b.Fatalf("FindPair(%d) found no augmenting path", cust)
					}
				}
			}
		}, func(ctx context.Context) error {
			mt := bipartite.New(g, inst.Customers, inst.Facilities)
			for cust := range inst.Customers {
				ok, err := mt.FindPairCtx(ctx, cust)
				if err != nil {
					return err
				}
				if !ok {
					return fmt.Errorf("FindPair(%d) found no augmenting path", cust)
				}
			}
			return nil
		}},
		{name("WMA"), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := mcfs.AlgorithmWMA.Solve(context.Background(), inst, mcfs.WithSeed(cfg.Seed)); err != nil {
					b.Fatalf("WMA solve: %v", err)
				}
			}
		}, func(ctx context.Context) error {
			_, _, err := mcfs.AlgorithmWMA.Solve(ctx, inst, mcfs.WithSeed(cfg.Seed))
			return err
		}},
	}
	return cases, nil
}

// WritePerfFile marshals the file (stable indented JSON) to path.
func WritePerfFile(f *PerfFile, path string) error {
	buf, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// ReadPerfFile loads and schema-checks a BENCH_*.json file.
func ReadPerfFile(path string) (*PerfFile, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f PerfFile
	if err := json.Unmarshal(buf, &f); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if f.Schema != PerfSchema && f.Schema != perfSchemaV1 {
		return nil, fmt.Errorf("bench: %s: schema %q, want %q (or the older %q)",
			path, f.Schema, PerfSchema, perfSchemaV1)
	}
	return &f, nil
}

// PerfDelta is one benchmark's old-vs-new comparison.
type PerfDelta struct {
	Name       string
	OldNs      float64
	NewNs      float64
	Ratio      float64 // new/old wall time; > 1 is slower
	OldAllocs  int64
	NewAllocs  int64
	Regression bool
}

// ComparePerf diffs two perf files over their shared benchmark names. A
// benchmark regresses when its ns/op grew by more than threshold (e.g.
// 1.15 = +15%); missing-on-either-side names are skipped (the suite may
// gain benchmarks between PRs). Comparing quick and non-quick files is
// an error — the instance sizes differ.
func ComparePerf(old, new *PerfFile, threshold float64) ([]PerfDelta, error) {
	if threshold <= 1 {
		return nil, fmt.Errorf("bench: compare threshold %v must exceed 1", threshold)
	}
	if old.Quick != new.Quick {
		return nil, fmt.Errorf("bench: cannot compare quick=%v against quick=%v files", old.Quick, new.Quick)
	}
	prev := make(map[string]PerfBenchmark, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		prev[b.Name] = b
	}
	var deltas []PerfDelta
	for _, b := range new.Benchmarks {
		p, ok := prev[b.Name]
		if !ok || p.NsPerOp <= 0 {
			continue
		}
		ratio := b.NsPerOp / p.NsPerOp
		deltas = append(deltas, PerfDelta{
			Name:       b.Name,
			OldNs:      p.NsPerOp,
			NewNs:      b.NsPerOp,
			Ratio:      ratio,
			OldAllocs:  p.AllocsPerOp,
			NewAllocs:  b.AllocsPerOp,
			Regression: ratio > threshold,
		})
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	return deltas, nil
}

// FormatPerfDeltas renders a comparison as an aligned text table and
// reports the number of regressions.
func FormatPerfDeltas(deltas []PerfDelta) (string, int) {
	var sb strings.Builder
	regressions := 0
	fmt.Fprintf(&sb, "%-36s %14s %14s %8s %16s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs old→new")
	for _, d := range deltas {
		mark := ""
		if d.Regression {
			mark = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(&sb, "%-36s %14.0f %14.0f %+7.1f%% %10d→%-6d%s\n",
			d.Name, d.OldNs, d.NewNs, (d.Ratio-1)*100, d.OldAllocs, d.NewAllocs, mark)
	}
	return sb.String(), regressions
}
