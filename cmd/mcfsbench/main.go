// Command mcfsbench regenerates the paper's tables and figures. Each
// experiment id maps to one paper artifact (F6a–F9b, T3, T4, F10,
// F12a–F13b) or an ablation (AblThreshold, AblDemand, AblTieBreak).
//
//	mcfsbench -list
//	mcfsbench -exp F6a,F6b -scale 1 -csv out.csv
//	mcfsbench -exp all -scale 0.2 -exactbudget 5s -md results.md
//	mcfsbench -exp F6a,F7a -workers 4 -notimes -csv out.csv
//
// Scale 1 runs laptop-sized sweeps; larger scales approach the paper's
// sizes (see EXPERIMENTS.md for the mapping). Experiment cells run on a
// bounded worker pool (-workers, default all CPUs); row output is
// deterministic at any worker count, and -notimes zeroes the wall-clock
// columns so runs are byte-comparable.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mcfs/internal/bench"
)

func main() {
	var (
		expFlag     = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		list        = flag.Bool("list", false, "list experiment ids and exit")
		scale       = flag.Float64("scale", 1, "size scale (1 = laptop defaults)")
		exactBudget = flag.Duration("exactbudget", 15*time.Second, "per-point exact-solver budget")
		algoTimeout = flag.Duration("algotimeout", 0, "per-point deadline for the heuristic algorithms; expiry is recorded as a 'timeout' row (0 = unlimited)")
		seed        = flag.Int64("seed", 1, "generation seed")
		skipExact   = flag.Bool("noexact", false, "skip the exact solver")
		skipBRNN    = flag.Bool("nobrnn", false, "skip the BRNN baseline")
		workers     = flag.Int("workers", 0, "max concurrent experiment cells (0 = all CPUs); also the load-generator fan-out for -exp serve")
		serveURL    = flag.String("serveurl", "", "target a running mcfsd for -exp serve (empty = self-host in-process)")
		events      = flag.Int("events", 0, "total load-generator operations for -exp serve (0 = scale with -scale)")
		noTimes     = flag.Bool("notimes", false, "zero all runtime columns (byte-comparable output across runs)")
		csvPath     = flag.String("csv", "", "also write rows as CSV to this file")
		mdPath      = flag.String("md", "", "also write a markdown report to this file")
	)
	flag.Parse()

	if *list {
		for _, id := range bench.IDs() {
			fmt.Println(id)
		}
		return
	}

	ids := bench.IDs()
	if *expFlag != "all" {
		ids = strings.Split(*expFlag, ",")
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
		}
	}
	// Validate every requested id before running anything, so a typo late
	// in the list doesn't surface only after earlier experiments already
	// burned their runtime.
	for _, id := range ids {
		if !bench.Known(id) {
			fmt.Fprintf(os.Stderr, "mcfsbench: unknown experiment %q (run -list for ids)\n", id)
			os.Exit(2)
		}
	}

	cfg := bench.Config{
		Scale:       *scale,
		ExactBudget: *exactBudget,
		AlgoTimeout: *algoTimeout,
		Seed:        *seed,
		SkipExact:   *skipExact,
		SkipBRNN:    *skipBRNN,
		ServeURL:    *serveURL,
		ServeEvents: *events,
		Workers:     *workers,
	}

	var rows []bench.Row
	for _, id := range ids {
		fmt.Fprintf(os.Stderr, "== %s ==\n", id)
		start := time.Now()
		err := bench.Run(id, cfg, func(r bench.Row) {
			if *noTimes {
				r.Runtime = 0
			}
			rows = append(rows, r)
			printRow(os.Stdout, r)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcfsbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "== %s done in %s ==\n", id, time.Since(start).Round(time.Millisecond))
	}

	if *csvPath != "" {
		if err := writeCSV(*csvPath, rows); err != nil {
			fmt.Fprintln(os.Stderr, "mcfsbench:", err)
			os.Exit(1)
		}
	}
	if *mdPath != "" {
		if err := writeMarkdown(*mdPath, rows); err != nil {
			fmt.Fprintln(os.Stderr, "mcfsbench:", err)
			os.Exit(1)
		}
	}
}

func printRow(w *os.File, r bench.Row) {
	obj := "-"
	if r.Objective >= 0 {
		obj = strconv.FormatInt(r.Objective, 10)
	}
	note := r.Note
	if note != "" {
		note = "  [" + note + "]"
	}
	algo := string(r.Algo)
	if algo == "" {
		algo = "-"
	}
	fmt.Fprintf(w, "%-6s %-8s %10.6g  %-10s obj=%-12s t=%-12s%s\n",
		r.Exp, r.X, r.XVal, algo, obj, r.Runtime.Round(time.Microsecond), note)
}

func writeCSV(path string, rows []bench.Row) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// A failed Close can be the only sign of a short write (full disk);
	// don't let the deferred call swallow it.
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return bench.WriteCSV(f, rows)
}

func writeMarkdown(path string, rows []bench.Row) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return bench.WriteMarkdown(f, rows)
}
