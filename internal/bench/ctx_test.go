package bench

import (
	"math/rand"
	"testing"
	"time"

	"mcfs/internal/data"
	"mcfs/internal/gen"
)

func ctxTestInstance(t *testing.T) *data.Instance {
	t.Helper()
	g, err := gen.Synthetic(gen.SyntheticConfig{N: 600, Clusters: 8, Alpha: 1.8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	pool := gen.LargestComponent(g)
	rng := rand.New(rand.NewSource(8))
	inst := &data.Instance{
		G:          g,
		Customers:  gen.SampleCustomersFrom(pool, 40, rng),
		Facilities: gen.SampleFacilitiesFrom(pool, 20, rng, gen.UniformCapacity(5)),
		K:          8,
	}
	if ok, _ := inst.Feasible(); !ok {
		t.Fatal("fixture instance infeasible")
	}
	return inst
}

func collectRow(t *testing.T, algo Algo, inst *data.Instance, cfg Config) Row {
	t.Helper()
	var rows []Row
	runAlgo("T", "x", 1, algo, inst, cfg.normalized(), 7, func(r Row) { rows = append(rows, r) })
	if len(rows) != 1 {
		t.Fatalf("runAlgo emitted %d rows, want 1", len(rows))
	}
	return rows[0]
}

func TestRunAlgoHeuristicTimeoutRow(t *testing.T) {
	inst := ctxTestInstance(t)
	for _, a := range []Algo{AlgoWMA, AlgoHilbert, AlgoNaive} {
		row := collectRow(t, a, inst, Config{AlgoTimeout: time.Nanosecond})
		if row.Note != "timeout" {
			t.Fatalf("%s: Note = %q, want \"timeout\"", a, row.Note)
		}
		if row.Objective != -1 {
			t.Fatalf("%s: Objective = %d, want -1 (heuristics hold no incumbent)", a, row.Objective)
		}
	}
}

func TestRunAlgoExactBudgetTimeoutRow(t *testing.T) {
	inst := ctxTestInstance(t)
	row := collectRow(t, AlgoExact, inst, Config{ExactBudget: time.Nanosecond})
	if row.Note != "timeout" {
		t.Fatalf("Note = %q, want \"timeout\" (the solver cannot finish within 1ns)", row.Note)
	}
}

func TestRunAlgoNoTimeoutControl(t *testing.T) {
	inst := ctxTestInstance(t)
	row := collectRow(t, AlgoWMA, inst, Config{})
	if row.Note != "" {
		t.Fatalf("Note = %q, want \"\"", row.Note)
	}
	if row.Objective < 0 {
		t.Fatalf("Objective = %d, want >= 0", row.Objective)
	}
}
