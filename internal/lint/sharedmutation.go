package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SharedMutation enforces the bench harness's immutability contract
// (DESIGN.md §8): once an instance is handed to the worker pool, the
// *data.Instance and *graph.Graph it references are shared read-only
// across concurrently running cells, so nothing reached from a cell may
// write through them. The rule is typed and runs on the v3 engine: it
// starts at every function literal submitted via pool.cell, seeds the
// flow-sensitive provenance analysis (provenance.go) — owned: built
// here from a composite literal, new, or a Clone call; shared: received
// from a memoized builder, captured from the enclosing sweep, or
// derived from either — and reports any field write, element write,
// pointer store, or copy() whose destination is rooted in a shared
// value *at that program point*. Rebinding heals: after
// `inst = inst.Clone()` the variable is owned on every path below, and
// facts merge at branch joins, so only paths where the value is really
// shared are reported. A shallow value copy (inst := *shared) owns its
// direct fields but not the backing arrays of its slice/map fields —
// writing copy.K is fine, writing copy.Customers[i] is a finding.
//
// Same-package callees taking a shared argument are followed and
// analyzed with that parameter marked shared. Out-of-package callees
// are resolved against the module's function summaries (summary.go):
// a call passing a shared value where the summary proves a write is
// reported at the call site. Where no summary exists (interface
// methods, closures, unsummarized packages) the analysis stays silent,
// as before — the race detector covers what it cannot see.
type SharedMutation struct{}

// Name implements Rule.
func (SharedMutation) Name() string { return "shared-instance-mutation" }

// Doc implements Rule.
func (SharedMutation) Doc() string {
	return "no writes through a pool-shared *data.Instance/*graph.Graph after submission to the bench worker pool"
}

// Check implements Rule for direct single-package use; Run prefers
// CheckModule, which sees cross-package summaries.
func (r SharedMutation) Check(pkg *Package, report ReportFunc) {
	r.CheckModule(newModule([]*Package{pkg}), report)
}

// CheckModule implements ModuleRule. The rule needs type information;
// without it (plain Load) it stays silent rather than guessing.
func (SharedMutation) CheckModule(m *Module, report ReportFunc) {
	for _, pkg := range m.Pkgs {
		if pkg.Dir != "internal/bench" || !pkg.Typed() {
			continue
		}
		c := &sharedChecker{pkg: pkg, mod: m, report: report, analyzed: make(map[string]bool)}
		c.decls = pkg.funcDecls()

		// Entry points: every FuncLit submitted through a .cell(...) call.
		for _, f := range pkg.Files {
			if f.Test {
				continue
			}
			f := f
			ast.Inspect(f.AST, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "cell" {
					return true
				}
				for _, arg := range call.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						c.analyze(f, lit.Type, lit.Body, nil, true)
					}
				}
				return true
			})
		}
	}
}

// provenance is the lattice the engine tracks per value, ordered so
// that the dataflow merge can take the maximum.
type provenance int

const (
	provUnknown provenance = iota
	provOwned              // freshly constructed here; writes are fine
	provBacking            // value copy of a shared object: fields owned, backing arrays shared
	provShared             // points into the pool-shared object graph
)

// declSite pairs a function declaration with its file for reporting.
type declSite struct {
	file *File
	decl *ast.FuncDecl
}

type sharedChecker struct {
	pkg      *Package
	mod      *Module
	report   ReportFunc
	decls    map[types.Object]*declSite
	analyzed map[string]bool // decl+shared-param mask, cycle/duplicate guard
}

// trackedType reports whether t is (a pointer to) data.Instance or
// graph.Graph — the two types the harness shares across cells. The
// package is matched by import-path suffix so fixture modules
// (fix/data, fix/graph) exercise the same code path as the real module.
func trackedType(t types.Type) bool {
	return isNamedType(t, true, "internal/data", "Instance") || isNamedType(t, true, "data", "Instance") ||
		isNamedType(t, true, "internal/graph", "Graph") || isNamedType(t, true, "graph", "Graph")
}

// analyze runs the provenance flow over one function body. sharedParams
// maps parameter index to the provenance flowing in from a call site
// (nil for cell literals, whose sharing comes from capture and builder
// calls instead).
func (c *sharedChecker) analyze(f *File, ft *ast.FuncType, body *ast.BlockStmt, sharedParams map[int]provenance, cell bool) {
	defs := collectDefs(c.pkg, ft, body)
	seed := make(provState)
	idx := 0
	if ft.Params != nil {
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				if obj := c.pkg.ObjectOf(name); obj != nil {
					if p, ok := sharedParams[idx]; ok {
						seed[obj] = p
					}
				}
				idx++
			}
		}
	}

	var pf *provFlow
	pf = &provFlow{
		pkg:  c.pkg,
		defs: defs,
		identProv: func(s provState, obj types.Object) provenance {
			// A tracked value captured from outside a cell literal
			// crossed into the pool with the submission: shared by
			// definition.
			if cell && !defs[obj] && trackedType(obj.Type()) {
				return provShared
			}
			return provUnknown
		},
		selectorProv: func(s provState, e *ast.SelectorExpr) provenance {
			// Unqualified selector (captured struct field, package var)
			// of a tracked type inside a cell: shared, same argument as
			// idents.
			if cell && trackedType(c.pkg.TypeOf(e)) && !isPkgName(c.pkg, e.X) {
				return provShared
			}
			return provUnknown
		},
		callProv: func(s provState, call *ast.CallExpr) provenance {
			return c.callProvenance(pf, s, call, cell)
		},
		onWrite: func(kind writeKind, e ast.Expr, pos token.Pos) {
			switch kind {
			case wkField:
				sel := e.(*ast.SelectorExpr)
				c.report(f, pos,
					"write to field %s of a pool-shared instance after submission; cells must treat submitted instances as read-only (take a shallow copy before the pool, as runCoworkingSweep does)", sel.Sel.Name)
			case wkElem:
				c.report(f, pos,
					"element write into a pool-shared backing array after submission; a shallow instance copy still shares its slices — clone the slice before mutating")
			case wkPtr:
				c.report(f, pos,
					"store through a pointer into a pool-shared instance after submission; cells must treat submitted instances as read-only")
			case wkCopy:
				c.report(f, pos,
					"copy() into a pool-shared instance's backing array; cells must treat submitted instances as read-only (clone or rebuild instead)")
			}
		},
		onCall: func(s provState, call *ast.CallExpr) {
			c.follow(f, pf, s, call)
		},
		onFuncLit: func(lit *ast.FuncLit, snap provState) {
			// The literal captures the enclosing state; its own params
			// are already in defs (collectDefs descends).
			pf.analyze(lit.Body, snap)
		},
	}
	pf.analyze(body, seed)
}

// callProvenance classifies a call result: constructions (new, Clone)
// are owned; summarized out-of-package callees answer precisely
// (provably fresh results are owned, result-aliases-parameter maps the
// argument provenance through); otherwise, inside a cell any call
// yielding a tracked type hands out the pool-shared value (memoized
// builders, captured closures), and elsewhere a call is shared only
// when a shared value flows in.
func (c *sharedChecker) callProvenance(pf *provFlow, s provState, call *ast.CallExpr, cell bool) provenance {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "new" {
			return provOwned
		}
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Clone" {
			return provOwned
		}
	}

	callee, recv := resolveCallee(c.pkg, call)
	if callee != nil {
		if _, local := c.decls[callee]; !local {
			if fs := c.mod.funcSummaryOf(callee); fs != nil {
				if fs.resultFresh {
					return provOwned
				}
				if fs.resultAlias != 0 {
					p := provUnknown
					for slot, arg := range summaryArgs(call, recv) {
						if slot < 64 && fs.resultAlias&(1<<uint(slot)) != 0 {
							if ap := pf.provOf(s, arg); ap > p {
								p = ap
							}
						}
					}
					if p == provShared || p == provBacking {
						return pf.projectTo(provShared, firstResultType(c.pkg.TypeOf(call)))
					}
					return p
				}
			}
		}
	}

	rt := firstResultType(c.pkg.TypeOf(call))
	if !trackedType(rt) {
		return provUnknown
	}
	if cell {
		return provShared
	}
	for _, arg := range call.Args {
		if p := pf.provOf(s, arg); p == provShared || p == provBacking {
			return provShared
		}
	}
	return provUnknown
}

// follow handles a call with shared arguments: same-package function
// callees are analyzed with the corresponding parameters marked shared
// (the finding lands on the write inside the callee); out-of-package
// callees are checked against their summary and reported at the call
// site when the summary proves a write.
func (c *sharedChecker) follow(f *File, pf *provFlow, s provState, call *ast.CallExpr) {
	callee, recv := resolveCallee(c.pkg, call)
	if callee == nil {
		return
	}
	if site, ok := c.decls[callee]; ok && recv == nil {
		shared := make(map[int]provenance)
		key := ""
		for i, arg := range call.Args {
			if p := pf.provOf(s, arg); p == provShared || p == provBacking {
				shared[i] = p
				key += string(rune('a'+i%26)) + string(rune('0'+int(p)))
			}
		}
		if len(shared) == 0 {
			return
		}
		key = callee.Name() + ":" + key
		if c.analyzed[key] {
			return
		}
		c.analyzed[key] = true
		c.analyze(site.file, site.decl.Type, site.decl.Body, shared, false)
		return
	}

	fs := c.mod.funcSummaryOf(callee)
	if fs == nil {
		return
	}
	for slot, arg := range summaryArgs(call, recv) {
		if slot >= len(fs.writes) || fs.writes[slot] != escYes {
			continue
		}
		if pf.provOf(s, arg) != provShared {
			continue
		}
		what := "argument"
		if slot == 0 && recv != nil {
			what = "receiver"
		}
		c.report(f, call.Pos(),
			"call passes a pool-shared instance to %s, which writes through its %s; cells must treat submitted instances as read-only", calleeLabel(callee), what)
	}
}

// resolveCallee resolves the call's static callee object and, for
// method calls, the receiver expression (summary slot 0).
func resolveCallee(pkg *Package, call *ast.CallExpr) (types.Object, ast.Expr) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pkg.ObjectOf(fun), nil
	case *ast.SelectorExpr:
		obj := pkg.ObjectOf(fun.Sel)
		fn, ok := obj.(*types.Func)
		if !ok {
			return nil, nil
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return fn, fun.X
		}
		return fn, nil
	}
	return nil, nil
}

// summaryArgs maps summary parameter slots to call-site expressions:
// slot 0 is the receiver for method calls, then positional arguments.
func summaryArgs(call *ast.CallExpr, recv ast.Expr) map[int]ast.Expr {
	return callArgs(call, recv)
}

// calleeLabel renders a callee for a finding message: pkg.Func or
// pkg.Type.Method.
func calleeLabel(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok {
		return obj.Name()
	}
	label := summaryKey(fn)
	if fn.Pkg() != nil {
		label = fn.Pkg().Name() + "." + label
	}
	return label
}

// isReferenceType reports whether values of t share underlying storage
// when copied (pointers, slices, maps).
func isReferenceType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch types.Unalias(t).Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}

// isPkgName reports whether e is a package qualifier identifier.
func isPkgName(pkg *Package, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, ok = pkg.ObjectOf(id).(*types.PkgName)
	return ok
}
