package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mcfs"
	"mcfs/internal/obs"
)

// --- doubles ----------------------------------------------------------------

// fakeClock is the manual Clock: Now advances only via Advance, tickers
// fire only when the test pushes a tick (including never — the frozen
// case). Every NewTicker is announced on tickers so the test can grab
// the loop's ticker without racing its creation.
type fakeClock struct {
	mu      sync.Mutex
	now     time.Time
	tickers chan *fakeTicker
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0), tickers: make(chan *fakeTicker, 8)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) NewTicker(d time.Duration) Ticker {
	tk := &fakeTicker{c: make(chan time.Time, 1)}
	c.tickers <- tk
	return tk
}

// ticker returns the next ticker a background loop created.
func (c *fakeClock) ticker(t *testing.T) *fakeTicker {
	t.Helper()
	select {
	case tk := <-c.tickers:
		return tk
	case <-time.After(5 * time.Second):
		t.Fatal("no ticker created within 5s")
		return nil
	}
}

type fakeTicker struct{ c chan time.Time }

func (tk *fakeTicker) C() <-chan time.Time { return tk.c }
func (tk *fakeTicker) Stop()               {}
func (tk *fakeTicker) tick()               { tk.c <- time.Unix(0, 0) }

// faultFS wraps the real filesystem with one injectable failure mode at
// a time:
//
//	"create"  CreateTemp fails outright
//	"write"   Write fails without persisting anything
//	"short"   Write persists half the payload and reports an error
//	"sync"    fsync fails after a full write
//	"rename"  the final rename fails
//	"torn"    Write persists half the payload and reports success —
//	          the torn file survives the rename under a generation name
type faultFS struct {
	osFS
	mode atomic.Value // string
}

func (f *faultFS) setMode(m string) { f.mode.Store(m) }
func (f *faultFS) is(m string) bool { v, _ := f.mode.Load().(string); return v == m }

func (f *faultFS) CreateTemp(dir, pattern string) (File, error) {
	if f.is("create") {
		return nil, errors.New("injected create failure")
	}
	file, err := osFS{}.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *faultFS) Rename(oldpath, newpath string) error {
	if f.is("rename") {
		return errors.New("injected rename failure")
	}
	return osFS{}.Rename(oldpath, newpath)
}

type faultFile struct {
	File
	fs *faultFS
}

func (f *faultFile) Write(p []byte) (int, error) {
	switch {
	case f.fs.is("write"):
		return 0, errors.New("injected write failure")
	case f.fs.is("short"):
		n, _ := f.File.Write(p[:len(p)/2])
		return n, errors.New("injected short write")
	case f.fs.is("torn"):
		if _, err := f.File.Write(p[:len(p)/2]); err != nil {
			return 0, err
		}
		return len(p), nil // lies: half the payload is on disk
	}
	return f.File.Write(p)
}

func (f *faultFile) Sync() error {
	if f.fs.is("sync") {
		return errors.New("injected fsync failure")
	}
	return f.File.Sync()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// generationFiles lists the snapshot generation files present in dir.
func generationFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if _, ok := parseGeneration(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	return names
}

// --- configuration ----------------------------------------------------------

func TestServeDurabilityConfigValidation(t *testing.T) {
	inst := testInstance(t)
	if _, err := New(Config{Instance: inst, SnapshotEvery: time.Second}); err == nil || !strings.Contains(err.Error(), "SnapshotDir") {
		t.Fatalf("SnapshotEvery without SnapshotDir: %v", err)
	}
	if _, err := New(Config{Instance: inst, DriftThreshold: 0.9}); err == nil || !strings.Contains(err.Error(), "must exceed 1") {
		t.Fatalf("sub-1 DriftThreshold: %v", err)
	}
}

func TestHealRearmBelow(t *testing.T) {
	for _, tc := range []struct{ threshold, want float64 }{
		{1.2, 1.1},
		{2.0, 1.5},
		{1.0, 1.0},
	} {
		if got := healRearmBelow(tc.threshold); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("healRearmBelow(%v) = %v, want %v", tc.threshold, got, tc.want)
		}
	}
}

// --- snapshot policy --------------------------------------------------------

// TestSnapshotPolicy drives the ticker manually: every tick persists
// one generation, retention prunes to SnapshotKeep, and the newest
// generation restores the live state exactly.
func TestSnapshotPolicy(t *testing.T) {
	fc := newFakeClock()
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{
		SnapshotEvery: time.Hour, // ticks are manual; the duration is inert
		SnapshotDir:   dir,
		SnapshotKeep:  2,
		Clock:         fc,
	})
	tk := fc.ticker(t)

	// Churn so the capture is non-trivial, then persist three
	// generations.
	inst := s.cfg.Instance
	var churn ChurnReply
	if code := call(t, "POST", ts.URL+"/arrivals",
		ArrivalsRequest{Nodes: inst.Customers[:3]}, &churn); code != 200 {
		t.Fatalf("arrivals = %d", code)
	}
	for n := int64(1); n <= 3; n++ {
		tk.tick()
		n := n
		waitFor(t, fmt.Sprintf("snapshot %d", n), func() bool { return s.rec.Counter(obs.ServeSnapshots) == n })
	}

	// Retention: only the newest SnapshotKeep generations remain.
	files := generationFiles(t, dir)
	if len(files) != 2 || files[0] != snapshotName(2) || files[1] != snapshotName(3) {
		t.Fatalf("retained files %v, want [%s %s]", files, snapshotName(2), snapshotName(3))
	}

	// The newest generation restores to the live state.
	snap, path, skipped, err := LoadNewestSnapshot(dir)
	if err != nil || len(skipped) != 0 {
		t.Fatalf("LoadNewestSnapshot: %v (skipped %v)", err, skipped)
	}
	if filepath.Base(path) != snapshotName(3) {
		t.Fatalf("newest = %s, want %s", path, snapshotName(3))
	}
	restored, err := New(Config{Instance: inst, Snapshot: snap})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if restored.Objective() != s.Objective() || restored.View().Customers() != s.View().Customers() {
		t.Fatalf("restored objective/customers %d/%d, want %d/%d",
			restored.Objective(), restored.View().Customers(), s.Objective(), s.View().Customers())
	}

	// Stats and /metrics surface the policy's state.
	var st StatsReply
	if code := call(t, "GET", ts.URL+"/stats", nil, &st); code != 200 {
		t.Fatalf("stats = %d", code)
	}
	if st.Snapshots != 3 || st.SnapshotFailures != 0 || st.SnapshotGeneration != 3 || st.LastSnapshotUnix == 0 {
		t.Fatalf("stats durability fields %+v", st)
	}
}

// TestSnapshotGenerationResume: a server pointed at a directory with
// existing generations continues the sequence instead of overwriting.
func TestSnapshotGenerationResume(t *testing.T) {
	fc := newFakeClock()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapshotName(5)), []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, _ := newTestServer(t, Config{SnapshotEvery: time.Hour, SnapshotDir: dir, Clock: fc})
	tk := fc.ticker(t)
	tk.tick()
	waitFor(t, "resumed snapshot", func() bool { return s.rec.Counter(obs.ServeSnapshots) == 1 })
	if _, err := os.Stat(filepath.Join(dir, snapshotName(6))); err != nil {
		t.Fatalf("generation did not resume past existing files: %v (have %v)", err, generationFiles(t, dir))
	}
}

// TestSnapshotFaultInjection is the acceptance test for the atomic
// persistence discipline: every injected failure mode leaves the newest
// prior generation byte-identical and loadable, creates no new
// generation file, and counts on the failure counter; a torn file that
// does land under a generation name is skipped by recovery.
func TestSnapshotFaultInjection(t *testing.T) {
	fc := newFakeClock()
	ffs := &faultFS{}
	dir := t.TempDir()
	s, _ := newTestServer(t, Config{
		SnapshotEvery: time.Hour,
		SnapshotDir:   dir,
		SnapshotKeep:  10,
		FS:            ffs,
		Clock:         fc,
	})
	tk := fc.ticker(t)

	// Baseline: one good generation.
	tk.tick()
	waitFor(t, "baseline snapshot", func() bool { return s.rec.Counter(obs.ServeSnapshots) == 1 })
	baseline, basePath, _, err := LoadNewestSnapshot(dir)
	if err != nil || baseline == nil {
		t.Fatalf("baseline load: %v", err)
	}
	baseRaw, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}

	for i, mode := range []string{"create", "write", "short", "sync", "rename"} {
		ffs.setMode(mode)
		tk.tick()
		want := int64(i + 1)
		waitFor(t, mode+" failure counted", func() bool { return s.rec.Counter(obs.ServeSnapshotFailures) == want })

		// The newest prior generation is still the baseline, bytes intact.
		_, path, skipped, err := LoadNewestSnapshot(dir)
		if err != nil || len(skipped) != 0 || path != basePath {
			t.Fatalf("%s: recovery sees %q skipped %v err %v, want %q", mode, path, skipped, err, basePath)
		}
		if raw, err := os.ReadFile(basePath); err != nil || string(raw) != string(baseRaw) {
			t.Fatalf("%s: baseline generation mutated (err %v)", mode, err)
		}
		if files := generationFiles(t, dir); len(files) != 1 {
			t.Fatalf("%s: unexpected generation files %v", mode, files)
		}
		if s.rec.Counter(obs.ServeSnapshots) != 1 {
			t.Fatalf("%s: success counter moved to %d", mode, s.rec.Counter(obs.ServeSnapshots))
		}
	}

	// No temp-file debris: failures clean up after themselves. (The
	// "create" mode never made a file; the others must have removed
	// theirs.)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if _, ok := parseGeneration(e.Name()); !ok {
			t.Fatalf("stray file %q after injected failures", e.Name())
		}
	}

	// Torn write: persist reports success, so a corrupt file lands under
	// a generation name — recovery must skip it back to the baseline.
	ffs.setMode("torn")
	tk.tick()
	waitFor(t, "torn snapshot recorded", func() bool { return s.rec.Counter(obs.ServeSnapshots) == 2 })
	_, path, skipped, err := LoadNewestSnapshot(dir)
	if err != nil {
		t.Fatalf("recovery with torn newest: %v", err)
	}
	if path != basePath || len(skipped) != 1 {
		t.Fatalf("torn: recovery sees %q skipped %v, want %q with 1 skip", path, skipped, basePath)
	}

	// Faults cleared: the next tick persists a loadable generation again.
	ffs.setMode("")
	tk.tick()
	waitFor(t, "recovered snapshot", func() bool { return s.rec.Counter(obs.ServeSnapshots) == 3 })
	snap, path, _, err := LoadNewestSnapshot(dir)
	if err != nil || snap == nil {
		t.Fatalf("post-recovery load: %v", err)
	}
	if path == basePath {
		t.Fatalf("post-recovery newest still the baseline %q", path)
	}
}

// TestSnapshotFrozenClock: a ticker that never fires produces no
// snapshots, no files, and a clean shutdown (no goroutine deadlock).
func TestSnapshotFrozenClock(t *testing.T) {
	fc := newFakeClock()
	dir := t.TempDir()
	s, err := New(Config{Instance: testInstance(t), SnapshotEvery: time.Hour, SnapshotDir: dir, Clock: fc})
	if err != nil {
		t.Fatal(err)
	}
	fc.ticker(t) // the loop's ticker exists; we never tick it
	if _, err := s.do(context.Background(), op{kind: opSnapshot}); err != nil {
		t.Fatal(err)
	}
	if n := s.rec.Counter(obs.ServeSnapshots); n != 0 {
		t.Fatalf("frozen clock persisted %d snapshots", n)
	}
	if files := generationFiles(t, dir); len(files) != 0 {
		t.Fatalf("frozen clock left files %v", files)
	}
	s.Close() // must return despite the never-firing ticker
}

// TestLoadNewestSnapshotCorruptSkip exercises recovery directly:
// newest-first scan, corrupt generations skipped, temp files and
// foreign names ignored.
func TestLoadNewestSnapshotCorruptSkip(t *testing.T) {
	inst := testInstance(t)
	r, err := mcfs.NewReallocator(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var valid strings.Builder
	if err := snap.Write(&valid); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(snapshotName(1), valid.String())
	write(snapshotName(2), valid.String())
	write(snapshotName(3), valid.String()[:20]) // truncated
	write(snapshotName(9), "garbage")
	write(".snap-123.tmp", "in-flight temp, ignored")
	write("README", "not a snapshot")

	got, path, skipped, err := LoadNewestSnapshot(dir)
	if err != nil || got == nil {
		t.Fatalf("load: %v", err)
	}
	if filepath.Base(path) != snapshotName(2) {
		t.Fatalf("picked %s, want %s", path, snapshotName(2))
	}
	if len(skipped) != 2 || filepath.Base(skipped[0]) != snapshotName(9) || filepath.Base(skipped[1]) != snapshotName(3) {
		t.Fatalf("skipped %v, want [gen9 gen3] newest-first", skipped)
	}

	// All generations corrupt: an explicit error, not a silent fresh
	// start — the operator asked to restore.
	corrupt := t.TempDir()
	if err := os.WriteFile(filepath.Join(corrupt, snapshotName(1)), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := LoadNewestSnapshot(corrupt); err == nil || !strings.Contains(err.Error(), "no loadable snapshot") {
		t.Fatalf("all-corrupt dir: %v", err)
	}

	// Empty and missing directories are a fresh start.
	for _, d := range []string{t.TempDir(), filepath.Join(t.TempDir(), "nope")} {
		snap, path, skipped, err := LoadNewestSnapshot(d)
		if snap != nil || path != "" || skipped != nil || err != nil {
			t.Fatalf("empty dir %s: %v %q %v %v", d, snap, path, skipped, err)
		}
	}
}

// --- drift healer -----------------------------------------------------------

// TestDriftHealer is the acceptance test for self-healing: with the
// Reallocator's own drift re-solve parked (DriftFactor 100), churn
// inflates the published drift past the threshold, the healer fires
// through the op queue, and the published drift measurably drops back
// under the threshold. Counters for triggers and heals land in /stats
// and /metrics.
func TestDriftHealer(t *testing.T) {
	s, ts := newTestServer(t, Config{
		DriftFactor:     100, // keep the internal re-solve out of the way
		DriftThreshold:  1.2,
		HealMinInterval: time.Nanosecond,
	})
	inst := s.cfg.Instance

	// Doubling the population roughly doubles the objective while the
	// baseline stays at the initial full solve: drift ≈ 2.
	var churn ChurnReply
	if code := call(t, "POST", ts.URL+"/arrivals",
		ArrivalsRequest{Nodes: inst.Customers}, &churn); code != 200 {
		t.Fatalf("arrivals = %d", code)
	}

	waitFor(t, "heal trigger", func() bool { return s.rec.Counter(obs.ServeHealTriggers) >= 1 })
	waitFor(t, "heal completion", func() bool { return s.rec.Counter(obs.ServeHeals) >= 1 })
	waitFor(t, "drift back under threshold", func() bool {
		v := s.view.Load()
		return v.base > 0 && float64(v.pub.Objective)/float64(v.base) < s.cfg.DriftThreshold
	})

	var st StatsReply
	if code := call(t, "GET", ts.URL+"/stats", nil, &st); code != 200 {
		t.Fatalf("stats = %d", code)
	}
	if st.HealTriggers < 1 || st.Heals < 1 || st.HealFailures != 0 || st.LastHealUnix == 0 {
		t.Fatalf("stats heal fields %+v", st)
	}
	if st.Drift >= s.cfg.DriftThreshold {
		t.Fatalf("drift %v not healed under threshold %v", st.Drift, s.cfg.DriftThreshold)
	}

	body := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		"mcfs_serve_heal_triggers_total",
		"mcfs_serve_heals_total",
		"mcfsd_last_heal_timestamp_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !regexpMustFindPositive(t, body, "mcfs_serve_heals_total") {
		t.Error("mcfs_serve_heals_total still zero after a heal")
	}
	if !regexpMustFindPositive(t, body, "mcfsd_last_heal_timestamp_seconds") {
		t.Error("mcfsd_last_heal_timestamp_seconds still zero after a heal")
	}
}
