package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// APIParity enforces the PR-2 API contract in the root package: an
// exported Solve*/Improve*/New* function that has a *Ctx sibling is a
// convenience wrapper and must contain no logic of its own — its body
// must be exactly `return FooCtx(context.Background(), ...)`. Anything
// else lets the two entry points drift apart (an option handled in one
// but not the other, a deadline layered twice), which is precisely the
// class of bug a wrapper pair invites.
//
// With type information the wrapper shape is verified semantically: the
// callee must resolve to the package-level *Ctx sibling (a local
// variable shadowing it no longer passes) and the first argument must
// resolve to the real context.Background (a local helper named
// `context.Background` behind a renamed import no longer does).
//
// The rule's second half guards the Algorithm registry: algorithms.go is
// the root package's single binding between public algorithm names and
// the internal solver implementations, and every root Solve entry point
// routes through it. Any other root file that reaches the baseline
// package or a core Solve* function directly has re-opened a private
// dispatch path that the registry (and everything enumerating it —
// commands, the bench harness, the serving daemon) will not see.
type APIParity struct{}

// Name implements Rule.
func (APIParity) Name() string { return "api-parity" }

// Doc implements Rule.
func (APIParity) Doc() string {
	return "exported Solve*/Improve*/New* with a *Ctx sibling must delegate to it with context.Background(); internal solvers bind only in algorithms.go"
}

// apiParityPrefixes are the entry-point families the rule covers.
var apiParityPrefixes = []string{"Solve", "Improve", "New"}

// Check implements Rule.
func (APIParity) Check(pkg *Package, report ReportFunc) {
	if pkg.Dir != "." {
		return
	}
	funcs := make(map[string]*ast.FuncDecl)
	fileOf := make(map[string]*File)
	for _, f := range pkg.Files {
		if f.Test {
			continue
		}
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil {
				continue
			}
			funcs[fd.Name.Name] = fd
			fileOf[fd.Name.Name] = f
		}
	}

	names := make([]string, 0, len(funcs))
	for name := range funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !ast.IsExported(name) || strings.HasSuffix(name, "Ctx") || !hasParityPrefix(name) {
			continue
		}
		if _, ok := funcs[name+"Ctx"]; !ok {
			continue
		}
		if !delegatesToCtx(pkg, funcs[name], name+"Ctx") {
			report(fileOf[name], funcs[name].Pos(),
				"%s has a %sCtx sibling but is not the single-statement wrapper `return %sCtx(context.Background(), ...)`",
				name, name, name)
		}
	}

	checkRegistryBypass(pkg, report)
}

// registryFile is the one root file allowed to bind algorithm names to
// internal solver implementations.
const registryFile = "algorithms.go"

// registrySolverPkgs are the internal packages whose solve entry points
// must only be reached through the registry: the baseline package
// entirely, and the core package's Solve* family (core's non-Solve
// helpers — option types, AssignToSelection — remain fair game for the
// rest of the root package).
var registrySolverPkgs = map[string]func(name string) bool{
	"mcfs/internal/baseline": func(string) bool { return true },
	"mcfs/internal/core":     func(name string) bool { return strings.HasPrefix(name, "Solve") },
}

// checkRegistryBypass reports root-package selector references into the
// guarded internal solver packages outside algorithms.go. With type
// information the package qualifier is resolved through the import path
// (robust against renamed imports); without it the check is by the
// conventional package spelling.
func checkRegistryBypass(pkg *Package, report ReportFunc) {
	for _, f := range pkg.Files {
		if f.Test || f.Path == registryFile {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgPath, ok := importedPath(pkg, f, x)
			if !ok {
				return true
			}
			guarded, ok := registrySolverPkgs[pkgPath]
			if !ok || !guarded(sel.Sel.Name) {
				return true
			}
			report(f, sel.Pos(),
				"%s.%s bypasses the Algorithm registry; bind internal solvers in %s and dispatch through Algorithm.Solve",
				x.Name, sel.Sel.Name, registryFile)
			return true
		})
	}
}

// importedPath resolves a package-qualifier identifier to its import
// path: by type information when available, else by matching the file's
// imports against the conventional package name.
func importedPath(pkg *Package, f *File, x *ast.Ident) (string, bool) {
	if pkg.Typed() {
		pn, ok := pkg.ObjectOf(x).(*types.PkgName)
		if !ok {
			return "", false
		}
		return pn.Imported().Path(), true
	}
	for _, imp := range f.AST.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path
		if i := strings.LastIndexByte(name, '/'); i >= 0 {
			name = name[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == x.Name {
			return path, true
		}
	}
	return "", false
}

// hasParityPrefix reports whether name belongs to a covered family.
func hasParityPrefix(name string) bool {
	for _, p := range apiParityPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// delegatesToCtx reports whether fd's body is exactly
// `return want(context.Background(), ...)`. With type information the
// callee must resolve to the package-level sibling and the first
// argument to the real context.Background; without it the check is by
// spelling.
func delegatesToCtx(pkg *Package, fd *ast.FuncDecl, want string) bool {
	if fd.Body == nil || len(fd.Body.List) != 1 {
		return false
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return false
	}
	call, ok := ret.Results[0].(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	fun, ok := call.Fun.(*ast.Ident)
	if !ok || fun.Name != want {
		return false
	}
	if pkg.Typed() {
		if obj := pkg.ObjectOf(fun); obj != nil {
			if f, ok := obj.(*types.Func); !ok || f.Pkg() != pkg.Types || f.Parent() != pkg.Types.Scope() {
				return false
			}
		}
	}
	bg, ok := call.Args[0].(*ast.CallExpr)
	if !ok || len(bg.Args) != 0 {
		return false
	}
	if pkg.Typed() {
		return pkg.isPkgFunc(bg, "context", "Background")
	}
	sel, ok := bg.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Background" {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	return ok && x.Name == "context"
}
