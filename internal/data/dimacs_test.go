package data

import (
	"bytes"
	"strings"
	"testing"

	"mcfs/internal/graph"
)

const sampleGR = `c tiny road network
p sp 4 6
a 1 2 10
a 2 1 10
a 2 3 20
a 3 2 20
a 3 4 5
a 4 3 5
`

const sampleCO = `c coords
p aux sp co 4
v 1 0 0
v 2 10 0
v 3 10 20
v 4 15 20
`

func TestReadDIMACSUndirected(t *testing.T) {
	g, err := ReadDIMACSGraph(strings.NewReader(sampleGR), strings.NewReader(sampleCO), true)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("n=%d m=%d, want 4/3", g.N(), g.M())
	}
	if g.Directed() {
		t.Fatal("undirected graph marked directed")
	}
	d := g.Dijkstra(0)
	if d[3] != 35 {
		t.Fatalf("dist 1→4 = %d, want 35", d[3])
	}
	if !g.HasCoords() {
		t.Fatal("coordinates lost")
	}
	if x, y := g.Coord(3); x != 15 || y != 20 {
		t.Fatalf("coord(4) = (%v,%v)", x, y)
	}
}

func TestReadDIMACSDirected(t *testing.T) {
	// Asymmetric: drop the reverse of one arc.
	gr := `p sp 3 3
a 1 2 7
a 2 1 9
a 2 3 1
`
	g, err := ReadDIMACSGraph(strings.NewReader(gr), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Directed() {
		t.Fatal("directed graph not marked directed")
	}
	if d := g.Dijkstra(0); d[2] != 8 {
		t.Fatalf("dist 1→3 = %d, want 8", d[2])
	}
	if d := g.Dijkstra(2); d[0] < graph.Inf {
		t.Fatalf("node 3 should not reach node 1, got %d", d[0])
	}
}

func TestReadDIMACSErrors(t *testing.T) {
	cases := []string{
		"",                     // no problem line
		"p sp 2 1\n",           // missing arcs
		"a 1 2 3\n",            // arc before problem line
		"p sp 2 1\na 1 5 3\n",  // endpoint out of range
		"p sp 2 1\nx nope\n",   // unknown line
		"p sp 2 1\na 1 2\n",    // malformed arc
		"p sp 2 2\na 1 2 3\n",  // arc count mismatch
		"p sp 2 1\np sp 2 1\n", // duplicate problem line
	}
	for i, src := range cases {
		if _, err := ReadDIMACSGraph(strings.NewReader(src), nil, false); err == nil {
			t.Fatalf("case %d accepted: %q", i, src)
		}
	}
}

func TestReadDIMACSCoordErrors(t *testing.T) {
	gr := "p sp 2 1\na 1 2 3\n"
	cases := []string{
		"v 1 0 0\n",          // missing node 2
		"v 9 0 0\nv 2 1 1\n", // id out of range
		"w 1 0 0\n",          // unknown line
		"v 1 0\nv 2 1 1\n",   // malformed
	}
	for i, co := range cases {
		if _, err := ReadDIMACSGraph(strings.NewReader(gr), strings.NewReader(co), false); err == nil {
			t.Fatalf("case %d accepted: %q", i, co)
		}
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	g, err := ReadDIMACSGraph(strings.NewReader(sampleGR), strings.NewReader(sampleCO), true)
	if err != nil {
		t.Fatal(err)
	}
	var grBuf, coBuf bytes.Buffer
	if err := WriteDIMACSGraph(&grBuf, &coBuf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDIMACSGraph(&grBuf, &coBuf, true)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.M() != g.M() {
		t.Fatalf("round trip changed sizes: %d/%d vs %d/%d", back.N(), back.M(), g.N(), g.M())
	}
	d1 := g.Dijkstra(0)
	d2 := back.Dijkstra(0)
	for v := range d1 {
		if d1[v] != d2[v] {
			t.Fatalf("distance changed at node %d", v)
		}
	}
}
