package lint

import (
	"go/ast"
	"strings"
	"testing"
)

// The dataflow tests run a tiny taint analysis over real Go bodies:
// `x = taint()` marks x, `x = clean()` clears it, and the test asserts
// whether taint can reach each `sinkN(x)` call. This exercises exactly
// what the provenance rules need from the solver: strong updates,
// merging at joins, and propagation around loop back edges.

type taintState map[string]bool

// runTaint solves the taint problem and returns, per sink name, whether
// the named variable may be tainted there.
func runTaint(t *testing.T, src string) map[string]bool {
	t.Helper()
	body := parseBody(t, src)
	g := buildCFG(body)

	var classify func(s taintState, e ast.Expr) bool
	classify = func(s taintState, e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			return s[e.Name]
		case *ast.CallExpr:
			if id, ok := e.Fun.(*ast.Ident); ok {
				if id.Name == "taint" {
					return true
				}
				if id.Name == "clean" {
					return false
				}
			}
			// propagate through wrap(x)-style calls
			for _, a := range e.Args {
				if classify(s, a) {
					return true
				}
			}
			return false
		}
		return false
	}
	step := func(n ast.Node, s taintState) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return
		}
		for i := range as.Lhs {
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if classify(s, as.Rhs[i]) {
					s[id.Name] = true
				} else {
					delete(s, id.Name) // strong update
				}
			}
		}
	}

	d := dataflow[taintState]{
		seed: func() taintState { return taintState{} },
		clone: func(s taintState) taintState {
			out := make(taintState, len(s))
			for k, v := range s {
				out[k] = v
			}
			return out
		},
		merge: func(dst, src taintState) bool {
			changed := false
			for k := range src {
				if !dst[k] {
					dst[k] = true
					changed = true
				}
			}
			return changed
		},
		step: step,
	}
	in := d.fixpoint(g)

	sinks := make(map[string]bool)
	for _, b := range g.blocks {
		s, ok := in[b]
		if !ok {
			s = taintState{}
		}
		cur := make(taintState, len(s))
		for k, v := range s {
			cur[k] = v
		}
		for _, n := range b.nodes {
			ast.Inspect(n, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || !strings.HasPrefix(id.Name, "sink") {
					return true
				}
				tainted := false
				for _, a := range call.Args {
					tainted = tainted || classify(cur, a)
				}
				sinks[id.Name] = sinks[id.Name] || tainted
				return true
			})
			step(n, cur)
		}
	}
	return sinks
}

func TestDataflowStraightLine(t *testing.T) {
	sinks := runTaint(t, `
		x := taint()
		sinkA(x)
		x = clean()
		sinkB(x)
	`)
	if !sinks["sinkA"] {
		t.Error("sinkA: taint lost on the straight-line path")
	}
	if sinks["sinkB"] {
		t.Error("sinkB: strong update by clean() did not clear the fact")
	}
}

func TestDataflowBranchJoin(t *testing.T) {
	// Tainted on one arm only: the join must keep the taint (may-
	// analysis), but a branch that cleans on BOTH arms clears it.
	sinks := runTaint(t, `
		x := clean()
		if cond() {
			x = taint()
		}
		sinkJoin(x)
		if cond() {
			x = clean()
		} else {
			x = clean()
		}
		sinkClean(x)
	`)
	if !sinks["sinkJoin"] {
		t.Error("sinkJoin: taint from one branch arm lost at the join")
	}
	if sinks["sinkClean"] {
		t.Error("sinkClean: taint survived although both arms cleaned")
	}
}

func TestDataflowPathSensitivity(t *testing.T) {
	// The else arm never sees the then arm's taint: facts are per
	// program point, not per function.
	sinks := runTaint(t, `
		x := clean()
		if cond() {
			x = taint()
			sinkThen(x)
		} else {
			sinkElse(x)
		}
	`)
	if !sinks["sinkThen"] {
		t.Error("sinkThen: taint missing on its own arm")
	}
	if sinks["sinkElse"] {
		t.Error("sinkElse: taint leaked across sibling branch arms")
	}
}

func TestDataflowLoopBackEdge(t *testing.T) {
	// Taint established late in the body must reach the top of the
	// body on the next iteration — only a fixpoint sees this.
	sinks := runTaint(t, `
		x := clean()
		for cond() {
			sinkTop(x)
			x = taint()
		}
		sinkAfter(x)
	`)
	if !sinks["sinkTop"] {
		t.Error("sinkTop: taint did not flow around the loop back edge")
	}
	if !sinks["sinkAfter"] {
		t.Error("sinkAfter: taint lost on loop exit")
	}
}

func TestDataflowLoopReassignHeals(t *testing.T) {
	// A clean() at the top of the body shields the rest of the body
	// regardless of what the previous iteration did.
	sinks := runTaint(t, `
		x := taint()
		for cond() {
			x = clean()
			sinkBody(x)
		}
	`)
	if sinks["sinkBody"] {
		t.Error("sinkBody: taint survived an unconditional reassignment")
	}
}

func TestDataflowSwitchAndGoto(t *testing.T) {
	sinks := runTaint(t, `
		x := clean()
		switch v() {
		case 1:
			x = taint()
			fallthrough
		case 2:
			sinkFall(x)
		case 3:
			sinkCase3(x)
		}
	retry:
		sinkLabel(x)
		if cond() {
			x = taint()
			goto retry
		}
	`)
	if !sinks["sinkFall"] {
		t.Error("sinkFall: taint did not follow fallthrough")
	}
	if sinks["sinkCase3"] {
		t.Error("sinkCase3: taint leaked into a sibling case")
	}
	if !sinks["sinkLabel"] {
		t.Error("sinkLabel: taint did not follow the goto back edge")
	}
}

func TestDataflowDeterministic(t *testing.T) {
	src := `
		x := clean()
		y := clean()
		for cond() {
			if cond2() {
				x = taint()
			} else {
				y = wrap(x)
			}
			sinkX(x)
			sinkY(y)
		}
	`
	first := runTaint(t, src)
	for i := 0; i < 10; i++ {
		again := runTaint(t, src)
		for k, v := range first {
			if again[k] != v {
				t.Fatalf("run %d: sink %s flipped from %v to %v", i, k, v, again[k])
			}
		}
	}
}
