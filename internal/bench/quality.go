package bench

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"mcfs"
	"mcfs/internal/data"
	"mcfs/internal/gen"
	"mcfs/internal/solver"
)

func init() {
	register("Q", runQuality)
}

// qualityBatch is the outcome of one quality instance: per-algorithm
// objective ratios to the enumerated optimum and per-algorithm solve
// times. A nil entry in the slot array means the instance was skipped
// (infeasible or too large to enumerate).
type qualityBatch struct {
	ratio map[Algo]float64
	times map[Algo]time.Duration
	exact time.Duration
}

// runQuality backs the paper's "competitive vis-à-vis the optimal
// solution" claim on instances small enough for the exact solver to
// finish: a batch of seeded clustered instances is solved by every
// algorithm and by exhaustive enumeration, and the mean and maximum
// objective ratio to the optimum is reported per algorithm. Batches are
// independent cells; each writes its own result slot, and aggregation
// happens after all cells have drained, so the summary is identical at
// any worker count.
func runQuality(cfg Config, emit func(Row)) error {
	const batch = 8
	algos := []Algo{AlgoWMA, AlgoUF, AlgoHilbert, AlgoNaive, AlgoBRNN}
	slots := make([]*qualityBatch, batch)

	p := newPool(cfg)
	for b := 0; b < batch; b++ {
		b := b
		p.cell(func(emit func(Row)) error {
			seed := cfg.Seed + int64(b)*977
			n := 200 + int(100*cfg.Scale)*b/2
			g, err := gen.Synthetic(gen.SyntheticConfig{N: n, Clusters: 8, Alpha: 1.8, Seed: seed})
			if err != nil {
				return err
			}
			pool := gen.LargestComponent(g)
			rng := rand.New(rand.NewSource(seed + 1))
			// Clustered geometry, restricted candidate set, tight-ish
			// occupancy (≈0.8): the regime the paper's evaluation targets,
			// kept small enough for exhaustive enumeration (C(12,5) subsets).
			inst := &data.Instance{
				G:          g,
				Customers:  gen.SampleCustomersFrom(pool, 20, rng),
				Facilities: gen.SampleFacilitiesFrom(pool, 12, rng, gen.UniformCapacity(5)),
				K:          5,
			}
			if ok, _ := inst.Feasible(); !ok {
				inst.K = 6
				if ok, _ := inst.Feasible(); !ok {
					return nil // skipped batch; slot stays nil
				}
			}
			start := time.Now()
			opt, err := solver.Exhaustive(inst, 0)
			if err != nil {
				if errors.Is(err, data.ErrInfeasible) || errors.Is(err, solver.ErrTooLarge) {
					return nil
				}
				return err
			}
			res := &qualityBatch{
				ratio: make(map[Algo]float64, len(algos)),
				times: make(map[Algo]time.Duration, len(algos)),
				exact: time.Since(start),
			}

			for _, a := range algos {
				start := time.Now()
				sol, _, err := publicAlgo[a].Solve(context.Background(), inst, mcfs.WithSeed(seed))
				res.times[a] = time.Since(start)
				if err != nil {
					return fmt.Errorf("quality batch %d, %s: %w", b, a, err)
				}
				if _, err := inst.CheckSolution(sol); err != nil {
					return fmt.Errorf("quality batch %d, %s: %w", b, a, err)
				}
				r := 1.0
				if opt.Objective > 0 {
					r = float64(sol.Objective) / float64(opt.Objective)
				} else if sol.Objective > 0 {
					r = 2
				}
				res.ratio[a] = r
			}
			slots[b] = res // each cell owns exactly its own index
			return nil
		})
	}
	if err := p.drain(emit); err != nil {
		return err
	}

	type agg struct {
		sum, worst float64
		count      int
		time       time.Duration
	}
	ratios := map[Algo]*agg{}
	for _, a := range algos {
		ratios[a] = &agg{}
	}
	var exactTime time.Duration
	solved := 0
	for _, res := range slots {
		if res == nil {
			continue
		}
		solved++
		exactTime += res.exact
		for _, a := range algos {
			ag := ratios[a]
			ag.sum += res.ratio[a]
			ag.count++
			ag.time += res.times[a]
			if res.ratio[a] > ag.worst {
				ag.worst = res.ratio[a]
			}
		}
	}
	for _, a := range algos {
		ag := ratios[a]
		if ag.count == 0 {
			continue
		}
		// Wall-clock figures live only in Runtime (never in the note), so
		// -notimes keeps the row stream byte-comparable across runs.
		emit(Row{
			Exp: "Q", X: string(a), Algo: a, Objective: -1, Runtime: ag.time,
			Note: fmt.Sprintf("mean ratio to optimal %.3f, worst %.3f over %d instances",
				ag.sum/float64(ag.count), ag.worst, ag.count),
		})
	}
	if solved > 0 {
		emit(Row{
			Exp: "Q", X: "exact-total", Algo: AlgoExact, Objective: -1, Runtime: exactTime,
			Note: fmt.Sprintf("exhaustive enumeration over %d instances", solved),
		})
	}
	return nil
}
