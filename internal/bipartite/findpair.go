package bipartite

import (
	"context"
	"fmt"

	"mcfs/internal/graph"
	"mcfs/internal/obs"
)

// FindPair implements Algorithm 2 of the paper: it matches customer i to
// exactly one additional facility, rewiring earlier assignments along
// the augmenting path when beneficial, and materializing bipartite edges
// only when the Theorem-1 threshold proves the current best path might
// not be optimal over the complete bipartite graph.
//
// It returns false when no augmenting path from i exists even in the
// complete graph (every reachable facility is full or unreachable); the
// matching is left unchanged in that case.
func (mt *Matcher) FindPair(i int) bool {
	matched, _ := mt.FindPairCtx(context.Background(), i)
	return matched
}

// FindPairCtx is FindPair with cooperative cancellation: ctx is checked
// once per augmenting-path search (each retry of the inner shortest
// path) and propagated into the per-customer network searchers, which
// poll it during long expansions. On cancellation it returns ctx.Err()
// with the matching unchanged by this call; the matcher must not be
// used afterwards (an interrupted searcher cannot be resumed). The
// checkpoints never alter the search, so an uncancelled run is
// byte-identical to FindPair.
func (mt *Matcher) FindPairCtx(ctx context.Context, i int) (matched bool, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	mt.ctx = ctx
	if rec := obs.From(ctx); rec != nil {
		// Flush the matcher-stat deltas this call produces into the
		// recorder on every exit path. The hot loops keep incrementing
		// the plain mt.stats ints exactly as before; recording is a
		// per-call snapshot diff, not a per-event atomic.
		prev := mt.stats
		defer func() {
			rec.Add(obs.SSPASearches, int64(mt.stats.DijkstraRuns-prev.DijkstraRuns))
			rec.Add(obs.SSPANodesScanned, int64(mt.stats.NodesScanned-prev.NodesScanned))
			rec.Add(obs.SSPAEdgesMaterialized, int64(mt.stats.EdgesMaterialized-prev.EdgesMaterialized))
			rec.Add(obs.SSPAAugmentingPaths, int64(mt.stats.Augmentations-prev.Augmentations))
		}()
	}
	for {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		best, bestFac, thr, argmin := mt.shortestPath(i)
		if best <= thr {
			if best >= graph.Inf {
				// "No reachable facility" and "a cancellation poisoned a
				// searcher mid-expansion" look identical here: a poisoned
				// searcher reports PeekDist() == Inf, so the threshold never
				// fires and the search space seems exhausted. Sweep the live
				// searchers before declaring the customer unservable —
				// otherwise a cancellation masquerades as infeasibility and
				// callers like AssignToSelection trust it.
				if serr := mt.searcherErr(); serr != nil {
					return false, serr
				}
				return false, nil
			}
			mt.augment(bestFac, best)
			return true, nil
		}
		// thr < best: an unmaterialized edge could yield a shorter path;
		// add the minimizing customer's next nearest edge and retry. The
		// threshold is finite only when that searcher has a next edge, so
		// a failure here is either a cancellation recorded by the searcher
		// or an invariant breach — both must abort the loop (retrying with
		// unchanged state would spin forever).
		if !mt.materialize(argmin) {
			return false, mt.materializeFailure(argmin)
		}
	}
}

// searcherErr returns the first cancellation error recorded by any live
// per-customer searcher (in customer order, so the report is
// deterministic), or nil when none was interrupted.
func (mt *Matcher) searcherErr() error {
	for _, s := range mt.searchers {
		if s == nil {
			continue
		}
		if err := s.Err(); err != nil {
			return err
		}
	}
	return nil
}

// materializeFailure classifies a failed materialization for customer i:
// a cancellation recorded by the searcher propagates as that error;
// anything else means the Theorem-1 threshold promised a next edge the
// searcher does not have — an internal invariant breach reported
// explicitly rather than silently retried.
func (mt *Matcher) materializeFailure(i int) error {
	if serr := mt.searchers[i].Err(); serr != nil {
		return serr
	}
	return fmt.Errorf("bipartite: invariant breach: finite threshold promised customer %d a next edge but its searcher is exhausted", i)
}

// shortestPath runs the inner search of Algorithm 2, line 8: shortest
// paths from customer src over the materialized residual graph with
// reduced costs. It returns the reduced distance and index of the best
// free facility (graph.Inf/-1 if none reachable), the Theorem-1
// threshold min{v.dist + nnDist(v) − v.p} over settled customers, and
// the customer attaining it.
//
// When every reduced cost is nonnegative the search is plain Dijkstra
// and may stop early once the outcome is provably decided; freshly
// materialized edges may carry a transiently negative reduced cost, in
// which case the search runs label-correcting (reinsertion on improve)
// to exhaustion, which is correct for any graph without negative cycles
// — and the running matching being a min-cost flow guarantees none.
func (mt *Matcher) shortestPath(src int) (best int64, bestFac int, thr int64, argmin int) {
	mt.stats.DijkstraRuns++
	labelCorrecting := mt.purgeNegArcs()
	mt.epoch++
	mt.settled = mt.settled[:0]
	h := mt.heap
	h.Reset()
	l := mt.L()
	mt.relax(int32(l+src), 0, parentNone)

	best, bestFac = graph.Inf, -1
	thr, argmin = graph.Inf, -1
	for h.Len() > 0 {
		if !labelCorrecting && !mt.exhaustive {
			_, dnext := h.PeekMin()
			// Certain reject: the final best free-facility distance is at
			// least min(best, dnext), and the threshold only shrinks — once
			// thr undercuts that floor, a materialization is inevitable.
			floor := best
			if dnext < floor {
				floor = dnext
			}
			if thr < floor {
				break
			}
			// Certain accept: every unsettled customer key is at least
			// dnext − maxCustPot and every unsettled facility is at least
			// dnext away, so neither thr nor best can drop below best.
			if bestFac >= 0 && dnext-mt.maxCustPot >= best {
				break
			}
		}
		v, d := h.PopMin()
		if d > mt.dist[v] {
			continue // stale entry
		}
		if mt.doneAt(v) {
			mt.stats.Reinsertions++
		} else {
			mt.markDone(v)
		}
		mt.stats.NodesScanned++
		if int(v) >= l {
			ci := int(v) - l
			if nn := mt.nnDist(ci); nn < graph.Inf {
				if key := d + nn - mt.pot[v]; key < thr {
					thr, argmin = key, ci
				}
			}
			for idx, e := range mt.edges[ci] {
				if e.matched {
					continue
				}
				fn := e.fac
				mt.relax(fn, d+e.w-mt.pot[v]+mt.pot[fn], int64(ci)<<32|int64(idx))
			}
		} else {
			j := int(v)
			if len(mt.facMatch[j]) < mt.facs[j].Capacity && d < best {
				best, bestFac = d, j
			}
			for idx, fe := range mt.facMatch[j] {
				e := mt.edges[fe.cust][fe.idx]
				cn := int32(l + int(fe.cust))
				mt.relax(cn, d-e.w-mt.pot[v]+mt.pot[cn], -(int64(j)<<32|int64(idx))-1)
			}
		}
	}
	return best, bestFac, thr, argmin
}

// relax updates node v's tentative distance.
func (mt *Matcher) relax(v int32, d int64, par int64) {
	if mt.stamp[v] == mt.epoch && d >= mt.dist[v] {
		return
	}
	if mt.stamp[v] != mt.epoch {
		mt.stamp[v] = mt.epoch
	}
	mt.dist[v] = d
	mt.parent[v] = par
	mt.heap.Push(v, d)
}

func (mt *Matcher) doneAt(v int32) bool { return mt.done[v] == mt.epoch }

func (mt *Matcher) markDone(v int32) {
	mt.done[v] = mt.epoch
	mt.settled = append(mt.settled, v)
}

// augment flips matched flags along the shortest path ending at free
// facility j with reduced length pathLen, then applies the standard
// potential update p(v) += max(0, pathLen − dist(v)) to settled nodes
// (Algorithm 2, lines 13–17).
func (mt *Matcher) augment(j int, pathLen int64) {
	l := mt.L()
	type flip struct {
		fac  int32 // facility index
		idx  int32 // meaning depends on fwd: edges[cust] index or facMatch[fac] index
		cust int32
		fwd  bool
	}
	var flips []flip
	node := int32(j)
	for {
		par := mt.parent[node]
		if par == parentNone {
			break
		}
		if par >= 0 {
			cust := int32(par >> 32)
			idx := int32(par & 0xffffffff)
			flips = append(flips, flip{fac: mt.edges[cust][idx].fac, idx: idx, cust: cust, fwd: true})
			node = int32(l + int(cust))
		} else {
			enc := -par - 1
			fac := int32(enc >> 32)
			idx := int32(enc & 0xffffffff)
			flips = append(flips, flip{fac: fac, idx: idx, cust: mt.facMatch[fac][idx].cust, fwd: false})
			node = fac
		}
	}
	// Apply removals (backward arcs) first: each facility occurs at most
	// once on a shortest path, so recorded facMatch positions stay valid.
	for _, f := range flips {
		if f.fwd {
			continue
		}
		fe := mt.facMatch[f.fac][f.idx]
		mt.edges[fe.cust][fe.idx].matched = false
		last := len(mt.facMatch[f.fac]) - 1
		mt.facMatch[f.fac][f.idx] = mt.facMatch[f.fac][last]
		mt.facMatch[f.fac] = mt.facMatch[f.fac][:last]
	}
	for _, f := range flips {
		if !f.fwd {
			continue
		}
		mt.edges[f.cust][f.idx].matched = true
		mt.facMatch[f.fac] = append(mt.facMatch[f.fac], facEdge{cust: f.cust, idx: f.idx})
		if !mt.everMatched[f.fac] {
			mt.everMatched[f.fac] = true
			mt.touched = append(mt.touched, f.fac)
		}
	}
	mt.stats.Augmentations++

	for _, v := range mt.settled {
		if d := mt.dist[v]; d < pathLen {
			mt.pot[v] += pathLen - d
			if int(v) >= l && mt.pot[v] > mt.maxCustPot {
				mt.maxCustPot = mt.pot[v]
			}
		}
	}
}
