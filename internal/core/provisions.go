package core

import (
	"context"
	"fmt"
	"sort"

	"mcfs/internal/data"
	"mcfs/internal/graph"
)

// SelectGreedy implements Algorithm 4: while fewer than k facilities are
// selected, repeatedly locate the customer farthest from the current
// selection (network distance) and add the unselected candidate facility
// nearest to it. This retains coverage and improves the cost objective.
func SelectGreedy(inst *data.Instance, selection []int) []int {
	sel, _ := SelectGreedyCtx(context.Background(), inst, selection)
	return sel
}

// SelectGreedyCtx is SelectGreedy with cooperative cancellation: the
// per-pick multi-source Dijkstra and nearest-candidate searches poll
// ctx. On cancellation it returns nil and ctx.Err().
func SelectGreedyCtx(ctx context.Context, inst *data.Instance, selection []int) ([]int, error) {
	k, l := inst.K, inst.L()
	if k > l {
		k = l
	}
	selected := make([]bool, l)
	for _, j := range selection {
		selected[j] = true
	}
	// Shared mask of unselected candidate nodes for the NN searches.
	mask := make([]bool, inst.G.N())
	unselected := 0
	for j, f := range inst.Facilities {
		if !selected[j] {
			mask[f.Node] = true
			unselected++
		}
	}
	_, nodeToFac := inst.CandidateMask()

	for len(selection) < k && unselected > 0 {
		// Farthest customer from the current selection.
		var sStar int32
		if len(selection) == 0 {
			sStar = inst.Customers[0]
		} else {
			srcs := make([]int32, len(selection))
			for i, j := range selection {
				srcs[i] = inst.Facilities[j].Node
			}
			dist, _, err := inst.G.MultiSourceDijkstraCtx(ctx, srcs)
			if err != nil {
				return nil, err
			}
			best := int64(-1)
			for _, s := range inst.Customers {
				if dist[s] > best {
					best = dist[s]
					sStar = s
				}
			}
		}
		// Nearest unselected candidate to that customer; fall back to an
		// arbitrary unselected candidate if none is reachable.
		fStar := -1
		search := graph.NewNNSearcherCtx(ctx, inst.G, sStar, mask)
		if node, _, ok := search.Next(); ok {
			fStar = nodeToFac[node]
		} else {
			if err := search.Err(); err != nil {
				return nil, err
			}
			for j := range inst.Facilities {
				if !selected[j] {
					fStar = j
					break
				}
			}
		}
		selection = append(selection, fStar)
		selected[fStar] = true
		mask[inst.Facilities[fStar].Node] = false
		unselected--
	}
	return selection, nil
}

// CoverComponents implements Algorithm 5: it revises the selection so
// that every connected component of the network holds enough selected
// capacity for its customers, swapping the lowest-capacity selected
// facility of the most over-provisioned component for the
// highest-capacity unselected facility of the most under-provisioned
// one. If the swap loop stalls, a deterministic rebuild (per-component
// top-capacity facilities first) restores correctness; the instance is
// known feasible at this point, so a covering selection always exists.
func CoverComponents(inst *data.Instance, selection []int) ([]int, error) {
	return CoverComponentsCtx(context.Background(), inst, selection)
}

// CoverComponentsCtx is CoverComponents with cooperative cancellation,
// checked once per swap; on cancellation it returns nil and ctx.Err().
func CoverComponentsCtx(ctx context.Context, inst *data.Instance, selection []int) ([]int, error) {
	comp, count := inst.G.Components()
	custCount := make([]int, count)
	for _, s := range inst.Customers {
		custCount[comp[s]]++
	}
	selected := make([]bool, inst.L())
	for _, j := range selection {
		selected[j] = true
	}
	surplus := make([]int64, count)
	for g := 0; g < count; g++ {
		surplus[g] = -int64(custCount[g])
	}
	for j, f := range inst.Facilities {
		if selected[j] {
			surplus[comp[f.Node]] += int64(f.Capacity)
		}
	}

	maxSwaps := inst.L() + inst.K + 1
	for swaps := 0; ; swaps++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		gm, gM := -1, -1
		for g := 0; g < count; g++ {
			if surplus[g] < 0 && (gm == -1 || surplus[g] < surplus[gm]) {
				gm = g
			}
		}
		if gm == -1 {
			break // every component has sufficient capacity
		}
		if swaps >= maxSwaps {
			return rebuildSelection(inst, comp, count, custCount, selection)
		}
		// Donor: highest-surplus component (≠ gm) holding a selected facility.
		for g := 0; g < count; g++ {
			if g == gm {
				continue
			}
			if !hasSelectedIn(inst, selected, comp, g) {
				continue
			}
			if gM == -1 || surplus[g] > surplus[gM] {
				gM = g
			}
		}
		if gM == -1 {
			return rebuildSelection(inst, comp, count, custCount, selection)
		}
		out := -1 // lowest-capacity selected facility in gM
		for j, f := range inst.Facilities {
			if selected[j] && comp[f.Node] == int32(gM) {
				if out == -1 || f.Capacity < inst.Facilities[out].Capacity {
					out = j
				}
			}
		}
		in := -1 // highest-capacity unselected facility in gm
		for j, f := range inst.Facilities {
			if !selected[j] && comp[f.Node] == int32(gm) {
				if in == -1 || f.Capacity > inst.Facilities[in].Capacity {
					in = j
				}
			}
		}
		if in == -1 {
			return rebuildSelection(inst, comp, count, custCount, selection)
		}
		selected[out] = false
		selected[in] = true
		surplus[gM] -= int64(inst.Facilities[out].Capacity)
		surplus[gm] += int64(inst.Facilities[in].Capacity)
		for idx, j := range selection {
			if j == out {
				selection[idx] = in
				break
			}
		}
	}
	return selection, nil
}

func hasSelectedIn(inst *data.Instance, selected []bool, comp []int32, g int) bool {
	for j, f := range inst.Facilities {
		if selected[j] && comp[f.Node] == int32(g) {
			return true
		}
	}
	return false
}

// rebuildSelection deterministically constructs a covering selection:
// each component first receives its top-capacity facilities until its
// customers fit, then the remaining budget keeps as much of the previous
// selection as possible.
func rebuildSelection(inst *data.Instance, comp []int32, count int, custCount []int, prev []int) ([]int, error) {
	byComp := make([][]int, count)
	for j, f := range inst.Facilities {
		g := comp[f.Node]
		byComp[g] = append(byComp[g], j)
	}
	chosen := make([]bool, inst.L())
	var selection []int
	for g := 0; g < count; g++ {
		if custCount[g] == 0 {
			continue
		}
		sort.Slice(byComp[g], func(a, b int) bool {
			fa, fb := inst.Facilities[byComp[g][a]], inst.Facilities[byComp[g][b]]
			if fa.Capacity != fb.Capacity {
				return fa.Capacity > fb.Capacity
			}
			return byComp[g][a] < byComp[g][b]
		})
		need := custCount[g]
		for _, j := range byComp[g] {
			if need <= 0 {
				break
			}
			need -= inst.Facilities[j].Capacity
			chosen[j] = true
			selection = append(selection, j)
		}
		if need > 0 {
			return nil, fmt.Errorf("wma: component %d lacks capacity for %d customers: %w", g, custCount[g], data.ErrInfeasible)
		}
	}
	if len(selection) > inst.K {
		return nil, fmt.Errorf("wma: covering selection needs %d facilities, budget %d: %w", len(selection), inst.K, data.ErrInfeasible)
	}
	for _, j := range prev {
		if len(selection) == inst.K {
			break
		}
		if !chosen[j] {
			chosen[j] = true
			selection = append(selection, j)
		}
	}
	return selection, nil
}
