package bipartite

import (
	"context"
	"errors"
	"testing"

	"mcfs/internal/data"
	"mcfs/internal/graph"
)

func ctxTestMatcher(t *testing.T) *Matcher {
	t.Helper()
	b := graph.NewBuilder(6, false)
	for i := 0; i < 5; i++ {
		b.AddEdge(int32(i), int32(i+1), 1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	facs := []data.Facility{{Node: 0, Capacity: 1}, {Node: 5, Capacity: 1}}
	return New(g, []int32{2, 3}, facs)
}

func TestFindPairCtxCancelledLeavesMatchingUntouched(t *testing.T) {
	mt := ctxTestMatcher(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	matched, err := mt.FindPairCtx(ctx, 0)
	if matched {
		t.Fatal("cancelled FindPairCtx reported a match")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if mt.MatchCount(0) != 0 {
		t.Fatalf("MatchCount(0) = %d after cancelled call, want 0", mt.MatchCount(0))
	}
}

func TestFindPairCtxBackgroundMatchesFindPair(t *testing.T) {
	a, b := ctxTestMatcher(t), ctxTestMatcher(t)
	for i := 0; i < 2; i++ {
		want := a.FindPair(i)
		got, err := b.FindPairCtx(context.Background(), i)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("customer %d: FindPairCtx = %v, FindPair = %v", i, got, want)
		}
	}
	for i := 0; i < 2; i++ {
		af, aw := a.Matches(i)
		bf, bw := b.Matches(i)
		if len(af) != len(bf) {
			t.Fatalf("customer %d: match counts differ", i)
		}
		for x := range af {
			if af[x] != bf[x] || aw[x] != bw[x] {
				t.Fatalf("customer %d: matches differ", i)
			}
		}
	}
}
