package graph

import (
	"mcfs/internal/obs"
	"mcfs/internal/pq"
)

// flushSearchCounters adds one search's locally accumulated work
// counters to rec. Searches count into plain locals on the hot path and
// flush here exactly once on exit, so the per-pop cost with or without
// a recorder is identical (BenchmarkRecorderOverhead pins the
// recorder-absent delta). rec must be non-nil; callers install the
// flushing defer only after a successful obs.From.
func flushSearchCounters(rec *obs.Recorder, q pq.Monotone, pops, relax int64) {
	rec.Add(obs.DijkstraHeapPops, pops)
	rec.Add(obs.DijkstraRelaxations, relax)
	if bq, ok := q.(*pq.BucketQueue); ok {
		rec.Add(obs.DijkstraBucketOverflows, bq.Overflows())
	}
}
