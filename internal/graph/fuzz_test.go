package graph

import (
	"math/rand"
	"testing"
)

// fuzzMod reduces a raw fuzz integer into [0, m) without overflowing on
// MinInt64 (whose negation is itself).
func fuzzMod(raw, m int64) int64 {
	v := raw % m
	if v < 0 {
		v += m
	}
	return v
}

// randomDisconnectedGraph builds a graph with (at least) two components:
// nodes below cut and nodes from cut up each get their own spanning
// tree, and extra edges never cross the cut.
func randomDisconnectedGraph(rng *rand.Rand, n, extraEdges int, maxW int64) *Graph {
	if n < 2 {
		panic("randomDisconnectedGraph needs n >= 2")
	}
	b := NewBuilder(n, false)
	cut := 1 + rng.Intn(n-1)
	for i := 1; i < n; i++ {
		if i == cut {
			continue // cut starts the second component
		}
		var j int
		if i < cut {
			j = rng.Intn(i)
		} else {
			j = cut + rng.Intn(i-cut)
		}
		b.AddEdge(int32(i), int32(j), 1+rng.Int63n(maxW))
	}
	for e := 0; e < extraEdges; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || (u < cut) != (v < cut) {
			continue
		}
		b.AddEdge(int32(u), int32(v), 1+rng.Int63n(maxW))
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// FuzzDijkstra cross-checks the heap Dijkstra against the Bellman-Ford
// reference on random graphs, connected and disconnected — the
// disconnected half pins the Inf convention for unreachable nodes.
func FuzzDijkstra(f *testing.F) {
	f.Add(int64(1), int64(12), int64(20), int64(50), false)
	f.Add(int64(2), int64(30), int64(0), int64(1), true)
	f.Add(int64(-5), int64(5), int64(40), int64(1000), true)
	f.Add(int64(99), int64(58), int64(120), int64(7), false)
	f.Add(int64(1234), int64(2), int64(3), int64(9), true)
	f.Fuzz(func(t *testing.T, seed, nRaw, extraRaw, maxWRaw int64, disconnect bool) {
		n := 2 + int(fuzzMod(nRaw, 60))
		extra := int(fuzzMod(extraRaw, int64(2*n)))
		maxW := 1 + fuzzMod(maxWRaw, 100)

		rng := rand.New(rand.NewSource(seed))
		var g *Graph
		if disconnect {
			g = randomDisconnectedGraph(rng, n, extra, maxW)
		} else {
			g = randomGraph(rng, n, extra, maxW)
		}
		src := int32(rng.Intn(n))
		got := g.Dijkstra(src)
		want := bellmanFord(g, src)
		if len(got) != len(want) {
			t.Fatalf("Dijkstra returned %d distances for %d nodes", len(got), n)
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("dist[%d] = %d, want %d (n=%d src=%d disconnect=%v seed=%d)",
					v, got[v], want[v], n, src, disconnect, seed)
			}
		}
		// Both frontier-queue implementations must agree with the
		// reference (and each other) on every fuzzed graph.
		for mode, label := range map[QueueMode]string{QueueHeap: "heap", QueueBucket: "bucket"} {
			prev := SetQueueMode(mode)
			forced := g.Dijkstra(src)
			SetQueueMode(prev)
			for v := range want {
				if forced[v] != want[v] {
					t.Fatalf("%s queue: dist[%d] = %d, want %d (n=%d src=%d maxW=%d seed=%d)",
						label, v, forced[v], want[v], n, src, maxW, seed)
				}
			}
		}
		if disconnect {
			unreachable := false
			for _, d := range got {
				if d >= Inf {
					unreachable = true
					break
				}
			}
			if !unreachable {
				t.Fatalf("disconnected graph reports every node reachable from %d (n=%d seed=%d)", src, n, seed)
			}
		}
	})
}
