package core_test

import (
	"math/rand"
	"testing"

	"mcfs/internal/core"
	"mcfs/internal/data"
	"mcfs/internal/graph"
	"mcfs/internal/solver"
	"mcfs/internal/testutil"
)

// TestWMANearOptimal mirrors the paper's central quality claim: WMA is
// competitive with the exact solver. Every instance must stay within a
// generous per-instance factor, and the average ratio must be close to 1.
func TestWMANearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	var ratioSum float64
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		inst := testutil.RandomInstance(rng, testutil.Params{
			MinNodes: 10, MaxNodes: 50,
			MaxCustomers: 8, MaxFacilities: 7,
			MaxCapacity: 3, MaxWeight: 25,
		})
		opt, err := solver.Exhaustive(inst, 0)
		if err != nil {
			t.Fatalf("trial %d: exhaustive: %v", trial, err)
		}
		sol, err := core.Solve(inst, core.Options{})
		if err != nil {
			t.Fatalf("trial %d: wma: %v", trial, err)
		}
		if sol.Objective < opt.Objective {
			t.Fatalf("trial %d: heuristic %d beats proven optimum %d — solver bug",
				trial, sol.Objective, opt.Objective)
		}
		ratio := 1.0
		if opt.Objective > 0 {
			ratio = float64(sol.Objective) / float64(opt.Objective)
		} else if sol.Objective > 0 {
			ratio = 2 // optimum is 0 but WMA paid something
		}
		if ratio > 3.0 {
			t.Fatalf("trial %d: WMA %d vs optimal %d (ratio %.2f) — far from optimal (m=%d l=%d k=%d)",
				trial, sol.Objective, opt.Objective, ratio, inst.M(), inst.L(), inst.K)
		}
		ratioSum += ratio
	}
	if avg := ratioSum / trials; avg > 1.25 {
		t.Fatalf("average WMA/optimal ratio %.3f exceeds 1.25", avg)
	}
}

// TestWMAOptimalWhenSelectionTrivial checks exact optimality whenever
// k >= l: the only freedom is the assignment, which WMA solves optimally.
func TestWMAOptimalWhenSelectionTrivial(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 20; trial++ {
		inst := testutil.RandomInstance(rng, testutil.Params{
			MinNodes: 10, MaxNodes: 40,
			MaxCustomers: 8, MaxFacilities: 6,
			MaxCapacity: 3, MaxWeight: 25,
		})
		inst.K = inst.L()
		opt, err := solver.Exhaustive(inst, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sol, err := core.Solve(inst, core.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Objective != opt.Objective {
			t.Fatalf("trial %d: WMA %d != optimal %d with k=l", trial, sol.Objective, opt.Objective)
		}
	}
}

// TestSelectiveDemandNoWorseOnAverage sanity-checks the paper's §IV-F
// claim direction: the selective policy should not be systematically
// worse than raising every demand.
func TestSelectiveDemandComparable(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	var selSum, allSum int64
	for trial := 0; trial < 20; trial++ {
		inst := testutil.RandomInstance(rng, testutil.Params{
			MinNodes: 20, MaxNodes: 60,
			MaxCustomers: 10, MaxFacilities: 8,
			MaxCapacity: 3, MaxWeight: 25,
		})
		a, err := core.Solve(inst, core.Options{Demand: core.DemandSelective})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		b, err := core.Solve(inst, core.Options{Demand: core.DemandAll})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		selSum += a.Objective
		allSum += b.Objective
	}
	if float64(selSum) > 1.5*float64(allSum)+10 {
		t.Fatalf("selective demand much worse than raise-all: %d vs %d", selSum, allSum)
	}
}

// --- unit tests for CheckCover -------------------------------------------

// fakeCoverage is a hand-built assignment view.
type fakeCoverage struct {
	m      int
	assign [][]int // per facility: assigned customers
}

func (f *fakeCoverage) M() int                  { return f.m }
func (f *fakeCoverage) L() int                  { return len(f.assign) }
func (f *fakeCoverage) AssignedCount(j int) int { return len(f.assign[j]) }
func (f *fakeCoverage) Assigned(j int, fn func(int)) {
	for _, c := range f.assign[j] {
		fn(c)
	}
}

func (f *fakeCoverage) Touched(fn func(int)) {
	for j := range f.assign {
		if len(f.assign[j]) > 0 {
			fn(j)
		}
	}
}

func TestCheckCoverGreedyPicksByMarginalGain(t *testing.T) {
	// f0 covers {0,1,2}; f1 covers {2,3}; f2 covers {3}.
	// Greedy: f0 (gain 3), then f1 (marginal 1) ties with f2 (1) —
	// LRU equal (-1), index order picks f1. Coverage complete.
	view := &fakeCoverage{m: 4, assign: [][]int{{0, 1, 2}, {2, 3}, {3}}}
	lastUsed := []int{-1, -1, -1}
	sel, deltaD, covered := core.CheckCover(view, 2, lastUsed, core.TieLRU)
	if !covered {
		t.Fatal("coverage not detected")
	}
	if len(sel) != 2 || sel[0] != 0 || sel[1] != 1 {
		t.Fatalf("selection = %v, want [0 1]", sel)
	}
	for i, d := range deltaD {
		if d {
			t.Fatalf("customer %d marked uncovered", i)
		}
	}
}

func TestCheckCoverStopsEarlyWhenCovered(t *testing.T) {
	view := &fakeCoverage{m: 2, assign: [][]int{{0, 1}, {1}, {0}}}
	sel, _, covered := core.CheckCover(view, 3, []int{-1, -1, -1}, core.TieLRU)
	if !covered || len(sel) != 1 {
		t.Fatalf("sel = %v covered = %v, want single facility", sel, covered)
	}
}

func TestCheckCoverLRUTieBreak(t *testing.T) {
	// Both facilities cover disjoint single customers; gain ties at 1.
	// f1 was used less recently, so it must come first under core.TieLRU.
	view := &fakeCoverage{m: 3, assign: [][]int{{0}, {1}}}
	sel, _, covered := core.CheckCover(view, 1, []int{5, 2}, core.TieLRU)
	if covered {
		t.Fatal("customer 2 is unassigned; cannot be covered")
	}
	if len(sel) != 1 || sel[0] != 1 {
		t.Fatalf("selection = %v, want [1] (least recently used)", sel)
	}
	// Arbitrary tie-break prefers the lower index.
	sel, _, _ = core.CheckCover(view, 1, []int{5, 2}, core.TieArbitrary)
	if sel[0] != 0 {
		t.Fatalf("arbitrary tie-break selection = %v, want [0]", sel)
	}
}

func TestCheckCoverUncoveredDelta(t *testing.T) {
	view := &fakeCoverage{m: 3, assign: [][]int{{0}, {}, {}}}
	sel, deltaD, covered := core.CheckCover(view, 2, []int{-1, -1, -1}, core.TieLRU)
	if covered {
		t.Fatal("covered with unassigned customers")
	}
	if len(sel) != 1 {
		t.Fatalf("selection = %v (zero-gain facilities must not be selected)", sel)
	}
	want := []bool{false, true, true}
	for i := range want {
		if deltaD[i] != want[i] {
			t.Fatalf("deltaD = %v, want %v", deltaD, want)
		}
	}
}

func TestCheckCoverSharedCustomersRecount(t *testing.T) {
	// f0 and f1 both claim customers {0,1}; after selecting f0, f1's
	// stale gain (2) must be lazily corrected to 0 and f1 skipped.
	view := &fakeCoverage{m: 3, assign: [][]int{{0, 1}, {0, 1}, {2}}}
	sel, _, covered := core.CheckCover(view, 2, []int{-1, -1, -1}, core.TieLRU)
	if !covered {
		t.Fatal("not covered")
	}
	if len(sel) != 2 || sel[0] != 0 || sel[1] != 2 {
		t.Fatalf("selection = %v, want [0 2]", sel)
	}
}

// --- unit tests for the special provisions --------------------------------

func TestSelectGreedyFillsToK(t *testing.T) {
	g := pathGraph(t, 10)
	inst := &data.Instance{
		G:         g,
		Customers: []int32{0, 9},
		K:         3,
	}
	for v := 0; v < 10; v += 2 {
		inst.Facilities = append(inst.Facilities, data.Facility{Node: int32(v), Capacity: 2})
	}
	sel := core.SelectGreedy(inst, []int{0}) // facility at node 0 preselected
	if len(sel) != 3 {
		t.Fatalf("selection size %d, want 3", len(sel))
	}
	seen := map[int]bool{}
	for _, j := range sel {
		if seen[j] {
			t.Fatalf("duplicate selection %v", sel)
		}
		seen[j] = true
	}
	// First addition must be the facility nearest to the farthest
	// customer (node 9 → facility at node 8).
	if inst.Facilities[sel[1]].Node != 8 {
		t.Fatalf("greedy added node %d first, want 8", inst.Facilities[sel[1]].Node)
	}
}

func TestSelectGreedyFromEmpty(t *testing.T) {
	g := pathGraph(t, 5)
	inst := &data.Instance{
		G:          g,
		Customers:  []int32{2},
		Facilities: []data.Facility{{Node: 0, Capacity: 1}, {Node: 4, Capacity: 1}},
		K:          1,
	}
	sel := core.SelectGreedy(inst, nil)
	if len(sel) != 1 {
		t.Fatalf("selection = %v", sel)
	}
}

func TestCoverComponentsRepairsDeficit(t *testing.T) {
	// Components A (nodes 0-2) and B (nodes 3-5). All customers in B,
	// but the initial selection sits in A.
	b := graph.NewBuilder(6, false)
	b.AddEdge(0, 1, 1).AddEdge(1, 2, 1).AddEdge(3, 4, 1).AddEdge(4, 5, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	inst := &data.Instance{
		G:         g,
		Customers: []int32{3, 4, 5},
		Facilities: []data.Facility{
			{Node: 0, Capacity: 5}, {Node: 1, Capacity: 1},
			{Node: 4, Capacity: 2}, {Node: 5, Capacity: 3},
		},
		K: 2,
	}
	sel, err := core.CoverComponents(inst, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	var capB int
	for _, j := range sel {
		if inst.Facilities[j].Node >= 3 {
			capB += inst.Facilities[j].Capacity
		}
	}
	if capB < 3 {
		t.Fatalf("component B still lacks capacity after repair: selection %v", sel)
	}
	if len(sel) != 2 {
		t.Fatalf("selection size changed: %v", sel)
	}
}

func TestCoverComponentsNoopWhenBalanced(t *testing.T) {
	g := pathGraph(t, 4)
	inst := &data.Instance{
		G:          g,
		Customers:  []int32{0, 3},
		Facilities: []data.Facility{{Node: 1, Capacity: 2}, {Node: 2, Capacity: 2}},
		K:          1,
	}
	sel, err := core.CoverComponents(inst, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 1 || sel[0] != 0 {
		t.Fatalf("balanced selection modified: %v", sel)
	}
}

func pathGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n, false)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1), 1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}
