package core

import (
	"context"
	"errors"

	"mcfs/internal/data"
)

// SolveUniformFirst implements the paper's Uniform First (UF) strategy
// for nonuniform instances (§VII-F): first select facilities as if every
// capacity equaled the (ceiling of the) average capacity — which may
// expose better locations unbiased by capacity skew — then rebuild the
// assignment against the true nonuniform capacities in a single optimal
// bipartite matching step, repairing the selection per component if the
// true capacities fall short. Falls back to the Direct strategy when the
// uniformized instance is infeasible.
func SolveUniformFirst(inst *data.Instance, opt Options) (*data.Solution, error) {
	return SolveUniformFirstCtx(context.Background(), inst, opt)
}

// SolveUniformFirstCtx is SolveUniformFirst with cooperative
// cancellation; the context is threaded through both the uniformized
// and the true-capacity solve. On cancellation it returns nil and
// ctx.Err() — never the Direct-strategy fallback, which is reserved for
// genuine infeasibility of the uniformized instance.
func SolveUniformFirstCtx(ctx context.Context, inst *data.Instance, opt Options) (*data.Solution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if ok, _ := inst.Feasible(); !ok {
		return nil, data.ErrInfeasible
	}
	if inst.L() == 0 || inst.M() == 0 {
		return SolveCtx(ctx, inst, opt)
	}
	avg := (inst.TotalCapacity() + inst.L() - 1) / inst.L()
	uniform := &data.Instance{
		G:          inst.G,
		Customers:  inst.Customers,
		Facilities: make([]data.Facility, inst.L()),
		K:          inst.K,
	}
	for j, f := range inst.Facilities {
		uniform.Facilities[j] = data.Facility{Node: f.Node, Capacity: avg}
	}
	if ok, _ := uniform.Feasible(); !ok {
		return SolveCtx(ctx, inst, opt)
	}
	uniSol, err := SolveCtx(ctx, uniform, opt)
	if err != nil {
		if errors.Is(err, data.ErrInfeasible) {
			return SolveCtx(ctx, inst, opt)
		}
		return nil, err
	}
	// Re-validate the selection against the true capacities, repairing
	// component shortfalls before the final matching. Cancellation must
	// not be mistaken for a repair failure: a cancelled repair aborts the
	// run instead of falling back to a full Direct solve.
	selection, err := CoverComponentsCtx(ctx, inst, append([]int(nil), uniSol.Selected...))
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return SolveCtx(ctx, inst, opt)
	}
	sol, err := AssignToSelectionCtx(ctx, inst, selection, opt)
	if err != nil {
		if errors.Is(err, data.ErrInfeasible) {
			return SolveCtx(ctx, inst, opt)
		}
		return nil, err
	}
	return sol, nil
}
