package dynamic

import "fmt"

// Published is an immutable view of the assignment a Reallocator is
// currently serving, built for the publish/swap read path of a serving
// process: the writer goroutine calls Publish after each repair batch
// and swaps the result into an atomic pointer, and any number of reader
// goroutines resolve queries against it without locks — nothing in a
// Published value aliases the Reallocator's mutable state.
type Published struct {
	// Objective is the total assignment distance being served.
	Objective int64
	// Selected holds the open facilities as candidate-catalogue indexes.
	Selected []int
	// Handles, Nodes and Assignment are parallel: customer Handles[i]
	// sits at network node Nodes[i] and is served by catalogue facility
	// Assignment[i].
	Handles    []int
	Nodes      []int32
	Assignment []int

	pos map[int]int // handle → index into the parallel slices
}

// Publish materializes the current assignment as an immutable view,
// applying pending departures first. Every slice and map is freshly
// allocated; the caller may share the result across goroutines freely.
func (r *Reallocator) Publish() (*Published, error) {
	if err := r.flush(); err != nil {
		return nil, err
	}
	p := &Published{
		Objective:  r.mt.TotalMatchedCost(),
		Selected:   append([]int(nil), r.selected...),
		Handles:    append([]int(nil), r.handleOf...),
		Nodes:      make([]int32, len(r.handleOf)),
		Assignment: make([]int, len(r.handleOf)),
		pos:        make(map[int]int, len(r.handleOf)),
	}
	for i, h := range p.Handles {
		facs, _ := r.mt.Matches(i)
		if len(facs) != 1 {
			return nil, fmt.Errorf("dynamic: customer %d holds %d assignments", h, len(facs))
		}
		p.Nodes[i] = r.customers[h]
		p.Assignment[i] = r.selected[facs[0]]
		p.pos[h] = i
	}
	return p, nil
}

// Customers returns the number of customers in the view.
func (p *Published) Customers() int { return len(p.Handles) }

// Lookup resolves a customer handle to its network node and assigned
// catalogue facility index; ok is false for handles not in the view.
// Safe for concurrent use (the view is immutable).
func (p *Published) Lookup(handle int) (node int32, facility int, ok bool) {
	i, ok := p.pos[handle]
	if !ok {
		return 0, 0, false
	}
	return p.Nodes[i], p.Assignment[i], true
}

// BaseObjective returns the drift baseline: the objective right after
// the last full solve, adoption, or restore.
func (r *Reallocator) BaseObjective() int64 { return r.baseObjective }
