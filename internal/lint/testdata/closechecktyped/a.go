// Package fix exercises the typed sharpening of closecheck: the file
// can hide behind an interface conversion or a helper's return value.
package fix

import (
	"io"
	"os"
)

func open(path string) *os.File {
	f, err := os.Open(path)
	if err != nil {
		return nil
	}
	return f
}

func viaInterface(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	var c io.Closer = f
	c.Close() // want "error from c.Close() is discarded"
	return nil
}

func viaHelper(path string) {
	f := open(path)
	defer f.Close() // want "deferred f.Close() discards its error"
	_ = f
}

func checked(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	return f.Close()
}
