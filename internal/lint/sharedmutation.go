package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SharedMutation enforces the bench harness's immutability contract
// (DESIGN.md §8): once an instance is handed to the worker pool, the
// *data.Instance and *graph.Graph it references are shared read-only
// across concurrently running cells, so nothing reached from a cell may
// write through them. The rule is typed and inter-procedural within
// internal/bench: it starts at every function literal submitted via
// pool.cell, classifies the provenance of each *Instance/*Graph value
// in scope (owned: built here from a composite literal, new, or a
// Clone call; shared: received from a memoized builder, captured from
// the enclosing sweep, or derived from either), follows shared values
// into same-package callees, and reports any field write, element
// write, pointer store, or copy() whose destination is rooted in a
// shared value. A shallow value copy (inst := *shared) owns its direct
// fields but not the backing arrays of its slice/map fields — writing
// copy.K is fine, writing copy.Customers[i] is a finding.
//
// The analysis is deliberately conservative where it cannot see:
// writes hidden behind method calls or out-of-package functions are
// not tracked (the race detector covers those), and construction-phase
// helpers that fill an instance before submission (builders outside
// cell closures) are out of scope by design.
type SharedMutation struct{}

// Name implements Rule.
func (SharedMutation) Name() string { return "shared-instance-mutation" }

// Doc implements Rule.
func (SharedMutation) Doc() string {
	return "no writes through a pool-shared *data.Instance/*graph.Graph after submission to the bench worker pool"
}

// Check implements Rule. The rule needs type information; without it
// (plain Load) it stays silent rather than guessing.
func (SharedMutation) Check(pkg *Package, report ReportFunc) {
	if pkg.Dir != "internal/bench" || !pkg.Typed() {
		return
	}
	c := &sharedChecker{pkg: pkg, report: report, analyzed: make(map[string]bool)}
	decls := make(map[types.Object]*declSite)
	for _, f := range pkg.Files {
		if f.Test {
			continue
		}
		for _, decl := range f.AST.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pkg.ObjectOf(fd.Name); obj != nil {
					decls[obj] = &declSite{file: f, decl: fd}
				}
			}
		}
	}
	c.decls = decls

	// Entry points: every FuncLit submitted through a .cell(...) call.
	for _, f := range pkg.Files {
		if f.Test {
			continue
		}
		f := f
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "cell" {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					c.analyze(f, lit.Type, lit.Body, nil, true)
				}
			}
			return true
		})
	}
}

// provenance is the lattice the checker tracks per value, ordered so
// that a flow-insensitive merge can take the maximum.
type provenance int

const (
	provUnknown provenance = iota
	provOwned              // freshly constructed here; writes are fine
	provBacking            // value copy of a shared object: fields owned, backing arrays shared
	provShared             // points into the pool-shared object graph
)

// declSite pairs a function declaration with its file for reporting.
type declSite struct {
	file *File
	decl *ast.FuncDecl
}

type sharedChecker struct {
	pkg      *Package
	report   ReportFunc
	decls    map[types.Object]*declSite
	analyzed map[string]bool // decl+shared-param mask, cycle/duplicate guard
}

// sharedScope is the per-function analysis state.
type sharedScope struct {
	vars map[types.Object]provenance
	defs map[types.Object]bool // objects defined inside the analyzed body
	cell bool                  // body runs inside a pool cell
}

// trackedType reports whether t is (a pointer to) data.Instance or
// graph.Graph — the two types the harness shares across cells. The
// package is matched by import-path suffix so fixture modules
// (fix/data, fix/graph) exercise the same code path as the real module.
func trackedType(t types.Type) bool {
	return isNamedType(t, true, "internal/data", "Instance") || isNamedType(t, true, "data", "Instance") ||
		isNamedType(t, true, "internal/graph", "Graph") || isNamedType(t, true, "graph", "Graph")
}

// analyze walks one function body. sharedParams maps parameter index to
// the provenance flowing in from a call site (nil for cell literals,
// whose sharing comes from capture and builder calls instead).
func (c *sharedChecker) analyze(f *File, ft *ast.FuncType, body *ast.BlockStmt, sharedParams map[int]provenance, cell bool) {
	sc := &sharedScope{vars: make(map[types.Object]provenance), defs: make(map[types.Object]bool), cell: cell}
	idx := 0
	if ft.Params != nil {
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				obj := c.pkg.ObjectOf(name)
				if obj != nil {
					sc.defs[obj] = true
					if p, ok := sharedParams[idx]; ok {
						sc.vars[obj] = p
					}
				}
				idx++
			}
		}
	}

	// Two propagation passes so a later alias (g := inst.G before inst
	// is classified by a subsequent pattern) still resolves; merging
	// takes the maximum, so over-approximation can only surface more
	// writes, never hide one.
	for range [2]struct{}{} {
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				c.propagate(sc, n)
			case *ast.ValueSpec:
				for i, name := range n.Names {
					obj := c.pkg.ObjectOf(name)
					if obj == nil {
						continue
					}
					sc.defs[obj] = true
					if i < len(n.Values) {
						c.merge(sc, obj, c.provenanceOf(sc, n.Values[i]))
					}
				}
			}
			return true
		})
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				c.checkWrite(f, sc, lhs, n.Pos())
			}
		case *ast.IncDecStmt:
			c.checkWrite(f, sc, n.X, n.Pos())
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "copy" && len(n.Args) > 0 {
				if p := c.provenanceOf(sc, n.Args[0]); p == provShared || p == provBacking {
					c.report(f, n.Pos(),
						"copy() into a pool-shared instance's backing array; cells must treat submitted instances as read-only (clone or rebuild instead)")
				}
			}
			c.follow(f, sc, n)
		}
		return true
	})
}

// propagate records provenance flowing through one assignment.
func (c *sharedChecker) propagate(sc *sharedScope, as *ast.AssignStmt) {
	record := func(lhs ast.Expr, p provenance) {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
			if obj := c.pkg.ObjectOf(id); obj != nil {
				sc.defs[obj] = true
				c.merge(sc, obj, p)
			}
		}
	}
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// Multi-value call: the first result carries the instance.
		record(as.Lhs[0], c.provenanceOf(sc, as.Rhs[0]))
		for _, lhs := range as.Lhs[1:] {
			record(lhs, provUnknown)
		}
		return
	}
	if len(as.Lhs) == len(as.Rhs) {
		for i := range as.Lhs {
			record(as.Lhs[i], c.provenanceOf(sc, as.Rhs[i]))
		}
	}
}

func (c *sharedChecker) merge(sc *sharedScope, obj types.Object, p provenance) {
	if p > sc.vars[obj] {
		sc.vars[obj] = p
	}
}

// provenanceOf classifies an expression. Reference-typed projections
// (pointer, slice, map fields and elements) of a shared or
// backing-shared value point into the shared object graph; value-typed
// projections of a shared pointer are reads of shared memory that
// become local copies on assignment, hence provBacking.
func (c *sharedChecker) provenanceOf(sc *sharedScope, e ast.Expr) provenance {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := c.pkg.ObjectOf(e)
		if obj == nil {
			return provUnknown
		}
		if p, ok := sc.vars[obj]; ok && p != provUnknown {
			return p
		}
		// A tracked value captured from outside a cell literal crossed
		// into the pool with the submission: shared by definition.
		if sc.cell && !sc.defs[obj] && trackedType(obj.Type()) {
			return provShared
		}
		return provUnknown
	case *ast.SelectorExpr:
		base := c.provenanceOf(sc, e.X)
		t := c.pkg.TypeOf(e)
		switch base {
		case provShared, provBacking:
			if isReferenceType(t) {
				return provShared
			}
			return provBacking
		case provOwned:
			return provOwned
		}
		// Unqualified selector (captured struct field, package var) of a
		// tracked type inside a cell: shared, same argument as idents.
		if sc.cell && trackedType(t) && !isPkgName(c.pkg, e.X) {
			return provShared
		}
		return provUnknown
	case *ast.IndexExpr:
		base := c.provenanceOf(sc, e.X)
		if base == provShared || base == provBacking {
			if isReferenceType(c.pkg.TypeOf(e)) {
				return provShared
			}
			return provBacking
		}
		return base
	case *ast.StarExpr:
		if p := c.provenanceOf(sc, e.X); p == provShared {
			return provBacking // value copy of the shared object
		} else if p != provUnknown {
			return p
		}
		return provUnknown
	case *ast.UnaryExpr:
		return c.provenanceOf(sc, e.X) // &x shares x's classification
	case *ast.CompositeLit:
		return provOwned
	case *ast.CallExpr:
		return c.callProvenance(sc, e)
	case *ast.TypeAssertExpr:
		return c.provenanceOf(sc, e.X)
	}
	return provUnknown
}

// callProvenance classifies a call result: constructions (new, Clone)
// are owned; inside a cell any other call yielding a tracked type hands
// out the pool-shared value (memoized builders, captured closures);
// elsewhere a call is shared only when a shared value flows in.
func (c *sharedChecker) callProvenance(sc *sharedScope, call *ast.CallExpr) provenance {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "new" {
			return provOwned
		}
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Clone" {
			return provOwned
		}
	}
	rt := firstResultType(c.pkg.TypeOf(call))
	if !trackedType(rt) {
		return provUnknown
	}
	if sc.cell {
		return provShared
	}
	for _, arg := range call.Args {
		if p := c.provenanceOf(sc, arg); p == provShared || p == provBacking {
			return provShared
		}
	}
	return provUnknown
}

// checkWrite reports lhs when it stores into pool-shared memory.
// Rebinding a local variable (inst = other) is not a write to the
// object and stays silent; field writes need a shared pointer base,
// element writes fire on a shared backing array even when the
// enclosing struct was copied by value.
func (c *sharedChecker) checkWrite(f *File, sc *sharedScope, lhs ast.Expr, pos token.Pos) {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if c.provenanceOf(sc, e.X) == provShared {
			c.report(f, pos,
				"write to field %s of a pool-shared instance after submission; cells must treat submitted instances as read-only (take a shallow copy before the pool, as runCoworkingSweep does)", e.Sel.Name)
		}
	case *ast.IndexExpr:
		if p := c.provenanceOf(sc, e.X); p == provShared || p == provBacking {
			c.report(f, pos,
				"element write into a pool-shared backing array after submission; a shallow instance copy still shares its slices — clone the slice before mutating")
		}
	case *ast.StarExpr:
		if c.provenanceOf(sc, e.X) == provShared {
			c.report(f, pos,
				"store through a pointer into a pool-shared instance after submission; cells must treat submitted instances as read-only")
		}
	}
}

// follow propagates shared arguments into same-package callees and
// analyzes them with the corresponding parameters marked shared.
func (c *sharedChecker) follow(f *File, sc *sharedScope, call *ast.CallExpr) {
	var callee types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		callee = c.pkg.ObjectOf(fun)
	case *ast.SelectorExpr:
		// Methods are opaque to this pass (see rule doc).
		return
	}
	site, ok := c.decls[callee]
	if !ok {
		return
	}
	shared := make(map[int]provenance)
	key := ""
	for i, arg := range call.Args {
		if p := c.provenanceOf(sc, arg); p == provShared || p == provBacking {
			shared[i] = p
			key += string(rune('a'+i%26)) + string(rune('0'+int(p)))
		}
	}
	if len(shared) == 0 {
		return
	}
	key = callee.Name() + ":" + key
	if c.analyzed[key] {
		return
	}
	c.analyzed[key] = true
	c.analyze(site.file, site.decl.Type, site.decl.Body, shared, false)
}

// isReferenceType reports whether values of t share underlying storage
// when copied (pointers, slices, maps).
func isReferenceType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch types.Unalias(t).Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}

// isPkgName reports whether e is a package qualifier identifier.
func isPkgName(pkg *Package, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, ok = pkg.ObjectOf(id).(*types.PkgName)
	return ok
}
