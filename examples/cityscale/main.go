// Cityscale demonstrates WMA's scalability trend (the paper's Fig. 10
// shape): on an Aalborg-like road network, the customer and facility
// sets grow with fixed occupancy o = 0.5 (c = 20, k = 0.1·m, F_p = V),
// and WMA's runtime stays aligned with the lightweight Hilbert baseline
// while delivering a better objective.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"mcfs"
)

func main() {
	prm, err := mcfs.CityPreset("aalborg", 0.1, 13)
	if err != nil {
		log.Fatal(err)
	}
	g, err := mcfs.GenerateCity(prm)
	if err != nil {
		log.Fatal(err)
	}
	st := mcfs.NetworkStats(g)
	fmt.Printf("aalborg-like network: %d nodes, %d edges, avg degree %.2f, avg edge %.1f m\n\n",
		st.Nodes, st.Edges, st.AvgDegree, st.AvgEdgeLength)

	sweep := []int{100, 200, 400, 800}
	if os.Getenv("MCFS_EXAMPLE_QUICK") != "" {
		sweep = sweep[:2]
	}
	pool := mcfs.LargestComponent(g)
	fmt.Printf("%8s %6s  %14s %10s  %14s %10s\n", "m", "k", "WMA obj", "WMA time", "Hilbert obj", "Hil time")
	for _, m := range sweep {
		k := m / 10
		rng := rand.New(rand.NewSource(int64(m)))
		inst := &mcfs.Instance{
			G:          g,
			Customers:  mcfs.SampleCustomersFrom(pool, m, rng),
			Facilities: mcfs.NodesFacilities(pool, mcfs.UniformCapacity(20)),
			K:          k,
		}
		wStart := time.Now()
		w, err := mcfs.Solve(inst)
		if err != nil {
			log.Fatal(err)
		}
		wTime := time.Since(wStart)
		hStart := time.Now()
		h, err := mcfs.SolveHilbert(inst)
		if err != nil {
			log.Fatal(err)
		}
		hTime := time.Since(hStart)
		fmt.Printf("%8d %6d  %14d %10s  %14d %10s\n",
			m, k, w.Objective, wTime.Round(time.Millisecond), h.Objective, hTime.Round(time.Millisecond))
	}
}
