package graph

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// longLine builds a path graph with enough nodes that the hot loops are
// guaranteed to cross a cancellation checkpoint (every ~4096 heap pops).
func longLine(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder(n, false)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1), 1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func cancelledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func TestDijkstraCtxCancelled(t *testing.T) {
	g := longLine(t, 3*checkEvery)
	dist, err := g.DijkstraCtx(cancelledCtx(), 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if dist != nil {
		t.Fatal("cancelled Dijkstra returned distances")
	}
}

func TestDijkstraCtxUncancelledIdentical(t *testing.T) {
	g := longLine(t, 2*checkEvery)
	want := g.Dijkstra(0)
	got, err := g.DijkstraCtx(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("DijkstraCtx differs from Dijkstra on an uncancelled run")
	}
}

func TestMultiSourceDijkstraCtxCancelled(t *testing.T) {
	g := longLine(t, 3*checkEvery)
	_, _, err := g.MultiSourceDijkstraCtx(cancelledCtx(), []int32{0, int32(g.N() - 1)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestDijkstraWithinCtxCancelled(t *testing.T) {
	g := longLine(t, 3*checkEvery)
	_, err := g.DijkstraWithinCtx(cancelledCtx(), 0, int64(g.N()))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestNNSearcherCtxCancelled(t *testing.T) {
	n := 3 * checkEvery
	g := longLine(t, n)
	// The only candidate sits at the far end, so the search must pop the
	// whole path — far beyond the first checkpoint — before finding it.
	mask := make([]bool, n)
	mask[n-1] = true
	s := NewNNSearcherCtx(cancelledCtx(), g, 0, mask)
	if _, _, ok := s.Next(); ok {
		t.Fatal("cancelled searcher yielded a neighbor")
	}
	if err := s.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", err)
	}
	// Uncancelled searcher over the same input still finds the candidate.
	s2 := NewNNSearcherCtx(context.Background(), g, 0, mask)
	node, d, ok := s2.Next()
	if !ok || node != int32(n-1) || d != int64(n-1) {
		t.Fatalf("Next() = (%d, %d, %v), want (%d, %d, true)", node, d, ok, n-1, n-1)
	}
}
