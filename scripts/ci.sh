#!/bin/sh
# Tier-1 verification gate: formatting, vet, and the full test suite
# under the race detector (the parallel bench harness depends on the
# audited immutability of shared instances — keep -race in the loop).
set -eu
cd "$(dirname "$0")/.."

fmt=$(gofmt -l -s .)
if [ -n "$fmt" ]; then
	echo "gofmt -s needed on:" >&2
	echo "$fmt" >&2
	exit 1
fi

go vet ./...
go build ./...

# Project static analysis (DESIGN.md §10): machine-checks the
# concurrency/cancellation/determinism invariants with full go/types
# information. Non-zero on any finding. The cold run (-nocache -timing)
# is checked against the wall-clock budget in scripts/lint_budget.txt:
# an overrun warns by default and fails with MCFS_LINT_STRICT=1
# (mirroring the perf smoke's warn/strict split, since shared runners
# are noisy). The second run hits the result cache and demonstrates the
# warm-path speedup in the CI log.
lintbin=$(mktemp -t mcfslint_XXXXXX)
lintlog=$(mktemp -t mcfslint_log_XXXXXX)
go build -o "$lintbin" ./cmd/mcfslint
if ! "$lintbin" -nocache -timing ./... 2>"$lintlog"; then
	cat "$lintlog" >&2
	rm -f "$lintbin" "$lintlog"
	exit 1
fi
cat "$lintlog" >&2
lint_ms=$(awk '/^mcfslint: total_ms / { print $3 }' "$lintlog")
lint_budget=$(cat scripts/lint_budget.txt)
echo "mcfslint: cold run ${lint_ms}ms (budget ${lint_budget}ms)"
if [ -n "$lint_ms" ] && [ "$lint_ms" -gt "$lint_budget" ]; then
	if [ "${MCFS_LINT_STRICT-}" = "1" ]; then
		echo "mcfslint: cold run ${lint_ms}ms exceeds the ${lint_budget}ms budget (strict mode; scripts/lint_budget.txt)" >&2
		rm -f "$lintbin" "$lintlog"
		exit 1
	fi
	echo "mcfslint: WARNING: cold run ${lint_ms}ms exceeds the ${lint_budget}ms budget (warn-only; set MCFS_LINT_STRICT=1 to fail)" >&2
fi
echo "mcfslint: warm (cached) run"
"$lintbin" -timing ./...
rm -f "$lintbin" "$lintlog"

# Full suite under the race detector, with a coverage profile over the
# library packages. Coverage is gated against the recorded baseline:
# new code lands with tests or the number in coverage_baseline.txt is
# raised/lowered deliberately in the same commit, never silently.
covprofile=$(mktemp)
go test -race -coverprofile="$covprofile" ./internal/...
go test -race . ./cmd/... ./examples/...

# mcfsd serving smoke (DESIGN.md §12): boots the daemon on a
# quickstart-scale instance, queries an assignment, captures a snapshot,
# restarts from it, verifies the published objective is identical, and
# checks the SIGTERM drain exits cleanly. The test also runs as part of
# the ./cmd/ suite above; the named step keeps the serving path visible
# in CI output when it breaks.
echo "mcfsd smoke: serve -> snapshot -> restart -> identical objective"
go test -race -run '^TestMCFSDServeSnapshotRestart$' -count=1 ./cmd/ >/dev/null

# /metrics smoke (DESIGN.md §13): boot a real daemon, curl the
# Prometheus exposition, and fail when it is empty or unparseable.
# Every non-comment line must be "name value" with a numeric value —
# the same shape the in-process serve tests assert, re-checked here
# through an actual socket.
echo "mcfsd smoke: /metrics exposition"
smokedir=$(mktemp -d)
go build -o "$smokedir" ./cmd/mcfsgen ./cmd/mcfsd
"$smokedir/mcfsgen" -type uniform -n 400 -alpha 2.5 -m 20 -l 60 -cap 8 -k 6 -seed 7 -o "$smokedir/inst.mcfs"
"$smokedir/mcfsd" -in "$smokedir/inst.mcfs" -addr 127.0.0.1:0 -quiet >"$smokedir/out.log" 2>&1 &
mcfsd_pid=$!
metrics_url=""
for _ in $(seq 1 50); do
	metrics_url=$(awk 'match($0, /listening on http:\/\/[^ ]+/) { print substr($0, RSTART+13, RLENGTH-13) }' "$smokedir/out.log")
	[ -n "$metrics_url" ] && break
	sleep 0.1
done
if [ -z "$metrics_url" ]; then
	echo "mcfsd smoke: daemon never printed its address" >&2
	cat "$smokedir/out.log" >&2
	kill "$mcfsd_pid" 2>/dev/null || true
	rm -rf "$smokedir"
	exit 1
fi
curl -fsS "$metrics_url/metrics" >"$smokedir/metrics.txt"
kill "$mcfsd_pid"
wait "$mcfsd_pid" 2>/dev/null || true
if ! awk '
	/^#/ { next }
	NF != 2 || $2 !~ /^-?[0-9.eE+]+$/ { bad++; print "unparseable metrics line: " $0 > "/dev/stderr" }
	{ lines++ }
	END { exit (lines == 0 || bad > 0) }
' "$smokedir/metrics.txt"; then
	echo "mcfsd smoke: /metrics empty or unparseable" >&2
	rm -rf "$smokedir"
	exit 1
fi
if ! grep -q '^mcfs_' "$smokedir/metrics.txt" || ! grep -q '^mcfsd_' "$smokedir/metrics.txt"; then
	echo "mcfsd smoke: /metrics missing solver or daemon metric families" >&2
	rm -rf "$smokedir"
	exit 1
fi
echo "mcfsd smoke: /metrics OK ($(grep -vc '^#' "$smokedir/metrics.txt") samples)"
rm -rf "$smokedir"

# Crash-recovery smoke (DESIGN.md §12): run the daemon with a fast
# periodic snapshot policy, churn the population, SIGKILL it (no drain),
# plant a corrupt generation on top, and restart from the generation
# directory. Recovery must skip the corrupt file and republish exactly
# the settled pre-crash objective. The same property runs in-process as
# TestMCFSDCrashRecovery; this step proves it through real processes
# and a real kill -9.
echo "mcfsd smoke: crash -> restore newest generation"
crashdir=$(mktemp -d)
go build -o "$crashdir" ./cmd/mcfsgen ./cmd/mcfsd
"$crashdir/mcfsgen" -type uniform -n 400 -alpha 2.5 -m 20 -l 60 -cap 8 -k 6 -seed 11 -o "$crashdir/inst.mcfs"
"$crashdir/mcfsd" -in "$crashdir/inst.mcfs" -addr 127.0.0.1:0 -quiet \
	-snapshot-every 50ms -snapshot-dir "$crashdir/snaps" >"$crashdir/out.log" 2>&1 &
mcfsd_pid=$!
crash_url=""
for _ in $(seq 1 50); do
	crash_url=$(awk 'match($0, /listening on http:\/\/[^ ]+/) { print substr($0, RSTART+13, RLENGTH-13) }' "$crashdir/out.log")
	[ -n "$crash_url" ] && break
	sleep 0.1
done
if [ -z "$crash_url" ]; then
	echo "mcfsd smoke: crash daemon never printed its address" >&2
	cat "$crashdir/out.log" >&2
	kill "$mcfsd_pid" 2>/dev/null || true
	rm -rf "$crashdir"
	exit 1
fi
node=$(curl -fsS "$crash_url/assign?customer=0" | sed -n 's/.*"node": *\([0-9][0-9]*\).*/\1/p' | head -n 1)
curl -fsS -X POST -H 'Content-Type: application/json' \
	-d "{\"nodes\":[$node,$node,$node]}" "$crash_url/arrivals" >/dev/null
pre_objective=$(curl -fsS "$crash_url/stats" | sed -n 's/.*"objective": *\(-\{0,1\}[0-9][0-9]*\).*/\1/p' | head -n 1)
# Wait for two more generations after the churn settled: the snapshot
# loop is sequential, so the second one is guaranteed to capture the
# post-churn state (see TestMCFSDCrashRecovery).
newest_gen() {
	ls "$crashdir/snaps" 2>/dev/null |
		sed -n 's/^mcfsd-0*\([0-9][0-9]*\)\.snap\.json$/\1/p' | sort -n | tail -n 1
}
base_gen=$(newest_gen)
base_gen=${base_gen:-0}
for _ in $(seq 1 100); do
	g=$(newest_gen)
	[ -n "$g" ] && [ "$g" -ge $((base_gen + 2)) ] && break
	sleep 0.1
done
g=$(newest_gen)
if [ -z "$g" ] || [ "$g" -lt $((base_gen + 2)) ]; then
	echo "mcfsd smoke: snapshot policy stalled (newest generation ${g:-none})" >&2
	kill "$mcfsd_pid" 2>/dev/null || true
	rm -rf "$crashdir"
	exit 1
fi
kill -9 "$mcfsd_pid"
wait "$mcfsd_pid" 2>/dev/null || true
printf '{torn' >"$crashdir/snaps/mcfsd-99999999.snap.json"
"$crashdir/mcfsd" -in "$crashdir/inst.mcfs" -addr 127.0.0.1:0 -quiet \
	-restore "$crashdir/snaps" >"$crashdir/out2.log" 2>&1 &
mcfsd_pid=$!
crash_url=""
for _ in $(seq 1 50); do
	crash_url=$(awk 'match($0, /listening on http:\/\/[^ ]+/) { print substr($0, RSTART+13, RLENGTH-13) }' "$crashdir/out2.log")
	[ -n "$crash_url" ] && break
	sleep 0.1
done
if [ -z "$crash_url" ]; then
	echo "mcfsd smoke: restored daemon never printed its address" >&2
	cat "$crashdir/out2.log" >&2
	kill "$mcfsd_pid" 2>/dev/null || true
	rm -rf "$crashdir"
	exit 1
fi
post_objective=$(curl -fsS "$crash_url/stats" | sed -n 's/.*"objective": *\(-\{0,1\}[0-9][0-9]*\).*/\1/p' | head -n 1)
kill "$mcfsd_pid"
wait "$mcfsd_pid" 2>/dev/null || true
if ! grep -q 'skipping corrupt snapshot' "$crashdir/out2.log"; then
	echo "mcfsd smoke: restore did not report the planted corrupt generation" >&2
	cat "$crashdir/out2.log" >&2
	rm -rf "$crashdir"
	exit 1
fi
if [ -z "$pre_objective" ] || [ "$pre_objective" != "$post_objective" ]; then
	echo "mcfsd smoke: crash recovery drifted: objective ${pre_objective:-?} -> ${post_objective:-?}" >&2
	rm -rf "$crashdir"
	exit 1
fi
echo "mcfsd smoke: crash recovery OK (objective $post_objective preserved)"
rm -rf "$crashdir"

total=$(go tool cover -func="$covprofile" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')
baseline=$(cat scripts/coverage_baseline.txt)
rm -f "$covprofile"
echo "coverage: internal/... total ${total}% (baseline ${baseline}%)"
if awk -v t="$total" -v b="$baseline" 'BEGIN { exit !(t < b) }'; then
	echo "coverage gate: ${total}% is below the recorded baseline ${baseline}% (scripts/coverage_baseline.txt)" >&2
	exit 1
fi

# Bounded fuzz smoke: each fuzz target gets a few seconds of actual
# fuzzing (not just the seed corpus) so a regression that only random
# inputs can reach still trips CI. Findings are written to the package's
# testdata/fuzz corpus by the fuzzer and reproduce as regular tests.
for target in FuzzMatcher=./internal/bipartite FuzzDijkstra=./internal/graph FuzzReadInstance=./internal/data FuzzSnapshotRestore=./internal/dynamic; do
	name=${target%%=*}
	pkg=${target#*=}
	echo "fuzz smoke: $name"
	go test -run='^$' -fuzz="^${name}\$" -fuzztime=5s "$pkg" >/dev/null
done

# Opt-in perf smoke (DESIGN.md §11): MCFS_PERF_SMOKE=1 runs the perf
# suite in its reduced -quick configuration and diffs it against the
# committed quick baseline. Timings on shared CI runners are noisy, so a
# regression only warns by default; set MCFS_PERF_STRICT=1 locally to
# make it fail the gate. The full (non-quick) committed BENCH_*.json
# trajectory is for scripts/benchcmp.sh between PRs, not for this hook.
if [ "${MCFS_PERF_SMOKE-}" = "1" ]; then
	perfbase=$(ls results/BENCH_quick_*.json 2>/dev/null | sort | tail -n 1)
	perfout=$(mktemp -t bench_smoke_XXXXXX.json)
	echo "perf smoke: running quick suite"
	scripts/bench.sh "$perfout" -quick
	if [ -n "$perfbase" ]; then
		echo "perf smoke: comparing against $perfbase"
		if ! scripts/benchcmp.sh "$perfbase" "$perfout"; then
			if [ "${MCFS_PERF_STRICT-}" = "1" ]; then
				echo "perf smoke: regression beyond threshold (strict mode)" >&2
				rm -f "$perfout"
				exit 1
			fi
			echo "perf smoke: WARNING: regression beyond threshold (warn-only; set MCFS_PERF_STRICT=1 to fail)" >&2
		fi
	else
		echo "perf smoke: no committed results/BENCH_quick_*.json baseline; skipping comparison"
	fi
	rm -f "$perfout"
	# Recorder-overhead check (DESIGN.md §13): the instrumented Dijkstra
	# with no recorder attached must stay near the uninstrumented path.
	# The ns/op comparison against the committed baseline happens through
	# the quick-suite diff above; this run keeps the three variants
	# (disabled/enabled/raw add) visible in the CI log.
	echo "perf smoke: recorder overhead benchmark"
	go test -run '^$' -bench '^BenchmarkRecorderOverhead$' -benchtime=0.5s -count=1 ./internal/graph/
fi

# Smoke-run every example in quick mode. They run in a scratch dir so
# the artifacts some of them write (SVG/GeoJSON) stay out of the tree.
exdir=$(mktemp -d)
trap 'rm -rf "$exdir"' EXIT
go build -o "$exdir" ./examples/...
for ex in examples/*/; do
	name=$(basename "$ex")
	echo "example: $name"
	(cd "$exdir" && MCFS_EXAMPLE_QUICK=1 "./$name" >/dev/null)
done

echo "ci: OK"
