package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// This file computes the cross-package half of the provenance engine:
// per-package summaries of what each function does with the data its
// parameters point into. The intra-package pass (sharedmutation.go,
// publishedimmutability.go) stops at package boundaries; summaries let
// an importer see through an exported callee without re-analyzing it —
// "does F write through parameter 2?" and "does F's result alias a
// parameter, or is it freshly allocated?" become table lookups.
//
// Summaries are three-valued on writes (no / maybe / yes) and
// consumers only act on the definite ends: a provenance rule reports a
// call site when the summary *proves* a write through a shared
// argument (escYes), and treats a result as owned only when every
// return path *provably* allocates (resultFresh). Everything uncertain
// stays escMaybe/unknown, which consumers treat exactly like the old
// opaque-call behavior — the summaries can only sharpen the analysis,
// never destabilize it.

// escape is the three-valued write-through verdict for one parameter.
type escape int

const (
	escNo    escape = iota // no evidence of a write through the parameter
	escMaybe               // the parameter leaks somewhere the analysis cannot see
	escYes                 // the function (or a callee) definitely writes through it
)

func (e escape) String() string {
	switch e {
	case escYes:
		return "yes"
	case escMaybe:
		return "maybe"
	}
	return "no"
}

// funcSummary describes one function or method. Parameter slots are
// ordered receiver-first for methods; only the first result is
// tracked (the position tracked instance types travel in throughout
// the module).
type funcSummary struct {
	params      []types.Object // receiver (if any), then declared params
	writes      []escape       // per parameter slot
	resultAlias uint64         // param-slot bitmask the first result may alias
	resultFresh bool           // every return path freshly allocates result 0
}

// pkgSummary indexes a package's function summaries by summaryKey.
type pkgSummary struct {
	funcs map[string]*funcSummary
}

// summaryKey names a function within its package: "Func" for
// package-level functions, "Type.Method" for methods (pointer and
// value receivers share a key — a types.Func's receiver type is
// normalized here).
func summaryKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := types.Unalias(t).(*types.Named); ok {
		return named.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// summarizePackage computes every function's summary, iterating the
// package-local call graph to a fixpoint so a write that happens two
// same-package calls down still surfaces on the entry function's
// parameter. Cross-package callees resolve against the summaries of
// packages earlier in import order (m.summaries).
func summarizePackage(m *Module, pkg *Package) *pkgSummary {
	ps := &pkgSummary{funcs: make(map[string]*funcSummary)}
	type workItem struct {
		key  string
		site *declSite
	}
	var work []workItem
	for obj, site := range pkg.funcDecls() {
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		key := summaryKey(fn)
		ps.funcs[key] = &funcSummary{params: summaryParams(pkg, site.decl)}
		ps.funcs[key].writes = make([]escape, len(ps.funcs[key].params))
		work = append(work, workItem{key, site})
	}
	sort.Slice(work, func(i, j int) bool { return work[i].key < work[j].key })

	// Monotone fixpoint: escape values only increase, so this
	// terminates; the bound is a backstop against analysis bugs.
	for round := 0; round < 16; round++ {
		changed := false
		for _, w := range work {
			if summarizeFunc(m, pkg, ps, ps.funcs[w.key], w.site.decl) {
				changed = true
			}
		}
		if changed {
			continue
		}
		return ps
	}
	return ps
}

// summaryParams collects the parameter slot objects: receiver first.
func summaryParams(pkg *Package, fd *ast.FuncDecl) []types.Object {
	var params []types.Object
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				params = append(params, pkg.ObjectOf(name))
			}
		}
	}
	collect(fd.Recv)
	collect(fd.Type.Params)
	return params
}

// aliasFact is the summary lattice: bitmasks over parameter slots.
// shared bits mean the value points into the parameter's object graph;
// backing bits mean it is a value copy whose reference fields still do.
type aliasFact struct {
	shared, backing uint64
}

func (a aliasFact) union(b aliasFact) aliasFact {
	return aliasFact{shared: a.shared | b.shared, backing: a.backing | b.backing}
}

func (a aliasFact) zero() bool { return a.shared == 0 && a.backing == 0 }

// summarizeFunc recomputes one function's summary facts in place and
// reports whether anything increased. The alias propagation is
// flow-insensitive (two joining passes — summaries answer "may", so
// strong updates would be unsound here anyway).
func summarizeFunc(m *Module, pkg *Package, ps *pkgSummary, fs *funcSummary, fd *ast.FuncDecl) bool {
	aliases := make(map[types.Object]aliasFact, len(fs.params))
	for i, p := range fs.params {
		if p == nil || i >= 64 {
			continue
		}
		switch paramEntryKind(p.Type()) {
		case provShared:
			aliases[p] = aliasFact{shared: 1 << uint(i)}
		case provBacking:
			aliases[p] = aliasFact{backing: 1 << uint(i)}
		}
	}

	sc := &summaryScan{m: m, pkg: pkg, ps: ps, aliases: aliases}
	for range [2]struct{}{} {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				sc.propagate(n)
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) {
						sc.record(name, sc.factOf(n.Values[i]))
					}
				}
			case *ast.RangeStmt:
				elem := sc.project(sc.factOf(n.X), pkg.TypeOf(n.Value))
				if id, ok := n.Value.(*ast.Ident); ok {
					sc.record(id, elem)
				}
			}
			return true
		})
	}

	changed := false
	raise := func(mask uint64, to escape) {
		for i := range fs.params {
			if i < 64 && mask&(1<<uint(i)) != 0 && fs.writes[i] < to {
				fs.writes[i] = to
				changed = true
			}
		}
	}
	sc.raise = raise

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				sc.checkWrite(lhs)
			}
			// A parameter stored into something that is not itself
			// parameter-rooted (a global, an escaping struct, a map)
			// leaks beyond the analysis: demote to maybe.
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) {
					if _, isIdent := ast.Unparen(n.Lhs[i]).(*ast.Ident); isIdent {
						continue
					}
				}
				if f := sc.factOf(rhs); !f.zero() {
					raise(f.shared|f.backing, escMaybe)
				}
			}
		case *ast.IncDecStmt:
			sc.checkWrite(n.X)
		case *ast.SendStmt:
			if f := sc.factOf(n.Value); !f.zero() {
				raise(f.shared|f.backing, escMaybe)
			}
		case *ast.CallExpr:
			sc.checkCall(n)
		case *ast.ReturnStmt:
			sc.checkReturn(fd, n)
		case *ast.FuncLit:
			// A closure may capture and write a parameter after this
			// function returns; anything parameter-rooted it mentions
			// is at least maybe-escaped, and a definite write inside
			// is still a definite write.
			ast.Inspect(n.Body, func(inner ast.Node) bool {
				switch inner := inner.(type) {
				case *ast.AssignStmt:
					for _, lhs := range inner.Lhs {
						sc.checkWrite(lhs)
					}
				case *ast.IncDecStmt:
					sc.checkWrite(inner.X)
				case *ast.CallExpr:
					sc.checkCall(inner)
				case *ast.Ident:
					if f, ok := sc.aliases[pkg.ObjectOf(inner)]; ok && !f.zero() {
						raise(f.shared|f.backing, escMaybe)
					}
				}
				return true
			})
			return false
		}
		return true
	})

	// Bare `return` with named results: the named object's fact counts.
	if fd.Type.Results != nil && len(fd.Type.Results.List) > 0 {
		// handled per ReturnStmt in checkReturn
		_ = fd
	}
	if sc.sawReturn && sc.allFresh && !fs.resultFresh {
		fs.resultFresh = true
		changed = true
	}
	if sc.resultAlias&^fs.resultAlias != 0 {
		fs.resultAlias |= sc.resultAlias
		changed = true
	}
	return changed
}

// paramEntryKind classifies how a parameter's own value relates to the
// caller's object graph: reference types point straight into it
// (shared), struct values copy the fields but share the backing arrays
// of any reference fields (backing), and pure scalars carry nothing.
func paramEntryKind(t types.Type) provenance {
	if t == nil {
		return provUnknown
	}
	switch u := types.Unalias(t).Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface:
		return provShared
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if paramEntryKind(u.Field(i).Type()) != provUnknown {
				return provBacking
			}
		}
	case *types.Array:
		if paramEntryKind(u.Elem()) != provUnknown {
			return provBacking
		}
	}
	return provUnknown
}

// summaryScan is the per-function working state of summarizeFunc.
type summaryScan struct {
	m       *Module
	pkg     *Package
	ps      *pkgSummary
	aliases map[types.Object]aliasFact
	raise   func(mask uint64, to escape)

	sawReturn   bool
	allFresh    bool
	resultAlias uint64
}

func (sc *summaryScan) record(name *ast.Ident, f aliasFact) {
	if f.zero() || name.Name == "_" {
		return
	}
	obj := sc.pkg.ObjectOf(name)
	if obj == nil {
		return
	}
	sc.aliases[obj] = sc.aliases[obj].union(f)
}

func (sc *summaryScan) propagate(as *ast.AssignStmt) {
	if len(as.Lhs) == len(as.Rhs) {
		for i := range as.Lhs {
			if id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok {
				sc.record(id, sc.factOf(as.Rhs[i]))
			}
		}
		return
	}
	if len(as.Rhs) == 1 {
		// Multi-value call or type assertion: the first value carries
		// the tracked position.
		if id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident); ok {
			sc.record(id, sc.factOf(as.Rhs[0]))
		}
	}
}

// project applies the provenance projection rules to a fact: a
// reference-typed projection of parameter-rooted data still points into
// it; a value-typed projection becomes a backing copy.
func (sc *summaryScan) project(base aliasFact, t types.Type) aliasFact {
	if base.zero() {
		return base
	}
	mask := base.shared | base.backing
	if isReferenceType(t) {
		return aliasFact{shared: mask}
	}
	return aliasFact{backing: mask}
}

// factOf classifies an expression against the current alias map.
func (sc *summaryScan) factOf(e ast.Expr) aliasFact {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return sc.aliases[sc.pkg.ObjectOf(e)]
	case *ast.SelectorExpr:
		return sc.project(sc.factOf(e.X), sc.pkg.TypeOf(e))
	case *ast.IndexExpr:
		return sc.project(sc.factOf(e.X), sc.pkg.TypeOf(e))
	case *ast.SliceExpr:
		return sc.factOf(e.X)
	case *ast.StarExpr:
		base := sc.factOf(e.X)
		if base.zero() {
			return base
		}
		return aliasFact{backing: base.shared | base.backing}
	case *ast.UnaryExpr:
		return sc.factOf(e.X)
	case *ast.TypeAssertExpr:
		return sc.factOf(e.X)
	case *ast.CallExpr:
		return sc.callFact(e)
	}
	return aliasFact{}
}

// callFact maps a call's argument facts through the callee's summary
// (when known) to the fact of its first result.
func (sc *summaryScan) callFact(call *ast.CallExpr) aliasFact {
	callee, recv := sc.resolveCallee(call)
	if callee == nil {
		return aliasFact{}
	}
	cs := sc.lookup(callee)
	if cs == nil {
		return aliasFact{}
	}
	if cs.resultFresh {
		return aliasFact{}
	}
	var out aliasFact
	args := callArgs(call, recv)
	for slot, arg := range args {
		if slot >= 64 || cs.resultAlias&(1<<uint(slot)) == 0 {
			continue
		}
		f := sc.factOf(arg)
		out.shared |= f.shared
		out.backing |= f.backing
	}
	return out
}

// checkWrite raises definite write verdicts for a store whose
// destination is parameter-rooted.
func (sc *summaryScan) checkWrite(lhs ast.Expr) {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if f := sc.factOf(e.X); f.shared != 0 {
			sc.raise(f.shared, escYes)
		}
	case *ast.IndexExpr:
		if f := sc.factOf(e.X); !f.zero() {
			sc.raise(f.shared|f.backing, escYes)
		}
	case *ast.StarExpr:
		if f := sc.factOf(e.X); f.shared != 0 {
			sc.raise(f.shared, escYes)
		}
	}
}

// checkCall propagates write verdicts through the call graph: a
// parameter passed where a summarized callee writes is a definite
// write here too; passed to anything unknown, it is a maybe.
func (sc *summaryScan) checkCall(call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "copy" && len(call.Args) > 0 {
		if obj := sc.pkg.ObjectOf(id); obj == nil || obj.Pkg() == nil { // the builtin
			if f := sc.factOf(call.Args[0]); !f.zero() {
				sc.raise(f.shared|f.backing, escYes)
			}
			return
		}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := sc.pkg.ObjectOf(id); obj != nil && obj.Pkg() == nil {
			return // other builtins (len, append, make, ...) never write
		}
	}
	callee, recv := sc.resolveCallee(call)
	var cs *funcSummary
	if callee != nil {
		cs = sc.lookup(callee)
	}
	args := callArgs(call, recv)
	for slot, arg := range args {
		f := sc.factOf(arg)
		if f.zero() {
			continue
		}
		switch {
		case cs == nil:
			sc.raise(f.shared|f.backing, escMaybe)
		case slot < len(cs.writes) && cs.writes[slot] == escYes:
			sc.raise(f.shared, escYes)
			sc.raise(f.backing, escMaybe)
		case slot < len(cs.writes) && cs.writes[slot] == escMaybe:
			sc.raise(f.shared|f.backing, escMaybe)
		case slot >= len(cs.writes): // variadic overflow slot
			sc.raise(f.shared|f.backing, escMaybe)
		}
	}
}

// checkReturn folds one return statement into the result facts.
func (sc *summaryScan) checkReturn(fd *ast.FuncDecl, ret *ast.ReturnStmt) {
	if !sc.sawReturn {
		sc.sawReturn = true
		sc.allFresh = true
	}
	var expr ast.Expr
	if len(ret.Results) > 0 {
		expr = ret.Results[0]
	} else if fd.Type.Results != nil && len(fd.Type.Results.List) > 0 {
		if names := fd.Type.Results.List[0].Names; len(names) > 0 {
			expr = names[0] // bare return of a named result
		}
	}
	if expr == nil {
		return
	}
	if f := sc.factOf(expr); !f.zero() {
		sc.resultAlias |= f.shared | f.backing
		sc.allFresh = false
		return
	}
	if !sc.isFresh(expr) {
		sc.allFresh = false
	}
}

// isFresh reports whether the expression provably allocates: composite
// literals, new/make, append to nil, or a call whose summary says
// fresh (a Clone method counts by the module convention).
func (sc *summaryScan) isFresh(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		return sc.isFresh(e.X)
	case *ast.CallExpr:
		switch fun := ast.Unparen(e.Fun).(type) {
		case *ast.Ident:
			if fun.Name == "new" || fun.Name == "make" {
				if obj := sc.pkg.ObjectOf(fun); obj == nil || obj.Pkg() == nil {
					return true
				}
			}
		case *ast.SelectorExpr:
			if fun.Sel.Name == "Clone" {
				return true
			}
		}
		callee, _ := sc.resolveCallee(e)
		if callee != nil {
			if cs := sc.lookup(callee); cs != nil {
				return cs.resultFresh
			}
		}
	}
	return false
}

// resolveCallee resolves a call's static callee and, for method calls,
// the receiver expression (slot 0 of the summary).
func (sc *summaryScan) resolveCallee(call *ast.CallExpr) (*types.Func, ast.Expr) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := sc.pkg.ObjectOf(fun).(*types.Func); ok {
			return fn, nil
		}
	case *ast.SelectorExpr:
		obj := sc.pkg.ObjectOf(fun.Sel)
		fn, ok := obj.(*types.Func)
		if !ok {
			return nil, nil
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return fn, fun.X
		}
		return fn, nil
	}
	return nil, nil
}

// lookup finds the callee's summary: same package (the in-progress
// fixpoint table) or an already-summarized import. Interface methods
// have no body anywhere and resolve to nil.
func (sc *summaryScan) lookup(fn *types.Func) *funcSummary {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, isIface := types.Unalias(sig.Recv().Type()).Underlying().(*types.Interface); isIface {
			return nil
		}
	}
	if fn.Pkg() == nil {
		return nil
	}
	if sc.pkg.Types != nil && fn.Pkg().Path() == sc.pkg.Types.Path() {
		return sc.ps.funcs[summaryKey(fn)]
	}
	if ps := sc.m.summaryFor(fn.Pkg().Path()); ps != nil {
		return ps.funcs[summaryKey(fn)]
	}
	return nil
}

// callArgs maps summary parameter slots to call-site expressions:
// slot 0 is the receiver for method calls, then positional arguments.
func callArgs(call *ast.CallExpr, recv ast.Expr) map[int]ast.Expr {
	args := make(map[int]ast.Expr, len(call.Args)+1)
	off := 0
	if recv != nil {
		args[0] = recv
		off = 1
	}
	for i, a := range call.Args {
		args[i+off] = a
	}
	return args
}
