// Package fixture exercises the api-parity rule (checked as if it were
// the module root package).
package fixture

import "context"

// Correct wrapper: single-statement delegation with context.Background.
func SolveGood(x int) (int, error) {
	return SolveGoodCtx(context.Background(), x)
}

// SolveGoodCtx is the context-taking sibling.
func SolveGoodCtx(ctx context.Context, x int) (int, error) { return x, ctx.Err() }

// Extra logic before delegating: the wrappers can drift apart.
func SolveBad(x int) (int, error) { // want "single-statement wrapper"
	x++
	return SolveBadCtx(context.Background(), x)
}

// SolveBadCtx is the context-taking sibling.
func SolveBadCtx(ctx context.Context, x int) (int, error) { return x, nil }

// context.TODO is not the sanctioned delegation.
func ImproveTodo(x int) error { // want "single-statement wrapper"
	return ImproveTodoCtx(context.TODO(), x)
}

// ImproveTodoCtx is the context-taking sibling.
func ImproveTodoCtx(ctx context.Context, x int) error { return nil }

// Reimplementing instead of delegating.
func NewThing(x int) int { // want "single-statement wrapper"
	return x * 2
}

// NewThingCtx is the context-taking sibling.
func NewThingCtx(ctx context.Context, x int) int { return x * 2 }

// No Ctx sibling: out of scope.
func NewPlain(x int) int { return x + 1 }

// Unexported: out of scope.
func solveSmall(x int) int { return x }

func solveSmallCtx(ctx context.Context, x int) int { return x }

// Outside the Solve*/Improve*/New* families: out of scope.
func RenderThing(x int) int { return x }

// RenderThingCtx is the context-taking sibling.
func RenderThingCtx(ctx context.Context, x int) int { return x }
