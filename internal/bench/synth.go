package bench

import (
	"fmt"
	"math/rand"

	"mcfs/internal/data"
	"mcfs/internal/gen"
	"mcfs/internal/graph"
)

// Parameter notes. The paper gives, per figure, the distribution, the
// density α, the capacity c (or range), and the occupancy o = m/(c·k);
// customer counts follow its "customers at 10% of nodes, facilities at
// k = 0.1·m" style statements. Where the prose is ambiguous the values
// below are chosen to reproduce the stated occupancies exactly; see
// EXPERIMENTS.md for the derivations.

// synthSpec describes one synthetic-figure configuration.
type synthSpec struct {
	id       string
	clusters int // 0 = uniform
	alpha    float64
	mFrac    float64 // m = mFrac·n
	kFrac    float64 // k = kFrac·n
	capLo    int     // capHi == 0 → uniform capacity capLo
	capHi    int
	withBRNN bool // include BRNN on the two smallest sizes (Fig. 6a / 7a)
}

var synthSpecs = []synthSpec{
	// Fig. 6: uniform distribution, variable graph size.
	{id: "F6a", alpha: 2.0, mFrac: 0.10, kFrac: 0.01, capLo: 20, withBRNN: true}, // o = 0.5
	{id: "F6b", alpha: 2.0, mFrac: 0.10, kFrac: 0.05, capLo: 4},                  // o = 0.5, denser facilities
	{id: "F6c", alpha: 1.2, mFrac: 0.10, kFrac: 0.05, capLo: 10},                 // o = 0.2, fragmented network
	{id: "F6d", alpha: 1.2, mFrac: 0.10, kFrac: 0.05, capLo: 1, capHi: 10},       // nonuniform capacities
	// Fig. 7: clustered distribution, variable graph size.
	{id: "F7a", clusters: 40, alpha: 1.5, mFrac: 0.20, kFrac: 0.05, capLo: 20, withBRNN: true}, // relaxed capacity
	{id: "F7b", clusters: 40, alpha: 1.5, mFrac: 0.10, kFrac: 0.08, capLo: 5},                  // tighter capacity
	{id: "F7c", clusters: 20, alpha: 1.5, mFrac: 0.10, kFrac: 0.10, capLo: 10},                 // low occupancy (0.1)
	{id: "F7d", clusters: 5, alpha: 1.5, mFrac: 0.10, kFrac: 0.02, capLo: 10},                  // o = 0.5, near-uniform
}

func init() {
	for _, spec := range synthSpecs {
		spec := spec
		register(spec.id, func(cfg Config, emit func(Row)) error {
			return runSynthSweep(spec, cfg, emit)
		})
	}
	register("F5", runF5)
	register("F8a", runF8a)
	register("F8b", runF8b)
	register("F8c", runF8c)
	register("F8d", runF8d)
	register("F9a", runF9a)
	register("F9b", runF9b)
}

// sizeSweep is the default n progression for variable-graph-size
// figures, multiplied by cfg.Scale (paper sweeps reach 10^6).
func sizeSweep(cfg Config) []int {
	return scaleInts([]int{1000, 2000, 4000, 8000}, cfg.Scale)
}

// synthInstance generates the network and workload of a spec at size n.
func synthInstance(spec synthSpec, n int, seed int64) (*data.Instance, error) {
	g, err := gen.Synthetic(gen.SyntheticConfig{
		N: n, Clusters: spec.clusters, Alpha: spec.alpha, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 101))
	capFn := gen.UniformCapacity(spec.capLo)
	if spec.capHi > 0 {
		capFn = gen.RandomCapacity(spec.capLo, spec.capHi, rng)
	}
	inst := &data.Instance{G: g}
	disjointWorkload(inst,
		max(1, int(spec.mFrac*float64(n))),
		max(1, int(spec.kFrac*float64(n))),
		capFn, seed+202)
	return inst, nil
}

// runSynthSweep runs one Fig. 6/7 panel: objective and runtime for every
// algorithm across the size sweep, one parallel cell per (size,
// algorithm). The exact solver runs as a serial chain that drops out of
// the sweep after its first timeout (the paper's "Gurobi failed beyond
// ..." behaviour); BRNN runs only on the two smallest sizes when
// enabled.
func runSynthSweep(spec synthSpec, cfg Config, emit func(Row)) error {
	var points []sweepPoint
	for idx, n := range sizeSweep(cfg) {
		n := n
		algos := []Algo{AlgoWMA, AlgoHilbert, AlgoNaive}
		if spec.withBRNN && !cfg.SkipBRNN && idx < 2 {
			algos = append(algos, AlgoBRNN)
		}
		points = append(points, sweepPoint{
			x: "n", xv: float64(n),
			inst: lazy(func() (*data.Instance, error) {
				return synthInstance(spec, n, cfg.Seed)
			}),
			algos: algos,
			exact: true,
		})
	}
	return runSweep(spec.id, points, true, cfg, emit)
}

// runF5 reports the distribution examples of Fig. 5 as structural
// statistics (nodes are drawn, not plotted, in this reproduction), one
// cell per distribution.
func runF5(cfg Config, emit func(Row)) error {
	n := max(8, int(10000*cfg.Scale))
	p := newPool(cfg)
	for _, clusters := range []int{0, 40, 20, 5} {
		clusters := clusters
		p.cell(func(emit func(Row)) error {
			g, err := gen.Synthetic(gen.SyntheticConfig{N: n, Clusters: clusters, Alpha: 1.5, Seed: cfg.Seed})
			if err != nil {
				return err
			}
			_, count := g.Components()
			label := "uniform"
			if clusters > 0 {
				label = fmt.Sprintf("%d clusters", clusters)
			}
			emit(Row{
				Exp: "F5", X: label, XVal: float64(clusters), Objective: -1,
				Note: fmt.Sprintf("nodes=%d edges=%d avgdeg=%.2f components=%d",
					g.N(), g.M(), g.AvgDegree(), count),
			})
			return nil
		})
	}
	return p.drain(emit)
}

// f8Size is the node count of the fixed clustered-20 network used by the
// Fig. 8 sweeps.
func f8Size(cfg Config) int { return max(64, int(10000*cfg.Scale)) }

// lazyF8Graph memoizes that network so all sweep points share one
// generation.
func lazyF8Graph(cfg Config) func() (*graph.Graph, error) {
	return lazy(func() (*graph.Graph, error) {
		return gen.Synthetic(gen.SyntheticConfig{N: f8Size(cfg), Clusters: 20, Alpha: 1.5, Seed: cfg.Seed})
	})
}

// runF8a sweeps the candidate-facility fraction ℓ/|V| from 40% to 100%
// (dense customers, high capacity).
func runF8a(cfg Config, emit func(Row)) error {
	n := f8Size(cfg)
	g := lazyF8Graph(cfg)
	m := n / 5
	k := max(1, n/50)
	var points []sweepPoint
	for _, pct := range []int{40, 60, 80, 100} {
		pct := pct
		points = append(points, sweepPoint{
			x: "l%", xv: float64(pct),
			inst: lazy(func() (*data.Instance, error) {
				gg, err := g()
				if err != nil {
					return nil, err
				}
				rng := rand.New(rand.NewSource(cfg.Seed + int64(pct)))
				inst := &data.Instance{
					G:          gg,
					Facilities: gen.SampleFacilities(gg, n*pct/100, rng, gen.UniformCapacity(20)),
					K:          k,
				}
				feasibleCustomers(inst, m, cfg.Seed+303)
				return inst, nil
			}),
			algos: []Algo{AlgoWMA, AlgoHilbert, AlgoNaive},
			exact: true,
		})
	}
	return runSweep("F8a", points, true, cfg, emit)
}

// runF8b sweeps the number of customers m (fixed k, c = 10, F_p = V).
func runF8b(cfg Config, emit func(Row)) error {
	n := f8Size(cfg)
	g := lazyF8Graph(cfg)
	k := max(1, n/20)
	var points []sweepPoint
	// The default sweep stops at 20% of n: occupancy beyond ~0.5 drives
	// WMA runtimes toward the paper's hours-long regime (grow -scale to
	// push further).
	for _, frac := range []int{2, 5, 10, 20} { // m = frac% of n
		frac := frac
		m := max(1, n*frac/100)
		points = append(points, sweepPoint{
			x: "m", xv: float64(m),
			inst: lazy(func() (*data.Instance, error) {
				gg, err := g()
				if err != nil {
					return nil, err
				}
				inst := &data.Instance{G: gg}
				disjointWorkload(inst, m, k, gen.UniformCapacity(10), cfg.Seed+404+int64(frac))
				return inst, nil
			}),
			algos: []Algo{AlgoWMA, AlgoHilbert, AlgoNaive},
			exact: true,
		})
	}
	return runSweep("F8b", points, true, cfg, emit)
}

// runF8c scales customers past the node count (several customers per
// node) at occupancy o = 0.1 (c = 20, k = m/2). Exact is skipped: the
// paper reports Gurobi fails for large m.
func runF8c(cfg Config, emit func(Row)) error {
	n := f8Size(cfg)
	g := lazyF8Graph(cfg)
	var points []sweepPoint
	for _, frac := range []int{20, 50, 100, 200} { // m as % of n
		frac := frac
		m := max(1, n*frac/100)
		k := m / 2
		if k > n/2 {
			k = n / 2 // keep the selection nontrivial (k = ℓ would be free)
		}
		if k < 1 {
			k = 1
		}
		points = append(points, sweepPoint{
			x: "m", xv: float64(m),
			inst: lazy(func() (*data.Instance, error) {
				gg, err := g()
				if err != nil {
					return nil, err
				}
				inst := &data.Instance{
					G:          gg,
					Facilities: gen.AllNodesFacilities(gg, gen.UniformCapacity(20)),
					K:          k,
				}
				feasibleCustomers(inst, m, cfg.Seed+505+int64(frac))
				return inst, nil
			}),
			algos: []Algo{AlgoWMA, AlgoHilbert, AlgoNaive},
		})
	}
	return runSweep("F8c", points, true, cfg, emit)
}

// runF8d sweeps the budget k (fixed m = 0.1n, c = 10, F_p = V).
func runF8d(cfg Config, emit func(Row)) error {
	n := f8Size(cfg)
	g := lazyF8Graph(cfg)
	m := max(1, n/10)
	var points []sweepPoint
	for _, kFrac := range []int{2, 5, 10, 20} { // k as % of n
		k := max(1, n*kFrac/100)
		points = append(points, sweepPoint{
			x: "k", xv: float64(k),
			inst: lazy(func() (*data.Instance, error) {
				gg, err := g()
				if err != nil {
					return nil, err
				}
				inst := &data.Instance{G: gg}
				disjointWorkload(inst, m, k, gen.UniformCapacity(10), cfg.Seed+606)
				return inst, nil
			}),
			algos: []Algo{AlgoWMA, AlgoHilbert, AlgoNaive},
			exact: true,
		})
	}
	return runSweep("F8d", points, true, cfg, emit)
}

// runF9a sweeps the density parameter α on 5-cluster data (c = 10); the
// x axis reports the measured average degree, as in the paper — derived
// inside the cells from the generated graph (xvFn), so generation stays
// parallel.
func runF9a(cfg Config, emit func(Row)) error {
	n := max(64, int(5000*cfg.Scale))
	var points []sweepPoint
	for _, alpha := range []float64{1.0, 1.2, 1.5, 2.0, 2.5} {
		alpha := alpha
		points = append(points, sweepPoint{
			x:    "avgdeg",
			xvFn: func(inst *data.Instance) float64 { return inst.G.AvgDegree() },
			inst: lazy(func() (*data.Instance, error) {
				g, err := gen.Synthetic(gen.SyntheticConfig{N: n, Clusters: 5, Alpha: alpha, Seed: cfg.Seed})
				if err != nil {
					return nil, err
				}
				inst := &data.Instance{G: g}
				disjointWorkload(inst, max(1, n/10), max(1, n/20), gen.UniformCapacity(10), cfg.Seed+707)
				return inst, nil
			}),
			algos: []Algo{AlgoWMA, AlgoHilbert, AlgoNaive},
			exact: true,
		})
	}
	return runSweep("F9a", points, true, cfg, emit)
}

// runF9b sweeps the uniform capacity c on 5-cluster data (α = 1.5).
func runF9b(cfg Config, emit func(Row)) error {
	n := max(64, int(5000*cfg.Scale))
	g := lazy(func() (*graph.Graph, error) {
		return gen.Synthetic(gen.SyntheticConfig{N: n, Clusters: 5, Alpha: 1.5, Seed: cfg.Seed})
	})
	m := max(1, n/10)
	k := max(1, n/20)
	var points []sweepPoint
	for _, c := range []int{3, 4, 6, 10, 20, 40} {
		c := c
		points = append(points, sweepPoint{
			x: "c", xv: float64(c),
			inst: lazy(func() (*data.Instance, error) {
				gg, err := g()
				if err != nil {
					return nil, err
				}
				inst := &data.Instance{G: gg}
				disjointWorkload(inst, m, k, gen.UniformCapacity(c), cfg.Seed+808)
				return inst, nil
			}),
			algos: []Algo{AlgoWMA, AlgoHilbert, AlgoNaive},
			exact: true,
		})
	}
	return runSweep("F9b", points, true, cfg, emit)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
