package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDijkstraTriangleInequality: d(a,c) <= d(a,b) + d(b,c) for shortest
// path distances on undirected graphs.
func TestDijkstraTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		g := randomGraph(rng, n, n, 30)
		a := int32(rng.Intn(n))
		b := int32(rng.Intn(n))
		c := int32(rng.Intn(n))
		da := g.Dijkstra(a)
		db := g.Dijkstra(b)
		if da[b] >= Inf || db[c] >= Inf {
			return true // unreachable legs make the bound vacuous
		}
		return da[c] <= da[b]+db[c]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestDijkstraSymmetryUndirected: d(a,b) == d(b,a) on undirected graphs.
func TestDijkstraSymmetryUndirected(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		g := randomGraph(rng, n, n/2, 25)
		a := int32(rng.Intn(n))
		b := int32(rng.Intn(n))
		return g.Dijkstra(a)[b] == g.Dijkstra(b)[a]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestDijkstraIdentityAndNonnegativity: d(a,a) == 0 and all distances
// nonnegative.
func TestDijkstraIdentityAndNonnegativity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		g := randomGraph(rng, n, n, 20)
		a := int32(rng.Intn(n))
		d := g.Dijkstra(a)
		if d[a] != 0 {
			return false
		}
		for _, v := range d {
			if v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestNNSearcherCompleteness: the searcher enumerates exactly the
// reachable candidates, never repeating one.
func TestNNSearcherCompleteness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(60)
		g := randomGraph(rng, n, rng.Intn(n), 15)
		isCand := make([]bool, n)
		for v := range isCand {
			isCand[v] = rng.Intn(2) == 0
		}
		src := int32(rng.Intn(n))
		full := g.Dijkstra(src)
		reachable := 0
		for v := 0; v < n; v++ {
			if isCand[v] && full[v] < Inf {
				reachable++
			}
		}
		s := NewNNSearcher(g, src, isCand)
		seen := map[int32]bool{}
		for {
			node, _, ok := s.Next()
			if !ok {
				break
			}
			if seen[node] {
				return false
			}
			seen[node] = true
		}
		return len(seen) == reachable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMultiSourceLowerBound: the multi-source distance never exceeds any
// single-source distance.
func TestMultiSourceLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		g := randomGraph(rng, n, n, 20)
		ns := 1 + rng.Intn(4)
		sources := make([]int32, ns)
		for i := range sources {
			sources[i] = int32(rng.Intn(n))
		}
		dist, _ := g.MultiSourceDijkstra(sources)
		pick := sources[rng.Intn(ns)]
		single := g.Dijkstra(pick)
		for v := 0; v < n; v++ {
			if dist[v] > single[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestComponentsPartition: component labels form a partition consistent
// with edges (endpoints always share a label).
func TestComponentsPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		b := NewBuilder(n, false)
		for e := 0; e < rng.Intn(2*n); e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(int32(u), int32(v), 1+rng.Int63n(5))
			}
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		comp, count := g.Components()
		for _, c := range comp {
			if c < 0 || int(c) >= count {
				return false
			}
		}
		ok := true
		for v := int32(0); v < int32(n); v++ {
			g.Neighbors(v, func(u int32, _ int64) bool {
				if comp[u] != comp[v] {
					ok = false
					return false
				}
				return true
			})
		}
		sizes := ComponentSizes(comp, count)
		sum := 0
		for _, s := range sizes {
			sum += s
		}
		return ok && sum == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
