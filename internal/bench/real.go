package bench

import (
	"fmt"
	"time"

	"mcfs/internal/core"
	"mcfs/internal/data"
	"mcfs/internal/gen"
	"mcfs/internal/realsim"
)

func init() {
	register("F12a", runF12a)
	register("F12b", runF12b)
	register("F13a", runF13a)
	register("F13b", runF13b)
}

// vegasCoworking builds the Las Vegas coworking scenario at the current
// scale: venue count follows the paper's 4089 proportionally, customers
// keep the paper's ≈1:4 customer:venue ratio.
func vegasCoworking(cfg Config) (*realsim.CoworkingScenario, *data.Instance, int, error) {
	p, err := gen.CityPreset("lasvegas", cityScale(cfg), cfg.Seed)
	if err != nil {
		return nil, nil, 0, err
	}
	g, err := gen.City(p)
	if err != nil {
		return nil, nil, 0, err
	}
	venues := int(4089 * cityScale(cfg))
	if venues < 16 {
		venues = 16
	}
	if venues > g.N()/2 {
		venues = g.N() / 2
	}
	m := venues / 4
	sc, err := realsim.Coworking(g, realsim.CoworkingConfig{
		Venues: venues, Customers: m, MeanHours: 9, Omega: 0.5, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, nil, 0, err
	}
	return sc, sc.Instance(g, 0), m, nil
}

// kSweep yields four budgets between barely-feasible and roomy for a
// scenario with m customers and mean capacity meanCap.
func kSweep(m, meanCap, maxK int) []int {
	min := m/meanCap + 1
	var ks []int
	for _, mult := range []float64{1.5, 2, 3, 4} {
		k := int(float64(min) * mult)
		if k < 1 {
			k = 1
		}
		if k > maxK {
			k = maxK
		}
		if len(ks) == 0 || k != ks[len(ks)-1] {
			ks = append(ks, k)
		}
	}
	return ks
}

// runCoworkingSweep executes a Fig. 12a/13a-style k sweep on a coworking
// or bikes instance: WMA Direct, WMA Uniform-First, Hilbert, Naive,
// BRNN, and the exact solver. Each k gets a private shallow copy of the
// instance (graph, customers, and facilities shared read-only) so the
// per-(k, algorithm) cells can run in parallel.
func runCoworkingSweep(exp string, inst *data.Instance, ks []int, cfg Config, emit func(Row)) error {
	var points []sweepPoint
	for idx, k := range ks {
		withK := *inst
		withK.K = k
		algos := []Algo{AlgoWMA, AlgoUF, AlgoHilbert, AlgoNaive}
		if !cfg.SkipBRNN && idx == 0 {
			algos = append(algos, AlgoBRNN)
		}
		points = append(points, sweepPoint{
			x: "k", xv: float64(k),
			inst:  func() (*data.Instance, error) { return &withK, nil },
			algos: algos,
			exact: true,
		})
	}
	return runSweep(exp, points, true, cfg, emit)
}

// runF12a is the Las Vegas coworking comparison (objective vs k).
func runF12a(cfg Config, emit func(Row)) error {
	_, inst, m, err := vegasCoworking(cfg)
	if err != nil {
		return err
	}
	return runCoworkingSweep("F12a", inst, kSweep(m, 9, inst.L()), cfg, emit)
}

// runF12b reports WMA's per-iteration statistics on the Las Vegas
// scenario (covered customers, matching time, set-cover time) — the
// paper uses k = 600 of 4089 venues; we keep the same ≈15% ratio.
// Inherently serial: the rows are the progress trace of a single solve.
func runF12b(cfg Config, emit func(Row)) error {
	_, inst, _, err := vegasCoworking(cfg)
	if err != nil {
		return err
	}
	inst.K = max(1, inst.L()*15/100)
	if ok, _ := inst.Feasible(); !ok {
		inst.K = inst.L() / 2
	}
	start := time.Now()
	_, err = core.Solve(inst, core.Options{Progress: func(s core.IterationStats) {
		// Wall-clock lives only in Runtime (one row per phase), never in
		// the note, so -notimes keeps the row stream byte-comparable.
		note := fmt.Sprintf("covered=%d edges=%d demand=%d", s.Covered, s.Edges, s.DemandTotal)
		emit(Row{
			Exp: "F12b", X: "match", XVal: float64(s.Iteration), Algo: AlgoWMA,
			Objective: int64(s.Covered), Runtime: s.MatchTime, Note: note,
		})
		emit(Row{
			Exp: "F12b", X: "cover", XVal: float64(s.Iteration), Algo: AlgoWMA,
			Objective: int64(s.Covered), Runtime: s.CoverTime, Note: note,
		})
	}})
	if err != nil {
		return err
	}
	emit(Row{Exp: "F12b", X: "total", XVal: 0, Algo: AlgoWMA, Objective: -1, Runtime: time.Since(start)})
	return nil
}

// runF13a is the Copenhagen coworking comparison: 164 venues and 200
// customers at paper scale (kept at their absolute sizes when the scaled
// city is large enough).
func runF13a(cfg Config, emit func(Row)) error {
	p, err := gen.CityPreset("copenhagen", cityScale(cfg), cfg.Seed)
	if err != nil {
		return err
	}
	g, err := gen.City(p)
	if err != nil {
		return err
	}
	venues := 164
	if venues > g.N()/4 {
		venues = g.N() / 4
	}
	m := venues * 200 / 164
	sc, err := realsim.Coworking(g, realsim.CoworkingConfig{
		Venues: venues, Customers: m, MeanHours: 9, Omega: 0.5, Seed: cfg.Seed,
	})
	if err != nil {
		return err
	}
	// Copenhagen customers follow district populations in the paper;
	// replace the Voronoi-derived ones accordingly.
	cust, err := realsim.DistrictCustomers(g, realsim.DistrictConfig{
		Districts: 4, Customers: m, Seed: cfg.Seed + 1,
	})
	if err != nil {
		return err
	}
	sc.Customers = cust
	inst := sc.Instance(g, 0)
	return runCoworkingSweep("F13a", inst, kSweep(m, 9, inst.L()), cfg, emit)
}

// runF13b is the Copenhagen dockless-bike experiment: 6000 stations and
// 1000 bikes at paper scale, scaled proportionally here.
func runF13b(cfg Config, emit func(Row)) error {
	p, err := gen.CityPreset("copenhagen", cityScale(cfg), cfg.Seed)
	if err != nil {
		return err
	}
	g, err := gen.City(p)
	if err != nil {
		return err
	}
	stations := int(6000 * cityScale(cfg))
	if stations < 24 {
		stations = 24
	}
	if stations > g.N()/2 {
		stations = g.N() / 2
	}
	bikes := stations / 6
	sc, err := realsim.Bikes(g, realsim.BikesConfig{
		Stations: stations, Bikes: bikes, MinCap: 3, MaxCap: 12, Attractors: 4, Seed: cfg.Seed,
	})
	if err != nil {
		return err
	}
	inst := sc.Instance(g, 0)
	return runCoworkingSweep("F13b", inst, kSweep(bikes, 7, inst.L()), cfg, emit)
}
