// Package fixture exercises the determinism rule (checked as if it
// lived in internal/core).
package fixture

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

func timing() time.Time {
	return time.Now() // want "time.Now"
}

func globalRand() int {
	return rand.Intn(10) // want "rand.Intn"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "rand.Shuffle"
}

func seededOK(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

func mapAppend(m map[int]string) []string {
	var out []string
	for _, v := range m { // want "order-nondeterministic"
		out = append(out, v)
	}
	return out
}

func mapPrint(m map[int]string) {
	for k := range m { // want "order-nondeterministic"
		fmt.Println(k)
	}
}

// The sanctioned fix: collect, sort, then use.
func collectThenSort(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Order-insensitive aggregation over a map is fine.
func mapReduceOK(m map[int]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}

func localMake() []int {
	m := make(map[int]int)
	var out []int
	for k := range m { // want "order-nondeterministic"
		out = append(out, k)
	}
	return out
}

type holder struct {
	idx map[string]int
}

func fieldRange(h holder, w io.Writer) {
	for k := range h.idx { // want "order-nondeterministic"
		fmt.Fprintln(w, k)
	}
}

func returnsMap() map[int]int { return nil }

func callRange() []int {
	var out []int
	for k := range returnsMap() { // want "order-nondeterministic"
		out = append(out, k)
	}
	return out
}

func suppressed(m map[int]string) []string {
	var out []string
	//lint:ignore determinism the caller sorts; kept as a fixture of the suppression syntax
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
