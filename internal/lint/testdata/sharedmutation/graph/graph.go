// Package graph is the fixture stand-in for the module's graph layer.
package graph

// Graph mirrors the shape that matters to the rule: a named type in a
// package whose import path ends in "graph", carrying reference fields.
type Graph struct {
	N   int
	Adj [][]int64
}

// Clone returns a deep copy; the rule treats its result as owned.
func (g *Graph) Clone() *Graph {
	adj := make([][]int64, len(g.Adj))
	for i, row := range g.Adj {
		adj[i] = append([]int64(nil), row...)
	}
	return &Graph{N: g.N, Adj: adj}
}

// Scale writes through its parameter: the summary must prove the
// write so importers can report call sites passing shared graphs.
func Scale(g *Graph, f int64) {
	g.Adj[0][0] = f
}

// Reset writes through its receiver (summary slot 0).
func (g *Graph) Reset() {
	for i := range g.Adj {
		for j := range g.Adj[i] {
			g.Adj[i][j] = 0
		}
	}
}

// Degree only reads; its summary must stay write-free.
func Degree(g *Graph, i int) int {
	return len(g.Adj[i])
}

// View returns its parameter unchanged: the summary records the
// result-aliases-parameter fact, so the caller's provenance survives
// the call.
func View(g *Graph) *Graph {
	return g
}
