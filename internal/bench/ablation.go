package bench

import (
	"fmt"
	"math/rand"
	"time"

	"mcfs/internal/bipartite"
	"mcfs/internal/core"
	"mcfs/internal/data"
	"mcfs/internal/gen"
	"mcfs/internal/localsearch"
)

func init() {
	register("AblThreshold", runAblThreshold)
	register("AblDemand", runAblDemand)
	register("AblTieBreak", runAblTieBreak)
	register("AblSwap", runAblSwap)
}

// ablationInstance is a clustered, moderately tight workload where the
// design choices under study have room to matter.
func ablationInstance(cfg Config) (*data.Instance, error) {
	n := max(64, int(5000*cfg.Scale))
	g, err := gen.Synthetic(gen.SyntheticConfig{N: n, Clusters: 20, Alpha: 1.5, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	inst := &data.Instance{
		G:          g,
		Facilities: gen.AllNodesFacilities(g, gen.UniformCapacity(5)),
		K:          max(1, n/25),
	}
	feasibleCustomers(inst, max(1, n/10), cfg.Seed+17)
	return inst, nil
}

// runAblThreshold contrasts the early-stopping inner search (enabled by
// the Theorem-1 threshold bookkeeping) with exhaustive residual scans:
// identical matchings, different work. It reports matcher counters for
// a full per-customer matching pass. Facilities are a sparse sample
// (F_p = V would put every customer at distance zero from a candidate
// and trivialize the search). The three variants — early-stop,
// exhaustive, dense-Gb — are independent cells over one shared,
// immutable instance; each cell builds its own matcher.
func runAblThreshold(cfg Config, emit func(Row)) error {
	sharedInst := lazy(func() (*data.Instance, error) {
		inst, err := ablationInstance(cfg)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed + 23))
		inst.Facilities = gen.SampleFacilities(inst.G, inst.G.N()/10, rng, gen.UniformCapacity(3))
		feasibleCustomers(inst, inst.M(), cfg.Seed+29)
		return inst, nil
	})
	p := newPool(cfg)
	for _, exhaustive := range []bool{false, true} {
		exhaustive := exhaustive
		p.cell(func(emit func(Row)) error {
			inst, err := sharedInst()
			if err != nil {
				return err
			}
			mt := bipartite.New(inst.G, inst.Customers, inst.Facilities)
			mt.SetExhaustive(exhaustive)
			start := time.Now()
			for i := 0; i < inst.M(); i++ {
				mt.FindPair(i)
			}
			elapsed := time.Since(start)
			st := mt.Stats()
			label := "early-stop"
			if exhaustive {
				label = "exhaustive"
			}
			emit(Row{
				Exp: "AblThreshold", X: label, Algo: AlgoWMA,
				Objective: mt.TotalMatchedCost(), Runtime: elapsed,
				Note: fmt.Sprintf("edges=%d dijkstras=%d scanned=%d reinsertions=%d",
					st.EdgesMaterialized, st.DijkstraRuns, st.NodesScanned, st.Reinsertions),
			})
			return nil
		})
	}
	// Dense contrast: without Theorem-1 pruning, G_b needs all m·ℓ edge
	// weights up front — one full-network Dijkstra per customer. Measure
	// that construction cost alone (the matching would come on top).
	p.cell(func(emit func(Row)) error {
		inst, err := sharedInst()
		if err != nil {
			return err
		}
		start := time.Now()
		for _, s := range inst.Customers {
			inst.G.Dijkstra(s)
		}
		emit(Row{
			Exp: "AblThreshold", X: "dense-Gb", Algo: AlgoWMA, Objective: -1,
			Runtime: time.Since(start),
			Note:    fmt.Sprintf("edges=%d (complete bipartite graph, construction only)", inst.M()*inst.L()),
		})
		return nil
	})
	return p.drain(emit)
}

// runAblDemand compares the paper's selective demand increase (§IV-F)
// against raising every demand each iteration — one cell per policy
// over a shared instance.
func runAblDemand(cfg Config, emit func(Row)) error {
	sharedInst := lazy(func() (*data.Instance, error) { return ablationInstance(cfg) })
	p := newPool(cfg)
	for _, policy := range []core.DemandPolicy{core.DemandSelective, core.DemandAll} {
		policy := policy
		p.cell(func(emit func(Row)) error {
			inst, err := sharedInst()
			if err != nil {
				return err
			}
			iterations := 0
			edges := 0
			start := time.Now()
			sol, err := core.Solve(inst, core.Options{
				Demand: policy,
				Progress: func(s core.IterationStats) {
					iterations = s.Iteration
					edges = s.Edges
				},
			})
			if err != nil {
				return err
			}
			elapsed := time.Since(start)
			label := "selective"
			if policy == core.DemandAll {
				label = "raise-all"
			}
			emit(Row{
				Exp: "AblDemand", X: label, Algo: AlgoWMA,
				Objective: sol.Objective, Runtime: elapsed,
				Note: fmt.Sprintf("iterations=%d edges=%d", iterations, edges),
			})
			return nil
		})
	}
	return p.drain(emit)
}

// runAblTieBreak compares LRU diversification in the set-cover heuristic
// against index-order tie-breaking — one cell per tie-break policy.
func runAblTieBreak(cfg Config, emit func(Row)) error {
	sharedInst := lazy(func() (*data.Instance, error) { return ablationInstance(cfg) })
	p := newPool(cfg)
	for _, tie := range []core.TieBreak{core.TieLRU, core.TieArbitrary} {
		tie := tie
		p.cell(func(emit func(Row)) error {
			inst, err := sharedInst()
			if err != nil {
				return err
			}
			start := time.Now()
			sol, err := core.Solve(inst, core.Options{TieBreak: tie})
			if err != nil {
				return err
			}
			label := "lru"
			if tie == core.TieArbitrary {
				label = "arbitrary"
			}
			emit(Row{
				Exp: "AblTieBreak", X: label, Algo: AlgoWMA,
				Objective: sol.Objective, Runtime: time.Since(start),
			})
			return nil
		})
	}
	return p.drain(emit)
}

// runAblSwap quantifies the single-swap local-search polish on top of
// WMA: objective delta and cost in extra assignment solves. The polish
// consumes the WMA solution, so both measurements form a single cell.
func runAblSwap(cfg Config, emit func(Row)) error {
	p := newPool(cfg)
	p.cell(func(emit func(Row)) error {
		inst, err := ablationInstance(cfg)
		if err != nil {
			return err
		}
		start := time.Now()
		sol, err := core.Solve(inst, core.Options{})
		if err != nil {
			return err
		}
		emit(Row{Exp: "AblSwap", X: "wma", Algo: AlgoWMA, Objective: sol.Objective, Runtime: time.Since(start)})
		start = time.Now()
		// Bounded polish: each evaluated swap costs a full assignment solve,
		// so the ablation caps the budget (the default 2·k budget is meant
		// for small k).
		polished, st, err := localsearch.Improve(inst, sol, localsearch.Options{MaxMoves: 8, CandidatesPerFacility: 3})
		if err != nil {
			return err
		}
		emit(Row{
			Exp: "AblSwap", X: "wma+swap", Algo: AlgoWMA,
			Objective: polished.Objective, Runtime: time.Since(start),
			Note: fmt.Sprintf("evaluated=%d accepted=%d", st.Evaluated, st.Accepted),
		})
		return nil
	})
	return p.drain(emit)
}
