package bench

import (
	"fmt"
	"math/rand"

	"mcfs/internal/data"
	"mcfs/internal/gen"
)

func init() {
	register("T3", runT3)
	register("T4", runT4)
	register("F10", runF10)
}

// cityScale converts the global scale into a city-size fraction: the
// default run builds each city at 5% of its Table III node count; scale
// 20 reproduces the paper's full sizes.
func cityScale(cfg Config) float64 { return 0.05 * cfg.Scale }

// runT3 generates all four city networks — one parallel cell each — and
// reports their Table III statistics next to the paper's originals.
func runT3(cfg Config, emit func(Row)) error {
	paper := map[string]string{
		"aalborg":    "paper: 50961 nodes, 55748 edges, deg 2.2/7, len 30.2",
		"riga":       "paper: 287927 nodes, 322109 edges, deg 2.2/29, len 28.7",
		"copenhagen": "paper: 282826 nodes, 322349 edges, deg 2.2/10, len 32.6",
		"lasvegas":   "paper: 425759 nodes, 508522 edges, deg 2.4/21, len 50.4",
	}
	p := newPool(cfg)
	for i, name := range gen.CityNames {
		i, name := i, name
		p.cell(func(emit func(Row)) error {
			pr, err := gen.CityPreset(name, cityScale(cfg), cfg.Seed)
			if err != nil {
				return err
			}
			g, err := gen.City(pr)
			if err != nil {
				return err
			}
			st := gen.Stats(g)
			emit(Row{
				Exp: "T3", X: name, XVal: float64(i), Objective: -1,
				Note: fmt.Sprintf("nodes=%d edges=%d avgdeg=%.2f maxdeg=%d avglen=%.1f | %s",
					st.Nodes, st.Edges, st.AvgDegree, st.MaxDegree, st.AvgEdgeLength, paper[name]),
			})
			return nil
		})
	}
	return p.drain(emit)
}

// cityInstance builds a Table IV-style workload on a city: m customers,
// every largest-component node a candidate facility with capacity c.
func cityInstance(name string, cfg Config, m, k, c int) (*data.Instance, error) {
	p, err := gen.CityPreset(name, cityScale(cfg), cfg.Seed)
	if err != nil {
		return nil, err
	}
	g, err := gen.City(p)
	if err != nil {
		return nil, err
	}
	pool := gen.LargestComponent(g)
	if m > len(pool) {
		m = len(pool)
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 11))
	return &data.Instance{
		G:          g,
		Customers:  gen.SampleCustomersFrom(pool, m, rng),
		Facilities: gen.NodesFacilities(pool, gen.UniformCapacity(c)),
		K:          k,
	}, nil
}

// runT4 reproduces Table IV: the four cities with m = 512, k = 51,
// c = 20, ℓ = n. The exact solver is reported as failing (the paper's
// Gurobi "did not terminate within one week") and is attempted on every
// city regardless of earlier timeouts; BRNN is included as the paper
// does. City generation happens inside the cells, shared per city.
func runT4(cfg Config, emit func(Row)) error {
	var points []sweepPoint
	for i, name := range gen.CityNames {
		name := name
		algos := []Algo{}
		if !cfg.SkipBRNN {
			algos = append(algos, AlgoBRNN)
		}
		algos = append(algos, AlgoHilbert, AlgoNaive, AlgoWMA)
		points = append(points, sweepPoint{
			x: name, xv: float64(i),
			inst: lazy(func() (*data.Instance, error) {
				return cityInstance(name, cfg, 512, 51, 20)
			}),
			algos: algos,
			exact: true,
		})
	}
	return runSweep("T4", points, false, cfg, emit)
}

// runF10 reproduces the Aalborg scalability experiment: growing m with
// k = 0.1·m, c = 20 (o = 0.5), ℓ = n. The city network and candidate
// set are generated once (lazily, inside whichever cell gets there
// first) and shared read-only by every sweep point.
func runF10(cfg Config, emit func(Row)) error {
	type f10Base struct {
		inst *data.Instance // G and Facilities set; Customers/K per point
		pool []int32
	}
	base := lazy(func() (*f10Base, error) {
		p, err := gen.CityPreset("aalborg", 2*cityScale(cfg), cfg.Seed)
		if err != nil {
			return nil, err
		}
		g, err := gen.City(p)
		if err != nil {
			return nil, err
		}
		pool := gen.LargestComponent(g)
		facs := gen.NodesFacilities(pool, gen.UniformCapacity(20))
		return &f10Base{inst: &data.Instance{G: g, Facilities: facs}, pool: pool}, nil
	})
	var points []sweepPoint
	for idx, m := range scaleInts([]int{128, 256, 512, 1024}, cfg.Scale) {
		m := m
		algos := []Algo{AlgoWMA, AlgoHilbert, AlgoNaive}
		if !cfg.SkipBRNN && idx == 0 {
			algos = append(algos, AlgoBRNN)
		}
		points = append(points, sweepPoint{
			x: "m",
			// m is clamped to the component size, known only after
			// generation; report the clamped value, as before.
			xvFn: func(inst *data.Instance) float64 { return float64(inst.M()) },
			inst: lazy(func() (*data.Instance, error) {
				b, err := base()
				if err != nil {
					return nil, err
				}
				mm := m
				if mm > len(b.pool) {
					mm = len(b.pool)
				}
				rng := rand.New(rand.NewSource(cfg.Seed + int64(mm)))
				inst := *b.inst // per-point shallow copy; G/Facilities shared read-only
				inst.Customers = gen.SampleCustomersFrom(b.pool, mm, rng)
				inst.K = max(1, mm/10)
				return &inst, nil
			}),
			algos: algos,
		})
	}
	return runSweep("F10", points, true, cfg, emit)
}
