// Package graph implements the weighted-network substrate of the MCFS
// system: a compact CSR adjacency representation, single- and
// multi-source Dijkstra, a resumable nearest-candidate enumerator
// (NNSearcher) used for lazy bipartite-edge materialization, and
// connected-component analysis.
//
// Node ids are int32 in [0, N). Edge weights are positive int64; the
// sentinel Inf is returned for unreachable nodes. Graphs may carry
// planar coordinates, used by the Hilbert baseline and the generators.
package graph

import (
	"errors"
	"fmt"
	"math"
)

// Inf is the distance reported for unreachable nodes. It is small enough
// that sums of a few Inf values do not overflow int64.
const Inf int64 = math.MaxInt64 / 4

// Edge is an input edge for Builder. For undirected graphs each Edge
// yields two arcs.
type Edge struct {
	From, To int32
	Weight   int64
}

// Graph is an immutable weighted graph in CSR form, optionally carrying
// node coordinates. Build one with a Builder.
type Graph struct {
	off      []int32 // len N+1; arc indexes for node i are off[i]..off[i+1]
	dst      []int32
	w        []int64
	x, y     []float64 // optional coordinates, len N or nil
	directed bool
	numEdges int   // logical edge count (undirected edges counted once)
	maxW     int64 // largest edge weight; sizes the Dial bucket wheel
}

// Builder accumulates edges and produces a Graph.
type Builder struct {
	n        int32
	edges    []Edge
	directed bool
	x, y     []float64
}

// NewBuilder returns a builder for a graph with n nodes. If directed is
// false, every added edge is traversable in both directions.
func NewBuilder(n int, directed bool) *Builder {
	return &Builder{n: int32(n), directed: directed}
}

// SetCoords attaches planar coordinates; len(x) and len(y) must equal the
// node count.
func (b *Builder) SetCoords(x, y []float64) *Builder {
	b.x, b.y = x, y
	return b
}

// AddEdge adds an edge. Weight must be positive; endpoints must be valid
// node ids. Errors are reported by Build so call sites can chain adds.
func (b *Builder) AddEdge(from, to int32, weight int64) *Builder {
	b.edges = append(b.edges, Edge{from, to, weight})
	return b
}

// Build validates the accumulated edges and returns the CSR graph.
func (b *Builder) Build() (*Graph, error) {
	n := b.n
	if n < 0 {
		return nil, errors.New("graph: negative node count")
	}
	if b.x != nil && (len(b.x) != int(n) || len(b.y) != int(n)) {
		return nil, fmt.Errorf("graph: coords length %d,%d != node count %d", len(b.x), len(b.y), n)
	}
	var maxW int64
	for _, e := range b.edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.From, e.To, n)
		}
		if e.Weight <= 0 {
			return nil, fmt.Errorf("graph: edge (%d,%d) has non-positive weight %d", e.From, e.To, e.Weight)
		}
		if e.Weight >= Inf {
			return nil, fmt.Errorf("graph: edge (%d,%d) weight %d exceeds Inf", e.From, e.To, e.Weight)
		}
		if e.Weight > maxW {
			maxW = e.Weight
		}
	}
	arcs := len(b.edges)
	if !b.directed {
		arcs *= 2
	}
	deg := make([]int32, n+1)
	for _, e := range b.edges {
		deg[e.From+1]++
		if !b.directed {
			deg[e.To+1]++
		}
	}
	off := make([]int32, n+1)
	for i := int32(1); i <= n; i++ {
		off[i] = off[i-1] + deg[i]
	}
	dst := make([]int32, arcs)
	w := make([]int64, arcs)
	cursor := make([]int32, n)
	copy(cursor, off[:n])
	put := func(from, to int32, wt int64) {
		p := cursor[from]
		dst[p], w[p] = to, wt
		cursor[from]++
	}
	for _, e := range b.edges {
		put(e.From, e.To, e.Weight)
		if !b.directed {
			put(e.To, e.From, e.Weight)
		}
	}
	return &Graph{
		off: off, dst: dst, w: w,
		x: b.x, y: b.y,
		directed: b.directed,
		numEdges: len(b.edges),
		maxW:     maxW,
	}, nil
}

// MaxEdgeWeight returns the largest edge weight (0 for an edgeless
// graph). It drives the frontier-queue selection heuristic: a Dial
// bucket wheel spans MaxEdgeWeight+1 buckets.
func (g *Graph) MaxEdgeWeight() int64 { return g.maxW }

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.off) - 1 }

// M returns the number of logical edges (undirected edges counted once).
func (g *Graph) M() int { return g.numEdges }

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// HasCoords reports whether nodes carry planar coordinates.
func (g *Graph) HasCoords() bool { return g.x != nil }

// Coord returns node v's planar coordinates; HasCoords must be true.
func (g *Graph) Coord(v int32) (x, y float64) { return g.x[v], g.y[v] }

// Degree returns the out-degree of v (arc count).
func (g *Graph) Degree(v int32) int { return int(g.off[v+1] - g.off[v]) }

// Neighbors calls fn for every arc out of v until fn returns false.
func (g *Graph) Neighbors(v int32, fn func(to int32, w int64) bool) {
	for i := g.off[v]; i < g.off[v+1]; i++ {
		if !fn(g.dst[i], g.w[i]) {
			return
		}
	}
}

// AvgDegree returns the mean arc count per node.
func (g *Graph) AvgDegree() float64 {
	if g.N() == 0 {
		return 0
	}
	return float64(len(g.dst)) / float64(g.N())
}

// MaxDegree returns the maximum arc count over all nodes.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(int32(v)); d > max {
			max = d
		}
	}
	return max
}

// AvgEdgeWeight returns the mean logical edge weight.
func (g *Graph) AvgEdgeWeight() float64 {
	if len(g.w) == 0 {
		return 0
	}
	var sum int64
	for _, wt := range g.w {
		sum += wt
	}
	return float64(sum) / float64(len(g.w))
}

// Euclid returns the Euclidean distance between two nodes' coordinates;
// HasCoords must be true.
func (g *Graph) Euclid(a, b int32) float64 {
	dx := g.x[a] - g.x[b]
	dy := g.y[a] - g.y[b]
	return math.Hypot(dx, dy)
}
