#!/bin/sh
# Perf-trajectory runner (DESIGN.md §11): measures the hot-path suite
# (Dijkstra variants, NNSearcher, FindPair, end-to-end WMA) on the city
# presets and writes a schema-versioned BENCH_<stamp>.json.
#
# Usage:
#   scripts/bench.sh [out.json] [extra mcfsperf flags...]
#
# With no arguments the file is written to results/BENCH_<stamp>.json.
# Useful flags to pass through: -quick (reduced CI configuration),
# -cities aalborg, -queue heap|bucket (force a frontier queue, recorded
# as the file's variant), -seed N. Compare two files with
# scripts/benchcmp.sh.
set -eu
cd "$(dirname "$0")/.."

out=""
case "${1-}" in
*.json)
	out=$1
	shift
	;;
esac
if [ -z "$out" ]; then
	mkdir -p results
	out="results/BENCH_$(date -u +%Y%m%dT%H%M%SZ).json"
fi

go run ./cmd/mcfsperf -out "$out" "$@"
