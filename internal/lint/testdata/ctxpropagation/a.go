// Package fix exercises the ctx-propagation rule: a context-taking
// function must pass its received context down, not mint a fresh one.
package fix

import "context"

type job = context.Context

func helper(ctx context.Context, n int) int {
	_ = ctx
	return n
}

func bad(ctx context.Context, n int) int {
	return helper(context.Background(), n) // want "severs the caller's cancellation"
}

func badTODO(ctx context.Context, n int) int {
	return helper(context.TODO(), n) // want "severs the caller's cancellation"
}

// A closure capturing the enclosing context scope is bound by the same
// contract.
func badClosure(ctx context.Context) func() int {
	return func() int {
		return helper(context.Background(), 1) // want "severs the caller's cancellation"
	}
}

// The context can hide behind an alias; the rule resolves the type.
func badAlias(j job, n int) int {
	return helper(context.Background(), n) // want "severs the caller's cancellation"
}

// The sanctioned nil-guard assigns rather than passes and stays silent.
func guarded(ctx context.Context, n int) int {
	if ctx == nil {
		ctx = context.Background()
	}
	return helper(ctx, n)
}

// A function with no context parameter is a root: detaching is its job.
func wrapper(n int) int {
	return helper(context.Background(), n)
}

func keep() {
	_ = bad
	_ = badTODO
	_ = badClosure
	_ = badAlias
	_ = guarded
	_ = wrapper
}
