package graph

import (
	"math/rand"
	"testing"
)

func TestALTMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 15; trial++ {
		n := 20 + rng.Intn(150)
		g := randomGraph(rng, n, 2*n, 40)
		alt, err := NewALT(g, 4, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 30; q++ {
			s := int32(rng.Intn(n))
			u := int32(rng.Intn(n))
			want := g.Dijkstra(s)[u]
			if got := alt.Distance(s, u); got != want {
				t.Fatalf("trial %d: ALT dist(%d,%d) = %d, want %d", trial, s, u, got, want)
			}
		}
	}
}

func TestALTDisconnected(t *testing.T) {
	b := NewBuilder(4, false)
	b.AddEdge(0, 1, 3).AddEdge(2, 3, 4)
	g, _ := b.Build()
	alt, err := NewALT(g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d := alt.Distance(0, 3); d != Inf {
		t.Fatalf("cross-component distance = %d, want Inf", d)
	}
	if d := alt.Distance(0, 1); d != 3 {
		t.Fatalf("distance = %d, want 3", d)
	}
}

func TestALTIdentityAndClamping(t *testing.T) {
	g := line(t, 5)
	alt, err := NewALT(g, 99, 2) // clamped to N
	if err != nil {
		t.Fatal(err)
	}
	if len(alt.Landmarks()) > 5 {
		t.Fatalf("landmarks = %d", len(alt.Landmarks()))
	}
	if d := alt.Distance(3, 3); d != 0 {
		t.Fatalf("self distance = %d", d)
	}
	if d := alt.Distance(0, 4); d != 4 {
		t.Fatalf("end-to-end = %d, want 4", d)
	}
}

func TestALTRejectsDirected(t *testing.T) {
	b := NewBuilder(2, true)
	b.AddEdge(0, 1, 1)
	g, _ := b.Build()
	if _, err := NewALT(g, 2, 1); err == nil {
		t.Fatal("directed graph accepted")
	}
}

func TestALTPrunesVsDijkstra(t *testing.T) {
	// On a long path with a query between near neighbors, A* must settle
	// far fewer nodes than the graph holds.
	g := line(t, 2000)
	alt, err := NewALT(g, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if d := alt.Distance(1000, 1010); d != 10 {
		t.Fatalf("distance = %d, want 10", d)
	}
	if alt.Scanned() > 200 {
		t.Fatalf("A* settled %d nodes for a 10-hop query on a path", alt.Scanned())
	}
}

func BenchmarkALTQueryGrid(b *testing.B) {
	const side = 80
	bld := NewBuilder(side*side, false)
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			v := int32(r*side + c)
			if c+1 < side {
				bld.AddEdge(v, v+1, 1)
			}
			if r+1 < side {
				bld.AddEdge(v, v+side, 1)
			}
		}
	}
	g, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	alt, err := NewALT(g, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := int32(rng.Intn(side * side))
		t := int32(rng.Intn(side * side))
		alt.Distance(s, t)
	}
}
