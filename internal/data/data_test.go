package data

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"mcfs/internal/graph"
)

// pathInstance builds a small instance on the path 0-1-2-3-4 (unit
// weights): customers at {0, 4}, facilities at 1 (cap 1) and 3 (cap 2),
// k = 2.
func pathInstance(t *testing.T) *Instance {
	t.Helper()
	b := graph.NewBuilder(5, false)
	for i := 0; i < 4; i++ {
		b.AddEdge(int32(i), int32(i+1), 1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return &Instance{
		G:          g,
		Customers:  []int32{0, 4},
		Facilities: []Facility{{Node: 1, Capacity: 1}, {Node: 3, Capacity: 2}},
		K:          2,
	}
}

func TestValidateOK(t *testing.T) {
	in := pathInstance(t)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	base := pathInstance(t)
	cases := []struct {
		name string
		edit func(in *Instance)
	}{
		{"nil graph", func(in *Instance) { in.G = nil }},
		{"bad customer node", func(in *Instance) { in.Customers[0] = 99 }},
		{"negative customer node", func(in *Instance) { in.Customers[0] = -1 }},
		{"bad facility node", func(in *Instance) { in.Facilities[0].Node = 99 }},
		{"negative capacity", func(in *Instance) { in.Facilities[0].Capacity = -1 }},
		{"duplicate facility node", func(in *Instance) { in.Facilities[1].Node = in.Facilities[0].Node }},
		{"negative k", func(in *Instance) { in.K = -1 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			in := pathInstance(t)
			_ = base
			c.edit(in)
			if err := in.Validate(); err == nil {
				t.Fatal("Validate accepted invalid instance")
			}
		})
	}
}

func TestAccessors(t *testing.T) {
	in := pathInstance(t)
	if in.M() != 2 || in.L() != 2 {
		t.Fatalf("M=%d L=%d", in.M(), in.L())
	}
	if in.TotalCapacity() != 3 {
		t.Fatalf("TotalCapacity = %d", in.TotalCapacity())
	}
	nodes := in.FacilityNodes()
	if len(nodes) != 2 || nodes[0] != 1 || nodes[1] != 3 {
		t.Fatalf("FacilityNodes = %v", nodes)
	}
	mask, idx := in.CandidateMask()
	if !mask[1] || !mask[3] || mask[0] || mask[2] {
		t.Fatalf("mask = %v", mask)
	}
	if idx[1] != 0 || idx[3] != 1 {
		t.Fatalf("index = %v", idx)
	}
	// o = m / (k * avgCap) = 2 / (2 * 1.5)
	if got := in.Occupancy(); got < 0.66 || got > 0.67 {
		t.Fatalf("Occupancy = %v", got)
	}
}

func TestFeasible(t *testing.T) {
	in := pathInstance(t)
	ok, kg := in.Feasible()
	if !ok {
		t.Fatal("feasible instance reported infeasible")
	}
	// One component; both customers fit in facility 3 alone (cap 2).
	if kg[0] != 1 {
		t.Fatalf("kg = %v, want [1]", kg)
	}
	in.K = 0
	// kg total (1) > K (0): infeasible.
	if ok, _ := in.Feasible(); ok {
		t.Fatal("k=0 with customers reported feasible")
	}
}

func TestFeasibleInsufficientCapacity(t *testing.T) {
	in := pathInstance(t)
	in.Facilities[0].Capacity = 0
	in.Facilities[1].Capacity = 1
	if ok, _ := in.Feasible(); ok {
		t.Fatal("capacity 1 for 2 customers reported feasible")
	}
}

func TestFeasiblePerComponent(t *testing.T) {
	// Two components: 0-1 and 2-3. Customers in both; facility only in one.
	b := graph.NewBuilder(4, false)
	b.AddEdge(0, 1, 1).AddEdge(2, 3, 1)
	g, _ := b.Build()
	in := &Instance{
		G:          g,
		Customers:  []int32{0, 2},
		Facilities: []Facility{{Node: 1, Capacity: 10}},
		K:          5,
	}
	if ok, _ := in.Feasible(); ok {
		t.Fatal("customer in facility-less component reported feasible")
	}
	in.Facilities = append(in.Facilities, Facility{Node: 3, Capacity: 1})
	ok, kg := in.Feasible()
	if !ok {
		t.Fatal("now-coverable instance reported infeasible")
	}
	total := 0
	for _, v := range kg {
		total += v
	}
	if total != 2 {
		t.Fatalf("total kg = %d, want 2", total)
	}
}

func TestEvalObjectiveAndCheckSolution(t *testing.T) {
	in := pathInstance(t)
	sol := &Solution{
		Selected:   []int{0, 1},
		Assignment: []int{0, 1}, // customer 0 -> facility@1 (dist 1), customer 4 -> facility@3 (dist 1)
		Objective:  2,
	}
	obj, err := in.CheckSolution(sol)
	if err != nil {
		t.Fatal(err)
	}
	if obj != 2 {
		t.Fatalf("objective = %d, want 2", obj)
	}
}

func TestCheckSolutionErrors(t *testing.T) {
	in := pathInstance(t)
	good := func() *Solution {
		return &Solution{Selected: []int{0, 1}, Assignment: []int{0, 1}, Objective: 2}
	}
	cases := []struct {
		name string
		edit func(s *Solution)
	}{
		{"too many selected", func(s *Solution) { s.Selected = []int{0, 1}; in.K = 1 }},
		{"bad selected index", func(s *Solution) { s.Selected[0] = 9 }},
		{"duplicate selection", func(s *Solution) { s.Selected = []int{1, 1} }},
		{"short assignment", func(s *Solution) { s.Assignment = s.Assignment[:1] }},
		{"unselected facility", func(s *Solution) { s.Selected = []int{1}; s.Assignment = []int{0, 1} }},
		{"capacity violated", func(s *Solution) { s.Assignment = []int{0, 0} }},
		{"wrong objective", func(s *Solution) { s.Objective = 5 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			in = pathInstance(t)
			s := good()
			c.edit(s)
			if _, err := in.CheckSolution(s); err == nil {
				t.Fatal("CheckSolution accepted invalid solution")
			}
		})
	}
	if _, err := in.CheckSolution(nil); err == nil {
		t.Fatal("nil solution accepted")
	}
}

func TestEvalObjectiveUnreachable(t *testing.T) {
	b := graph.NewBuilder(4, false)
	b.AddEdge(0, 1, 1).AddEdge(2, 3, 1)
	g, _ := b.Build()
	in := &Instance{
		G:          g,
		Customers:  []int32{0},
		Facilities: []Facility{{Node: 3, Capacity: 1}},
		K:          1,
	}
	if _, err := in.EvalObjective([]int{0}); err == nil {
		t.Fatal("unreachable assignment accepted")
	}
}

func TestRoundTripSerialization(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(40)
		b := graph.NewBuilder(n, false)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 1000
			ys[i] = rng.Float64() * 1000
		}
		withCoords := trial%2 == 0
		if withCoords {
			b.SetCoords(xs, ys)
		}
		for i := 1; i < n; i++ {
			b.AddEdge(int32(rng.Intn(i)), int32(i), 1+rng.Int63n(99))
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		in := &Instance{G: g, K: rng.Intn(5)}
		for i := 0; i < 1+rng.Intn(8); i++ {
			in.Customers = append(in.Customers, int32(rng.Intn(n)))
		}
		perm := rng.Perm(n)
		for i := 0; i < 1+rng.Intn(5); i++ {
			in.Facilities = append(in.Facilities, Facility{Node: int32(perm[i]), Capacity: rng.Intn(10)})
		}

		var buf bytes.Buffer
		if err := WriteInstance(&buf, in); err != nil {
			t.Fatal(err)
		}
		got, err := ReadInstance(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.K != in.K || got.M() != in.M() || got.L() != in.L() {
			t.Fatalf("round-trip changed sizes")
		}
		if got.G.N() != in.G.N() || got.G.M() != in.G.M() {
			t.Fatalf("round-trip changed graph: %d/%d vs %d/%d", got.G.N(), got.G.M(), in.G.N(), in.G.M())
		}
		for i := range in.Customers {
			if got.Customers[i] != in.Customers[i] {
				t.Fatal("customers differ")
			}
		}
		for i := range in.Facilities {
			if got.Facilities[i] != in.Facilities[i] {
				t.Fatal("facilities differ")
			}
		}
		if withCoords {
			if !got.G.HasCoords() {
				t.Fatal("coords lost")
			}
			for v := int32(0); v < int32(n); v++ {
				x1, y1 := in.G.Coord(v)
				x2, y2 := got.G.Coord(v)
				if x1 != x2 || y1 != y2 {
					t.Fatal("coords differ")
				}
			}
		}
		// Shortest paths must agree (the graph is semantically identical).
		src := int32(rng.Intn(n))
		d1 := in.G.Dijkstra(src)
		d2 := got.G.Dijkstra(src)
		for v := range d1 {
			if d1[v] != d2[v] {
				t.Fatalf("distance mismatch after round trip at node %d", v)
			}
		}
	}
}

func TestReadInstanceRejectsGarbage(t *testing.T) {
	bad := []string{
		"",
		"mcfs 2\n",
		"mcfs 1\ngraph x\n",
		"mcfs 1\ngraph 2 1 0 0\n0 1 5\ncustomers 1\n7\nfacilities 0\nk 0\n",    // customer out of range
		"mcfs 1\ngraph 2 1 0 0\n0 1 5\ncustomers 0\nfacilities 1\n0 -2\nk 1\n", // negative capacity
	}
	for i, s := range bad {
		if _, err := ReadInstance(strings.NewReader(s)); err == nil {
			t.Fatalf("case %d: garbage accepted", i)
		}
	}
}

func TestReadInstanceComments(t *testing.T) {
	src := "# comment\nmcfs 1\n# another\ngraph 2 1 0 0\n0 1 5\ncustomers 1\n0\nfacilities 1\n1 3\nk 1\n"
	in, err := ReadInstance(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if in.M() != 1 || in.L() != 1 || in.K != 1 {
		t.Fatal("comment handling broke parse")
	}
}
