// Package fix exercises the typed sharpening of the determinism rule:
// a map behind a named type is invisible to the syntactic index but
// still iterates in random order.
package fix

import "sort"

type tally map[string]int

func collect(m tally) []string {
	var out []string
	for k := range m { // want "order-nondeterministic"
		out = append(out, k)
	}
	return out
}

func collectSorted(m tally) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

type counter struct {
	byKey tally
}

func (c counter) keys() []string {
	var out []string
	for k := range c.byKey { // want "order-nondeterministic"
		out = append(out, k)
	}
	return out
}
