package lint

import "testing"

// Tests for the serve-era rules introduced with the v3 engine:
// published-immutability, single-writer, and sentinel-http-parity.

var publishedImmutabilityDirs = map[string]string{
	"dynamic": "internal/dynamic",
	"serve":   "internal/serve",
}

func TestPublishedImmutabilityRule(t *testing.T) {
	pkgs := loadFixtureTyped(t, "publishedimmutability", publishedImmutabilityDirs)
	checkFixtures(t, pkgs, []Rule{PublishedImmutability{}})
}

// TestPublishedImmutabilitySilentWithoutTypes: the rule needs go/types
// info and must stay silent, not guess, on a syntactic load.
func TestPublishedImmutabilitySilentWithoutTypes(t *testing.T) {
	pkgs := loadFixtureSyntactic(t, "publishedimmutability", publishedImmutabilityDirs)
	if got := Run(pkgs, []Rule{PublishedImmutability{}}); len(got) != 0 {
		t.Errorf("typed-only rule fired without type info: %v", got)
	}
}

var singleWriterDirs = map[string]string{
	"dynamic": "internal/dynamic",
	"serve":   "internal/serve",
}

func TestSingleWriterRule(t *testing.T) {
	pkgs := loadFixtureTyped(t, "singlewriter", singleWriterDirs)
	checkFixtures(t, pkgs, []Rule{SingleWriter{}})
}

// TestSingleWriterDoubleWriter: a constructor that launches two
// goroutines whose call trees both reach mutating Reallocator methods
// is two concurrent owners — the second launch is reported. The
// read-only ticker goroutine alongside them stays accepted.
func TestSingleWriterDoubleWriter(t *testing.T) {
	pkgs := loadFixtureTyped(t, "doublewriter", singleWriterDirs)
	checkFixtures(t, pkgs, []Rule{SingleWriter{}})
}

// TestSingleWriterOutOfScope: the rule only concerns internal/serve;
// the same code anywhere else is not in its jurisdiction.
func TestSingleWriterOutOfScope(t *testing.T) {
	pkgs := loadFixtureTyped(t, "singlewriter", map[string]string{
		"dynamic": "internal/dynamic",
		"serve":   "internal/other",
	})
	if got := Run(pkgs, []Rule{SingleWriter{}}); len(got) != 0 {
		t.Errorf("rule fired outside internal/serve: %v", got)
	}
}

// TestSingleWriterNeedsSummaries: without the dynamic package in the
// run there are no summaries to classify mutating methods, and the
// rule must stay silent rather than guess.
func TestSingleWriterNeedsSummaries(t *testing.T) {
	pkgs := loadFixtureTyped(t, "singlewriter", singleWriterDirs)
	var serveOnly []*Package
	for _, p := range pkgs {
		if p.Dir == "internal/serve" {
			serveOnly = append(serveOnly, p)
		}
	}
	if len(serveOnly) != 1 {
		t.Fatalf("fixture lacks internal/serve (got %d packages)", len(serveOnly))
	}
	if got := Run(serveOnly, []Rule{SingleWriter{}}); len(got) != 0 {
		t.Errorf("rule guessed without summaries: %v", got)
	}
}

var sentinelParityDirs = map[string]string{
	".":     ".",
	"serve": "internal/serve",
}

func TestSentinelParityRule(t *testing.T) {
	pkgs := loadFixtureTyped(t, "sentinelparity", sentinelParityDirs)
	checkFixtures(t, pkgs, []Rule{SentinelParity{}})
}

// TestSentinelParityNeedsBothPackages: with either side of the pairing
// missing from the run the rule cannot judge parity and stays silent.
func TestSentinelParityNeedsBothPackages(t *testing.T) {
	pkgs := loadFixtureTyped(t, "sentinelparity", sentinelParityDirs)
	for _, keep := range []string{".", "internal/serve"} {
		var partial []*Package
		for _, p := range pkgs {
			if p.Dir == keep {
				partial = append(partial, p)
			}
		}
		if got := Run(partial, []Rule{SentinelParity{}}); len(got) != 0 {
			t.Errorf("rule fired with only %s loaded: %v", keep, got)
		}
	}
}
