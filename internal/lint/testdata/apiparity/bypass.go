package fixture

import (
	"mcfs/internal/baseline"
	corealias "mcfs/internal/core"
)

// Reaching the baseline package outside algorithms.go reopens a private
// dispatch path around the Algorithm registry.
func sneakyBaseline() {
	baseline.BRNNCtx() // want "bypasses the Algorithm registry"
}

// The core Solve* family is guarded even behind a renamed import.
func sneakyCore() {
	corealias.SolveCtx() // want "bypasses the Algorithm registry"
}

// core's non-Solve helpers remain fair game for the rest of the root
// package.
func coreHelper() {
	corealias.AssignToSelectionCtx()
}
