// Package dynamic implements the repeated-solving scenario that
// motivates MCFS in the paper's introduction: "the problem may need to
// be solved scalably and repeatedly, as in applications requiring the
// dynamic reallocation of customers to facilities."
//
// A Reallocator keeps a facility selection open while the customer
// population changes. Arrivals are served incrementally — one optimal
// augmenting path each, reusing the engine's potentials and per-customer
// search state — so the running assignment is always the minimum-cost
// assignment of the current customers to the current selection.
// Departures are batched and applied by rebuilding the matching at the
// next query (removing one unit of flow can invalidate the engine's
// optimality invariants, so a rebuild is the correct primitive; batch
// removals to amortize it). The facility selection itself is re-solved
// from scratch (full WMA) when the incremental assignment's cost drifts
// beyond a configurable factor of the last full solve, when an arrival
// cannot be served by the open facilities, or on explicit Refresh.
package dynamic

import (
	"context"
	"errors"
	"fmt"

	"mcfs/internal/bipartite"
	"mcfs/internal/core"
	"mcfs/internal/data"
	"mcfs/internal/graph"
	"mcfs/internal/obs"
)

// ErrUnknownHandle is returned by RemoveCustomer for a handle that is
// not (or no longer) live.
var ErrUnknownHandle = errors.New("dynamic: unknown customer handle")

// ErrBadNode is returned by AddCustomer for a node index outside the
// network.
var ErrBadNode = errors.New("dynamic: bad node")

// Options tunes a Reallocator.
type Options struct {
	// Core configures the underlying WMA solves.
	Core core.Options
	// DriftFactor triggers a full re-selection when the incremental
	// objective exceeds DriftFactor × the objective right after the last
	// full solve. Values <= 1 disable drift-triggered re-solves only if
	// exactly 0; default is 1.5.
	DriftFactor float64
}

// Stats counts the work a Reallocator has performed.
type Stats struct {
	FullSolves int `json:"full_solves"` // complete WMA re-selections
	Rebuilds   int `json:"rebuilds"`    // assignment rebuilds (removal batches, re-selections)
	Adoptions  int `json:"adoptions"`   // externally computed selections installed (Adopt*)
	Arrivals   int `json:"arrivals"`
	Departures int `json:"departures"`
}

// Reallocator maintains an MCFS solution under customer churn.
type Reallocator struct {
	ctx        context.Context // governs every operation; see SetContext
	g          *graph.Graph
	facilities []data.Facility // full candidate catalogue
	k          int
	opt        Options

	customers map[int]int32 // handle → node
	order     []int         // live handles in deterministic order
	nextID    int

	selected  []int // global facility indexes currently open
	mt        *bipartite.Matcher
	handleOf  []int // matcher customer index → handle
	pendingRm bool

	baseObjective int64 // objective right after the last full solve
	stats         Stats
}

// New builds a Reallocator from an initial instance, performing one full
// solve. The instance's customers become handles 0..m-1.
func New(inst *data.Instance, opt Options) (*Reallocator, error) {
	return NewCtx(context.Background(), inst, opt)
}

// NewCtx is New with cooperative cancellation. The context is retained
// and governs the initial full solve and every subsequent operation on
// the Reallocator (arrivals, rebuilds, drift-triggered re-selections);
// rebind it with SetContext. When the context fires mid-operation the
// method returns ctx.Err() and the running matching is marked stale, so
// the next operation under a live context transparently rebuilds it —
// the Reallocator itself stays usable.
func NewCtx(ctx context.Context, inst *data.Instance, opt Options) (*Reallocator, error) {
	r, err := skeleton(ctx, inst, opt)
	if err != nil {
		return nil, err
	}
	for _, node := range inst.Customers {
		r.customers[r.nextID] = node
		r.order = append(r.order, r.nextID)
		r.nextID++
	}
	if err := r.fullSolve(); err != nil {
		return nil, err
	}
	return r, nil
}

// Adopt builds a Reallocator around an externally computed facility
// selection instead of running WMA: the instance's customers become
// handles 0..m-1, the selection is installed as-is, and the optimal
// assignment to it is built. This is how a serving process starts from
// any registered algorithm's solution (or any custom strategy) and then
// maintains it incrementally.
func Adopt(inst *data.Instance, selected []int, opt Options) (*Reallocator, error) {
	return AdoptCtx(context.Background(), inst, selected, opt)
}

// AdoptCtx is Adopt with cooperative cancellation; the context contract
// matches NewCtx.
func AdoptCtx(ctx context.Context, inst *data.Instance, selected []int, opt Options) (*Reallocator, error) {
	r, err := skeleton(ctx, inst, opt)
	if err != nil {
		return nil, err
	}
	for _, node := range inst.Customers {
		r.customers[r.nextID] = node
		r.order = append(r.order, r.nextID)
		r.nextID++
	}
	if err := r.adopt(selected); err != nil {
		return nil, err
	}
	r.stats.Adoptions++
	return r, nil
}

// skeleton validates the instance and builds an empty Reallocator with
// no customers, no selection, and no matching.
func skeleton(ctx context.Context, inst *data.Instance, opt Options) (*Reallocator, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if opt.DriftFactor == 0 {
		opt.DriftFactor = 1.5
	}
	return &Reallocator{
		ctx:        ctx,
		g:          inst.G,
		facilities: inst.Facilities,
		k:          inst.K,
		opt:        opt,
		customers:  make(map[int]int32, inst.M()),
	}, nil
}

// instance materializes the current population as a data.Instance.
func (r *Reallocator) instance() *data.Instance {
	custs := make([]int32, len(r.order))
	for i, h := range r.order {
		custs[i] = r.customers[h]
	}
	return &data.Instance{G: r.g, Customers: custs, Facilities: r.facilities, K: r.k}
}

// SetContext rebinds the context governing subsequent operations
// (nil restores context.Background()). Use it to recover a Reallocator
// whose previous context was cancelled or expired: the next operation
// rebuilds any matching state the interrupted one left stale.
func (r *Reallocator) SetContext(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	r.ctx = ctx
}

// fullSolve re-selects facilities with WMA and rebuilds the matching.
func (r *Reallocator) fullSolve() error {
	r.rec().Add(obs.ReallocFullSolves, 1)
	inst := r.instance()
	sol, err := core.SolveCtx(r.ctx, inst, r.opt.Core)
	if err != nil {
		return err
	}
	r.selected = sol.Selected
	r.stats.FullSolves++
	if err := r.rebuild(); err != nil {
		// The new selection is installed but unmatched; force a rebuild on
		// the next operation.
		r.pendingRm = true
		return err
	}
	r.baseObjective = r.mt.TotalMatchedCost()
	return nil
}

// AdoptSelection installs an externally computed facility selection —
// e.g. a full re-solve by any registered algorithm — and rebuilds the
// optimal assignment of the live population to it. On failure
// (unservable population, cancellation) the previous selection is kept
// and the Reallocator stays usable. Success resets the drift baseline,
// exactly like a WMA re-selection.
func (r *Reallocator) AdoptSelection(selected []int) error {
	old := r.selected
	if err := r.adopt(selected); err != nil {
		r.selected = old
		return err
	}
	r.stats.Adoptions++
	return nil
}

// adopt validates and installs a selection and rebuilds the matching;
// on error r.selected is left as the caller's installed value (callers
// that need rollback keep the old slice).
func (r *Reallocator) adopt(selected []int) error {
	if len(selected) > r.k {
		return fmt.Errorf("dynamic: selection of %d facilities exceeds budget k=%d", len(selected), r.k)
	}
	seen := make(map[int]bool, len(selected))
	for _, j := range selected {
		if j < 0 || j >= len(r.facilities) {
			return fmt.Errorf("dynamic: selected facility index %d out of range", j)
		}
		if seen[j] {
			return fmt.Errorf("dynamic: facility %d selected twice", j)
		}
		seen[j] = true
	}
	r.selected = append([]int(nil), selected...)
	if err := r.rebuild(); err != nil {
		return err
	}
	r.baseObjective = r.mt.TotalMatchedCost()
	return nil
}

// rec returns the recorder bound to the Reallocator's current context
// (nil when none). Looked up per operation so SetContext rebinds
// observability along with cancellation.
func (r *Reallocator) rec() *obs.Recorder { return obs.From(r.ctx) }

// rebuild reconstructs the optimal assignment of the live customers to
// the open facilities.
func (r *Reallocator) rebuild() error {
	if p := r.rec().Phase("repair"); p != nil {
		defer p.End()
	}
	subset := make([]data.Facility, len(r.selected))
	for i, j := range r.selected {
		subset[i] = r.facilities[j]
	}
	custs := make([]int32, len(r.order))
	for i, h := range r.order {
		custs[i] = r.customers[h]
	}
	mt := bipartite.New(r.g, custs, subset)
	mt.SetExhaustive(r.opt.Core.Exhaustive)
	for i := range custs {
		ok, err := mt.FindPairCtx(r.ctx, i)
		if err != nil {
			return err // r.mt untouched; pendingRm stays set for a retry
		}
		if !ok {
			return fmt.Errorf("dynamic: customer %d unservable by open facilities: %w", r.order[i], data.ErrInfeasible)
		}
	}
	r.mt = mt
	r.handleOf = append(r.handleOf[:0], r.order...)
	r.pendingRm = false
	r.stats.Rebuilds++
	rec := r.rec()
	rec.Add(obs.ReallocRepairs, 1)
	rec.Add(obs.ReallocReroutedCustomers, int64(len(custs)))
	return nil
}

// flush applies pending departures.
func (r *Reallocator) flush() error {
	if !r.pendingRm {
		return nil
	}
	return r.rebuild()
}

// AddCustomer admits a new customer at the given network node and
// returns its handle. The arrival is assigned incrementally; if the open
// facilities cannot serve it (capacity exhausted or unreachable), a full
// re-selection runs, and data.ErrInfeasible is returned only when even
// the full candidate catalogue cannot serve the population.
func (r *Reallocator) AddCustomer(node int32) (int, error) {
	if node < 0 || int(node) >= r.g.N() {
		return 0, fmt.Errorf("%w: node %d outside [0,%d)", ErrBadNode, node, r.g.N())
	}
	if err := r.flush(); err != nil && !errors.Is(err, data.ErrInfeasible) {
		return 0, err
	} else if err != nil {
		// Open facilities cannot even serve the remaining population; try
		// a full re-selection before admitting the newcomer.
		if err := r.fullSolve(); err != nil {
			return 0, err
		}
	}
	h := r.nextID
	r.nextID++
	r.customers[h] = node
	r.order = append(r.order, h)
	r.stats.Arrivals++

	idx := r.mt.AddCustomer(node)
	r.handleOf = append(r.handleOf, h)
	ok, err := r.mt.FindPairCtx(r.ctx, idx)
	if err != nil {
		// Cancelled mid-assignment: roll the newcomer back and force a
		// rebuild so the matcher drops its unmatched stub.
		r.dropHandle(h)
		r.pendingRm = true
		return 0, err
	}
	if !ok {
		// Selection saturated: re-select with the newcomer included.
		if err := r.fullSolve(); err != nil {
			// Admission failed entirely: roll the newcomer back and force
			// a rebuild so the matcher drops its unmatched stub.
			r.dropHandle(h)
			r.pendingRm = true
			return 0, err
		}
		return h, nil
	}
	if r.driftExceeded() {
		if err := r.fullSolve(); err != nil {
			return h, err
		}
	}
	return h, nil
}

// RemoveCustomer schedules the departure of a customer; the assignment
// is rebuilt lazily at the next query or arrival.
func (r *Reallocator) RemoveCustomer(handle int) error {
	if _, ok := r.customers[handle]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownHandle, handle)
	}
	r.dropHandle(handle)
	r.stats.Departures++
	r.pendingRm = true
	return nil
}

func (r *Reallocator) dropHandle(h int) {
	delete(r.customers, h)
	for i, v := range r.order {
		if v == h {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
}

func (r *Reallocator) driftExceeded() bool {
	if r.opt.DriftFactor <= 0 {
		return false
	}
	cur := r.mt.TotalMatchedCost()
	return float64(cur) > r.opt.DriftFactor*float64(r.baseObjective)+0.5
}

// Objective returns the current total assignment distance (applying any
// pending departures first).
func (r *Reallocator) Objective() (int64, error) {
	if err := r.flush(); err != nil {
		return 0, err
	}
	return r.mt.TotalMatchedCost(), nil
}

// Selected returns the currently open facilities as indexes into the
// candidate catalogue.
func (r *Reallocator) Selected() []int {
	return append([]int(nil), r.selected...)
}

// Assignment returns the current customer→facility mapping keyed by
// handle, with facility values indexing the candidate catalogue.
func (r *Reallocator) Assignment() (map[int]int, error) {
	if err := r.flush(); err != nil {
		return nil, err
	}
	out := make(map[int]int, len(r.order))
	for idx, h := range r.handleOf {
		facs, _ := r.mt.Matches(idx)
		if len(facs) != 1 {
			return nil, fmt.Errorf("dynamic: customer %d holds %d assignments", h, len(facs))
		}
		out[h] = r.selected[facs[0]]
	}
	return out, nil
}

// Solution materializes a data.Solution for the current population (in
// handle order) — convenient for CheckSolution-style verification.
func (r *Reallocator) Solution() (*data.Instance, *data.Solution, error) {
	if err := r.flush(); err != nil {
		return nil, nil, err
	}
	asg, err := r.Assignment()
	if err != nil {
		return nil, nil, err
	}
	inst := r.instance()
	assignment := make([]int, len(r.order))
	for i, h := range r.order {
		assignment[i] = asg[h]
	}
	obj := r.mt.TotalMatchedCost()
	return inst, &data.Solution{Selected: r.Selected(), Assignment: assignment, Objective: obj}, nil
}

// Customers returns the number of live customers.
func (r *Reallocator) Customers() int { return len(r.order) }

// Stats returns work counters.
func (r *Reallocator) Stats() Stats { return r.stats }

// Refresh forces a full re-selection and rebuild.
func (r *Reallocator) Refresh() error { return r.fullSolve() }
