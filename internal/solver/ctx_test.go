package solver

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"mcfs/internal/testutil"
)

func TestExhaustiveCtxCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	inst := testutil.RandomInstance(rng, smallParams())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ExhaustiveCtx(ctx, inst, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestExhaustiveCtxBackgroundMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 10; trial++ {
		inst := testutil.RandomInstance(rng, smallParams())
		want, err := Exhaustive(inst, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got, err := ExhaustiveCtx(context.Background(), inst, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got.Objective != want.Objective {
			t.Fatalf("trial %d: ctx objective %d != plain %d", trial, got.Objective, want.Objective)
		}
	}
}

func TestBranchAndBoundTimeoutMatchesBothSentinels(t *testing.T) {
	// A timed-out run must satisfy errors.Is for ErrTimeout AND for
	// context.DeadlineExceeded, so callers can use either idiom.
	rng := rand.New(rand.NewSource(33))
	p := testutil.Params{
		MinNodes: 60, MaxNodes: 80,
		MaxCustomers: 20, MaxFacilities: 18,
		MaxCapacity: 3, MaxWeight: 30,
	}
	var timedOut bool
	for trial := 0; trial < 20 && !timedOut; trial++ {
		inst := testutil.RandomInstance(rng, p)
		_, err := BranchAndBound(inst, Options{TimeBudget: time.Nanosecond})
		if err == nil {
			continue // finished before the first deadline check
		}
		timedOut = true
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("err = %v, want ErrTimeout", err)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want context.DeadlineExceeded", err)
		}
	}
	if !timedOut {
		t.Skip("every trial finished before the deadline check")
	}
}

func TestBranchAndBoundCtxCancelReturnsIncumbent(t *testing.T) {
	// Cancel mid-search: when the search is slow enough to notice the
	// cancellation, the best verified incumbent must come back alongside
	// ctx.Err(), with Optimal unset.
	rng := rand.New(rand.NewSource(34))
	p := testutil.Params{
		MinNodes: 80, MaxNodes: 100,
		MaxCustomers: 25, MaxFacilities: 20,
		MaxCapacity: 3, MaxWeight: 30,
	}
	var observed bool
	for trial := 0; trial < 20 && !observed; trial++ {
		inst := testutil.RandomInstance(rng, p)
		ctx, cancel := context.WithCancel(context.Background())
		timer := time.AfterFunc(2*time.Millisecond, cancel)
		res, err := BranchAndBoundCtx(ctx, inst, Options{})
		timer.Stop()
		cancel()
		if err == nil {
			continue // search finished before the cancel landed
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("trial %d: err = %v, want context.Canceled", trial, err)
		}
		if res == nil || res.Solution == nil {
			continue // cancelled before the warm start produced an incumbent
		}
		observed = true
		if res.Optimal {
			t.Fatalf("trial %d: cancelled result claims optimality", trial)
		}
		if _, cerr := inst.CheckSolution(res.Solution); cerr != nil {
			t.Fatalf("trial %d: incumbent invalid: %v", trial, cerr)
		}
	}
	if !observed {
		t.Skip("no trial was cancelled with an incumbent in hand")
	}
}

func TestBranchAndBoundCtxBackgroundMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	for trial := 0; trial < 10; trial++ {
		inst := testutil.RandomInstance(rng, smallParams())
		want, err := BranchAndBound(inst, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got, err := BranchAndBoundCtx(context.Background(), inst, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got.Solution.Objective != want.Solution.Objective || got.Nodes != want.Nodes {
			t.Fatalf("trial %d: ctx (obj=%d nodes=%d) != plain (obj=%d nodes=%d)",
				trial, got.Solution.Objective, got.Nodes, want.Solution.Objective, want.Nodes)
		}
	}
}
