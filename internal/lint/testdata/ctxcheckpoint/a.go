// Package fixture exercises the ctx-checkpoint rule (checked as if it
// lived in internal/solver).
package fixture

import "context"

func bad(ctx context.Context, n int) int {
	total := 0
	for total < n { // want "never polls the context"
		total++
	}
	return total
}

func badInfinite(ctx context.Context) {
	for { // want "never polls the context"
	}
}

func goodPoll(ctx context.Context, n int) (int, error) {
	total := 0
	for total < n {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		total++
	}
	return total, nil
}

func goodDelegate(ctx context.Context, n int) int {
	v := 0
	for v < n {
		v += helperCtx(ctx)
	}
	return v
}

func helperCtx(ctx context.Context) int { return 1 }

// Bounded three-clause and range loops are out of the rule's scope.
func boundedOK(ctx context.Context, xs []int) int {
	t := 0
	for i := 0; i < len(xs); i++ {
		t += xs[i]
	}
	for _, x := range xs {
		t += x
	}
	return t
}

// No context parameter: out of scope.
func noCtx(n int) {
	for n > 0 {
		n--
	}
}

// Closures inherit the enclosing function's context scope.
func closure(ctx context.Context, n int) {
	fn := func() {
		for n > 0 { // want "never polls the context"
			n--
		}
	}
	fn()
}

func suppressed(ctx context.Context, n int) int {
	//lint:ignore ctx-checkpoint bounded in practice: n is a tiny constant at every call site
	for n > 0 {
		n--
	}
	return n
}
