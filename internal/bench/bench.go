// Package bench regenerates every table and figure of the paper's
// evaluation (§VII). Each experiment id (F5, F6a–F6d, F7a–F7d, F8a–F8d,
// F9a, F9b, T3, T4, F10, F12a, F12b, F13a, F13b, plus the ablations) has
// a registered runner that sweeps the paper's parameters — scaled to the
// host by a size factor — runs every competing algorithm, and emits one
// Row per (x-value, algorithm) point. cmd/mcfsbench renders the rows as
// CSV and markdown; bench_test.go wraps each experiment in a testing.B
// benchmark.
package bench

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"mcfs"
	"mcfs/internal/data"
	"mcfs/internal/gen"
	"mcfs/internal/obs"
	"mcfs/internal/solver"
)

// Algo names a competing algorithm as it appears in result rows.
type Algo string

// Algorithms, in the paper's naming.
const (
	AlgoWMA     Algo = "wma"
	AlgoUF      Algo = "wma-uf"
	AlgoNaive   Algo = "wma-naive"
	AlgoHilbert Algo = "hilbert"
	AlgoBRNN    Algo = "brnn"
	AlgoExact   Algo = "exact" // Gurobi stand-in (branch & bound)
)

// publicAlgo maps the row labels (the paper's naming) onto the public
// registry, which provides the single dispatch point shared with the
// commands; bench keeps its own labels because the emitted rows are
// stable output.
var publicAlgo = map[Algo]mcfs.Algorithm{
	AlgoWMA:     mcfs.AlgorithmWMA,
	AlgoUF:      mcfs.AlgorithmUniformFirst,
	AlgoNaive:   mcfs.AlgorithmNaive,
	AlgoHilbert: mcfs.AlgorithmHilbert,
	AlgoBRNN:    mcfs.AlgorithmBRNN,
	AlgoExact:   mcfs.AlgorithmExact,
}

// Row is one measured point of an experiment.
type Row struct {
	Exp       string        // experiment id, e.g. "F6a"
	X         string        // x-axis label, e.g. "n"
	XVal      float64       // x-axis value
	Algo      Algo          // algorithm (empty for stat-only rows)
	Objective int64         // objective value; -1 when not applicable
	Runtime   time.Duration // wall-clock solve time
	Note      string        // "", "timeout", "infeasible", or a stat payload
	// Counters holds the solver work counters recorded during the run
	// (nonzero entries only, keyed by obs counter name); nil for
	// stat-only rows. Counters are machine-independent: unlike Runtime
	// they are byte-stable across hosts and worker counts, which makes
	// them the column to diff when chasing algorithmic regressions.
	Counters map[string]int64
}

// Config tunes an experiment run.
type Config struct {
	// Scale multiplies the default (laptop-sized) sweep sizes; 1 is the
	// default small run, larger values approach the paper's sizes.
	Scale float64
	// ExactBudget bounds each exact-solver point; expiry is recorded as
	// "timeout" — the analogue of the paper's 24-hour Gurobi cutoff.
	// Zero means 15 seconds.
	ExactBudget time.Duration
	// AlgoTimeout bounds each heuristic-algorithm point with a context
	// deadline; expiry is recorded as "timeout" (with no objective — the
	// heuristics hold no incumbent mid-run). Zero means unlimited. The
	// exact solver keeps its separate ExactBudget.
	AlgoTimeout time.Duration
	// Seed drives all data generation.
	Seed int64
	// SkipExact and SkipBRNN drop the slowest competitors (useful for
	// quick regression runs).
	SkipExact bool
	SkipBRNN  bool
	// ServeURL points the "serve" experiment at a running mcfsd; empty
	// means self-host an in-process server on a loopback port.
	ServeURL string
	// ServeEvents is the total number of load-generator operations for
	// the "serve" experiment; 0 scales with Scale.
	ServeEvents int
	// Workers bounds the number of experiment cells (instance generation
	// plus one algorithm run) solved concurrently; 0 or negative means
	// runtime.GOMAXPROCS(0). Row output is deterministic at any worker
	// count, except the two fields that are wall-clock by nature: Runtime
	// values, and the incumbent objective of exact rows marked "timeout"
	// (how far branch & bound gets before its cutoff depends on machine
	// load — it varies between two serial runs too).
	Workers int
}

func (c Config) normalized() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.ExactBudget == 0 {
		c.ExactBudget = 15 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Runner executes one experiment. Rows are emitted in a deterministic
// order regardless of Config.Workers: parallel runners buffer each
// cell's rows and replay them in cell-submission order (see parallel.go).
type Runner func(cfg Config, emit func(Row)) error

var registry = map[string]Runner{}

func register(id string, r Runner) {
	registry[id] = r
}

// IDs returns all registered experiment ids, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Known reports whether an experiment id is registered. Callers running
// several experiments should validate every id up front so that a typo
// late in the list does not surface only after earlier experiments have
// already burned their runtime.
func Known(id string) bool {
	_, ok := registry[id]
	return ok
}

// Run executes the experiment with the given id.
func Run(id string, cfg Config, emit func(Row)) error {
	r, ok := registry[id]
	if !ok {
		return fmt.Errorf("bench: unknown experiment %q (have %v)", id, IDs())
	}
	return r(cfg.normalized(), emit)
}

// scaleInts multiplies a base sweep by cfg.Scale, rounding and
// deduplicating.
func scaleInts(base []int, scale float64) []int {
	out := make([]int, 0, len(base))
	last := -1
	for _, b := range base {
		v := int(float64(b) * scale)
		if v < 8 {
			v = 8
		}
		if v != last {
			out = append(out, v)
			last = v
		}
	}
	return out
}

// runAlgo measures one algorithm on one instance and emits a row. The
// solution is re-verified from scratch; verification failures surface in
// the note (they indicate bugs, not data properties).
func runAlgo(exp, x string, xv float64, algo Algo, inst *data.Instance, cfg Config, seed int64, emit func(Row)) {
	pub, known := publicAlgo[algo]
	var sol *data.Solution
	var note string
	var err error
	rec := obs.New()
	start := time.Now()
	if !known {
		err = fmt.Errorf("bench: unknown algorithm %q", algo)
	} else {
		opts := []mcfs.Option{mcfs.WithSeed(seed)}
		if algo == AlgoExact {
			opts = append(opts, mcfs.WithTimeBudget(cfg.ExactBudget))
		} else if cfg.AlgoTimeout > 0 {
			opts = append(opts, mcfs.WithTimeBudget(cfg.AlgoTimeout))
		}
		// Recording is passive (see internal/obs): the counters never feed
		// back into the solve, and the per-flush atomic adds are noise next
		// to a solve, so the Runtime column stays comparable to old rows.
		sol, note, err = pub.Solve(obs.WithRecorder(context.Background(), rec), inst, opts...)
	}
	elapsed := time.Since(start)

	// The registry reports an expired exact budget as a note on the
	// incumbent; an expired AlgoTimeout surfaces as a context deadline
	// error. Both are the paper's "solver cut off" outcome.
	timedOut := note == "timeout (best incumbent)" ||
		errors.Is(err, solver.ErrTimeout) || errors.Is(err, context.DeadlineExceeded)

	row := Row{Exp: exp, X: x, XVal: xv, Algo: algo, Runtime: elapsed, Objective: -1,
		Counters: nonzeroCounters(rec)}
	switch {
	case timedOut:
		// The incumbent at cutoff gets the same from-scratch verification
		// as every completed result before its objective is trusted.
		row.Note = "timeout"
		if sol != nil {
			if _, verr := inst.CheckSolution(sol); verr != nil {
				row.Note = "timeout; VERIFICATION FAILED: " + verr.Error()
			} else {
				row.Objective = sol.Objective // best incumbent at cutoff
			}
		}
	case errors.Is(err, data.ErrInfeasible):
		row.Note = "infeasible"
	case err != nil:
		row.Note = "error: " + err.Error()
	default:
		if _, verr := inst.CheckSolution(sol); verr != nil {
			row.Note = "VERIFICATION FAILED: " + verr.Error()
		} else {
			row.Objective = sol.Objective
		}
	}
	emit(row)
}

// nonzeroCounters snapshots rec's nonzero work counters; nil when the
// run recorded nothing (e.g. an unknown algorithm short-circuited).
func nonzeroCounters(rec *obs.Recorder) map[string]int64 {
	var out map[string]int64
	for _, c := range obs.Counters() {
		if v := rec.Counter(c); v != 0 {
			if out == nil {
				out = make(map[string]int64, 8)
			}
			out[c.Name()] = v
		}
	}
	return out
}

// feasibleCustomers samples m customers over the whole node set and
// retries with shifted seeds when the resulting instance would be
// infeasible (customers scattered into more tiny components than the
// budget covers); as a last resort it samples from the largest
// component. The facilities and budget must already be set on inst.
func feasibleCustomers(inst *data.Instance, m int, seed int64) {
	for attempt := int64(0); attempt < 4; attempt++ {
		rng := rand.New(rand.NewSource(seed + attempt))
		inst.Customers = gen.SampleCustomers(inst.G, m, rng)
		if ok, _ := inst.Feasible(); ok {
			return
		}
	}
	rng := rand.New(rand.NewSource(seed + 4))
	inst.Customers = gen.SampleCustomersFrom(gen.LargestComponent(inst.G), m, rng)
}

// disjointWorkload places m customers and makes every non-customer node
// a candidate with capacity from capFn — the paper's convention of not
// co-locating facilities with customers (its §IV-B example), which keeps
// the F_p = V panels nondegenerate when k approaches m. Retries seeds
// until feasible, falling back to the largest component.
func disjointWorkload(inst *data.Instance, m, k int, capFn func(int) int, seed int64) {
	build := func(customers []int32) {
		isCust := make(map[int32]bool, len(customers))
		for _, s := range customers {
			isCust[s] = true
		}
		var pool []int32
		for v := int32(0); v < int32(inst.G.N()); v++ {
			if !isCust[v] {
				pool = append(pool, v)
			}
		}
		inst.Customers = customers
		inst.Facilities = gen.NodesFacilities(pool, capFn)
		inst.K = k
	}
	for attempt := int64(0); attempt < 4; attempt++ {
		rng := rand.New(rand.NewSource(seed + attempt))
		build(gen.SampleCustomers(inst.G, m, rng))
		if ok, _ := inst.Feasible(); ok {
			return
		}
	}
	rng := rand.New(rand.NewSource(seed + 4))
	pool := gen.LargestComponent(inst.G)
	build(gen.SampleCustomersFrom(pool, m, rng))
}
