// Package fixture exercises the ctx-checkpoint rule (checked as if it
// lived in internal/solver).
package fixture

import "context"

func bad(ctx context.Context, n int) int {
	total := 0
	for total < n { // want "never polls the context"
		total = total*2 + 1
	}
	return total
}

func badInfinite(ctx context.Context) {
	for { // want "never polls the context"
	}
}

func goodPoll(ctx context.Context, n int) (int, error) {
	total := 0
	for total < n {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		total++
	}
	return total, nil
}

func goodDelegate(ctx context.Context, n int) int {
	v := 0
	for v < n {
		v += helperCtx(ctx)
	}
	return v
}

func helperCtx(ctx context.Context) int { return 1 }

// Bounded three-clause and range loops are out of the rule's scope.
func boundedOK(ctx context.Context, xs []int) int {
	t := 0
	for i := 0; i < len(xs); i++ {
		t += xs[i]
	}
	for _, x := range xs {
		t += x
	}
	return t
}

// No context parameter: out of scope.
func noCtx(n int) {
	for n > 0 {
		n--
	}
}

// Closures inherit the enclosing function's context scope.
func closure(ctx context.Context, n int) {
	fn := func() {
		for n > 0 { // want "never polls the context"
			n = n - 1
		}
	}
	fn()
}

func suppressed(ctx context.Context, n int) int {
	//lint:ignore ctx-checkpoint bounded in practice: n is a tiny constant at every call site
	for n > 0 {
		n = n / 2
	}
	return n
}

// A pure monotone index walk is bounded by construction: every body
// statement is ++/-- of one variable and the condition tests it. No
// checkpoint needed.
func boundedScan(ctx context.Context, xs []int, k int) int {
	i := k - 1
	for i >= 0 && xs[i] == 0 {
		i--
	}
	return i
}

// Two mutated variables is not a monotone walk: the exemption is
// deliberately that narrow.
func notBoundedScan(ctx context.Context, k int) int {
	i, j := k, 0
	for i >= 0 { // want "never polls the context"
		i--
		j++
	}
	return j
}

// A local built by a *Ctx helper from the in-scope context is a
// carrier: draining it polls the context through the helper.
func carrier(ctx context.Context, n int) int {
	s := newScannerCtx(ctx, n)
	t := 0
	for {
		v, ok := s.next()
		if !ok {
			break
		}
		t += v
	}
	return t
}

// The same drain over a value built without the context still needs a
// checkpoint.
func notCarrier(ctx context.Context, n int) int {
	s := newScanner(n)
	t := 0
	for { // want "never polls the context"
		v, ok := s.next()
		if !ok {
			break
		}
		t += v
	}
	return t
}

type scanner struct{ n int }

func newScannerCtx(ctx context.Context, n int) *scanner { return &scanner{n: n} }

func newScanner(n int) *scanner { return &scanner{n: n} }

func (s *scanner) next() (int, bool) {
	if s.n == 0 {
		return 0, false
	}
	s.n--
	return s.n, true
}
