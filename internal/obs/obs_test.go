package obs

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
)

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.Add(DijkstraHeapPops, 5)
	if got := r.Counter(DijkstraHeapPops); got != 0 {
		t.Fatalf("nil recorder counter = %d, want 0", got)
	}
	p := r.Phase("solve")
	p.End()
	p.End() // double-End must be a no-op too
	if spans := r.Spans(); spans != nil {
		t.Fatalf("nil recorder spans = %v, want nil", spans)
	}
	snap := r.Snapshot()
	if len(snap) != int(numCounters) {
		t.Fatalf("nil recorder snapshot has %d entries, want %d", len(snap), numCounters)
	}
	for name, v := range snap {
		if v != 0 {
			t.Fatalf("nil recorder snapshot[%s] = %d, want 0", name, v)
		}
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf, "mcfs"); err != nil {
		t.Fatalf("nil recorder WritePrometheus: %v", err)
	}
	if !strings.Contains(buf.String(), "mcfs_dijkstra_heap_pops_total 0") {
		t.Fatalf("nil recorder exposition missing zero counter:\n%s", buf.String())
	}
}

func TestContextRoundTrip(t *testing.T) {
	if From(context.Background()) != nil {
		t.Fatal("From(Background) should be nil")
	}
	if From(nil) != nil {
		t.Fatal("From(nil) should be nil")
	}
	r := New()
	ctx := WithRecorder(context.Background(), r)
	if From(ctx) != r {
		t.Fatal("From did not return the attached recorder")
	}
	// Attaching nil leaves the context unchanged.
	ctx2 := WithRecorder(ctx, nil)
	if ctx2 != ctx {
		t.Fatal("WithRecorder(ctx, nil) should return ctx unchanged")
	}
}

func TestCounterNamesUnique(t *testing.T) {
	seen := map[string]Counter{}
	for _, c := range Counters() {
		name := c.Name()
		if name == "" {
			t.Fatalf("counter %d has empty name", c)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("counters %d and %d share name %q", prev, c, name)
		}
		seen[name] = c
		if c.Help() == "" {
			t.Fatalf("counter %s has empty help", name)
		}
	}
	if Counter(-1).Name() == "" || Counter(10_000).Name() == "" {
		t.Fatal("out-of-range counters should still render a name")
	}
}

func TestCountersConcurrent(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Add(SSPAAugmentingPaths, 1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter(SSPAAugmentingPaths); got != 8000 {
		t.Fatalf("concurrent adds = %d, want 8000", got)
	}
}

func TestSpanTreeNestingAndDeltas(t *testing.T) {
	r := New()
	solve := r.Phase("solve")
	r.Add(WMAIterations, 1)
	match := r.Phase("match")
	r.Add(SSPAAugmentingPaths, 3)
	match.End()
	r.Add(WMAIterations, 1)
	solve.End()

	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d roots, want 1", len(spans))
	}
	root := spans[0]
	if root.Name != "solve" {
		t.Fatalf("root name = %q", root.Name)
	}
	if root.Counters["wma_iterations"] != 2 {
		t.Fatalf("root wma_iterations = %d, want 2", root.Counters["wma_iterations"])
	}
	// The parent aggregates the child's counters.
	if root.Counters["sspa_augmenting_paths"] != 3 {
		t.Fatalf("root sspa_augmenting_paths = %d, want 3", root.Counters["sspa_augmenting_paths"])
	}
	if len(root.Children) != 1 || root.Children[0].Name != "match" {
		t.Fatalf("children = %+v, want one 'match'", root.Children)
	}
	child := root.Children[0]
	if child.Counters["sspa_augmenting_paths"] != 3 {
		t.Fatalf("child sspa_augmenting_paths = %d, want 3", child.Counters["sspa_augmenting_paths"])
	}
	if _, hasIter := child.Counters["wma_iterations"]; hasIter {
		t.Fatalf("child should not see counters recorded outside it: %v", child.Counters)
	}
	if root.Elapsed < child.Elapsed {
		t.Fatalf("root elapsed %v < child elapsed %v", root.Elapsed, child.Elapsed)
	}
}

func TestEndClosesAbandonedInnerPhases(t *testing.T) {
	r := New()
	outer := r.Phase("outer")
	r.Phase("inner") // abandoned (early return path)
	outer.End()
	// A new phase after the unwind is a fresh root, not a child of
	// the abandoned inner span.
	next := r.Phase("next")
	next.End()
	spans := r.Spans()
	if len(spans) != 2 || spans[0].Name != "outer" || spans[1].Name != "next" {
		t.Fatalf("unexpected roots: %+v", spans)
	}
	if len(spans[0].Children) != 1 || spans[0].Children[0].Name != "inner" {
		t.Fatalf("outer children: %+v", spans[0].Children)
	}
}

func TestSpanCap(t *testing.T) {
	r := New()
	for i := 0; i < maxSpans+10; i++ {
		p := r.Phase("p")
		p.End()
	}
	if got := len(r.Spans()); got != maxSpans {
		t.Fatalf("span count = %d, want cap %d", got, maxSpans)
	}
	// Counters keep working past the cap.
	r.Add(BnBNodesExpanded, 1)
	if r.Counter(BnBNodesExpanded) != 1 {
		t.Fatal("counters must survive span-cap overflow")
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := New()
	r.Add(DijkstraHeapPops, 42)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf, "mcfs"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := []string{
		"# HELP mcfs_dijkstra_heap_pops_total ",
		"# TYPE mcfs_dijkstra_heap_pops_total counter",
		"mcfs_dijkstra_heap_pops_total 42",
	}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Fatalf("exposition missing %q:\n%s", w, out)
		}
	}
	// Every line is a comment or "name value" — the shape the ci.sh
	// awk check enforces on the live endpoint.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("unparseable exposition line %q", line)
		}
	}
}

func TestWriteSpansJSONLDeterministic(t *testing.T) {
	mk := func() *Recorder {
		r := New()
		solve := r.Phase("solve")
		it := r.Phase("iterate")
		r.Add(WMAIterations, 1)
		m := r.Phase("match")
		r.Add(SSPAAugmentingPaths, 2)
		m.End()
		it.End()
		solve.End()
		return r
	}
	var a, b bytes.Buffer
	if err := WriteSpansJSONL(&a, mk().Spans()); err != nil {
		t.Fatal(err)
	}
	if err := WriteSpansJSONL(&b, mk().Spans()); err != nil {
		t.Fatal(err)
	}
	norm := func(s string) string {
		// elapsed_ns is the only nondeterministic field; strip it.
		var out []string
		for _, line := range strings.Split(strings.TrimSpace(s), "\n") {
			i := strings.Index(line, `"elapsed_ns"`)
			j := strings.Index(line[i:], ",")
			out = append(out, line[:i]+line[i+j:])
		}
		return strings.Join(out, "\n")
	}
	if norm(a.String()) != norm(b.String()) {
		t.Fatalf("span JSONL not structurally deterministic:\n%s\n---\n%s", a.String(), b.String())
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d JSONL lines, want 3:\n%s", len(lines), a.String())
	}
	if !strings.Contains(lines[0], `"depth":0`) || !strings.Contains(lines[2], `"depth":2`) {
		t.Fatalf("depth fields wrong:\n%s", a.String())
	}
	if !strings.Contains(lines[2], `"sspa_augmenting_paths":2`) {
		t.Fatalf("leaf counters missing:\n%s", a.String())
	}
}

func BenchmarkRecorderAdd(b *testing.B) {
	r := New()
	for i := 0; i < b.N; i++ {
		r.Add(DijkstraHeapPops, 1)
	}
}

func BenchmarkNilRecorderAdd(b *testing.B) {
	var r *Recorder
	for i := 0; i < b.N; i++ {
		r.Add(DijkstraHeapPops, 1)
	}
}

func BenchmarkFrom(b *testing.B) {
	ctx := WithRecorder(context.Background(), New())
	for i := 0; i < b.N; i++ {
		if From(ctx) == nil {
			b.Fatal("lost recorder")
		}
	}
}
