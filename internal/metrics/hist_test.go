package metrics

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestHistogramExactSmall(t *testing.T) {
	var h Histogram
	for i := 0; i < 8; i++ {
		h.Observe(time.Duration(i))
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	if h.Max() != 7 {
		t.Fatalf("max = %d, want 7", h.Max())
	}
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("q0 = %d, want 0", got)
	}
	if got := h.Quantile(1); got != 7 {
		t.Fatalf("q1 = %d, want 7", got)
	}
}

func TestHistogramBucketRoundTrip(t *testing.T) {
	// Every bucket's lower bound must map back to that bucket, and
	// bucket indexes must be monotone in the observed value.
	for i := 0; i < histBuckets; i++ {
		if got := bucketOf(lowerBound(i)); got != i {
			t.Fatalf("bucketOf(lowerBound(%d)) = %d", i, got)
		}
	}
	prev := -1
	for ns := int64(0); ns < 1<<20; ns += 137 {
		b := bucketOf(ns)
		if b < prev {
			t.Fatalf("bucketOf not monotone at %d: %d < %d", ns, b, prev)
		}
		prev = b
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	var raw []int64
	for i := 0; i < 20000; i++ {
		// Latency-shaped: mostly microseconds, a long tail to ~100ms.
		ns := int64(1000 + rng.ExpFloat64()*float64(50*time.Microsecond))
		if rng.Intn(100) == 0 {
			ns += int64(rng.Intn(int(100 * time.Millisecond)))
		}
		raw = append(raw, ns)
		h.Observe(time.Duration(ns))
	}
	sort.Slice(raw, func(i, j int) bool { return raw[i] < raw[j] })
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := raw[int(q*float64(len(raw)))-1]
		got := int64(h.Quantile(q))
		// The log-linear buckets bound the error at one sub-bucket width
		// (~12.5%); allow a little slack for the rank rounding.
		if got < exact-exact/4 || got > exact+exact/4+1 {
			t.Fatalf("q%.2f = %d, exact %d (off by more than 25%%)", q, got, exact)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, whole Histogram
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		d := time.Duration(rng.Int63n(int64(time.Millisecond)))
		whole.Observe(d)
		if i%2 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() || a.Max() != whole.Max() || a.Mean() != whole.Mean() {
		t.Fatalf("merge mismatch: count %d/%d max %v/%v mean %v/%v",
			a.Count(), whole.Count(), a.Max(), whole.Max(), a.Mean(), whole.Mean())
	}
	for _, q := range []float64{0.5, 0.99} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("merged q%.2f = %v, want %v", q, a.Quantile(q), whole.Quantile(q))
		}
	}
}

func TestHistogramClampAndEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Observe(-time.Second) // clamps to zero
	h.Observe(48 * time.Hour)
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Quantile(1) <= 0 {
		t.Fatal("clamped huge observation lost")
	}
}

// A high quantile's bucket upper bound must never read above the exact
// tracked maximum (p99 > max in a latency report is nonsense).
func TestHistogramQuantileNotAboveMax(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	h.Observe(8685 * time.Microsecond) // lands mid-bucket
	for _, q := range []float64{0.5, 0.99, 1} {
		if got := h.Quantile(q); got > h.Max() {
			t.Fatalf("q%.2f = %v exceeds max %v", q, got, h.Max())
		}
	}
}
