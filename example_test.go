package mcfs_test

import (
	"bytes"
	"fmt"
	"log"

	"mcfs"
)

// ExampleSolve builds a tiny network by hand and runs the Wide Matching
// Algorithm.
func ExampleSolve() {
	// A path 0—1—2—3—4 with unit-length roads.
	b := mcfs.NewGraphBuilder(5, false)
	for i := int32(0); i < 4; i++ {
		b.AddEdge(i, i+1, 1)
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	inst := &mcfs.Instance{
		G:         g,
		Customers: []int32{0, 1, 4},
		Facilities: []mcfs.Facility{
			{Node: 1, Capacity: 2},
			{Node: 3, Capacity: 2},
			{Node: 4, Capacity: 1},
		},
		K: 2,
	}
	sol, err := mcfs.Solve(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("objective:", sol.Objective)
	for i, j := range sol.Assignment {
		fmt.Printf("customer at node %d -> facility at node %d\n",
			inst.Customers[i], inst.Facilities[j].Node)
	}
	// Output:
	// objective: 1
	// customer at node 0 -> facility at node 1
	// customer at node 1 -> facility at node 1
	// customer at node 4 -> facility at node 4
}

// ExampleSolveExact shows the exact solver agreeing with WMA on a small
// instance.
func ExampleSolveExact() {
	b := mcfs.NewGraphBuilder(4, false)
	b.AddEdge(0, 1, 2).AddEdge(1, 2, 2).AddEdge(2, 3, 2)
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	inst := &mcfs.Instance{
		G:          g,
		Customers:  []int32{0, 3},
		Facilities: []mcfs.Facility{{Node: 1, Capacity: 1}, {Node: 2, Capacity: 1}},
		K:          2,
	}
	res, err := mcfs.SolveExact(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("optimal:", res.Optimal, "objective:", res.Solution.Objective)
	// Output:
	// optimal: true objective: 4
}

// ExampleNewReallocator serves an arrival incrementally.
func ExampleNewReallocator() {
	b := mcfs.NewGraphBuilder(5, false)
	for i := int32(0); i < 4; i++ {
		b.AddEdge(i, i+1, 1)
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	inst := &mcfs.Instance{
		G:          g,
		Customers:  []int32{0},
		Facilities: []mcfs.Facility{{Node: 1, Capacity: 2}, {Node: 3, Capacity: 2}},
		K:          2,
	}
	r, err := mcfs.NewReallocator(inst, 2.0)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := r.AddCustomer(4); err != nil {
		log.Fatal(err)
	}
	obj, err := r.Objective()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("customers:", r.Customers(), "objective:", obj)
	// Output:
	// customers: 2 objective: 2
}

// ExampleWriteInstance round-trips an instance through the text format.
func ExampleWriteInstance() {
	b := mcfs.NewGraphBuilder(2, false)
	b.AddEdge(0, 1, 7)
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	inst := &mcfs.Instance{
		G:          g,
		Customers:  []int32{0},
		Facilities: []mcfs.Facility{{Node: 1, Capacity: 1}},
		K:          1,
	}
	buf := &bytes.Buffer{}
	if err := mcfs.WriteInstance(buf, inst); err != nil {
		log.Fatal(err)
	}
	back, err := mcfs.ReadInstance(buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("customers:", back.M(), "facilities:", back.L(), "k:", back.K)
	// Output:
	// customers: 1 facilities: 1 k: 1
}
