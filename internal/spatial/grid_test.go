package spatial

import (
	"math"
	"math/rand"
	"testing"
)

// bruteNearest is the reference.
func bruteNearest(xs, ys []float64, alive []bool, x, y float64) int {
	best, bestD := -1, math.Inf(1)
	for i := range xs {
		if alive != nil && !alive[i] {
			continue
		}
		dx, dy := xs[i]-x, ys[i]-y
		if d := dx*dx + dy*dy; d < bestD {
			bestD, best = d, i
		}
	}
	return best
}

func TestGridNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(300)
		xs := make([]float64, n)
		ys := make([]float64, n)
		ids := make([]int32, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
			ys[i] = rng.Float64() * 100
			ids[i] = int32(i)
		}
		g := NewGridIndex(xs, ys, ids)
		for q := 0; q < 50; q++ {
			x := rng.Float64()*140 - 20 // include out-of-extent queries
			y := rng.Float64()*140 - 20
			id, _, ok := g.Nearest(x, y)
			if !ok {
				t.Fatal("nonempty index returned no point")
			}
			want := bruteNearest(xs, ys, nil, x, y)
			// Ties allowed: accept equal distance.
			dxa, dya := xs[id]-x, ys[id]-y
			dxb, dyb := xs[want]-x, ys[want]-y
			if dxa*dxa+dya*dya > dxb*dxb+dyb*dyb+1e-9 {
				t.Fatalf("trial %d: nearest=%d (d=%v), want %d (d=%v)",
					trial, id, dxa*dxa+dya*dya, want, dxb*dxb+dyb*dyb)
			}
		}
	}
}

func TestGridRemoveAndConsume(t *testing.T) {
	xs := []float64{0, 10, 20}
	ys := []float64{0, 0, 0}
	g := NewGridIndex(xs, ys, []int32{100, 101, 102})
	id, slot, ok := g.Nearest(1, 0)
	if !ok || id != 100 {
		t.Fatalf("nearest = %d", id)
	}
	g.Remove(slot)
	g.Remove(slot) // idempotent
	if g.Len() != 2 {
		t.Fatalf("len = %d", g.Len())
	}
	id, slot, ok = g.Nearest(1, 0)
	if !ok || id != 101 {
		t.Fatalf("after removal nearest = %d, want 101", id)
	}
	g.Remove(slot)
	id, slot, ok = g.Nearest(1, 0)
	if !ok || id != 102 {
		t.Fatalf("nearest = %d, want 102", id)
	}
	g.Remove(slot)
	if _, _, ok := g.Nearest(1, 0); ok {
		t.Fatal("empty index returned a point")
	}
}

func TestGridDegenerate(t *testing.T) {
	// Empty.
	g := NewGridIndex(nil, nil, nil)
	if _, _, ok := g.Nearest(0, 0); ok {
		t.Fatal("empty index returned a point")
	}
	// All points identical.
	xs := []float64{5, 5, 5}
	ys := []float64{5, 5, 5}
	g = NewGridIndex(xs, ys, []int32{1, 2, 3})
	if _, _, ok := g.Nearest(100, -100); !ok {
		t.Fatal("identical-point index failed")
	}
}

func TestGridConsumeMatchesBruteForce(t *testing.T) {
	// Repeated nearest+remove must match brute-force consume ordering.
	rng := rand.New(rand.NewSource(4))
	n := 120
	xs := make([]float64, n)
	ys := make([]float64, n)
	ids := make([]int32, n)
	for i := range xs {
		xs[i] = rng.Float64() * 50
		ys[i] = rng.Float64() * 50
		ids[i] = int32(i)
	}
	g := NewGridIndex(xs, ys, ids)
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	for q := 0; q < n; q++ {
		x := rng.Float64() * 50
		y := rng.Float64() * 50
		id, slot, ok := g.Nearest(x, y)
		if !ok {
			t.Fatal("index exhausted early")
		}
		want := bruteNearest(xs, ys, alive, x, y)
		dxa, dya := xs[id]-x, ys[id]-y
		dxb, dyb := xs[want]-x, ys[want]-y
		if dxa*dxa+dya*dya > dxb*dxb+dyb*dyb+1e-9 {
			t.Fatalf("query %d: got %d, want %d", q, id, want)
		}
		g.Remove(slot)
		alive[id] = false
	}
}
