// Package fix exercises the typed sharpening of ctx-checkpoint: the
// context can hide behind a named interface, and an unrelated variable
// that merely shares the parameter's name is not a poll.
package fix

import "context"

// Job embeds context.Context; type-checking flattens the embedding, so
// the rule recognizes a Job parameter as a context.
type Job interface {
	context.Context
}

func unpolled(j Job, n int) int {
	for n > 0 { // want "never polls the context"
		n = n - 1
	}
	return n
}

func polled(j Job, n int) int {
	for n > 0 {
		if j.Err() != nil {
			return -1
		}
		n--
	}
	return n
}

// shadow declares a local named ctx inside the loop; by spelling it
// looks like a poll, by resolution it is an unrelated int.
func shadow(ctx context.Context, n int) int {
	for n > 0 { // want "never polls the context"
		ctx := n
		_ = ctx
		n--
	}
	return n
}

// feed stands in for a context-carrying iterator (graph's NNSearcherCtx
// in the real module).
type feed struct{ n int }

func openFeedCtx(j Job, n int) *feed { return &feed{n: n} }

func (f *feed) next() (int, bool) {
	if f.n == 0 {
		return 0, false
	}
	f.n--
	return f.n, true
}

// drain polls j through the feed the Ctx helper built from it: the
// carrier resolves by object identity, so the loop needs no extra
// checkpoint.
func drain(j Job, n int) int {
	f := openFeedCtx(j, n)
	t := 0
	for {
		v, ok := f.next()
		if !ok {
			break
		}
		t += v
	}
	return t
}

func keep() {
	_ = unpolled
	_ = polled
	_ = shadow
	_ = drain
}
