// Package graph is the fixture stand-in for the module's graph layer.
package graph

// Graph mirrors the shape that matters to the rule: a named type in a
// package whose import path ends in "graph", carrying reference fields.
type Graph struct {
	N   int
	Adj [][]int64
}

// Clone returns a deep copy; the rule treats its result as owned.
func (g *Graph) Clone() *Graph {
	adj := make([][]int64, len(g.Adj))
	for i, row := range g.Adj {
		adj[i] = append([]int64(nil), row...)
	}
	return &Graph{N: g.N, Adj: adj}
}
