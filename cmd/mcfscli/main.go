// Command mcfscli solves an MCFS instance file with any of the
// repository's algorithms and prints the objective, runtime, and
// optionally the full assignment.
//
//	mcfscli -algo wma -in inst.mcfs
//	mcfscli -algo exact -timeout 60s -in inst.mcfs
//	mcfscli -algo hilbert -in inst.mcfs -assignment
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"mcfs"
)

func main() {
	var (
		algo       = flag.String("algo", "wma", "algorithm: wma | uf | hilbert | brnn | naive | exact | exhaustive")
		in         = flag.String("in", "", "instance file (required)")
		kOverride  = flag.Int("k", 0, "override the instance's facility budget")
		timeout    = flag.Duration("timeout", 0, "time budget for -algo exact")
		seed       = flag.Int64("seed", 1, "seed for -algo naive")
		assignment = flag.Bool("assignment", false, "print the per-customer assignment")
		verify     = flag.Bool("verify", true, "re-verify the solution from scratch")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "mcfscli: -in is required")
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	inst, err := mcfs.ReadInstance(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if *kOverride > 0 {
		inst.K = *kOverride
	}

	start := time.Now()
	sol, err := run(*algo, inst, *timeout, *seed)
	elapsed := time.Since(start)
	if err != nil && sol == nil {
		fatal(err)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcfscli: warning: %v (reporting best-so-far)\n", err)
	}

	if *verify {
		if _, err := inst.CheckSolution(sol); err != nil {
			fatal(fmt.Errorf("solution failed verification: %w", err))
		}
	}
	fmt.Printf("algorithm   %s\n", *algo)
	fmt.Printf("instance    n=%d edges=%d m=%d l=%d k=%d\n",
		inst.G.N(), inst.G.M(), inst.M(), inst.L(), inst.K)
	fmt.Printf("objective   %d\n", sol.Objective)
	fmt.Printf("facilities  %d selected\n", len(sol.Selected))
	fmt.Printf("runtime     %s\n", elapsed)
	if *assignment {
		for i, j := range sol.Assignment {
			fmt.Printf("customer %d @node %d -> facility %d @node %d\n",
				i, inst.Customers[i], j, inst.Facilities[j].Node)
		}
	}
}

func run(algo string, inst *mcfs.Instance, timeout time.Duration, seed int64) (*mcfs.Solution, error) {
	switch algo {
	case "wma":
		return mcfs.Solve(inst)
	case "uf":
		return mcfs.SolveUniformFirst(inst)
	case "hilbert":
		return mcfs.SolveHilbert(inst)
	case "brnn":
		return mcfs.SolveBRNN(inst)
	case "naive":
		return mcfs.SolveNaive(inst, mcfs.WithSeed(seed))
	case "exact":
		var opts []mcfs.Option
		if timeout > 0 {
			opts = append(opts, mcfs.WithTimeBudget(timeout))
		}
		res, err := mcfs.SolveExact(inst, opts...)
		if res == nil {
			return nil, err
		}
		if err != nil && errors.Is(err, mcfs.ErrTimeout) {
			return res.Solution, err
		}
		return res.Solution, err
	case "exhaustive":
		return mcfs.SolveExhaustive(inst, 0)
	default:
		return nil, fmt.Errorf("unknown -algo %q", algo)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcfscli:", err)
	os.Exit(1)
}
