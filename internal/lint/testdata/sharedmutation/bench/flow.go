// flow.go exercises the v3 engine: flow-sensitive facts (rebinding
// heals, branch joins merge, loop back edges propagate) and
// cross-package summaries (writes proven in fix/graph and fix/data are
// reported at the bench call site; provably fresh results are owned).
package bench

import (
	"fix/data"
	"fix/graph"
)

func flowSweep(p *pool, pt point, cond bool, n int) {
	p.cell(func() {
		inst := pt.inst()
		inst = inst.Clone()
		inst.K = 5 // rebinding healed it: owned from the Clone on
		use(inst)
	})
	p.cell(func() {
		inst := pt.inst().Clone()
		if cond {
			inst = pt.inst()
		}
		inst.K = 1 // want "write to field K of a pool-shared instance"
		use(inst)
	})
	p.cell(func() {
		cl := pt.inst().Clone()
		for i := 0; i < n; i++ {
			cl.Customers[0] = 1 // want "element write into a pool-shared backing array"
			cl = pt.inst()      // shared flows around the back edge into the next iteration
		}
	})
	p.cell(func() {
		inst := pt.inst()
		graph.Scale(inst.G, 2) // want "writes through its argument"
		use(inst)
	})
	p.cell(func() {
		pt.inst().G.Reset() // want "writes through its receiver"
	})
	p.cell(func() {
		own := data.Fresh(3) // provably fresh across the package boundary: owned
		own.K = 7
		own.Customers[0] = 1
		use(own)
	})
	p.cell(func() {
		inst := pt.inst()
		data.Touch(inst) // want "writes through its argument"
	})
	p.cell(func() {
		inst := pt.inst()
		_ = graph.Degree(inst.G, 0) // read-only callee: no finding
		v := graph.View(inst.G)
		v.Adj[0][0] = 9 // want "element write into a pool-shared backing array"
	})
}
