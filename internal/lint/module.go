package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Module is the whole-run context handed to ModuleRules: every loaded
// package, plus the cross-package function summaries (summary.go)
// computed over the typed ones. Package rules see one package at a
// time; module rules see the seams between them — which is exactly
// where the serve-era invariants (sentinel parity, single-writer
// confinement, provenance escaping through an exported helper) live.
type Module struct {
	Pkgs []*Package

	byDir     map[string]*Package
	summaries map[string]*pkgSummary // keyed by types.Package.Path()
}

// newModule assembles the module context: packages are summarized in
// import-dependency order so a summary can fold in the summaries of
// the packages it calls into.
func newModule(pkgs []*Package) *Module {
	m := &Module{
		Pkgs:      pkgs,
		byDir:     make(map[string]*Package, len(pkgs)),
		summaries: make(map[string]*pkgSummary, len(pkgs)),
	}
	for _, p := range pkgs {
		m.byDir[p.Dir] = p
	}
	for _, p := range m.typedInImportOrder() {
		m.summaries[p.Types.Path()] = summarizePackage(m, p)
	}
	return m
}

// PackageByDir returns the package at the module-relative directory, or
// nil when the run did not load it.
func (m *Module) PackageByDir(dir string) *Package { return m.byDir[dir] }

// summaryFor returns the summary of the package with the given import
// path, or nil when it was not part of the run (out-of-module, or the
// run was syntactic).
func (m *Module) summaryFor(path string) *pkgSummary { return m.summaries[path] }

// funcSummaryOf resolves the summary of the function or method obj
// denotes, or nil when its package was not summarized.
func (m *Module) funcSummaryOf(obj types.Object) *funcSummary {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	ps := m.summaryFor(fn.Pkg().Path())
	if ps == nil {
		return nil
	}
	return ps.funcs[summaryKey(fn)]
}

// typedInImportOrder returns the typed packages sorted so that every
// package appears after the in-run packages it imports (imports are
// acyclic in valid Go; ties resolve by Dir for determinism).
func (m *Module) typedInImportOrder() []*Package {
	byPath := make(map[string]*Package)
	var typed []*Package
	for _, p := range m.Pkgs {
		if p.Typed() && p.Types != nil {
			typed = append(typed, p)
			byPath[p.Types.Path()] = p
		}
	}
	sort.Slice(typed, func(i, j int) bool { return typed[i].Dir < typed[j].Dir })

	var order []*Package
	state := make(map[*Package]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		if state[p] != 0 {
			return
		}
		state[p] = 1
		for _, imp := range p.Types.Imports() {
			if dep, ok := byPath[imp.Path()]; ok && state[dep] != 1 {
				visit(dep)
			}
		}
		state[p] = 2
		order = append(order, p)
	}
	for _, p := range typed {
		visit(p)
	}
	return order
}

// fileAt maps a position back to the file of pkg containing it — how a
// module rule reports a finding discovered while looking at resolved
// objects rather than walking one file.
func (p *Package) fileAt(pos token.Pos) *File {
	for _, f := range p.Files {
		if f.AST.FileStart <= pos && pos <= f.AST.FileEnd {
			return f
		}
	}
	return nil
}

// funcDecls indexes the package's function declarations (with bodies)
// by their resolved object. Test files are skipped, matching the rest
// of the typed engine.
func (p *Package) funcDecls() map[types.Object]*declSite {
	decls := make(map[types.Object]*declSite)
	if !p.Typed() {
		return decls
	}
	for _, f := range p.Files {
		if f.Test {
			continue
		}
		for _, decl := range f.AST.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := p.ObjectOf(fd.Name); obj != nil {
					decls[obj] = &declSite{file: f, decl: fd}
				}
			}
		}
	}
	return decls
}
