package lint

import (
	"go/ast"
	"strings"
)

// CloseCheck guards the CLIs' write paths: inside cmd/, a bare or
// deferred `f.Close()` on an *os.File whose error is discarded is a
// violation. For a file being written, a failed Close can be the only
// sign of a short write — the PR-1 audit found "wrote" confirmations
// printing after the data silently failed to reach disk. Read-path
// closes that are deliberately unchecked must say so with
// //lint:ignore closecheck <reason>.
//
// With type information the rule tracks what an expression *is* rather
// than how it was produced: any identifier whose static type is
// *os.File counts (parameters, struct fields' pointees, helper
// returns), and so does an identifier of any type that was assigned a
// value of static type *os.File — which follows the file through
// interface conversions (`var c io.Closer = f; c.Close()`) that the
// syntactic os.Open/Create/OpenFile pattern could never see. Without
// type info the rule falls back to the syntactic evidence.
type CloseCheck struct{}

// Name implements Rule.
func (CloseCheck) Name() string { return "closecheck" }

// Doc implements Rule.
func (CloseCheck) Doc() string {
	return "no discarded (*os.File).Close() in cmd/ — check the error or annotate why not"
}

// Check implements Rule.
func (CloseCheck) Check(pkg *Package, report ReportFunc) {
	if pkg.Dir != "cmd" && !strings.HasPrefix(pkg.Dir, "cmd/") {
		return
	}
	for _, f := range pkg.Files {
		if f.Test {
			continue
		}
		for _, decl := range f.AST.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkCloseFunc(pkg, f, fd.Type, fd.Body, nil, report)
			}
		}
	}
}

// fileEvidence reports whether an expression verifiably yields an
// *os.File: by its static type when the package is typed, by the
// os.Open/os.Create/os.OpenFile call pattern otherwise. For calls the
// first result of a multi-value return is what gets bound.
func fileEvidence(pkg *Package, e ast.Expr) bool {
	if pkg.Typed() {
		return isOSFileType(firstResultType(pkg.TypeOf(e)))
	}
	call, ok := e.(*ast.CallExpr)
	return ok && isOSOpenCall(call)
}

// checkCloseFunc scans one function (and, recursively, its closures —
// which capture the enclosing files) for discarded Close calls on
// identifiers that verifiably hold an *os.File.
func checkCloseFunc(pkg *Package, f *File, ft *ast.FuncType, body *ast.BlockStmt, outer map[string]bool, report ReportFunc) {
	files := make(map[string]bool)
	for name := range outer {
		files[name] = true
	}
	if ft.Params != nil {
		for _, field := range ft.Params.List {
			typed := pkg.Typed() && len(field.Names) > 0 && isOSFileType(pkg.TypeOf(field.Names[0]))
			if typed || isOSFilePtr(field.Type) {
				for _, name := range field.Names {
					files[name.Name] = true
				}
			}
		}
	}
	// Two passes so a later alias (w = f) still resolves; the tracking
	// is flow-insensitive on purpose — over-approximating which idents
	// hold files can only surface more discarded closes, never hide one.
	for range [2]struct{}{} {
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					return true
				}
				tracked := fileEvidence(pkg, n.Rhs[0])
				if id, ok := n.Rhs[0].(*ast.Ident); ok && files[id.Name] {
					tracked = true
				}
				if tracked {
					if id, ok := n.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
						files[id.Name] = true
					}
				}
			case *ast.ValueSpec:
				// `var c io.Closer = f`: the declared names hold the file.
				if len(n.Values) == 1 && fileEvidence(pkg, n.Values[0]) {
					for _, name := range n.Names {
						if name.Name != "_" {
							files[name.Name] = true
						}
					}
				}
			}
			return true
		})
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkCloseFunc(pkg, f, n.Type, n.Body, files, report)
			return false
		case *ast.ExprStmt:
			if name, ok := discardedClose(pkg, n.X, files); ok {
				report(f, n.Pos(),
					"error from %s.Close() is discarded; on a write path a failed Close can be the only sign of a short write — check it (or //lint:ignore closecheck <reason> for a read path)", name)
			}
		case *ast.DeferStmt:
			if name, ok := discardedClose(pkg, n.Call, files); ok {
				report(f, n.Pos(),
					"deferred %s.Close() discards its error; close write-path files explicitly and check the error (or //lint:ignore closecheck <reason> for a read path)", name)
			}
		}
		return true
	})
}

// discardedClose reports whether e is `name.Close()` on an expression
// that holds a file: a tracked identifier, or (typed) any expression
// whose static type is *os.File — a field, a map entry, a call result.
func discardedClose(pkg *Package, e ast.Expr, files map[string]bool) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" {
		return "", false
	}
	if id, ok := sel.X.(*ast.Ident); ok && files[id.Name] {
		return id.Name, true
	}
	if pkg.Typed() && isOSFileType(pkg.TypeOf(sel.X)) {
		return exprString(sel.X), true
	}
	return "", false
}

// exprString renders a short description of e for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	}
	return "expression"
}

// isOSOpenCall recognizes os.Open, os.Create and os.OpenFile — the
// syntactic fallback evidence.
func isOSOpenCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return isPkgSel(sel, "os", "Open") || isPkgSel(sel, "os", "Create") || isPkgSel(sel, "os", "OpenFile")
}

// isOSFilePtr recognizes the *os.File type expression syntactically.
func isOSFilePtr(t ast.Expr) bool {
	star, ok := t.(*ast.StarExpr)
	if !ok {
		return false
	}
	sel, ok := star.X.(*ast.SelectorExpr)
	return ok && isPkgSel(sel, "os", "File")
}
