package bench

import (
	"runtime"
	"strings"
	"sync"

	"mcfs/internal/data"
)

// This file is the harness's parallel execution layer. An experiment is
// decomposed into independent cells — typically one (sweep-point ×
// algorithm) pair, each fully determined by the experiment config and
// its explicit seeds — that are dispatched to a bounded worker pool.
// Each cell buffers the rows it emits; the pool replays them strictly
// in submission order, so a run at any worker count produces the same
// row stream as a serial one. Wall-clock Runtime values are the only
// nondeterministic row fields (cmd/mcfsbench -notimes zeroes them for
// byte-comparable output).
//
// Instance generation happens inside cells: points share their instance
// through a lazy memoized builder, so the first cell to need a point
// generates it (in parallel across points) and the others reuse it.
// The shared *data.Instance and *graph.Graph are treated as immutable
// from that moment on; every solve path has been audited (and is
// race-tested) to not mutate them.

// cellResult is the buffered output of one finished cell.
type cellResult struct {
	rows []Row
	err  error
}

// pool dispatches cells to at most `workers` concurrent goroutines and
// reassembles their rows deterministically.
type pool struct {
	sem     chan struct{}
	results []chan cellResult
}

// newPool sizes a pool from cfg.Workers (0 or negative: all CPUs).
func newPool(cfg Config) *pool {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &pool{sem: make(chan struct{}, w)}
}

// cell schedules fn. Rows passed to fn's emit are buffered and replayed
// by drain in submission order; fn must not retain emit past its return.
func (p *pool) cell(fn func(emit func(Row)) error) {
	ch := make(chan cellResult, 1)
	p.results = append(p.results, ch)
	go func() {
		p.sem <- struct{}{}
		defer func() { <-p.sem }()
		var rows []Row
		err := fn(func(r Row) { rows = append(rows, r) })
		ch <- cellResult{rows: rows, err: err}
	}()
}

// drain waits for every scheduled cell, replays rows in submission
// order, and returns the first error in that order (rows of cells after
// a failed one are dropped, matching serial semantics).
func (p *pool) drain(emit func(Row)) error {
	var firstErr error
	for _, ch := range p.results {
		res := <-ch
		if firstErr != nil {
			continue
		}
		if res.err != nil {
			firstErr = res.err
			continue
		}
		for _, r := range res.rows {
			emit(r)
		}
	}
	p.results = nil
	return firstErr
}

// lazy memoizes a deterministic builder so that concurrent cells share
// one generation; the first caller builds, everyone else blocks until
// the value (or error) is ready.
func lazy[T any](build func() (T, error)) func() (T, error) {
	var (
		once sync.Once
		val  T
		err  error
	)
	return func() (T, error) {
		once.Do(func() { val, err = build() })
		return val, err
	}
}

// sweepPoint is one x-position of an experiment sweep: an axis label, a
// memoized instance builder, and the algorithms to run on it.
type sweepPoint struct {
	x     string
	xv    float64
	xvFn  func(*data.Instance) float64 // optional: derive xv from the built instance
	inst  func() (*data.Instance, error)
	algos []Algo // non-exact algorithms, one cell each
	exact bool   // include this point in the exact-solver chain
}

// xval resolves a point's axis value against its built instance.
func (pt sweepPoint) xval(inst *data.Instance) float64 {
	if pt.xvFn != nil {
		return pt.xvFn(inst)
	}
	return pt.xv
}

// runSweep dispatches one cell per (point, algorithm) plus a single
// serial exact-solver chain cell over the exact-enabled points; with
// exactDropout the chain stops after its first timeout (the paper's
// "Gurobi failed beyond ..." behaviour), which is a cross-point
// dependency and therefore cannot be parallelized. Exact rows are
// emitted after all heuristic rows of the sweep.
func runSweep(exp string, points []sweepPoint, exactDropout bool, cfg Config, emit func(Row)) error {
	p := newPool(cfg)
	for _, pt := range points {
		pt := pt
		for _, a := range pt.algos {
			a := a
			p.cell(func(emit func(Row)) error {
				inst, err := pt.inst()
				if err != nil {
					return err
				}
				runAlgo(exp, pt.x, pt.xval(inst), a, inst, cfg, cfg.Seed, emit)
				return nil
			})
		}
	}
	if !cfg.SkipExact {
		var chain []sweepPoint
		for _, pt := range points {
			if pt.exact {
				chain = append(chain, pt)
			}
		}
		if len(chain) > 0 {
			p.cell(func(emit func(Row)) error {
				for _, pt := range chain {
					inst, err := pt.inst()
					if err != nil {
						return err
					}
					timedOut := false
					runAlgo(exp, pt.x, pt.xval(inst), AlgoExact, inst, cfg, cfg.Seed, func(r Row) {
						timedOut = strings.HasPrefix(r.Note, "timeout")
						emit(r)
					})
					if timedOut && exactDropout {
						break
					}
				}
				return nil
			})
		}
	}
	return p.drain(emit)
}
