package lint

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Load resolves Go-style package patterns against root and parses every
// matched file. A pattern is either a directory path ("./cmd/mcfscli",
// ".") or a recursive prefix ("./...", "internal/..."). Paths in the
// returned packages are module-relative to root. Directories named
// testdata or vendor, and names starting with "." or "_", are skipped —
// the same convention the go tool uses — which keeps this package's own
// deliberately-violating fixtures out of a module-wide run.
func Load(root string, patterns ...string) ([]*Package, error) {
	return load(token.NewFileSet(), root, patterns...)
}

// load is Load against a caller-owned FileSet (shared with the typed
// layer so checker positions and parser positions agree).
func load(fset *token.FileSet, root string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	byDir := make(map[string]*Package)
	for _, pat := range patterns {
		pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
		recursive := false
		if pat == "..." {
			pat, recursive = ".", true
		} else if strings.HasSuffix(pat, "/...") {
			pat, recursive = strings.TrimSuffix(pat, "/..."), true
		}
		if pat == "" {
			pat = "."
		}
		start := filepath.Join(root, filepath.FromSlash(pat))
		info, err := os.Stat(start)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("lint: %s is not a directory", start)
		}
		if !recursive {
			if err := loadDir(fset, root, start, byDir); err != nil {
				return nil, err
			}
			continue
		}
		err = filepath.WalkDir(start, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != start && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return fs.SkipDir
			}
			return loadDir(fset, root, path, byDir)
		})
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
	}

	pkgs := make([]*Package, 0, len(byDir))
	for _, p := range byDir {
		sort.Slice(p.Files, func(i, j int) bool { return p.Files[i].Path < p.Files[j].Path })
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Dir < pkgs[j].Dir })
	if len(pkgs) == 0 {
		// A pattern that resolves to directories but no Go files is a
		// user error (a typo'd path, a tree of testdata): a silent
		// 0-finding exit would report a clean bill of health on code
		// that was never looked at.
		return nil, fmt.Errorf("lint: no Go packages match %s", strings.Join(patterns, " "))
	}
	return pkgs, nil
}

// loadDir parses the .go files directly inside dir into byDir, keyed
// and labelled by the directory's path relative to root.
func loadDir(fset *token.FileSet, root, dir string, byDir map[string]*Package) error {
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return fmt.Errorf("lint: %w", err)
	}
	rel = filepath.ToSlash(rel)
	if byDir[rel] != nil {
		return nil // already loaded via an overlapping pattern
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("lint: %w", err)
	}
	var files []*File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		full := filepath.Join(dir, name)
		astf, err := parser.ParseFile(fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("lint: %w", err)
		}
		files = append(files, &File{
			Fset: fset,
			AST:  astf,
			Path: filepath.ToSlash(filepath.Join(rel, name)),
			Test: strings.HasSuffix(name, "_test.go"),
		})
	}
	if len(files) > 0 {
		byDir[rel] = &Package{Dir: rel, Files: files}
	}
	return nil
}
