// Package gen generates MCFS workloads: the paper's synthetic networks
// (uniform and clustered point placement on a 10³×10³ square with the
// α/√n radius connection rule, §VII-B and Fig. 5), seeded city-like road
// networks calibrated to the statistics of Table III (the OpenStreetMap
// substitute), and customer/facility samplers.
//
// All generators are deterministic given their seed. Coordinates live on
// a [0, Side]² square; edge weights are Euclidean distances scaled by
// WeightScale and rounded to a positive integer, so network distances
// remain exact int64 arithmetic.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"mcfs/internal/data"
	"mcfs/internal/graph"
)

// Side is the synthetic square's side length (the paper's 10³).
const Side = 1000.0

// WeightScale converts Euclidean coordinate distance to integer edge
// weights (two decimal digits of precision).
const WeightScale = 100.0

// SyntheticConfig parameterizes the synthetic network generator.
type SyntheticConfig struct {
	N        int     // number of nodes
	Clusters int     // 0 or 1 = uniform; otherwise Gaussian clusters
	Alpha    float64 // density: nodes closer than Alpha/√N (in square units) are connected
	Seed     int64
}

// Synthetic generates a network per the paper's recipe: N points on the
// square (uniform, or Clusters Gaussians with σ² = 1/Clusters in unit
// coordinates whose centers are themselves nodes connected in a clique),
// an edge between every pair closer than Alpha·Side/√N (the paper's
// literal rule), Euclidean weights.
//
// Under this rule the expected degree is π·α²: α = 2 yields ≈ 12.6
// (a solidly connected network) while α = 1.2 yields ≈ 4.5, right at the
// 2-D continuum-percolation threshold — matching the paper's description
// of α = 1.2 as "sparser and less connected ... more similar to real
// road networks" (Fig. 6c). The paper's remark that α = 2 "corresponds
// to an average of two adjacent edges per node" contradicts its own
// formula; we follow the formula, and Fig. 9a reports the measured
// average degree on its x-axis either way.
func Synthetic(cfg SyntheticConfig) (*graph.Graph, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("gen: nonpositive N %d", cfg.N)
	}
	if cfg.Alpha <= 0 {
		return nil, fmt.Errorf("gen: nonpositive Alpha %v", cfg.Alpha)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	xs := make([]float64, cfg.N)
	ys := make([]float64, cfg.N)
	clusters := cfg.Clusters
	if clusters < 2 {
		for i := range xs {
			xs[i] = rng.Float64() * Side
			ys[i] = rng.Float64() * Side
		}
	} else {
		if clusters > cfg.N {
			clusters = cfg.N
		}
		sigma := Side / math.Sqrt(float64(clusters))
		// Cluster centers are the first `clusters` nodes.
		for c := 0; c < clusters; c++ {
			xs[c] = rng.Float64() * Side
			ys[c] = rng.Float64() * Side
		}
		for i := clusters; i < cfg.N; i++ {
			c := (i - clusters) % clusters
			xs[i] = clamp(xs[c]+rng.NormFloat64()*sigma, 0, Side)
			ys[i] = clamp(ys[c]+rng.NormFloat64()*sigma, 0, Side)
		}
	}

	b := graph.NewBuilder(cfg.N, false)
	b.SetCoords(xs, ys)
	radius := cfg.Alpha * Side / math.Sqrt(float64(cfg.N))
	addRadiusEdges(b, xs, ys, radius)
	if clusters >= 2 {
		// Cluster-center clique with Euclidean weights.
		for a := 0; a < clusters; a++ {
			for c := a + 1; c < clusters; c++ {
				b.AddEdge(int32(a), int32(c), euclidWeight(xs[a], ys[a], xs[c], ys[c]))
			}
		}
	}
	return b.Build()
}

// addRadiusEdges connects all pairs within radius using a spatial-hash
// grid (cells of the radius size; each pair is examined once via the
// half-neighborhood scan).
func addRadiusEdges(b *graph.Builder, xs, ys []float64, radius float64) {
	if radius <= 0 {
		return
	}
	cell := func(x, y float64) (int, int) {
		return int(x / radius), int(y / radius)
	}
	buckets := make(map[[2]int][]int32)
	for i := range xs {
		cx, cy := cell(xs[i], ys[i])
		key := [2]int{cx, cy}
		buckets[key] = append(buckets[key], int32(i))
	}
	// Deterministic order: scan nodes by id, pairing each with same- and
	// neighbor-cell nodes of higher id (map iteration order must not leak
	// into edge order, which downstream tie-breaking observes).
	r2 := radius * radius
	for i := range xs {
		cx, cy := cell(xs[i], ys[i])
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range buckets[[2]int{cx + dx, cy + dy}] {
					if j > int32(i) {
						link(b, xs, ys, int32(i), j, r2)
					}
				}
			}
		}
	}
}

func link(b *graph.Builder, xs, ys []float64, u, v int32, r2 float64) {
	dx := xs[u] - xs[v]
	dy := ys[u] - ys[v]
	if dx*dx+dy*dy <= r2 {
		b.AddEdge(u, v, euclidWeight(xs[u], ys[u], xs[v], ys[v]))
	}
}

func euclidWeight(x1, y1, x2, y2 float64) int64 {
	w := int64(math.Round(math.Hypot(x1-x2, y1-y2) * WeightScale))
	if w < 1 {
		w = 1
	}
	return w
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// SampleCustomers places m customers on nodes drawn uniformly without
// replacement while possible, falling back to with-replacement once the
// node supply is exhausted (the paper's Fig. 8c allows several customers
// per node).
func SampleCustomers(g *graph.Graph, m int, rng *rand.Rand) []int32 {
	n := g.N()
	customers := make([]int32, 0, m)
	if m <= n {
		perm := rng.Perm(n)
		for i := 0; i < m; i++ {
			customers = append(customers, int32(perm[i]))
		}
		return customers
	}
	for i := 0; i < m; i++ {
		customers = append(customers, int32(rng.Intn(n)))
	}
	return customers
}

// SampleFacilities draws l distinct candidate facility nodes uniformly
// and assigns each a capacity via capFn (called with the facility's
// ordinal).
func SampleFacilities(g *graph.Graph, l int, rng *rand.Rand, capFn func(j int) int) []data.Facility {
	n := g.N()
	if l > n {
		l = n
	}
	perm := rng.Perm(n)
	facs := make([]data.Facility, l)
	for j := 0; j < l; j++ {
		facs[j] = data.Facility{Node: int32(perm[j]), Capacity: capFn(j)}
	}
	return facs
}

// AllNodesFacilities makes every node a candidate facility (the paper's
// F_p = V setting) with capacities from capFn.
func AllNodesFacilities(g *graph.Graph, capFn func(j int) int) []data.Facility {
	facs := make([]data.Facility, g.N())
	for j := range facs {
		facs[j] = data.Facility{Node: int32(j), Capacity: capFn(j)}
	}
	return facs
}

// UniformCapacity returns a capFn yielding the constant c.
func UniformCapacity(c int) func(int) int { return func(int) int { return c } }

// RandomCapacity returns a capFn yielding uniform capacities in [lo, hi]
// (the paper's Fig. 6d uses 1..10).
func RandomCapacity(lo, hi int, rng *rand.Rand) func(int) int {
	return func(int) int { return lo + rng.Intn(hi-lo+1) }
}

// LargestComponent returns the nodes of g's largest connected component
// (ascending ids). Experiments that need guaranteed feasibility sample
// customers and facilities from it.
func LargestComponent(g *graph.Graph) []int32 {
	comp, count := g.Components()
	sizes := make([]int, count)
	for _, c := range comp {
		sizes[c]++
	}
	best := 0
	for c := 1; c < count; c++ {
		if sizes[c] > sizes[best] {
			best = c
		}
	}
	nodes := make([]int32, 0, sizes[best])
	for v, c := range comp {
		if c == int32(best) {
			nodes = append(nodes, int32(v))
		}
	}
	return nodes
}

// SampleCustomersFrom draws m customers from the given node pool
// (without replacement while possible, then with replacement).
func SampleCustomersFrom(nodes []int32, m int, rng *rand.Rand) []int32 {
	customers := make([]int32, 0, m)
	if m <= len(nodes) {
		perm := rng.Perm(len(nodes))
		for i := 0; i < m; i++ {
			customers = append(customers, nodes[perm[i]])
		}
		return customers
	}
	for i := 0; i < m; i++ {
		customers = append(customers, nodes[rng.Intn(len(nodes))])
	}
	return customers
}

// SampleFacilitiesFrom draws l distinct facility nodes from the pool.
func SampleFacilitiesFrom(nodes []int32, l int, rng *rand.Rand, capFn func(j int) int) []data.Facility {
	if l > len(nodes) {
		l = len(nodes)
	}
	perm := rng.Perm(len(nodes))
	facs := make([]data.Facility, l)
	for j := 0; j < l; j++ {
		facs[j] = data.Facility{Node: nodes[perm[j]], Capacity: capFn(j)}
	}
	return facs
}

// NodesFacilities makes every node in the pool a candidate facility.
func NodesFacilities(nodes []int32, capFn func(j int) int) []data.Facility {
	facs := make([]data.Facility, len(nodes))
	for j, v := range nodes {
		facs[j] = data.Facility{Node: v, Capacity: capFn(j)}
	}
	return facs
}
