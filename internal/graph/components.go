package graph

// Components labels each node with a connected-component id in [0, count)
// and returns the labels and the component count. For directed graphs it
// computes weakly connected components by also following arcs backward;
// MCFS feasibility (Algorithm 5) is defined per connected component.
func (g *Graph) Components() (comp []int32, count int) {
	n := g.N()
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var rev [][]int32
	if g.directed {
		rev = make([][]int32, n)
		for v := int32(0); v < int32(n); v++ {
			g.Neighbors(v, func(u int32, _ int64) bool {
				rev[u] = append(rev[u], v)
				return true
			})
		}
	}
	var stack []int32
	id := int32(0)
	for start := int32(0); start < int32(n); start++ {
		if comp[start] != -1 {
			continue
		}
		comp[start] = id
		stack = append(stack[:0], start)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			g.Neighbors(v, func(u int32, _ int64) bool {
				if comp[u] == -1 {
					comp[u] = id
					stack = append(stack, u)
				}
				return true
			})
			if g.directed {
				for _, u := range rev[v] {
					if comp[u] == -1 {
						comp[u] = id
						stack = append(stack, u)
					}
				}
			}
		}
		id++
	}
	return comp, int(id)
}

// ComponentSizes returns the node count of each component given labels
// produced by Components.
func ComponentSizes(comp []int32, count int) []int {
	sizes := make([]int, count)
	for _, c := range comp {
		sizes[c]++
	}
	return sizes
}
