package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NakedGoroutine keeps concurrency confined to joinable structure: a
// `go` statement is only allowed when the enclosing top-level function
// visibly joins its goroutines — a sync.WaitGroup Wait() or a channel
// receive in scope. The one sanctioned exception is the bench harness's
// worker pool (internal/bench/parallel.go), whose goroutines are joined
// across function boundaries by pool.drain; every other fire-and-forget
// goroutine is a leak or a race waiting for the next refactor.
//
// With type information a `.Wait()` call only counts as a join when its
// receiver actually is a sync.WaitGroup — `limiter.Wait()` on some
// unrelated type no longer launders a leaked goroutine — and ranging
// over a channel counts as the receive it is. Without type info any
// .Wait() call is accepted, as before.
type NakedGoroutine struct{}

// Name implements Rule.
func (NakedGoroutine) Name() string { return "nakedgoroutine" }

// Doc implements Rule.
func (NakedGoroutine) Doc() string {
	return "no `go` statement without a WaitGroup/channel join in the enclosing function (parallel.go excepted)"
}

// nakedGoroutineExempt names the files whose goroutines are joined
// across function boundaries by design.
var nakedGoroutineExempt = map[string]bool{
	"internal/bench/parallel.go": true,
}

// Check implements Rule.
func (NakedGoroutine) Check(pkg *Package, report ReportFunc) {
	for _, f := range pkg.Files {
		if nakedGoroutineExempt[f.Path] {
			continue
		}
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			joined := hasJoin(pkg, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok && !joined {
					report(f, g.Pos(),
						"goroutine without a visible join (no WaitGroup Wait or channel receive in the enclosing function); fire-and-forget work outlives its caller")
				}
				return true
			})
		}
	}
}

// hasJoin reports whether body contains a join point: a WaitGroup
// Wait() call, a channel receive expression, or (typed) a range over a
// channel.
func hasJoin(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" && isWaitGroupWait(pkg, sel) {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if pkg.Typed() {
				if t := pkg.TypeOf(n.X); t != nil {
					if _, ok := types.Unalias(t).Underlying().(*types.Chan); ok {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// isWaitGroupWait reports whether sel is a Wait() whose receiver is a
// sync.WaitGroup. Without type information every .Wait() is accepted —
// the syntactic rule has no way to tell and must not regress.
func isWaitGroupWait(pkg *Package, sel *ast.SelectorExpr) bool {
	if !pkg.Typed() {
		return true
	}
	t := pkg.TypeOf(sel.X)
	if t == nil {
		// The receiver didn't type-check (e.g. a dependency the loader
		// couldn't resolve); keep the permissive syntactic answer.
		return true
	}
	return isNamedType(t, true, "sync", "WaitGroup")
}
