// Package bipartite implements the paper's matching engine (§IV-D, §V):
// a Successive Shortest Path Algorithm over the bipartite graph G_b
// between customers and candidate facilities, with
//
//   - lazy edge materialization driven by one persistent network-Dijkstra
//     per customer (graph.NNSearcher), so only a small fraction of the
//     ℓ·m possible edges is ever weighted;
//   - node potentials keeping residual reduced costs nonnegative;
//   - the Theorem-1 pruning threshold min{v.dist + nnDist(v) − v.p} that
//     certifies a running augmenting path optimal over the *complete*
//     bipartite graph while only the materialized part is inspected;
//   - flow augmentation that rewires earlier assignments when beneficial.
//
// Each FindPair(i) call matches customer i to exactly one additional
// facility (all bipartite edges have capacity one), as the paper
// prescribes, and the running matching is always a minimum-cost flow of
// its value over the complete bipartite graph.
package bipartite

import (
	"context"

	"mcfs/internal/data"
	"mcfs/internal/graph"
	"mcfs/internal/pq"
)

// bedge is a materialized customer→facility edge. Edges are appended in
// nondecreasing weight order (NN order from the customer's searcher).
type bedge struct {
	fac     int32 // facility index
	w       int64 // original weight: network distance customer→facility
	matched bool
}

// facEdge back-references a matched edge from the facility side.
type facEdge struct {
	cust int32
	idx  int32 // index into edges[cust]
}

// Stats aggregates work counters for the engine (used by the ablation
// benchmarks and Fig. 12b-style reporting).
type Stats struct {
	EdgesMaterialized int
	DijkstraRuns      int
	NodesScanned      int
	Reinsertions      int // label-correcting resettles (negative-arc repair)
	NegArcEvents      int // freshly materialized edges with negative reduced cost
	Augmentations     int
}

// Matcher is the incremental bipartite matching engine. Bipartite node
// ids: facility j is node j, customer i is node L()+i — facilities come
// first so that customers can be appended dynamically (AddCustomer).
type Matcher struct {
	g         *graph.Graph
	custNodes []int32
	facs      []data.Facility
	isCand    []bool

	searchers  []*graph.NNSearcher
	edges      [][]bedge
	facMatch   [][]facEdge
	facIdx     map[int32]int
	pot        []int64
	maxCustPot int64

	// touched lists facilities that have ever held a match — the only
	// ones a set-cover pass needs to examine (everything else has zero
	// gain). With lazy materialization |touched| ≪ ℓ.
	touched     []int32
	everMatched []bool

	// negArcs lists materialized arcs whose reduced cost is currently
	// negative; while nonempty the inner search falls back from Dijkstra
	// to label-correcting and never stops early.
	negArcs []facEdge // reuses facEdge as (cust, edge idx) pair

	// exhaustive disables the early-stop optimization (used by tests and
	// the threshold ablation).
	exhaustive bool

	// ctx is the cooperative-cancellation context of the current
	// FindPairCtx call; nil means no cancellation. It is installed on the
	// per-customer searchers so their resumed network Dijkstras poll it
	// too. A matcher that has returned a context error is poisoned: the
	// interrupted searcher state cannot be resumed correctly.
	ctx context.Context

	// Scratch state for the inner shortest-path search, epoch-stamped so
	// it needs no clearing between runs.
	dist    []int64
	parent  []int64 // encoded arc; see parent encoding below
	stamp   []int32 // relax stamp
	done    []int32 // settle stamp
	settled []int32 // settle order of the last run
	epoch   int32
	heap    *pq.DenseHeap

	stats Stats
}

// Parent encoding: for a facility node reached from customer c via
// edges[c][i], parent = int64(c)<<32 | int64(i). For a customer node
// reached from facility f via facMatch[f][i], parent =
// -(int64(f)<<32|int64(i)) - 1. The source has parent parentNone.
const parentNone = int64(-1) << 62

// New creates a matcher for the given customers and candidate
// facilities over network g. The candidate mask is shared by all
// per-customer searchers.
func New(g *graph.Graph, custNodes []int32, facs []data.Facility) *Matcher {
	m, l := len(custNodes), len(facs)
	isCand := make([]bool, g.N())
	for _, f := range facs {
		isCand[f.Node] = true
	}
	n := m + l
	mt := &Matcher{
		g:         g,
		custNodes: append([]int32(nil), custNodes...),
		facs:      facs,
		isCand:    isCand,
		searchers: make([]*graph.NNSearcher, m),
		edges:     make([][]bedge, m),
		facMatch:  make([][]facEdge, l),

		everMatched: make([]bool, l),

		pot:    make([]int64, n),
		dist:   make([]int64, n),
		parent: make([]int64, n),
		stamp:  make([]int32, n),
		done:   make([]int32, n),
		heap:   pq.NewDense(n),
	}
	return mt
}

// AddCustomer appends a new, unmatched customer at the given network
// node and returns its customer index. The scratch arrays grow
// geometrically, so the amortized cost is O(1) plus the lazy searcher
// initialization on the customer's first FindPair. Facilities occupy the
// low node ids, so existing state is unaffected.
func (mt *Matcher) AddCustomer(node int32) int {
	i := len(mt.custNodes)
	mt.custNodes = append(mt.custNodes, node)
	mt.searchers = append(mt.searchers, nil)
	mt.edges = append(mt.edges, nil)
	if need := mt.L() + len(mt.custNodes); need > len(mt.pot) {
		grow := len(mt.pot) * 2
		if grow < need {
			grow = need
		}
		mt.pot = growInt64(mt.pot, grow)
		mt.dist = growInt64(mt.dist, grow)
		mt.parent = growInt64(mt.parent, grow)
		mt.stamp = growInt32(mt.stamp, grow)
		mt.done = growInt32(mt.done, grow)
		mt.heap = pq.NewDense(grow)
	}
	return i
}

func growInt64(s []int64, n int) []int64 {
	out := make([]int64, n)
	copy(out, s)
	return out
}

func growInt32(s []int32, n int) []int32 {
	out := make([]int32, n)
	copy(out, s)
	return out
}

// SetExhaustive disables (true) or enables (false) the early-stop
// optimization of the inner search. Exhaustive mode settles the whole
// reachable residual graph every run; results are identical, only the
// amount of scanning differs.
func (mt *Matcher) SetExhaustive(v bool) { mt.exhaustive = v }

// M returns the number of customers; L the number of facilities.
func (mt *Matcher) M() int { return len(mt.custNodes) }

// L returns the number of candidate facilities.
func (mt *Matcher) L() int { return len(mt.facs) }

// Load returns the number of customers currently matched to facility j.
func (mt *Matcher) Load(j int) int { return len(mt.facMatch[j]) }

// MatchCount returns the number of facilities customer i is matched to.
func (mt *Matcher) MatchCount(i int) int {
	count := 0
	for _, e := range mt.edges[i] {
		if e.matched {
			count++
		}
	}
	return count
}

// Assigned calls fn for each customer matched to facility j.
func (mt *Matcher) Assigned(j int, fn func(cust int)) {
	for _, fe := range mt.facMatch[j] {
		fn(int(fe.cust))
	}
}

// AssignedCount returns |σ_j|, the number of customers matched to j.
func (mt *Matcher) AssignedCount(j int) int { return len(mt.facMatch[j]) }

// Matches returns the facility indexes customer i is matched to along
// with the corresponding original edge weights.
func (mt *Matcher) Matches(i int) (facs []int, weights []int64) {
	for _, e := range mt.edges[i] {
		if e.matched {
			facs = append(facs, int(e.fac))
			weights = append(weights, e.w)
		}
	}
	return facs, weights
}

// TotalMatchedCost returns the sum of original weights over all matched
// edges.
func (mt *Matcher) TotalMatchedCost() int64 {
	var total int64
	for i := range mt.edges {
		for _, e := range mt.edges[i] {
			if e.matched {
				total += e.w
			}
		}
	}
	return total
}

// Touched returns the facilities that have ever been matched to a
// customer, in first-touch order. Facilities outside this list have
// empty σ_j.
func (mt *Matcher) Touched(fn func(j int)) {
	for _, j := range mt.touched {
		fn(int(j))
	}
}

// Stats returns accumulated work counters.
func (mt *Matcher) Stats() Stats { return mt.stats }

func (mt *Matcher) searcher(i int) *graph.NNSearcher {
	if mt.searchers[i] == nil {
		mt.searchers[i] = graph.NewNNSearcherCtx(mt.ctx, mt.g, mt.custNodes[i], mt.isCand)
	} else {
		mt.searchers[i].SetContext(mt.ctx)
	}
	return mt.searchers[i]
}

// nnDist returns the weight of customer i's next unmaterialized edge
// (graph.Inf when exhausted). Edges are only ever materialized through
// the customer's own searcher, in nondecreasing order, so the searcher's
// prefetched peek is exactly that weight.
func (mt *Matcher) nnDist(i int) int64 { return mt.searcher(i).PeekDist() }

// materialize appends customer i's next nearest edge to G_b and returns
// false when the searcher is exhausted.
func (mt *Matcher) materialize(i int) bool {
	node, w, ok := mt.searcher(i).Next()
	if !ok {
		return false
	}
	j := mt.facIndex(node)
	mt.edges[i] = append(mt.edges[i], bedge{fac: int32(j), w: w})
	mt.stats.EdgesMaterialized++
	// A fresh edge may have negative reduced cost; record it so the inner
	// search switches to label-correcting until potentials repair it.
	if rc := w - mt.pot[mt.L()+i] + mt.pot[j]; rc < 0 {
		mt.negArcs = append(mt.negArcs, facEdge{cust: int32(i), idx: int32(len(mt.edges[i]) - 1)})
		mt.stats.NegArcEvents++
	}
	return true
}

// facIndex maps a facility node id to its index, building the lookup
// lazily on first use.
func (mt *Matcher) facIndex(node int32) int {
	if mt.facIdx == nil {
		mt.facIdx = make(map[int32]int, len(mt.facs))
		for j, f := range mt.facs {
			mt.facIdx[f.Node] = j
		}
	}
	return mt.facIdx[node]
}

// purgeNegArcs drops recorded negative arcs whose reduced cost has been
// repaired by potential updates, and reports whether any remain.
func (mt *Matcher) purgeNegArcs() bool {
	kept := mt.negArcs[:0]
	for _, a := range mt.negArcs {
		e := mt.edges[a.cust][a.idx]
		if e.w-mt.pot[mt.L()+int(a.cust)]+mt.pot[e.fac] < 0 {
			kept = append(kept, a)
		}
	}
	mt.negArcs = kept
	return len(kept) > 0
}
