// Package data defines the MCFS problem-instance model shared by every
// algorithm in the repository: the network, the customers, the candidate
// facilities with capacities, the budget k, solution validation, and
// objective evaluation from first principles (used to cross-check every
// solver's self-reported objective).
package data

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"mcfs/internal/graph"
)

// Facility is a candidate facility location with a capacity constraint.
type Facility struct {
	Node     int32
	Capacity int
}

// Instance is a complete MCFS problem instance (paper §II): select at
// most K facilities from Facilities and assign every customer to exactly
// one selected facility within its capacity, minimizing total network
// distance.
type Instance struct {
	G          *graph.Graph
	Customers  []int32 // customer locations; duplicates allowed (Fig. 8c)
	Facilities []Facility
	K          int
}

// Solution is a feasible (or claimed-feasible) answer: the selected
// facility indexes and, per customer, the index into Facilities of its
// assigned facility. Objective is the total assignment distance.
type Solution struct {
	Selected   []int
	Assignment []int
	Objective  int64
}

// ErrInfeasible reports that no feasible selection/assignment exists for
// the instance (insufficient capacity within some connected component,
// or globally, under budget K).
var ErrInfeasible = errors.New("mcfs: instance is infeasible")

// M returns the number of customers.
func (in *Instance) M() int { return len(in.Customers) }

// L returns the number of candidate facilities.
func (in *Instance) L() int { return len(in.Facilities) }

// TotalCapacity returns the summed capacity of all candidate facilities.
func (in *Instance) TotalCapacity() int {
	total := 0
	for _, f := range in.Facilities {
		total += f.Capacity
	}
	return total
}

// Validate checks structural well-formedness (not feasibility).
func (in *Instance) Validate() error {
	if in.G == nil {
		return errors.New("mcfs: instance has nil graph")
	}
	n := int32(in.G.N())
	if in.K < 0 {
		return fmt.Errorf("mcfs: negative budget k=%d", in.K)
	}
	for i, s := range in.Customers {
		if s < 0 || s >= n {
			return fmt.Errorf("mcfs: customer %d at invalid node %d", i, s)
		}
	}
	seen := make(map[int32]bool, len(in.Facilities))
	for j, f := range in.Facilities {
		if f.Node < 0 || f.Node >= n {
			return fmt.Errorf("mcfs: facility %d at invalid node %d", j, f.Node)
		}
		if f.Capacity < 0 {
			return fmt.Errorf("mcfs: facility %d has negative capacity %d", j, f.Capacity)
		}
		if seen[f.Node] {
			return fmt.Errorf("mcfs: duplicate facility at node %d (hard MCFS allows one facility per location)", f.Node)
		}
		seen[f.Node] = true
	}
	return nil
}

// Feasible reports whether a feasible solution exists: within every
// connected component, the customers must be coverable by at most k_g
// component-local facilities, and Σ k_g ≤ K (paper, Theorem 3). The
// returned k_g values (indexed by component id) are the per-component
// minimum facility counts; kg is nil when infeasible.
func (in *Instance) Feasible() (ok bool, kg []int) {
	comp, count := in.G.Components()
	customers := make([]int, count)
	for _, s := range in.Customers {
		customers[comp[s]]++
	}
	caps := make([][]int, count)
	for _, f := range in.Facilities {
		c := comp[f.Node]
		caps[c] = append(caps[c], f.Capacity)
	}
	kg = make([]int, count)
	total := 0
	for g := 0; g < count; g++ {
		if customers[g] == 0 {
			continue
		}
		sort.Sort(sort.Reverse(sort.IntSlice(caps[g])))
		need := customers[g]
		used := 0
		for _, c := range caps[g] {
			if need <= 0 {
				break
			}
			need -= c
			used++
		}
		if need > 0 {
			return false, nil
		}
		kg[g] = used
		total += used
	}
	if total > in.K {
		return false, nil
	}
	return true, kg
}

// CheckSolution verifies a solution against the instance: selection size,
// assignment to selected facilities only, capacity observance, and that
// Objective equals the recomputed true network cost. It returns the
// recomputed objective.
func (in *Instance) CheckSolution(sol *Solution) (int64, error) {
	if sol == nil {
		return 0, errors.New("mcfs: nil solution")
	}
	if len(sol.Selected) > in.K {
		return 0, fmt.Errorf("mcfs: %d facilities selected, budget %d", len(sol.Selected), in.K)
	}
	isSel := make(map[int]bool, len(sol.Selected))
	for _, j := range sol.Selected {
		if j < 0 || j >= in.L() {
			return 0, fmt.Errorf("mcfs: selected index %d out of range", j)
		}
		if isSel[j] {
			return 0, fmt.Errorf("mcfs: facility %d selected twice", j)
		}
		isSel[j] = true
	}
	if len(sol.Assignment) != in.M() {
		return 0, fmt.Errorf("mcfs: assignment covers %d of %d customers", len(sol.Assignment), in.M())
	}
	load := make(map[int]int)
	for i, j := range sol.Assignment {
		if j < 0 || j >= in.L() {
			return 0, fmt.Errorf("mcfs: customer %d assigned to invalid facility index %d", i, j)
		}
		if !isSel[j] {
			return 0, fmt.Errorf("mcfs: customer %d assigned to unselected facility %d", i, j)
		}
		load[j]++
	}
	for j, n := range load {
		if n > in.Facilities[j].Capacity {
			return 0, fmt.Errorf("mcfs: facility %d serves %d customers, capacity %d", j, n, in.Facilities[j].Capacity)
		}
	}
	obj, err := in.EvalObjective(sol.Assignment)
	if err != nil {
		return 0, err
	}
	if obj != sol.Objective {
		return obj, fmt.Errorf("mcfs: reported objective %d != recomputed %d", sol.Objective, obj)
	}
	return obj, nil
}

// EvalObjective recomputes the total assignment cost from scratch. The
// cost of a pair is the customer→facility shortest-path distance (the
// paper's d_ij); on undirected networks one Dijkstra per used facility
// suffices, on directed ones a per-customer search preserves direction.
// It errors if any assigned facility is unreachable.
func (in *Instance) EvalObjective(assignment []int) (int64, error) {
	if len(assignment) != in.M() {
		return 0, fmt.Errorf("mcfs: assignment length %d != m=%d", len(assignment), in.M())
	}
	for _, j := range assignment {
		if j < 0 || j >= in.L() {
			return 0, fmt.Errorf("mcfs: invalid facility index %d", j)
		}
	}
	var total int64
	scratch := in.G.NewScratch() // reused across the per-source searches below
	ctx := context.Background()
	if in.G.Directed() {
		target := make([]int32, 1)
		d := make([]int64, 1)
		for i, j := range assignment {
			target[0] = in.Facilities[j].Node
			if err := in.G.DijkstraToTargetsScratchCtx(ctx, in.Customers[i], target, d, scratch); err != nil {
				return 0, err
			}
			if d[0] >= graph.Inf {
				return 0, fmt.Errorf("mcfs: facility node %d unreachable from customer node %d", target[0], in.Customers[i])
			}
			total += d[0]
		}
		return total, nil
	}
	byFac := make(map[int][]int32)
	for i, j := range assignment {
		byFac[j] = append(byFac[j], in.Customers[i])
	}
	var dist []int64
	for j, nodes := range byFac {
		if cap(dist) < len(nodes) {
			dist = make([]int64, len(nodes))
		}
		dist = dist[:len(nodes)]
		if err := in.G.DijkstraToTargetsScratchCtx(ctx, in.Facilities[j].Node, nodes, dist, scratch); err != nil {
			return 0, err
		}
		for idx, s := range nodes {
			if dist[idx] >= graph.Inf {
				return 0, fmt.Errorf("mcfs: customer node %d unreachable from facility node %d", s, in.Facilities[j].Node)
			}
			total += dist[idx]
		}
	}
	return total, nil
}

// FacilityNodes returns the candidate facility node ids in order.
func (in *Instance) FacilityNodes() []int32 {
	nodes := make([]int32, len(in.Facilities))
	for j, f := range in.Facilities {
		nodes[j] = f.Node
	}
	return nodes
}

// CandidateMask returns a []bool over nodes marking candidate facility
// locations, plus a node→facility-index lookup.
func (in *Instance) CandidateMask() (mask []bool, index map[int32]int) {
	mask = make([]bool, in.G.N())
	index = make(map[int32]int, len(in.Facilities))
	for j, f := range in.Facilities {
		mask[f.Node] = true
		index[f.Node] = j
	}
	return mask, index
}

// Occupancy returns the paper's occupancy measure o = m / Σ_{selected
// budget} capacity, approximated as m / (k * avg capacity) for reporting.
func (in *Instance) Occupancy() float64 {
	if in.K == 0 || in.L() == 0 {
		return 0
	}
	avg := float64(in.TotalCapacity()) / float64(in.L())
	if avg == 0 {
		return 0
	}
	return float64(in.M()) / (float64(in.K) * avg)
}
