package pq

// Heap is a plain (non-addressable) binary min-heap ordered by a
// user-supplied less function. It backs the algorithm-specific queues
// that do not need decrease-key, such as the set-cover facility heap.
type Heap[T any] struct {
	items []T
	less  func(a, b T) bool
}

// NewHeap returns an empty heap ordered by less.
func NewHeap[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// Len reports the number of items in the heap.
func (h *Heap[T]) Len() int { return len(h.items) }

// Push inserts an item.
func (h *Heap[T]) Push(x T) {
	h.items = append(h.items, x)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

// Peek returns the minimum item without removing it.
// It must not be called on an empty heap.
func (h *Heap[T]) Peek() T { return h.items[0] }

// Pop removes and returns the minimum item.
// It must not be called on an empty heap.
func (h *Heap[T]) Pop() T {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	var zero T
	h.items[last] = zero
	h.items = h.items[:last]
	h.down(0)
	return top
}

// Reset empties the heap, retaining capacity.
func (h *Heap[T]) Reset() {
	var zero T
	for i := range h.items {
		h.items[i] = zero
	}
	h.items = h.items[:0]
}

func (h *Heap[T]) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(h.items[l], h.items[small]) {
			small = l
		}
		if r < n && h.less(h.items[r], h.items[small]) {
			small = r
		}
		if small == i {
			return
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
}
