package dynamic

import (
	"bytes"
	"testing"

	"mcfs/internal/data"
	"mcfs/internal/graph"
)

// fuzzInstance is the fixed instance every FuzzSnapshotRestore input is
// restored against: a 6-node path with facilities at 0/2/4 (capacity 2
// each), budget 2, and customers at 1 and 3. Its fingerprint is
// nodes=6, edges=5, facility_count=3, k=2 — the valid seeds in
// testdata/fuzz/FuzzSnapshotRestore are written against exactly these
// numbers.
func fuzzInstance() *data.Instance {
	b := graph.NewBuilder(6, false)
	for i := 0; i < 5; i++ {
		b.AddEdge(int32(i), int32(i+1), 1)
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return &data.Instance{
		G:         g,
		Customers: []int32{1, 3},
		Facilities: []data.Facility{
			{Node: 0, Capacity: 2},
			{Node: 2, Capacity: 2},
			{Node: 4, Capacity: 2},
		},
		K: 2,
	}
}

// FuzzSnapshotRestore pins two properties of the snapshot codec under
// arbitrary input. First, ReadSnapshot and Restore must reject garbage
// with an error — corrupt, truncated, or fingerprint-mismatched bytes
// must never panic (a crashed process restores whatever the disk holds,
// and mcfsd skips corrupt generations instead of dying on them).
// Second, anything ReadSnapshot accepts must round-trip byte-identically
// through Write → ReadSnapshot → Write, so a restored-then-resnapshotted
// state cannot drift through the codec itself.
func FuzzSnapshotRestore(f *testing.F) {
	inst := fuzzInstance()

	// A genuine snapshot of a churned reallocator, captured at seed time.
	r, err := New(inst, Options{})
	if err != nil {
		f.Fatal(err)
	}
	if _, err := r.AddCustomer(4); err != nil {
		f.Fatal(err)
	}
	snap, err := r.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	var live bytes.Buffer
	if err := snap.Write(&live); err != nil {
		f.Fatal(err)
	}
	f.Add(live.Bytes())
	f.Add(live.Bytes()[:live.Len()/2])                                                                                                     // truncated mid-document
	f.Add([]byte(`{"version":1,"nodes":7,"edges":5,"facility_count":3,"k":2,"next_id":0,"selected":[],"handles":[],"customer_nodes":[]}`)) // fingerprint mismatch
	f.Add([]byte(`{"version":99}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"version":1,"handles":[0],"customer_nodes":[]}`))

	f.Fuzz(func(t *testing.T, raw []byte) {
		s, err := ReadSnapshot(bytes.NewReader(raw))
		if err != nil {
			return // rejected without panicking: the property we want
		}

		// Canonical round trip: write, re-read, re-write, compare bytes.
		var first bytes.Buffer
		if err := s.Write(&first); err != nil {
			t.Fatalf("write of accepted snapshot failed: %v", err)
		}
		s2, err := ReadSnapshot(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-read of written snapshot failed: %v", err)
		}
		var second bytes.Buffer
		if err := s2.Write(&second); err != nil {
			t.Fatalf("re-write of snapshot failed: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("snapshot round trip not byte-identical:\n%s\nvs\n%s", first.Bytes(), second.Bytes())
		}

		// Restore must either succeed with a state that verifies, or
		// fail with an error — never panic, whatever the fields hold.
		restored, err := Restore(inst, s, Options{})
		if err != nil {
			return
		}
		if _, err := restored.Objective(); err != nil {
			t.Fatalf("restored reallocator cannot report objective: %v", err)
		}
		verify(t, restored)
	})
}
