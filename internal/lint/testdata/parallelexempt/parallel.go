// Package fixture exercises the nakedgoroutine exemption for the bench
// harness's worker pool: the test maps this file to
// internal/bench/parallel.go, where goroutines are joined across
// function boundaries by pool.drain.
package fixture

func spawn(work func()) {
	go work()
}
