// Metamorphic cross-solver tests: relations that must hold between the
// WMA heuristic and the exact solver on any instance, and under
// solution-preserving transformations of the instance. Seeds are fixed
// so CI is deterministic; edge weights are drawn from a wide range so
// distinct paths almost surely have distinct costs and tie-breaking
// cannot blur the relations.
package core_test

import (
	"math/rand"
	"testing"

	"mcfs/internal/core"
	"mcfs/internal/data"
	"mcfs/internal/graph"
	"mcfs/internal/solver"
)

// randomFeasibleInstance generates a small connected instance (l and K
// sized so exhaustive enumeration stays trivial) and retries until it is
// feasible under the drawn capacities.
func randomFeasibleInstance(t *testing.T, rng *rand.Rand) *data.Instance {
	t.Helper()
	for try := 0; try < 100; try++ {
		m := 2 + rng.Intn(5)
		l := 2 + rng.Intn(5)
		n := m + l + 5 + rng.Intn(20)
		b := graph.NewBuilder(n, false)
		for i := 1; i < n; i++ {
			b.AddEdge(int32(rng.Intn(i)), int32(i), 1+rng.Int63n(1<<40))
		}
		for e := 0; e < n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(int32(u), int32(v), 1+rng.Int63n(1<<40))
			}
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		perm := rng.Perm(n)
		custs := make([]int32, m)
		for i := range custs {
			custs[i] = int32(perm[i])
		}
		facs := make([]data.Facility, l)
		for j := range facs {
			facs[j] = data.Facility{Node: int32(perm[m+j]), Capacity: 1 + rng.Intn(3)}
		}
		inst := &data.Instance{G: g, Customers: custs, Facilities: facs, K: 1 + rng.Intn(l)}
		if ok, _ := inst.Feasible(); ok {
			return inst
		}
	}
	t.Fatal("no feasible instance in 100 draws")
	return nil
}

// relabelInstance applies a node permutation to the whole instance: the
// graph's edges, the customer locations, and the facility nodes. The
// result is the same network under different ids, so every solver
// objective must be unchanged.
func relabelInstance(t *testing.T, inst *data.Instance, perm []int) *data.Instance {
	t.Helper()
	g := inst.G
	b := graph.NewBuilder(g.N(), false)
	for v := int32(0); v < int32(g.N()); v++ {
		g.Neighbors(v, func(to int32, w int64) bool {
			if v < to {
				b.AddEdge(int32(perm[v]), int32(perm[to]), w)
			}
			return true
		})
	}
	rg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	custs := make([]int32, len(inst.Customers))
	for i, c := range inst.Customers {
		custs[i] = int32(perm[c])
	}
	facs := make([]data.Facility, len(inst.Facilities))
	for j, f := range inst.Facilities {
		facs[j] = data.Facility{Node: int32(perm[f.Node]), Capacity: f.Capacity}
	}
	return &data.Instance{G: rg, Customers: custs, Facilities: facs, K: inst.K}
}

// TestWMANeverBeatsExact: the heuristic's objective is bounded below by
// the exhaustive optimum, and both solutions verify against the
// instance. A WMA objective below the "optimum" means the exact solver
// is broken; an unverifiable solution means the solver lied about
// feasibility.
func TestWMANeverBeatsExact(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inst := randomFeasibleInstance(t, rng)
		wma, err := core.Solve(inst, core.Options{})
		if err != nil {
			t.Fatalf("seed %d: WMA failed on a feasible instance: %v", seed, err)
		}
		if _, err := inst.CheckSolution(wma); err != nil {
			t.Fatalf("seed %d: WMA solution does not verify: %v", seed, err)
		}
		exact, err := solver.Exhaustive(inst, 0)
		if err != nil {
			t.Fatalf("seed %d: exhaustive failed: %v", seed, err)
		}
		if _, err := inst.CheckSolution(exact); err != nil {
			t.Fatalf("seed %d: exhaustive solution does not verify: %v", seed, err)
		}
		if wma.Objective < exact.Objective {
			t.Errorf("seed %d: WMA objective %d below the proven optimum %d",
				seed, wma.Objective, exact.Objective)
		}
	}
}

// TestRelabelInvariance: permuting node ids changes nothing the solvers
// may depend on, so both the WMA and the exhaustive objective must be
// identical on the relabeled instance — any drift means a solver reads
// node ids as more than opaque labels.
func TestRelabelInvariance(t *testing.T) {
	for seed := int64(100); seed < 115; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inst := randomFeasibleInstance(t, rng)
		perm := rng.Perm(inst.G.N())
		rel := relabelInstance(t, inst, perm)

		base, err := core.Solve(inst, core.Options{})
		if err != nil {
			t.Fatalf("seed %d: WMA failed: %v", seed, err)
		}
		relSol, err := core.Solve(rel, core.Options{})
		if err != nil {
			t.Fatalf("seed %d: WMA failed on relabeled instance: %v", seed, err)
		}
		if _, err := rel.CheckSolution(relSol); err != nil {
			t.Fatalf("seed %d: relabeled WMA solution does not verify: %v", seed, err)
		}
		if base.Objective != relSol.Objective {
			t.Errorf("seed %d: WMA objective changed under relabeling: %d vs %d",
				seed, base.Objective, relSol.Objective)
		}

		exBase, err := solver.Exhaustive(inst, 0)
		if err != nil {
			t.Fatalf("seed %d: exhaustive failed: %v", seed, err)
		}
		exRel, err := solver.Exhaustive(rel, 0)
		if err != nil {
			t.Fatalf("seed %d: exhaustive failed on relabeled instance: %v", seed, err)
		}
		if exBase.Objective != exRel.Objective {
			t.Errorf("seed %d: exact objective changed under relabeling: %d vs %d",
				seed, exBase.Objective, exRel.Objective)
		}
	}
}
