package localsearch

import (
	"math/rand"
	"testing"

	"mcfs/internal/core"
	"mcfs/internal/data"
	"mcfs/internal/graph"
	"mcfs/internal/solver"
	"mcfs/internal/testutil"
)

func TestImproveFixesBadSelection(t *testing.T) {
	// Path graph; deliberately bad starting selection far from customers.
	b := graph.NewBuilder(10, false)
	for i := 0; i < 9; i++ {
		b.AddEdge(int32(i), int32(i+1), 1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	inst := &data.Instance{
		G:         g,
		Customers: []int32{0, 1},
		Facilities: []data.Facility{
			{Node: 0, Capacity: 2}, {Node: 5, Capacity: 2}, {Node: 9, Capacity: 2},
		},
		K: 1,
	}
	bad, err := core.AssignToSelection(inst, []int{2}, core.Options{}) // facility at node 9
	if err != nil {
		t.Fatal(err)
	}
	improved, st, err := Improve(inst, bad, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if improved.Objective >= bad.Objective {
		t.Fatalf("no improvement: %d -> %d", bad.Objective, improved.Objective)
	}
	// Optimum: facility at node 0 (cost 0+1 = 1).
	if improved.Objective != 1 {
		t.Fatalf("objective = %d, want 1", improved.Objective)
	}
	if st.Accepted == 0 || st.Evaluated == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if _, err := inst.CheckSolution(improved); err != nil {
		t.Fatal(err)
	}
}

func TestImproveNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 20; trial++ {
		inst := testutil.RandomInstance(rng, testutil.Params{
			MinNodes: 15, MaxNodes: 50,
			MaxCustomers: 8, MaxFacilities: 8,
			MaxCapacity: 3, MaxWeight: 20,
		})
		sol, err := core.Solve(inst, core.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		improved, _, err := Improve(inst, sol, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if improved.Objective > sol.Objective {
			t.Fatalf("trial %d: local search worsened %d -> %d", trial, sol.Objective, improved.Objective)
		}
		if _, err := inst.CheckSolution(improved); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Never better than the proven optimum.
		opt, err := solver.Exhaustive(inst, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if improved.Objective < opt.Objective {
			t.Fatalf("trial %d: local search beat the optimum?!", trial)
		}
	}
}

func TestImproveMoveBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	inst := testutil.RandomInstance(rng, testutil.Params{
		MinNodes: 30, MaxNodes: 60,
		MaxCustomers: 10, MaxFacilities: 10,
		MaxCapacity: 3, MaxWeight: 20,
	})
	sol, err := core.Solve(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := Improve(inst, sol, Options{MaxMoves: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Accepted > 1 {
		t.Fatalf("budget ignored: %d moves", st.Accepted)
	}
}

func TestImproveRejectsInvalidStart(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	inst := testutil.RandomInstance(rng, testutil.Params{
		MinNodes: 10, MaxNodes: 20,
		MaxCustomers: 4, MaxFacilities: 4,
		MaxCapacity: 3, MaxWeight: 10,
	})
	bogus := &data.Solution{Selected: []int{0}, Assignment: make([]int, inst.M()), Objective: -5}
	if _, _, err := Improve(inst, bogus, Options{}); err == nil {
		t.Fatal("invalid starting solution accepted")
	}
}
