package gen

import (
	"math"
	"math/rand"
	"testing"

	"mcfs/internal/graph"
)

func TestSyntheticUniformBasics(t *testing.T) {
	g, err := Synthetic(SyntheticConfig{N: 2000, Alpha: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2000 {
		t.Fatalf("N = %d", g.N())
	}
	if !g.HasCoords() {
		t.Fatal("no coords")
	}
	// Expected degree under the radius rule is π·α² ≈ 12.6 for α = 2.
	if d := g.AvgDegree(); d < 9 || d > 16 {
		t.Fatalf("avg degree %v, want ≈ 12.6", d)
	}
	// Edge weights must match scaled Euclidean distances.
	checked := 0
	for v := int32(0); v < int32(g.N()) && checked < 200; v++ {
		g.Neighbors(v, func(u int32, w int64) bool {
			want := int64(math.Round(g.Euclid(v, u) * WeightScale))
			if want < 1 {
				want = 1
			}
			if w != want {
				t.Fatalf("edge (%d,%d) weight %d, want %d", v, u, w, want)
			}
			checked++
			return checked < 200
		})
	}
	if checked == 0 {
		t.Fatal("no edges generated")
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a, err := Synthetic(SyntheticConfig{N: 500, Alpha: 1.5, Clusters: 10, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthetic(SyntheticConfig{N: 500, Alpha: 1.5, Clusters: 10, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatalf("same seed, different graphs: %d/%d vs %d/%d", a.N(), a.M(), b.N(), b.M())
	}
	da := a.Dijkstra(0)
	db := b.Dijkstra(0)
	for v := range da {
		if da[v] != db[v] {
			t.Fatal("same seed, different distances")
		}
	}
	c, err := Synthetic(SyntheticConfig{N: 500, Alpha: 1.5, Clusters: 10, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if c.M() == a.M() && sameDistances(a, c) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func sameDistances(a, b *graph.Graph) bool {
	da := a.Dijkstra(0)
	db := b.Dijkstra(0)
	for v := range da {
		if da[v] != db[v] {
			return false
		}
	}
	return true
}

func TestSyntheticClusteredStructure(t *testing.T) {
	const clusters = 20
	g, err := Synthetic(SyntheticConfig{N: 3000, Alpha: 1.5, Clusters: clusters, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Cluster centers (nodes 0..19) must form a clique: degree ≥ clusters-1.
	for c := int32(0); c < clusters; c++ {
		if d := g.Degree(c); d < clusters-1 {
			t.Fatalf("center %d degree %d < clique degree %d", c, d, clusters-1)
		}
	}
	// Clustered layouts concentrate points: mean pairwise NN distance of a
	// sample should be well below the uniform layout's.
	uni, err := Synthetic(SyntheticConfig{N: 3000, Alpha: 1.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if nnMean(g, 200) > nnMean(uni, 200) {
		t.Fatal("clustered layout is not denser than uniform")
	}
}

// nnMean samples nodes and averages the Euclidean distance to their
// nearest sampled peer.
func nnMean(g *graph.Graph, sample int) float64 {
	step := g.N() / sample
	if step == 0 {
		step = 1
	}
	var nodes []int32
	for v := 0; v < g.N(); v += step {
		nodes = append(nodes, int32(v))
	}
	var sum float64
	for _, v := range nodes {
		best := math.Inf(1)
		for _, u := range nodes {
			if u == v {
				continue
			}
			if d := g.Euclid(v, u); d < best {
				best = d
			}
		}
		sum += best
	}
	return sum / float64(len(nodes))
}

func TestSyntheticValidation(t *testing.T) {
	if _, err := Synthetic(SyntheticConfig{N: 0, Alpha: 1}); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := Synthetic(SyntheticConfig{N: 10, Alpha: 0}); err == nil {
		t.Fatal("Alpha=0 accepted")
	}
}

func TestSyntheticDensityGrowsWithAlpha(t *testing.T) {
	low, err := Synthetic(SyntheticConfig{N: 2000, Alpha: 1.2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	high, err := Synthetic(SyntheticConfig{N: 2000, Alpha: 2.5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if high.AvgDegree() <= low.AvgDegree() {
		t.Fatalf("degree did not grow with alpha: %v vs %v", low.AvgDegree(), high.AvgDegree())
	}
	// Low alpha should fragment the network (the paper's Fig. 6c setting).
	_, countLow := low.Components()
	_, countHigh := high.Components()
	if countLow <= countHigh && countLow == 1 {
		t.Fatalf("low alpha did not fragment: %d vs %d components", countLow, countHigh)
	}
}

func TestSamplers(t *testing.T) {
	g, err := Synthetic(SyntheticConfig{N: 300, Alpha: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	cust := SampleCustomers(g, 50, rng)
	if len(cust) != 50 {
		t.Fatalf("customers %d", len(cust))
	}
	seen := map[int32]bool{}
	for _, s := range cust {
		if seen[s] {
			t.Fatal("duplicate customer node though m <= n")
		}
		seen[s] = true
	}
	// Oversampling falls back to with-replacement.
	many := SampleCustomers(g, 400, rng)
	if len(many) != 400 {
		t.Fatalf("oversampled customers %d", len(many))
	}

	facs := SampleFacilities(g, 40, rng, UniformCapacity(7))
	if len(facs) != 40 {
		t.Fatalf("facilities %d", len(facs))
	}
	nodes := map[int32]bool{}
	for _, f := range facs {
		if f.Capacity != 7 {
			t.Fatalf("capacity %d", f.Capacity)
		}
		if nodes[f.Node] {
			t.Fatal("duplicate facility node")
		}
		nodes[f.Node] = true
	}

	all := AllNodesFacilities(g, RandomCapacity(1, 10, rng))
	if len(all) != g.N() {
		t.Fatalf("AllNodesFacilities returned %d", len(all))
	}
	for _, f := range all {
		if f.Capacity < 1 || f.Capacity > 10 {
			t.Fatalf("random capacity %d outside [1,10]", f.Capacity)
		}
	}
}

func TestCityPresetsStats(t *testing.T) {
	// Scaled-down presets must land near the Table III shape: avg degree
	// ≈ 2.0–2.6 arcs, avg edge length within 25% of the target, dominant
	// connected component.
	for _, name := range CityNames {
		p, err := CityPreset(name, 0.02, 11)
		if err != nil {
			t.Fatal(err)
		}
		g, err := City(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		st := Stats(g)
		if math.Abs(float64(st.Nodes-p.Nodes)) > 0.2*float64(p.Nodes) {
			t.Fatalf("%s: %d nodes, target %d", name, st.Nodes, p.Nodes)
		}
		if st.AvgDegree < 1.8 || st.AvgDegree > 2.8 {
			t.Fatalf("%s: avg degree %.2f outside road-network band", name, st.AvgDegree)
		}
		if st.AvgEdgeLength < 0.75*p.SegmentLen || st.AvgEdgeLength > 1.25*p.SegmentLen {
			t.Fatalf("%s: avg edge length %.1f, target %.1f", name, st.AvgEdgeLength, p.SegmentLen)
		}
		comp, count := g.Components()
		sizes := graph.ComponentSizes(comp, count)
		max := 0
		for _, s := range sizes {
			if s > max {
				max = s
			}
		}
		if float64(max) < 0.9*float64(g.N()) {
			t.Fatalf("%s: largest component %d of %d nodes", name, max, g.N())
		}
		if st.MaxDegree < 4 {
			t.Fatalf("%s: max degree %d implausibly low", name, st.MaxDegree)
		}
	}
}

func TestCityUnknownName(t *testing.T) {
	if _, err := CityPreset("atlantis", 1, 1); err == nil {
		t.Fatal("unknown city accepted")
	}
}

func TestCityDeterministic(t *testing.T) {
	p, _ := CityPreset("aalborg", 0.01, 99)
	a, err := City(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := City(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatal("same seed, different city")
	}
}

func TestCityValidation(t *testing.T) {
	if _, err := City(CityParams{Nodes: 2, SegmentLen: 30, BlockLen: 150}); err == nil {
		t.Fatal("tiny city accepted")
	}
	if _, err := City(CityParams{Nodes: 100, SegmentLen: 0, BlockLen: 150}); err == nil {
		t.Fatal("zero segment length accepted")
	}
	if _, err := City(CityParams{Nodes: 100, SegmentLen: 200, BlockLen: 150}); err == nil {
		t.Fatal("block shorter than segment accepted")
	}
}
