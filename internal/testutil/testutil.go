// Package testutil provides shared randomized-instance constructors for
// the test suites of the algorithm packages. Production code must not
// import it.
package testutil

import (
	"math/rand"

	"mcfs/internal/data"
	"mcfs/internal/graph"
)

// Params bounds the shape of a random instance.
type Params struct {
	MinNodes, MaxNodes int
	MaxCustomers       int
	MaxFacilities      int
	MaxCapacity        int
	MaxWeight          int64
	Components         int // number of disjoint connected blocks (default 1)
}

// RandomInstance builds a random connected (per component) instance that
// is feasible with probability close to one (capacities are topped up to
// cover customers in every component and K is set accordingly).
func RandomInstance(rng *rand.Rand, p Params) *data.Instance {
	if p.Components <= 0 {
		p.Components = 1
	}
	if p.MinNodes < 2*p.Components {
		p.MinNodes = 2 * p.Components
	}
	n := p.MinNodes
	if p.MaxNodes > p.MinNodes {
		n += rng.Intn(p.MaxNodes - p.MinNodes)
	}
	b := graph.NewBuilder(n, false)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 1000
		ys[i] = rng.Float64() * 1000
	}
	b.SetCoords(xs, ys)
	// Split nodes into contiguous blocks, one spanning tree each.
	blockOf := make([]int, n)
	start := 0
	for c := 0; c < p.Components; c++ {
		end := start + n/p.Components
		if c == p.Components-1 {
			end = n
		}
		for i := start + 1; i < end; i++ {
			j := start + rng.Intn(i-start)
			b.AddEdge(int32(j), int32(i), 1+rng.Int63n(p.MaxWeight))
		}
		for i := start; i < end; i++ {
			blockOf[i] = c
		}
		// Extra intra-block edges.
		for e := 0; e < (end-start)/2; e++ {
			u := start + rng.Intn(end-start)
			v := start + rng.Intn(end-start)
			if u != v {
				b.AddEdge(int32(u), int32(v), 1+rng.Int63n(p.MaxWeight))
			}
		}
		start = end
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}

	m := 1 + rng.Intn(p.MaxCustomers)
	customers := make([]int32, m)
	for i := range customers {
		customers[i] = int32(rng.Intn(n))
	}
	lWant := 1 + rng.Intn(p.MaxFacilities)
	perm := rng.Perm(n)
	var facilities []data.Facility
	for _, v := range perm {
		if len(facilities) == lWant {
			break
		}
		facilities = append(facilities, data.Facility{Node: int32(v), Capacity: 1 + rng.Intn(p.MaxCapacity)})
	}
	inst := &data.Instance{G: g, Customers: customers, Facilities: facilities, K: 0}

	// Top up: ensure every component containing customers has enough
	// candidate capacity, adding facilities at fresh nodes if needed.
	comp, count := g.Components()
	custPerComp := make([]int, count)
	for _, s := range customers {
		custPerComp[comp[s]]++
	}
	capPerComp := make([]int, count)
	used := make(map[int32]bool)
	for _, f := range inst.Facilities {
		capPerComp[comp[f.Node]] += f.Capacity
		used[f.Node] = true
	}
	for v := int32(0); v < int32(n); v++ {
		c := comp[v]
		if capPerComp[c] >= custPerComp[c] || used[v] {
			continue
		}
		add := custPerComp[c] - capPerComp[c]
		inst.Facilities = append(inst.Facilities, data.Facility{Node: v, Capacity: add})
		capPerComp[c] += add
		used[v] = true
	}
	// Budget: the minimum per-component need plus random slack.
	need := minBudget(inst)
	inst.K = need + rng.Intn(3)
	if inst.K > inst.L() {
		inst.K = inst.L()
	}
	return inst
}

// minBudget returns Σ k_g, the smallest feasible K (assuming per-
// component capacity suffices).
func minBudget(inst *data.Instance) int {
	inst.K = inst.L()
	ok, kg := inst.Feasible()
	if !ok {
		// Should not happen after top-up; fall back to everything.
		return inst.L()
	}
	total := 0
	for _, v := range kg {
		total += v
	}
	return total
}
