// Package core implements the Wide Matching Algorithm (WMA), the paper's
// primary contribution (§IV): an iterative interplay between
//
//   - an optimal incremental bipartite matching that assigns customers to
//     candidate facilities under capacity constraints, rewiring earlier
//     assignments when beneficial (internal/bipartite);
//   - a lazy-greedy SET COVER heuristic that selects the top-k facilities
//     by marginal coverage gain, breaking ties by least-recent use
//     (Algorithm 3, CheckCover);
//   - a selective demand-update rule that lets only uncovered customers
//     explore more facilities (§IV-F);
//   - two special provisions: greedy completion when coverage is achieved
//     with fewer than k facilities (Algorithm 4), and per-component
//     capacity balancing when coverage is impossible within explored
//     edges (Algorithm 5);
//   - a final phase that rebuilds a single optimal assignment of every
//     customer to the selected facilities (the tail recursion of
//     Algorithm 1).
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"mcfs/internal/bipartite"
	"mcfs/internal/data"
	"mcfs/internal/obs"
)

// DemandPolicy controls which customers get a demand increase per
// iteration (§IV-F).
type DemandPolicy int

const (
	// DemandSelective raises demand only for customers left uncovered by
	// the previous selection — the paper's policy.
	DemandSelective DemandPolicy = iota
	// DemandAll raises every unsatisfied customer's demand each iteration
	// (the "simple approach" the paper rejects; kept for ablation).
	DemandAll
)

// TieBreak controls how equal-gain facilities are ordered in CheckCover.
type TieBreak int

const (
	// TieLRU prefers the facility selected least recently (the paper's
	// diversification strategy).
	TieLRU TieBreak = iota
	// TieArbitrary breaks ties by facility index (ablation).
	TieArbitrary
)

// IterationStats describes one WMA iteration for progress reporting
// (Fig. 12b plots covered customers, matching time and set-cover time
// per iteration).
type IterationStats struct {
	Iteration   int
	Covered     int           // customers covered by the current selection
	MatchTime   time.Duration // time spent in FindPair calls this iteration
	CoverTime   time.Duration // time spent in CheckCover this iteration
	Edges       int           // cumulative bipartite edges materialized
	Augmenting  int           // cumulative augmentations
	DemandTotal int           // sum of customer demands after the update
}

// Options tunes the solver. The zero value is the paper's configuration.
type Options struct {
	Demand     DemandPolicy
	TieBreak   TieBreak
	Exhaustive bool // disable the matcher's early-stop optimization
	// Progress, when non-nil, is invoked after every main-loop iteration.
	Progress func(IterationStats)
	// MaxIterations guards against runaway loops; 0 means the theoretical
	// bound m·ℓ + ℓ + 2 from the paper's analysis (§VI).
	MaxIterations int
}

// ErrIterationLimit is returned if the main loop exceeds its iteration
// bound — which indicates a bug rather than a property of the input.
var ErrIterationLimit = errors.New("wma: iteration limit exceeded")

// Solve runs WMA on the instance and returns a feasible solution of
// minimized (heuristic) total distance. It returns data.ErrInfeasible
// when no feasible solution exists.
func Solve(inst *data.Instance, opt Options) (*data.Solution, error) {
	return SolveCtx(context.Background(), inst, opt)
}

// SolveCtx is Solve with cooperative cancellation: ctx is checked once
// per WMA iteration, per augmenting-path search inside the matcher, and
// every ~4096 heap pops of the underlying network searches. On
// cancellation it returns nil and ctx.Err() — WMA holds no feasible
// incumbent until its final assignment phase completes, so there is no
// partial solution to salvage (unlike the exact solver's branch and
// bound). The checkpoints never alter the algorithm, so an uncancelled
// run produces output byte-identical to Solve.
func SolveCtx(ctx context.Context, inst *data.Instance, opt Options) (*data.Solution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if p := obs.From(ctx).Phase("wma/solve"); p != nil {
		defer p.End()
	}
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	feasible, _ := inst.Feasible()
	if !feasible {
		return nil, data.ErrInfeasible
	}
	m, l := inst.M(), inst.L()
	if m == 0 {
		return &data.Solution{Selected: []int{}, Assignment: []int{}}, nil
	}

	var selected []int
	if l <= inst.K {
		// Budget covers every candidate: selection is trivial.
		selected = make([]int, l)
		for j := range selected {
			selected[j] = j
		}
	} else {
		var err error
		selected, err = explore(ctx, inst, opt)
		if err != nil {
			return nil, err
		}
	}
	return AssignToSelectionCtx(ctx, inst, selected, opt)
}

// explore is the main loop of Algorithm 1: it grows customer demands,
// maintains an optimal bipartite matching, and stops when the set-cover
// heuristic finds k facilities covering all customers (or no further
// progress is possible). It returns the selected facility indexes.
func explore(ctx context.Context, inst *data.Instance, opt Options) ([]int, error) {
	m, l, k := inst.M(), inst.L(), inst.K
	mt := bipartite.New(inst.G, inst.Customers, inst.Facilities)
	mt.SetExhaustive(opt.Exhaustive)

	demand := make([]int, m)
	for i := range demand {
		demand[i] = 1
	}
	exhausted := make([]bool, m) // FindPair permanently unsatisfiable
	lastUsed := make([]int, l)
	for j := range lastUsed {
		lastUsed[j] = -1
	}

	maxIter := opt.MaxIterations
	if maxIter == 0 {
		maxIter = m*l + l + 2
	}

	rec := obs.From(ctx)
	var selection []int
	var covered bool
	for iter := 1; ; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if iter > maxIter {
			return nil, fmt.Errorf("%w (%d iterations)", ErrIterationLimit, maxIter)
		}
		iterPhase := rec.Phase("wma/iterate")
		rec.Add(obs.WMAIterations, 1)
		//lint:ignore determinism IterationStats timing for the Progress callback; never feeds back into the algorithm
		matchStart := time.Now()
		matchPhase := rec.Phase("wma/match")
		for i := 0; i < m; i++ {
			for !exhausted[i] && mt.MatchCount(i) < demand[i] {
				ok, err := mt.FindPairCtx(ctx, i)
				if err != nil {
					return nil, err
				}
				if !ok {
					exhausted[i] = true
				}
			}
		}
		matchPhase.End()
		matchTime := time.Since(matchStart)

		//lint:ignore determinism IterationStats timing for the Progress callback; never feeds back into the algorithm
		coverStart := time.Now()
		coverPhase := rec.Phase("wma/cover")
		var deltaD []bool
		selection, deltaD, covered = CheckCover(mt, k, lastUsed, opt.TieBreak)
		coverPhase.End()
		coverTime := time.Since(coverStart)
		for _, j := range selection {
			lastUsed[j] = iter
		}

		progress := false
		coveredCount := 0
		for i := 0; i < m; i++ {
			raise := deltaD[i]
			if !raise {
				coveredCount++
			}
			if opt.Demand == DemandAll && mt.MatchCount(i) >= demand[i] {
				raise = true // ablation: everyone explores every iteration
			}
			if raise && demand[i] < l && !exhausted[i] {
				demand[i]++
				progress = true
			}
		}
		if opt.Progress != nil {
			st := mt.Stats()
			total := 0
			for _, d := range demand {
				total += d
			}
			opt.Progress(IterationStats{
				Iteration:   iter,
				Covered:     coveredCount,
				MatchTime:   matchTime,
				CoverTime:   coverTime,
				Edges:       st.EdgesMaterialized,
				Augmenting:  st.Augmentations,
				DemandTotal: total,
			})
		}
		iterPhase.End()
		if covered || !progress {
			break
		}
	}

	if len(selection) < k {
		var err error
		selection, err = SelectGreedyCtx(ctx, inst, selection)
		if err != nil {
			return nil, err
		}
	}
	if !covered {
		var err error
		selection, err = CoverComponentsCtx(ctx, inst, selection)
		if err != nil {
			return nil, err
		}
	}
	return selection, nil
}

// AssignToSelection implements the tail recursion of Algorithm 1: it
// builds a single optimal (minimum-cost) assignment of all customers to
// the given selected facilities, each customer matched exactly once, and
// packages the solution. It is the optimal-assignment primitive shared
// by WMA's final phase, the Hilbert and BRNN baselines, the exact
// solver, and the Uniform-First strategy.
func AssignToSelection(inst *data.Instance, selected []int, opt Options) (*data.Solution, error) {
	return AssignToSelectionCtx(context.Background(), inst, selected, opt)
}

// AssignToSelectionCtx is AssignToSelection with cooperative
// cancellation, checked per augmenting path; on cancellation it returns
// nil and ctx.Err().
func AssignToSelectionCtx(ctx context.Context, inst *data.Instance, selected []int, opt Options) (*data.Solution, error) {
	if p := obs.From(ctx).Phase("wma/assign"); p != nil {
		defer p.End()
	}
	m := inst.M()
	subset := make([]data.Facility, len(selected))
	for idx, j := range selected {
		subset[idx] = inst.Facilities[j]
	}
	mt := bipartite.New(inst.G, inst.Customers, subset)
	mt.SetExhaustive(opt.Exhaustive)
	for i := 0; i < m; i++ {
		ok, err := mt.FindPairCtx(ctx, i)
		if err != nil {
			return nil, err
		}
		if !ok {
			// Feasibility was verified and CoverComponents balanced every
			// component, so this indicates an internal inconsistency.
			return nil, fmt.Errorf("wma: final assignment failed for customer %d: %w", i, data.ErrInfeasible)
		}
	}
	assignment := make([]int, m)
	var objective int64
	for i := 0; i < m; i++ {
		facs, weights := mt.Matches(i)
		if len(facs) != 1 {
			return nil, fmt.Errorf("wma: customer %d matched to %d facilities in final phase", i, len(facs))
		}
		assignment[i] = selected[facs[0]]
		objective += weights[0]
	}
	return &data.Solution{Selected: selected, Assignment: assignment, Objective: objective}, nil
}
