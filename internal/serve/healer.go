// Drift-triggered background re-solve: the self-healing half of the
// durability layer (DESIGN.md §12, "Durability & self-healing").
//
// Under sustained churn the incremental repair path keeps every
// assignment optimal *for the open selection*, but the selection itself
// ages: `/stats` reports the ratio of the published objective to the
// baseline recorded at the last full solve as `drift`. The incremental-
// repair line in the literature (repair per event, full re-solve when
// quality degrades past a threshold) says the serving policy should act
// on that signal, not just report it. The healer does: after every
// publish the writer loop compares the fresh view's drift against
// Config.DriftThreshold and, when it crosses, schedules a coalesced
// full re-solve through the same op queue every other write uses — the
// single-writer discipline is untouched.
//
// Two dampers keep churn from thrashing the solver. Hysteresis: a
// trigger disarms the watcher, and it re-arms only once drift falls
// back below the midpoint between 1 and the threshold — drift hovering
// at the threshold fires once, not on every publish. Min-interval
// backoff: the heal goroutine waits out Config.HealMinInterval since
// the last heal before running, and re-checks the live drift after the
// wait — if the reallocator's own internal re-solve (or a user
// /resolve) already healed the view, the scheduled heal dissolves into
// a no-op instead of burning a redundant full solve.
package serve

import (
	"context"
	"time"

	"mcfs/internal/obs"
)

// healRearmBelow computes the hysteresis low-water mark for a
// threshold: the midpoint between no-drift (1.0) and the threshold.
func healRearmBelow(threshold float64) float64 {
	return 1 + (threshold-1)/2
}

// maybeScheduleHeal runs on the writer goroutine after each publish:
// hysteresis-gated threshold check on the freshly published view, and a
// non-blocking kick to the heal goroutine (a kick already pending
// coalesces — one heal serves any number of crossings).
func (s *Server) maybeScheduleHeal() {
	if s.cfg.DriftThreshold <= 0 {
		return
	}
	v := s.view.Load()
	if v.base <= 0 {
		return
	}
	drift := float64(v.pub.Objective) / float64(v.base)
	if drift < healRearmBelow(s.cfg.DriftThreshold) {
		s.healArmed = true
	}
	if !s.healArmed || drift < s.cfg.DriftThreshold {
		return
	}
	s.healArmed = false
	s.rec.Add(obs.ServeHealTriggers, 1)
	select {
	case s.healKick <- struct{}{}:
	default:
	}
}

// healLoop is the background re-solve goroutine. It exists so the
// writer loop never blocks on a full solve it scheduled for itself:
// the heal is just another queued op, batched and published like any
// other write.
func (s *Server) healLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case <-s.healKick:
		}
		if !s.healBackoff() {
			return // shutdown during the backoff wait
		}
		// Re-check against the live view: the drift that scheduled this
		// heal may already be gone.
		v := s.view.Load()
		if v.base <= 0 || float64(v.pub.Objective)/float64(v.base) < s.cfg.DriftThreshold {
			continue
		}
		ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.DefaultTimeout)
		_, err := s.do(ctx, op{kind: opResolve, algo: s.cfg.Algorithm})
		cancel()
		if err != nil {
			s.rec.Add(obs.ServeHealFailures, 1)
			if s.cfg.Logger != nil {
				s.cfg.Logger.Error("drift heal failed", "error", err)
			}
			continue
		}
		s.rec.Add(obs.ServeHeals, 1)
		s.lastHealUnix.Store(s.clock.Now().Unix())
	}
}

// healBackoff waits out the remainder of HealMinInterval since the last
// completed heal; returns false if the server shut down while waiting.
func (s *Server) healBackoff() bool {
	last := s.lastHealUnix.Load()
	if last == 0 || s.cfg.HealMinInterval <= 0 {
		return true
	}
	elapsed := s.clock.Now().Sub(time.Unix(last, 0))
	wait := s.cfg.HealMinInterval - elapsed
	if wait <= 0 {
		return true
	}
	tk := s.clock.NewTicker(wait)
	defer tk.Stop()
	select {
	case <-s.quit:
		return false
	case <-tk.C():
		return true
	}
}
