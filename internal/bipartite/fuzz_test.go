package bipartite

import (
	"math/rand"
	"testing"

	"mcfs/internal/data"
)

// fuzzMod reduces a raw fuzz integer into [0, m) without overflowing on
// MinInt64 (whose negation is itself).
func fuzzMod(raw, m int64) int64 {
	v := raw % m
	if v < 0 {
		v += m
	}
	return v
}

// FuzzMatcher cross-checks the full SSPA engine — lazy edge
// materialization, potentials, Theorem-1 pruning, augmentation — against
// refMinCost, the dense successive-shortest-paths reference with no
// optimizations. For any interleaving of FindPair calls the engine's
// matching must cost exactly the reference optimum for the demand vector
// it achieved, and a failed FindPair must mean the reference cannot
// place another unit for that customer either.
func FuzzMatcher(f *testing.F) {
	f.Add(int64(1), int64(3), int64(3), int64(2), int64(2))
	f.Add(int64(42), int64(1), int64(6), int64(1), int64(3))
	f.Add(int64(7), int64(6), int64(2), int64(3), int64(1))
	f.Add(int64(-99), int64(4), int64(4), int64(2), int64(2))
	f.Add(int64(123456789), int64(5), int64(5), int64(1), int64(3))
	f.Fuzz(func(t *testing.T, seed, mRaw, lRaw, capRaw, roundsRaw int64) {
		m := 1 + int(fuzzMod(mRaw, 6))
		l := 1 + int(fuzzMod(lRaw, 6))
		maxCap := 1 + int(fuzzMod(capRaw, 3))
		rounds := 1 + int(fuzzMod(roundsRaw, 3))

		rng := rand.New(rand.NewSource(seed))
		n := m + l + 4 + rng.Intn(28)
		g := randomNetwork(rng, n)
		perm := rng.Perm(n)
		custNodes := make([]int32, m)
		for i := range custNodes {
			custNodes[i] = int32(perm[i])
		}
		facs := make([]data.Facility, l)
		caps := make([]int, l)
		for j := range facs {
			caps[j] = 1 + rng.Intn(maxCap)
			facs[j] = data.Facility{Node: int32(perm[m+j]), Capacity: caps[j]}
		}

		mt := New(g, custNodes, facs)
		demands := make([]int, m)
		lastFailed := -1
		for r := 0; r < rounds; r++ {
			for i := 0; i < m; i++ {
				if mt.FindPair(i) {
					demands[i]++
				} else {
					lastFailed = i
				}
			}
		}
		checkInvariants(t, mt)

		dist := denseDistances(g, custNodes, facs)
		want, ok := refMinCost(dist, caps, demands)
		if !ok {
			t.Fatalf("reference cannot satisfy demands %v the engine matched (caps %v, seed %d)",
				demands, caps, seed)
		}
		if got := mt.TotalMatchedCost(); got != want {
			t.Fatalf("SSPA cost %d != reference optimum %d (m=%d l=%d caps=%v demands=%v seed=%d)",
				got, want, m, l, caps, demands, seed)
		}
		// Completeness: a failure means no augmenting path existed then;
		// infeasibility is monotone in the demand vector, so it must still
		// be infeasible with the final (larger) demands.
		if lastFailed >= 0 {
			bumped := append([]int(nil), demands...)
			bumped[lastFailed]++
			if _, ok := refMinCost(dist, caps, bumped); ok {
				t.Fatalf("FindPair(%d) failed but the reference matches another unit (caps %v demands %v seed %d)",
					lastFailed, caps, demands, seed)
			}
		}
	})
}
