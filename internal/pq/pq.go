// Package pq provides addressable binary min-heaps specialized for the
// hot paths of Dijkstra's algorithm and the SSPA matching engine, plus a
// small generic heap for everything else.
//
// The specialized heaps key items by int64 priorities and identify items
// by int32 ids, supporting decrease-key in O(log n). DenseHeap tracks
// positions in a slice and suits item ids drawn from a small dense range
// [0, n); SparseHeap tracks positions in a map and suits Dijkstra
// instances that touch a tiny fraction of a huge graph.
package pq

// DenseHeap is an addressable binary min-heap over item ids in [0, n).
// The zero value is not usable; call NewDense.
type DenseHeap struct {
	ids  []int32
	keys []int64
	pos  []int32 // pos[id] = index in ids, or -1 if absent
}

// NewDense returns a heap for item ids in [0, n).
func NewDense(n int) *DenseHeap {
	pos := make([]int32, n)
	for i := range pos {
		pos[i] = -1
	}
	return &DenseHeap{pos: pos}
}

// Len reports the number of items in the heap.
func (h *DenseHeap) Len() int { return len(h.ids) }

// Contains reports whether id is currently in the heap.
func (h *DenseHeap) Contains(id int32) bool { return h.pos[id] >= 0 }

// Key returns the current key of id; it must be in the heap.
func (h *DenseHeap) Key(id int32) int64 { return h.keys[h.pos[id]] }

// Push inserts id with the given key, or decreases/increases its key if
// already present.
func (h *DenseHeap) Push(id int32, key int64) {
	if p := h.pos[id]; p >= 0 {
		old := h.keys[p]
		h.keys[p] = key
		if key < old {
			h.up(int(p))
		} else if key > old {
			h.down(int(p))
		}
		return
	}
	h.ids = append(h.ids, id)
	h.keys = append(h.keys, key)
	h.pos[id] = int32(len(h.ids) - 1)
	h.up(len(h.ids) - 1)
}

// DecreaseKey lowers id's key; it is a no-op if the new key is not lower
// or id is absent (in which case it inserts).
func (h *DenseHeap) DecreaseKey(id int32, key int64) {
	if p := h.pos[id]; p >= 0 {
		if key >= h.keys[p] {
			return
		}
		h.keys[p] = key
		h.up(int(p))
		return
	}
	h.Push(id, key)
}

// PeekMin returns the minimum item and key without removing it.
// It must not be called on an empty heap.
func (h *DenseHeap) PeekMin() (int32, int64) { return h.ids[0], h.keys[0] }

// PopMin removes and returns the minimum item and its key.
// It must not be called on an empty heap.
func (h *DenseHeap) PopMin() (int32, int64) {
	id, key := h.ids[0], h.keys[0]
	h.swap(0, len(h.ids)-1)
	h.pos[id] = -1
	h.ids = h.ids[:len(h.ids)-1]
	h.keys = h.keys[:len(h.keys)-1]
	if len(h.ids) > 0 {
		h.down(0)
	}
	return id, key
}

// Remove deletes id from the heap if present.
func (h *DenseHeap) Remove(id int32) {
	p := h.pos[id]
	if p < 0 {
		return
	}
	last := len(h.ids) - 1
	h.swap(int(p), last)
	h.pos[id] = -1
	h.ids = h.ids[:last]
	h.keys = h.keys[:last]
	if int(p) < last {
		h.down(int(p))
		h.up(int(p))
	}
}

// Reset empties the heap, retaining capacity.
func (h *DenseHeap) Reset() {
	for _, id := range h.ids {
		h.pos[id] = -1
	}
	h.ids = h.ids[:0]
	h.keys = h.keys[:0]
}

func (h *DenseHeap) swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
	h.pos[h.ids[i]] = int32(i)
	h.pos[h.ids[j]] = int32(j)
}

func (h *DenseHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.keys[parent] <= h.keys[i] {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *DenseHeap) down(i int) {
	n := len(h.ids)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.keys[l] < h.keys[small] {
			small = l
		}
		if r < n && h.keys[r] < h.keys[small] {
			small = r
		}
		if small == i {
			return
		}
		h.swap(i, small)
		i = small
	}
}

// SparseHeap is an addressable binary min-heap with map-tracked
// positions, suitable when item ids are sparse in a huge id space.
type SparseHeap struct {
	ids  []int32
	keys []int64
	pos  map[int32]int32
}

// NewSparse returns an empty sparse heap.
func NewSparse() *SparseHeap {
	return &SparseHeap{pos: make(map[int32]int32)}
}

// Len reports the number of items in the heap.
func (h *SparseHeap) Len() int { return len(h.ids) }

// Contains reports whether id is currently in the heap.
func (h *SparseHeap) Contains(id int32) bool { _, ok := h.pos[id]; return ok }

// Key returns the current key of id; it must be in the heap.
func (h *SparseHeap) Key(id int32) int64 { return h.keys[h.pos[id]] }

// Push inserts id with the given key, updating the key if present.
func (h *SparseHeap) Push(id int32, key int64) {
	if p, ok := h.pos[id]; ok {
		old := h.keys[p]
		h.keys[p] = key
		if key < old {
			h.up(int(p))
		} else if key > old {
			h.down(int(p))
		}
		return
	}
	h.ids = append(h.ids, id)
	h.keys = append(h.keys, key)
	h.pos[id] = int32(len(h.ids) - 1)
	h.up(len(h.ids) - 1)
}

// DecreaseKey lowers id's key, inserting it if absent; higher keys are
// ignored.
func (h *SparseHeap) DecreaseKey(id int32, key int64) {
	if p, ok := h.pos[id]; ok {
		if key >= h.keys[p] {
			return
		}
		h.keys[p] = key
		h.up(int(p))
		return
	}
	h.Push(id, key)
}

// PeekMin returns the minimum item and key without removing it.
// It must not be called on an empty heap.
func (h *SparseHeap) PeekMin() (int32, int64) { return h.ids[0], h.keys[0] }

// PopMin removes and returns the minimum item and its key.
// It must not be called on an empty heap.
func (h *SparseHeap) PopMin() (int32, int64) {
	id, key := h.ids[0], h.keys[0]
	h.swap(0, len(h.ids)-1)
	delete(h.pos, id)
	h.ids = h.ids[:len(h.ids)-1]
	h.keys = h.keys[:len(h.keys)-1]
	if len(h.ids) > 0 {
		h.down(0)
	}
	return id, key
}

// Reset empties the heap, retaining slice capacity.
func (h *SparseHeap) Reset() {
	h.ids = h.ids[:0]
	h.keys = h.keys[:0]
	clear(h.pos)
}

func (h *SparseHeap) swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
	h.pos[h.ids[i]] = int32(i)
	h.pos[h.ids[j]] = int32(j)
}

func (h *SparseHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.keys[parent] <= h.keys[i] {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *SparseHeap) down(i int) {
	n := len(h.ids)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.keys[l] < h.keys[small] {
			small = l
		}
		if r < n && h.keys[r] < h.keys[small] {
			small = r
		}
		if small == i {
			return
		}
		h.swap(i, small)
		i = small
	}
}
