// The "serve" experiment load-tests the long-lived assignment service
// (internal/serve, cmd/mcfsd): seeded workers replay a mixed stream of
// assignment lookups and population churn against the HTTP API and the
// runner reports per-endpoint latency quantiles plus end-to-end
// throughput. With Config.ServeURL empty the runner self-hosts an
// in-process server on a loopback port (the CI mode); pointing ServeURL
// at a running mcfsd measures the daemon across a real socket.
//
// Latency and throughput rows are wall-clock by nature and vary between
// runs; the op stream itself (which worker issues which request) is
// fully determined by Config.Seed.
package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"

	"mcfs"
	"mcfs/internal/gen"
	"mcfs/internal/metrics"
	"mcfs/internal/serve"
)

func init() {
	register("serve", runServe)
}

// serveEndpoints is the emission order of the latency rows.
var serveEndpoints = []string{"assign", "arrivals", "departures"}

// serveInstance builds the self-hosted workload: a synthetic graph with
// ample capacity slack so that a bursty arrival phase stays feasible.
func serveInstance(cfg Config) (*mcfs.Instance, error) {
	n := int(2000 * cfg.Scale)
	if n < 160 {
		n = 160
	}
	g, err := gen.Synthetic(gen.SyntheticConfig{N: n, Alpha: 2.5, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	pool := gen.LargestComponent(g)
	m := n / 10
	// Open enough capacity for 2x the initial population, so a bursty
	// arrival phase stays feasible.
	k := m / 5
	if k < 8 {
		k = 8
	}
	return &mcfs.Instance{
		G:          g,
		Customers:  gen.SampleCustomersFrom(pool, m, rng),
		Facilities: gen.SampleFacilitiesFrom(pool, n/5, rng, gen.UniformCapacity(10)),
		K:          k,
	}, nil
}

// handlePool is the shared set of live customer handles the workers
// draw from. take removes a random handle (so no two departures race
// for the same customer); pick reads one without claiming it.
type handlePool struct {
	mu      sync.Mutex
	handles []int
}

func (p *handlePool) pick(rng *rand.Rand) (int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.handles) == 0 {
		return 0, false
	}
	return p.handles[rng.Intn(len(p.handles))], true
}

func (p *handlePool) take(rng *rand.Rand) (int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.handles) == 0 {
		return 0, false
	}
	i := rng.Intn(len(p.handles))
	h := p.handles[i]
	p.handles[i] = p.handles[len(p.handles)-1]
	p.handles = p.handles[:len(p.handles)-1]
	return h, true
}

func (p *handlePool) add(hs []int) {
	p.mu.Lock()
	p.handles = append(p.handles, hs...)
	p.mu.Unlock()
}

// serveWorker replays one worker's share of the op stream: roughly 60%
// assignment lookups, 20% arrivals, 20% departures. It returns one
// latency histogram per endpoint (indexed like serveEndpoints) plus the
// number of ops the server rejected as infeasible (422: capacity
// exhausted — an outcome, not an error).
func serveWorker(c *http.Client, base string, nodes []int32, pool *handlePool,
	events int, rng *rand.Rand) (hists [3]*metrics.Histogram, rejected int, err error) {
	for i := range hists {
		hists[i] = &metrics.Histogram{}
	}
	for i := 0; i < events; i++ {
		roll := rng.Float64()
		switch {
		case roll < 0.6:
			h, ok := pool.pick(rng)
			if !ok {
				h = 0
			}
			start := time.Now()
			status, _, gerr := serveGet(c, fmt.Sprintf("%s/assign?customer=%d", base, h))
			hists[0].Observe(time.Since(start))
			if gerr != nil {
				return hists, rejected, gerr
			}
			// 404 is a live outcome: the handle departed between pick
			// and lookup.
			if status != 200 && status != 404 {
				return hists, rejected, fmt.Errorf("assign: status %d", status)
			}
		case roll < 0.8:
			node := nodes[rng.Intn(len(nodes))]
			var churn struct {
				Handles []int `json:"handles"`
			}
			start := time.Now()
			status, perr := servePost(c, base+"/arrivals",
				map[string][]int32{"nodes": {node}}, &churn)
			hists[1].Observe(time.Since(start))
			if perr != nil {
				return hists, rejected, perr
			}
			switch status {
			case 200:
				pool.add(churn.Handles)
			case 422:
				rejected++
			default:
				return hists, rejected, fmt.Errorf("arrivals: status %d", status)
			}
		default:
			h, ok := pool.take(rng)
			if !ok {
				continue // population drained; skip the departure
			}
			start := time.Now()
			status, perr := servePost(c, base+"/departures",
				map[string][]int{"handles": {h}}, nil)
			hists[2].Observe(time.Since(start))
			if perr != nil {
				return hists, rejected, perr
			}
			if status != 200 {
				return hists, rejected, fmt.Errorf("departures: status %d", status)
			}
		}
	}
	return hists, rejected, nil
}

func serveGet(c *http.Client, url string) (status int, body []byte, err error) {
	resp, err := c.Get(url)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}

func servePost(c *http.Client, url string, in, out any) (status int, err error) {
	buf, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	resp, err := c.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if out != nil && resp.StatusCode == 200 {
		if err := json.Unmarshal(raw, out); err != nil {
			return resp.StatusCode, fmt.Errorf("%s: bad response %q: %v", url, raw, err)
		}
	}
	return resp.StatusCode, nil
}

// runServe drives the load phase and emits stat rows (Algo empty):
// one latency row per endpoint, a throughput row, and the server's
// closing objective/drift.
func runServe(cfg Config, emit func(Row)) error {
	base := cfg.ServeURL
	var stop func() error
	if base == "" {
		inst, err := serveInstance(cfg)
		if err != nil {
			return err
		}
		// The self-hosted server runs with the drift healer armed (tight
		// backoff so a heal can actually fire inside a short load phase):
		// the closing stats row then reports how often the churn pushed
		// drift past the threshold and what the healer did about it.
		eng, err := serve.New(serve.Config{
			Instance:        inst,
			DriftThreshold:  1.2,
			HealMinInterval: time.Millisecond,
		})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			eng.Close()
			return err
		}
		srv := &http.Server{Handler: eng.Handler()}
		errCh := make(chan error, 1)
		go func() { errCh <- srv.Serve(ln) }()
		base = "http://" + ln.Addr().String()
		stop = func() error {
			cerr := srv.Close()
			<-errCh // Serve has returned
			eng.Close()
			return cerr
		}
	}

	// Bootstrap the live population (handles and their nodes) from a
	// snapshot — the same restartable capture mcfsd persists.
	client := &http.Client{Timeout: 30 * time.Second}
	status, body, err := serveGet(client, base+"/snapshot")
	if err == nil && status != 200 {
		err = fmt.Errorf("bench: snapshot bootstrap: status %d", status)
	}
	if err != nil {
		if stop != nil {
			stop()
		}
		return err
	}
	snap, err := mcfs.ReadReallocatorSnapshot(bytes.NewReader(body))
	if err != nil {
		if stop != nil {
			stop()
		}
		return err
	}

	events := cfg.ServeEvents
	if events <= 0 {
		events = int(600 * cfg.Scale)
		if events < 24 {
			events = 24
		}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	if workers > events {
		workers = events
	}

	pool := &handlePool{handles: append([]int(nil), snap.Handles...)}
	nodes := snap.CustomerNodes

	type result struct {
		hists    [3]*metrics.Histogram
		rejected int
		err      error
	}
	results := make([]result, workers)
	var wg sync.WaitGroup
	loadStart := time.Now()
	for w := 0; w < workers; w++ {
		share := events / workers
		if w < events%workers {
			share++
		}
		wg.Add(1)
		go func(w, share int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + 1000*int64(w)))
			h, rej, werr := serveWorker(client, base, nodes, pool, share, rng)
			results[w] = result{hists: h, rejected: rej, err: werr}
		}(w, share)
	}
	wg.Wait()
	elapsed := time.Since(loadStart)

	// The closing stats come from the server itself, before teardown.
	var st serve.StatsReply
	stStatus, stBody, stErr := serveGet(client, base+"/stats")
	if stErr == nil && stStatus == 200 {
		stErr = json.Unmarshal(stBody, &st)
	} else if stErr == nil {
		stErr = fmt.Errorf("bench: stats: status %d", stStatus)
	}
	if stop != nil {
		if serr := stop(); serr != nil && stErr == nil {
			stErr = serr
		}
	}
	for _, r := range results {
		if r.err != nil {
			return fmt.Errorf("bench: serve load worker: %w", r.err)
		}
	}
	if stErr != nil {
		return stErr
	}

	merged := [3]*metrics.Histogram{{}, {}, {}}
	rejected := 0
	for _, r := range results {
		for i := range merged {
			merged[i].Merge(r.hists[i])
		}
		rejected += r.rejected
	}
	var totalOps int64
	for i, name := range serveEndpoints {
		h := merged[i]
		totalOps += h.Count()
		emit(Row{
			Exp: "serve", X: name, XVal: float64(h.Count()), Objective: -1,
			Note: fmt.Sprintf("n=%d p50=%s p99=%s max=%s", h.Count(),
				h.Quantile(0.5).Round(time.Microsecond),
				h.Quantile(0.99).Round(time.Microsecond),
				h.Max().Round(time.Microsecond)),
		})
	}
	throughput := float64(totalOps) / elapsed.Seconds()
	emit(Row{
		Exp: "serve", X: "throughput", XVal: throughput, Objective: -1, Runtime: elapsed,
		Note: fmt.Sprintf("%.0f req/s (%d ops, %d workers, %d rejected, %s)",
			throughput, totalOps, workers, rejected, elapsed.Round(time.Millisecond)),
	})
	emit(Row{
		Exp: "serve", X: "objective", XVal: float64(st.Objective), Objective: st.Objective,
		Note: fmt.Sprintf("customers=%d drift=%.3f batches=%d batched_ops=%d heal_triggers=%d heals=%d",
			st.Customers, st.Drift, st.Batches, st.BatchedOps, st.HealTriggers, st.Heals),
	})
	return nil
}
