// Dynamic demonstrates the paper's repeated-solving motivation: a
// service that must reallocate customers to facilities as they arrive
// and depart. A Reallocator serves arrivals along single optimal
// augmenting paths — orders of magnitude cheaper than re-solving — and
// re-selects facilities only when the open set saturates or the cost
// drifts, while matching the quality of from-scratch assignment.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"mcfs"
)

func main() {
	n, m, k, steps := 4000, 200, 60, 450
	if os.Getenv("MCFS_EXAMPLE_QUICK") != "" {
		n, m, k, steps = 1500, 100, 30, 120
	}
	g, err := mcfs.GenerateSynthetic(mcfs.SyntheticConfig{N: n, Clusters: 25, Alpha: 1.8, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	pool := mcfs.LargestComponent(g)
	inst := &mcfs.Instance{
		G:          g,
		Customers:  mcfs.SampleCustomersFrom(pool, m, rng),
		Facilities: mcfs.NodesFacilities(pool, mcfs.UniformCapacity(10)),
		K:          k,
	}
	fmt.Printf("network %d nodes; initial m=%d, k=%d\n\n", g.N(), inst.M(), inst.K)

	r, err := mcfs.NewReallocator(inst, 1.3)
	if err != nil {
		log.Fatal(err)
	}
	obj, _ := r.Objective()
	fmt.Printf("initial solve: objective %d\n", obj)

	// Churn: arrivals and departures interleaved 2:1.
	var handles []int
	for h := 0; h < inst.M(); h++ {
		handles = append(handles, h)
	}
	start := time.Now()
	arrivals, departures := 0, 0
	for step := 0; step < steps; step++ {
		if step%3 == 2 && len(handles) > 0 {
			i := rng.Intn(len(handles))
			if err := r.RemoveCustomer(handles[i]); err != nil {
				log.Fatal(err)
			}
			handles = append(handles[:i], handles[i+1:]...)
			departures++
			continue
		}
		h, err := r.AddCustomer(pool[rng.Intn(len(pool))])
		if err != nil {
			log.Fatal(err)
		}
		handles = append(handles, h)
		arrivals++
	}
	obj, err = r.Objective()
	if err != nil {
		log.Fatal(err)
	}
	churnTime := time.Since(start)
	st := r.Stats()
	fmt.Printf("churn: %d arrivals, %d departures in %s\n", arrivals, departures, churnTime.Round(time.Millisecond))
	fmt.Printf("  full re-selections: %d, assignment rebuilds: %d\n", st.FullSolves, st.Rebuilds)
	fmt.Printf("  final population %d, objective %d\n", r.Customers(), obj)

	// Compare against re-solving from scratch at the final state.
	finalInst, sol, err := r.Solution()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := finalInst.CheckSolution(sol); err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	fresh, err := mcfs.Solve(finalInst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfrom-scratch WMA on the final state: objective %d in %s\n",
		fresh.Objective, time.Since(start).Round(time.Millisecond))
	fmt.Printf("reallocator quality vs fresh solve: %.2f%%\n",
		100*float64(obj-fresh.Objective)/float64(fresh.Objective))
}
