package mcfs_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"mcfs"
)

func cancelledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

// tinyInstance is small enough for exhaustive enumeration (C(12,5)).
func tinyInstance(t *testing.T) *mcfs.Instance {
	t.Helper()
	g, err := mcfs.GenerateSynthetic(mcfs.SyntheticConfig{N: 80, Alpha: 2.5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	pool := mcfs.LargestComponent(g)
	return &mcfs.Instance{
		G:          g,
		Customers:  mcfs.SampleCustomersFrom(pool, 10, rng),
		Facilities: mcfs.SampleFacilitiesFrom(pool, 12, rng, mcfs.UniformCapacity(4)),
		K:          5,
	}
}

// largeInstance is a clustered instance sized so that every heuristic
// needs well over the mid-run deadlines used below. It is built once and
// shared read-only across tests.
var (
	largeOnce sync.Once
	largeInst *mcfs.Instance
	largeErr  error
)

func largeInstance(t *testing.T) *mcfs.Instance {
	t.Helper()
	largeOnce.Do(func() {
		g, err := mcfs.GenerateSynthetic(mcfs.SyntheticConfig{
			N: 6000, Clusters: 10, Alpha: 1.8, Seed: 21,
		})
		if err != nil {
			largeErr = err
			return
		}
		rng := rand.New(rand.NewSource(22))
		pool := mcfs.LargestComponent(g)
		largeInst = &mcfs.Instance{
			G:          g,
			Customers:  mcfs.SampleCustomersFrom(pool, 800, rng),
			Facilities: mcfs.SampleFacilitiesFrom(pool, 1200, rng, mcfs.UniformCapacity(40)),
			K:          30,
		}
	})
	if largeErr != nil {
		t.Fatal(largeErr)
	}
	return largeInst
}

// TestPublicAPICtxPreCancelled: every Ctx entry point must notice an
// already-cancelled context and return ctx.Err() without doing work.
func TestPublicAPICtxPreCancelled(t *testing.T) {
	inst := buildInstance(t, 41)
	base, err := mcfs.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	ctx := cancelledCtx()

	runs := []struct {
		name string
		run  func() error
	}{
		{"SolveCtx", func() error { sol, err := mcfs.SolveCtx(ctx, inst); mustNilSol(t, "SolveCtx", sol); return err }},
		{"SolveUniformFirstCtx", func() error {
			sol, err := mcfs.SolveUniformFirstCtx(ctx, inst)
			mustNilSol(t, "SolveUniformFirstCtx", sol)
			return err
		}},
		{"SolveHilbertCtx", func() error {
			sol, err := mcfs.SolveHilbertCtx(ctx, inst)
			mustNilSol(t, "SolveHilbertCtx", sol)
			return err
		}},
		{"SolveBRNNCtx", func() error {
			sol, err := mcfs.SolveBRNNCtx(ctx, inst)
			mustNilSol(t, "SolveBRNNCtx", sol)
			return err
		}},
		{"SolveNaiveCtx", func() error {
			sol, err := mcfs.SolveNaiveCtx(ctx, inst, mcfs.WithSeed(3))
			mustNilSol(t, "SolveNaiveCtx", sol)
			return err
		}},
		{"AssignToSelectionCtx", func() error {
			sol, err := mcfs.AssignToSelectionCtx(ctx, inst, base.Selected)
			mustNilSol(t, "AssignToSelectionCtx", sol)
			return err
		}},
		{"SolveExactCtx", func() error { _, err := mcfs.SolveExactCtx(ctx, inst); return err }},
		{"ImproveCtx", func() error {
			sol, _, err := mcfs.ImproveCtx(ctx, inst, base, 0)
			// Local search holds its input as incumbent; a cancelled run
			// keeps it rather than dropping to nil.
			if err != nil && sol == nil {
				t.Error("ImproveCtx: cancelled run dropped the incumbent")
			}
			return err
		}},
		{"NewReallocatorCtx", func() error { _, err := mcfs.NewReallocatorCtx(ctx, inst, 0); return err }},
	}
	for _, r := range runs {
		if err := r.run(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", r.name, err)
		}
	}
}

func TestPublicAPICtxPreCancelledExhaustive(t *testing.T) {
	inst := tinyInstance(t)
	// Sanity: the instance really is exhaustible when uncancelled.
	if _, err := mcfs.SolveExhaustive(inst, 0); err != nil {
		t.Fatalf("uncancelled exhaustive: %v", err)
	}
	if _, err := mcfs.SolveExhaustiveCtx(cancelledCtx(), inst, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func mustNilSol(t *testing.T, name string, sol *mcfs.Solution) {
	t.Helper()
	if sol != nil {
		t.Errorf("%s: cancelled run returned a solution", name)
	}
}

// TestPublicAPICtxDeterminism: an uncancelled Ctx run must be
// byte-identical to the legacy entry point, and the registry must match
// both — context plumbing may not perturb any tie-break.
func TestPublicAPICtxDeterminism(t *testing.T) {
	inst := buildInstance(t, 42)
	ctx := context.Background()
	type variant struct {
		name  string
		plain func() (*mcfs.Solution, error)
		ctxed func() (*mcfs.Solution, error)
		reg   mcfs.Algorithm
	}
	variants := []variant{
		{"wma",
			func() (*mcfs.Solution, error) { return mcfs.Solve(inst) },
			func() (*mcfs.Solution, error) { return mcfs.SolveCtx(ctx, inst) },
			mcfs.AlgorithmWMA},
		{"uf",
			func() (*mcfs.Solution, error) { return mcfs.SolveUniformFirst(inst) },
			func() (*mcfs.Solution, error) { return mcfs.SolveUniformFirstCtx(ctx, inst) },
			mcfs.AlgorithmUniformFirst},
		{"hilbert",
			func() (*mcfs.Solution, error) { return mcfs.SolveHilbert(inst) },
			func() (*mcfs.Solution, error) { return mcfs.SolveHilbertCtx(ctx, inst) },
			mcfs.AlgorithmHilbert},
		{"naive",
			func() (*mcfs.Solution, error) { return mcfs.SolveNaive(inst, mcfs.WithSeed(7)) },
			func() (*mcfs.Solution, error) { return mcfs.SolveNaiveCtx(ctx, inst, mcfs.WithSeed(7)) },
			mcfs.AlgorithmNaive},
	}
	for _, v := range variants {
		want, err := v.plain()
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		got, err := v.ctxed()
		if err != nil {
			t.Fatalf("%s ctx: %v", v.name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: SolveCtx result differs from Solve", v.name)
		}
		var regOpts []mcfs.Option
		if v.name == "naive" {
			regOpts = append(regOpts, mcfs.WithSeed(7))
		}
		reg, _, err := v.reg.Solve(ctx, inst, regOpts...)
		if err != nil {
			t.Fatalf("%s registry: %v", v.name, err)
		}
		if !reflect.DeepEqual(reg, want) {
			t.Errorf("%s: registry result differs from Solve", v.name)
		}
	}

	// BRNN is the slow baseline; compare it on a smaller instance.
	small := tinyInstance(t)
	want, err := mcfs.SolveBRNN(small)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mcfs.SolveBRNNCtx(ctx, small)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("brnn: SolveBRNNCtx result differs from SolveBRNN")
	}

	// AssignToSelection under a fixed selection.
	sel := want.Selected
	wantA, err := mcfs.AssignToSelection(small, sel)
	if err != nil {
		t.Fatal(err)
	}
	gotA, err := mcfs.AssignToSelectionCtx(ctx, small, sel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotA, wantA) {
		t.Error("AssignToSelectionCtx result differs from AssignToSelection")
	}
}

// TestPublicAPICtxMidRunDeadline: on an instance far too large to finish
// within the deadline, every heuristic must return promptly with
// context.DeadlineExceeded and no solution.
func TestPublicAPICtxMidRunDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("large instance")
	}
	inst := largeInstance(t)
	const deadline = 10 * time.Millisecond
	// Generous promptness bound: orders of magnitude under the full solve
	// time, loose enough for -race and loaded CI machines.
	const promptness = 5 * time.Second

	solvers := []struct {
		name string
		run  func(ctx context.Context) (*mcfs.Solution, error)
	}{
		{"wma", func(ctx context.Context) (*mcfs.Solution, error) { return mcfs.SolveCtx(ctx, inst) }},
		{"uf", func(ctx context.Context) (*mcfs.Solution, error) { return mcfs.SolveUniformFirstCtx(ctx, inst) }},
		{"hilbert", func(ctx context.Context) (*mcfs.Solution, error) { return mcfs.SolveHilbertCtx(ctx, inst) }},
		{"brnn", func(ctx context.Context) (*mcfs.Solution, error) { return mcfs.SolveBRNNCtx(ctx, inst) }},
		{"naive", func(ctx context.Context) (*mcfs.Solution, error) {
			return mcfs.SolveNaiveCtx(ctx, inst, mcfs.WithSeed(3))
		}},
	}
	timedOut := 0
	for _, s := range solvers {
		ctx, cancel := context.WithTimeout(context.Background(), deadline)
		start := time.Now()
		sol, err := s.run(ctx)
		elapsed := time.Since(start)
		cancel()
		if err == nil {
			t.Logf("%s finished in %s, under the deadline", s.name, elapsed)
			continue
		}
		timedOut++
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%s: err = %v, want context.DeadlineExceeded", s.name, err)
		}
		if sol != nil {
			t.Errorf("%s: timed-out run returned a solution", s.name)
		}
		if elapsed > promptness {
			t.Errorf("%s: returned after %s, want < %s", s.name, elapsed, promptness)
		}
	}
	if timedOut == 0 {
		t.Error("every solver finished a 6000-node instance within 10ms; enlarge the fixture")
	}
}

// TestPublicAPITimeBudgetSugar: WithTimeBudget on the legacy entry
// points must behave as a context deadline.
func TestPublicAPITimeBudgetSugar(t *testing.T) {
	inst := buildInstance(t, 43)
	sol, err := mcfs.Solve(inst, mcfs.WithTimeBudget(time.Nanosecond))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if sol != nil {
		t.Fatal("timed-out Solve returned a solution")
	}
}

// TestPublicAPIImproveCtxKeepsIncumbent: a deadline that expires during
// local search keeps the best verified incumbent found so far.
func TestPublicAPIImproveCtxKeepsIncumbent(t *testing.T) {
	inst := buildInstance(t, 44)
	base, err := mcfs.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	sol, _, err := mcfs.ImproveCtx(context.Background(), inst, base, 0, mcfs.WithTimeBudget(time.Nanosecond))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if sol == nil {
		t.Fatal("timed-out Improve dropped the incumbent")
	}
	if sol.Objective > base.Objective {
		t.Fatalf("incumbent objective %d worse than input %d", sol.Objective, base.Objective)
	}
	if _, err := inst.CheckSolution(sol); err != nil {
		t.Fatalf("incumbent invalid: %v", err)
	}
}

// TestPublicAPIReallocatorSetContext: a Reallocator survives a cancelled
// operation — rebinding a live context heals the stale matching.
func TestPublicAPIReallocatorSetContext(t *testing.T) {
	inst := buildInstance(t, 45)
	r, err := mcfs.NewReallocator(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	before, err := r.Objective()
	if err != nil {
		t.Fatal(err)
	}

	r.SetContext(cancelledCtx())
	if _, err := r.AddCustomer(inst.Customers[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("AddCustomer under cancelled ctx: err = %v, want context.Canceled", err)
	}

	r.SetContext(context.Background())
	h, err := r.AddCustomer(inst.Customers[0])
	if err != nil {
		t.Fatalf("AddCustomer after rebinding: %v", err)
	}
	after, err := r.Objective()
	if err != nil {
		t.Fatal(err)
	}
	if after < before {
		t.Fatalf("objective decreased after an arrival: %d -> %d", before, after)
	}
	if err := r.RemoveCustomer(h); err != nil {
		t.Fatal(err)
	}
	got, err := r.Objective()
	if err != nil {
		t.Fatal(err)
	}
	if got != before {
		t.Fatalf("objective after add+remove = %d, want %d", got, before)
	}
}
