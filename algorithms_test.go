package mcfs_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"mcfs"
)

func TestParseAlgorithmRoundTrip(t *testing.T) {
	algos := mcfs.Algorithms()
	if len(algos) == 0 {
		t.Fatal("empty algorithm catalogue")
	}
	for _, a := range algos {
		got, err := mcfs.ParseAlgorithm(a.String())
		if err != nil {
			t.Fatalf("ParseAlgorithm(%q): %v", a, err)
		}
		if got != a {
			t.Fatalf("ParseAlgorithm(%q) = %q", a, got)
		}
		if !a.Valid() {
			t.Fatalf("%q not Valid", a)
		}
	}
}

func TestParseAlgorithmUnknown(t *testing.T) {
	for _, name := range []string{"", "gurobi", "WMA", "wma "} {
		a, err := mcfs.ParseAlgorithm(name)
		if err == nil {
			t.Fatalf("ParseAlgorithm(%q) accepted", name)
		}
		if a != "" {
			t.Fatalf("ParseAlgorithm(%q) returned %q alongside error", name, a)
		}
		// The error must name the catalogue so a CLI user can self-serve.
		if !strings.Contains(err.Error(), "wma") {
			t.Fatalf("error does not list known algorithms: %v", err)
		}
	}
	if mcfs.Algorithm("bogus").Valid() {
		t.Fatal("bogus algorithm reported Valid")
	}
}

func TestAlgorithmSolveUnknown(t *testing.T) {
	inst := buildInstance(t, 40)
	sol, note, err := mcfs.Algorithm("bogus").Solve(context.Background(), inst)
	if err == nil || sol != nil || note != "" {
		t.Fatalf("unknown algorithm: sol=%v note=%q err=%v", sol, note, err)
	}
}

func TestAlgorithmSolveMatchesWrappers(t *testing.T) {
	// The registry is the sole dispatch path: running through
	// Algorithm.Solve and through the named wrapper must be identical.
	inst := buildInstance(t, 41)
	want, err := mcfs.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	got, note, err := mcfs.AlgorithmWMA.Solve(context.Background(), inst)
	if err != nil {
		t.Fatal(err)
	}
	if note != "" {
		t.Fatalf("heuristic note = %q, want empty", note)
	}
	if got.Objective != want.Objective {
		t.Fatalf("registry objective %d != wrapper %d", got.Objective, want.Objective)
	}
}

func TestOptionValidation(t *testing.T) {
	inst := buildInstance(t, 42)
	cases := []struct {
		name string
		opts []mcfs.Option
		want string
	}{
		{"zero budget", []mcfs.Option{mcfs.WithTimeBudget(0)}, "WithTimeBudget"},
		{"negative budget", []mcfs.Option{mcfs.WithTimeBudget(-time.Second)}, "WithTimeBudget"},
		{"zero node limit", []mcfs.Option{mcfs.WithNodeLimit(0)}, "WithNodeLimit"},
		{"negative node limit", []mcfs.Option{mcfs.WithNodeLimit(-5)}, "WithNodeLimit"},
	}
	for _, tc := range cases {
		if _, err := mcfs.Solve(inst, tc.opts...); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s via Solve: err = %v, want mention of %s", tc.name, err, tc.want)
		}
		if _, err := mcfs.SolveExact(inst, tc.opts...); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s via SolveExact: err = %v, want mention of %s", tc.name, err, tc.want)
		}
	}
	// Multiple bad options: all are reported, not just the first.
	_, err := mcfs.Solve(inst, mcfs.WithTimeBudget(0), mcfs.WithNodeLimit(-1))
	if err == nil || !strings.Contains(err.Error(), "WithTimeBudget") || !strings.Contains(err.Error(), "WithNodeLimit") {
		t.Fatalf("joined validation error incomplete: %v", err)
	}
	// Valid options still pass through every entry point.
	if _, err := mcfs.Solve(inst, mcfs.WithTimeBudget(time.Minute)); err != nil {
		t.Fatalf("valid budget rejected: %v", err)
	}
}

func TestErrTooLargeSentinel(t *testing.T) {
	inst := buildInstance(t, 43) // C(120,12) subsets — far over any cap
	sol, err := mcfs.SolveExhaustive(inst, 10)
	if !errors.Is(err, mcfs.ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	if sol != nil {
		t.Fatal("oversize enumeration returned a solution")
	}
	// And through the registry entry.
	if _, _, err := mcfs.AlgorithmExhaustive.Solve(context.Background(), inst); !errors.Is(err, mcfs.ErrTooLarge) {
		t.Fatalf("registry err = %v, want ErrTooLarge", err)
	}
}

func TestPublicAPISnapshotRestore(t *testing.T) {
	inst := buildInstance(t, 44)
	r, err := mcfs.NewReallocator(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddCustomer(inst.Customers[0]); err != nil {
		t.Fatal(err)
	}
	want, err := r.Objective()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	read, err := mcfs.ReadReallocatorSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := mcfs.RestoreReallocator(inst, read, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Objective()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("restored objective %d != %d", got, want)
	}
	// The published view serves the same assignment.
	p, err := restored.Publish()
	if err != nil {
		t.Fatal(err)
	}
	if p.Objective != want || p.Customers() != restored.Customers() {
		t.Fatalf("published view objective=%d customers=%d, want %d/%d",
			p.Objective, p.Customers(), want, restored.Customers())
	}
	// Option validation reaches the restore path too.
	if _, err := mcfs.RestoreReallocator(inst, read, 0, mcfs.WithTimeBudget(-1)); err == nil {
		t.Fatal("invalid option accepted by RestoreReallocator")
	}
}
