package data

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadInstance checks that the parser never panics on arbitrary
// input and that everything it accepts round-trips losslessly.
func FuzzReadInstance(f *testing.F) {
	f.Add("mcfs 1\ngraph 2 1 0 0\n0 1 5\ncustomers 1\n0\nfacilities 1\n1 3\nk 1\n")
	f.Add("mcfs 1\ngraph 3 2 1 1\n0 0\n1 1\n2 2\n0 1 5\n1 2 7\ncustomers 0\nfacilities 0\nk 0\n")
	f.Add("# comment\nmcfs 1\ngraph 0 0 0 0\ncustomers 0\nfacilities 0\nk 0\n")
	f.Add("mcfs 2\n")
	f.Add("garbage")
	f.Add("mcfs 1\ngraph 1 0 0 0\ncustomers 1\n-9\nfacilities 0\nk 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		inst, err := ReadInstance(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted instances must be valid and survive a round trip.
		if verr := inst.Validate(); verr != nil {
			t.Fatalf("parser accepted invalid instance: %v", verr)
		}
		var buf bytes.Buffer
		if werr := WriteInstance(&buf, inst); werr != nil {
			t.Fatalf("rewrite failed: %v", werr)
		}
		again, rerr := ReadInstance(&buf)
		if rerr != nil {
			t.Fatalf("round trip failed: %v", rerr)
		}
		if again.M() != inst.M() || again.L() != inst.L() || again.K != inst.K ||
			again.G.N() != inst.G.N() || again.G.M() != inst.G.M() {
			t.Fatal("round trip changed the instance")
		}
	})
}
