#!/bin/sh
# Tier-1 verification gate: formatting, vet, and the full test suite
# under the race detector (the parallel bench harness depends on the
# audited immutability of shared instances — keep -race in the loop).
set -eu
cd "$(dirname "$0")/.."

fmt=$(gofmt -l -s .)
if [ -n "$fmt" ]; then
	echo "gofmt -s needed on:" >&2
	echo "$fmt" >&2
	exit 1
fi

go vet ./...
go build ./...

# Project static analysis (DESIGN.md §10): machine-checks the
# concurrency/cancellation/determinism invariants. Non-zero on any
# finding; the tool prints its own runtime in the summary line so a
# slow rule shows up in CI output.
go run ./cmd/mcfslint ./...

go test -race ./...

# Smoke-run every example in quick mode. They run in a scratch dir so
# the artifacts some of them write (SVG/GeoJSON) stay out of the tree.
exdir=$(mktemp -d)
trap 'rm -rf "$exdir"' EXIT
go build -o "$exdir" ./examples/...
for ex in examples/*/; do
	name=$(basename "$ex")
	echo "example: $name"
	(cd "$exdir" && MCFS_EXAMPLE_QUICK=1 "./$name" >/dev/null)
done

echo "ci: OK"
