package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// APIParity enforces the PR-2 API contract in the root package: an
// exported Solve*/Improve*/New* function that has a *Ctx sibling is a
// convenience wrapper and must contain no logic of its own — its body
// must be exactly `return FooCtx(context.Background(), ...)`. Anything
// else lets the two entry points drift apart (an option handled in one
// but not the other, a deadline layered twice), which is precisely the
// class of bug a wrapper pair invites.
//
// With type information the wrapper shape is verified semantically: the
// callee must resolve to the package-level *Ctx sibling (a local
// variable shadowing it no longer passes) and the first argument must
// resolve to the real context.Background (a local helper named
// `context.Background` behind a renamed import no longer does).
type APIParity struct{}

// Name implements Rule.
func (APIParity) Name() string { return "api-parity" }

// Doc implements Rule.
func (APIParity) Doc() string {
	return "exported Solve*/Improve*/New* with a *Ctx sibling must delegate to it with context.Background()"
}

// apiParityPrefixes are the entry-point families the rule covers.
var apiParityPrefixes = []string{"Solve", "Improve", "New"}

// Check implements Rule.
func (APIParity) Check(pkg *Package, report ReportFunc) {
	if pkg.Dir != "." {
		return
	}
	funcs := make(map[string]*ast.FuncDecl)
	fileOf := make(map[string]*File)
	for _, f := range pkg.Files {
		if f.Test {
			continue
		}
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil {
				continue
			}
			funcs[fd.Name.Name] = fd
			fileOf[fd.Name.Name] = f
		}
	}

	names := make([]string, 0, len(funcs))
	for name := range funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !ast.IsExported(name) || strings.HasSuffix(name, "Ctx") || !hasParityPrefix(name) {
			continue
		}
		if _, ok := funcs[name+"Ctx"]; !ok {
			continue
		}
		if !delegatesToCtx(pkg, funcs[name], name+"Ctx") {
			report(fileOf[name], funcs[name].Pos(),
				"%s has a %sCtx sibling but is not the single-statement wrapper `return %sCtx(context.Background(), ...)`",
				name, name, name)
		}
	}
}

// hasParityPrefix reports whether name belongs to a covered family.
func hasParityPrefix(name string) bool {
	for _, p := range apiParityPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// delegatesToCtx reports whether fd's body is exactly
// `return want(context.Background(), ...)`. With type information the
// callee must resolve to the package-level sibling and the first
// argument to the real context.Background; without it the check is by
// spelling.
func delegatesToCtx(pkg *Package, fd *ast.FuncDecl, want string) bool {
	if fd.Body == nil || len(fd.Body.List) != 1 {
		return false
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return false
	}
	call, ok := ret.Results[0].(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	fun, ok := call.Fun.(*ast.Ident)
	if !ok || fun.Name != want {
		return false
	}
	if pkg.Typed() {
		if obj := pkg.ObjectOf(fun); obj != nil {
			if f, ok := obj.(*types.Func); !ok || f.Pkg() != pkg.Types || f.Parent() != pkg.Types.Scope() {
				return false
			}
		}
	}
	bg, ok := call.Args[0].(*ast.CallExpr)
	if !ok || len(bg.Args) != 0 {
		return false
	}
	if pkg.Typed() {
		return pkg.isPkgFunc(bg, "context", "Background")
	}
	sel, ok := bg.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Background" {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	return ok && x.Name == "context"
}
