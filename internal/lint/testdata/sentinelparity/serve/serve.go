// Package serve is the fixture stand-in for the serving layer's error
// table: statusOf maps the public sentinel taxonomy onto HTTP.
package serve

import (
	"errors"

	"fix"
)

// ErrShutdown is a serve-internal sentinel; it participates in the
// duplicate check but not in the root parity check.
var ErrShutdown = errors.New("serve: shutting down")

func statusOf(err error) (int, string) {
	switch {
	case errors.Is(err, fix.ErrInfeasible):
		return 422, "infeasible"
	case errors.Is(err, fix.ErrTooLarge):
		return 413, "too_large"
	case errors.Is(err, fix.ErrTooLarge): // want "sentinel ErrTooLarge is mapped 2 times"
		return 400, "too_large_again"
	case errors.Is(err, ErrShutdown):
		return 503, "shutting_down"
	case errors.Is(err, ErrShutdown): // want "sentinel ErrShutdown is mapped 2 times"
		return 503, "shutting_down_again"
	default:
		return 400, "bad_request"
	}
}

// Status is the exported wrapper handlers use.
func Status(err error) (int, string) { return statusOf(err) }
