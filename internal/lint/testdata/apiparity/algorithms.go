package fixture

import (
	"mcfs/internal/baseline"
	"mcfs/internal/core"
)

// algorithms.go is the sanctioned registry file: binding internal
// solver implementations here is the point, not a finding.
func registryBindings() {
	baseline.HilbertCtx()
	core.SolveCtx()
	core.SolveUniformFirstCtx()
}
