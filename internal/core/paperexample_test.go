package core_test

import (
	"testing"

	"mcfs/internal/core"
	"mcfs/internal/data"
	"mcfs/internal/graph"
	"mcfs/internal/solver"
)

// TestPaperWorkedExample rebuilds the network behind the paper's §IV-B
// walkthrough (Table II adjacency list; k = 2, uniform capacity c = 2).
// The paper's WMA run ends with facilities b2 and b6 covering all four
// customers at objective 16. The distances of Table II are encoded as
// direct edges; node ids: a1..a4 = 0..3, b1..b6 = 4..9.
func TestPaperWorkedExample(t *testing.T) {
	const (
		a1, a2, a3, a4 = 0, 1, 2, 3
		b1, b2, b3     = 4, 5, 6
		b4, b5, b6     = 7, 8, 9
	)
	b := graph.NewBuilder(10, false)
	// Table II rows (customer: three nearest facilities with distances).
	b.AddEdge(a1, b4, 1).AddEdge(a1, b2, 4).AddEdge(a1, b5, 9)
	b.AddEdge(a2, b5, 1).AddEdge(a2, b6, 2).AddEdge(a2, b3, 9)
	b.AddEdge(a3, b1, 1).AddEdge(a3, b2, 4).AddEdge(a3, b4, 9)
	b.AddEdge(a4, b3, 1).AddEdge(a4, b2, 5).AddEdge(a4, b6, 6)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	inst := &data.Instance{
		G:         g,
		Customers: []int32{a1, a2, a3, a4},
		Facilities: []data.Facility{
			{Node: b1, Capacity: 2}, {Node: b2, Capacity: 2}, {Node: b3, Capacity: 2},
			{Node: b4, Capacity: 2}, {Node: b5, Capacity: 2}, {Node: b6, Capacity: 2},
		},
		K: 2,
	}

	opt, err := solver.Exhaustive(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.Solve(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.CheckSolution(sol); err != nil {
		t.Fatal(err)
	}
	// The paper's run reaches 16; WMA must do no worse, and never beat
	// the proven optimum.
	if sol.Objective > 16 {
		t.Fatalf("WMA objective %d, paper's walkthrough reaches 16", sol.Objective)
	}
	if sol.Objective < opt.Objective {
		t.Fatalf("WMA %d beats proven optimum %d", sol.Objective, opt.Objective)
	}
	t.Logf("WMA=%d optimal=%d selected=%v", sol.Objective, opt.Objective, sol.Selected)
}
