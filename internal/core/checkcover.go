package core

import "mcfs/internal/pq"

// Coverage is the view of a running customer↔facility assignment that
// the set-cover routine needs. *bipartite.Matcher implements it; the
// WMA-Naïve baseline provides its own greedy implementation.
type Coverage interface {
	// M is the number of customers, L the number of facilities.
	M() int
	L() int
	// AssignedCount returns |σ_j|: how many customers are currently
	// assigned to facility j (never exceeding its capacity).
	AssignedCount(j int) int
	// Assigned calls fn for every customer assigned to facility j.
	Assigned(j int, fn func(cust int))
	// Touched calls fn for every facility that has ever held an
	// assignment — the only candidates with possible nonzero gain.
	Touched(fn func(j int))
}

// CheckCover implements Algorithm 3: a lazy-greedy (CELF-style) maximum
// coverage pass that selects up to k facilities by marginal gain — the
// number of customers they are assigned that no earlier-selected
// facility covers. Ties break by least-recently-used iteration
// (lastUsed, the paper's diversification strategy) and then by facility
// index; TieArbitrary skips the LRU term (ablation).
//
// It returns the selection, the exploration vector Δd as a bool slice
// (true = customer uncovered, demand should grow), and whether the
// selection covers every customer. Selection stops early once full
// coverage is reached (enabling Algorithm 4) or when remaining gains are
// zero (the leftover budget is better spent by SelectGreedy).
func CheckCover(view Coverage, k int, lastUsed []int, tie TieBreak) (selection []int, deltaD []bool, covered bool) {
	m := view.M()
	type item struct {
		fac  int
		gain int
	}
	less := func(a, b item) bool {
		if a.gain != b.gain {
			return a.gain > b.gain
		}
		if tie == TieLRU && lastUsed[a.fac] != lastUsed[b.fac] {
			return lastUsed[a.fac] < lastUsed[b.fac]
		}
		return a.fac < b.fac
	}
	heap := pq.NewHeap(less)
	view.Touched(func(j int) {
		if g := view.AssignedCount(j); g > 0 {
			heap.Push(item{fac: j, gain: g})
		}
	})

	isCovered := make([]bool, m)
	remaining := m
	gainOf := func(j int) int {
		gain := 0
		view.Assigned(j, func(c int) {
			if !isCovered[c] {
				gain++
			}
		})
		return gain
	}
	for len(selection) < k && heap.Len() > 0 {
		top := heap.Pop()
		if g := gainOf(top.fac); g != top.gain {
			if g > 0 {
				heap.Push(item{fac: top.fac, gain: g})
			}
			continue
		}
		if top.gain == 0 {
			break
		}
		selection = append(selection, top.fac)
		view.Assigned(top.fac, func(c int) {
			if !isCovered[c] {
				isCovered[c] = true
				remaining--
			}
		})
		if remaining == 0 {
			break
		}
	}

	deltaD = make([]bool, m)
	for i := range deltaD {
		deltaD[i] = !isCovered[i]
	}
	return selection, deltaD, remaining == 0
}
