package core

import (
	"errors"

	"mcfs/internal/data"
)

// SolveUniformFirst implements the paper's Uniform First (UF) strategy
// for nonuniform instances (§VII-F): first select facilities as if every
// capacity equaled the (ceiling of the) average capacity — which may
// expose better locations unbiased by capacity skew — then rebuild the
// assignment against the true nonuniform capacities in a single optimal
// bipartite matching step, repairing the selection per component if the
// true capacities fall short. Falls back to the Direct strategy when the
// uniformized instance is infeasible.
func SolveUniformFirst(inst *data.Instance, opt Options) (*data.Solution, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if ok, _ := inst.Feasible(); !ok {
		return nil, data.ErrInfeasible
	}
	if inst.L() == 0 || inst.M() == 0 {
		return Solve(inst, opt)
	}
	avg := (inst.TotalCapacity() + inst.L() - 1) / inst.L()
	uniform := &data.Instance{
		G:          inst.G,
		Customers:  inst.Customers,
		Facilities: make([]data.Facility, inst.L()),
		K:          inst.K,
	}
	for j, f := range inst.Facilities {
		uniform.Facilities[j] = data.Facility{Node: f.Node, Capacity: avg}
	}
	if ok, _ := uniform.Feasible(); !ok {
		return Solve(inst, opt)
	}
	uniSol, err := Solve(uniform, opt)
	if err != nil {
		if errors.Is(err, data.ErrInfeasible) {
			return Solve(inst, opt)
		}
		return nil, err
	}
	// Re-validate the selection against the true capacities, repairing
	// component shortfalls before the final matching.
	selection, err := CoverComponents(inst, append([]int(nil), uniSol.Selected...))
	if err != nil {
		return Solve(inst, opt)
	}
	sol, err := AssignToSelection(inst, selection, opt)
	if err != nil {
		if errors.Is(err, data.ErrInfeasible) {
			return Solve(inst, opt)
		}
		return nil, err
	}
	return sol, nil
}
