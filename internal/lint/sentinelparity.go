package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// SentinelParity keeps the public error taxonomy and the serving
// layer's HTTP mapping in lock-step: every exported Err* sentinel of
// the root package must appear exactly once in serve's error table
// (statusOf), and no sentinel — root or internal — may be mapped
// twice (a duplicate arm is dead code that silently shadows the
// intended status). Adding a sentinel to the API without teaching the
// server what to return for it is exactly the kind of cross-package
// drift a per-package rule cannot see, so this is a module rule: it
// stays silent unless the run includes both the root package and
// internal/serve with type information.
type SentinelParity struct{}

// Name implements Rule.
func (SentinelParity) Name() string { return "sentinel-http-parity" }

// Doc implements Rule.
func (SentinelParity) Doc() string {
	return "every exported root Err* sentinel maps exactly once in serve's statusOf error table"
}

// Check implements Rule for direct single-package use; the rule needs
// two packages, so a single-package run is always silent.
func (r SentinelParity) Check(pkg *Package, report ReportFunc) {
	r.CheckModule(newModule([]*Package{pkg}), report)
}

// CheckModule implements ModuleRule.
func (SentinelParity) CheckModule(m *Module, report ReportFunc) {
	root := m.PackageByDir(".")
	serve := m.PackageByDir("internal/serve")
	if root == nil || serve == nil || !root.Typed() || !serve.Typed() {
		return
	}

	// The error table: serve's statusOf function.
	scope := serve.Types.Scope()
	tableObj := scope.Lookup("statusOf")
	decls := serve.funcDecls()
	var table *declSite
	if tableObj != nil {
		table = decls[tableObj]
	}
	if table == nil {
		return
	}

	// Count every sentinel reference inside the table, keyed by the
	// defining package path and name (object identity is shared across
	// packages by the loader, but keying by path+name keeps the rule
	// robust to re-typechecks).
	type sentinelKey struct{ path, name string }
	refs := make(map[sentinelKey]int)
	refPos := make(map[sentinelKey]ast.Expr)
	ast.Inspect(table.decl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := serve.ObjectOf(id).(*types.Var)
		if !ok || obj.Pkg() == nil || !strings.HasPrefix(obj.Name(), "Err") {
			return true
		}
		k := sentinelKey{obj.Pkg().Path(), obj.Name()}
		refs[k]++
		refPos[k] = id // last occurrence: duplicates report on the dead arm
		return true
	})

	// Root-package sentinels: exported package-level Err* variables.
	rootScope := root.Types.Scope()
	names := rootScope.Names()
	sort.Strings(names)
	for _, name := range names {
		obj, ok := rootScope.Lookup(name).(*types.Var)
		if !ok || !obj.Exported() || !strings.HasPrefix(name, "Err") {
			continue
		}
		k := sentinelKey{root.Types.Path(), name}
		switch n := refs[k]; {
		case n == 0:
			if f := root.fileAt(obj.Pos()); f != nil {
				report(f, obj.Pos(),
					"exported sentinel %s has no mapping in serve's error table (statusOf); clients would see the default status for it", name)
			}
		case n > 1:
			report(table.file, refPos[k].Pos(),
				"sentinel %s is mapped %d times in serve's error table; the later arms are dead", name, n)
		}
		delete(refs, k)
	}

	// Vice versa: any other sentinel the table references must appear
	// exactly once too — a duplicated internal sentinel arm is equally
	// dead code.
	var dup []sentinelKey
	for k, n := range refs {
		if n > 1 {
			dup = append(dup, k)
		}
	}
	sort.Slice(dup, func(i, j int) bool {
		if dup[i].path != dup[j].path {
			return dup[i].path < dup[j].path
		}
		return dup[i].name < dup[j].name
	})
	for _, k := range dup {
		report(table.file, refPos[k].Pos(),
			"sentinel %s is mapped %d times in serve's error table; the later arms are dead", k.name, refs[k])
	}
}
