// Package data is the fixture stand-in for the module's instance layer.
package data

import "fix/graph"

// Facility is a value-typed slice element of Instance.
type Facility struct {
	Node     int64
	Capacity int
}

// Instance mirrors the real instance: a pointer to the graph plus
// slice-backed customer and facility sets.
type Instance struct {
	G          *graph.Graph
	Customers  []int64
	Facilities []Facility
	K          int
}

// Clone returns a deep copy; the rule treats its result as owned.
func (in *Instance) Clone() *Instance {
	return &Instance{
		G:          in.G.Clone(),
		Customers:  append([]int64(nil), in.Customers...),
		Facilities: append([]Facility(nil), in.Facilities...),
		K:          in.K,
	}
}

// Fresh provably allocates on every return path: importers may treat
// its result as owned even inside a pool cell.
func Fresh(k int) *Instance {
	return &Instance{K: k, Customers: make([]int64, 4)}
}

// Touch writes through its parameter.
func Touch(in *Instance) {
	in.K++
}
