package dynamic

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"mcfs/internal/data"
)

// SnapshotVersion identifies the snapshot JSON layout; ReadSnapshot
// refuses newer versions.
const SnapshotVersion = 1

// Snapshot is a restartable capture of a Reallocator's dynamic state:
// the live customer population with its handles, the open selection,
// and the drift baseline. The static instance material (network,
// candidate catalogue, budget) is deliberately not embedded — a restore
// is performed against the same instance the process loads anyway, and
// the fingerprint fields guard against pairing a snapshot with the
// wrong one. RestoreCtx rebuilds the optimal matching from the captured
// selection, so the restored objective is exactly the minimum-cost
// assignment the snapshotted process was serving.
type Snapshot struct {
	Version int `json:"version"`

	// Instance fingerprint, checked by RestoreCtx.
	Nodes         int `json:"nodes"`
	Edges         int `json:"edges"`
	FacilityCount int `json:"facility_count"`
	K             int `json:"k"`

	// Dynamic state. Handles[i] is the live handle of the customer at
	// CustomerNodes[i], in the Reallocator's deterministic order.
	NextID        int     `json:"next_id"`
	BaseObjective int64   `json:"base_objective"`
	Selected      []int   `json:"selected"`
	Handles       []int   `json:"handles"`
	CustomerNodes []int32 `json:"customer_nodes"`
	Stats         Stats   `json:"stats"`
}

// Snapshot captures the current state. Pending departures are applied
// first so the capture is canonical; the error is that flush's.
func (r *Reallocator) Snapshot() (*Snapshot, error) {
	if err := r.flush(); err != nil {
		return nil, err
	}
	s := &Snapshot{
		Version:       SnapshotVersion,
		Nodes:         r.g.N(),
		Edges:         r.g.M(),
		FacilityCount: len(r.facilities),
		K:             r.k,
		NextID:        r.nextID,
		BaseObjective: r.baseObjective,
		Selected:      append([]int(nil), r.selected...),
		Handles:       append([]int(nil), r.order...),
		CustomerNodes: make([]int32, len(r.order)),
		Stats:         r.stats,
	}
	for i, h := range r.order {
		s.CustomerNodes[i] = r.customers[h]
	}
	return s, nil
}

// Write serializes the snapshot as indented JSON.
func (s *Snapshot) Write(w io.Writer) error {
	buf, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(buf, '\n'))
	return err
}

// ReadSnapshot parses and structurally validates a snapshot document.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("dynamic: bad snapshot: %w", err)
	}
	if s.Version != SnapshotVersion {
		return nil, fmt.Errorf("dynamic: snapshot version %d, want %d", s.Version, SnapshotVersion)
	}
	if len(s.Handles) != len(s.CustomerNodes) {
		return nil, fmt.Errorf("dynamic: snapshot has %d handles for %d customers",
			len(s.Handles), len(s.CustomerNodes))
	}
	return &s, nil
}

// checkAgainst validates the snapshot against the instance it is being
// restored onto: fingerprint fields and index ranges. A fingerprint
// mismatch names every disagreeing field with both sides — the snapshot
// value and the instance value — so the operator can tell a truncated
// network from a re-sampled facility catalogue from a changed budget at
// a glance.
func (s *Snapshot) checkAgainst(inst *data.Instance) error {
	var diffs []string
	for _, f := range []struct {
		name     string
		snapshot int
		instance int
	}{
		{"nodes", s.Nodes, inst.G.N()},
		{"edges", s.Edges, inst.G.M()},
		{"facilities", s.FacilityCount, inst.L()},
		{"k", s.K, inst.K},
	} {
		if f.snapshot != f.instance {
			diffs = append(diffs, fmt.Sprintf("%s: snapshot %d vs instance %d", f.name, f.snapshot, f.instance))
		}
	}
	if len(diffs) > 0 {
		return fmt.Errorf("dynamic: snapshot fingerprint mismatch: %s", strings.Join(diffs, "; "))
	}
	seen := make(map[int]bool, len(s.Handles))
	for i, h := range s.Handles {
		if h < 0 || h >= s.NextID {
			return fmt.Errorf("dynamic: snapshot handle %d outside [0,%d)", h, s.NextID)
		}
		if seen[h] {
			return fmt.Errorf("dynamic: duplicate snapshot handle %d", h)
		}
		seen[h] = true
		if node := s.CustomerNodes[i]; node < 0 || int(node) >= inst.G.N() {
			return fmt.Errorf("dynamic: snapshot customer %d at invalid node %d", h, node)
		}
	}
	return nil
}

// Restore is RestoreCtx with context.Background(); see NewCtx for the
// context contract.
func Restore(inst *data.Instance, s *Snapshot, opt Options) (*Reallocator, error) {
	return RestoreCtx(context.Background(), inst, s, opt)
}

// RestoreCtx reconstructs a Reallocator from a snapshot taken against
// an identical instance: the captured population keeps its handles, the
// captured selection is reinstalled, and the optimal matching is
// rebuilt — reproducing the snapshotted objective exactly (the
// minimum-cost assignment to a fixed selection is unique in value). The
// work counters resume from the captured Stats.
func RestoreCtx(ctx context.Context, inst *data.Instance, s *Snapshot, opt Options) (*Reallocator, error) {
	if err := s.checkAgainst(inst); err != nil {
		return nil, err
	}
	r, err := skeleton(ctx, inst, opt)
	if err != nil {
		return nil, err
	}
	r.nextID = s.NextID
	for i, h := range s.Handles {
		r.customers[h] = s.CustomerNodes[i]
		r.order = append(r.order, h)
	}
	if err := r.adopt(s.Selected); err != nil {
		return nil, err
	}
	r.baseObjective = s.BaseObjective
	r.stats = s.Stats
	return r, nil
}
