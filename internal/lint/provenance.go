package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the rule-facing layer of the v3 engine: a flow-sensitive
// provenance analysis over the CFG (cfg.go) solved by the generic
// worklist (dataflow.go). Two rules instantiate it — shared-instance-
// mutation and published-immutability — by plugging in what "shared"
// means for them (capture semantics, call classification) and what to
// say when a write through shared memory is found. The projection
// rules (a reference-typed field of a shared value is shared, a value
// copy owns its fields but not its backing arrays) and the write
// checks themselves are common and live here.

// provState is the dataflow state: the provenance of each variable at
// a program point. Objects absent from the map are provUnknown.
type provState map[types.Object]provenance

func cloneProv(s provState) provState {
	out := make(provState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// mergeProv joins src into dst (per-variable maximum — the lattice
// order of provenance) and reports whether dst changed.
func mergeProv(dst, src provState) bool {
	changed := false
	for k, v := range src {
		if v > dst[k] {
			dst[k] = v
			changed = true
		}
	}
	return changed
}

// writeKind distinguishes the store shapes the write check recognizes,
// so each rule can word its finding per shape.
type writeKind int

const (
	wkField writeKind = iota // x.F = v       (needs a shared base)
	wkElem                   // x[i] = v      (fires on shared or backing)
	wkPtr                    // *p = v        (needs a shared pointer)
	wkCopy                   // copy(dst, _)  (fires on shared or backing)
)

// provFlow runs the analysis over one function body. The function
// fields are the rule's half of the contract; nil hooks default to
// provUnknown / no-op.
type provFlow struct {
	pkg  *Package
	defs map[types.Object]bool // objects defined inside the analyzed body

	// identProv classifies an identifier the state knows nothing about
	// (typically: is this a capture of something shared?).
	identProv func(s provState, obj types.Object) provenance
	// selectorProv classifies a selector whose base is unknown (a field
	// of a captured struct, for example).
	selectorProv func(s provState, e *ast.SelectorExpr) provenance
	// callProv classifies a call result.
	callProv func(s provState, call *ast.CallExpr) provenance
	// onWrite fires when a store's destination is rooted in shared (or,
	// for element writes and copy, backing-shared) memory.
	onWrite func(kind writeKind, e ast.Expr, pos token.Pos)
	// onCall fires for every call expression, with the state at the
	// call; rules use it to follow callees or consult summaries.
	onCall func(s provState, call *ast.CallExpr)
	// onFuncLit fires for a nested function literal with a snapshot of
	// the state at its occurrence; the rule decides how to descend.
	onFuncLit func(lit *ast.FuncLit, seed provState)
}

// analyze solves the fixpoint over body starting from seed and then
// replays each block's in-state through its statements, checking
// writes and calls against the state at that exact point.
func (pf *provFlow) analyze(body *ast.BlockStmt, seed provState) {
	g := buildCFG(body)
	d := dataflow[provState]{
		seed:  func() provState { return cloneProv(seed) },
		clone: cloneProv,
		merge: mergeProv,
		step:  func(n ast.Node, s provState) { pf.step(n, s) },
	}
	in := d.fixpoint(g)
	for _, b := range g.blocks {
		s, ok := in[b]
		if !ok {
			s = seed // unreachable code: still scanned, entry facts only
		}
		s = cloneProv(s)
		for _, n := range b.nodes {
			pf.scan(n, s)
			pf.step(n, s)
		}
	}
}

// step applies one statement's transfer effect. Assignments to a plain
// identifier are strong updates — the flow-sensitive heart of the
// engine: `inst = inst.Clone()` really does make inst owned from here
// on, where the old syntactic sweep kept it shared forever.
func (pf *provFlow) step(n ast.Node, s provState) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		pf.transferAssign(n, s)
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				switch {
				case i < len(vs.Values):
					pf.set(s, name, pf.provOf(s, vs.Values[i]))
				case len(vs.Values) == 1 && i > 0:
					pf.set(s, name, provUnknown) // tuple tail
				default:
					pf.set(s, name, provUnknown) // zero value
				}
			}
		}
	case *ast.RangeStmt:
		base := pf.provOf(s, n.X)
		if id, ok := n.Key.(*ast.Ident); ok && n.Key != nil {
			pf.set(s, id, pf.projectTo(base, pf.pkg.TypeOf(id)))
		}
		if id, ok := n.Value.(*ast.Ident); ok && n.Value != nil {
			pf.set(s, id, pf.projectTo(base, pf.pkg.TypeOf(id)))
		}
	}
}

// transferAssign handles = and :=; compound assignments (+= and
// friends) never rebind, so they carry no provenance effect.
func (pf *provFlow) transferAssign(as *ast.AssignStmt, s provState) {
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		return
	}
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// Multi-value call or type assertion: the first value carries
		// the tracked position throughout the module.
		pf.set(s, as.Lhs[0], pf.provOf(s, as.Rhs[0]))
		for _, lhs := range as.Lhs[1:] {
			pf.set(s, lhs, provUnknown)
		}
		return
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	// Evaluate every right side against the pre-state first so swaps
	// (a, b = b, a) transfer correctly.
	provs := make([]provenance, len(as.Rhs))
	for i := range as.Rhs {
		provs[i] = pf.provOf(s, as.Rhs[i])
	}
	for i := range as.Lhs {
		pf.set(s, as.Lhs[i], provs[i])
	}
}

// set strongly updates a plain-identifier destination; any other
// destination shape is a write into memory, not a rebinding, and
// leaves the state untouched (the scan pass judges those).
func (pf *provFlow) set(s provState, lhs ast.Expr, p provenance) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := pf.pkg.ObjectOf(id)
	if obj == nil {
		return
	}
	if p == provUnknown {
		delete(s, obj)
		return
	}
	s[obj] = p
}

// projectTo applies the projection rules to a base provenance given
// the projected value's type.
func (pf *provFlow) projectTo(base provenance, t types.Type) provenance {
	switch base {
	case provShared, provBacking:
		if isReferenceType(t) {
			return provShared
		}
		return provBacking
	case provOwned:
		return provOwned
	}
	return provUnknown
}

// provOf classifies an expression against the current state.
func (pf *provFlow) provOf(s provState, e ast.Expr) provenance {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pf.pkg.ObjectOf(e)
		if obj == nil {
			return provUnknown
		}
		if p, ok := s[obj]; ok && p != provUnknown {
			return p
		}
		if pf.identProv != nil {
			return pf.identProv(s, obj)
		}
		return provUnknown
	case *ast.SelectorExpr:
		base := pf.provOf(s, e.X)
		if base == provUnknown {
			if pf.selectorProv != nil {
				return pf.selectorProv(s, e)
			}
			return provUnknown
		}
		return pf.projectTo(base, pf.pkg.TypeOf(e))
	case *ast.IndexExpr:
		return pf.projectTo(pf.provOf(s, e.X), pf.pkg.TypeOf(e))
	case *ast.SliceExpr:
		return pf.provOf(s, e.X) // a reslice shares the backing array
	case *ast.StarExpr:
		if p := pf.provOf(s, e.X); p == provShared {
			return provBacking // value copy of the shared object
		} else if p != provUnknown {
			return p
		}
		return provUnknown
	case *ast.UnaryExpr:
		return pf.provOf(s, e.X) // &x shares x's classification
	case *ast.CompositeLit:
		return provOwned
	case *ast.CallExpr:
		if pf.callProv != nil {
			return pf.callProv(s, e)
		}
		return provUnknown
	case *ast.TypeAssertExpr:
		return pf.provOf(s, e.X)
	}
	return provUnknown
}

// scan checks one statement's writes and calls against the state at
// its program point. Nested function literals are handed to the rule
// (with a state snapshot) instead of being walked inline — their body
// runs at some other time, under its own control flow.
func (pf *provFlow) scan(n ast.Node, s provState) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			if pf.onFuncLit != nil {
				pf.onFuncLit(x, cloneProv(s))
			}
			return false
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				pf.checkWrite(s, lhs, x.Pos())
			}
		case *ast.IncDecStmt:
			pf.checkWrite(s, x.X, x.Pos())
		case *ast.CallExpr:
			if isBuiltinCopy(pf.pkg, x) && len(x.Args) > 0 {
				if p := pf.provOf(s, x.Args[0]); p == provShared || p == provBacking {
					pf.emit(wkCopy, x, x.Pos())
				}
			}
			if pf.onCall != nil {
				pf.onCall(s, x)
			}
		}
		return true
	})
}

// checkWrite applies the shared trigger rules: field and pointer
// stores need a shared base (a value copy owns its fields), element
// stores fire even on a backing copy (the arrays are still shared).
func (pf *provFlow) checkWrite(s provState, lhs ast.Expr, pos token.Pos) {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if pf.provOf(s, e.X) == provShared {
			pf.emit(wkField, e, pos)
		}
	case *ast.IndexExpr:
		if p := pf.provOf(s, e.X); p == provShared || p == provBacking {
			pf.emit(wkElem, e, pos)
		}
	case *ast.StarExpr:
		if pf.provOf(s, e.X) == provShared {
			pf.emit(wkPtr, e, pos)
		}
	}
}

func (pf *provFlow) emit(kind writeKind, e ast.Expr, pos token.Pos) {
	if pf.onWrite != nil {
		pf.onWrite(kind, e, pos)
	}
}

// isBuiltinCopy reports whether call invokes the copy builtin (and not
// some local function that happens to be named copy).
func isBuiltinCopy(pkg *Package, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "copy" {
		return false
	}
	obj := pkg.ObjectOf(id)
	return obj == nil || obj.Pkg() == nil
}

// collectDefs gathers every object defined inside the function —
// parameters, := bindings, var declarations, range variables, nested
// literal parameters — so capture hooks can tell "defined here" from
// "captured from outside".
func collectDefs(pkg *Package, ft *ast.FuncType, body *ast.BlockStmt) map[types.Object]bool {
	defs := make(map[types.Object]bool)
	add := func(id *ast.Ident) {
		if obj := pkg.ObjectOf(id); obj != nil {
			defs[obj] = true
		}
	}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				add(name)
			}
		}
	}
	addFields(ft.Params)
	addFields(ft.Results)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						add(id)
					}
				}
			}
		case *ast.ValueSpec:
			for _, name := range n.Names {
				add(name)
			}
		case *ast.RangeStmt:
			if n.Tok == token.DEFINE {
				if id, ok := n.Key.(*ast.Ident); ok {
					add(id)
				}
				if id, ok := n.Value.(*ast.Ident); ok {
					add(id)
				}
			}
		case *ast.FuncLit:
			addFields(n.Type.Params)
			addFields(n.Type.Results)
		}
		return true
	})
	return defs
}
