package graph

import (
	"sync/atomic"

	"mcfs/internal/pq"
)

// QueueMode selects the frontier priority queue the graph searches use.
// The default, QueueAuto, applies a per-graph heuristic; the explicit
// modes exist so benchmarks and the determinism cross-checks can force
// either implementation. All modes produce byte-identical search
// results — the pq package pins equal-key pop order across its
// implementations (see pq.Monotone).
type QueueMode int32

const (
	// QueueAuto picks a Dial bucket queue when the graph's weight range
	// makes the wheel affordable, and a binary heap otherwise.
	QueueAuto QueueMode = iota
	// QueueHeap forces the binary heaps (DenseHeap / SparseHeap).
	QueueHeap
	// QueueBucket forces the Dial bucket queue regardless of weight
	// range (wide ranges fall back to its overflow path).
	QueueBucket
)

// queueMode is the process-wide override; atomic so benchmarks can flip
// it while tests run in parallel elsewhere.
var queueMode atomic.Int32

// SetQueueMode installs a process-wide frontier-queue override and
// returns the previous mode. Intended for benchmarks (cmd/mcfsperf
// -queue) and cross-implementation tests; production callers leave the
// default QueueAuto.
func SetQueueMode(m QueueMode) QueueMode {
	return QueueMode(queueMode.Swap(int32(m)))
}

// CurrentQueueMode reports the active override.
func CurrentQueueMode() QueueMode { return QueueMode(queueMode.Load()) }

// maxWheel caps the Dial wheel size: beyond ~1M buckets the wheel's
// memory and cache footprint outweighs the log factor it saves.
const maxWheel = 1 << 20

// bucketOK is the queue-selection heuristic: a bucket wheel needs
// maxW+1 buckets, which is worth it only while that stays within a
// small multiple of the node count (the wheel must not dominate the
// search's own O(N) state) and below an absolute cap.
func (g *Graph) bucketOK() bool {
	if g.maxW <= 0 {
		return false
	}
	nb := g.maxW + 1
	return nb <= int64(4*g.N())+1024 && nb <= maxWheel
}

// newDenseQueue returns the frontier queue for whole-graph searches
// (dense distance arrays): a Dial bucket queue when the heuristic or
// override selects it, else a DenseHeap over [0, N).
func (g *Graph) newDenseQueue() pq.Monotone {
	switch CurrentQueueMode() {
	case QueueHeap:
		return pq.NewDense(g.N())
	case QueueBucket:
		return pq.NewBucket(g.maxW)
	}
	if g.bucketOK() {
		return pq.NewBucket(g.maxW)
	}
	return pq.NewDense(g.N())
}

// newSparseQueue returns the frontier queue for localized searches
// (sparse distance maps): the bucket queue needs no per-id state so the
// same heuristic applies, with SparseHeap as the fallback.
func (g *Graph) newSparseQueue() pq.Monotone {
	switch CurrentQueueMode() {
	case QueueHeap:
		return pq.NewSparse()
	case QueueBucket:
		return pq.NewBucket(g.maxW)
	}
	if g.bucketOK() {
		return pq.NewBucket(g.maxW)
	}
	return pq.NewSparse()
}

// newIncrementalQueue returns the frontier queue for incremental
// searches that advance a few pops at a time and may stop early
// (NNSearcher). The bucket queue loses there even when bucketOK holds:
// wheel setup and empty-bucket scanning cost O(maxW) per searcher
// regardless of how few nodes it settles, and a matcher creates one
// searcher per customer — so QueueAuto stays on the sparse heap and the
// bucket applies only when forced (the cross-implementation tests rely
// on QueueBucket still reaching this path).
func (g *Graph) newIncrementalQueue() pq.Monotone {
	if CurrentQueueMode() == QueueBucket {
		return pq.NewBucket(g.maxW)
	}
	return pq.NewSparse()
}
