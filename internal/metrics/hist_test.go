package metrics

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestHistogramExactSmall(t *testing.T) {
	var h Histogram
	for i := 0; i < 8; i++ {
		h.Observe(time.Duration(i))
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	if h.Max() != 7 {
		t.Fatalf("max = %d, want 7", h.Max())
	}
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("q0 = %d, want 0", got)
	}
	if got := h.Quantile(1); got != 7 {
		t.Fatalf("q1 = %d, want 7", got)
	}
}

func TestHistogramBucketRoundTrip(t *testing.T) {
	// Every bucket's lower bound must map back to that bucket, and
	// bucket indexes must be monotone in the observed value.
	for i := 0; i < histBuckets; i++ {
		if got := bucketOf(lowerBound(i)); got != i {
			t.Fatalf("bucketOf(lowerBound(%d)) = %d", i, got)
		}
	}
	prev := -1
	for ns := int64(0); ns < 1<<20; ns += 137 {
		b := bucketOf(ns)
		if b < prev {
			t.Fatalf("bucketOf not monotone at %d: %d < %d", ns, b, prev)
		}
		prev = b
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	var raw []int64
	for i := 0; i < 20000; i++ {
		// Latency-shaped: mostly microseconds, a long tail to ~100ms.
		ns := int64(1000 + rng.ExpFloat64()*float64(50*time.Microsecond))
		if rng.Intn(100) == 0 {
			ns += int64(rng.Intn(int(100 * time.Millisecond)))
		}
		raw = append(raw, ns)
		h.Observe(time.Duration(ns))
	}
	sort.Slice(raw, func(i, j int) bool { return raw[i] < raw[j] })
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := raw[int(q*float64(len(raw)))-1]
		got := int64(h.Quantile(q))
		// The log-linear buckets bound the error at one sub-bucket width
		// (~12.5%); allow a little slack for the rank rounding.
		if got < exact-exact/4 || got > exact+exact/4+1 {
			t.Fatalf("q%.2f = %d, exact %d (off by more than 25%%)", q, got, exact)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, whole Histogram
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		d := time.Duration(rng.Int63n(int64(time.Millisecond)))
		whole.Observe(d)
		if i%2 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() || a.Max() != whole.Max() || a.Mean() != whole.Mean() {
		t.Fatalf("merge mismatch: count %d/%d max %v/%v mean %v/%v",
			a.Count(), whole.Count(), a.Max(), whole.Max(), a.Mean(), whole.Mean())
	}
	for _, q := range []float64{0.5, 0.99} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("merged q%.2f = %v, want %v", q, a.Quantile(q), whole.Quantile(q))
		}
	}
}

func TestHistogramClampAndEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Observe(-time.Second) // clamps to zero
	h.Observe(48 * time.Hour)
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Quantile(1) <= 0 {
		t.Fatal("clamped huge observation lost")
	}
}

// Property test over random observation sets: the cumulative Buckets
// export must be internally consistent (strictly increasing bounds,
// nondecreasing cumulative counts ending at Count, bounds that
// round-trip through bucketOf) and every observation must be accounted
// for at or below a bound that bucketOf agrees with.
func TestHistogramBucketsExportProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		var h Histogram
		n := 1 + rng.Intn(2000)
		for i := 0; i < n; i++ {
			// Mix exact-range tiny values, latency-shaped values, and
			// occasional clamp-range monsters.
			var ns int64
			switch rng.Intn(10) {
			case 0:
				ns = int64(rng.Intn(histSub))
			case 1:
				ns = int64(rng.Int63())
			default:
				ns = rng.Int63n(int64(time.Second))
			}
			h.Observe(time.Duration(ns))
		}
		bs := h.Buckets()
		if len(bs) == 0 {
			t.Fatalf("trial %d: non-empty histogram exported no buckets", trial)
		}
		var prevBound, prevCum int64 = -1, 0
		for _, b := range bs {
			if b.UpperNS <= prevBound {
				t.Fatalf("trial %d: bounds not increasing: %d after %d", trial, b.UpperNS, prevBound)
			}
			if b.Cumulative <= prevCum {
				t.Fatalf("trial %d: cumulative not increasing: %d after %d", trial, b.Cumulative, prevCum)
			}
			// An inclusive upper bound is the last value of its bucket:
			// the next nanosecond starts the next one.
			if got, want := bucketOf(b.UpperNS), bucketOf(b.UpperNS+1)-1; b.UpperNS+1 < lowerBound(histBuckets-1) && got != want {
				t.Fatalf("trial %d: bound %d not at a bucket edge (bucketOf %d vs %d+1)", trial, b.UpperNS, got, want)
			}
			prevBound, prevCum = b.UpperNS, b.Cumulative
		}
		if prevCum != h.Count() {
			t.Fatalf("trial %d: final cumulative %d != count %d", trial, prevCum, h.Count())
		}
	}
	var empty Histogram
	if got := empty.Buckets(); got != nil {
		t.Fatalf("empty histogram exported %v", got)
	}
}

func TestHistogramSum(t *testing.T) {
	var h Histogram
	var want int64
	for _, d := range []time.Duration{time.Microsecond, 3 * time.Millisecond, 0, 17} {
		h.Observe(d)
		want += int64(d)
	}
	if h.Sum() != want {
		t.Fatalf("sum = %d, want %d", h.Sum(), want)
	}
}

// Property test: bucketOf/lowerBound round-trip on every bucket start
// (the exact contract /metrics rendering relies on) and Quantile never
// exceeds Max for arbitrary observation mixes and quantiles.
func TestHistogramQuantileMaxProperty(t *testing.T) {
	for i := 0; i < histBuckets; i++ {
		if got := bucketOf(lowerBound(i)); got != i {
			t.Fatalf("bucketOf(lowerBound(%d)) = %d", i, got)
		}
	}
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		var h Histogram
		n := 1 + rng.Intn(500)
		for i := 0; i < n; i++ {
			h.Observe(time.Duration(rng.Int63n(int64(10 * time.Second))))
		}
		for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 0.999, 1, rng.Float64()} {
			if got := h.Quantile(q); got > h.Max() {
				t.Fatalf("trial %d: q%.3f = %v exceeds max %v", trial, q, got, h.Max())
			}
		}
	}
}

// A high quantile's bucket upper bound must never read above the exact
// tracked maximum (p99 > max in a latency report is nonsense).
func TestHistogramQuantileNotAboveMax(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	h.Observe(8685 * time.Microsecond) // lands mid-bucket
	for _, q := range []float64{0.5, 0.99, 1} {
		if got := h.Quantile(q); got > h.Max() {
			t.Fatalf("q%.2f = %v exceeds max %v", q, got, h.Max())
		}
	}
}
