package graph

import (
	"math/rand"
	"sync"
	"testing"
)

// TestNNSearcherConcurrentConstruction drives many searchers in parallel
// over one shared isCand slice — the access pattern of parallel bench
// cells (and the bipartite matcher) sharing a candidate mask. Run under
// -race; also cross-checks every drained order against Dijkstra.
func TestNNSearcherConcurrentConstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 300
	g := randomGraph(rng, n, 2*n, 25)
	isCand := make([]bool, n)
	for v := 0; v < n; v += 3 {
		isCand[v] = true
	}

	type drained struct {
		src   int32
		nodes []int32
		dists []int64
	}
	const searchers = 16
	results := make([]drained, searchers)
	var wg sync.WaitGroup
	for i := 0; i < searchers; i++ {
		i := i
		src := int32(rng.Intn(n))
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := NewNNSearcher(g, src, isCand)
			res := drained{src: src}
			for {
				v, d, ok := s.Next()
				if !ok {
					break
				}
				res.nodes = append(res.nodes, v)
				res.dists = append(res.dists, d)
			}
			results[i] = res
		}()
	}
	wg.Wait()

	for _, res := range results {
		want := g.Dijkstra(res.src)
		last := int64(-1)
		for j, v := range res.nodes {
			if !isCand[v] {
				t.Fatalf("src %d yielded non-candidate %d", res.src, v)
			}
			if res.dists[j] != want[v] {
				t.Fatalf("src %d: dist(%d) = %d, want %d", res.src, v, res.dists[j], want[v])
			}
			if res.dists[j] < last {
				t.Fatalf("src %d: distances not nondecreasing", res.src)
			}
			last = res.dists[j]
		}
	}
}

// TestALTCloneConcurrent answers queries from cloned oracles in parallel
// and checks them against serial Dijkstra truth. The clones share the
// preprocessed landmark tables of one parent; run under -race.
func TestALTCloneConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 250
	g := randomGraph(rng, n, 2*n, 30)
	parent, err := NewALT(g, 5, 3)
	if err != nil {
		t.Fatal(err)
	}

	type query struct{ s, t int32 }
	const workers, perWorker = 8, 40
	queries := make([][]query, workers)
	want := make([][]int64, workers)
	for w := 0; w < workers; w++ {
		for q := 0; q < perWorker; q++ {
			s, u := int32(rng.Intn(n)), int32(rng.Intn(n))
			queries[w] = append(queries[w], query{s, u})
			want[w] = append(want[w], g.Dijkstra(s)[u])
		}
	}

	got := make([][]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		oracle := parent.Clone()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, q := range queries[w] {
				got[w] = append(got[w], oracle.Distance(q.s, q.t))
			}
		}()
	}
	wg.Wait()

	for w := 0; w < workers; w++ {
		for q := range queries[w] {
			if got[w][q] != want[w][q] {
				t.Fatalf("worker %d query %d: clone dist(%d,%d) = %d, want %d",
					w, q, queries[w][q].s, queries[w][q].t, got[w][q], want[w][q])
			}
		}
	}
}
