package lint

import (
	"go/ast"
	"go/types"
)

// CtxPropagation closes the gap between receiving a context and
// honoring it: a function that takes a context.Context (directly or
// behind a named/interface type) must pass *that* context down, not
// mint a fresh context.Background() or context.TODO() — a detached
// context silently severs the caller's deadline and cancellation,
// which is exactly the contract PR 2 threaded through the solver
// stack. The rule fires when a Background()/TODO() call appears as an
// argument of another call inside such a function; the sanctioned
// nil-guard (`if ctx == nil { ctx = context.Background() }`) assigns
// rather than passes and stays silent, as do the root package's
// convenience wrappers, which take no context at all. Deliberate
// detachment (a goroutine outliving the request) must say so with
// //lint:ignore ctx-propagation <reason>.
//
// The rule is typed: without type information it stays silent rather
// than flagging by spelling.
type CtxPropagation struct{}

// Name implements Rule.
func (CtxPropagation) Name() string { return "ctx-propagation" }

// Doc implements Rule.
func (CtxPropagation) Doc() string {
	return "a context-taking function must propagate its context, not pass context.Background()/TODO() to callees"
}

// Check implements Rule.
func (CtxPropagation) Check(pkg *Package, report ReportFunc) {
	if !pkg.Typed() {
		return
	}
	for _, f := range pkg.Files {
		if f.Test {
			continue
		}
		for _, decl := range f.AST.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkCtxPropagation(pkg, f, fd.Type, fd.Body, false, report)
			}
		}
	}
}

// checkCtxPropagation walks one function body; hasCtx carries the
// enclosing functions' context scope into closures (a closure that
// captures a context is bound by the same contract).
func checkCtxPropagation(pkg *Package, f *File, ft *ast.FuncType, body *ast.BlockStmt, outer bool, report ReportFunc) {
	hasCtx := outer || hasContextParam(pkg, ft)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkCtxPropagation(pkg, f, n.Type, n.Body, hasCtx, report)
			return false
		case *ast.CallExpr:
			if !hasCtx {
				return true
			}
			for _, arg := range n.Args {
				call, ok := ast.Unparen(arg).(*ast.CallExpr)
				if !ok {
					continue
				}
				for _, name := range [...]string{"Background", "TODO"} {
					if pkg.isPkgFunc(call, "context", name) {
						report(f, arg.Pos(),
							"context.%s() passed to a callee inside a context-taking function severs the caller's cancellation and deadline; pass the received ctx (or //lint:ignore ctx-propagation <reason> for deliberate detachment)", name)
					}
				}
			}
		}
		return true
	})
}

// hasContextParam reports whether ft declares a context.Context-typed
// parameter (named context types and context-shaped interfaces count;
// see isContextType).
func hasContextParam(pkg *Package, ft *ast.FuncType) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		var t types.Type
		if len(field.Names) > 0 {
			t = pkg.TypeOf(field.Names[0])
		}
		if t == nil {
			t = pkg.TypeOf(field.Type)
		}
		if isContextType(t) {
			return true
		}
	}
	return false
}
