// Package serve is the fixture stand-in for the serving layer: it
// publishes views through an atomic pointer and must never write
// through what it loads back out.
package serve

import (
	"sync/atomic"

	"fix/dynamic"
)

type view struct {
	pub  *dynamic.Published
	note string
}

type Server struct {
	view atomic.Pointer[view]
	r    *dynamic.Reallocator
}

// publish builds a fresh view and swaps it in: the write path the
// design prescribes, no findings.
func (s *Server) publish() {
	pub := s.r.Publish()
	s.view.Store(&view{pub: pub, note: "fresh"})
}

// patch mutates the loaded snapshot in place: concurrent readers hold
// it, so both writes are findings.
func (s *Server) patch(note string) {
	v := s.view.Load()
	v.note = note       // want "write to field note of a published view"
	v.pub.Objective = 0 // want "write to field Objective of a published view"
}

// shallow copies the view by value: scalar fields become owned, the
// backing arrays stay shared.
func (s *Server) shallow(sel []int) int64 {
	v := *s.view.Load().pub
	v.Objective = 9        // value copy owns its fields: no finding
	v.Selected[0] = sel[0] // want "element write into a published view's backing array"
	return v.Objective
}

// rebuild goes through Clone before editing: owned, no findings.
func (s *Server) rebuild() {
	next := s.view.Load().pub.Clone()
	next.Objective = 3
	next.Selected = append(next.Selected, 1)
	s.view.Store(&view{pub: next})
}
