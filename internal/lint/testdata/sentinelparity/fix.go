// Package fix is the fixture stand-in for the module root: the public
// error taxonomy the serving layer must mirror.
package fix

import "errors"

// ErrInfeasible is mapped exactly once in serve's table: parity holds.
var ErrInfeasible = errors.New("fix: infeasible")

// ErrTooLarge is mapped twice in serve's table: the duplicate is
// reported there.
var ErrTooLarge = errors.New("fix: too large")

// ErrMissing never made it into serve's table.
var ErrMissing = errors.New("fix: missing") // want "exported sentinel ErrMissing has no mapping in serve's error table"

// errInternal is unexported: not part of the public taxonomy, out of
// scope for parity.
var errInternal = errors.New("fix: internal")

// Wrap keeps the unexported sentinel referenced so the fixture
// compiles vet-clean.
func Wrap(err error) error {
	if err == nil {
		return errInternal
	}
	return err
}
