package graph

import (
	"context"

	"mcfs/internal/obs"
)

// checkEvery is the number of heap pops a graph search performs between
// context polls. Cooperative cancellation must be prompt without showing
// up in profiles: one atomic-free counter test per pop plus one ctx.Err
// call every 4096 pops is unmeasurable against the relaxation work of a
// road network, yet bounds the cancellation latency to a few thousand
// edge scans.
const checkEvery = 4096

// Dijkstra computes single-source shortest-path distances from src to all
// nodes, returning a dense distance slice with Inf for unreachable nodes.
func (g *Graph) Dijkstra(src int32) []int64 {
	dist, _ := g.DijkstraCtx(context.Background(), src)
	return dist
}

// DijkstraCtx is Dijkstra with cooperative cancellation: ctx is polled
// every checkEvery heap pops, and on cancellation the search stops and
// returns nil with ctx.Err(). An uncancelled run is identical to
// Dijkstra.
func (g *Graph) DijkstraCtx(ctx context.Context, src int32) ([]int64, error) {
	dist := make([]int64, g.N())
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	h := g.newDenseQueue()
	h.Push(src, 0)
	pops, relax := 0, 0
	if rec := obs.From(ctx); rec != nil {
		defer func() { flushSearchCounters(rec, h, int64(pops), int64(relax)) }()
	}
	for h.Len() > 0 {
		if pops++; pops&(checkEvery-1) == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		v, d := h.PopMin()
		if d > dist[v] {
			continue
		}
		for i := g.off[v]; i < g.off[v+1]; i++ {
			u, nd := g.dst[i], d+g.w[i]
			if nd < dist[u] {
				dist[u] = nd
				relax++
				h.DecreaseKey(u, nd)
			}
		}
	}
	return dist, nil
}

// DijkstraWithin computes shortest-path distances from src to all nodes
// within the given radius (inclusive), returned as a sparse map. A
// negative radius means unbounded. It is the workhorse of the BRNN
// baseline, whose search radius shrinks as facilities are placed.
func (g *Graph) DijkstraWithin(src int32, radius int64) map[int32]int64 {
	dist, _ := g.DijkstraWithinCtx(context.Background(), src, radius)
	return dist
}

// DijkstraWithinCtx is DijkstraWithin with cooperative cancellation
// (polled every checkEvery heap pops); on cancellation it returns nil
// and ctx.Err().
func (g *Graph) DijkstraWithinCtx(ctx context.Context, src int32, radius int64) (map[int32]int64, error) {
	dist := map[int32]int64{src: 0}
	h := g.newSparseQueue()
	h.Push(src, 0)
	pops, relax := 0, 0
	if rec := obs.From(ctx); rec != nil {
		defer func() { flushSearchCounters(rec, h, int64(pops), int64(relax)) }()
	}
	for h.Len() > 0 {
		if pops++; pops&(checkEvery-1) == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		v, d := h.PopMin()
		if d > dist[v] {
			continue
		}
		for i := g.off[v]; i < g.off[v+1]; i++ {
			u, nd := g.dst[i], d+g.w[i]
			if radius >= 0 && nd > radius {
				continue
			}
			if old, ok := dist[u]; !ok || nd < old {
				dist[u] = nd
				relax++
				h.DecreaseKey(u, nd)
			}
		}
	}
	return dist, nil
}

// DijkstraToTargets computes shortest-path distances from src to each
// target node, stopping as soon as all targets are settled. The result
// maps target node to distance (Inf if unreachable).
func (g *Graph) DijkstraToTargets(src int32, targets []int32) map[int32]int64 {
	out, _ := g.DijkstraToTargetsCtx(context.Background(), src, targets)
	return out
}

// DijkstraToTargetsCtx is DijkstraToTargets with cooperative
// cancellation (polled every checkEvery heap pops); on cancellation it
// returns nil and ctx.Err().
func (g *Graph) DijkstraToTargetsCtx(ctx context.Context, src int32, targets []int32) (map[int32]int64, error) {
	want := make(map[int32]bool, len(targets))
	for _, t := range targets {
		want[t] = true
	}
	out := make(map[int32]int64, len(targets))
	remaining := len(want)
	dist := map[int32]int64{src: 0}
	h := g.newSparseQueue()
	h.Push(src, 0)
	pops, relax := 0, 0
	if rec := obs.From(ctx); rec != nil {
		defer func() { flushSearchCounters(rec, h, int64(pops), int64(relax)) }()
	}
	for h.Len() > 0 && remaining > 0 {
		if pops++; pops&(checkEvery-1) == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		v, d := h.PopMin()
		if d > dist[v] {
			continue
		}
		if want[v] {
			if _, seen := out[v]; !seen {
				out[v] = d
				remaining--
			}
		}
		for i := g.off[v]; i < g.off[v+1]; i++ {
			u, nd := g.dst[i], d+g.w[i]
			if old, ok := dist[u]; !ok || nd < old {
				dist[u] = nd
				relax++
				h.DecreaseKey(u, nd)
			}
		}
	}
	for _, t := range targets {
		if _, ok := out[t]; !ok {
			out[t] = Inf
		}
	}
	return out, nil
}

// MultiSourceDijkstra computes, for every node, the distance to its
// nearest source and that source's index in sources. Nodes unreachable
// from all sources get distance Inf and owner -1. It implements network
// Voronoi partitioning (ties go to the source settled first, i.e., the
// lowest-distance one discovered earliest).
func (g *Graph) MultiSourceDijkstra(sources []int32) (dist []int64, owner []int32) {
	dist, owner, _ = g.MultiSourceDijkstraCtx(context.Background(), sources)
	return dist, owner
}

// MultiSourceDijkstraCtx is MultiSourceDijkstra with cooperative
// cancellation (polled every checkEvery heap pops); on cancellation it
// returns nils and ctx.Err().
func (g *Graph) MultiSourceDijkstraCtx(ctx context.Context, sources []int32) (dist []int64, owner []int32, err error) {
	n := g.N()
	dist = make([]int64, n)
	owner = make([]int32, n)
	for i := range dist {
		dist[i] = Inf
		owner[i] = -1
	}
	h := g.newDenseQueue()
	for idx, s := range sources {
		if dist[s] == 0 {
			continue // duplicate source node; first one wins
		}
		dist[s] = 0
		owner[s] = int32(idx)
		h.Push(s, 0)
	}
	pops, relax := 0, 0
	if rec := obs.From(ctx); rec != nil {
		defer func() { flushSearchCounters(rec, h, int64(pops), int64(relax)) }()
	}
	for h.Len() > 0 {
		if pops++; pops&(checkEvery-1) == 0 {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		v, d := h.PopMin()
		if d > dist[v] {
			continue
		}
		for i := g.off[v]; i < g.off[v+1]; i++ {
			u, nd := g.dst[i], d+g.w[i]
			if nd < dist[u] {
				dist[u] = nd
				owner[u] = owner[v]
				relax++
				h.DecreaseKey(u, nd)
			}
		}
	}
	return dist, owner, nil
}
