// Command mcfscli solves an MCFS instance file with any of the
// repository's algorithms and prints the objective, runtime, and
// optionally the full assignment.
//
//	mcfscli -algo wma -in inst.mcfs
//	mcfscli -algo exact -timeout 60s -in inst.mcfs
//	mcfscli -algo hilbert -in inst.mcfs -assignment
//
// -trace FILE attaches a work recorder to the solve and writes the
// resulting phase-span tree (elapsed time plus solver work-counter
// deltas per phase) to FILE as JSON lines; recording is passive and
// never changes the solution.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mcfs"
	"mcfs/internal/obs"
)

func algoNames() string {
	names := make([]string, 0, len(mcfs.Algorithms()))
	for _, a := range mcfs.Algorithms() {
		names = append(names, a.String())
	}
	return strings.Join(names, " | ")
}

func main() {
	var (
		algo       = flag.String("algo", "wma", "algorithm: "+algoNames())
		in         = flag.String("in", "", "instance file (required)")
		kOverride  = flag.Int("k", 0, "override the instance's facility budget")
		timeout    = flag.Duration("timeout", 0, "wall-clock budget: branch-and-bound cutoff for -algo exact, hard deadline for every other algorithm")
		seed       = flag.Int64("seed", 1, "seed for -algo naive")
		assignment = flag.Bool("assignment", false, "print the per-customer assignment")
		verify     = flag.Bool("verify", true, "re-verify the solution from scratch")
		trace      = flag.String("trace", "", "write the solve's phase-span tree to this file as JSON lines")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "mcfscli: -in is required")
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	inst, err := mcfs.ReadInstance(f)
	//lint:ignore closecheck read path: the file is only read, and a parse error dominates any close error
	f.Close()
	if err != nil {
		fatal(err)
	}
	if *kOverride > 0 {
		inst.K = *kOverride
	}

	ctx := context.Background()
	var rec *obs.Recorder
	if *trace != "" {
		rec = obs.New()
		ctx = obs.WithRecorder(ctx, rec)
	}

	start := time.Now()
	sol, note, err := run(ctx, *algo, inst, *timeout, *seed)
	elapsed := time.Since(start)
	if err != nil && sol == nil {
		fatal(err)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcfscli: warning: %v (reporting best-so-far)\n", err)
	}
	if rec != nil {
		if err := writeTrace(*trace, rec); err != nil {
			fatal(fmt.Errorf("writing trace: %w", err))
		}
	}

	if *verify {
		if _, err := inst.CheckSolution(sol); err != nil {
			fatal(fmt.Errorf("solution failed verification: %w", err))
		}
	}
	fmt.Printf("algorithm   %s\n", *algo)
	fmt.Printf("instance    n=%d edges=%d m=%d l=%d k=%d\n",
		inst.G.N(), inst.G.M(), inst.M(), inst.L(), inst.K)
	fmt.Printf("objective   %d\n", sol.Objective)
	fmt.Printf("facilities  %d selected\n", len(sol.Selected))
	fmt.Printf("runtime     %s\n", elapsed)
	if note != "" {
		fmt.Printf("note        %s\n", note)
	}
	if *assignment {
		for i, j := range sol.Assignment {
			fmt.Printf("customer %d @node %d -> facility %d @node %d\n",
				i, inst.Customers[i], j, inst.Facilities[j].Node)
		}
	}
}

func run(ctx context.Context, algo string, inst *mcfs.Instance, timeout time.Duration, seed int64) (*mcfs.Solution, string, error) {
	a, err := mcfs.ParseAlgorithm(algo)
	if err != nil {
		return nil, "", err
	}
	opts := []mcfs.Option{mcfs.WithSeed(seed)}
	if timeout > 0 {
		opts = append(opts, mcfs.WithTimeBudget(timeout))
	}
	return a.Solve(ctx, inst, opts...)
}

// writeTrace dumps the recorder's span tree to path as JSON lines.
func writeTrace(path string, rec *obs.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteSpansJSONL(f, rec.Spans()); err != nil {
		//lint:ignore closecheck the encode error already dooms the file; it dominates any close error
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcfscli:", err)
	os.Exit(1)
}
