package bipartite

import (
	"math/rand"
	"testing"

	"mcfs/internal/data"
)

// TestNegativeArcHandlingExercised drives enough randomized scenarios
// that the transient negative-reduced-cost path (label-correcting
// reinsertion) is actually exercised, and verifies via the shared
// invariant checker that the matching stays structurally sound when it
// happens. If the negative-arc machinery were unreachable this test
// would only log, not fail — optimality under reinsertion is covered by
// the reference cross-checks in matcher_test.go.
func TestNegativeArcHandlingExercised(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	totalReins, totalRuns, totalNeg := 0, 0, 0
	for trial := 0; trial < 1500; trial++ {
		m := 1 + rng.Intn(8)
		l := 1 + rng.Intn(8)
		n := m + l + 5 + rng.Intn(50)
		g := randomNetwork(rng, n)
		perm := rng.Perm(n)
		custNodes := make([]int32, m)
		for i := range custNodes {
			custNodes[i] = int32(perm[i])
		}
		facs := make([]data.Facility, l)
		for j := range facs {
			facs[j] = data.Facility{Node: int32(perm[m+j]), Capacity: 1 + rng.Intn(4)}
		}
		mt := New(g, custNodes, facs)
		for step := 0; step < 3*m; step++ {
			mt.FindPair(rng.Intn(m))
		}
		checkInvariants(t, mt)
		st := mt.Stats()
		totalReins += st.Reinsertions
		totalNeg += st.NegArcEvents
		totalRuns += st.DijkstraRuns
	}
	t.Logf("reinsertions=%d negarcs=%d over %d inner searches", totalReins, totalNeg, totalRuns)
}
