package graph

import (
	"context"

	"mcfs/internal/obs"
	"mcfs/internal/pq"
)

// SearchScratch is reusable state for the localized searches
// (DijkstraWithinScratchCtx, DijkstraToTargetsScratchCtx) that would
// otherwise allocate a fresh map and frontier queue per call — the
// dominant allocation cost in callers that issue thousands of bounded
// searches per solve (the BRNN attraction loop, objective
// recomputation). It follows the ALT shared-static/private-scratch
// idiom (alt.go): dense per-node arrays validated by an epoch stamp, so
// between searches the reset cost is O(nodes touched), not O(N).
//
// A scratch is bound to the graph that created it and must not be used
// on another graph, nor concurrently; clone one per goroutine instead.
// The results of the last search stay readable (Dist, Each, Visited)
// until the next search reuses the scratch.
type SearchScratch struct {
	g        *Graph
	dist     []int64
	stamp    []int32 // stamp[v] == epoch ⇔ dist[v] is live for this search
	done     []int32 // done[v] == epoch ⇔ v settled (popped final)
	want     []int32 // want[v] == epoch ⇔ v is an unsettled search target
	epoch    int32
	visited  []int32 // touched nodes in discovery order (deterministic)
	frontier pq.Monotone
}

// NewScratch returns a reusable scratch for searches on g. The frontier
// queue implementation is fixed at creation time by the current queue
// mode and g's weight range (see SetQueueMode).
func (g *Graph) NewScratch() *SearchScratch {
	n := g.N()
	return &SearchScratch{
		g:        g,
		dist:     make([]int64, n),
		stamp:    make([]int32, n),
		done:     make([]int32, n),
		want:     make([]int32, n),
		frontier: g.newDenseQueue(),
	}
}

// begin starts a new search epoch, invalidating all previous labels in
// O(touched) time.
func (sc *SearchScratch) begin() {
	sc.frontier.Reset()
	sc.visited = sc.visited[:0]
	sc.epoch++
	if sc.epoch <= 0 { // int32 wrap after ~2B searches: hard reset
		sc.epoch = 1
		for i := range sc.stamp {
			sc.stamp[i] = 0
			sc.done[i] = 0
			sc.want[i] = 0
		}
	}
}

// Dist returns the last search's distance to v and whether v was
// reached (relaxed within the search's bounds).
func (sc *SearchScratch) Dist(v int32) (int64, bool) {
	if sc.stamp[v] != sc.epoch {
		return Inf, false
	}
	return sc.dist[v], true
}

// Visited returns the number of nodes the last search reached.
func (sc *SearchScratch) Visited() int { return len(sc.visited) }

// Each calls fn for every node the last search reached, in discovery
// order (deterministic), until fn returns false.
func (sc *SearchScratch) Each(fn func(v int32, d int64) bool) {
	for _, v := range sc.visited {
		if !fn(v, sc.dist[v]) {
			return
		}
	}
}

// DijkstraWithinScratchCtx is DijkstraWithinCtx storing its result in sc
// instead of a freshly allocated map: after a nil-error return,
// sc.Dist/sc.Each expose the distances from src to every node within
// radius (negative radius = unbounded). The result set and values are
// identical to DijkstraWithinCtx's map; only the container differs. On
// cancellation it returns ctx.Err() and sc holds a partial search that
// must not be read.
func (g *Graph) DijkstraWithinScratchCtx(ctx context.Context, src int32, radius int64, sc *SearchScratch) error {
	sc.begin()
	sc.dist[src], sc.stamp[src] = 0, sc.epoch
	sc.visited = append(sc.visited, src)
	h := sc.frontier
	h.Push(src, 0)
	pops, relax := 0, 0
	if rec := obs.From(ctx); rec != nil {
		defer func() { flushSearchCounters(rec, h, int64(pops), int64(relax)) }()
	}
	for h.Len() > 0 {
		if pops++; pops&(checkEvery-1) == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		v, d := h.PopMin()
		if d > sc.dist[v] {
			continue
		}
		for i := g.off[v]; i < g.off[v+1]; i++ {
			u, nd := g.dst[i], d+g.w[i]
			if radius >= 0 && nd > radius {
				continue
			}
			if sc.stamp[u] != sc.epoch {
				sc.stamp[u] = sc.epoch
				sc.dist[u] = nd
				sc.visited = append(sc.visited, u)
				relax++
				h.Push(u, nd)
			} else if nd < sc.dist[u] {
				sc.dist[u] = nd
				relax++
				h.DecreaseKey(u, nd)
			}
		}
	}
	return nil
}

// DijkstraToTargetsScratchCtx is DijkstraToTargetsCtx without the per-
// call map allocations: it fills out[i] with the shortest-path distance
// from src to targets[i] (Inf when unreachable) and stops as soon as
// every distinct target is settled. len(out) must equal len(targets).
// On cancellation it returns ctx.Err() and out must not be read.
func (g *Graph) DijkstraToTargetsScratchCtx(ctx context.Context, src int32, targets []int32, out []int64, sc *SearchScratch) error {
	sc.begin()
	remaining := 0
	for _, t := range targets {
		if sc.want[t] != sc.epoch {
			sc.want[t] = sc.epoch
			remaining++
		}
	}
	sc.dist[src], sc.stamp[src] = 0, sc.epoch
	sc.visited = append(sc.visited, src)
	h := sc.frontier
	h.Push(src, 0)
	pops, relax := 0, 0
	if rec := obs.From(ctx); rec != nil {
		defer func() { flushSearchCounters(rec, h, int64(pops), int64(relax)) }()
	}
	for h.Len() > 0 && remaining > 0 {
		if pops++; pops&(checkEvery-1) == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		v, d := h.PopMin()
		if d > sc.dist[v] || sc.done[v] == sc.epoch {
			continue
		}
		sc.done[v] = sc.epoch
		if sc.want[v] == sc.epoch {
			remaining--
		}
		for i := g.off[v]; i < g.off[v+1]; i++ {
			u, nd := g.dst[i], d+g.w[i]
			if sc.stamp[u] != sc.epoch {
				sc.stamp[u] = sc.epoch
				sc.dist[u] = nd
				sc.visited = append(sc.visited, u)
				relax++
				h.Push(u, nd)
			} else if nd < sc.dist[u] {
				sc.dist[u] = nd
				relax++
				h.DecreaseKey(u, nd)
			}
		}
	}
	for i, t := range targets {
		if sc.done[t] == sc.epoch {
			out[i] = sc.dist[t]
		} else {
			out[i] = Inf
		}
	}
	return nil
}
