package obs

import (
	"encoding/json"
	"io"
)

// spanLine is the JSONL record for one span: the flattened (pre-order)
// form of the tree, with nesting recovered from the depth field.
// encoding/json sorts map keys, so for a deterministic run every field
// except elapsed_ns is byte-stable.
type spanLine struct {
	Depth    int              `json:"depth"`
	Name     string           `json:"name"`
	Elapsed  int64            `json:"elapsed_ns"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// WriteSpansJSONL writes the span tree as one JSON object per line in
// pre-order (parents before children, siblings in open order).
func WriteSpansJSONL(w io.Writer, spans []*Span) error {
	enc := json.NewEncoder(w)
	var walk func(s *Span, depth int) error
	walk = func(s *Span, depth int) error {
		if err := enc.Encode(spanLine{
			Depth:    depth,
			Name:     s.Name,
			Elapsed:  int64(s.Elapsed),
			Counters: s.Counters,
		}); err != nil {
			return err
		}
		for _, c := range s.Children {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, s := range spans {
		if err := walk(s, 0); err != nil {
			return err
		}
	}
	return nil
}
