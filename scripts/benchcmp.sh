#!/bin/sh
# Compares two BENCH_*.json files produced by scripts/bench.sh and exits
# non-zero when any shared benchmark slowed down past the regression
# threshold (DESIGN.md §11).
#
# Usage:
#   scripts/benchcmp.sh old.json new.json [threshold]
#
# threshold is the allowed new/old ns-per-op growth ratio, default 1.15
# (+15%); timings on shared runners are noisy, so keep it generous and
# read the printed table for the real story.
set -eu
cd "$(dirname "$0")/.."

if [ $# -lt 2 ]; then
	echo "usage: scripts/benchcmp.sh old.json new.json [threshold]" >&2
	exit 2
fi
old=$1
new=$2
threshold=${3:-1.15}

go run ./cmd/mcfsperf -compare -threshold "$threshold" "$old" "$new"
