package lint

import (
	"path"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadFixture parses testdata/<name> as a single package and relabels
// it with a virtual module-relative directory, so path-scoped rules see
// the fixture as if it lived inside the module.
func loadFixture(t *testing.T, name, virtualDir string) *Package {
	t.Helper()
	pkgs, err := Load(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: got %d packages, want 1", name, len(pkgs))
	}
	pkg := pkgs[0]
	pkg.Dir = virtualDir
	for _, f := range pkg.Files {
		f.Path = path.Join(virtualDir, path.Base(f.Path))
	}
	return pkg
}

// loadFixtureTyped loads testdata/<name> through the typed loader —
// the fixture may be a multi-package module with its own go.mod — and
// relabels each package per dirs (fixture-relative dir → virtual
// module-relative dir). Fixtures must type-check: a type error here is
// a broken fixture, not a tolerated condition.
func loadFixtureTyped(t *testing.T, name string, dirs map[string]string) []*Package {
	t.Helper()
	pkgs, err := LoadTyped(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s: no packages", name)
	}
	for _, pkg := range pkgs {
		for _, msg := range pkg.TypeErrors {
			t.Errorf("fixture %s: type error: %s", name, msg)
		}
		if !pkg.Typed() {
			t.Errorf("fixture %s: package %s carries no type info", name, pkg.Dir)
		}
		virtual, ok := dirs[pkg.Dir]
		if !ok {
			t.Fatalf("fixture %s: unexpected package dir %q", name, pkg.Dir)
		}
		pkg.Dir = virtual
		for _, f := range pkg.Files {
			f.Path = path.Join(virtual, path.Base(f.Path))
		}
	}
	return pkgs
}

// loadFixtureSyntactic is the multi-package variant of loadFixture for
// asserting the syntactic fallback's behavior on typed fixtures.
func loadFixtureSyntactic(t *testing.T, name string, dirs map[string]string) []*Package {
	t.Helper()
	pkgs, err := Load(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		virtual, ok := dirs[pkg.Dir]
		if !ok {
			t.Fatalf("fixture %s: unexpected package dir %q", name, pkg.Dir)
		}
		pkg.Dir = virtual
		for _, f := range pkg.Files {
			f.Path = path.Join(virtual, path.Base(f.Path))
		}
	}
	return pkgs
}

var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// wants extracts the `// want "substring"` expectations of a fixture,
// keyed by file path and line.
type wantKey struct {
	path string
	line int
}

func collectWants(t *testing.T, pkg *Package) map[wantKey]string {
	t.Helper()
	wants := make(map[wantKey]string)
	for _, f := range pkg.Files {
		for _, cg := range f.AST.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := f.Fset.Position(c.Pos()).Line
				wants[wantKey{f.Path, line}] = m[1]
			}
		}
	}
	return wants
}

// checkFixture runs the rules over the fixture and matches findings
// against the want comments, both ways.
func checkFixture(t *testing.T, pkg *Package, rules []Rule) {
	t.Helper()
	checkFixtures(t, []*Package{pkg}, rules)
}

// checkFixtures is checkFixture over a multi-package fixture.
func checkFixtures(t *testing.T, pkgs []*Package, rules []Rule) {
	t.Helper()
	wants := make(map[wantKey]string)
	for _, pkg := range pkgs {
		for key, want := range collectWants(t, pkg) {
			wants[key] = want
		}
	}
	matched := make(map[wantKey]bool)
	for _, fd := range Run(pkgs, rules) {
		key := wantKey{fd.Path, fd.Line}
		want, ok := wants[key]
		if !ok {
			t.Errorf("unexpected finding: %s", fd)
			continue
		}
		if !strings.Contains(fd.Rule+": "+fd.Message, want) {
			t.Errorf("finding at %s:%d does not match want %q: %s", fd.Path, fd.Line, want, fd)
			continue
		}
		matched[key] = true
	}
	for key := range wants {
		if !matched[key] {
			t.Errorf("missing finding at %s:%d (want %q)", key.path, key.line, wants[key])
		}
	}
}

func TestCtxCheckpointRule(t *testing.T) {
	pkg := loadFixture(t, "ctxcheckpoint", "internal/solver")
	checkFixture(t, pkg, []Rule{CtxCheckpoint{}})
}

func TestCtxCheckpointOutOfScope(t *testing.T) {
	pkg := loadFixture(t, "ctxcheckpoint", "internal/render")
	if got := Run([]*Package{pkg}, []Rule{CtxCheckpoint{}}); len(got) != 0 {
		t.Errorf("rule fired outside its package scope: %v", got)
	}
}

func TestAPIParityRule(t *testing.T) {
	pkg := loadFixture(t, "apiparity", ".")
	checkFixture(t, pkg, []Rule{APIParity{}})
}

func TestAPIParityOutOfScope(t *testing.T) {
	pkg := loadFixture(t, "apiparity", "internal/core")
	if got := Run([]*Package{pkg}, []Rule{APIParity{}}); len(got) != 0 {
		t.Errorf("rule fired outside the root package: %v", got)
	}
}

func TestDeterminismRule(t *testing.T) {
	pkg := loadFixture(t, "determinism", "internal/core")
	checkFixture(t, pkg, []Rule{Determinism{}})
}

func TestDeterminismBenchExemption(t *testing.T) {
	pkg := loadFixture(t, "determinismbench", "internal/bench")
	if got := Run([]*Package{pkg}, []Rule{Determinism{}}); len(got) != 0 {
		t.Errorf("time.Now flagged in internal/bench, which is exempt: %v", got)
	}
}

func TestDeterminismObsExemption(t *testing.T) {
	pkg := loadFixture(t, "determinismobs", "internal/obs")
	if got := Run([]*Package{pkg}, []Rule{Determinism{}}); len(got) != 0 {
		t.Errorf("time.Now flagged in internal/obs, which is allowlisted: %v", got)
	}
}

func TestDeterminismObsScopeOnly(t *testing.T) {
	// The same fixture relabeled as a solver package must be flagged:
	// the exemption is the package allowlist, not the file contents.
	pkg := loadFixture(t, "determinismobs", "internal/core")
	got := Run([]*Package{pkg}, []Rule{Determinism{}})
	if len(got) != 1 || !strings.Contains(got[0].Message, "time.Now") {
		t.Errorf("expected exactly one time.Now finding outside the allowlist, got %v", got)
	}
}

func TestCloseCheckRule(t *testing.T) {
	pkg := loadFixture(t, "closecheck", "cmd/fixture")
	checkFixture(t, pkg, []Rule{CloseCheck{}})
}

func TestCloseCheckOutOfScope(t *testing.T) {
	pkg := loadFixture(t, "closecheck", "internal/data")
	if got := Run([]*Package{pkg}, []Rule{CloseCheck{}}); len(got) != 0 {
		t.Errorf("rule fired outside cmd/: %v", got)
	}
}

func TestNakedGoroutineRule(t *testing.T) {
	pkg := loadFixture(t, "nakedgoroutine", "internal/util")
	checkFixture(t, pkg, []Rule{NakedGoroutine{}})
}

func TestNakedGoroutineParallelExemption(t *testing.T) {
	pkg := loadFixture(t, "parallelexempt", "internal/bench")
	if got := Run([]*Package{pkg}, []Rule{NakedGoroutine{}}); len(got) != 0 {
		t.Errorf("internal/bench/parallel.go must be exempt: %v", got)
	}
}

// sharedMutationDirs maps the sharedmutation fixture module's packages
// into the virtual tree the rule's scoping expects.
var sharedMutationDirs = map[string]string{
	"bench": "internal/bench",
	"data":  "internal/data",
	"graph": "internal/graph",
}

func TestSharedMutationRule(t *testing.T) {
	pkgs := loadFixtureTyped(t, "sharedmutation", sharedMutationDirs)
	checkFixtures(t, pkgs, []Rule{SharedMutation{}})
}

// TestSharedMutationOutOfScope: the rule only concerns the bench
// harness; the same code anywhere else is not in its jurisdiction.
func TestSharedMutationOutOfScope(t *testing.T) {
	pkgs := loadFixtureTyped(t, "sharedmutation", map[string]string{
		"bench": "internal/core",
		"data":  "internal/data",
		"graph": "internal/graph",
	})
	if got := Run(pkgs, []Rule{SharedMutation{}}); len(got) != 0 {
		t.Errorf("rule fired outside internal/bench: %v", got)
	}
}

// TestSharedMutationSilentWithoutTypes: the rule needs go/types info
// and must stay silent, not guess, on a syntactic load.
func TestSharedMutationSilentWithoutTypes(t *testing.T) {
	pkgs := loadFixtureSyntactic(t, "sharedmutation", sharedMutationDirs)
	if got := Run(pkgs, []Rule{SharedMutation{}}); len(got) != 0 {
		t.Errorf("typed-only rule fired without type info: %v", got)
	}
}

func TestCtxPropagationRule(t *testing.T) {
	pkgs := loadFixtureTyped(t, "ctxpropagation", map[string]string{".": "internal/solver"})
	checkFixtures(t, pkgs, []Rule{CtxPropagation{}})
}

func TestCtxPropagationSilentWithoutTypes(t *testing.T) {
	pkgs := loadFixtureSyntactic(t, "ctxpropagation", map[string]string{".": "internal/solver"})
	if got := Run(pkgs, []Rule{CtxPropagation{}}); len(got) != 0 {
		t.Errorf("typed-only rule fired without type info: %v", got)
	}
}

// The *typed fixtures hold violations only type information can see:
// each has a want-comment test through the typed loader and a
// zero-finding test through the syntactic one, documenting exactly what
// the typed engine buys.

func TestCtxCheckpointTyped(t *testing.T) {
	pkgs := loadFixtureTyped(t, "ctxcheckpointtyped", map[string]string{".": "internal/solver"})
	checkFixtures(t, pkgs, []Rule{CtxCheckpoint{}})
}

func TestCtxCheckpointTypedSyntacticMisses(t *testing.T) {
	pkgs := loadFixtureSyntactic(t, "ctxcheckpointtyped", map[string]string{".": "internal/solver"})
	if got := Run(pkgs, []Rule{CtxCheckpoint{}}); len(got) != 0 {
		t.Errorf("syntactic pass should not see these (they need type info): %v", got)
	}
}

func TestDeterminismTyped(t *testing.T) {
	pkgs := loadFixtureTyped(t, "determinismtyped", map[string]string{".": "internal/core"})
	checkFixtures(t, pkgs, []Rule{Determinism{}})
}

func TestDeterminismTypedSyntacticMisses(t *testing.T) {
	pkgs := loadFixtureSyntactic(t, "determinismtyped", map[string]string{".": "internal/core"})
	if got := Run(pkgs, []Rule{Determinism{}}); len(got) != 0 {
		t.Errorf("syntactic pass should not see these (they need type info): %v", got)
	}
}

func TestCloseCheckTyped(t *testing.T) {
	pkgs := loadFixtureTyped(t, "closechecktyped", map[string]string{".": "cmd/fixture"})
	checkFixtures(t, pkgs, []Rule{CloseCheck{}})
}

func TestCloseCheckTypedSyntacticMisses(t *testing.T) {
	pkgs := loadFixtureSyntactic(t, "closechecktyped", map[string]string{".": "cmd/fixture"})
	if got := Run(pkgs, []Rule{CloseCheck{}}); len(got) != 0 {
		t.Errorf("syntactic pass should not see these (they need type info): %v", got)
	}
}

// TestDirectiveHygiene covers the lint-directive pseudo-rule: stale,
// malformed, and unknown //lint: comments are findings. Expectations
// are inline here because the directive itself occupies the line a want
// comment would use.
func TestDirectiveHygiene(t *testing.T) {
	pkg := loadFixture(t, "directives", "internal/x")
	got := Run([]*Package{pkg}, AllRules())
	want := []struct {
		line int
		frag string
	}{
		{7, "unused //lint:ignore"},
		{10, `unknown rule "nosuchrule"`},
		{13, "needs a rule list and a reason"},
		{16, `unknown lint directive "lint:frobnicate"`},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d findings, want %d: %v", len(got), len(want), got)
	}
	for i, w := range want {
		if got[i].Line != w.line || got[i].Rule != directiveRule || !strings.Contains(got[i].Message, w.frag) {
			t.Errorf("finding %d = %s; want line %d containing %q", i, got[i], w.line, w.frag)
		}
	}
}

// TestDirectiveUnusedSkippedOnPartialRun: a filtered run cannot tell a
// stale directive from one whose rule was not executed, so the unused
// check must stay quiet.
func TestDirectiveUnusedSkippedOnPartialRun(t *testing.T) {
	pkg := loadFixture(t, "nakedgoroutine", "internal/util")
	for _, fd := range Run([]*Package{pkg}, []Rule{CtxCheckpoint{}}) {
		if strings.Contains(fd.Message, "unused") {
			t.Errorf("unused-directive finding on a partial run: %s", fd)
		}
	}
}

func TestFindingString(t *testing.T) {
	fd := Finding{Path: "cmd/x/main.go", Line: 12, Col: 3, Rule: "closecheck", Message: "boom"}
	if got, want := fd.String(), "cmd/x/main.go:12: closecheck: boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestModuleClean is the gate the CI step relies on: the real module,
// under every rule, has zero findings. Any new violation fails this
// test before it fails CI.
func TestModuleClean(t *testing.T) {
	pkgs, err := Load("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("loaded only %d packages from the module root; the loader is missing directories", len(pkgs))
	}
	for _, fd := range Run(pkgs, AllRules()) {
		t.Errorf("module not lint-clean: %s", fd)
	}
}

// TestModuleCleanTyped is the typed twin of TestModuleClean and the
// gate CI actually runs: the real module type-checks without errors and
// has zero findings under the full rule set with type info attached —
// including the typed-only rules, which are silent in the syntactic
// run above.
func TestModuleCleanTyped(t *testing.T) {
	if testing.Short() {
		t.Skip("typed load reads GOROOT/src; skip in -short")
	}
	pkgs, err := LoadTyped("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("loaded only %d packages from the module root; the loader is missing directories", len(pkgs))
	}
	for _, pkg := range pkgs {
		for _, msg := range pkg.TypeErrors {
			t.Errorf("package %s: type error: %s", pkg.Dir, msg)
		}
		hasNonTest := false
		for _, f := range pkg.Files {
			if !f.Test {
				hasNonTest = true
			}
		}
		if hasNonTest && !pkg.Typed() {
			t.Errorf("package %s has non-test files but no type info", pkg.Dir)
		}
	}
	for _, fd := range Run(pkgs, AllRules()) {
		t.Errorf("module not lint-clean under typed rules: %s", fd)
	}
}

// TestRunTimed: the timing side channel accounts for every rule and
// returns the same findings as Run.
func TestRunTimed(t *testing.T) {
	pkg := loadFixture(t, "nakedgoroutine", "internal/util")
	findings, times := RunTimed([]*Package{pkg}, AllRules())
	if len(findings) == 0 {
		t.Fatal("expected findings from the nakedgoroutine fixture")
	}
	if len(times) != len(AllRules())+1 {
		t.Fatalf("got %d rule timings, want %d (rules + summaries)", len(times), len(AllRules())+1)
	}
	seen := make(map[string]bool)
	for _, rt := range times {
		seen[rt.Rule] = true
	}
	for _, r := range AllRules() {
		if !seen[r.Name()] {
			t.Errorf("no timing entry for rule %s", r.Name())
		}
	}
	if !seen["(summaries)"] {
		t.Error("no timing entry for the cross-package summary pass")
	}
}

// TestLoadPattern: non-recursive and prefixed patterns resolve against
// the module root with module-relative paths.
func TestLoadPattern(t *testing.T) {
	pkgs, err := Load("../..", "cmd/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("cmd/... matched nothing")
	}
	for _, p := range pkgs {
		if !strings.HasPrefix(p.Dir, "cmd") {
			t.Errorf("pattern cmd/... loaded %s", p.Dir)
		}
		for _, f := range p.Files {
			if !strings.HasPrefix(f.Path, "cmd/") {
				t.Errorf("file path %s not module-relative", f.Path)
			}
		}
	}
}
