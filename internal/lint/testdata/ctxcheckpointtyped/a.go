// Package fix exercises the typed sharpening of ctx-checkpoint: the
// context can hide behind a named interface, and an unrelated variable
// that merely shares the parameter's name is not a poll.
package fix

import "context"

// Job embeds context.Context; type-checking flattens the embedding, so
// the rule recognizes a Job parameter as a context.
type Job interface {
	context.Context
}

func unpolled(j Job, n int) int {
	for n > 0 { // want "never polls the context"
		n--
	}
	return n
}

func polled(j Job, n int) int {
	for n > 0 {
		if j.Err() != nil {
			return -1
		}
		n--
	}
	return n
}

// shadow declares a local named ctx inside the loop; by spelling it
// looks like a poll, by resolution it is an unrelated int.
func shadow(ctx context.Context, n int) int {
	for n > 0 { // want "never polls the context"
		ctx := n
		_ = ctx
		n--
	}
	return n
}

func keep() {
	_ = unpolled
	_ = polled
	_ = shadow
}
