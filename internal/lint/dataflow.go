package lint

import "go/ast"

// This file is the fixpoint half of the v3 engine: a forward worklist
// solver over the CFG of cfg.go, generic in the per-rule lattice. A
// rule supplies the four lattice operations; the solver owns iteration
// order and termination. Transfer functions must be monotone in the
// state (a larger input state may only produce a larger output state)
// and the lattice must have finite height — both hold for the
// finite-domain fact maps the rules use — which together guarantee the
// fixpoint terminates.
type dataflow[S any] struct {
	// seed produces the entry state of the function.
	seed func() S
	// clone deep-copies a state so block-local evolution cannot alias
	// the stored in-state.
	clone func(S) S
	// merge joins src into dst (least upper bound) and reports whether
	// dst changed.
	merge func(dst, src S) bool
	// step applies one statement's transfer effect in place.
	step func(n ast.Node, s S)
}

// fixpoint solves the forward dataflow problem over g and returns the
// in-state of every reachable block. Blocks are processed in creation
// order (a stable approximation of reverse postorder for the
// structured CFGs buildCFG emits), so the result — and therefore every
// finding derived from it — is deterministic.
func (d dataflow[S]) fixpoint(g *cfg) map[*block]S {
	in := make(map[*block]S, len(g.blocks))
	in[g.entry] = d.seed()
	queued := make([]bool, len(g.blocks))
	work := []*block{g.entry}
	queued[g.entry.index] = true
	for len(work) > 0 {
		// Pop the lowest-index queued block: deterministic and close to
		// topological for loop-free regions.
		best := 0
		for i := 1; i < len(work); i++ {
			if work[i].index < work[best].index {
				best = i
			}
		}
		b := work[best]
		work = append(work[:best], work[best+1:]...)
		queued[b.index] = false

		s := d.clone(in[b])
		for _, n := range b.nodes {
			d.step(n, s)
		}
		for _, succ := range b.succs {
			cur, ok := in[succ]
			changed := false
			if !ok {
				in[succ] = d.clone(s)
				changed = true
			} else {
				changed = d.merge(cur, s)
			}
			if changed && !queued[succ.index] {
				queued[succ.index] = true
				work = append(work, succ)
			}
		}
	}
	return in
}
