package lint

import "go/ast"

// isPkgSel reports whether sel is the qualified identifier pkg.name
// (e.g. time.Now). Purely syntactic: a local variable shadowing the
// package name would fool it, which the codebase avoids by convention.
func isPkgSel(sel *ast.SelectorExpr, pkg, name string) bool {
	if sel.Sel.Name != name {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	return ok && x.Name == pkg
}
