// Package serve is the double-writer fixture: a constructor that
// starts TWO goroutines whose call trees both reach mutating
// Reallocator methods. The second launch is the architecture violation
// — two concurrent owners — and is reported at the go statement.
package serve

import "fix/dynamic"

type op struct {
	n     int
	reply chan int
}

type Server struct {
	r   *dynamic.Reallocator
	ops chan op
}

// New starts the batch writer and, wrongly, a second mutating loop.
func New() *Server {
	s := &Server{r: &dynamic.Reallocator{}, ops: make(chan op, 16)}
	go s.loop()
	go s.compactLoop() // want "constructor starts a second goroutine (compactLoop) that mutates the Reallocator"
	go s.tickerLoop()
	return s
}

// loop is the legitimate batch writer.
func (s *Server) loop() {
	for o := range s.ops {
		s.r.SetContext(o.n)
		o.reply <- s.r.AddCustomer(o.n)
	}
}

// compactLoop reaches a mutating call through a helper: a second
// concurrent Reallocator owner.
func (s *Server) compactLoop() {
	for i := 0; i < 3; i++ {
		s.compact(i)
	}
}

func (s *Server) compact(n int) { s.r.SetContext(n) }

// tickerLoop only reads and enqueues: accepted, not a third writer.
func (s *Server) tickerLoop() {
	for i := 0; i < 3; i++ {
		if s.r.Stats() > 0 {
			reply := make(chan int, 1)
			s.ops <- op{n: i, reply: reply}
			<-reply
		}
	}
}
