// Command mcfscompare solves one MCFS instance with every algorithm and
// prints a comparison table, optionally exporting the best solution as
// SVG and/or GeoJSON.
//
//	mcfscompare -in inst.mcfs
//	mcfscompare -in inst.mcfs -algos wma,uf,hilbert -svg out.svg -geojson out.json
//	mcfscompare -in inst.mcfs -exactbudget 30s -improve
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"mcfs"
)

func main() {
	var (
		in          = flag.String("in", "", "instance file (required)")
		algosFlag   = flag.String("algos", "wma,uf,hilbert,naive", "comma-separated algorithms: wma | uf | hilbert | brnn | naive | exact | exhaustive")
		exactBudget = flag.Duration("exactbudget", 15*time.Second, "time budget when 'exact' is included")
		seed        = flag.Int64("seed", 1, "seed for 'naive'")
		improve     = flag.Bool("improve", false, "also run the swap local-search polish on the best solution")
		svgPath     = flag.String("svg", "", "write the best solution as SVG")
		geoPath     = flag.String("geojson", "", "write the best solution as GeoJSON")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "mcfscompare: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	inst, err := mcfs.ReadInstance(f)
	//lint:ignore closecheck read path: the file is only read, and a parse error dominates any close error
	f.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("instance: n=%d edges=%d m=%d l=%d k=%d occupancy=%.2f\n\n",
		inst.G.N(), inst.G.M(), inst.M(), inst.L(), inst.K, inst.Occupancy())

	type result struct {
		name string
		sol  *mcfs.Solution
		dur  time.Duration
		note string
	}
	var results []result
	var best *result
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\tobjective\truntime\tnote")
	for _, name := range strings.Split(*algosFlag, ",") {
		name = strings.TrimSpace(name)
		start := time.Now()
		sol, note, err := runAlgo(name, inst, *exactBudget, *seed)
		dur := time.Since(start)
		if err != nil {
			fmt.Fprintf(tw, "%s\t-\t%s\t%v\n", name, dur.Round(time.Millisecond), err)
			continue
		}
		if _, err := inst.CheckSolution(sol); err != nil {
			fatal(fmt.Errorf("%s produced an invalid solution: %w", name, err))
		}
		r := result{name: name, sol: sol, dur: dur, note: note}
		results = append(results, r)
		if best == nil || sol.Objective < best.sol.Objective {
			best = &results[len(results)-1]
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\n", name, sol.Objective, dur.Round(time.Millisecond), note)
	}
	tw.Flush()
	if best == nil {
		fatal(errors.New("no algorithm produced a solution"))
	}

	if *improve {
		start := time.Now()
		polished, st, err := mcfs.Improve(inst, best.sol, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nswap polish on %s: %d -> %d (%d moves, %d evaluated, %s)\n",
			best.name, best.sol.Objective, polished.Objective,
			st.Accepted, st.Evaluated, time.Since(start).Round(time.Millisecond))
		if polished.Objective < best.sol.Objective {
			best.sol = polished
		}
	}
	fmt.Printf("\nbest: %s with objective %d\n", best.name, best.sol.Objective)

	if *svgPath != "" {
		writeExport(*svgPath, func(w *os.File) error {
			return mcfs.RenderSVG(w, inst, best.sol, mcfs.DefaultRenderStyle())
		})
	}
	if *geoPath != "" {
		writeExport(*geoPath, func(w *os.File) error {
			return mcfs.WriteGeoJSON(w, inst, best.sol)
		})
	}
}

func runAlgo(name string, inst *mcfs.Instance, budget time.Duration, seed int64) (*mcfs.Solution, string, error) {
	a, err := mcfs.ParseAlgorithm(name)
	if err != nil {
		return nil, "", err
	}
	opts := []mcfs.Option{mcfs.WithSeed(seed)}
	if a == mcfs.AlgorithmExact {
		opts = append(opts, mcfs.WithTimeBudget(budget))
	}
	return a.Solve(context.Background(), inst, opts...)
}

func writeExport(path string, fn func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	// A failed Close can be the only sign of a short write; the "wrote"
	// confirmation must not print in that case. Close exactly once, on
	// both paths, and report whichever of write/close failed first.
	err = fn(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}
	fmt.Println("wrote", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcfscompare:", err)
	os.Exit(1)
}
