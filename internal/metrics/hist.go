// Package metrics provides the latency histogram shared by the serving
// layer (per-endpoint request latencies in mcfsd's /stats) and the bench
// load generator (p50/p99 rows for the serve experiment). It lives in
// its own leaf package because both internal/serve and internal/bench
// need it and bench already depends on the public API that serve is
// built on.
package metrics

import (
	"math/bits"
	"time"
)

// histSub is the number of linear sub-buckets per power-of-two range.
// Eight sub-buckets bound the quantile estimation error at ~12.5% of the
// value, which is plenty for p50/p99 latency reporting.
const histSub = 8

// histBuckets covers durations up to ~2^40 ns (~18 minutes) with one
// power-of-two range per exponent; observations beyond the last range
// clamp into it.
const histBuckets = 41 * histSub

// Histogram accumulates durations into log-linear buckets. The zero
// value is ready to use. It is not safe for concurrent use; either give
// each goroutine its own histogram and Merge, or guard it with a mutex.
type Histogram struct {
	counts [histBuckets]int64
	count  int64
	sum    int64
	max    int64
}

// bucketOf maps a non-negative nanosecond reading to its bucket index.
func bucketOf(ns int64) int {
	if ns < histSub {
		return int(ns) // the first ranges are exact
	}
	exp := bits.Len64(uint64(ns)) - 1 // floor(log2 ns) >= 3
	frac := (ns >> (exp - 3)) & (histSub - 1)
	idx := (exp-2)*histSub + int(frac)
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// lowerBound returns the smallest nanosecond reading mapped to bucket i
// (the inverse of bucketOf on range starts).
func lowerBound(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	exp := i/histSub + 2
	frac := int64(i % histSub)
	return (1 << exp) + frac<<(exp-3)
}

// Observe records one duration; negative readings clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketOf(ns)]++
	h.count++
	h.sum += ns
	if ns > h.max {
		h.max = ns
	}
}

// Merge folds o into h.
func (h *Histogram) Merge(o *Histogram) {
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the total of all observed durations in nanoseconds.
func (h *Histogram) Sum() int64 { return h.sum }

// Bucket is one step of a cumulative histogram export: Cumulative
// observations were at most UpperNS nanoseconds. The shape matches
// Prometheus's cumulative `le` buckets, which is what the /metrics
// exposition renders from it.
type Bucket struct {
	UpperNS    int64 // inclusive upper bound of the bucket, in ns
	Cumulative int64 // observations at or below UpperNS
}

// Buckets exports the histogram as cumulative (upper bound, count)
// pairs in increasing bound order. Empty leading/trailing ranges are
// skipped, but every bucket that changes the cumulative count appears,
// so the export reconstructs the exact per-bucket counts. The final
// bucket (when any observations exist) carries the full Count, with the
// last range's clamp semantics: its bound covers everything recorded.
func (h *Histogram) Buckets() []Bucket {
	if h.count == 0 {
		return nil
	}
	out := make([]Bucket, 0, 16)
	var cum int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		out = append(out, Bucket{UpperNS: lowerBound(i+1) - 1, Cumulative: cum})
	}
	return out
}

// Mean returns the average observed duration (0 when empty).
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Max returns the largest observed duration.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Quantile returns an upper estimate of the q-quantile (q in [0,1]):
// the lower bound of the first bucket whose cumulative count reaches
// q·Count, plus one sub-bucket width, clamped to the exact observed
// maximum (so a high quantile never reads above Max). Returns 0 on an
// empty histogram.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(h.count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			width := lowerBound(i+1) - lowerBound(i)
			if width < 1 {
				width = 1
			}
			est := lowerBound(i) + width - 1
			if est > h.max {
				est = h.max
			}
			return time.Duration(est)
		}
	}
	return time.Duration(h.max)
}
