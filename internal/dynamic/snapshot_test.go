package dynamic

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"mcfs/internal/data"
	"mcfs/internal/graph"
)

// churnInstance is a 30-node line with facilities every other node and
// generous capacity slack, so churn (arrivals beyond the initial
// population) stays feasible.
func churnInstance(t *testing.T) *data.Instance {
	t.Helper()
	b := graph.NewBuilder(30, false)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 29; i++ {
		b.AddEdge(int32(i), int32(i+1), 1+rng.Int63n(9))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var facs []data.Facility
	for v := 0; v < 30; v += 2 {
		facs = append(facs, data.Facility{Node: int32(v), Capacity: 3})
	}
	return &data.Instance{
		G:          g,
		Customers:  []int32{1, 5, 9, 14, 22, 27},
		Facilities: facs,
		K:          6,
	}
}

func churnedReallocator(t *testing.T) (*data.Instance, *Reallocator) {
	t.Helper()
	inst := churnInstance(t)
	r, err := New(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Churn so the snapshot captures non-trivial handle state.
	for i := 0; i < 4; i++ {
		if _, err := r.AddCustomer(inst.Customers[i%len(inst.Customers)]); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.RemoveCustomer(1); err != nil {
		t.Fatal(err)
	}
	return inst, r
}

func TestSnapshotRoundTrip(t *testing.T) {
	inst, r := churnedReallocator(t)
	wantObj, err := r.Objective()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	read, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}

	restored, err := Restore(inst, read, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gotObj, err := restored.Objective()
	if err != nil {
		t.Fatal(err)
	}
	if gotObj != wantObj {
		t.Fatalf("restored objective %d != snapshotted %d", gotObj, wantObj)
	}
	if restored.BaseObjective() != r.BaseObjective() {
		t.Fatalf("restored base objective %d != %d", restored.BaseObjective(), r.BaseObjective())
	}
	if restored.Stats() != r.Stats() {
		t.Fatalf("restored stats %+v != %+v", restored.Stats(), r.Stats())
	}
	if restored.Customers() != r.Customers() {
		t.Fatalf("restored %d customers, want %d", restored.Customers(), r.Customers())
	}
	// Handle-level state survives: same assignment keys, and new handles
	// continue after the snapshotted ones rather than colliding.
	wantAsg, err := r.Assignment()
	if err != nil {
		t.Fatal(err)
	}
	gotAsg, err := restored.Assignment()
	if err != nil {
		t.Fatal(err)
	}
	if len(gotAsg) != len(wantAsg) {
		t.Fatalf("assignment sizes differ: %d vs %d", len(gotAsg), len(wantAsg))
	}
	for h := range wantAsg {
		if _, ok := gotAsg[h]; !ok {
			t.Fatalf("handle %d missing after restore", h)
		}
	}
	h, err := restored.AddCustomer(inst.Customers[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := wantAsg[h]; ok {
		t.Fatalf("post-restore arrival reused live handle %d", h)
	}
	verify(t, restored)
}

func TestSnapshotFingerprintMismatch(t *testing.T) {
	inst, r := churnedReallocator(t)
	snap, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	other := &data.Instance{G: inst.G, Customers: inst.Customers, Facilities: inst.Facilities, K: inst.K + 1}
	if _, err := Restore(other, snap, Options{}); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("fingerprint mismatch accepted: %v", err)
	}
}

// TestSnapshotFingerprintMismatchMessage pins the itemized error shape:
// every disagreeing field is named with both the snapshot's value and
// the instance's, so the message diagnoses which half of the pairing is
// wrong rather than just declaring them different.
func TestSnapshotFingerprintMismatchMessage(t *testing.T) {
	inst, r := churnedReallocator(t)
	snap, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snap.Nodes++
	snap.K += 3
	_, err = Restore(inst, snap, Options{})
	if err == nil {
		t.Fatal("fingerprint mismatch accepted")
	}
	want := fmt.Sprintf(
		"dynamic: snapshot fingerprint mismatch: nodes: snapshot %d vs instance %d; k: snapshot %d vs instance %d",
		snap.Nodes, inst.G.N(), snap.K, inst.K)
	if err.Error() != want {
		t.Fatalf("mismatch message:\n got %q\nwant %q", err, want)
	}
}

func TestSnapshotValidation(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("{")); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	if _, err := ReadSnapshot(strings.NewReader(`{"version":99}`)); err == nil {
		t.Fatal("future version accepted")
	}
	if _, err := ReadSnapshot(strings.NewReader(`{"version":1,"handles":[0],"customer_nodes":[]}`)); err == nil {
		t.Fatal("handle/node length mismatch accepted")
	}

	inst, r := churnedReallocator(t)
	for _, mutate := range []func(*Snapshot){
		func(s *Snapshot) { s.Handles[0] = s.NextID },      // handle beyond next_id
		func(s *Snapshot) { s.Handles[0] = s.Handles[1] },  // duplicate handle
		func(s *Snapshot) { s.CustomerNodes[0] = -1 },      // invalid node
		func(s *Snapshot) { s.Selected[0] = inst.L() },     // selection out of range
		func(s *Snapshot) { s.Selected = make([]int, 99) }, // selection over budget (dup zeros)
	} {
		snap, err := r.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		mutate(snap)
		if _, err := Restore(inst, snap, Options{}); err == nil {
			t.Fatal("corrupted snapshot accepted")
		}
	}
}

func TestPublishImmutableView(t *testing.T) {
	inst, r := churnedReallocator(t)
	p, err := r.Publish()
	if err != nil {
		t.Fatal(err)
	}
	if p.Customers() != r.Customers() {
		t.Fatalf("published %d customers, want %d", p.Customers(), r.Customers())
	}
	wantObj, err := r.Objective()
	if err != nil {
		t.Fatal(err)
	}
	if p.Objective != wantObj {
		t.Fatalf("published objective %d != %d", p.Objective, wantObj)
	}
	asg, err := r.Assignment()
	if err != nil {
		t.Fatal(err)
	}
	for h, want := range asg {
		node, fac, ok := p.Lookup(h)
		if !ok {
			t.Fatalf("handle %d missing from published view", h)
		}
		if fac != want {
			t.Fatalf("handle %d published facility %d, want %d", h, fac, want)
		}
		if node < 0 || int(node) >= inst.G.N() {
			t.Fatalf("handle %d published node %d out of range", h, node)
		}
	}
	if _, _, ok := p.Lookup(1 << 30); ok {
		t.Fatal("unknown handle resolved")
	}

	// The view must not alias mutable state: churn the reallocator and
	// check the published data is unchanged.
	before := append([]int(nil), p.Assignment...)
	if _, err := r.AddCustomer(inst.Customers[0]); err != nil {
		t.Fatal(err)
	}
	if err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if p.Assignment[i] != before[i] {
			t.Fatal("published view mutated by later operations")
		}
	}
}

func TestAdoptSelection(t *testing.T) {
	inst, r := churnedReallocator(t)
	// Adopt the current selection rotated through a fresh reallocator:
	// any feasible selection must be installable.
	sel := r.Selected()
	adopted, err := Adopt(r.instance(), sel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantObj, err := r.Objective()
	if err != nil {
		t.Fatal(err)
	}
	gotObj, err := adopted.Objective()
	if err != nil {
		t.Fatal(err)
	}
	if gotObj != wantObj {
		t.Fatalf("adopted objective %d != %d", gotObj, wantObj)
	}
	if adopted.Stats().Adoptions != 1 {
		t.Fatalf("adoptions = %d, want 1", adopted.Stats().Adoptions)
	}
	verify(t, adopted)

	// Invalid selections are rejected and leave the previous state live.
	beforeSel := r.Selected()
	for _, bad := range [][]int{
		{-1},
		{inst.L()},
		{0, 0},
		make([]int, inst.K+1),
	} {
		if err := r.AdoptSelection(bad); err == nil {
			t.Fatalf("invalid selection %v accepted", bad)
		}
	}
	afterSel := r.Selected()
	if len(afterSel) != len(beforeSel) {
		t.Fatalf("selection changed by failed adoptions: %v -> %v", beforeSel, afterSel)
	}
	verify(t, r)

	// An infeasible selection (empty: nothing can serve the customers)
	// must surface ErrInfeasible and keep the old state.
	if err := r.AdoptSelection([]int{}); !errors.Is(err, data.ErrInfeasible) {
		t.Fatalf("empty selection: err = %v, want ErrInfeasible", err)
	}
	verify(t, r)
}

// TestSetContextHealsCancelledOp pins the recovery contract the serving
// batch loop depends on: an operation interrupted by cancellation
// mid-stream leaves the matching stale, and rebinding a live context
// heals it transparently on the next operation.
func TestSetContextHealsCancelledOp(t *testing.T) {
	inst, r := churnedReallocator(t)
	want, err := r.Objective()
	if err != nil {
		t.Fatal(err)
	}

	// Schedule a departure (stale matching), then cancel the context so
	// the lazy rebuild is interrupted mid-stream.
	h, err := r.AddCustomer(inst.Customers[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveCustomer(h); err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	r.SetContext(cancelled)
	if _, err := r.Objective(); !errors.Is(err, context.Canceled) {
		t.Fatalf("objective under cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := r.Publish(); !errors.Is(err, context.Canceled) {
		t.Fatalf("publish under cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := r.Snapshot(); !errors.Is(err, context.Canceled) {
		t.Fatalf("snapshot under cancelled ctx: err = %v, want context.Canceled", err)
	}
	// An arrival under the cancelled context must roll back cleanly.
	if _, err := r.AddCustomer(inst.Customers[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("arrival under cancelled ctx: err = %v, want context.Canceled", err)
	}

	// Rebinding a live context heals everything: the pending departure
	// applies, the rolled-back arrival is gone, and the state verifies.
	r.SetContext(context.Background())
	got, err := r.Objective()
	if err != nil {
		t.Fatalf("objective after healing: %v", err)
	}
	if got != want {
		t.Fatalf("healed objective %d, want %d", got, want)
	}
	verify(t, r)
	if _, err := r.Publish(); err != nil {
		t.Fatalf("publish after healing: %v", err)
	}
}
