package graph

import "mcfs/internal/pq"

// MultiSourceTwoNearest computes, for every node, its nearest and
// second-nearest sources (by shortest-path distance, distinct sources)
// and the corresponding distances. Unreached slots hold owner -1 and
// distance Inf. It generalizes network Voronoi partitioning to the
// two-label case needed by the Voronoi/triangle customer-distribution
// model (§VII-F.1): the second label identifies the "triangle" (adjacent
// cell) a node belongs to within its Voronoi cell.
func (g *Graph) MultiSourceTwoNearest(sources []int32) (owner [2][]int32, dist [2][]int64) {
	n := g.N()
	for s := 0; s < 2; s++ {
		owner[s] = make([]int32, n)
		dist[s] = make([]int64, n)
		for i := 0; i < n; i++ {
			owner[s][i] = -1
			dist[s][i] = Inf
		}
	}
	// Label-setting search over (node, source) pairs: each node accepts
	// up to two labels from distinct sources. Heap items are encoded as
	// node*2+slotHint; we use a simple FIFO-of-heap approach with one
	// entry per (node, candidate) pushed lazily.
	type label struct {
		node int32
		src  int32
		d    int64
	}
	h := pq.NewHeap[label](func(a, b label) bool { return a.d < b.d })
	for idx, s := range sources {
		h.Push(label{node: s, src: int32(idx), d: 0})
	}
	accepted := make([]int, n)
	for h.Len() > 0 {
		lb := h.Pop()
		v := lb.node
		if accepted[v] >= 2 {
			continue
		}
		if accepted[v] == 1 && owner[0][v] == lb.src {
			continue // same source cannot fill both slots
		}
		slot := accepted[v]
		owner[slot][v] = lb.src
		dist[slot][v] = lb.d
		accepted[v]++
		g.Neighbors(v, func(u int32, w int64) bool {
			if accepted[u] < 2 {
				h.Push(label{node: u, src: lb.src, d: lb.d + w})
			}
			return true
		})
	}
	return owner, dist
}
