#!/bin/sh
# Tier-1 verification gate: formatting, vet, and the full test suite
# under the race detector (the parallel bench harness depends on the
# audited immutability of shared instances — keep -race in the loop).
set -eu
cd "$(dirname "$0")/.."

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
	echo "gofmt needed on:" >&2
	echo "$fmt" >&2
	exit 1
fi

go vet ./...
go build ./...
go test -race ./...
echo "ci: OK"
