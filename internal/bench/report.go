package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"mcfs/internal/obs"
)

// WriteCSV emits rows in a flat machine-readable form. Beyond the
// original seven columns, every obs work counter gets a column (in enum
// order): algorithm rows report the recorded value (zero included,
// machine-independent), stat-only rows leave the cells empty.
func WriteCSV(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	header := []string{"exp", "x", "xval", "algo", "objective", "runtime_ns", "note"}
	counters := obs.Counters()
	for _, c := range counters {
		header = append(header, c.Name())
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Exp, r.X, strconv.FormatFloat(r.XVal, 'g', -1, 64), string(r.Algo),
			strconv.FormatInt(r.Objective, 10), strconv.FormatInt(int64(r.Runtime), 10), r.Note,
		}
		for _, c := range counters {
			if r.Algo == "" {
				rec = append(rec, "")
				continue
			}
			rec = append(rec, strconv.FormatInt(r.Counters[c.Name()], 10))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMarkdown renders one table per experiment: rows grouped by x
// value, one (objective, runtime) column pair per algorithm. Stat-only
// rows (no algorithm) render as bullet lists. Timeouts appear as
// "(incumbent)*"; infeasible/errored points as their note.
func WriteMarkdown(w io.Writer, rows []Row) error {
	byExp := map[string][]Row{}
	var expOrder []string
	for _, r := range rows {
		if _, ok := byExp[r.Exp]; !ok {
			expOrder = append(expOrder, r.Exp)
		}
		byExp[r.Exp] = append(byExp[r.Exp], r)
	}
	pf := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	for _, exp := range expOrder {
		rs := byExp[exp]
		if err := pf("## %s\n\n", exp); err != nil {
			return err
		}
		if rs[0].Algo == "" {
			for _, r := range rs {
				if err := pf("- **%s**: %s\n", r.X, r.Note); err != nil {
					return err
				}
			}
			if err := pf("\n"); err != nil {
				return err
			}
			continue
		}
		var algos []string
		seen := map[string]bool{}
		for _, r := range rs {
			if a := string(r.Algo); !seen[a] {
				seen[a] = true
				algos = append(algos, a)
			}
		}
		type key struct {
			xv float64
			x  string
		}
		cells := map[key]map[string]Row{}
		var keys []key
		for _, r := range rs {
			k := key{r.XVal, r.X}
			if _, ok := cells[k]; !ok {
				cells[k] = map[string]Row{}
				keys = append(keys, k)
			}
			cells[k][string(r.Algo)] = r
		}
		sort.SliceStable(keys, func(i, j int) bool { return keys[i].xv < keys[j].xv })

		pf("| %s |", rs[0].X)
		for _, a := range algos {
			pf(" %s obj | %s time |", a, a)
		}
		pf("\n|---|")
		for range algos {
			pf("---|---|")
		}
		pf("\n")
		for _, k := range keys {
			label := strconv.FormatFloat(k.xv, 'g', -1, 64)
			if !numericAxis(k.x) {
				label = k.x
			}
			pf("| %s |", label)
			for _, a := range algos {
				r, ok := cells[k][a]
				switch {
				case !ok:
					pf(" – | – |")
				case r.Note == "timeout":
					pf(" (%d)* | >%s |", r.Objective, r.Runtime.Round(time.Millisecond))
				case r.Objective < 0:
					pf(" %s | %s |", r.Note, r.Runtime.Round(time.Microsecond))
				default:
					pf(" %d | %s |", r.Objective, r.Runtime.Round(time.Microsecond))
				}
			}
			if err := pf("\n"); err != nil {
				return err
			}
		}
		if err := pf("\n"); err != nil {
			return err
		}
	}
	return nil
}

func numericAxis(x string) bool {
	switch x {
	case "n", "m", "k", "c", "l%", "avgdeg", "iter":
		return true
	}
	return false
}
