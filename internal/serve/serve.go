// Package serve implements the long-lived assignment service behind
// cmd/mcfsd: an instance is loaded once, a warm Reallocator tracks the
// customer population, and HTTP/JSON endpoints expose queries and
// churn.
//
// The concurrency model is single-writer/many-readers. Reads (/assign,
// /stats, /healthz) are served lock-free from an immutable published
// view swapped through an atomic pointer. Writes (/arrivals,
// /departures, /resolve, /snapshot — anything touching the Reallocator)
// are serialized through one batching goroutine that drains its queue,
// coalesces up to MaxBatch operations into one repair window, publishes
// a fresh view once, and only then releases the waiting requests.
// Request deadlines map onto the Reallocator's context API: each
// operation runs under its request's context (bounded by
// DefaultTimeout), and a cancelled operation leaves the matching stale
// only until the next operation under a live context heals it.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mcfs"
	"mcfs/internal/dynamic"
	"mcfs/internal/metrics"
	"mcfs/internal/obs"
)

// Config assembles a Server.
type Config struct {
	// Instance is the loaded problem instance; required.
	Instance *mcfs.Instance
	// Algorithm is the default /resolve algorithm; empty means WMA.
	Algorithm mcfs.Algorithm
	// DriftFactor is passed to the Reallocator (0 = its default).
	DriftFactor float64
	// MaxBatch caps how many queued operations one repair window
	// coalesces; 0 picks 64.
	MaxBatch int
	// DefaultTimeout bounds each write operation's context when the
	// request itself carries no earlier deadline; 0 picks 5s.
	DefaultTimeout time.Duration
	// Snapshot, when non-nil, restores the dynamic state from a capture
	// instead of performing a fresh full solve.
	Snapshot *mcfs.ReallocatorSnapshot
	// Logger, when non-nil, receives one structured line per request
	// (request id, method, path, status, bytes, duration). Nil disables
	// request logging.
	Logger *slog.Logger

	// SnapshotEvery > 0 enables the periodic snapshot-to-disk policy
	// (snapshotter.go): every interval the engine captures the settled
	// state through the batch loop and persists one generation into
	// SnapshotDir via atomic temp+rename. Requires SnapshotDir.
	SnapshotEvery time.Duration
	// SnapshotDir is the generation directory (created if missing).
	SnapshotDir string
	// SnapshotKeep bounds retained generations; 0 picks 3.
	SnapshotKeep int

	// DriftThreshold > 0 enables the drift-triggered background
	// re-solve (healer.go): when the published objective exceeds
	// DriftThreshold × the drift baseline, a coalesced full re-solve of
	// Config.Algorithm is scheduled through the batch loop, with
	// hysteresis and HealMinInterval backoff. Must exceed 1 when set.
	DriftThreshold float64
	// HealMinInterval is the minimum spacing between completed heals;
	// 0 picks 30s.
	HealMinInterval time.Duration

	// FS and Clock are the durability layer's injectable seams
	// (fsclock.go); nil picks the os/time-backed production versions.
	FS    FS
	Clock Clock
}

// errShutdown is returned to requests that arrive while the server is
// draining.
var errShutdown = errors.New("serve: server is shutting down")

// view is the unit of publication: the immutable assignment plus the
// scalar state the read-only endpoints report.
type view struct {
	pub   *mcfs.PublishedAssignment
	base  int64
	stats mcfs.ReallocatorStats
	// queueDepth is the number of operations still waiting in the writer
	// queue at the moment this view was published — the backlog signal
	// /stats and /metrics report (reads stay lock-free; sampling at
	// publish time is the single-writer-consistent point to take it).
	queueDepth int
}

// endpointNames fixes the catalogue (and report order) of instrumented
// endpoints.
var endpointNames = []string{"assign", "arrivals", "departures", "resolve", "snapshot", "stats"}

// Server is the serving engine. Create one with New, mount Handler on
// an http.Server, and Close it to drain the writer goroutine.
type Server struct {
	cfg   Config
	r     *mcfs.Reallocator
	view  atomic.Pointer[view]
	fs    FS
	clock Clock

	ops  chan op
	quit chan struct{}
	wg   sync.WaitGroup
	// baseCtx parents the background loops' operation contexts and is
	// cancelled by Close before joining them, so a loop blocked on an
	// op reply never deadlocks the shutdown.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	batches    atomic.Int64 // repair windows run
	batchedOps atomic.Int64 // operations processed inside them

	// Durability state. snapGen is the last persisted snapshot
	// generation; healArmed is the hysteresis latch, owned by the
	// writer goroutine (only maybeScheduleHeal touches it).
	snapGen          atomic.Int64
	lastSnapshotUnix atomic.Int64
	lastHealUnix     atomic.Int64
	healKick         chan struct{}
	healArmed        bool

	// rec accumulates the process-lifetime solver work counters: every
	// operation context is wrapped with it before reaching the
	// Reallocator, so the searches underneath report here (/metrics,
	// expvar in cmd/mcfsd).
	rec *obs.Recorder

	reqID atomic.Int64 // per-request id sequence for the request log

	mu    sync.Mutex
	lat   map[string]*metrics.Histogram
	start time.Time

	closeOnce sync.Once
}

// New loads the instance into a warm Reallocator (restoring from
// cfg.Snapshot when given), publishes the initial view, and starts the
// writer goroutine.
func New(cfg Config) (*Server, error) {
	if cfg.Instance == nil {
		return nil, errors.New("serve: Config.Instance is required")
	}
	if cfg.Algorithm == "" {
		cfg.Algorithm = mcfs.AlgorithmWMA
	}
	if !cfg.Algorithm.Valid() {
		return nil, fmt.Errorf("serve: unknown algorithm %q", cfg.Algorithm)
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 5 * time.Second
	}
	if cfg.SnapshotEvery > 0 && cfg.SnapshotDir == "" {
		return nil, errors.New("serve: Config.SnapshotEvery requires Config.SnapshotDir")
	}
	if cfg.SnapshotKeep <= 0 {
		cfg.SnapshotKeep = 3
	}
	if cfg.DriftThreshold != 0 && cfg.DriftThreshold <= 1 {
		return nil, fmt.Errorf("serve: Config.DriftThreshold %v must exceed 1 (it is a ratio to the drift baseline)", cfg.DriftThreshold)
	}
	if cfg.HealMinInterval <= 0 {
		cfg.HealMinInterval = 30 * time.Second
	}
	if cfg.FS == nil {
		cfg.FS = osFS{}
	}
	if cfg.Clock == nil {
		cfg.Clock = realClock{}
	}
	var r *mcfs.Reallocator
	var err error
	if cfg.Snapshot != nil {
		r, err = mcfs.RestoreReallocator(cfg.Instance, cfg.Snapshot, cfg.DriftFactor)
	} else {
		r, err = mcfs.NewReallocator(cfg.Instance, cfg.DriftFactor)
	}
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		r:         r,
		fs:        cfg.FS,
		clock:     cfg.Clock,
		ops:       make(chan op, 4*cfg.MaxBatch),
		quit:      make(chan struct{}),
		healKick:  make(chan struct{}, 1),
		healArmed: true,
		lat:       make(map[string]*metrics.Histogram, len(endpointNames)),
		rec:       obs.New(),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	//lint:ignore determinism serving uptime is operational telemetry, never solver input
	s.start = time.Now()
	for _, name := range endpointNames {
		s.lat[name] = &metrics.Histogram{}
	}
	if cfg.SnapshotEvery > 0 {
		if err := s.fs.MkdirAll(cfg.SnapshotDir, 0o755); err != nil {
			s.baseCancel()
			return nil, fmt.Errorf("serve: snapshot dir: %w", err)
		}
		// Resume the generation sequence after the newest existing file
		// so a restore into the same directory never collides.
		gens, err := listGenerations(s.fs, cfg.SnapshotDir)
		if err == nil && len(gens) > 0 {
			s.snapGen.Store(gens[len(gens)-1])
		}
	}
	if err := s.publish(); err != nil {
		s.baseCancel()
		return nil, err
	}
	s.wg.Add(1)
	//lint:ignore nakedgoroutine the writer goroutine is joined by Close via s.wg
	go s.loop()
	if cfg.SnapshotEvery > 0 {
		s.wg.Add(1)
		//lint:ignore nakedgoroutine the snapshot ticker goroutine is joined by Close via s.wg
		go s.snapshotLoop()
	}
	if cfg.DriftThreshold > 0 {
		s.wg.Add(1)
		//lint:ignore nakedgoroutine the heal goroutine is joined by Close via s.wg
		go s.healLoop()
	}
	return s, nil
}

// Close stops the writer goroutine and waits for it. Queued operations
// that were not yet picked up are failed with a shutdown error. The
// HTTP listener (owned by the caller) should be shut down first.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		// Unblock any background loop waiting on an op reply the writer
		// will never send, then stop all loops and join them.
		s.baseCancel()
		close(s.quit)
		s.wg.Wait()
		// Fail whatever is still queued so no request waits forever.
		for {
			select {
			case o := <-s.ops:
				o.reply <- opResult{err: errShutdown}
			default:
				return
			}
		}
	})
}

// View returns the currently published assignment (never nil after a
// successful New).
func (s *Server) View() *mcfs.PublishedAssignment { return s.view.Load().pub }

// Objective returns the published objective.
func (s *Server) Objective() int64 { return s.View().Objective }

// Recorder exposes the server's work-counter recorder (for expvar
// publication in cmd/mcfsd). Counters only; never nil.
func (s *Server) Recorder() *obs.Recorder { return s.rec }

// publish materializes the Reallocator's state and swaps it in. Runs on
// the writer goroutine (and once during New, before the loop starts).
func (s *Server) publish() error {
	s.r.SetContext(obs.WithRecorder(context.Background(), s.rec))
	pub, err := s.r.Publish()
	if err != nil {
		return err
	}
	s.view.Store(&view{pub: pub, base: s.r.BaseObjective(), stats: s.r.Stats(), queueDepth: len(s.ops)})
	return nil
}

// --- writer goroutine -------------------------------------------------------

type opKind int

const (
	opArrivals opKind = iota
	opDepartures
	opResolve
	opSnapshot
)

type op struct {
	kind    opKind
	ctx     context.Context
	nodes   []int32
	handles []int
	algo    mcfs.Algorithm
	reply   chan opResult
}

type opResult struct {
	handles   []int
	snapshot  *mcfs.ReallocatorSnapshot
	note      string
	objective int64
	err       error
}

// loop is the single writer: it blocks for one operation, drains the
// queue up to MaxBatch (coalescing concurrent churn into one repair
// window), processes the batch against the Reallocator, publishes once,
// and then releases every waiter.
func (s *Server) loop() {
	defer s.wg.Done()
	for {
		var first op
		select {
		case <-s.quit:
			return
		case first = <-s.ops:
		}
		batch := []op{first}
		for len(batch) < s.cfg.MaxBatch {
			select {
			case o := <-s.ops:
				batch = append(batch, o)
			default:
				goto full
			}
		}
	full:
		s.process(batch)
	}
}

// process applies one batch, publishes, and replies.
func (s *Server) process(batch []op) {
	results := make([]opResult, len(batch))
	for i, o := range batch {
		// Bind the request context (deadline/cancellation) and the
		// server-lifetime recorder together: the solver work each
		// operation triggers lands in the process counters.
		o.ctx = obs.WithRecorder(o.ctx, s.rec)
		s.r.SetContext(o.ctx)
		results[i] = s.apply(o)
	}
	pubErr := s.publish()
	s.batches.Add(1)
	s.batchedOps.Add(int64(len(batch)))
	if pubErr == nil {
		s.maybeScheduleHeal()
	}
	obj := s.Objective()
	for i, o := range batch {
		res := results[i]
		if res.err == nil && pubErr != nil {
			res.err = pubErr
		}
		res.objective = obj
		o.reply <- res // buffered, never blocks
	}
}

// apply runs one operation against the Reallocator under its request
// context (already bound by process).
func (s *Server) apply(o op) opResult {
	switch o.kind {
	case opArrivals:
		handles := make([]int, 0, len(o.nodes))
		for _, node := range o.nodes {
			h, err := s.r.AddCustomer(node)
			if err != nil {
				// Admit all or nothing: roll back the part of this request
				// that already landed.
				for _, added := range handles {
					_ = s.r.RemoveCustomer(added)
				}
				return opResult{err: err}
			}
			handles = append(handles, h)
		}
		return opResult{handles: handles}
	case opDepartures:
		removed := make([]int, 0, len(o.handles))
		for _, h := range o.handles {
			if err := s.r.RemoveCustomer(h); err != nil {
				return opResult{err: fmt.Errorf("after removing %d of %d: %w", len(removed), len(o.handles), err)}
			}
			removed = append(removed, h)
		}
		return opResult{handles: removed}
	case opResolve:
		sol, note, err := o.algo.Solve(o.ctx, s.cfg.Instance)
		if err != nil {
			return opResult{err: err}
		}
		if err := s.r.AdoptSelection(sol.Selected); err != nil {
			return opResult{err: err}
		}
		return opResult{note: note}
	case opSnapshot:
		snap, err := s.r.Snapshot()
		return opResult{snapshot: snap, err: err}
	}
	return opResult{err: fmt.Errorf("serve: unknown operation kind %d", o.kind)}
}

// do enqueues an operation and waits for its result or the context.
func (s *Server) do(ctx context.Context, o op) (opResult, error) {
	o.ctx = ctx
	o.reply = make(chan opResult, 1)
	select {
	case s.ops <- o:
	case <-s.quit:
		return opResult{}, errShutdown
	case <-ctx.Done():
		return opResult{}, ctx.Err()
	}
	select {
	case res := <-o.reply:
		return res, res.err
	case <-ctx.Done():
		return opResult{}, ctx.Err()
	}
}

// --- HTTP layer -------------------------------------------------------------

// errorBody is the machine-readable error payload: code is a stable
// slug for programmatic handling, error the human-readable detail.
type errorBody struct {
	Code  string `json:"code"`
	Error string `json:"error"`
}

// statusOf maps the package's sentinel taxonomy onto HTTP.
func statusOf(err error) (int, string) {
	switch {
	case errors.Is(err, mcfs.ErrInfeasible):
		return http.StatusUnprocessableEntity, "infeasible"
	case errors.Is(err, mcfs.ErrTooLarge):
		return http.StatusRequestEntityTooLarge, "too_large"
	case errors.Is(err, mcfs.ErrTimeout), errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline"
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, "canceled"
	case errors.Is(err, errShutdown):
		return http.StatusServiceUnavailable, "shutting_down"
	case errors.Is(err, dynamic.ErrUnknownHandle):
		return http.StatusNotFound, "unknown_handle"
	case errors.Is(err, dynamic.ErrBadNode):
		return http.StatusBadRequest, "bad_node"
	default:
		return http.StatusBadRequest, "bad_request"
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status, code := statusOf(err)
	writeJSON(w, status, errorBody{Code: code, Error: err.Error()})
}

// opCtx derives the operation context: the request's own context,
// bounded by DefaultTimeout unless the request already carries an
// earlier deadline.
func (s *Server) opCtx(r *http.Request) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if dl, ok := ctx.Deadline(); ok {
		if time.Until(dl) <= s.cfg.DefaultTimeout {
			return context.WithCancel(ctx)
		}
	}
	return context.WithTimeout(ctx, s.cfg.DefaultTimeout)
}

// instrument wraps a handler with latency recording under name.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		//lint:ignore determinism endpoint latency is operational telemetry, never solver input
		start := time.Now()
		h(w, r)
		elapsed := time.Since(start)
		s.mu.Lock()
		s.lat[name].Observe(elapsed)
		s.mu.Unlock()
	}
}

// statusWriter captures the response status and size for the request
// log without altering the response.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += n
	return n, err
}

// logRequests wraps the mux with one structured slog line per request,
// tagged with a monotonically increasing request id that is also echoed
// back as the X-Request-Id response header.
func (s *Server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := s.reqID.Add(1)
		w.Header().Set("X-Request-Id", strconv.FormatInt(id, 10))
		sw := &statusWriter{ResponseWriter: w}
		//lint:ignore determinism request latency is operational telemetry, never solver input
		start := time.Now()
		next.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		s.cfg.Logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.Int64("id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", status),
			slog.Int("bytes", sw.bytes),
			slog.Duration("duration", time.Since(start)),
		)
	})
}

// Handler returns the endpoint mux (wrapped with request logging when
// Config.Logger is set).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /assign", s.instrument("assign", s.handleAssign))
	mux.HandleFunc("POST /arrivals", s.instrument("arrivals", s.handleArrivals))
	mux.HandleFunc("POST /departures", s.instrument("departures", s.handleDepartures))
	mux.HandleFunc("POST /resolve", s.instrument("resolve", s.handleResolve))
	mux.HandleFunc("GET /snapshot", s.instrument("snapshot", s.handleSnapshot))
	mux.HandleFunc("GET /stats", s.instrument("stats", s.handleStats))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cfg.Logger != nil {
		return s.logRequests(mux)
	}
	return mux
}

// AssignReply answers GET /assign.
type AssignReply struct {
	Customer     int   `json:"customer"`
	Node         int32 `json:"node"`
	Facility     int   `json:"facility"`
	FacilityNode int32 `json:"facility_node"`
}

func (s *Server) handleAssign(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("customer")
	h, err := strconv.Atoi(q)
	if err != nil {
		writeError(w, fmt.Errorf("bad customer handle %q: %w", q, err))
		return
	}
	node, fac, ok := s.View().Lookup(h)
	if !ok {
		writeError(w, fmt.Errorf("%w: %d", dynamic.ErrUnknownHandle, h))
		return
	}
	writeJSON(w, http.StatusOK, AssignReply{
		Customer:     h,
		Node:         node,
		Facility:     fac,
		FacilityNode: s.cfg.Instance.Facilities[fac].Node,
	})
}

// ArrivalsRequest is the POST /arrivals body.
type ArrivalsRequest struct {
	Nodes []int32 `json:"nodes"`
}

// ChurnReply answers POST /arrivals and POST /departures.
type ChurnReply struct {
	Handles   []int `json:"handles"`
	Objective int64 `json:"objective"`
}

func (s *Server) handleArrivals(w http.ResponseWriter, r *http.Request) {
	var req ArrivalsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("bad arrivals body: %w", err))
		return
	}
	if len(req.Nodes) == 0 {
		writeError(w, errors.New("arrivals body needs a non-empty nodes list"))
		return
	}
	ctx, cancel := s.opCtx(r)
	defer cancel()
	res, err := s.do(ctx, op{kind: opArrivals, nodes: req.Nodes})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ChurnReply{Handles: res.handles, Objective: res.objective})
}

// DeparturesRequest is the POST /departures body.
type DeparturesRequest struct {
	Handles []int `json:"handles"`
}

func (s *Server) handleDepartures(w http.ResponseWriter, r *http.Request) {
	var req DeparturesRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("bad departures body: %w", err))
		return
	}
	if len(req.Handles) == 0 {
		writeError(w, errors.New("departures body needs a non-empty handles list"))
		return
	}
	ctx, cancel := s.opCtx(r)
	defer cancel()
	res, err := s.do(ctx, op{kind: opDepartures, handles: req.Handles})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ChurnReply{Handles: res.handles, Objective: res.objective})
}

// ResolveRequest is the POST /resolve body; an empty algorithm picks
// the server's configured default.
type ResolveRequest struct {
	Algorithm string `json:"algorithm"`
}

// ResolveReply answers POST /resolve.
type ResolveReply struct {
	Algorithm string `json:"algorithm"`
	Note      string `json:"note,omitempty"`
	Objective int64  `json:"objective"`
}

func (s *Server) handleResolve(w http.ResponseWriter, r *http.Request) {
	var req ResolveRequest
	// An empty body means "defaults".
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, fmt.Errorf("bad resolve body: %w", err))
		return
	}
	algo := s.cfg.Algorithm
	if req.Algorithm != "" {
		var err error
		algo, err = mcfs.ParseAlgorithm(req.Algorithm)
		if err != nil {
			writeError(w, err)
			return
		}
	}
	ctx, cancel := s.opCtx(r)
	defer cancel()
	res, err := s.do(ctx, op{kind: opResolve, algo: algo})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ResolveReply{Algorithm: algo.String(), Note: res.note, Objective: res.objective})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.opCtx(r)
	defer cancel()
	res, err := s.do(ctx, op{kind: opSnapshot})
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = res.snapshot.Write(w)
}

// HealthzReply answers GET /healthz: liveness plus the build identity
// needed to tell deployed versions apart.
type HealthzReply struct {
	Status        string  `json:"status"`
	GoVersion     string  `json:"go_version"`
	VCSRevision   string  `json:"vcs_revision"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// buildRevision resolves the VCS revision stamped into the binary by
// the Go toolchain, "unknown" when the build carries no VCS info (go
// test binaries, source-dir builds).
func buildRevision() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range info.Settings {
			if kv.Key == "vcs.revision" {
				return kv.Value
			}
		}
	}
	return "unknown"
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthzReply{
		Status:        "ok",
		GoVersion:     runtime.Version(),
		VCSRevision:   buildRevision(),
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}

// handleMetrics renders the Prometheus text exposition (format 0.0.4):
// the solver work counters accumulated across all operations, the batch
// coalescing counters, the published queue depth, and every
// instrumented endpoint's latency histogram (seconds, cumulative le
// buckets from metrics.Histogram.Buckets).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.rec.WritePrometheus(w, "mcfs")

	fmt.Fprintf(w, "# HELP mcfsd_batches_total repair windows run by the writer loop\n# TYPE mcfsd_batches_total counter\nmcfsd_batches_total %d\n", s.batches.Load())
	fmt.Fprintf(w, "# HELP mcfsd_batched_ops_total operations coalesced into repair windows\n# TYPE mcfsd_batched_ops_total counter\nmcfsd_batched_ops_total %d\n", s.batchedOps.Load())
	v := s.view.Load()
	fmt.Fprintf(w, "# HELP mcfsd_queue_depth writer-queue backlog at the last publish\n# TYPE mcfsd_queue_depth gauge\nmcfsd_queue_depth %d\n", v.queueDepth)
	fmt.Fprintf(w, "# HELP mcfsd_customers live customers in the published assignment\n# TYPE mcfsd_customers gauge\nmcfsd_customers %d\n", v.pub.Customers())
	fmt.Fprintf(w, "# HELP mcfsd_objective published total assignment distance\n# TYPE mcfsd_objective gauge\nmcfsd_objective %d\n", v.pub.Objective)
	fmt.Fprintf(w, "# HELP mcfsd_uptime_seconds seconds since the server started\n# TYPE mcfsd_uptime_seconds gauge\nmcfsd_uptime_seconds %.3f\n", time.Since(s.start).Seconds())
	fmt.Fprintf(w, "# HELP mcfsd_snapshot_generation newest persisted snapshot generation (0 = none yet)\n# TYPE mcfsd_snapshot_generation gauge\nmcfsd_snapshot_generation %d\n", s.snapGen.Load())
	fmt.Fprintf(w, "# HELP mcfsd_last_snapshot_timestamp_seconds unix time of the last persisted snapshot (0 = never)\n# TYPE mcfsd_last_snapshot_timestamp_seconds gauge\nmcfsd_last_snapshot_timestamp_seconds %d\n", s.lastSnapshotUnix.Load())
	fmt.Fprintf(w, "# HELP mcfsd_last_heal_timestamp_seconds unix time of the last completed drift heal (0 = never)\n# TYPE mcfsd_last_heal_timestamp_seconds gauge\nmcfsd_last_heal_timestamp_seconds %d\n", s.lastHealUnix.Load())

	fmt.Fprintf(w, "# HELP mcfsd_request_duration_seconds request latency by endpoint\n# TYPE mcfsd_request_duration_seconds histogram\n")
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, name := range endpointNames {
		h := s.lat[name]
		for _, b := range h.Buckets() {
			fmt.Fprintf(w, "mcfsd_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n",
				name, strconv.FormatFloat(float64(b.UpperNS)/1e9, 'g', -1, 64), b.Cumulative)
		}
		fmt.Fprintf(w, "mcfsd_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, h.Count())
		fmt.Fprintf(w, "mcfsd_request_duration_seconds_sum{endpoint=%q} %s\n",
			name, strconv.FormatFloat(float64(h.Sum())/1e9, 'g', -1, 64))
		fmt.Fprintf(w, "mcfsd_request_duration_seconds_count{endpoint=%q} %d\n", name, h.Count())
	}
}

// EndpointStats reports one endpoint's latency distribution.
type EndpointStats struct {
	Count  int64 `json:"count"`
	MeanNS int64 `json:"mean_ns"`
	P50NS  int64 `json:"p50_ns"`
	P99NS  int64 `json:"p99_ns"`
	MaxNS  int64 `json:"max_ns"`
}

// StatsReply answers GET /stats.
type StatsReply struct {
	UptimeSeconds float64               `json:"uptime_seconds"`
	Customers     int                   `json:"customers"`
	Objective     int64                 `json:"objective"`
	BaseObjective int64                 `json:"base_objective"`
	Drift         float64               `json:"drift"`
	Reallocator   mcfs.ReallocatorStats `json:"reallocator"`
	Batches       int64                 `json:"batches"`
	BatchedOps    int64                 `json:"batched_ops"`
	QueueDepth    int                   `json:"queue_depth"`
	// Durability & self-healing (zero when the policies are disabled).
	Snapshots          int64                    `json:"snapshots"`
	SnapshotFailures   int64                    `json:"snapshot_failures"`
	SnapshotGeneration int64                    `json:"snapshot_generation"`
	LastSnapshotUnix   int64                    `json:"last_snapshot_unix"`
	HealTriggers       int64                    `json:"heal_triggers"`
	Heals              int64                    `json:"heals"`
	HealFailures       int64                    `json:"heal_failures"`
	LastHealUnix       int64                    `json:"last_heal_unix"`
	Endpoints          map[string]EndpointStats `json:"endpoints"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	v := s.view.Load()
	drift := 0.0
	if v.base > 0 {
		drift = float64(v.pub.Objective) / float64(v.base)
	}
	reply := StatsReply{
		Customers:          v.pub.Customers(),
		Objective:          v.pub.Objective,
		BaseObjective:      v.base,
		Drift:              drift,
		Reallocator:        v.stats,
		Batches:            s.batches.Load(),
		BatchedOps:         s.batchedOps.Load(),
		QueueDepth:         v.queueDepth,
		Snapshots:          s.rec.Counter(obs.ServeSnapshots),
		SnapshotFailures:   s.rec.Counter(obs.ServeSnapshotFailures),
		SnapshotGeneration: s.snapGen.Load(),
		LastSnapshotUnix:   s.lastSnapshotUnix.Load(),
		HealTriggers:       s.rec.Counter(obs.ServeHealTriggers),
		Heals:              s.rec.Counter(obs.ServeHeals),
		HealFailures:       s.rec.Counter(obs.ServeHealFailures),
		LastHealUnix:       s.lastHealUnix.Load(),
		Endpoints:          make(map[string]EndpointStats, len(endpointNames)),
	}
	reply.UptimeSeconds = time.Since(s.start).Seconds()
	s.mu.Lock()
	for _, name := range endpointNames {
		h := s.lat[name]
		reply.Endpoints[name] = EndpointStats{
			Count:  h.Count(),
			MeanNS: int64(h.Mean()),
			P50NS:  int64(h.Quantile(0.5)),
			P99NS:  int64(h.Quantile(0.99)),
			MaxNS:  int64(h.Max()),
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, reply)
}
