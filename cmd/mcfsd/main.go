// Command mcfsd is the long-lived assignment service: it loads an MCFS
// instance once, performs one warm solve (or restores a snapshot), and
// serves assignment queries and population churn over HTTP/JSON.
//
//	mcfsd -in inst.mcfs -addr 127.0.0.1:8080
//	mcfsd -in inst.mcfs -restore snap.json
//
// Endpoints:
//
//	GET  /assign?customer=H   resolve a customer handle to its facility
//	POST /arrivals            {"nodes":[...]} admit customers, returns handles
//	POST /departures          {"handles":[...]} remove customers
//	POST /resolve             {"algorithm":"wma"} full re-solve + adopt
//	GET  /snapshot            restartable JSON capture of the dynamic state
//	GET  /stats               objective, drift, per-endpoint latency
//	GET  /healthz             liveness probe
//
// The daemon prints "mcfsd: listening on http://ADDR" once the socket
// is bound (use -addr 127.0.0.1:0 to pick a free port) and drains
// gracefully on SIGINT/SIGTERM: the listener closes first, then the
// writer goroutine finishes its batch and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mcfs"
	"mcfs/internal/serve"
)

func main() {
	var (
		in        = flag.String("in", "", "instance file (required)")
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address (host:0 picks a free port)")
		algo      = flag.String("algo", "wma", "default algorithm for POST /resolve")
		drift     = flag.Float64("drift", 0, "reallocator drift factor (0 = default 1.5, negative disables)")
		restore   = flag.String("restore", "", "restore dynamic state from a snapshot file")
		batch     = flag.Int("batch", 0, "max operations coalesced per repair window (0 = default)")
		opTimeout = flag.Duration("optimeout", 0, "per-operation deadline (0 = default 5s)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "mcfsd: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	algorithm, err := mcfs.ParseAlgorithm(*algo)
	if err != nil {
		fatal(err)
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	inst, err := mcfs.ReadInstance(f)
	//lint:ignore closecheck read path: the file is only read, and a parse error dominates any close error
	f.Close()
	if err != nil {
		fatal(err)
	}

	var snap *mcfs.ReallocatorSnapshot
	if *restore != "" {
		sf, err := os.Open(*restore)
		if err != nil {
			fatal(err)
		}
		snap, err = mcfs.ReadReallocatorSnapshot(sf)
		//lint:ignore closecheck read path: the file is only read, and a parse error dominates any close error
		sf.Close()
		if err != nil {
			fatal(err)
		}
	}

	engine, err := serve.New(serve.Config{
		Instance:       inst,
		Algorithm:      algorithm,
		DriftFactor:    *drift,
		MaxBatch:       *batch,
		DefaultTimeout: *opTimeout,
		Snapshot:       snap,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("mcfsd: listening on http://%s (objective %d, %d customers)\n",
		ln.Addr(), engine.Objective(), engine.View().Customers())

	srv := &http.Server{Handler: engine.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		fmt.Printf("mcfsd: %s, shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "mcfsd: shutdown:", err)
		}
		cancel()
		<-errCh // Serve has returned ErrServerClosed
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			engine.Close()
			fatal(err)
		}
	}
	engine.Close()
	fmt.Println("mcfsd: bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcfsd:", err)
	os.Exit(1)
}
