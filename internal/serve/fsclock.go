// Injectable filesystem and clock seams for the durability layer.
//
// The periodic snapshot policy and the drift healer are exactly the
// kind of code that only misbehaves when the world does: a full disk
// mid-write, a rename that fails, a crash between temp file and rename,
// a ticker that never fires. Production uses the thin os/time-backed
// implementations below; the fault-injection suite (fault_test.go)
// substitutes doubles that fail on demand, write short, tear files, and
// freeze time — so every failure path in snapshotter.go and healer.go
// is exercised deterministically under -race.
package serve

import (
	"io"
	"os"
	"time"
)

// FS is the filesystem surface the snapshot persister needs. The
// contract mirrors the os package; implementations must be safe for use
// from the snapshot goroutine while tests read the same directory.
type FS interface {
	MkdirAll(dir string, perm os.FileMode) error
	// CreateTemp creates a new temp file in dir (pattern as in
	// os.CreateTemp); the persister writes, syncs, closes, then renames
	// it over the final name.
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadDir(dir string) ([]os.DirEntry, error)
	ReadFile(name string) ([]byte, error)
}

// File is the writable handle CreateTemp returns. Sync is called before
// Close so a rename never publishes data the kernel has not accepted.
type File interface {
	io.Writer
	Sync() error
	Close() error
	Name() string
}

// osFS is the production FS: straight delegation to the os package.
type osFS struct{}

func (osFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error      { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                  { return os.Remove(name) }
func (osFS) ReadDir(dir string) ([]os.DirEntry, error) { return os.ReadDir(dir) }
func (osFS) ReadFile(name string) ([]byte, error)      { return os.ReadFile(name) }

// Clock is the time surface the background loops need: a wall reading
// for backoff bookkeeping and tickers for the periodic policies. Tests
// substitute a manual clock whose ticks fire only on demand (including
// never — the frozen-clock case).
type Clock interface {
	Now() time.Time
	NewTicker(d time.Duration) Ticker
}

// Ticker abstracts time.Ticker behind an accessor (time.Ticker.C is a
// struct field, which an interface cannot express).
type Ticker interface {
	C() <-chan time.Time
	Stop()
}

// realClock is the production Clock.
type realClock struct{}

//lint:ignore determinism serving wall clock is operational telemetry, never solver input
func (realClock) Now() time.Time { return time.Now() }

func (realClock) NewTicker(d time.Duration) Ticker { return realTicker{time.NewTicker(d)} }

type realTicker struct{ t *time.Ticker }

func (rt realTicker) C() <-chan time.Time { return rt.t.C }
func (rt realTicker) Stop()               { rt.t.Stop() }
