// Package dynamic is the fixture stand-in for the module's dynamic
// layer (see testdata/singlewriter): a Reallocator with mutating and
// read-only methods for summary classification.
package dynamic

// Reallocator mirrors the real one's shape.
type Reallocator struct {
	ctx   int
	state []int
}

// SetContext writes the receiver: mutating.
func (r *Reallocator) SetContext(c int) { r.ctx = c }

// AddCustomer writes the receiver: mutating.
func (r *Reallocator) AddCustomer(n int) int {
	r.state = append(r.state, n)
	return len(r.state)
}

// Stats only reads: not mutating.
func (r *Reallocator) Stats() int { return len(r.state) }
