package lint

import (
	"path"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadFixture parses testdata/<name> as a single package and relabels
// it with a virtual module-relative directory, so path-scoped rules see
// the fixture as if it lived inside the module.
func loadFixture(t *testing.T, name, virtualDir string) *Package {
	t.Helper()
	pkgs, err := Load(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: got %d packages, want 1", name, len(pkgs))
	}
	pkg := pkgs[0]
	pkg.Dir = virtualDir
	for _, f := range pkg.Files {
		f.Path = path.Join(virtualDir, path.Base(f.Path))
	}
	return pkg
}

var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// wants extracts the `// want "substring"` expectations of a fixture,
// keyed by file path and line.
type wantKey struct {
	path string
	line int
}

func collectWants(t *testing.T, pkg *Package) map[wantKey]string {
	t.Helper()
	wants := make(map[wantKey]string)
	for _, f := range pkg.Files {
		for _, cg := range f.AST.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := f.Fset.Position(c.Pos()).Line
				wants[wantKey{f.Path, line}] = m[1]
			}
		}
	}
	return wants
}

// checkFixture runs the rules over the fixture and matches findings
// against the want comments, both ways.
func checkFixture(t *testing.T, pkg *Package, rules []Rule) {
	t.Helper()
	wants := collectWants(t, pkg)
	matched := make(map[wantKey]bool)
	for _, fd := range Run([]*Package{pkg}, rules) {
		key := wantKey{fd.Path, fd.Line}
		want, ok := wants[key]
		if !ok {
			t.Errorf("unexpected finding: %s", fd)
			continue
		}
		if !strings.Contains(fd.Rule+": "+fd.Message, want) {
			t.Errorf("finding at %s:%d does not match want %q: %s", fd.Path, fd.Line, want, fd)
			continue
		}
		matched[key] = true
	}
	for key := range wants {
		if !matched[key] {
			t.Errorf("missing finding at %s:%d (want %q)", key.path, key.line, wants[key])
		}
	}
}

func TestCtxCheckpointRule(t *testing.T) {
	pkg := loadFixture(t, "ctxcheckpoint", "internal/solver")
	checkFixture(t, pkg, []Rule{CtxCheckpoint{}})
}

func TestCtxCheckpointOutOfScope(t *testing.T) {
	pkg := loadFixture(t, "ctxcheckpoint", "internal/render")
	if got := Run([]*Package{pkg}, []Rule{CtxCheckpoint{}}); len(got) != 0 {
		t.Errorf("rule fired outside its package scope: %v", got)
	}
}

func TestAPIParityRule(t *testing.T) {
	pkg := loadFixture(t, "apiparity", ".")
	checkFixture(t, pkg, []Rule{APIParity{}})
}

func TestAPIParityOutOfScope(t *testing.T) {
	pkg := loadFixture(t, "apiparity", "internal/core")
	if got := Run([]*Package{pkg}, []Rule{APIParity{}}); len(got) != 0 {
		t.Errorf("rule fired outside the root package: %v", got)
	}
}

func TestDeterminismRule(t *testing.T) {
	pkg := loadFixture(t, "determinism", "internal/core")
	checkFixture(t, pkg, []Rule{Determinism{}})
}

func TestDeterminismBenchExemption(t *testing.T) {
	pkg := loadFixture(t, "determinismbench", "internal/bench")
	if got := Run([]*Package{pkg}, []Rule{Determinism{}}); len(got) != 0 {
		t.Errorf("time.Now flagged in internal/bench, which is exempt: %v", got)
	}
}

func TestCloseCheckRule(t *testing.T) {
	pkg := loadFixture(t, "closecheck", "cmd/fixture")
	checkFixture(t, pkg, []Rule{CloseCheck{}})
}

func TestCloseCheckOutOfScope(t *testing.T) {
	pkg := loadFixture(t, "closecheck", "internal/data")
	if got := Run([]*Package{pkg}, []Rule{CloseCheck{}}); len(got) != 0 {
		t.Errorf("rule fired outside cmd/: %v", got)
	}
}

func TestNakedGoroutineRule(t *testing.T) {
	pkg := loadFixture(t, "nakedgoroutine", "internal/util")
	checkFixture(t, pkg, []Rule{NakedGoroutine{}})
}

func TestNakedGoroutineParallelExemption(t *testing.T) {
	pkg := loadFixture(t, "parallelexempt", "internal/bench")
	if got := Run([]*Package{pkg}, []Rule{NakedGoroutine{}}); len(got) != 0 {
		t.Errorf("internal/bench/parallel.go must be exempt: %v", got)
	}
}

// TestDirectiveHygiene covers the lint-directive pseudo-rule: stale,
// malformed, and unknown //lint: comments are findings. Expectations
// are inline here because the directive itself occupies the line a want
// comment would use.
func TestDirectiveHygiene(t *testing.T) {
	pkg := loadFixture(t, "directives", "internal/x")
	got := Run([]*Package{pkg}, AllRules())
	want := []struct {
		line int
		frag string
	}{
		{7, "unused //lint:ignore"},
		{10, `unknown rule "nosuchrule"`},
		{13, "needs a rule list and a reason"},
		{16, `unknown lint directive "lint:frobnicate"`},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d findings, want %d: %v", len(got), len(want), got)
	}
	for i, w := range want {
		if got[i].Line != w.line || got[i].Rule != directiveRule || !strings.Contains(got[i].Message, w.frag) {
			t.Errorf("finding %d = %s; want line %d containing %q", i, got[i], w.line, w.frag)
		}
	}
}

// TestDirectiveUnusedSkippedOnPartialRun: a filtered run cannot tell a
// stale directive from one whose rule was not executed, so the unused
// check must stay quiet.
func TestDirectiveUnusedSkippedOnPartialRun(t *testing.T) {
	pkg := loadFixture(t, "nakedgoroutine", "internal/util")
	for _, fd := range Run([]*Package{pkg}, []Rule{CtxCheckpoint{}}) {
		if strings.Contains(fd.Message, "unused") {
			t.Errorf("unused-directive finding on a partial run: %s", fd)
		}
	}
}

func TestFindingString(t *testing.T) {
	fd := Finding{Path: "cmd/x/main.go", Line: 12, Col: 3, Rule: "closecheck", Message: "boom"}
	if got, want := fd.String(), "cmd/x/main.go:12: closecheck: boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestModuleClean is the gate the CI step relies on: the real module,
// under every rule, has zero findings. Any new violation fails this
// test before it fails CI.
func TestModuleClean(t *testing.T) {
	pkgs, err := Load("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("loaded only %d packages from the module root; the loader is missing directories", len(pkgs))
	}
	for _, fd := range Run(pkgs, AllRules()) {
		t.Errorf("module not lint-clean: %s", fd)
	}
}

// TestLoadPattern: non-recursive and prefixed patterns resolve against
// the module root with module-relative paths.
func TestLoadPattern(t *testing.T) {
	pkgs, err := Load("../..", "cmd/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("cmd/... matched nothing")
	}
	for _, p := range pkgs {
		if !strings.HasPrefix(p.Dir, "cmd") {
			t.Errorf("pattern cmd/... loaded %s", p.Dir)
		}
		for _, f := range p.Files {
			if !strings.HasPrefix(f.Path, "cmd/") {
				t.Errorf("file path %s not module-relative", f.Path)
			}
		}
	}
}
