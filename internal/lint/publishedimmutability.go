package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PublishedImmutability enforces the serving layer's read-path contract
// (DESIGN.md §12): a *dynamic.Published (aliased as
// mcfs.PublishedAssignment) is an immutable snapshot the writer
// goroutine swaps through an atomic.Pointer, and any number of reader
// goroutines resolve queries against it without locks. That only works
// if nobody writes through one — so the rule reports every field
// write, element write, pointer store, or copy() whose destination is
// reachable from a Published value or from anything loaded out of an
// atomic.Pointer (the published-view convention: a Load hands back a
// snapshot someone else may be reading concurrently).
//
// The rule runs on the same flow-sensitive provenance engine as
// shared-instance-mutation, so construction sites stay silent: inside
// dynamic.Publish the view is born from a composite literal, the
// strong update marks it owned, and filling its slices before return
// is not a finding. A value copy of a view owns its scalar fields but
// not the backing arrays (element writes through the copy still fire).
// The rule is typed-only and stays silent without type information.
type PublishedImmutability struct{}

// Name implements Rule.
func (PublishedImmutability) Name() string { return "published-immutability" }

// Doc implements Rule.
func (PublishedImmutability) Doc() string {
	return "no writes through a *PublishedAssignment or a value loaded from an atomic.Pointer view"
}

// publishedType reports whether t is (a pointer to) dynamic.Published.
// The root package's PublishedAssignment is a type alias, which
// types.Unalias resolves to the same named type.
func publishedType(t types.Type) bool {
	return isNamedType(t, true, "internal/dynamic", "Published") ||
		isNamedType(t, true, "dynamic", "Published")
}

// isAtomicPointerLoad reports whether call is (*atomic.Pointer[T]).Load.
func isAtomicPointerLoad(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Load" {
		return false
	}
	return isNamedType(pkg.TypeOf(sel.X), true, "sync/atomic", "Pointer")
}

// Check implements Rule.
func (PublishedImmutability) Check(pkg *Package, report ReportFunc) {
	if !pkg.Typed() {
		return
	}
	for _, f := range pkg.Files {
		if f.Test {
			continue
		}
		f := f
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPublishedFunc(pkg, f, fd, report)
		}
	}
}

func checkPublishedFunc(pkg *Package, f *File, fd *ast.FuncDecl, report ReportFunc) {
	defs := collectDefs(pkg, fd.Type, fd.Body)
	var pf *provFlow
	pf = &provFlow{
		pkg:  pkg,
		defs: defs,
		identProv: func(s provState, obj types.Object) provenance {
			// Any Published value the function did not provably build
			// itself — parameters, receivers, captures, globals — is a
			// live snapshot readers may hold.
			if publishedType(obj.Type()) {
				return provShared
			}
			return provUnknown
		},
		selectorProv: func(s provState, e *ast.SelectorExpr) provenance {
			// A Published hanging off an untracked struct (s.view.pub,
			// an op result field) is a snapshot too.
			if publishedType(pkg.TypeOf(e)) && !isPkgName(pkg, e.X) {
				return provShared
			}
			return provUnknown
		},
		callProv: func(s provState, call *ast.CallExpr) provenance {
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				if fun.Name == "new" {
					return provOwned
				}
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Clone" {
					return provOwned
				}
			}
			if isAtomicPointerLoad(pkg, call) {
				return provShared
			}
			if publishedType(firstResultType(pkg.TypeOf(call))) {
				return provShared
			}
			return provUnknown
		},
		onWrite: func(kind writeKind, e ast.Expr, pos token.Pos) {
			switch kind {
			case wkField:
				sel := e.(*ast.SelectorExpr)
				report(f, pos,
					"write to field %s of a published view; views behind the atomic pointer are immutable — build a fresh view and swap it in", sel.Sel.Name)
			case wkElem:
				report(f, pos,
					"element write into a published view's backing array; concurrent readers hold this snapshot — allocate fresh slices for the next view")
			case wkPtr:
				report(f, pos,
					"store through a pointer into a published view; views behind the atomic pointer are immutable")
			case wkCopy:
				report(f, pos,
					"copy() into a published view's backing array; concurrent readers hold this snapshot — allocate fresh slices instead")
			}
		},
		onFuncLit: func(lit *ast.FuncLit, snap provState) {
			pf.analyze(lit.Body, snap)
		},
	}
	pf.analyze(fd.Body, make(provState))
}
