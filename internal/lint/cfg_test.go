package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses src as the body of a function and returns it.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	file := "package p\nfunc f() {\n" + src + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", file, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// markersIn collects the marker-call names (calls to identifiers
// starting with "mark") stored in a block's statements.
func markersIn(b *block) []string {
	var out []string
	for _, n := range b.nodes {
		ast.Inspect(n, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && strings.HasPrefix(id.Name, "mark") {
				out = append(out, id.Name)
			}
			return true
		})
	}
	return out
}

// cfgFacts computes, for each marker, whether it is reachable from the
// entry block, by walking successor edges.
func cfgFacts(g *cfg) map[string]bool {
	reach := make(map[*block]bool)
	var visit func(b *block)
	visit = func(b *block) {
		if reach[b] {
			return
		}
		reach[b] = true
		for _, s := range b.succs {
			visit(s)
		}
	}
	visit(g.entry)
	facts := make(map[string]bool)
	for _, b := range g.blocks {
		for _, m := range markersIn(b) {
			facts[m] = facts[m] || reach[b]
		}
	}
	return facts
}

// TestCFGStatementCoverage: every simple statement of the source lands
// in exactly one block, so no write can be skipped by the lowering.
func TestCFGStatementCoverage(t *testing.T) {
	body := parseBody(t, `
		markA()
		if cond() {
			markB()
		} else {
			markC()
		}
		for i := 0; i < 10; i++ {
			markD()
		}
		switch v() {
		case 1:
			markE()
		default:
			markF()
		}
		markG()
	`)
	g := buildCFG(body)
	counts := make(map[string]int)
	for _, b := range g.blocks {
		for _, m := range markersIn(b) {
			counts[m]++
		}
	}
	for _, m := range []string{"markA", "markB", "markC", "markD", "markE", "markF", "markG"} {
		if counts[m] != 1 {
			t.Errorf("marker %s stored %d times, want 1", m, counts[m])
		}
	}
}

// TestCFGReachability: branches, loop bodies, and the statement after a
// branchy region are reachable; code after an unconditional return is
// not (but still present for scanning).
func TestCFGReachability(t *testing.T) {
	body := parseBody(t, `
		if cond() {
			markThen()
			return
		}
		markAfter()
		return
		markDead()
	`)
	facts := cfgFacts(buildCFG(body))
	for m, want := range map[string]bool{"markThen": true, "markAfter": true, "markDead": false} {
		if facts[m] != want {
			t.Errorf("marker %s reachable = %v, want %v", m, facts[m], want)
		}
	}
	if !strings.Contains(strings.Join(allMarkers(buildCFG(body)), " "), "markDead") {
		t.Error("dead code dropped from the CFG entirely; it must stay scannable")
	}
}

func allMarkers(g *cfg) []string {
	var out []string
	for _, b := range g.blocks {
		out = append(out, markersIn(b)...)
	}
	return out
}

// TestCFGLoopBackEdge: a for-loop body has a path back to the loop
// head, so facts established in the body flow around the loop.
func TestCFGLoopBackEdge(t *testing.T) {
	body := parseBody(t, `
		for cond() {
			markBody()
		}
		markAfter()
	`)
	g := buildCFG(body)
	var bodyBlk *block
	for _, b := range g.blocks {
		for _, m := range markersIn(b) {
			if m == "markBody" {
				bodyBlk = b
			}
		}
	}
	if bodyBlk == nil {
		t.Fatal("loop body block not found")
	}
	// From the body block, the body itself must be re-reachable (the
	// back edge through post and head).
	seen := make(map[*block]bool)
	var visit func(b *block) bool
	visit = func(b *block) bool {
		for _, s := range b.succs {
			if s == bodyBlk {
				return true
			}
			if !seen[s] {
				seen[s] = true
				if visit(s) {
					return true
				}
			}
		}
		return false
	}
	if !visit(bodyBlk) {
		t.Error("no back edge from loop body to itself")
	}
}

// TestCFGBranchTargets: break/continue (plain and labeled), goto, and
// fallthrough produce the right reachability.
func TestCFGBranchTargets(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want map[string]bool
	}{
		{
			name: "break",
			src: `
				for {
					if cond() {
						break
					}
					markLoop()
				}
				markAfter()
			`,
			want: map[string]bool{"markLoop": true, "markAfter": true},
		},
		{
			name: "continue skips tail",
			src: `
				for cond() {
					if cond2() {
						continue
					}
					markTail()
				}
				markAfter()
			`,
			want: map[string]bool{"markTail": true, "markAfter": true},
		},
		{
			name: "labeled break exits outer loop",
			src: `
			outer:
				for {
					for {
						break outer
					}
				}
				markAfter()
			`,
			want: map[string]bool{"markAfter": true},
		},
		{
			name: "goto forward",
			src: `
				goto done
				markSkipped()
			done:
				markDone()
			`,
			want: map[string]bool{"markSkipped": false, "markDone": true},
		},
		{
			name: "fallthrough chains cases",
			src: `
				switch v() {
				case 1:
					markOne()
					fallthrough
				case 2:
					markTwo()
				}
				markAfter()
			`,
			want: map[string]bool{"markOne": true, "markTwo": true, "markAfter": true},
		},
		{
			name: "select comm clauses",
			src: `
				select {
				case <-ch:
					markRecv()
				default:
					markDefault()
				}
				markAfter()
			`,
			want: map[string]bool{"markRecv": true, "markDefault": true, "markAfter": true},
		},
		{
			name: "range may run zero times",
			src: `
				for range xs() {
					markBody()
				}
				markAfter()
			`,
			want: map[string]bool{"markBody": true, "markAfter": true},
		},
		{
			name: "switch without default falls through",
			src: `
				switch v() {
				case 1:
					return
				}
				markAfter()
			`,
			want: map[string]bool{"markAfter": true},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			facts := cfgFacts(buildCFG(parseBody(t, tc.src)))
			for m, want := range tc.want {
				if facts[m] != want {
					t.Errorf("marker %s reachable = %v, want %v", m, facts[m], want)
				}
			}
		})
	}
}

// TestCFGDeterministic: building the same body twice yields identical
// block/edge structure (by index), the property the fixpoint's ordered
// worklist relies on.
func TestCFGDeterministic(t *testing.T) {
	src := `
		for i := 0; i < 3; i++ {
			if cond() {
				continue
			}
			markA()
		}
		switch v() {
		case 1:
			markB()
		}
	`
	shape := func(g *cfg) string {
		var sb strings.Builder
		for _, b := range g.blocks {
			sb.WriteString("b")
			for _, s := range b.succs {
				sb.WriteByte(' ')
				sb.WriteString(strings.Repeat("x", s.index+1))
			}
			sb.WriteByte(';')
		}
		return sb.String()
	}
	a := shape(buildCFG(parseBody(t, src)))
	b := shape(buildCFG(parseBody(t, src)))
	if a != b {
		t.Errorf("non-deterministic CFG:\n%s\n%s", a, b)
	}
}
