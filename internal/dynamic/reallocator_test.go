package dynamic

import (
	"errors"
	"math/rand"
	"testing"

	"mcfs/internal/core"
	"mcfs/internal/data"
	"mcfs/internal/graph"
	"mcfs/internal/testutil"
)

func lineInstance(t *testing.T) *data.Instance {
	t.Helper()
	b := graph.NewBuilder(10, false)
	for i := 0; i < 9; i++ {
		b.AddEdge(int32(i), int32(i+1), 1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var facs []data.Facility
	for v := 0; v < 10; v += 2 {
		facs = append(facs, data.Facility{Node: int32(v), Capacity: 2})
	}
	return &data.Instance{
		G:          g,
		Customers:  []int32{1, 7},
		Facilities: facs,
		K:          3,
	}
}

// verify checks the reallocator's current state against a from-scratch
// evaluation: structural validity and assignment optimality given the
// open selection.
func verify(t *testing.T, r *Reallocator) {
	t.Helper()
	inst, sol, err := r.Solution()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.CheckSolution(sol); err != nil {
		t.Fatalf("reallocator state invalid: %v", err)
	}
	// The incremental assignment must be optimal for the open selection.
	want, err := core.AssignToSelection(inst, sol.Selected, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != want.Objective {
		t.Fatalf("incremental objective %d != optimal %d for the open selection",
			sol.Objective, want.Objective)
	}
}

func TestReallocatorInitialMatchesSolve(t *testing.T) {
	inst := lineInstance(t)
	r, err := New(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.Solve(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	obj, err := r.Objective()
	if err != nil {
		t.Fatal(err)
	}
	if obj != direct.Objective {
		t.Fatalf("initial objective %d != direct solve %d", obj, direct.Objective)
	}
	verify(t, r)
}

func TestReallocatorArrivalsIncremental(t *testing.T) {
	inst := lineInstance(t)
	r, err := New(inst, Options{DriftFactor: 100}) // keep selection fixed
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range []int32{3, 5, 9} {
		if _, err := r.AddCustomer(node); err != nil {
			t.Fatal(err)
		}
		verify(t, r)
	}
	if r.Customers() != 5 {
		t.Fatalf("customers = %d, want 5", r.Customers())
	}
	st := r.Stats()
	if st.Arrivals != 3 {
		t.Fatalf("arrivals = %d", st.Arrivals)
	}
}

func TestReallocatorDepartures(t *testing.T) {
	inst := lineInstance(t)
	r, err := New(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := r.AddCustomer(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveCustomer(h); err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveCustomer(h); err == nil {
		t.Fatal("double removal accepted")
	}
	if err := r.RemoveCustomer(0); err != nil { // initial customer, handle 0
		t.Fatal(err)
	}
	verify(t, r)
	if r.Customers() != 1 {
		t.Fatalf("customers = %d, want 1", r.Customers())
	}
	if st := r.Stats(); st.Departures != 2 {
		t.Fatalf("departures = %d", st.Departures)
	}
}

func TestReallocatorSaturationTriggersReselect(t *testing.T) {
	// Selection capacity 2×3=6 with k=3; admit customers until the open
	// set saturates and a full re-solve must kick in, then until even the
	// catalogue is exhausted.
	inst := lineInstance(t)
	inst.K = 2                                   // open capacity 4
	r, err := New(inst, Options{DriftFactor: 0}) // only saturation can re-solve
	if err != nil {
		t.Fatal(err)
	}
	fullBefore := r.Stats().FullSolves
	admitted := 0
	var lastErr error
	for i := 0; i < 12; i++ {
		if _, err := r.AddCustomer(int32(i % 10)); err != nil {
			lastErr = err
			break
		}
		admitted++
		verify(t, r)
	}
	// Catalogue capacity is 10 with k=2 → max open capacity 4... after
	// re-selection k=2 picks the two cap-2 facilities: total 4 seats, 2
	// taken initially → at most 2 more than the initial 2 fit per open
	// set, but re-selection cannot exceed 4 seats total.
	if lastErr == nil {
		t.Fatalf("12 arrivals all admitted beyond capacity (admitted=%d)", admitted)
	}
	if !errors.Is(lastErr, data.ErrInfeasible) {
		t.Fatalf("saturation error = %v, want ErrInfeasible", lastErr)
	}
	if admitted != 2 {
		t.Fatalf("admitted %d, want 2 (4 seats, 2 initial customers)", admitted)
	}
	if r.Stats().FullSolves == fullBefore {
		t.Fatal("saturation never triggered a full re-solve")
	}
}

func TestReallocatorDriftTriggersReselect(t *testing.T) {
	inst := lineInstance(t)
	r, err := New(inst, Options{DriftFactor: 1.01})
	if err != nil {
		t.Fatal(err)
	}
	before := r.Stats().FullSolves
	// Arrivals far from the initial selection inflate the objective.
	for _, node := range []int32{9, 9} {
		if _, err := r.AddCustomer(node); err != nil {
			t.Fatal(err)
		}
	}
	if r.Stats().FullSolves == before {
		t.Fatal("drift never triggered a re-selection")
	}
	verify(t, r)
}

func TestReallocatorRandomChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 10; trial++ {
		inst := testutil.RandomInstance(rng, testutil.Params{
			MinNodes: 20, MaxNodes: 60,
			MaxCustomers: 6, MaxFacilities: 8,
			MaxCapacity: 4, MaxWeight: 20,
		})
		// Ample budget so churn stays feasible.
		inst.K = inst.L()
		r, err := New(inst, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var handles []int
		for h := 0; h < inst.M(); h++ {
			handles = append(handles, h)
		}
		for step := 0; step < 25; step++ {
			if len(handles) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(handles))
				if err := r.RemoveCustomer(handles[i]); err != nil {
					t.Fatalf("trial %d step %d: %v", trial, step, err)
				}
				handles = append(handles[:i], handles[i+1:]...)
			} else {
				h, err := r.AddCustomer(int32(rng.Intn(inst.G.N())))
				if err != nil {
					if errors.Is(err, data.ErrInfeasible) {
						continue // catalogue saturated or unreachable node: acceptable
					}
					t.Fatalf("trial %d step %d: %v", trial, step, err)
				}
				handles = append(handles, h)
			}
			if step%5 == 0 {
				verify(t, r)
			}
		}
		verify(t, r)
	}
}

func TestReallocatorRefresh(t *testing.T) {
	inst := lineInstance(t)
	r, err := New(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := r.Stats().FullSolves
	if err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	if r.Stats().FullSolves != before+1 {
		t.Fatal("Refresh did not run a full solve")
	}
	verify(t, r)
}

func TestReallocatorInvalidInputs(t *testing.T) {
	inst := lineInstance(t)
	r, err := New(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddCustomer(-1); err == nil {
		t.Fatal("negative node accepted")
	}
	if _, err := r.AddCustomer(int32(inst.G.N())); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	bad := &data.Instance{G: inst.G, Customers: []int32{99}, K: 1}
	if _, err := New(bad, Options{}); err == nil {
		t.Fatal("invalid instance accepted")
	}
	infeasible := &data.Instance{G: inst.G, Customers: []int32{0}, K: 0}
	if _, err := New(infeasible, Options{}); !errors.Is(err, data.ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}
