package render

import (
	"encoding/json"
	"fmt"
	"io"

	"mcfs/internal/data"
)

// geoFeature is a minimal GeoJSON feature.
type geoFeature struct {
	Type       string         `json:"type"`
	Geometry   geoGeometry    `json:"geometry"`
	Properties map[string]any `json:"properties"`
}

type geoGeometry struct {
	Type        string `json:"type"`
	Coordinates any    `json:"coordinates"`
}

type geoCollection struct {
	Type     string       `json:"type"`
	Features []geoFeature `json:"features"`
}

// GeoJSON exports an instance and optional solution as a GeoJSON
// FeatureCollection: one Point per customer (kind=customer, with its
// assigned facility when solved) and per candidate facility
// (kind=facility, capacity, selected, load), plus one LineString per
// assignment. Node coordinates are emitted verbatim — callers working in
// a projected CRS should note GeoJSON formally expects lon/lat.
func GeoJSON(w io.Writer, inst *data.Instance, sol *data.Solution) error {
	g := inst.G
	if !g.HasCoords() {
		return fmt.Errorf("render: network has no coordinates")
	}
	point := func(node int32) geoGeometry {
		x, y := g.Coord(node)
		return geoGeometry{Type: "Point", Coordinates: []float64{x, y}}
	}
	coll := geoCollection{Type: "FeatureCollection"}

	selected := map[int]bool{}
	load := map[int]int{}
	if sol != nil {
		for _, j := range sol.Selected {
			selected[j] = true
		}
		for _, j := range sol.Assignment {
			load[j]++
		}
	}
	for j, f := range inst.Facilities {
		props := map[string]any{
			"kind":     "facility",
			"index":    j,
			"node":     f.Node,
			"capacity": f.Capacity,
		}
		if sol != nil {
			props["selected"] = selected[j]
			props["load"] = load[j]
		}
		coll.Features = append(coll.Features, geoFeature{
			Type: "Feature", Geometry: point(f.Node), Properties: props,
		})
	}
	for i, s := range inst.Customers {
		props := map[string]any{
			"kind":  "customer",
			"index": i,
			"node":  s,
		}
		if sol != nil {
			props["facility"] = sol.Assignment[i]
		}
		coll.Features = append(coll.Features, geoFeature{
			Type: "Feature", Geometry: point(s), Properties: props,
		})
		if sol != nil {
			x1, y1 := g.Coord(s)
			x2, y2 := g.Coord(inst.Facilities[sol.Assignment[i]].Node)
			coll.Features = append(coll.Features, geoFeature{
				Type: "Feature",
				Geometry: geoGeometry{
					Type:        "LineString",
					Coordinates: [][]float64{{x1, y1}, {x2, y2}},
				},
				Properties: map[string]any{
					"kind":     "assignment",
					"customer": i,
					"facility": sol.Assignment[i],
				},
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(coll)
}
