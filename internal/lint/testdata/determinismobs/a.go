// Package fixture exercises the determinism rule's observability
// exemption (checked as if it lived in internal/obs, whose product —
// phase-span wall time — requires the clock). The same file loaded as a
// solver package must be flagged (TestDeterminismObsScopeOnly).
package fixture

import "time"

func spanStart() time.Time { return time.Now() }
