package pq

import (
	"math/rand"
	"testing"
)

// monotoneOp is one step of a scripted monotone workload.
type monotoneOp struct {
	pop bool
	id  int32
	key int64
}

// randomMonotoneOps generates a workload that respects the Monotone
// contract: keys pushed never drop below the key of the last pop, and
// ids are re-pushed only with strictly lower keys than their
// best-so-far (mirroring the d > dist[v] relax guard every search
// uses). The generator simulates the settle order — min (key, update
// seq) — to keep the floor exact. Equal keys across different ids are
// generated deliberately often.
func randomMonotoneOps(rng *rand.Rand, n int, idSpace int32, keySpread int64) []monotoneOp {
	var ops []monotoneOp
	best := make(map[int32]int64)
	seq := make(map[int32]int64)
	settled := make(map[int32]bool)
	var tick int64
	floor := int64(0)
	for len(ops) < n && len(settled) < int(idSpace) {
		if len(best) > 0 && rng.Intn(3) == 0 {
			// Settle the entry the FIFO queues would pop next; its key
			// becomes the floor no later push may undercut.
			var minID int32
			minKey, minSeq := int64(-1), int64(-1)
			for id, k := range best {
				if minKey < 0 || k < minKey || (k == minKey && seq[id] < minSeq) {
					minID, minKey, minSeq = id, k, seq[id]
				}
			}
			floor = minKey
			delete(best, minID)
			delete(seq, minID)
			settled[minID] = true
			ops = append(ops, monotoneOp{pop: true})
			continue
		}
		id := rng.Int31n(idSpace)
		if settled[id] {
			continue // settled ids never re-enter, like dist finalization
		}
		// Small spread so equal keys collide frequently.
		key := floor + rng.Int63n(keySpread)
		if b, ok := best[id]; ok && key >= b {
			continue // only strict decreases, like the relax guard
		}
		best[id] = key
		seq[id] = tick
		tick++
		ops = append(ops, monotoneOp{id: id, key: key})
	}
	return ops
}

// applyOps replays a workload against a queue, returning the filtered
// pop stream (pops during the run plus a final drain).
func applyOps(q Monotone, ops []monotoneOp) []bentry {
	best := make(map[int32]int64)
	settled := make(map[int32]bool)
	var out []bentry
	for _, op := range ops {
		if op.pop {
			for q.Len() > 0 {
				id, key := q.PopMin()
				if settled[id] || key > best[id] {
					continue
				}
				settled[id] = true
				out = append(out, bentry{id, key})
				break
			}
			continue
		}
		if settled[op.id] {
			continue
		}
		if b, ok := best[op.id]; ok {
			if op.key >= b {
				continue
			}
			best[op.id] = op.key
			q.DecreaseKey(op.id, op.key)
		} else {
			best[op.id] = op.key
			q.Push(op.id, op.key)
		}
	}
	for q.Len() > 0 {
		id, key := q.PopMin()
		if settled[id] || key > best[id] {
			continue
		}
		settled[id] = true
		out = append(out, bentry{id, key})
	}
	return out
}

// TestBucketMatchesHeapsPinnedOrder is the determinism property test:
// on random monotone workloads with frequent equal keys, the filtered
// pop stream of BucketQueue must match DenseHeap and SparseHeap exactly
// — ids included, not just keys — because all three pin the same FIFO
// equal-key tie-break.
func TestBucketMatchesHeapsPinnedOrder(t *testing.T) {
	const idSpace = 64
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		spread := int64(1 + rng.Intn(8)) // tiny spread → many equal keys
		ops := randomMonotoneOps(rng, 150, idSpace, spread)

		dense := applyOps(NewDense(idSpace), ops)
		sparse := applyOps(NewSparse(), ops)
		// Span deliberately smaller than the key range on some trials so
		// the overflow/rebase path is exercised too.
		span := spread
		if trial%3 == 0 {
			span = 1
		}
		bucket := applyOps(NewBucket(span), ops)

		for name, got := range map[string][]bentry{"sparse": sparse, "bucket": bucket} {
			if len(got) != len(dense) {
				t.Fatalf("trial %d: %s popped %d entries, dense %d", trial, name, len(got), len(dense))
			}
			for i := range dense {
				if got[i] != dense[i] {
					t.Fatalf("trial %d: %s pop %d = (%d,%d), dense (%d,%d)",
						trial, name, i, got[i].id, got[i].key, dense[i].id, dense[i].key)
				}
			}
		}
	}
}

// TestHeapEqualKeyFIFO checks the documented tie-break directly: equal
// keys pop in key-update order, and a key change re-stamps the entry.
func TestHeapEqualKeyFIFO(t *testing.T) {
	for name, mk := range map[string]func() Monotone{
		"dense":  func() Monotone { return NewDense(16) },
		"sparse": func() Monotone { return NewSparse() },
		"bucket": func() Monotone { return NewBucket(16) },
	} {
		q := mk()
		q.Push(3, 5)
		q.Push(1, 5)
		q.Push(2, 5)
		var order []int32
		for q.Len() > 0 {
			id, key := q.PopMin()
			if key != 5 {
				t.Fatalf("%s: key %d, want 5", name, key)
			}
			order = append(order, id)
		}
		if order[0] != 3 || order[1] != 1 || order[2] != 2 {
			t.Fatalf("%s: equal-key pop order %v, want [3 1 2] (insertion FIFO)", name, order)
		}
	}
}

// TestHeapDecreaseRestamps checks that a key decrease moves the entry to
// the back of its new equal-key class — matching the bucket queue's
// re-append semantics.
func TestHeapDecreaseRestamps(t *testing.T) {
	for name, mk := range map[string]func() Monotone{
		"dense":  func() Monotone { return NewDense(16) },
		"sparse": func() Monotone { return NewSparse() },
	} {
		q := mk()
		q.Push(7, 9)
		q.Push(4, 5)
		q.DecreaseKey(7, 5) // re-stamped: now behind 4 in the key-5 class
		id, _ := q.PopMin()
		if id != 4 {
			t.Fatalf("%s: first pop %d, want 4 (decrease must re-stamp)", name, id)
		}
		id, _ = q.PopMin()
		if id != 7 {
			t.Fatalf("%s: second pop %d, want 7", name, id)
		}
	}
}

// TestBucketOverflowRebase drives keys past the wheel window and checks
// the redistribute path preserves order and FIFO.
func TestBucketOverflowRebase(t *testing.T) {
	q := NewBucket(3) // wheel covers [base, base+3]
	q.Push(1, 0)
	q.Push(2, 100) // overflow
	q.Push(3, 100) // overflow, behind 2
	q.Push(4, 102) // overflow
	q.Push(5, 2)

	want := []bentry{{1, 0}, {5, 2}, {2, 100}, {3, 100}, {4, 102}}
	for i, w := range want {
		id, key := q.PopMin()
		if id != w.id || key != w.key {
			t.Fatalf("pop %d = (%d,%d), want (%d,%d)", i, id, key, w.id, w.key)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}

// TestBucketDeepOverflow forces multiple rebase rounds (keys spanning
// several windows) including entries that stay in overflow across a
// rebase.
func TestBucketDeepOverflow(t *testing.T) {
	q := NewBucket(2)
	keys := []int64{0, 7, 15, 4, 30, 8}
	for i, k := range keys {
		q.Push(int32(i), k)
	}
	var got []int64
	for q.Len() > 0 {
		_, k := q.PopMin()
		got = append(got, k)
	}
	want := []int64{0, 4, 7, 8, 15, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop keys %v, want %v", got, want)
		}
	}
}

// TestBucketMonotonePanic checks that breaking the monotone floor is
// caught loudly rather than popping out of order.
func TestBucketMonotonePanic(t *testing.T) {
	q := NewBucket(8)
	q.Push(1, 5)
	q.PopMin() // base is now 5
	defer func() {
		if recover() == nil {
			t.Fatal("Push below the monotone floor did not panic")
		}
	}()
	q.Push(2, 3)
}

// TestBucketResetReuse checks Reset restores a clean queue (floor back
// to zero) while reusing capacity, across overflow state too.
func TestBucketResetReuse(t *testing.T) {
	q := NewBucket(4)
	for round := 0; round < 3; round++ {
		q.Push(1, 3)
		q.Push(2, 50) // overflow
		q.Push(3, 3)
		if _, k := q.PopMin(); k != 3 {
			t.Fatalf("round %d: first key %d, want 3", round, k)
		}
		q.Reset()
		if q.Len() != 0 {
			t.Fatalf("round %d: Len %d after Reset", round, q.Len())
		}
		// Keys below the pre-Reset floor must be accepted again.
		q.Push(4, 0)
		id, k := q.PopMin()
		if id != 4 || k != 0 {
			t.Fatalf("round %d: post-Reset pop (%d,%d), want (4,0)", round, id, k)
		}
		q.Reset()
	}
}

// TestBucketLazyDuplicates checks the documented lazy semantics: a
// DecreaseKey leaves the superseded entry observable at its stale key.
func TestBucketLazyDuplicates(t *testing.T) {
	q := NewBucket(10)
	q.Push(1, 8)
	q.DecreaseKey(1, 2)
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (lazy duplicate retained)", q.Len())
	}
	id, k := q.PopMin()
	if id != 1 || k != 2 {
		t.Fatalf("first pop (%d,%d), want (1,2)", id, k)
	}
	id, k = q.PopMin()
	if id != 1 || k != 8 {
		t.Fatalf("stale pop (%d,%d), want (1,8)", id, k)
	}
}

func BenchmarkBucketPushPop(b *testing.B) {
	const n = 1024
	q := NewBucket(64)
	rng := rand.New(rand.NewSource(7))
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63n(64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < n; j++ {
			q.Push(int32(j), keys[j])
		}
		for q.Len() > 0 {
			q.PopMin()
		}
		q.Reset()
	}
}
