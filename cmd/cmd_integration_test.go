// Package cmd_test builds the CLI binaries and exercises their
// end-to-end pipelines: generate → solve → bench report, plus the
// mcfslint static-analysis gate.
package cmd_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "mcfs-bin")
	if err != nil {
		panic(err)
	}
	binDir = dir
	for _, tool := range []string{"mcfsgen", "mcfscli", "mcfsbench", "mcfscompare", "mcfslint", "mcfsd"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./"+tool)
		cmd.Dir = "."
		if out, err := cmd.CombinedOutput(); err != nil {
			panic(tool + ": " + err.Error() + "\n" + string(out))
		}
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func run(t *testing.T, tool string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, tool), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", tool, args, err, out)
	}
	return string(out)
}

func TestGenThenSolve(t *testing.T) {
	inst := filepath.Join(t.TempDir(), "inst.mcfs")
	run(t, "mcfsgen",
		"-type", "clustered", "-n", "1500", "-clusters", "10",
		"-m", "80", "-l", "200", "-cap", "8", "-k", "15",
		"-seed", "3", "-o", inst)
	if _, err := os.Stat(inst); err != nil {
		t.Fatal(err)
	}
	var objectives []string
	for _, algo := range []string{"wma", "uf", "hilbert", "naive"} {
		out := run(t, "mcfscli", "-algo", algo, "-in", inst)
		if !strings.Contains(out, "objective") {
			t.Fatalf("%s output missing objective:\n%s", algo, out)
		}
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "objective") {
				objectives = append(objectives, strings.TrimSpace(strings.TrimPrefix(line, "objective")))
			}
		}
	}
	if len(objectives) != 4 {
		t.Fatalf("collected %d objectives", len(objectives))
	}
}

func TestCLIAssignmentAndKOverride(t *testing.T) {
	inst := filepath.Join(t.TempDir(), "inst.mcfs")
	run(t, "mcfsgen",
		"-type", "uniform", "-n", "400", "-alpha", "2.5",
		"-m", "10", "-l", "30", "-cap", "4", "-k", "5", "-o", inst)
	out := run(t, "mcfscli", "-algo", "wma", "-in", inst, "-k", "6", "-assignment")
	if !strings.Contains(out, "k=6") {
		t.Fatalf("k override ignored:\n%s", out)
	}
	if strings.Count(out, "customer ") != 10 {
		t.Fatalf("assignment lines missing:\n%s", out)
	}
}

func TestCLIExactTiny(t *testing.T) {
	inst := filepath.Join(t.TempDir(), "inst.mcfs")
	run(t, "mcfsgen",
		"-type", "uniform", "-n", "150", "-alpha", "3",
		"-m", "6", "-l", "6", "-cap", "3", "-k", "3", "-o", inst)
	out := run(t, "mcfscli", "-algo", "exhaustive", "-in", inst)
	if !strings.Contains(out, "objective") {
		t.Fatalf("exhaustive failed:\n%s", out)
	}
}

func TestBenchListAndRun(t *testing.T) {
	out := run(t, "mcfsbench", "-list")
	for _, id := range []string{"F6a", "T4", "F12b", "Q"} {
		if !strings.Contains(out, id) {
			t.Fatalf("-list missing %s:\n%s", id, out)
		}
	}
	dir := t.TempDir()
	csv := filepath.Join(dir, "r.csv")
	md := filepath.Join(dir, "r.md")
	out = run(t, "mcfsbench", "-exp", "F5,T3", "-scale", "0.02", "-csv", csv, "-md", md)
	if !strings.Contains(out, "F5") || !strings.Contains(out, "T3") {
		t.Fatalf("bench output incomplete:\n%s", out)
	}
	for _, f := range []string{csv, md} {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Fatalf("%s is empty", f)
		}
	}
}

func TestGenDIMACSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	gr := filepath.Join(dir, "tiny.gr")
	err := os.WriteFile(gr, []byte("p sp 4 6\na 1 2 5\na 2 1 5\na 2 3 5\na 3 2 5\na 3 4 5\na 4 3 5\n"), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	inst := filepath.Join(dir, "inst.mcfs")
	run(t, "mcfsgen", "-type", "dimacs", "-gr", gr, "-m", "2", "-l", "3", "-cap", "1", "-k", "2", "-o", inst)
	out := run(t, "mcfscli", "-algo", "wma", "-in", inst)
	if !strings.Contains(out, "objective") {
		t.Fatalf("dimacs pipeline failed:\n%s", out)
	}
}

func TestCompareTool(t *testing.T) {
	dir := t.TempDir()
	inst := filepath.Join(dir, "inst.mcfs")
	run(t, "mcfsgen",
		"-type", "clustered", "-n", "600", "-clusters", "6",
		"-m", "30", "-l", "80", "-cap", "5", "-k", "8", "-o", inst)
	svg := filepath.Join(dir, "out.svg")
	geo := filepath.Join(dir, "out.json")
	out := run(t, "mcfscompare", "-in", inst, "-algos", "wma,hilbert", "-svg", svg, "-geojson", geo)
	if !strings.Contains(out, "best: ") {
		t.Fatalf("no best line:\n%s", out)
	}
	for _, f := range []string{svg, geo} {
		if fi, err := os.Stat(f); err != nil || fi.Size() == 0 {
			t.Fatalf("export %s missing or empty", f)
		}
	}
}

// startMCFSD launches the daemon on a free port and returns its base
// URL, the debug listener's URL (empty unless -debug-addr was passed),
// the process handle (for crash tests that SIGKILL it), plus a stop
// function that sends SIGTERM and waits for a clean exit.
func startMCFSD(t *testing.T, args ...string) (string, string, *exec.Cmd, func()) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, "mcfsd"), append(args, "-addr", "127.0.0.1:0")...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	listenRe := regexp.MustCompile(`listening on (http://\S+)`)
	debugRe := regexp.MustCompile(`debug listener .* on (http://\S+)`)
	var url, debugURL string
	for sc.Scan() {
		if m := debugRe.FindStringSubmatch(sc.Text()); m != nil {
			debugURL = m[1]
			continue
		}
		if m := listenRe.FindStringSubmatch(sc.Text()); m != nil {
			url = m[1]
			break
		}
	}
	if url == "" {
		_ = cmd.Process.Kill()
		t.Fatal("mcfsd never printed its listening address")
	}
	// Keep draining stdout so the daemon never blocks on a full pipe.
	go func() {
		for sc.Scan() {
		}
	}()
	stop := func() {
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatalf("signal mcfsd: %v", err)
		}
		if err := cmd.Wait(); err != nil {
			t.Fatalf("mcfsd did not exit cleanly: %v", err)
		}
	}
	return url, debugURL, cmd, stop
}

// getJSON fetches url and decodes the JSON body into out.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestMCFSDServeSnapshotRestart is the serving smoke: start the daemon
// on a quickstart-scale instance, query an assignment, churn the
// population, capture a snapshot, restart from it, and verify the
// restarted daemon publishes the identical objective before shutting
// both down cleanly.
func TestMCFSDServeSnapshotRestart(t *testing.T) {
	dir := t.TempDir()
	inst := filepath.Join(dir, "inst.mcfs")
	run(t, "mcfsgen",
		"-type", "uniform", "-n", "500", "-alpha", "2.5",
		"-m", "40", "-l", "80", "-cap", "8", "-k", "8",
		"-seed", "11", "-o", inst)

	url, _, _, stop := startMCFSD(t, "-in", inst)

	// Liveness and an assignment query.
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	var asg struct {
		Customer int   `json:"customer"`
		Facility int   `json:"facility"`
		Node     int32 `json:"node"`
	}
	getJSON(t, url+"/assign?customer=0", &asg)
	if asg.Customer != 0 {
		t.Fatalf("assign reply %+v", asg)
	}

	// Churn so the snapshot captures non-initial state.
	body := strings.NewReader(fmt.Sprintf(`{"nodes":[%d,%d]}`, asg.Node, asg.Node))
	post, err := http.Post(url+"/arrivals", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != 200 {
		t.Fatalf("arrivals = %d", post.StatusCode)
	}

	var before struct {
		Objective int64 `json:"objective"`
		Customers int   `json:"customers"`
	}
	getJSON(t, url+"/stats", &before)

	// Snapshot to disk.
	snapPath := filepath.Join(dir, "snap.json")
	snapResp, err := http.Get(url + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	snapData, err := io.ReadAll(snapResp.Body)
	snapResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snapPath, snapData, 0o644); err != nil {
		t.Fatal(err)
	}
	stop()

	// Restart from the snapshot: the published objective must be
	// byte-identical to the snapshotted one.
	url2, _, _, stop2 := startMCFSD(t, "-in", inst, "-restore", snapPath)
	defer stop2()
	var after struct {
		Objective int64 `json:"objective"`
		Customers int   `json:"customers"`
	}
	getJSON(t, url2+"/stats", &after)
	if after.Objective != before.Objective || after.Customers != before.Customers {
		t.Fatalf("restart drifted: objective %d->%d, customers %d->%d",
			before.Objective, after.Objective, before.Customers, after.Customers)
	}
}

// newestGeneration reports the highest snapshot generation number in
// dir, or 0 when none exist (the directory may not exist yet). Retention
// pruning caps the file COUNT, so waiting on generation numbers is the
// only monotone progress signal.
func newestGeneration(dir string) int {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	genRe := regexp.MustCompile(`^mcfsd-(\d{8,})\.snap\.json$`)
	newest := 0
	for _, e := range entries {
		if m := genRe.FindStringSubmatch(e.Name()); m != nil {
			var g int
			fmt.Sscanf(m[1], "%d", &g)
			if g > newest {
				newest = g
			}
		}
	}
	return newest
}

// TestMCFSDCrashRecovery is the SIGKILL acceptance test: run the daemon
// with a short periodic snapshot interval, churn the population, let
// the policy persist the settled state, kill the process dead (no
// graceful drain), plant a corrupt newer generation, and restart with
// -restore pointed at the directory. The recovered daemon must publish
// exactly the pre-crash settled objective and population — the corrupt
// generation skipped, the work lost bounded by one snapshot interval
// (zero here, because churn quiesced before the last persisted
// generation).
func TestMCFSDCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	inst := filepath.Join(dir, "inst.mcfs")
	run(t, "mcfsgen",
		"-type", "uniform", "-n", "500", "-alpha", "2.5",
		"-m", "40", "-l", "80", "-cap", "8", "-k", "8",
		"-seed", "11", "-o", inst)
	snapDir := filepath.Join(dir, "snaps")

	url, _, cmd, _ := startMCFSD(t,
		"-in", inst, "-quiet",
		"-snapshot-every", "50ms", "-snapshot-dir", snapDir, "-snapshot-keep", "4")

	// Churn: admit a burst of customers at a known-valid node.
	var asg struct {
		Node int32 `json:"node"`
	}
	getJSON(t, url+"/assign?customer=0", &asg)
	for i := 0; i < 5; i++ {
		body := strings.NewReader(fmt.Sprintf(`{"nodes":[%d,%d]}`, asg.Node, asg.Node))
		resp, err := http.Post(url+"/arrivals", "application/json", body)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("arrivals %d = %d", i, resp.StatusCode)
		}
	}
	var pre struct {
		Objective int64 `json:"objective"`
		Customers int   `json:"customers"`
	}
	getJSON(t, url+"/stats", &pre)

	// Wait until two more generations land after churn quiesced. The
	// snapshot loop is sequential, so generation base+2 was captured
	// after base+1 finished persisting — which was after this baseline
	// read — which was after the last arrival was published. It is
	// therefore guaranteed to hold the settled post-churn state.
	base := newestGeneration(snapDir)
	deadline := time.Now().Add(10 * time.Second)
	for newestGeneration(snapDir) < base+2 {
		if time.Now().After(deadline) {
			t.Fatalf("snapshot policy stalled at generation %d (baseline %d)", newestGeneration(snapDir), base)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Crash: SIGKILL, no drain. Wait just reaps the corpse.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err == nil {
		t.Fatal("killed daemon exited cleanly")
	}

	// A corrupt generation newer than every real one: restore must skip
	// it, not die on it.
	corrupt := filepath.Join(snapDir, "mcfsd-99999999.snap.json")
	if err := os.WriteFile(corrupt, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Restart from the generation directory.
	url2, _, _, stop2 := startMCFSD(t, "-in", inst, "-quiet", "-restore", snapDir)
	defer stop2()
	var post struct {
		Objective int64 `json:"objective"`
		Customers int   `json:"customers"`
	}
	getJSON(t, url2+"/stats", &post)
	if post.Objective != pre.Objective || post.Customers != pre.Customers {
		t.Fatalf("crash recovery drifted: objective %d->%d, customers %d->%d",
			pre.Objective, post.Objective, pre.Customers, post.Customers)
	}
}

// TestMCFSDObservability exercises the observability surface end to
// end: /healthz build info, Prometheus-shaped /metrics with live solver
// work counters, X-Request-Id stamping, and the -debug-addr listener's
// expvar + pprof endpoints.
func TestMCFSDObservability(t *testing.T) {
	dir := t.TempDir()
	inst := filepath.Join(dir, "inst.mcfs")
	run(t, "mcfsgen",
		"-type", "uniform", "-n", "500", "-alpha", "2.5",
		"-m", "40", "-l", "80", "-cap", "8", "-k", "8",
		"-seed", "11", "-o", inst)

	url, debugURL, _, stop := startMCFSD(t, "-in", inst, "-debug-addr", "127.0.0.1:0")
	defer stop()
	if debugURL == "" {
		t.Fatal("mcfsd never printed its debug listener address")
	}

	// Build identity on the liveness probe.
	var hz struct {
		Status        string  `json:"status"`
		GoVersion     string  `json:"go_version"`
		VCSRevision   string  `json:"vcs_revision"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	getJSON(t, url+"/healthz", &hz)
	if hz.Status != "ok" || !strings.HasPrefix(hz.GoVersion, "go") || hz.VCSRevision == "" {
		t.Fatalf("healthz build info incomplete: %+v", hz)
	}
	if hz.UptimeSeconds < 0 {
		t.Fatalf("negative uptime: %+v", hz)
	}

	// Drive a little work so the counters move, and check the
	// request-id header on the way.
	resp, err := http.Get(url + "/assign?customer=0")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatal("response missing X-Request-Id")
	}

	mResp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, err := io.ReadAll(mResp.Body)
	mResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := mResp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content-type %q", ct)
	}
	metrics := string(metricsBody)
	for _, want := range []string{
		"mcfs_sspa_augmenting_paths_total",
		"mcfsd_batches_total",
		"mcfsd_request_duration_seconds_count",
		"# TYPE mcfs_dijkstra_heap_pops_total counter",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// Debug listener: expvar must publish the same counter names, and
	// the pprof index must answer.
	var vars struct {
		Counters map[string]int64 `json:"mcfs_counters"`
	}
	getJSON(t, debugURL+"/debug/vars", &vars)
	if _, ok := vars.Counters["sspa_augmenting_paths"]; !ok {
		t.Fatalf("expvar mcfs_counters missing solver counters: %v", vars.Counters)
	}
	pp, err := http.Get(debugURL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, pp.Body)
	pp.Body.Close()
	if pp.StatusCode != 200 {
		t.Fatalf("pprof cmdline = %d", pp.StatusCode)
	}
}

// TestCLITrace: -trace writes a JSONL span tree whose lines parse and
// cover the WMA phases, and tracing must not change the reported
// objective.
func TestCLITrace(t *testing.T) {
	dir := t.TempDir()
	inst := filepath.Join(dir, "inst.mcfs")
	run(t, "mcfsgen",
		"-type", "clustered", "-n", "600", "-clusters", "6",
		"-m", "30", "-l", "80", "-cap", "5", "-k", "8", "-o", inst)
	plain := run(t, "mcfscli", "-algo", "wma", "-in", inst)
	tracePath := filepath.Join(dir, "trace.jsonl")
	traced := run(t, "mcfscli", "-algo", "wma", "-in", inst, "-trace", tracePath)

	objective := func(out string) string {
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "objective") {
				return strings.TrimSpace(strings.TrimPrefix(line, "objective"))
			}
		}
		return ""
	}
	if a, b := objective(plain), objective(traced); a == "" || a != b {
		t.Fatalf("objective changed under -trace: %q vs %q", a, b)
	}

	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var sawSolve, sawIterate bool
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var span struct {
			Depth     int              `json:"depth"`
			Name      string           `json:"name"`
			ElapsedNS int64            `json:"elapsed_ns"`
			Counters  map[string]int64 `json:"counters"`
		}
		if err := json.Unmarshal([]byte(line), &span); err != nil {
			t.Fatalf("unparseable trace line %q: %v", line, err)
		}
		switch span.Name {
		case "wma/solve":
			sawSolve = true
		case "wma/iterate":
			sawIterate = true
		}
	}
	if !sawSolve || !sawIterate {
		t.Fatalf("trace missing wma phases (solve=%v iterate=%v):\n%s", sawSolve, sawIterate, data)
	}
}

// lintSeeds is one minimal violation per mcfslint rule, written into a
// scratch module-shaped tree at the path each path-scoped rule expects.
// path names the file the diagnostic must point at; files carries the
// whole scratch tree (the shared-instance-mutation seed needs a go.mod
// and a sibling package so the typed loader can resolve the instance
// type).
var lintSeeds = []struct {
	rule  string
	path  string
	files map[string]string
}{
	{"ctx-checkpoint", "internal/solver/seed.go", map[string]string{
		"internal/solver/seed.go": "package solver\n\nimport \"context\"\n\nfunc spin(ctx context.Context, n int) {\n\tfor n > 0 {\n\t\tn = n / 2\n\t}\n}\n"}},
	{"api-parity", "seed.go", map[string]string{
		"seed.go": "package mcfs\n\nimport \"context\"\n\nfunc SolveSeed(x int) int { return x * 2 }\n\nfunc SolveSeedCtx(ctx context.Context, x int) int { return x * 2 }\n"}},
	{"determinism", "internal/core/seed.go", map[string]string{
		"internal/core/seed.go": "package core\n\nimport \"time\"\n\nfunc now() time.Time { return time.Now() }\n"}},
	{"closecheck", "cmd/seedtool/main.go", map[string]string{
		"cmd/seedtool/main.go": "package main\n\nimport \"os\"\n\nfunc main() {\n\tf, err := os.Create(\"x\")\n\tif err != nil {\n\t\treturn\n\t}\n\tf.Close()\n}\n"}},
	{"nakedgoroutine", "internal/graph/seed.go", map[string]string{
		"internal/graph/seed.go": "package graph\n\nfunc spawn(work func()) {\n\tgo work()\n}\n"}},
	{"ctx-propagation", "internal/core/seed.go", map[string]string{
		"internal/core/seed.go": "package core\n\nimport \"context\"\n\nfunc fanout(ctx context.Context, fn func(context.Context) error) error {\n\treturn fn(context.Background())\n}\n"}},
	{"published-immutability", "internal/serve/seed.go", map[string]string{
		"go.mod":                      "module scratch\n\ngo 1.22\n",
		"internal/dynamic/publish.go": "package dynamic\n\ntype Published struct {\n\tObjective int64\n\tSelected  []int\n}\n",
		"internal/serve/seed.go":      "package serve\n\nimport \"scratch/internal/dynamic\"\n\nfunc patch(p *dynamic.Published) {\n\tp.Objective = 1\n}\n"}},
	{"single-writer", "internal/serve/seed.go", map[string]string{
		"go.mod":                      "module scratch\n\ngo 1.22\n",
		"internal/dynamic/dynamic.go": "package dynamic\n\ntype Reallocator struct{ ctx int }\n\nfunc (r *Reallocator) SetContext(c int) { r.ctx = c }\n",
		"internal/serve/seed.go":      "package serve\n\nimport \"scratch/internal/dynamic\"\n\ntype Server struct{ r *dynamic.Reallocator }\n\nfunc New() *Server {\n\ts := &Server{r: &dynamic.Reallocator{}}\n\tgo s.loop()\n\treturn s\n}\n\nfunc (s *Server) loop() {}\n\nfunc (s *Server) handleFast(n int) {\n\ts.r.SetContext(n)\n}\n"}},
	{"sentinel-http-parity", "seed.go", map[string]string{
		"go.mod":                 "module scratch\n\ngo 1.22\n",
		"seed.go":                "package scratch\n\nimport \"errors\"\n\nvar ErrLost = errors.New(\"lost\")\n",
		"internal/serve/seed.go": "package serve\n\nfunc statusOf(err error) (int, string) { return 400, \"bad_request\" }\n\nfunc Status(err error) (int, string) { return statusOf(err) }\n"}},
	{"shared-instance-mutation", "internal/bench/seed.go", map[string]string{
		"go.mod":                 "module scratch\n\ngo 1.22\n",
		"internal/data/data.go":  "package data\n\ntype Instance struct {\n\tCustomers []int64\n\tK         int\n}\n",
		"internal/bench/seed.go": "package bench\n\nimport \"scratch/internal/data\"\n\ntype pool struct{ work []func() }\n\nfunc (p *pool) cell(fn func()) { p.work = append(p.work, fn) }\n\nfunc sweep(p *pool, inst *data.Instance) {\n\tp.cell(func() {\n\t\tinst.K = 3\n\t})\n}\n"}},
}

// TestLintSeededViolations is the acceptance check for mcfslint: on a
// clean scratch tree it exits 0; seeding any single violation from each
// rule makes it exit non-zero with a file:line: rule: message
// diagnostic.
func TestLintSeededViolations(t *testing.T) {
	for _, seed := range lintSeeds {
		t.Run(seed.rule, func(t *testing.T) {
			root := t.TempDir()
			for rel, src := range seed.files {
				full := filepath.Join(root, filepath.FromSlash(rel))
				if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			cmd := exec.Command(filepath.Join(binDir, "mcfslint"), "-C", root, "./...")
			out, err := cmd.CombinedOutput()
			if err == nil {
				t.Fatalf("mcfslint exited 0 on a seeded %s violation:\n%s", seed.rule, out)
			}
			if _, ok := err.(*exec.ExitError); !ok {
				t.Fatalf("mcfslint did not run: %v\n%s", err, out)
			}
			diag := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(seed.path) + `:\d+: ` + regexp.QuoteMeta(seed.rule) + `: .+$`)
			if !diag.Match(out) {
				t.Fatalf("no %q diagnostic in file:line: rule: message form:\n%s", seed.rule, out)
			}
		})
	}
}

// TestLintTypedFlagGate: the typed-only rules are silent with
// -typed=false — the escape hatch trades their findings for a load that
// never type-checks.
func TestLintTypedFlagGate(t *testing.T) {
	seed := lintSeeds[len(lintSeeds)-1]
	if seed.rule != "shared-instance-mutation" {
		t.Fatal("seed table changed; update the index")
	}
	root := t.TempDir()
	for rel, src := range seed.files {
		full := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	out := run(t, "mcfslint", "-C", root, "-typed=false", "./...")
	if strings.Contains(out, "shared-instance-mutation") {
		t.Fatalf("typed-only rule fired under -typed=false:\n%s", out)
	}
}

func TestLintCleanTreeAndJSON(t *testing.T) {
	root := t.TempDir()
	clean := "package ok\n\nfunc Add(a, b int) int { return a + b }\n"
	if err := os.MkdirAll(filepath.Join(root, "internal", "ok"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "internal", "ok", "ok.go"), []byte(clean), 0o644); err != nil {
		t.Fatal(err)
	}
	out := run(t, "mcfslint", "-C", root, "./...")
	if strings.Contains(out, ": ") && strings.Contains(out, ".go:") {
		t.Fatalf("findings on a clean tree:\n%s", out)
	}
	out = run(t, "mcfslint", "-C", root, "-json", "./...")
	if !strings.Contains(out, "[]") {
		t.Fatalf("-json on a clean tree should emit an empty array:\n%s", out)
	}
}

// TestLintRealModule runs the built analyzer over the repository
// itself: the tree must stay lint-clean.
func TestLintRealModule(t *testing.T) {
	out := run(t, "mcfslint", "-C", "..", "./...")
	if !strings.Contains(out, "0 finding(s)") {
		t.Fatalf("module tree is not lint-clean:\n%s", out)
	}
}

// TestLintEmptyMatch: a pattern that resolves to no Go packages must be
// an explicit usage error (exit 2), not a 0-finding clean bill of
// health on code that was never looked at.
func TestLintEmptyMatch(t *testing.T) {
	root := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root, "empty"), 0o755); err != nil {
		t.Fatal(err)
	}
	for _, pattern := range []string{"./empty", "./..."} {
		cmd := exec.Command(filepath.Join(binDir, "mcfslint"), "-C", root, pattern)
		out, err := cmd.CombinedOutput()
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("pattern %s: expected an exit error, got %v:\n%s", pattern, err, out)
		}
		if code := ee.ExitCode(); code != 2 {
			t.Fatalf("pattern %s: exit %d, want 2:\n%s", pattern, code, out)
		}
		if !strings.Contains(string(out), "no Go packages match") {
			t.Fatalf("pattern %s: missing the empty-match diagnostic:\n%s", pattern, out)
		}
	}
}

// TestLintCacheRoundTrip: the second run over an unchanged tree replays
// findings and exit status from the result cache; -nocache bypasses it;
// an edit invalidates the entry.
func TestLintCacheRoundTrip(t *testing.T) {
	root := t.TempDir()
	seedPath := filepath.Join(root, "internal", "solver", "seed.go")
	src := "package solver\n\nimport \"context\"\n\nfunc spin(ctx context.Context, n int) {\n\tfor n > 0 {\n\t\tn = n * 0\n\t}\n}\n"
	if err := os.MkdirAll(filepath.Dir(seedPath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seedPath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	// Isolate the cache from the developer's real one.
	env := append(os.Environ(), "XDG_CACHE_HOME="+t.TempDir())
	lintRun := func(args ...string) (string, int) {
		cmd := exec.Command(filepath.Join(binDir, "mcfslint"), append([]string{"-C", root}, args...)...)
		cmd.Env = env
		out, err := cmd.CombinedOutput()
		if err == nil {
			return string(out), 0
		}
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("mcfslint did not run: %v\n%s", err, out)
		}
		return string(out), ee.ExitCode()
	}
	diag := regexp.MustCompile(`(?m)^internal/solver/seed\.go:\d+: ctx-checkpoint: .+$`)

	cold, code := lintRun("./...")
	if code != 1 || !diag.MatchString(cold) || !strings.Contains(cold, "cache miss") {
		t.Fatalf("cold run: exit %d, want 1 with a ctx-checkpoint finding and a cache miss:\n%s", code, cold)
	}
	warm, code := lintRun("./...")
	if code != 1 || !diag.MatchString(warm) || !strings.Contains(warm, "cache hit") {
		t.Fatalf("warm run: exit %d, want 1 with the replayed finding and a cache hit:\n%s", code, warm)
	}
	off, code := lintRun("-nocache", "./...")
	if code != 1 || !diag.MatchString(off) || !strings.Contains(off, "cache off") {
		t.Fatalf("-nocache run: exit %d, want 1 with a fresh finding and cache off:\n%s", code, off)
	}
	// Fixing the violation changes the tree hash: miss, then clean hit.
	fixed := strings.Replace(src, "for n > 0 {", "for n > 0 {\n\t\tif ctx.Err() != nil {\n\t\t\treturn\n\t\t}", 1)
	if err := os.WriteFile(seedPath, []byte(fixed), 0o644); err != nil {
		t.Fatal(err)
	}
	clean, code := lintRun("./...")
	if code != 0 || !strings.Contains(clean, "cache miss") || !strings.Contains(clean, "0 finding(s)") {
		t.Fatalf("post-edit run: exit %d, want 0 findings after a cache miss:\n%s", code, clean)
	}
	cleanWarm, code := lintRun("./...")
	if code != 0 || !strings.Contains(cleanWarm, "cache hit") {
		t.Fatalf("post-edit warm run: exit %d, want a clean cache hit:\n%s", code, cleanWarm)
	}
}
