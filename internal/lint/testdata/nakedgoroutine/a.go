// Package fixture exercises the nakedgoroutine rule.
package fixture

import "sync"

func naked(work func()) {
	go work() // want "without a visible join"
}

func nakedFunc() {
	go func() {}() // want "without a visible join"
}

func waited(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func channelJoined(work func()) {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	<-done
}

func suppressed(work func()) {
	//lint:ignore nakedgoroutine detached-by-design: fixture of the suppression syntax
	go work()
}
