package mcfs_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"mcfs"
)

// buildInstance assembles a moderate synthetic instance through the
// public API only.
func buildInstance(t *testing.T, seed int64) *mcfs.Instance {
	t.Helper()
	g, err := mcfs.GenerateSynthetic(mcfs.SyntheticConfig{N: 600, Alpha: 2.5, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed + 1))
	pool := mcfs.LargestComponent(g)
	return &mcfs.Instance{
		G:          g,
		Customers:  mcfs.SampleCustomersFrom(pool, 60, rng),
		Facilities: mcfs.SampleFacilitiesFrom(pool, 120, rng, mcfs.UniformCapacity(10)),
		K:          12,
	}
}

func TestPublicAPISolveFlow(t *testing.T) {
	inst := buildInstance(t, 1)
	sol, err := mcfs.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.CheckSolution(sol); err != nil {
		t.Fatal(err)
	}
	if len(sol.Selected) == 0 || len(sol.Assignment) != inst.M() {
		t.Fatalf("solution shape: %d selected, %d assigned", len(sol.Selected), len(sol.Assignment))
	}
}

func TestPublicAPIAllSolvers(t *testing.T) {
	inst := buildInstance(t, 2)
	solvers := map[string]func() (*mcfs.Solution, error){
		"wma":     func() (*mcfs.Solution, error) { return mcfs.Solve(inst) },
		"uf":      func() (*mcfs.Solution, error) { return mcfs.SolveUniformFirst(inst) },
		"hilbert": func() (*mcfs.Solution, error) { return mcfs.SolveHilbert(inst) },
		"naive":   func() (*mcfs.Solution, error) { return mcfs.SolveNaive(inst, mcfs.WithSeed(3)) },
	}
	for name, run := range solvers {
		sol, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := inst.CheckSolution(sol); err != nil {
			t.Fatalf("%s: invalid solution: %v", name, err)
		}
	}
}

func TestPublicAPIBRNNSmall(t *testing.T) {
	// BRNN is the slow baseline; use a smaller instance.
	g, err := mcfs.GenerateSynthetic(mcfs.SyntheticConfig{N: 200, Alpha: 2.5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	pool := mcfs.LargestComponent(g)
	inst := &mcfs.Instance{
		G:          g,
		Customers:  mcfs.SampleCustomersFrom(pool, 20, rng),
		Facilities: mcfs.SampleFacilitiesFrom(pool, 40, rng, mcfs.UniformCapacity(5)),
		K:          6,
	}
	sol, err := mcfs.SolveBRNN(inst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.CheckSolution(sol); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIExactAndOrdering(t *testing.T) {
	g, err := mcfs.GenerateSynthetic(mcfs.SyntheticConfig{N: 120, Alpha: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	pool := mcfs.LargestComponent(g)
	inst := &mcfs.Instance{
		G:          g,
		Customers:  mcfs.SampleCustomersFrom(pool, 8, rng),
		Facilities: mcfs.SampleFacilitiesFrom(pool, 7, rng, mcfs.UniformCapacity(3)),
		K:          3,
	}
	exact, err := mcfs.SolveExact(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Optimal {
		t.Fatal("unbounded exact solve not optimal")
	}
	exh, err := mcfs.SolveExhaustive(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Solution.Objective != exh.Objective {
		t.Fatalf("exact %d != exhaustive %d", exact.Solution.Objective, exh.Objective)
	}
	wma, err := mcfs.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	if wma.Objective < exact.Solution.Objective {
		t.Fatal("heuristic beats optimum")
	}
}

func TestPublicAPIExactTimeout(t *testing.T) {
	inst := buildInstance(t, 8)
	res, err := mcfs.SolveExact(inst, mcfs.WithTimeBudget(time.Nanosecond))
	if err == nil {
		if !res.Optimal {
			t.Fatal("no error, not optimal")
		}
		return
	}
	if !errors.Is(err, mcfs.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestPublicAPIProgressAndOptions(t *testing.T) {
	inst := buildInstance(t, 9)
	calls := 0
	_, err := mcfs.Solve(inst,
		mcfs.WithProgress(func(mcfs.IterationStats) { calls++ }),
		mcfs.WithExhaustiveMatching(),
		mcfs.WithArbitraryTieBreak(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("progress callback not invoked")
	}
	if _, err := mcfs.Solve(inst, mcfs.WithRaiseAllDemands()); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIInfeasible(t *testing.T) {
	b := mcfs.NewGraphBuilder(2, false)
	b.AddEdge(0, 1, 5)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	inst := &mcfs.Instance{
		G:          g,
		Customers:  []int32{0, 1},
		Facilities: []mcfs.Facility{{Node: 0, Capacity: 1}},
		K:          1,
	}
	if _, err := mcfs.Solve(inst); !errors.Is(err, mcfs.ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestPublicAPICityAndScenarios(t *testing.T) {
	p, err := mcfs.CityPreset("aalborg", 0.01, 10)
	if err != nil {
		t.Fatal(err)
	}
	g, err := mcfs.GenerateCity(p)
	if err != nil {
		t.Fatal(err)
	}
	st := mcfs.NetworkStats(g)
	if st.Nodes == 0 || st.AvgDegree < 1.5 {
		t.Fatalf("city stats: %+v", st)
	}

	cow, err := mcfs.NewCoworkingScenario(g, mcfs.CoworkingConfig{Venues: 30, Customers: 50, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	inst := cow.Instance(g, 10)
	sol, err := mcfs.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.CheckSolution(sol); err != nil {
		t.Fatal(err)
	}

	bikes, err := mcfs.NewBikesScenario(g, mcfs.BikesConfig{Stations: 50, Bikes: 80, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	binst := bikes.Instance(g, 25)
	bsol, err := mcfs.Solve(binst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := binst.CheckSolution(bsol); err != nil {
		t.Fatal(err)
	}

	cust, err := mcfs.DistrictCustomers(g, mcfs.DistrictConfig{Districts: 3, Customers: 40, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(cust) != 40 {
		t.Fatalf("district customers: %d", len(cust))
	}
}

func TestPublicAPISerializationRoundTrip(t *testing.T) {
	inst := buildInstance(t, 14)
	var buf bytes.Buffer
	if err := mcfs.WriteInstance(&buf, inst); err != nil {
		t.Fatal(err)
	}
	got, err := mcfs.ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := mcfs.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mcfs.Solve(got)
	if err != nil {
		t.Fatal(err)
	}
	if a.Objective != b.Objective {
		t.Fatalf("round-tripped instance solves differently: %d vs %d", a.Objective, b.Objective)
	}
}

func TestPublicAPIAssignToSelection(t *testing.T) {
	inst := buildInstance(t, 15)
	full, err := mcfs.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	re, err := mcfs.AssignToSelection(inst, full.Selected)
	if err != nil {
		t.Fatal(err)
	}
	if re.Objective != full.Objective {
		t.Fatalf("re-assignment over the same selection changed cost: %d vs %d", re.Objective, full.Objective)
	}
}

func TestPublicAPIQualityOrdering(t *testing.T) {
	// The paper's headline ordering on clustered data, in aggregate:
	// WMA <= Hilbert and WMA <= Naive (BRNN excluded for runtime).
	var wmaSum, hilbertSum, naiveSum int64
	for seed := int64(0); seed < 5; seed++ {
		g, err := mcfs.GenerateSynthetic(mcfs.SyntheticConfig{N: 800, Alpha: 1.8, Clusters: 20, Seed: 20 + seed})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(30 + seed))
		pool := mcfs.LargestComponent(g)
		// Tight occupancy (o = 0.8): the regime where exact matching and
		// careful selection pay off (paper Fig. 7).
		inst := &mcfs.Instance{
			G:          g,
			Customers:  mcfs.SampleCustomersFrom(pool, 80, rng),
			Facilities: mcfs.NodesFacilities(pool, mcfs.UniformCapacity(5)),
			K:          20,
		}
		w, err := mcfs.Solve(inst)
		if err != nil {
			t.Fatal(err)
		}
		h, err := mcfs.SolveHilbert(inst)
		if err != nil {
			t.Fatal(err)
		}
		n, err := mcfs.SolveNaive(inst, mcfs.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		wmaSum += w.Objective
		hilbertSum += h.Objective
		naiveSum += n.Objective
	}
	if wmaSum > hilbertSum {
		t.Errorf("WMA aggregate %d worse than Hilbert %d on clustered data", wmaSum, hilbertSum)
	}
	if wmaSum > naiveSum {
		t.Errorf("WMA aggregate %d worse than Naive %d", wmaSum, naiveSum)
	}
}

func TestPublicAPIReallocator(t *testing.T) {
	inst := buildInstance(t, 16)
	r, err := mcfs.NewReallocator(inst, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	h, err := r.AddCustomer(inst.Customers[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveCustomer(h); err != nil {
		t.Fatal(err)
	}
	finalInst, sol, err := r.Solution()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := finalInst.CheckSolution(sol); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Arrivals != 1 || st.Departures != 1 || st.FullSolves < 1 {
		t.Fatalf("stats = %+v", st)
	}
}
