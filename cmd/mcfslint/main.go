// Command mcfslint runs the project's static-analysis suite: custom
// rules that machine-check the concurrency, cancellation, and
// determinism invariants the solver stack depends on (see DESIGN.md
// §10 for the rule catalogue and the //lint:ignore suppression syntax).
//
//	mcfslint ./...
//	mcfslint -json ./...          # machine-readable findings
//	mcfslint -rules closecheck ./cmd/...
//	mcfslint -typed=false ./...   # syntactic-only escape hatch
//	mcfslint -list                # print the rule catalogue
//
// By default the tree is type-checked (stdlib go/types; in-module
// imports resolved from source, the standard library from GOROOT/src)
// and rules use resolved objects and static types. -typed=false skips
// type-checking and runs the original syntactic heuristics — faster,
// and the only mode that works on a tree that doesn't type-check.
// Typed-only rules (ctx-propagation, shared-instance-mutation) are
// silent in that mode.
//
// Findings print one per line as "file:line: rule: message" on stdout;
// a summary with the analyzer's own runtime goes to stderr, followed
// by per-rule timing lines and a machine-readable "total_ms N" line
// with -timing (CI records the summary so a slow rule is noticed).
// Exit status is 1 when there are findings, 2 on usage or parse errors
// (including a pattern that matches no Go packages), 0 on a clean tree.
//
// Results are cached under os.UserCacheDir()/mcfslint, keyed on the
// binary, the toolchain, the run configuration, and the module's full
// source tree: an unchanged tree replays its findings without
// re-type-checking. -nocache forces a fresh analysis.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"mcfs/internal/lint"
)

func main() {
	var (
		jsonOut   = flag.Bool("json", false, "emit findings as a JSON array on stdout")
		rulesFlag = flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
		chdir     = flag.String("C", ".", "module root to resolve package patterns against")
		list      = flag.Bool("list", false, "list the rules and exit")
		typed     = flag.Bool("typed", true, "type-check the tree so rules can use go/types info")
		timing    = flag.Bool("timing", false, "print per-rule wall-clock timings to stderr")
		nocache   = flag.Bool("nocache", false, "skip the result cache and re-analyze from scratch")
	)
	flag.Parse()

	if *list {
		for _, r := range lint.AllRules() {
			fmt.Printf("%-16s %s\n", r.Name(), r.Doc())
		}
		return
	}

	rules := lint.AllRules()
	if *rulesFlag != "" {
		byName := make(map[string]lint.Rule)
		for _, r := range rules {
			byName[r.Name()] = r
		}
		rules = rules[:0]
		for _, name := range strings.Split(*rulesFlag, ",") {
			r, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "mcfslint: unknown rule %q (try -list)\n", name)
				os.Exit(2)
			}
			rules = append(rules, r)
		}
	}

	start := time.Now()
	mode := "typed"
	if !*typed {
		mode = "syntactic"
	}

	// The result cache replays an unchanged tree without loading or
	// analyzing anything. The key covers every input that can change
	// the outcome: the linter binary, the toolchain, the run
	// configuration, and (inside lint.CacheKey) go.mod plus the whole
	// module's sources. Any failure to set the cache up just disables
	// it — caching is an optimization, never a reason to fail a run.
	var cacheDir, cacheKey string
	cacheStatus := "cache off"
	if !*nocache {
		if dir, err := lint.CacheDir(); err == nil {
			if exe, err := exeHash(); err == nil {
				ruleNames := make([]string, len(rules))
				for i, r := range rules {
					ruleNames[i] = r.Name()
				}
				key, err := lint.CacheKey(*chdir,
					"exe "+exe,
					"go "+runtime.Version(),
					"mode "+mode,
					"rules "+strings.Join(ruleNames, ","),
					"patterns "+strings.Join(flag.Args(), " "))
				if err == nil {
					cacheDir, cacheKey = dir, key
					cacheStatus = "cache miss"
				}
			}
		}
	}
	if cacheKey != "" {
		if e, ok := lint.CacheGet(cacheDir, cacheKey); ok {
			emit(e.TypeErrors, e.Findings, *jsonOut)
			fmt.Fprintf(os.Stderr, "mcfslint: %d finding(s) in %d files, %d rules, %s (%s, cache hit)\n",
				len(e.Findings), e.Files, len(rules), time.Since(start).Round(time.Millisecond), mode)
			if *timing {
				fmt.Fprintf(os.Stderr, "mcfslint: total_ms %d\n", time.Since(start).Milliseconds())
			}
			if len(e.Findings) > 0 {
				os.Exit(1)
			}
			return
		}
	}

	load := lint.Load
	if *typed {
		load = lint.LoadTyped
	}
	pkgs, err := load(*chdir, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcfslint:", err)
		os.Exit(2)
	}
	loadElapsed := time.Since(start)
	var typeErrors []string
	for _, p := range pkgs {
		typeErrors = append(typeErrors, p.TypeErrors...)
	}
	findings, ruleTimes := lint.RunTimed(pkgs, rules)
	if findings == nil {
		findings = []lint.Finding{}
	}
	elapsed := time.Since(start)

	emit(typeErrors, findings, *jsonOut)

	files := 0
	for _, p := range pkgs {
		files += len(p.Files)
	}
	if cacheKey != "" {
		// Best effort: a failed store costs the next run a re-analysis,
		// nothing else.
		_ = lint.CachePut(cacheDir, cacheKey, &lint.CacheEntry{
			Findings:   findings,
			TypeErrors: typeErrors,
			Files:      files,
		})
	}
	fmt.Fprintf(os.Stderr, "mcfslint: %d finding(s) in %d files, %d rules, %s (%s, load %s, %s)\n",
		len(findings), files, len(rules), elapsed.Round(time.Millisecond), mode, loadElapsed.Round(time.Millisecond), cacheStatus)
	if *timing {
		for _, rt := range ruleTimes {
			fmt.Fprintf(os.Stderr, "mcfslint: rule %-26s %s\n", rt.Rule, rt.Elapsed.Round(10*time.Microsecond))
		}
		fmt.Fprintf(os.Stderr, "mcfslint: total_ms %d\n", time.Since(start).Milliseconds())
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// emit prints the run's stderr type-error echo and its findings, from a
// live run and a cache replay alike.
func emit(typeErrors []string, findings []lint.Finding, jsonOut bool) {
	for _, msg := range typeErrors {
		fmt.Fprintf(os.Stderr, "mcfslint: type error (rules fall back to syntax where affected): %s\n", msg)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "mcfslint:", err)
			os.Exit(2)
		}
		return
	}
	for _, f := range findings {
		fmt.Println(f)
	}
}

// exeHash hashes the running linter binary so a rebuilt linter (new or
// changed rules) never replays results computed by an old one.
func exeHash() (string, error) {
	path, err := os.Executable()
	if err != nil {
		return "", err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", sha256.Sum256(data)), nil
}
