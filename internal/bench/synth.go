package bench

import (
	"fmt"
	"math/rand"

	"mcfs/internal/data"
	"mcfs/internal/gen"
	"mcfs/internal/graph"
)

// Parameter notes. The paper gives, per figure, the distribution, the
// density α, the capacity c (or range), and the occupancy o = m/(c·k);
// customer counts follow its "customers at 10% of nodes, facilities at
// k = 0.1·m" style statements. Where the prose is ambiguous the values
// below are chosen to reproduce the stated occupancies exactly; see
// EXPERIMENTS.md for the derivations.

// synthSpec describes one synthetic-figure configuration.
type synthSpec struct {
	id       string
	clusters int // 0 = uniform
	alpha    float64
	mFrac    float64 // m = mFrac·n
	kFrac    float64 // k = kFrac·n
	capLo    int     // capHi == 0 → uniform capacity capLo
	capHi    int
	withBRNN bool // include BRNN on the two smallest sizes (Fig. 6a / 7a)
}

var synthSpecs = []synthSpec{
	// Fig. 6: uniform distribution, variable graph size.
	{id: "F6a", alpha: 2.0, mFrac: 0.10, kFrac: 0.01, capLo: 20, withBRNN: true}, // o = 0.5
	{id: "F6b", alpha: 2.0, mFrac: 0.10, kFrac: 0.05, capLo: 4},                  // o = 0.5, denser facilities
	{id: "F6c", alpha: 1.2, mFrac: 0.10, kFrac: 0.05, capLo: 10},                 // o = 0.2, fragmented network
	{id: "F6d", alpha: 1.2, mFrac: 0.10, kFrac: 0.05, capLo: 1, capHi: 10},       // nonuniform capacities
	// Fig. 7: clustered distribution, variable graph size.
	{id: "F7a", clusters: 40, alpha: 1.5, mFrac: 0.20, kFrac: 0.05, capLo: 20, withBRNN: true}, // relaxed capacity
	{id: "F7b", clusters: 40, alpha: 1.5, mFrac: 0.10, kFrac: 0.08, capLo: 5},                  // tighter capacity
	{id: "F7c", clusters: 20, alpha: 1.5, mFrac: 0.10, kFrac: 0.10, capLo: 10},                 // low occupancy (0.1)
	{id: "F7d", clusters: 5, alpha: 1.5, mFrac: 0.10, kFrac: 0.02, capLo: 10},                  // o = 0.5, near-uniform
}

func init() {
	for _, spec := range synthSpecs {
		spec := spec
		register(spec.id, func(cfg Config, emit func(Row)) error {
			return runSynthSweep(spec, cfg, emit)
		})
	}
	register("F5", runF5)
	register("F8a", runF8a)
	register("F8b", runF8b)
	register("F8c", runF8c)
	register("F8d", runF8d)
	register("F9a", runF9a)
	register("F9b", runF9b)
}

// sizeSweep is the default n progression for variable-graph-size
// figures, multiplied by cfg.Scale (paper sweeps reach 10^6).
func sizeSweep(cfg Config) []int {
	return scaleInts([]int{1000, 2000, 4000, 8000}, cfg.Scale)
}

// synthInstance generates the network and workload of a spec at size n.
func synthInstance(spec synthSpec, n int, seed int64) (*data.Instance, error) {
	g, err := gen.Synthetic(gen.SyntheticConfig{
		N: n, Clusters: spec.clusters, Alpha: spec.alpha, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 101))
	capFn := gen.UniformCapacity(spec.capLo)
	if spec.capHi > 0 {
		capFn = gen.RandomCapacity(spec.capLo, spec.capHi, rng)
	}
	inst := &data.Instance{G: g}
	disjointWorkload(inst,
		max(1, int(spec.mFrac*float64(n))),
		max(1, int(spec.kFrac*float64(n))),
		capFn, seed+202)
	return inst, nil
}

// runSynthSweep runs one Fig. 6/7 panel: objective and runtime for every
// algorithm across the size sweep. The exact solver drops out of the
// sweep after its first timeout (the paper's "Gurobi failed beyond ..."
// behaviour); BRNN runs only on the two smallest sizes when enabled.
func runSynthSweep(spec synthSpec, cfg Config, emit func(Row)) error {
	exactAlive := !cfg.SkipExact
	for idx, n := range sizeSweep(cfg) {
		inst, err := synthInstance(spec, n, cfg.Seed)
		if err != nil {
			return err
		}
		x, xv := "n", float64(n)
		runAlgo(spec.id, x, xv, AlgoWMA, inst, cfg, cfg.Seed, emit)
		runAlgo(spec.id, x, xv, AlgoHilbert, inst, cfg, cfg.Seed, emit)
		runAlgo(spec.id, x, xv, AlgoNaive, inst, cfg, cfg.Seed, emit)
		if spec.withBRNN && !cfg.SkipBRNN && idx < 2 {
			runAlgo(spec.id, x, xv, AlgoBRNN, inst, cfg, cfg.Seed, emit)
		}
		if exactAlive {
			timedOut := false
			runAlgo(spec.id, x, xv, AlgoExact, inst, cfg, cfg.Seed, func(r Row) {
				timedOut = r.Note == "timeout"
				emit(r)
			})
			exactAlive = !timedOut
		}
	}
	return nil
}

// runF5 reports the distribution examples of Fig. 5 as structural
// statistics (nodes are drawn, not plotted, in this reproduction).
func runF5(cfg Config, emit func(Row)) error {
	n := max(8, int(10000*cfg.Scale))
	for _, clusters := range []int{0, 40, 20, 5} {
		g, err := gen.Synthetic(gen.SyntheticConfig{N: n, Clusters: clusters, Alpha: 1.5, Seed: cfg.Seed})
		if err != nil {
			return err
		}
		_, count := g.Components()
		label := "uniform"
		if clusters > 0 {
			label = fmt.Sprintf("%d clusters", clusters)
		}
		emit(Row{
			Exp: "F5", X: label, XVal: float64(clusters), Objective: -1,
			Note: fmt.Sprintf("nodes=%d edges=%d avgdeg=%.2f components=%d",
				g.N(), g.M(), g.AvgDegree(), count),
		})
	}
	return nil
}

// f8Graph builds the fixed clustered-20 network used by the Fig. 8
// sweeps.
func f8Graph(cfg Config) (*graph.Graph, int, error) {
	n := max(64, int(10000*cfg.Scale))
	g, err := gen.Synthetic(gen.SyntheticConfig{N: n, Clusters: 20, Alpha: 1.5, Seed: cfg.Seed})
	return g, n, err
}

// runF8a sweeps the candidate-facility fraction ℓ/|V| from 40% to 100%
// (dense customers, high capacity).
func runF8a(cfg Config, emit func(Row)) error {
	g, n, err := f8Graph(cfg)
	if err != nil {
		return err
	}
	m := n / 5
	k := max(1, n/50)
	exactAlive := !cfg.SkipExact
	for _, pct := range []int{40, 60, 80, 100} {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(pct)))
		l := n * pct / 100
		inst := &data.Instance{
			G:          g,
			Facilities: gen.SampleFacilities(g, l, rng, gen.UniformCapacity(20)),
			K:          k,
		}
		feasibleCustomers(inst, m, cfg.Seed+303)
		x, xv := "l%", float64(pct)
		runAlgo("F8a", x, xv, AlgoWMA, inst, cfg, cfg.Seed, emit)
		runAlgo("F8a", x, xv, AlgoHilbert, inst, cfg, cfg.Seed, emit)
		runAlgo("F8a", x, xv, AlgoNaive, inst, cfg, cfg.Seed, emit)
		if exactAlive {
			timedOut := false
			runAlgo("F8a", x, xv, AlgoExact, inst, cfg, cfg.Seed, func(r Row) {
				timedOut = r.Note == "timeout"
				emit(r)
			})
			exactAlive = !timedOut
		}
	}
	return nil
}

// runF8b sweeps the number of customers m (fixed k, c = 10, F_p = V).
func runF8b(cfg Config, emit func(Row)) error {
	g, n, err := f8Graph(cfg)
	if err != nil {
		return err
	}
	k := max(1, n/20)
	inst := &data.Instance{G: g}
	exactAlive := !cfg.SkipExact
	// The default sweep stops at 20% of n: occupancy beyond ~0.5 drives
	// WMA runtimes toward the paper's hours-long regime (grow -scale to
	// push further).
	for _, frac := range []int{2, 5, 10, 20} { // m = frac% of n
		m := max(1, n*frac/100)
		disjointWorkload(inst, m, k, gen.UniformCapacity(10), cfg.Seed+404+int64(frac))
		x, xv := "m", float64(m)
		runAlgo("F8b", x, xv, AlgoWMA, inst, cfg, cfg.Seed, emit)
		runAlgo("F8b", x, xv, AlgoHilbert, inst, cfg, cfg.Seed, emit)
		runAlgo("F8b", x, xv, AlgoNaive, inst, cfg, cfg.Seed, emit)
		if exactAlive {
			timedOut := false
			runAlgo("F8b", x, xv, AlgoExact, inst, cfg, cfg.Seed, func(r Row) {
				timedOut = r.Note == "timeout"
				emit(r)
			})
			exactAlive = !timedOut
		}
	}
	return nil
}

// runF8c scales customers past the node count (several customers per
// node) at occupancy o = 0.1 (c = 20, k = m/2).
func runF8c(cfg Config, emit func(Row)) error {
	g, n, err := f8Graph(cfg)
	if err != nil {
		return err
	}
	for _, frac := range []int{20, 50, 100, 200} { // m as % of n
		m := max(1, n*frac/100)
		k := m / 2
		if k > n/2 {
			k = n / 2 // keep the selection nontrivial (k = ℓ would be free)
		}
		if k < 1 {
			k = 1
		}
		inst := &data.Instance{
			G:          g,
			Facilities: gen.AllNodesFacilities(g, gen.UniformCapacity(20)),
			K:          k,
		}
		feasibleCustomers(inst, m, cfg.Seed+505+int64(frac))
		x, xv := "m", float64(m)
		runAlgo("F8c", x, xv, AlgoWMA, inst, cfg, cfg.Seed, emit)
		runAlgo("F8c", x, xv, AlgoHilbert, inst, cfg, cfg.Seed, emit)
		runAlgo("F8c", x, xv, AlgoNaive, inst, cfg, cfg.Seed, emit)
		// Exact is skipped: the paper reports Gurobi fails for large m.
	}
	return nil
}

// runF8d sweeps the budget k (fixed m = 0.1n, c = 10, F_p = V).
func runF8d(cfg Config, emit func(Row)) error {
	g, n, err := f8Graph(cfg)
	if err != nil {
		return err
	}
	m := max(1, n/10)
	inst := &data.Instance{G: g}
	exactAlive := !cfg.SkipExact
	for _, kFrac := range []int{2, 5, 10, 20} { // k as % of n
		disjointWorkload(inst, m, max(1, n*kFrac/100), gen.UniformCapacity(10), cfg.Seed+606)
		x, xv := "k", float64(inst.K)
		runAlgo("F8d", x, xv, AlgoWMA, inst, cfg, cfg.Seed, emit)
		runAlgo("F8d", x, xv, AlgoHilbert, inst, cfg, cfg.Seed, emit)
		runAlgo("F8d", x, xv, AlgoNaive, inst, cfg, cfg.Seed, emit)
		if exactAlive {
			timedOut := false
			runAlgo("F8d", x, xv, AlgoExact, inst, cfg, cfg.Seed, func(r Row) {
				timedOut = r.Note == "timeout"
				emit(r)
			})
			exactAlive = !timedOut
		}
	}
	return nil
}

// runF9a sweeps the density parameter α on 5-cluster data (c = 10); the
// x axis reports the measured average degree, as in the paper.
func runF9a(cfg Config, emit func(Row)) error {
	n := max(64, int(5000*cfg.Scale))
	exactAlive := !cfg.SkipExact
	for _, alpha := range []float64{1.0, 1.2, 1.5, 2.0, 2.5} {
		g, err := gen.Synthetic(gen.SyntheticConfig{N: n, Clusters: 5, Alpha: alpha, Seed: cfg.Seed})
		if err != nil {
			return err
		}
		inst := &data.Instance{G: g}
		disjointWorkload(inst, max(1, n/10), max(1, n/20), gen.UniformCapacity(10), cfg.Seed+707)
		x, xv := "avgdeg", g.AvgDegree()
		runAlgo("F9a", x, xv, AlgoWMA, inst, cfg, cfg.Seed, emit)
		runAlgo("F9a", x, xv, AlgoHilbert, inst, cfg, cfg.Seed, emit)
		runAlgo("F9a", x, xv, AlgoNaive, inst, cfg, cfg.Seed, emit)
		if exactAlive {
			timedOut := false
			runAlgo("F9a", x, xv, AlgoExact, inst, cfg, cfg.Seed, func(r Row) {
				timedOut = r.Note == "timeout"
				emit(r)
			})
			exactAlive = !timedOut
		}
	}
	return nil
}

// runF9b sweeps the uniform capacity c on 5-cluster data (α = 1.5).
func runF9b(cfg Config, emit func(Row)) error {
	n := max(64, int(5000*cfg.Scale))
	g, err := gen.Synthetic(gen.SyntheticConfig{N: n, Clusters: 5, Alpha: 1.5, Seed: cfg.Seed})
	if err != nil {
		return err
	}
	m := max(1, n/10)
	k := max(1, n/20)
	exactAlive := !cfg.SkipExact
	for _, c := range []int{3, 4, 6, 10, 20, 40} {
		inst := &data.Instance{G: g}
		disjointWorkload(inst, m, k, gen.UniformCapacity(c), cfg.Seed+808)
		x, xv := "c", float64(c)
		runAlgo("F9b", x, xv, AlgoWMA, inst, cfg, cfg.Seed, emit)
		runAlgo("F9b", x, xv, AlgoHilbert, inst, cfg, cfg.Seed, emit)
		runAlgo("F9b", x, xv, AlgoNaive, inst, cfg, cfg.Seed, emit)
		if exactAlive {
			timedOut := false
			runAlgo("F9b", x, xv, AlgoExact, inst, cfg, cfg.Seed, func(r Row) {
				timedOut = r.Note == "timeout"
				emit(r)
			})
			exactAlive = !timedOut
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
