// Package fixture exercises the determinism rule's bench exemption
// (checked as if it lived in internal/bench, where measured wall-clock
// time is the product and time.Now is therefore allowed).
package fixture

import "time"

func now() time.Time { return time.Now() }
