// Package localsearch post-optimizes an MCFS solution with single-swap
// moves, the classic local-search neighborhood for capacitated k-median
// (cf. the paper's related work, Korupolu et al.): exchange one selected
// facility for one unselected candidate and rebuild the optimal
// assignment. The paper leaves local search as impracticable for hard
// nonuniform capacities at scale; applied as a *polish* on WMA's output
// with a bounded move budget and a distance-pruned candidate pool, it
// trades extra assignment solves for objective improvements — quantified
// by the AblSwap benchmark.
package localsearch

import (
	"context"
	"errors"
	"sort"

	"mcfs/internal/core"
	"mcfs/internal/data"
	"mcfs/internal/graph"
)

// Options bounds the search.
type Options struct {
	// MaxMoves caps accepted swaps; 0 means 2·k.
	MaxMoves int
	// CandidatesPerFacility bounds how many nearby unselected candidates
	// are tried as replacements for each selected facility; 0 means 5.
	CandidatesPerFacility int
	// Core configures the assignment solves.
	Core core.Options
}

// Stats reports the work performed.
type Stats struct {
	Evaluated int // candidate swaps evaluated (assignment solves)
	Accepted  int // improving swaps applied
}

// Improve applies first-improvement single swaps to sol until no
// improving move remains in the pruned neighborhood or the move budget
// is exhausted. It returns the improved solution (possibly sol itself
// when no move helps) and search statistics.
func Improve(inst *data.Instance, sol *data.Solution, opt Options) (*data.Solution, Stats, error) {
	return ImproveCtx(context.Background(), inst, sol, opt)
}

// ImproveCtx is Improve with cooperative cancellation, checked before
// every candidate swap evaluation. Unlike the construction heuristics,
// local search always holds a verified feasible incumbent (the input
// solution or the best accepted swap so far), so on cancellation it
// returns that incumbent together with ctx.Err() — callers can keep the
// polish achieved up to the cut. An uncancelled run is byte-identical
// to Improve.
func ImproveCtx(ctx context.Context, inst *data.Instance, sol *data.Solution, opt Options) (*data.Solution, Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var st Stats
	if err := inst.Validate(); err != nil {
		return nil, st, err
	}
	if _, err := inst.CheckSolution(sol); err != nil {
		return nil, st, err
	}
	if opt.MaxMoves == 0 {
		opt.MaxMoves = 2 * inst.K
	}
	if opt.CandidatesPerFacility == 0 {
		opt.CandidatesPerFacility = 5
	}

	best := sol
	selected := make(map[int]bool, len(best.Selected))
	for _, j := range best.Selected {
		selected[j] = true
	}

	improved := true
	for improved && st.Accepted < opt.MaxMoves {
		improved = false
		// Deterministic order: heaviest-loaded facility first (its
		// neighborhood is where relocation gains concentrate).
		order := byLoad(best)
		for _, out := range order {
			for _, in := range nearbyCandidates(inst, out, selected, opt.CandidatesPerFacility) {
				if err := ctx.Err(); err != nil {
					return best, st, err
				}
				trial := swap(best.Selected, out, in)
				st.Evaluated++
				cand, err := core.AssignToSelectionCtx(ctx, inst, trial, opt.Core)
				if err != nil {
					if errors.Is(err, data.ErrInfeasible) {
						continue // swap breaks capacity coverage; skip
					}
					if ctx.Err() != nil {
						return best, st, err
					}
					return nil, st, err
				}
				if cand.Objective < best.Objective {
					best = cand
					delete(selected, out)
					selected[in] = true
					st.Accepted++
					improved = true
					break
				}
			}
			if improved {
				break // restart the pass from the new solution
			}
		}
	}
	return best, st, nil
}

// byLoad orders the selected facilities by descending assigned load.
func byLoad(sol *data.Solution) []int {
	load := map[int]int{}
	for _, j := range sol.Assignment {
		load[j]++
	}
	order := append([]int(nil), sol.Selected...)
	sort.Slice(order, func(a, b int) bool {
		if load[order[a]] != load[order[b]] {
			return load[order[a]] > load[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}

// nearbyCandidates returns up to limit unselected candidates nearest (by
// network distance) to the facility being swapped out.
func nearbyCandidates(inst *data.Instance, out int, selected map[int]bool, limit int) []int {
	mask := make([]bool, inst.G.N())
	nodeToFac := make(map[int32]int, inst.L())
	for j, f := range inst.Facilities {
		if !selected[j] {
			mask[f.Node] = true
			nodeToFac[f.Node] = j
		}
	}
	var cands []int
	s := graph.NewNNSearcher(inst.G, inst.Facilities[out].Node, mask)
	for len(cands) < limit {
		node, _, ok := s.Next()
		if !ok {
			break
		}
		cands = append(cands, nodeToFac[node])
	}
	return cands
}

func swap(selection []int, out, in int) []int {
	trial := make([]int, 0, len(selection))
	for _, j := range selection {
		if j != out {
			trial = append(trial, j)
		}
	}
	return append(trial, in)
}
