// Package dynamic is the fixture stand-in for the module's dynamic
// layer: a Reallocator with mutating and read-only methods, so the
// single-writer rule can classify them from summaries.
package dynamic

// Reallocator mirrors the real one's shape: mutable state behind
// methods.
type Reallocator struct {
	ctx   int
	state []int
}

// SetContext writes the receiver: mutating.
func (r *Reallocator) SetContext(c int) { r.ctx = c }

// AddCustomer writes the receiver: mutating.
func (r *Reallocator) AddCustomer(n int) int {
	r.state = append(r.state, n)
	return len(r.state)
}

// flush writes the receiver: mutating (unexported, reached via Publish).
func (r *Reallocator) flush() { r.state = r.state[:0] }

// Publish mutates only through flush — the summary fixpoint must
// still classify it as mutating.
func (r *Reallocator) Publish() []int {
	r.flush()
	return append([]int(nil), r.state...)
}

// Stats only reads: not mutating.
func (r *Reallocator) Stats() int { return len(r.state) }
