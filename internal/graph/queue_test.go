package graph

import (
	"context"
	"math/rand"
	"testing"
)

// withQueueMode runs fn under a forced queue mode, restoring the
// previous mode afterwards.
func withQueueMode(m QueueMode, fn func()) {
	prev := SetQueueMode(m)
	defer SetQueueMode(prev)
	fn()
}

// TestQueueModesByteIdentical is the determinism acceptance check for
// the queue swap: single-source distances, multi-source distances AND
// owners (tie-sensitive), and the full NNSearcher enumeration order
// must be byte-identical under the heap and the bucket queue.
func TestQueueModesByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(60)
		maxW := int64(1 + rng.Intn(8)) // small spread: many equal distances
		g := randomGraph(rng, n, 3*n, maxW)
		src := int32(rng.Intn(n))
		sources := []int32{src, int32(rng.Intn(n)), int32(rng.Intn(n))}
		mask := make([]bool, n)
		for v := range mask {
			mask[v] = rng.Intn(3) == 0
		}
		mask[rng.Intn(n)] = true

		type result struct {
			dist    []int64
			msDist  []int64
			msOwner []int32
			nnNodes []int32
			nnDists []int64
		}
		runAll := func() result {
			var r result
			r.dist = g.Dijkstra(src)
			r.msDist, r.msOwner = g.MultiSourceDijkstra(sources)
			s := NewNNSearcher(g, src, mask)
			for {
				node, d, ok := s.Next()
				if !ok {
					break
				}
				r.nnNodes = append(r.nnNodes, node)
				r.nnDists = append(r.nnDists, d)
			}
			return r
		}
		var heap, bucket result
		withQueueMode(QueueHeap, func() { heap = runAll() })
		withQueueMode(QueueBucket, func() { bucket = runAll() })

		for v := range heap.dist {
			if heap.dist[v] != bucket.dist[v] {
				t.Fatalf("trial %d: dist[%d] heap=%d bucket=%d", trial, v, heap.dist[v], bucket.dist[v])
			}
			if heap.msDist[v] != bucket.msDist[v] || heap.msOwner[v] != bucket.msOwner[v] {
				t.Fatalf("trial %d: multi-source node %d heap=(%d,%d) bucket=(%d,%d)",
					trial, v, heap.msDist[v], heap.msOwner[v], bucket.msDist[v], bucket.msOwner[v])
			}
		}
		if len(heap.nnNodes) != len(bucket.nnNodes) {
			t.Fatalf("trial %d: NN enumerated %d vs %d candidates", trial, len(heap.nnNodes), len(bucket.nnNodes))
		}
		for i := range heap.nnNodes {
			if heap.nnNodes[i] != bucket.nnNodes[i] || heap.nnDists[i] != bucket.nnDists[i] {
				t.Fatalf("trial %d: NN step %d heap=(%d,%d) bucket=(%d,%d)", trial, i,
					heap.nnNodes[i], heap.nnDists[i], bucket.nnNodes[i], bucket.nnDists[i])
			}
		}
	}
}

// TestBucketHeuristic pins the queue-selection rule: small weight
// ranges get the wheel, wide ones fall back to the heap.
func TestBucketHeuristic(t *testing.T) {
	small, err := NewBuilder(4, false).AddEdge(0, 1, 5).AddEdge(1, 2, 7).AddEdge(2, 3, 3).Build()
	if err != nil {
		t.Fatal(err)
	}
	if !small.bucketOK() {
		t.Errorf("bucketOK = false for maxW=%d n=%d, want true", small.MaxEdgeWeight(), small.N())
	}
	wide, err := NewBuilder(4, false).AddEdge(0, 1, maxWheel+5).AddEdge(1, 2, 7).Build()
	if err != nil {
		t.Fatal(err)
	}
	if wide.bucketOK() {
		t.Errorf("bucketOK = true for maxW=%d n=%d, want false", wide.MaxEdgeWeight(), wide.N())
	}
	if small.MaxEdgeWeight() != 7 {
		t.Errorf("MaxEdgeWeight = %d, want 7", small.MaxEdgeWeight())
	}
}

// TestScratchWithinMatchesMap cross-checks the scratch Within variant
// against the map variant on random graphs, reusing one scratch across
// trials to exercise epoch invalidation.
func TestScratchWithinMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ctx := context.Background()
	g := randomGraph(rng, 80, 200, 9)
	sc := g.NewScratch()
	for trial := 0; trial < 40; trial++ {
		src := int32(rng.Intn(g.N()))
		radius := int64(rng.Intn(30)) - 1 // includes -1 = unbounded
		want := g.DijkstraWithin(src, radius)
		if err := g.DijkstraWithinScratchCtx(ctx, src, radius, sc); err != nil {
			t.Fatal(err)
		}
		if sc.Visited() != len(want) {
			t.Fatalf("trial %d: scratch reached %d nodes, map %d (src=%d radius=%d)",
				trial, sc.Visited(), len(want), src, radius)
		}
		for v, d := range want {
			got, ok := sc.Dist(v)
			if !ok || got != d {
				t.Fatalf("trial %d: Dist(%d) = (%d,%v), want (%d,true)", trial, v, got, ok, d)
			}
		}
		seen := 0
		sc.Each(func(v int32, d int64) bool {
			if want[v] != d {
				t.Fatalf("trial %d: Each(%d) = %d, want %d", trial, v, d, want[v])
			}
			seen++
			return true
		})
		if seen != len(want) {
			t.Fatalf("trial %d: Each visited %d nodes, want %d", trial, seen, len(want))
		}
	}
}

// TestScratchToTargetsMatchesMap cross-checks the scratch ToTargets
// variant (including unreachable targets and duplicates) against the
// map variant, reusing one scratch.
func TestScratchToTargetsMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ctx := context.Background()
	g := randomDisconnectedGraph(rng, 70, 120, 9)
	sc := g.NewScratch()
	for trial := 0; trial < 40; trial++ {
		src := int32(rng.Intn(g.N()))
		targets := make([]int32, 1+rng.Intn(8))
		for i := range targets {
			targets[i] = int32(rng.Intn(g.N()))
		}
		if rng.Intn(2) == 0 {
			targets = append(targets, targets[0]) // duplicate target
		}
		want := g.DijkstraToTargets(src, targets)
		out := make([]int64, len(targets))
		if err := g.DijkstraToTargetsScratchCtx(ctx, src, targets, out, sc); err != nil {
			t.Fatal(err)
		}
		for i, tg := range targets {
			if out[i] != want[tg] {
				t.Fatalf("trial %d: out[%d] (target %d) = %d, want %d", trial, i, tg, out[i], want[tg])
			}
		}
	}
}

// TestScratchCancellation checks both scratch variants surface
// ctx.Err() on a cancelled context, like their map counterparts.
func TestScratchCancellation(t *testing.T) {
	g := longLine(t, 3*checkEvery)
	sc := g.NewScratch()
	if err := g.DijkstraWithinScratchCtx(cancelledCtx(), 0, -1, sc); err == nil {
		t.Fatal("DijkstraWithinScratchCtx ignored a cancelled context")
	}
	out := make([]int64, 1)
	if err := g.DijkstraToTargetsScratchCtx(cancelledCtx(), 0, []int32{int32(g.N() - 1)}, out, sc); err == nil {
		t.Fatal("DijkstraToTargetsScratchCtx ignored a cancelled context")
	}
}
