// Quickstart: build a small synthetic network, place customers and
// candidate facilities, and solve the Multicapacity Facility Selection
// problem with the Wide Matching Algorithm, comparing against the
// Hilbert baseline and the exact optimum.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"mcfs"
)

func main() {
	// A clustered synthetic city: 2,000 nodes in 15 clusters.
	g, err := mcfs.GenerateSynthetic(mcfs.SyntheticConfig{
		N: 2000, Clusters: 15, Alpha: 2, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := mcfs.NetworkStats(g)
	fmt.Printf("network: %d nodes, %d edges, avg degree %.2f\n", st.Nodes, st.Edges, st.AvgDegree)

	// 120 customers and 300 candidate facilities (capacity 8 each) in the
	// main component; select k = 20.
	rng := rand.New(rand.NewSource(42))
	pool := mcfs.LargestComponent(g)
	inst := &mcfs.Instance{
		G:          g,
		Customers:  mcfs.SampleCustomersFrom(pool, 120, rng),
		Facilities: mcfs.SampleFacilitiesFrom(pool, 300, rng, mcfs.UniformCapacity(8)),
		K:          20,
	}
	fmt.Printf("instance: m=%d customers, l=%d candidates, k=%d, occupancy %.2f\n\n",
		inst.M(), inst.L(), inst.K, inst.Occupancy())

	solve := func(name string, fn func() (*mcfs.Solution, error)) {
		start := time.Now()
		sol, err := fn()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if _, err := inst.CheckSolution(sol); err != nil {
			log.Fatalf("%s produced an invalid solution: %v", name, err)
		}
		fmt.Printf("%-10s objective %8d   runtime %8s\n", name, sol.Objective, time.Since(start).Round(time.Microsecond))
	}

	solve("wma", func() (*mcfs.Solution, error) { return mcfs.Solve(inst) })
	solve("hilbert", func() (*mcfs.Solution, error) { return mcfs.SolveHilbert(inst) })
	solve("naive", func() (*mcfs.Solution, error) { return mcfs.SolveNaive(inst, mcfs.WithSeed(1)) })

	// Render the WMA solution as an SVG map (network grey, customers red,
	// facilities blue, assignments linked).
	wmaSol, err := mcfs.Solve(inst)
	if err == nil {
		if f, ferr := os.Create("quickstart.svg"); ferr == nil {
			if rerr := mcfs.RenderSVG(f, inst, wmaSol, mcfs.DefaultRenderStyle()); rerr == nil {
				fmt.Println("\nwrote quickstart.svg")
			}
			f.Close()
		}
	}

	// The exact solver proves optimality but does not scale; bound it.
	// MCFS_EXAMPLE_QUICK shrinks the budget for CI smoke runs.
	exactBudget := 20 * time.Second
	if os.Getenv("MCFS_EXAMPLE_QUICK") != "" {
		exactBudget = 500 * time.Millisecond
	}
	start := time.Now()
	res, err := mcfs.SolveExact(inst, mcfs.WithTimeBudget(exactBudget))
	switch {
	case err == nil:
		fmt.Printf("%-10s objective %8d   runtime %8s (proven optimal, %d nodes)\n",
			"exact", res.Solution.Objective, time.Since(start).Round(time.Microsecond), res.Nodes)
	case res != nil:
		fmt.Printf("%-10s objective %8d   runtime %8s (time budget hit — best incumbent)\n",
			"exact", res.Solution.Objective, time.Since(start).Round(time.Microsecond))
	default:
		fmt.Printf("%-10s failed: %v\n", "exact", err)
	}
}
