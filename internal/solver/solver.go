// Package solver provides exact MCFS solvers standing in for the Gurobi
// Optimizer used in the paper's evaluation:
//
//   - Exhaustive enumerates every k-subset of candidate facilities and
//     evaluates the optimal transportation assignment for each — the
//     obviously-correct yardstick for tiny instances;
//   - BranchAndBound is a MIP-style exact search over the selection
//     variables x_j with a transportation-relaxation lower bound (all
//     undecided facilities open), matching Gurobi's role: it returns the
//     optimal objective and, like the paper's Gurobi runs, becomes
//     intractable as ℓ and n grow. A time budget reproduces the paper's
//     "Gurobi fails beyond 24 hours" regime.
//
// Both return data.ErrInfeasible on infeasible instances and rely on the
// shared optimal-assignment primitive core.AssignToSelection.
package solver

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"sort"
	"time"

	"mcfs/internal/core"
	"mcfs/internal/data"
	"mcfs/internal/obs"
)

// ErrTimeout is returned by BranchAndBound when the time budget expires
// before optimality is proven. When the budget is enforced through a
// context deadline, the returned error wraps both ErrTimeout and
// context.DeadlineExceeded, so errors.Is matches either.
var ErrTimeout = errors.New("solver: time budget exhausted")

// timeoutErr maps a context deadline expiry onto the package's ErrTimeout
// contract while preserving the context error for errors.Is chains; plain
// cancellations pass through unchanged.
func timeoutErr(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrTimeout, err)
	}
	return err
}

// ErrTooLarge is returned by Exhaustive when the number of subsets to
// enumerate exceeds its limit.
var ErrTooLarge = errors.New("solver: instance too large for exhaustive enumeration")

// Exhaustive computes the optimal solution by enumerating all
// C(ℓ, min(k,ℓ)) facility subsets. It refuses instances with more than
// maxSubsets combinations (default 1e6 when maxSubsets <= 0).
func Exhaustive(inst *data.Instance, maxSubsets int64) (*data.Solution, error) {
	return ExhaustiveCtx(context.Background(), inst, maxSubsets)
}

// ExhaustiveCtx is Exhaustive with cooperative cancellation, checked
// before each subset's assignment solve. On cancellation it returns the
// best solution found so far (nil when none) alongside ctx.Err(); an
// uncancelled run is byte-identical to Exhaustive.
func ExhaustiveCtx(ctx context.Context, inst *data.Instance, maxSubsets int64) (*data.Solution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if ok, _ := inst.Feasible(); !ok {
		return nil, data.ErrInfeasible
	}
	if maxSubsets <= 0 {
		maxSubsets = 1_000_000
	}
	l := inst.L()
	k := inst.K
	if k > l {
		k = l
	}
	if inst.M() == 0 {
		return &data.Solution{Selected: []int{}, Assignment: []int{}}, nil
	}
	count := new(big.Int).Binomial(int64(l), int64(k))
	if count.Cmp(big.NewInt(maxSubsets)) > 0 {
		return nil, fmt.Errorf("%w: C(%d,%d) = %s subsets", ErrTooLarge, l, k, count)
	}

	// Adding facilities never hurts, so only subsets of size exactly k
	// need checking.
	subset := make([]int, k)
	for i := range subset {
		subset[i] = i
	}
	var best *data.Solution
	for {
		if err := ctx.Err(); err != nil {
			return best, err
		}
		sol, err := core.AssignToSelectionCtx(ctx, inst, append([]int(nil), subset...), core.Options{})
		if err == nil && (best == nil || sol.Objective < best.Objective) {
			best = sol
		} else if err != nil && !errors.Is(err, data.ErrInfeasible) {
			if ctx.Err() != nil {
				return best, err
			}
			return nil, err
		}
		// Next combination in lexicographic order.
		i := k - 1
		for i >= 0 && subset[i] == l-k+i {
			i--
		}
		if i < 0 {
			break
		}
		subset[i]++
		for j := i + 1; j < k; j++ {
			subset[j] = subset[j-1] + 1
		}
	}
	if best == nil {
		return nil, data.ErrInfeasible
	}
	return best, nil
}

// Options configures BranchAndBound.
type Options struct {
	// TimeBudget bounds the wall-clock search time; zero means no limit.
	TimeBudget time.Duration
	// NodeLimit bounds the number of explored search nodes; zero means no
	// limit.
	NodeLimit int
}

// Result carries the solution plus search diagnostics.
type Result struct {
	Solution *data.Solution
	Nodes    int  // search-tree nodes explored
	Optimal  bool // proven optimal (false only possible with limits)
}

// BranchAndBound computes the optimal MCFS solution via best-first
// branch and bound on the facility-selection variables.
//
// Relaxation: at a node with sets (included I, excluded X), the lower
// bound is the optimal transportation cost with every non-excluded
// facility open and no cardinality constraint — valid because any
// completion selects a subset of the open facilities, and shrinking the
// open set can only raise the optimal assignment cost. If the relaxed
// assignment happens to use at most k facilities (counting every
// included one), the bound is attained and the node closes with an
// incumbent update.
func BranchAndBound(inst *data.Instance, opt Options) (*Result, error) {
	return BranchAndBoundCtx(context.Background(), inst, opt)
}

// BranchAndBoundCtx is BranchAndBound with cooperative cancellation. A
// positive Options.TimeBudget is enforced as a context deadline layered
// on top of ctx; when it expires the returned error wraps both
// ErrTimeout and context.DeadlineExceeded. On any cancellation the
// search stops promptly — ctx is checked per frontier node and inside
// every relaxation solve — and, exactly as on a time budget expiry, the
// best verified incumbent found so far is returned alongside the error
// (Result.Optimal is false); when no incumbent exists yet the Result is
// nil. An uncancelled, unexpired run is byte-identical to
// BranchAndBound.
func BranchAndBoundCtx(ctx context.Context, inst *data.Instance, opt Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if ok, _ := inst.Feasible(); !ok {
		return nil, data.ErrInfeasible
	}
	if inst.M() == 0 {
		return &Result{Solution: &data.Solution{Selected: []int{}, Assignment: []int{}}, Optimal: true}, nil
	}
	if opt.TimeBudget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.TimeBudget)
		defer cancel()
	}
	if p := obs.From(ctx).Phase("bnb/solve"); p != nil {
		defer p.End()
	}
	l := inst.L()
	k := inst.K
	if k >= l {
		sol, err := core.AssignToSelectionCtx(ctx, inst, allIndexes(l), core.Options{})
		if err != nil {
			return nil, timeoutErr(err)
		}
		return &Result{Solution: sol, Optimal: true}, nil
	}

	s := &search{ctx: ctx, inst: inst, k: k, opt: opt, rec: obs.From(ctx)}
	// Warm start: seed the incumbent with the WMA heuristic, exactly as
	// MIP solvers accept a starting solution. This sharpens pruning and
	// guarantees that a timed-out search never reports worse than the
	// heuristic. Exactness is unaffected.
	if warm, err := core.SolveCtx(ctx, inst, core.Options{}); err == nil {
		s.incumbent = warm
	}
	root := &node{excluded: make([]bool, l), included: nil}
	if err := s.evaluate(root); err != nil && !errors.Is(err, data.ErrInfeasible) {
		if ctx.Err() != nil {
			return s.finish(timeoutErr(err))
		}
		return nil, err
	}
	if root.infeasible {
		return nil, data.ErrInfeasible
	}
	s.frontier = append(s.frontier, root)
	for len(s.frontier) > 0 {
		if err := ctx.Err(); err != nil {
			return s.finish(timeoutErr(err))
		}
		if opt.NodeLimit > 0 && s.nodes >= opt.NodeLimit {
			return s.finish(fmt.Errorf("solver: node limit %d reached", opt.NodeLimit))
		}
		n := s.popBest()
		if s.incumbent != nil && n.bound >= s.incumbent.Objective {
			s.rec.Add(obs.BnBNodesPruned, 1)
			continue
		}
		if err := s.branch(n); err != nil {
			if ctx.Err() != nil {
				return s.finish(timeoutErr(err))
			}
			return nil, err
		}
	}
	if s.incumbent == nil {
		return nil, data.ErrInfeasible
	}
	return &Result{Solution: s.incumbent, Nodes: s.nodes, Optimal: true}, nil
}

type node struct {
	included   []int
	excluded   []bool
	bound      int64
	branchOn   int // undecided facility chosen for branching, -1 when closed
	infeasible bool
}

type search struct {
	ctx       context.Context
	inst      *data.Instance
	k         int
	opt       Options
	frontier  []*node // best-first by bound (simple slice scan: trees stay small)
	incumbent *data.Solution
	nodes     int
	rec       *obs.Recorder // nil-safe; counts expansions/prunes/incumbents
}

// better installs sol as the incumbent when it improves on the current
// one, reporting whether it did. All incumbent updates go through here
// so the update count is exact.
func (s *search) better(sol *data.Solution) bool {
	if s.incumbent != nil && sol.Objective >= s.incumbent.Objective {
		return false
	}
	s.incumbent = sol
	s.rec.Add(obs.BnBIncumbentUpdates, 1)
	return true
}

func (s *search) popBest() *node {
	best := 0
	for i := 1; i < len(s.frontier); i++ {
		if s.frontier[i].bound < s.frontier[best].bound {
			best = i
		}
	}
	n := s.frontier[best]
	s.frontier[best] = s.frontier[len(s.frontier)-1]
	s.frontier = s.frontier[:len(s.frontier)-1]
	return n
}

// evaluate computes the node's relaxation bound, closing it (and
// updating the incumbent) when the relaxed assignment is feasible for
// the original problem.
func (s *search) evaluate(n *node) error {
	s.nodes++
	s.rec.Add(obs.BnBNodesExpanded, 1)
	open := make([]int, 0, s.inst.L())
	for j := 0; j < s.inst.L(); j++ {
		if !n.excluded[j] {
			open = append(open, j)
		}
	}
	relaxed, err := core.AssignToSelectionCtx(s.ctx, s.inst, open, core.Options{})
	if err != nil {
		if errors.Is(err, data.ErrInfeasible) {
			n.infeasible = true
			return nil
		}
		return err
	}
	n.bound = relaxed.Objective
	// Facilities actually used by the relaxed assignment, plus every
	// included one (they count against the budget regardless).
	used := map[int]bool{}
	for _, j := range n.included {
		used[j] = true
	}
	for _, j := range relaxed.Assignment {
		used[j] = true
	}
	if len(used) <= s.k {
		// Bound attained feasibly: relaxed solution is a valid incumbent.
		selected := make([]int, 0, len(used))
		for j := range used {
			selected = append(selected, j)
		}
		sort.Ints(selected)
		sol := &data.Solution{Selected: selected, Assignment: relaxed.Assignment, Objective: relaxed.Objective}
		s.better(sol)
		n.branchOn = -1
		return nil
	}
	// Greedy dive: round the relaxation to a feasible incumbent by
	// keeping the k most-loaded used facilities (including every included
	// one) and re-solving the assignment — a standard primal heuristic
	// that tightens pruning long before leaves are reached.
	s.dive(n, relaxed)

	// Branch on the undecided facility carrying the most relaxed load.
	load := map[int]int{}
	for _, j := range relaxed.Assignment {
		load[j]++
	}
	bestJ, bestLoad := -1, -1
	includedSet := map[int]bool{}
	for _, j := range n.included {
		includedSet[j] = true
	}
	for j, c := range load {
		if includedSet[j] {
			continue
		}
		if c > bestLoad || (c == bestLoad && j < bestJ) {
			bestJ, bestLoad = j, c
		}
	}
	n.branchOn = bestJ
	return nil
}

// dive rounds a node's relaxed assignment into a feasible selection:
// the node's included facilities plus the most-loaded remaining used
// facilities, up to k, evaluated exactly. Improvements become the
// incumbent; failures are ignored.
func (s *search) dive(n *node, relaxed *data.Solution) {
	load := map[int]int{}
	for _, j := range relaxed.Assignment {
		load[j]++
	}
	pick := map[int]bool{}
	for _, j := range n.included {
		pick[j] = true
	}
	used := make([]int, 0, len(load))
	for j := range load {
		if !pick[j] {
			used = append(used, j)
		}
	}
	sort.Slice(used, func(a, b int) bool {
		if load[used[a]] != load[used[b]] {
			return load[used[a]] > load[used[b]]
		}
		return used[a] < used[b]
	})
	for _, j := range used {
		if len(pick) >= s.k {
			break
		}
		pick[j] = true
	}
	selected := make([]int, 0, len(pick))
	for j := range pick {
		selected = append(selected, j)
	}
	sort.Ints(selected)
	sol, err := core.AssignToSelectionCtx(s.ctx, s.inst, selected, core.Options{})
	if err != nil {
		return
	}
	s.better(sol)
}

// branch expands a node into include/exclude children.
func (s *search) branch(n *node) error {
	if n.branchOn < 0 {
		return nil // closed at evaluation time
	}
	// Include child.
	if len(n.included)+1 <= s.k {
		inc := &node{
			included: append(append([]int(nil), n.included...), n.branchOn),
			excluded: n.excluded, // include shares the exclusion mask
		}
		if len(inc.included) == s.k {
			// Fully determined selection: evaluate exactly.
			sol, err := core.AssignToSelectionCtx(s.ctx, s.inst, append([]int(nil), inc.included...), core.Options{})
			s.nodes++
			s.rec.Add(obs.BnBNodesExpanded, 1)
			if err == nil {
				s.better(sol)
			} else if !errors.Is(err, data.ErrInfeasible) {
				return err
			}
		} else {
			if err := s.evaluate(inc); err != nil {
				return err
			}
			if !inc.infeasible && (s.incumbent == nil || inc.bound < s.incumbent.Objective) {
				s.frontier = append(s.frontier, inc)
			}
		}
	}
	// Exclude child: copy the mask.
	exc := &node{
		included: n.included,
		excluded: append([]bool(nil), n.excluded...),
	}
	exc.excluded[n.branchOn] = true
	if err := s.evaluate(exc); err != nil {
		return err
	}
	if !exc.infeasible && (s.incumbent == nil || exc.bound < s.incumbent.Objective) {
		s.frontier = append(s.frontier, exc)
	}
	return nil
}

// finish returns the best-so-far result annotated with the limiting
// error when the search was cut short.
func (s *search) finish(cause error) (*Result, error) {
	if s.incumbent == nil {
		return nil, cause
	}
	return &Result{Solution: s.incumbent, Nodes: s.nodes, Optimal: false}, cause
}

func allIndexes(l int) []int {
	ix := make([]int, l)
	for i := range ix {
		ix[i] = i
	}
	return ix
}
