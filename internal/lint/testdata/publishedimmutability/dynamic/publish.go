// Package dynamic is the fixture stand-in for the module's dynamic
// layer: it owns the Published view type and its constructor.
package dynamic

// Published mirrors the real immutable view: scalar fields plus
// slice/map backing storage shared with every reader holding the
// snapshot.
type Published struct {
	Objective int64
	Selected  []int
	pos       map[int]int
}

// Reallocator is the mutable state Publish snapshots.
type Reallocator struct {
	selected []int
}

// Publish builds a fresh view: the composite literal makes it owned,
// so the construction writes below are not findings.
func (r *Reallocator) Publish() *Published {
	p := &Published{
		Selected: append([]int(nil), r.selected...),
		pos:      make(map[int]int, len(r.selected)),
	}
	for i, s := range p.Selected {
		p.pos[s] = i // filling an owned view before return: fine
	}
	p.Objective = int64(len(p.Selected))
	return p
}

// Clone deep-copies a view; its result is owned by convention.
func (p *Published) Clone() *Published {
	return &Published{
		Objective: p.Objective,
		Selected:  append([]int(nil), p.Selected...),
	}
}

// retarget mutates a live view in place — exactly what the swap
// discipline forbids.
func retarget(p *Published, sel []int) {
	p.Objective = 1        // want "write to field Objective of a published view"
	p.Selected[0] = sel[0] // want "element write into a published view's backing array"
	copy(p.Selected, sel)  // want "copy() into a published view's backing array"
}

// reclone heals: after rebinding to a Clone the value is owned.
func reclone(p *Published) *Published {
	p = p.Clone()
	p.Objective = 2 // owned since the Clone: no finding
	return p
}
