package lint

import (
	"go/ast"
	"go/token"
)

// This file is the control-flow half of the v3 engine: buildCFG lowers
// one function body to basic blocks so rules can run forward dataflow
// (dataflow.go) instead of a single syntactic sweep. The lowering is
// deliberately small — blocks hold the original ast.Stmt nodes in
// execution order and rules interpret them — but it is a real CFG:
// branches, loops, switches, selects, labeled break/continue, and goto
// all produce the edges a fixpoint needs to see facts merge at joins
// and flow around back edges.
//
// Function literals are NOT inlined: a nested FuncLit appears as an
// ordinary expression inside the statement that mentions it, and rules
// that care (provenance) descend into the literal's body themselves
// with whatever entry state is appropriate.

// block is one basic block: statements that execute in order with no
// internal control transfer, plus the successor edges control can take
// afterwards. Condition expressions of if/for heads are not stored —
// Go conditions cannot assign, so they carry no transfer effect a rule
// tracks; RangeStmt heads ARE stored (as the RangeStmt itself) because
// the range assigns its key/value variables on every entry.
type block struct {
	nodes []ast.Node // *ast.Stmt nodes (a RangeStmt appears as its own header)
	succs []*block
	index int // creation order; deterministic iteration
}

// cfg is the control-flow graph of one function body.
type cfg struct {
	entry  *block
	blocks []*block // creation order, entry first
}

// buildCFG lowers body. It never fails: constructs the builder does not
// model flow through (there are none in current Go) would simply fall
// through sequentially, which over-approximates reachability and can
// only surface more facts at a merge, never hide a write.
func buildCFG(body *ast.BlockStmt) *cfg {
	b := &cfgBuilder{labels: make(map[string]*labelBlocks)}
	entry := b.newBlock()
	exit := b.stmtList(body.List, entry, flowCtx{})
	_ = exit
	return &cfg{entry: entry, blocks: b.blocks}
}

// labelBlocks are the jump targets one label can resolve to.
type labelBlocks struct {
	target *block // goto / labeled-statement entry
	brk    *block // labeled break
	cont   *block // labeled continue
}

// flowCtx carries the innermost break/continue targets and the label
// (if any) attached to the statement being lowered.
type flowCtx struct {
	brk   *block
	cont  *block
	label string // pending label for the next loop/switch statement
}

type cfgBuilder struct {
	blocks []*block
	labels map[string]*labelBlocks
}

func (b *cfgBuilder) newBlock() *block {
	blk := &block{index: len(b.blocks)}
	b.blocks = append(b.blocks, blk)
	return blk
}

func edge(from, to *block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
}

// labelInfo returns (creating on demand, so forward gotos resolve) the
// label's record.
func (b *cfgBuilder) labelInfo(name string) *labelBlocks {
	li := b.labels[name]
	if li == nil {
		li = &labelBlocks{}
		b.labels[name] = li
	}
	return li
}

// stmtList lowers stmts starting in cur and returns the block where
// control continues, or nil when every path terminated (return, goto,
// break out of every enclosing construct).
func (b *cfgBuilder) stmtList(stmts []ast.Stmt, cur *block, fc flowCtx) *block {
	for _, s := range stmts {
		if cur == nil {
			// Unreachable code still gets a block so its writes are
			// scanned (with the empty entry state).
			cur = b.newBlock()
		}
		cur = b.stmt(s, cur, fc)
	}
	return cur
}

// stmt lowers one statement into cur and returns the continuation
// block (nil when control never falls through).
func (b *cfgBuilder) stmt(s ast.Stmt, cur *block, fc flowCtx) *block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(s.List, cur, flowCtx{brk: fc.brk, cont: fc.cont})

	case *ast.LabeledStmt:
		li := b.labelInfo(s.Label.Name)
		if li.target == nil {
			li.target = b.newBlock()
		}
		edge(cur, li.target)
		inner := flowCtx{brk: fc.brk, cont: fc.cont, label: s.Label.Name}
		return b.stmt(s.Stmt, li.target, inner)

	case *ast.IfStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur, flowCtx{brk: fc.brk, cont: fc.cont})
		}
		after := b.newBlock()
		then := b.newBlock()
		edge(cur, then)
		if end := b.stmtList(s.Body.List, then, flowCtx{brk: fc.brk, cont: fc.cont}); end != nil {
			edge(end, after)
		}
		if s.Else != nil {
			els := b.newBlock()
			edge(cur, els)
			if end := b.stmt(s.Else, els, flowCtx{brk: fc.brk, cont: fc.cont}); end != nil {
				edge(end, after)
			}
		} else {
			edge(cur, after)
		}
		return after

	case *ast.ForStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur, flowCtx{brk: fc.brk, cont: fc.cont})
		}
		head := b.newBlock()
		after := b.newBlock()
		post := b.newBlock() // continue target (holds Post when present)
		edge(cur, head)
		if s.Cond != nil {
			edge(head, after)
		}
		if fc.label != "" {
			li := b.labelInfo(fc.label)
			li.brk, li.cont = after, post
		}
		body := b.newBlock()
		edge(head, body)
		if end := b.stmtList(s.Body.List, body, flowCtx{brk: after, cont: post}); end != nil {
			edge(end, post)
		}
		if s.Post != nil {
			b.stmt(s.Post, post, flowCtx{})
		}
		edge(post, head)
		return after

	case *ast.RangeStmt:
		head := b.newBlock()
		head.nodes = append(head.nodes, s) // the range header assigns key/value
		after := b.newBlock()
		edge(cur, head)
		edge(head, after) // a range may run zero times
		if fc.label != "" {
			li := b.labelInfo(fc.label)
			li.brk, li.cont = after, head
		}
		body := b.newBlock()
		edge(head, body)
		if end := b.stmtList(s.Body.List, body, flowCtx{brk: after, cont: head}); end != nil {
			edge(end, head)
		}
		return after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var initStmt, tagStmt ast.Stmt
		var clauses []ast.Stmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			initStmt, clauses = sw.Init, sw.Body.List
		case *ast.TypeSwitchStmt:
			initStmt, tagStmt, clauses = sw.Init, sw.Assign, sw.Body.List
		}
		if initStmt != nil {
			cur = b.stmt(initStmt, cur, flowCtx{brk: fc.brk, cont: fc.cont})
		}
		if tagStmt != nil {
			cur.nodes = append(cur.nodes, tagStmt)
		}
		after := b.newBlock()
		if fc.label != "" {
			b.labelInfo(fc.label).brk = after
		}
		hasDefault := false
		var caseBlocks []*block
		var caseBodies [][]ast.Stmt
		for _, cl := range clauses {
			cc, ok := cl.(*ast.CaseClause)
			if !ok {
				continue
			}
			if cc.List == nil {
				hasDefault = true
			}
			blk := b.newBlock()
			edge(cur, blk)
			caseBlocks = append(caseBlocks, blk)
			caseBodies = append(caseBodies, cc.Body)
		}
		for i, blk := range caseBlocks {
			end := b.stmtListNoFallthrough(caseBodies[i], blk, flowCtx{brk: after, cont: fc.cont})
			if end.fellThrough && i+1 < len(caseBlocks) {
				edge(end.cont, caseBlocks[i+1])
			} else if end.cont != nil {
				edge(end.cont, after)
			}
		}
		if !hasDefault {
			edge(cur, after)
		}
		return after

	case *ast.SelectStmt:
		after := b.newBlock()
		if fc.label != "" {
			b.labelInfo(fc.label).brk = after
		}
		for _, cl := range s.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			blk := b.newBlock()
			edge(cur, blk)
			if cc.Comm != nil {
				blk.nodes = append(blk.nodes, cc.Comm)
			}
			if end := b.stmtList(cc.Body, blk, flowCtx{brk: after, cont: fc.cont}); end != nil {
				edge(end, after)
			}
		}
		if len(s.Body.List) == 0 {
			edge(cur, after)
		}
		return after

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				edge(cur, b.labelInfo(s.Label.Name).brk)
			} else {
				edge(cur, fc.brk)
			}
			return nil
		case token.CONTINUE:
			if s.Label != nil {
				edge(cur, b.labelInfo(s.Label.Name).cont)
			} else {
				edge(cur, fc.cont)
			}
			return nil
		case token.GOTO:
			li := b.labelInfo(s.Label.Name)
			if li.target == nil {
				li.target = b.newBlock()
			}
			edge(cur, li.target)
			return nil
		case token.FALLTHROUGH:
			// Handled by stmtListNoFallthrough; as a bare statement it
			// terminates the block.
			return nil
		}
		return cur

	case *ast.ReturnStmt:
		cur.nodes = append(cur.nodes, s)
		return nil

	default:
		// Straight-line statements: assignments, declarations, calls,
		// sends, go/defer, inc/dec, empty.
		cur.nodes = append(cur.nodes, s)
		return cur
	}
}

// caseEnd is stmtListNoFallthrough's result: the continuation block (nil
// when terminated) and whether the body ended in `fallthrough`.
type caseEnd struct {
	cont        *block
	fellThrough bool
}

// stmtListNoFallthrough lowers a case body, treating a trailing
// `fallthrough` as a transfer to the next case (reported to the
// caller) rather than a dead end.
func (b *cfgBuilder) stmtListNoFallthrough(stmts []ast.Stmt, cur *block, fc flowCtx) caseEnd {
	if n := len(stmts); n > 0 {
		if br, ok := stmts[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
			end := b.stmtList(stmts[:n-1], cur, fc)
			return caseEnd{cont: end, fellThrough: end != nil}
		}
	}
	return caseEnd{cont: b.stmtList(stmts, cur, fc)}
}
