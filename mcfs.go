// Package mcfs solves the Multicapacity Facility Selection problem — the
// hard, nonuniform capacitated k-median problem over a road network — as
// introduced by Logins, Karras and Jensen, "Multicapacity Facility
// Selection in Networks" (ICDE 2019).
//
// Given a weighted network, a set of customer locations, a catalogue of
// candidate facilities each with its own capacity, and a budget k, the
// task is to open at most k facilities and assign every customer to
// exactly one of them, within capacities, minimizing the total
// shortest-path distance between customers and their facilities.
//
// The primary solver is the paper's Wide Matching Algorithm (Solve):
// a scalable heuristic that interleaves an optimal incremental bipartite
// matching with a lazy-greedy set-cover selection. The package also
// provides the paper's baselines (SolveHilbert, SolveBRNN, SolveNaive),
// the Uniform-First strategy for nonuniform capacities
// (SolveUniformFirst), and exact solvers (SolveExact, SolveExhaustive)
// standing in for the paper's use of the Gurobi optimizer.
//
// Workload generators reproduce the paper's evaluation data: synthetic
// uniform/clustered networks (GenerateSynthetic), city-like road
// networks calibrated to the paper's Table III (GenerateCity), and the
// coworking/bike-sharing scenarios of §VII-F (NewCoworkingScenario,
// NewBikesScenario).
//
// A minimal end-to-end use:
//
//	g, _ := mcfs.GenerateSynthetic(mcfs.SyntheticConfig{N: 1000, Alpha: 2, Seed: 1})
//	rng := rand.New(rand.NewSource(2))
//	inst := &mcfs.Instance{
//		G:          g,
//		Customers:  mcfs.SampleCustomers(g, 100, rng),
//		Facilities: mcfs.SampleFacilities(g, 200, rng, mcfs.UniformCapacity(20)),
//		K:          10,
//	}
//	sol, err := mcfs.Solve(inst)
//	// sol.Selected, sol.Assignment, sol.Objective
package mcfs

import (
	"io"
	"math/rand"
	"time"

	"mcfs/internal/baseline"
	"mcfs/internal/core"
	"mcfs/internal/data"
	"mcfs/internal/dynamic"
	"mcfs/internal/gen"
	"mcfs/internal/graph"
	"mcfs/internal/localsearch"
	"mcfs/internal/realsim"
	"mcfs/internal/render"
	"mcfs/internal/solver"
)

// Core model types. These are aliases of the internal implementations so
// that all packages in the module interoperate without conversion.
type (
	// Graph is an immutable weighted network in CSR form; build one with
	// NewGraphBuilder or a generator.
	Graph = graph.Graph
	// GraphBuilder accumulates edges and coordinates, then Builds a Graph.
	GraphBuilder = graph.Builder
	// Edge is a builder input edge.
	Edge = graph.Edge
	// Facility is a candidate facility location with a capacity.
	Facility = data.Facility
	// Instance is a full MCFS problem instance.
	Instance = data.Instance
	// Solution carries the selected facilities, the per-customer
	// assignment (facility indexes), and the total-distance objective.
	Solution = data.Solution
	// IterationStats describes one WMA iteration (progress reporting).
	IterationStats = core.IterationStats
)

// Inf is the distance reported for unreachable node pairs.
const Inf = graph.Inf

// ErrInfeasible is returned by every solver when no feasible solution
// exists (insufficient capacity under budget k in some network
// component).
var ErrInfeasible = data.ErrInfeasible

// NewGraphBuilder returns a builder for a graph with n nodes; if
// directed is false every edge is traversable both ways.
func NewGraphBuilder(n int, directed bool) *GraphBuilder {
	return graph.NewBuilder(n, directed)
}

// Option tunes the solvers.
type Option func(*options)

type options struct {
	core core.Options
	// exact-solver knobs
	timeBudget time.Duration
	nodeLimit  int
	seed       int64
}

// WithProgress installs a per-iteration callback on WMA runs (the paper's
// Fig. 12b statistics: covered customers, matching time, set-cover time).
func WithProgress(fn func(IterationStats)) Option {
	return func(o *options) { o.core.Progress = fn }
}

// WithRaiseAllDemands switches WMA to raising every customer's demand
// each iteration instead of only uncovered ones (an ablation of the
// paper's §IV-F policy).
func WithRaiseAllDemands() Option {
	return func(o *options) { o.core.Demand = core.DemandAll }
}

// WithArbitraryTieBreak disables the least-recently-used diversification
// in the set-cover heuristic (ablation).
func WithArbitraryTieBreak() Option {
	return func(o *options) { o.core.TieBreak = core.TieArbitrary }
}

// WithExhaustiveMatching disables the matcher's early-stop optimization;
// results are identical, only more of the residual graph is scanned
// (ablation/diagnostics).
func WithExhaustiveMatching() Option {
	return func(o *options) { o.core.Exhaustive = true }
}

// WithTimeBudget bounds the exact solver's wall-clock time; on expiry
// SolveExact returns its best incumbent and solver.ErrTimeout.
func WithTimeBudget(d time.Duration) Option {
	return func(o *options) { o.timeBudget = d }
}

// WithNodeLimit bounds the exact solver's search-tree size.
func WithNodeLimit(n int) Option {
	return func(o *options) { o.nodeLimit = n }
}

// WithSeed seeds the randomized Naive baseline.
func WithSeed(seed int64) Option {
	return func(o *options) { o.seed = seed }
}

func buildOptions(opts []Option) options {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// Solve runs the Wide Matching Algorithm — the paper's primary
// contribution — and returns a feasible solution, or ErrInfeasible.
func Solve(inst *Instance, opts ...Option) (*Solution, error) {
	o := buildOptions(opts)
	return core.Solve(inst, o.core)
}

// SolveUniformFirst runs WMA with the Uniform-First strategy (§VII-F):
// facility locations are first chosen as if all capacities equaled the
// average, then the assignment is rebuilt under the true capacities.
func SolveUniformFirst(inst *Instance, opts ...Option) (*Solution, error) {
	o := buildOptions(opts)
	return core.SolveUniformFirst(inst, o.core)
}

// SolveHilbert runs the Hilbert space-filling-curve bucketing baseline.
// The network must carry coordinates.
func SolveHilbert(inst *Instance, opts ...Option) (*Solution, error) {
	o := buildOptions(opts)
	return baseline.Hilbert(inst, o.core)
}

// SolveBRNN runs the iterative bichromatic-reverse-nearest-neighbor
// (MaxSum) placement baseline.
func SolveBRNN(inst *Instance, opts ...Option) (*Solution, error) {
	o := buildOptions(opts)
	return baseline.BRNN(inst, o.core)
}

// SolveNaive runs WMA Naïve: the WMA loop with greedy, no-rewiring
// assignment. Seed it with WithSeed for reproducibility.
func SolveNaive(inst *Instance, opts ...Option) (*Solution, error) {
	o := buildOptions(opts)
	return baseline.Naive(inst, o.seed, o.core)
}

// ExactResult reports an exact solve: the solution, the number of
// explored branch-and-bound nodes, and whether optimality was proven
// (false only when a time or node budget cut the search short).
type ExactResult struct {
	Solution *Solution
	Nodes    int
	Optimal  bool
}

// ErrTimeout is returned by SolveExact when its time budget expires; the
// accompanying ExactResult still carries the best incumbent found.
var ErrTimeout = solver.ErrTimeout

// SolveExact computes the optimal solution by branch and bound — this
// repository's stand-in for the paper's Gurobi runs. Like the paper's
// MIP solves it is exact but intractable beyond small instances; bound
// it with WithTimeBudget/WithNodeLimit to reproduce the "solver fails"
// regime.
func SolveExact(inst *Instance, opts ...Option) (*ExactResult, error) {
	o := buildOptions(opts)
	res, err := solver.BranchAndBound(inst, solver.Options{
		TimeBudget: o.timeBudget,
		NodeLimit:  o.nodeLimit,
	})
	if res == nil {
		return nil, err
	}
	return &ExactResult{Solution: res.Solution, Nodes: res.Nodes, Optimal: res.Optimal}, err
}

// SolveExhaustive enumerates every k-subset of facilities (feasible only
// for tiny instances; maxSubsets <= 0 means the default 1e6 cap). Used
// as the ground-truth yardstick in tests and sanity runs.
func SolveExhaustive(inst *Instance, maxSubsets int64) (*Solution, error) {
	return solver.Exhaustive(inst, maxSubsets)
}

// AssignToSelection computes the optimal assignment of all customers to
// a fixed facility selection (indexes into inst.Facilities) — the
// building block for custom selection strategies.
func AssignToSelection(inst *Instance, selected []int, opts ...Option) (*Solution, error) {
	o := buildOptions(opts)
	return core.AssignToSelection(inst, selected, o.core)
}

// --- generators -----------------------------------------------------------

// SyntheticConfig parameterizes GenerateSynthetic (§VII-B).
type SyntheticConfig = gen.SyntheticConfig

// CityParams parameterizes GenerateCity; CityPreset returns calibrated
// parameters for the paper's four cities.
type CityParams = gen.CityParams

// CityStats reports Table III-style statistics of a network.
type CityStats = gen.CityStats

// CoworkingConfig parameterizes NewCoworkingScenario (§VII-F.1).
type CoworkingConfig = realsim.CoworkingConfig

// CoworkingScenario is generated coworking instance material.
type CoworkingScenario = realsim.CoworkingScenario

// DistrictConfig parameterizes DistrictCustomers (§VII-F.1b).
type DistrictConfig = realsim.DistrictConfig

// BikesConfig parameterizes NewBikesScenario (§VII-F.2).
type BikesConfig = realsim.BikesConfig

// BikesScenario is generated bike-sharing instance material.
type BikesScenario = realsim.BikesScenario

// Venue is a coworking candidate facility with occupancy and hours.
type Venue = realsim.Venue

// GenerateSynthetic builds a uniform or clustered synthetic network on
// the 10³×10³ square with the α-radius connection rule.
func GenerateSynthetic(cfg SyntheticConfig) (*Graph, error) { return gen.Synthetic(cfg) }

// CityPreset returns parameters calibrated to one of the paper's Table
// III cities ("aalborg", "riga", "copenhagen", "lasvegas"), scaled by
// scale (1.0 = paper size).
func CityPreset(name string, scale float64, seed int64) (CityParams, error) {
	return gen.CityPreset(name, scale, seed)
}

// GenerateCity builds a seeded city-like road network.
func GenerateCity(p CityParams) (*Graph, error) { return gen.City(p) }

// NetworkStats measures a network (Table III columns).
func NetworkStats(g *Graph) CityStats { return gen.Stats(g) }

// SampleCustomers draws m customer nodes uniformly (without replacement
// while possible).
func SampleCustomers(g *Graph, m int, rng *rand.Rand) []int32 {
	return gen.SampleCustomers(g, m, rng)
}

// SampleFacilities draws l distinct candidate facility nodes with
// capacities from capFn.
func SampleFacilities(g *Graph, l int, rng *rand.Rand, capFn func(j int) int) []Facility {
	return gen.SampleFacilities(g, l, rng, capFn)
}

// AllNodesFacilities makes every node a candidate (the paper's F_p = V)
// with capacities from capFn.
func AllNodesFacilities(g *Graph, capFn func(j int) int) []Facility {
	return gen.AllNodesFacilities(g, capFn)
}

// UniformCapacity yields the constant capacity c.
func UniformCapacity(c int) func(int) int { return gen.UniformCapacity(c) }

// RandomCapacity yields uniform capacities in [lo, hi].
func RandomCapacity(lo, hi int, rng *rand.Rand) func(int) int {
	return gen.RandomCapacity(lo, hi, rng)
}

// NewCoworkingScenario generates venues and Voronoi/triangle-distributed
// customers on g (§VII-F.1).
func NewCoworkingScenario(g *Graph, cfg CoworkingConfig) (*CoworkingScenario, error) {
	return realsim.Coworking(g, cfg)
}

// DistrictCustomers places customers proportionally to random district
// populations (§VII-F.1b).
func DistrictCustomers(g *Graph, cfg DistrictConfig) ([]int32, error) {
	return realsim.DistrictCustomers(g, cfg)
}

// NewBikesScenario generates docking stations and flow-divergence
// distributed bikes on g (§VII-F.2).
func NewBikesScenario(g *Graph, cfg BikesConfig) (*BikesScenario, error) {
	return realsim.Bikes(g, cfg)
}

// --- instance serialization -----------------------------------------------

// WriteInstance serializes an instance in the module's text format.
func WriteInstance(w io.Writer, inst *Instance) error { return data.WriteInstance(w, inst) }

// ReadInstance parses the text format.
func ReadInstance(r io.Reader) (*Instance, error) { return data.ReadInstance(r) }

// LargestComponent returns the nodes of the largest connected component;
// sampling workloads from it guarantees mutual reachability.
func LargestComponent(g *Graph) []int32 { return gen.LargestComponent(g) }

// SampleCustomersFrom draws m customers from a node pool.
func SampleCustomersFrom(nodes []int32, m int, rng *rand.Rand) []int32 {
	return gen.SampleCustomersFrom(nodes, m, rng)
}

// SampleFacilitiesFrom draws l distinct candidate facilities from a node
// pool with capacities from capFn.
func SampleFacilitiesFrom(nodes []int32, l int, rng *rand.Rand, capFn func(j int) int) []Facility {
	return gen.SampleFacilitiesFrom(nodes, l, rng, capFn)
}

// NodesFacilities makes every node of the pool a candidate facility.
func NodesFacilities(nodes []int32, capFn func(j int) int) []Facility {
	return gen.NodesFacilities(nodes, capFn)
}

// --- dynamic reallocation ---------------------------------------------------

// Reallocator maintains an MCFS solution while the customer population
// changes (the paper's "dynamic reallocation" motivation): arrivals are
// assigned incrementally along one optimal augmenting path each,
// departures are batched into a rebuild, and the facility selection is
// re-solved when it saturates or the cost drifts.
type Reallocator = dynamic.Reallocator

// ReallocatorStats counts a Reallocator's work.
type ReallocatorStats = dynamic.Stats

// NewReallocator performs one full solve of the instance and returns a
// Reallocator tracking it. driftFactor (>1) bounds the tolerated cost
// drift before a full re-selection; 0 picks the default 1.5, negative
// disables drift-triggered re-solves.
func NewReallocator(inst *Instance, driftFactor float64, opts ...Option) (*Reallocator, error) {
	o := buildOptions(opts)
	return dynamic.New(inst, dynamic.Options{Core: o.core, DriftFactor: driftFactor})
}

// --- rendering --------------------------------------------------------------

// RenderStyle controls RenderSVG output.
type RenderStyle = render.Style

// DefaultRenderStyle returns the standard rendering style.
func DefaultRenderStyle() RenderStyle { return render.Default() }

// RenderSVG draws the instance — and, when sol is non-nil, its solution —
// as a standalone SVG document (network grey, customers red, candidate
// facilities blue, selected facilities solid, assignments linked).
func RenderSVG(w io.Writer, inst *Instance, sol *Solution, style RenderStyle) error {
	return render.SVG(w, inst, sol, style)
}

// --- local-search polish -----------------------------------------------------

// ImproveStats reports local-search work counters.
type ImproveStats = localsearch.Stats

// Improve post-optimizes a solution with single-swap local search
// (exchange one open facility for a nearby unselected candidate,
// rebuilding the optimal assignment; first-improvement, bounded moves).
// maxMoves 0 picks the default budget of 2·k. The returned solution is
// never worse than the input.
func Improve(inst *Instance, sol *Solution, maxMoves int, opts ...Option) (*Solution, ImproveStats, error) {
	o := buildOptions(opts)
	return localsearch.Improve(inst, sol, localsearch.Options{MaxMoves: maxMoves, Core: o.core})
}

// --- DIMACS road-network interchange ----------------------------------------

// ReadDIMACSGraph parses a 9th-DIMACS-challenge shortest-path graph (and
// optional coordinate companion; pass nil to skip). undirected collapses
// the symmetric arc pairs of road-network distributions.
func ReadDIMACSGraph(gr io.Reader, co io.Reader, undirected bool) (*Graph, error) {
	return data.ReadDIMACSGraph(gr, co, undirected)
}

// WriteDIMACSGraph emits a graph (and, when coW is non-nil and
// coordinates exist, their companion file) in DIMACS format.
func WriteDIMACSGraph(grW io.Writer, coW io.Writer, g *Graph) error {
	return data.WriteDIMACSGraph(grW, coW, g)
}

// --- point-to-point distance oracle ------------------------------------------

// DistanceOracle is an exact point-to-point shortest-path oracle (A*
// with landmark bounds) for ad-hoc queries against a network — e.g.,
// auditing individual customer→facility trips of a solution. Not safe
// for concurrent use; its Clone method hands each goroutine an
// independent oracle sharing the preprocessed landmark tables.
type DistanceOracle = graph.ALT

// NewDistanceOracle preprocesses numLandmarks landmarks (one Dijkstra
// each); undirected networks only.
func NewDistanceOracle(g *Graph, numLandmarks int, seed int64) (*DistanceOracle, error) {
	return graph.NewALT(g, numLandmarks, seed)
}

// WriteGeoJSON exports an instance and optional solution as a GeoJSON
// FeatureCollection (customers and facilities as Points with properties,
// assignments as LineStrings) for use in standard mapping tools.
func WriteGeoJSON(w io.Writer, inst *Instance, sol *Solution) error {
	return render.GeoJSON(w, inst, sol)
}
