package graph

import (
	"context"
	"testing"

	"mcfs/internal/obs"
)

// benchGrid builds the same 100x100 grid as BenchmarkDijkstraGrid.
func benchGrid(b *testing.B) *Graph {
	b.Helper()
	const side = 100
	bld := NewBuilder(side*side, false)
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			v := int32(r*side + c)
			if c+1 < side {
				bld.AddEdge(v, v+1, 1)
			}
			if r+1 < side {
				bld.AddEdge(v, v+side, 1)
			}
		}
	}
	g, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkRecorderOverhead quantifies the cost the obs instrumentation
// adds to the Dijkstra hot path. The contract (DESIGN.md §13, enforced
// against the committed perf baseline by scripts/ci.sh): with NO
// recorder in the context the instrumented search must stay within 2%
// of the uninstrumented one — the per-search cost is a single context
// lookup, local counter increments, and a skipped defer. The "enabled"
// variant shows the flush cost with a live recorder (a handful of
// atomic adds per search), and "add" prices the atomic counter add
// itself.
func BenchmarkRecorderOverhead(b *testing.B) {
	g := benchGrid(b)

	b.Run("disabled", func(b *testing.B) {
		ctx := context.Background() // no recorder: the compiled-out-cheap path
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := g.DijkstraCtx(ctx, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		ctx := obs.WithRecorder(context.Background(), obs.New())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := g.DijkstraCtx(ctx, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("add", func(b *testing.B) {
		rec := obs.New()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rec.Add(obs.DijkstraHeapPops, 1)
		}
	})
}
