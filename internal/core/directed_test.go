package core

import (
	"testing"

	"mcfs/internal/data"
	"mcfs/internal/graph"
)

// TestSolveDirectedAsymmetric checks that the matcher's customer→facility
// distances and the independent objective verifier agree on directed
// networks with asymmetric shortest paths.
func TestSolveDirectedAsymmetric(t *testing.T) {
	// 0 →(1) 1 →(1) 2, and an expensive return path 2 →(10) 0.
	// Customer at 0; facility at 2. Forward distance 2, backward 10.
	b := graph.NewBuilder(3, true)
	b.AddEdge(0, 1, 1).AddEdge(1, 2, 1).AddEdge(2, 0, 10)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	inst := &data.Instance{
		G:          g,
		Customers:  []int32{0},
		Facilities: []data.Facility{{Node: 2, Capacity: 1}},
		K:          1,
	}
	sol, err := Solve(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.CheckSolution(sol); err != nil {
		t.Fatal(err)
	}
	if sol.Objective != 2 {
		t.Fatalf("objective = %d, want customer→facility distance 2", sol.Objective)
	}
}

// TestSolveDirectedChoosesForwardCheapest ensures selection uses forward
// distances: facility A is near in the forward direction, facility B near
// only backward.
func TestSolveDirectedChoosesForwardCheapest(t *testing.T) {
	// Customer 0. Forward: 0→1 (1). Backward-only: 2→0 (1), 0→...→2 via 0→1→2 (1+50).
	b := graph.NewBuilder(3, true)
	b.AddEdge(0, 1, 1).AddEdge(2, 0, 1).AddEdge(1, 2, 50)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	inst := &data.Instance{
		G:          g,
		Customers:  []int32{0},
		Facilities: []data.Facility{{Node: 1, Capacity: 1}, {Node: 2, Capacity: 1}},
		K:          1,
	}
	sol, err := Solve(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.CheckSolution(sol); err != nil {
		t.Fatal(err)
	}
	if len(sol.Selected) != 1 || sol.Selected[0] != 0 {
		t.Fatalf("selected %v, want the forward-near facility 0", sol.Selected)
	}
	if sol.Objective != 1 {
		t.Fatalf("objective = %d, want 1", sol.Objective)
	}
}
