package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxCheckpoint enforces the PR-2 cancellation contract: inside the
// solver packages, every while-style loop (`for {` / `for cond {` — the
// loops whose trip count depends on data, not on a bounded index) in a
// function that takes a context.Context must either poll that context
// or delegate to a *Ctx helper that does. Bounded three-clause and
// range loops are exempt: the contract is "no unbounded work between
// checkpoints", not "a poll on every iteration of everything".
//
// With type information the context parameter is recognized by what it
// is, not what it is spelled as: named types and aliases of
// context.Context, and interface parameters that embed it, all count —
// a context smuggled behind `type reqCtx context.Context` can no longer
// hide a poll-free loop. Body references are resolved to the actual
// parameter objects, so an unrelated identifier that happens to share
// the parameter's name no longer passes as a poll. Without type info
// the rule falls back to the syntactic heuristics.
type CtxCheckpoint struct{}

// Name implements Rule.
func (CtxCheckpoint) Name() string { return "ctx-checkpoint" }

// Doc implements Rule.
func (CtxCheckpoint) Doc() string {
	return "while-style loops in context-taking solver functions must poll the context or call a Ctx helper"
}

// ctxCheckpointDirs is the rule's scope: the packages PR 2 threaded
// cancellation through. Pure data/render/bench layers are out of scope.
var ctxCheckpointDirs = map[string]bool{
	"internal/graph":       true,
	"internal/bipartite":   true,
	"internal/core":        true,
	"internal/solver":      true,
	"internal/localsearch": true,
	"internal/baseline":    true,
	"internal/dynamic":     true,
}

// Check implements Rule.
func (CtxCheckpoint) Check(pkg *Package, report ReportFunc) {
	for _, f := range pkg.Files {
		if f.Test {
			continue
		}
		if !ctxCheckpointDirs[pkg.Dir] {
			continue
		}
		for _, decl := range f.AST.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkCtxFunc(pkg, f, fd.Type, fd.Body, ctxScope{}, report)
			}
		}
	}
}

// ctxScope is the set of context parameters visible in a function: the
// resolved objects (typed mode) and the parameter names (fallback, and
// the only evidence when type info is absent).
type ctxScope struct {
	objs  []types.Object
	names []string
}

func (s ctxScope) empty() bool { return len(s.objs) == 0 && len(s.names) == 0 }

// checkCtxFunc walks one function body with the context parameters
// visible in its scope (the enclosing functions' plus its own — a
// closure may checkpoint through a captured context).
func checkCtxFunc(pkg *Package, f *File, ft *ast.FuncType, body *ast.BlockStmt, outer ctxScope, report ReportFunc) {
	scope := ctxScope{
		objs:  append(append([]types.Object(nil), outer.objs...), ctxParamObjs(pkg, ft)...),
		names: append(append([]string(nil), outer.names...), ctxParamNames(pkg, ft)...),
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkCtxFunc(pkg, f, n.Type, n.Body, scope, report)
			return false
		case *ast.ForStmt:
			if !scope.empty() && n.Init == nil && n.Post == nil && !mentionsCtx(pkg, n.Body, scope) {
				report(f, n.Pos(),
					"while-style loop in a context-taking function never polls the context; add a ctx.Err() checkpoint or delegate to a Ctx helper (see DESIGN.md §9)")
			}
		}
		return true
	})
}

// ctxParamObjs resolves ft's context-typed parameters to their objects.
// It requires type information and recognizes context.Context behind
// aliases, named types, and embedding interfaces (isContextType).
func ctxParamObjs(pkg *Package, ft *ast.FuncType) []types.Object {
	if !pkg.Typed() || ft == nil || ft.Params == nil {
		return nil
	}
	var objs []types.Object
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			obj := pkg.ObjectOf(name)
			if obj != nil && name.Name != "_" && isContextType(obj.Type()) {
				objs = append(objs, obj)
			}
		}
	}
	return objs
}

// ctxParamNames returns the names of ft's syntactically evident
// context.Context parameters — the fallback evidence when no type
// information is available.
func ctxParamNames(pkg *Package, ft *ast.FuncType) []string {
	if pkg.Typed() {
		return nil // the resolved objects are strictly better evidence
	}
	if ft == nil || ft.Params == nil {
		return nil
	}
	var names []string
	for _, field := range ft.Params.List {
		sel, ok := field.Type.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Context" {
			continue
		}
		if x, ok := sel.X.(*ast.Ident); !ok || x.Name != "context" {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				names = append(names, name.Name)
			}
		}
	}
	return names
}

// mentionsCtx reports whether body references one of the in-scope
// context parameters or calls a *Ctx-suffixed helper (which by the
// module's naming convention takes and polls a context itself). In
// typed mode a reference must resolve to the actual parameter object.
func mentionsCtx(pkg *Package, body *ast.BlockStmt, scope ctxScope) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if strings.HasSuffix(id.Name, "Ctx") && id.Name != "Ctx" {
			found = true
			return false
		}
		if obj := pkg.ObjectOf(id); obj != nil {
			for _, want := range scope.objs {
				if obj == want {
					found = true
					return false
				}
			}
		}
		for _, name := range scope.names {
			if id.Name == name {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
