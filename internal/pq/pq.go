// Package pq provides the priority queues behind the hot paths of
// Dijkstra's algorithm and the SSPA matching engine — addressable binary
// min-heaps and a monotone Dial bucket queue — plus a small generic heap
// for everything else.
//
// The specialized queues key items by int64 priorities and identify
// items by int32 ids. DenseHeap tracks positions in a slice and suits
// item ids drawn from a small dense range [0, n); SparseHeap tracks
// positions in a map and suits Dijkstra instances that touch a tiny
// fraction of a huge graph; BucketQueue (bucket.go) trades the log
// factor for a bucket wheel when keys are small positive integers.
//
// Determinism: every queue in this package pins the same equal-key pop
// order — FIFO in key-update time; see the Monotone interface contract
// in bucket.go. The heaps enforce it by stamping each insert or key
// change with a monotonically increasing sequence number and comparing
// (key, seq). This is a deliberate tie-break pin (DESIGN.md §11): it
// makes solver output byte-identical no matter which queue
// implementation a search selects.
package pq

// DenseHeap is an addressable binary min-heap over item ids in [0, n).
// Among equal keys, the earliest-set key pops first. The zero value is
// not usable; call NewDense.
type DenseHeap struct {
	ids  []int32
	keys []int64
	seqs []int64 // key-update stamps: FIFO tie-break among equal keys
	pos  []int32 // pos[id] = index in ids, or -1 if absent
	tick int64
}

// NewDense returns a heap for item ids in [0, n).
func NewDense(n int) *DenseHeap {
	pos := make([]int32, n)
	for i := range pos {
		pos[i] = -1
	}
	return &DenseHeap{pos: pos}
}

// Len reports the number of items in the heap.
func (h *DenseHeap) Len() int { return len(h.ids) }

// Contains reports whether id is currently in the heap.
func (h *DenseHeap) Contains(id int32) bool { return h.pos[id] >= 0 }

// Key returns the current key of id; it must be in the heap.
func (h *DenseHeap) Key(id int32) int64 { return h.keys[h.pos[id]] }

// less orders heap slots by (key, seq): equal keys pop FIFO.
func (h *DenseHeap) less(i, j int) bool {
	if h.keys[i] != h.keys[j] {
		return h.keys[i] < h.keys[j]
	}
	return h.seqs[i] < h.seqs[j]
}

// Push inserts id with the given key, or decreases/increases its key if
// already present. Any key change restamps the item's FIFO position.
func (h *DenseHeap) Push(id int32, key int64) {
	if p := h.pos[id]; p >= 0 {
		old := h.keys[p]
		if key == old {
			return
		}
		h.keys[p] = key
		h.seqs[p] = h.tick
		h.tick++
		if key < old {
			h.up(int(p))
		} else {
			h.down(int(p))
		}
		return
	}
	h.ids = append(h.ids, id)
	h.keys = append(h.keys, key)
	h.seqs = append(h.seqs, h.tick)
	h.tick++
	h.pos[id] = int32(len(h.ids) - 1)
	h.up(len(h.ids) - 1)
}

// DecreaseKey lowers id's key; it is a no-op if the new key is not lower
// or id is absent (in which case it inserts).
func (h *DenseHeap) DecreaseKey(id int32, key int64) {
	if p := h.pos[id]; p >= 0 {
		if key >= h.keys[p] {
			return
		}
		h.keys[p] = key
		h.seqs[p] = h.tick
		h.tick++
		h.up(int(p))
		return
	}
	h.Push(id, key)
}

// PeekMin returns the minimum item and key without removing it.
// It must not be called on an empty heap.
func (h *DenseHeap) PeekMin() (int32, int64) { return h.ids[0], h.keys[0] }

// PopMin removes and returns the minimum item and its key.
// It must not be called on an empty heap.
func (h *DenseHeap) PopMin() (int32, int64) {
	id, key := h.ids[0], h.keys[0]
	h.swap(0, len(h.ids)-1)
	h.pos[id] = -1
	h.ids = h.ids[:len(h.ids)-1]
	h.keys = h.keys[:len(h.keys)-1]
	h.seqs = h.seqs[:len(h.seqs)-1]
	if len(h.ids) > 0 {
		h.down(0)
	}
	return id, key
}

// Remove deletes id from the heap if present.
func (h *DenseHeap) Remove(id int32) {
	p := h.pos[id]
	if p < 0 {
		return
	}
	last := len(h.ids) - 1
	h.swap(int(p), last)
	h.pos[id] = -1
	h.ids = h.ids[:last]
	h.keys = h.keys[:last]
	h.seqs = h.seqs[:last]
	if int(p) < last {
		h.down(int(p))
		h.up(int(p))
	}
}

// Reset empties the heap, retaining capacity.
func (h *DenseHeap) Reset() {
	for _, id := range h.ids {
		h.pos[id] = -1
	}
	h.ids = h.ids[:0]
	h.keys = h.keys[:0]
	h.seqs = h.seqs[:0]
}

func (h *DenseHeap) swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
	h.seqs[i], h.seqs[j] = h.seqs[j], h.seqs[i]
	h.pos[h.ids[i]] = int32(i)
	h.pos[h.ids[j]] = int32(j)
}

func (h *DenseHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *DenseHeap) down(i int) {
	n := len(h.ids)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		h.swap(i, small)
		i = small
	}
}

// SparseHeap is an addressable binary min-heap with map-tracked
// positions, suitable when item ids are sparse in a huge id space.
// Among equal keys, the earliest-set key pops first.
type SparseHeap struct {
	ids  []int32
	keys []int64
	seqs []int64
	pos  map[int32]int32
	tick int64
}

// NewSparse returns an empty sparse heap.
func NewSparse() *SparseHeap {
	return &SparseHeap{pos: make(map[int32]int32)}
}

// Len reports the number of items in the heap.
func (h *SparseHeap) Len() int { return len(h.ids) }

// Contains reports whether id is currently in the heap.
func (h *SparseHeap) Contains(id int32) bool { _, ok := h.pos[id]; return ok }

// Key returns the current key of id; it must be in the heap.
func (h *SparseHeap) Key(id int32) int64 { return h.keys[h.pos[id]] }

func (h *SparseHeap) less(i, j int) bool {
	if h.keys[i] != h.keys[j] {
		return h.keys[i] < h.keys[j]
	}
	return h.seqs[i] < h.seqs[j]
}

// Push inserts id with the given key, updating the key if present. Any
// key change restamps the item's FIFO position.
func (h *SparseHeap) Push(id int32, key int64) {
	if p, ok := h.pos[id]; ok {
		old := h.keys[p]
		if key == old {
			return
		}
		h.keys[p] = key
		h.seqs[p] = h.tick
		h.tick++
		if key < old {
			h.up(int(p))
		} else {
			h.down(int(p))
		}
		return
	}
	h.ids = append(h.ids, id)
	h.keys = append(h.keys, key)
	h.seqs = append(h.seqs, h.tick)
	h.tick++
	h.pos[id] = int32(len(h.ids) - 1)
	h.up(len(h.ids) - 1)
}

// DecreaseKey lowers id's key, inserting it if absent; higher keys are
// ignored.
func (h *SparseHeap) DecreaseKey(id int32, key int64) {
	if p, ok := h.pos[id]; ok {
		if key >= h.keys[p] {
			return
		}
		h.keys[p] = key
		h.seqs[p] = h.tick
		h.tick++
		h.up(int(p))
		return
	}
	h.Push(id, key)
}

// PeekMin returns the minimum item and key without removing it.
// It must not be called on an empty heap.
func (h *SparseHeap) PeekMin() (int32, int64) { return h.ids[0], h.keys[0] }

// PopMin removes and returns the minimum item and its key.
// It must not be called on an empty heap.
func (h *SparseHeap) PopMin() (int32, int64) {
	id, key := h.ids[0], h.keys[0]
	h.swap(0, len(h.ids)-1)
	delete(h.pos, id)
	h.ids = h.ids[:len(h.ids)-1]
	h.keys = h.keys[:len(h.keys)-1]
	h.seqs = h.seqs[:len(h.seqs)-1]
	if len(h.ids) > 0 {
		h.down(0)
	}
	return id, key
}

// Reset empties the heap, retaining slice capacity.
func (h *SparseHeap) Reset() {
	h.ids = h.ids[:0]
	h.keys = h.keys[:0]
	h.seqs = h.seqs[:0]
	clear(h.pos)
}

func (h *SparseHeap) swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
	h.seqs[i], h.seqs[j] = h.seqs[j], h.seqs[i]
	h.pos[h.ids[i]] = int32(i)
	h.pos[h.ids[j]] = int32(j)
}

func (h *SparseHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *SparseHeap) down(i int) {
	n := len(h.ids)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		h.swap(i, small)
		i = small
	}
}
