package baseline

import (
	"context"
	"fmt"
	"math/rand"

	"mcfs/internal/core"
	"mcfs/internal/data"
	"mcfs/internal/graph"
)

// Naive implements "WMA Naïve" (§VII-A): the WMA main loop — demand
// vector, set-cover selection, selective demand updates — but with the
// exact bipartite matching replaced by a greedy procedure: in every
// iteration customers are processed in a random order and each is
// assigned to its closest d_i candidate facilities that still have spare
// capacity, never rewiring previous assignments. The final assignment
// over the selected set is greedy as well.
func Naive(inst *data.Instance, seed int64, opt core.Options) (*data.Solution, error) {
	return NaiveCtx(context.Background(), inst, seed, opt)
}

// NaiveCtx is Naive with cooperative cancellation, checked once per
// customer per iteration and inside the per-customer network searches.
// On cancellation it returns nil and ctx.Err(); an uncancelled run is
// byte-identical to Naive at the same seed.
func NaiveCtx(ctx context.Context, inst *data.Instance, seed int64, opt core.Options) (*data.Solution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if ok, _ := inst.Feasible(); !ok {
		return nil, data.ErrInfeasible
	}
	if inst.M() == 0 {
		return &data.Solution{Selected: []int{}, Assignment: []int{}}, nil
	}
	rng := rand.New(rand.NewSource(seed))
	m, l, k := inst.M(), inst.L(), inst.K

	var selection []int
	if l <= k {
		selection = make([]int, l)
		for j := range selection {
			selection[j] = j
		}
	} else {
		ga := newGreedyAssign(ctx, inst)
		demand := make([]int, m)
		for i := range demand {
			demand[i] = 1
		}
		lastUsed := make([]int, l)
		for j := range lastUsed {
			lastUsed[j] = -1
		}
		order := rng.Perm(m)
		var covered bool
		for iter := 1; ; iter++ {
			rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
			for _, i := range order {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				ga.satisfy(i, demand[i])
			}
			var deltaD []bool
			selection, deltaD, covered = core.CheckCover(ga, k, lastUsed, opt.TieBreak)
			for _, j := range selection {
				lastUsed[j] = iter
			}
			progress := false
			for i := 0; i < m; i++ {
				if deltaD[i] && demand[i] < l && !ga.exhausted[i] {
					demand[i]++
					progress = true
				}
			}
			if covered || !progress {
				break
			}
		}
		if len(selection) < k {
			var err error
			selection, err = core.SelectGreedyCtx(ctx, inst, selection)
			if err != nil {
				return nil, err
			}
		}
		if !covered {
			var err error
			selection, err = core.CoverComponentsCtx(ctx, inst, selection)
			if err != nil {
				return nil, err
			}
		}
	}
	return greedyFinal(ctx, inst, selection, rng)
}

// greedyAssign tracks the naive exploration state; it implements
// core.Coverage.
type greedyAssign struct {
	ctx       context.Context
	inst      *data.Instance
	searchers []*graph.NNSearcher
	isCand    []bool
	nodeToFac map[int32]int
	explored  [][]int32 // per customer: facility indexes in NN order
	has       []map[int32]bool
	assigned  [][]int // per facility: customers
	touched   []int32 // facilities with at least one assignment ever
	counts    []int   // per customer: number of assignments
	exhausted []bool
}

func newGreedyAssign(ctx context.Context, inst *data.Instance) *greedyAssign {
	isCand, nodeToFac := inst.CandidateMask()
	return &greedyAssign{
		ctx:       ctx,
		inst:      inst,
		searchers: make([]*graph.NNSearcher, inst.M()),
		isCand:    isCand,
		nodeToFac: nodeToFac,
		explored:  make([][]int32, inst.M()),
		has:       make([]map[int32]bool, inst.M()),
		assigned:  make([][]int, inst.L()),
		counts:    make([]int, inst.M()),
		exhausted: make([]bool, inst.M()),
	}
}

func (ga *greedyAssign) M() int                  { return ga.inst.M() }
func (ga *greedyAssign) L() int                  { return ga.inst.L() }
func (ga *greedyAssign) AssignedCount(j int) int { return len(ga.assigned[j]) }
func (ga *greedyAssign) Assigned(j int, fn func(int)) {
	for _, c := range ga.assigned[j] {
		fn(c)
	}
}

func (ga *greedyAssign) Touched(fn func(int)) {
	for _, j := range ga.touched {
		fn(int(j))
	}
}

// satisfy greedily assigns customer i to its nearest facilities with
// spare capacity until it holds `want` assignments or options run out.
func (ga *greedyAssign) satisfy(i, want int) {
	if ga.has[i] == nil {
		ga.has[i] = make(map[int32]bool)
	}
	for ga.counts[i] < want {
		progressed := false
		for _, j := range ga.explored[i] {
			if ga.has[i][j] {
				continue
			}
			if len(ga.assigned[j]) < ga.inst.Facilities[j].Capacity {
				if len(ga.assigned[j]) == 0 {
					ga.touched = append(ga.touched, j)
				}
				ga.assigned[j] = append(ga.assigned[j], i)
				ga.has[i][j] = true
				ga.counts[i]++
				progressed = true
				break
			}
		}
		if progressed {
			continue
		}
		if ga.searchers[i] == nil {
			ga.searchers[i] = graph.NewNNSearcherCtx(ga.ctx, ga.inst.G, ga.inst.Customers[i], ga.isCand)
		}
		node, _, ok := ga.searchers[i].Next()
		if !ok {
			ga.exhausted[i] = true
			return
		}
		ga.explored[i] = append(ga.explored[i], int32(ga.nodeToFac[node]))
	}
}

// greedyFinal assigns every customer to its nearest selected facility
// with spare capacity, in a random processing order.
func greedyFinal(ctx context.Context, inst *data.Instance, selection []int, rng *rand.Rand) (*data.Solution, error) {
	mask := make([]bool, inst.G.N())
	nodeToSel := make(map[int32]int, len(selection))
	for _, j := range selection {
		mask[inst.Facilities[j].Node] = true
		nodeToSel[inst.Facilities[j].Node] = j
	}
	load := make(map[int]int, len(selection))
	assignment := make([]int, inst.M())
	var objective int64
	for _, i := range rng.Perm(inst.M()) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s := graph.NewNNSearcherCtx(ctx, inst.G, inst.Customers[i], mask)
		placed := false
		for {
			node, d, ok := s.Next()
			if !ok {
				break
			}
			j := nodeToSel[node]
			if load[j] < inst.Facilities[j].Capacity {
				load[j]++
				assignment[i] = j
				objective += d
				placed = true
				break
			}
		}
		if !placed {
			if err := s.Err(); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("baseline: naive final assignment failed for customer %d: %w", i, data.ErrInfeasible)
		}
	}
	return &data.Solution{Selected: selection, Assignment: assignment, Objective: objective}, nil
}
